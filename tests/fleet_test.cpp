// Fleet observability tests: log-linear histogram quantile accuracy and
// merge algebra, time-series rings, SLO burn/health arithmetic, metrics-ad
// round-tripping, the shop-side FleetAggregator (pull, rollup, stale
// age-out), obs ad lifecycle on monitor/aggregator stop, and health-aware
// bid selection in the shop.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "classad/classad.h"
#include "core/fleet.h"
#include "core/info_system.h"
#include "core/plant.h"
#include "core/shop.h"
#include "fault/fault.h"
#include "hypervisor/gsx.h"
#include "obs/export.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "util/random.h"
#include "util/stats.h"
#include "workload/request_gen.h"

namespace vmp {
namespace {

using obs::HistogramSnapshot;
using obs::LogHistogram;

// -- Histogram quantile accuracy ---------------------------------------------

HistogramSnapshot fill(LogHistogram* hist, const std::vector<double>& samples) {
  for (double s : samples) hist->record(s);
  return hist->snapshot();
}

TEST(LogHistogramTest, QuantileWithinTenPercentOfExact) {
  // Log-normal latencies spanning ~3 decades — the clone/resume shape.
  util::SplitMix64 rng(20260806);
  std::vector<double> samples;
  samples.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(rng.lognormal(std::log(0.05), 1.2));
  }
  LogHistogram hist;
  const HistogramSnapshot snap = fill(&hist, samples);
  ASSERT_EQ(snap.total, samples.size());
  for (double q : {0.50, 0.90, 0.99, 0.999}) {
    const double exact = util::percentile(samples, q * 100.0);
    const double approx = snap.quantile(q);
    EXPECT_NEAR(approx, exact, 0.10 * exact)
        << "quantile " << q << ": approx=" << approx << " exact=" << exact;
  }
}

TEST(LogHistogramTest, ClampsUnderflowAndOverflow) {
  LogHistogram hist;
  hist.record(0.0);
  hist.record(-1.0);
  hist.record(1e12);
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.total, 3u);
  EXPECT_EQ(snap.counts.front(), 2u);
  EXPECT_EQ(snap.counts.back(), 1u);
}

// -- Merge algebra (associativity / commutativity property test) -------------

HistogramSnapshot random_snapshot(std::uint64_t seed, int n) {
  util::SplitMix64 rng(seed);
  LogHistogram hist;
  for (int i = 0; i < n; ++i) hist.record(rng.lognormal(-3.0, 2.0));
  return hist.snapshot();
}

TEST(LogHistogramTest, MergeIsAssociativeAndCommutative) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const HistogramSnapshot a = random_snapshot(seed * 3 + 0, 500);
    const HistogramSnapshot b = random_snapshot(seed * 3 + 1, 900);
    const HistogramSnapshot c = random_snapshot(seed * 3 + 2, 50);

    HistogramSnapshot ab = a;
    ab.merge(b);
    HistogramSnapshot ba = b;
    ba.merge(a);
    EXPECT_TRUE(ab == ba) << "commutativity failed at seed " << seed;

    HistogramSnapshot ab_c = ab;
    ab_c.merge(c);
    HistogramSnapshot bc = b;
    bc.merge(c);
    HistogramSnapshot a_bc = a;
    a_bc.merge(bc);
    EXPECT_TRUE(ab_c == a_bc) << "associativity failed at seed " << seed;

    EXPECT_EQ(ab_c.total, a.total + b.total + c.total);
  }
}

TEST(LogHistogramTest, EncodeDecodeRoundTrips) {
  const HistogramSnapshot snap = random_snapshot(7, 1000);
  auto decoded = HistogramSnapshot::decode(snap.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(*decoded == snap);

  const HistogramSnapshot empty;
  EXPECT_EQ(empty.encode(), "");
  auto decoded_empty = HistogramSnapshot::decode("");
  ASSERT_TRUE(decoded_empty.has_value());
  EXPECT_TRUE(decoded_empty->empty());

  EXPECT_FALSE(HistogramSnapshot::decode("garbage").has_value());
  EXPECT_FALSE(HistogramSnapshot::decode("5").has_value());
  EXPECT_FALSE(HistogramSnapshot::decode("999999:2").has_value());
  EXPECT_FALSE(HistogramSnapshot::decode("3:abc").has_value());
}

// -- Time-series ring ---------------------------------------------------------

TEST(TimeSeriesRingTest, WindowsSumAndOldBucketsOverwrite) {
  obs::TimeSeriesRing ring(4, 1.0);  // covers 4 seconds
  ring.add(0.5, 1.0);
  ring.add(1.5, 2.0);
  ring.add(2.5, 4.0);
  EXPECT_DOUBLE_EQ(ring.sum_over(2.5, 3.0), 7.0);
  EXPECT_DOUBLE_EQ(ring.sum_over(2.5, 1.0), 4.0);
  EXPECT_EQ(ring.samples_over(2.5, 3.0), 3u);
  EXPECT_DOUBLE_EQ(ring.rate_per_s(2.5, 2.0), 3.0);  // (2+4)/2

  // Advancing 4 epochs overwrites the slot that held t=0.5.
  ring.add(4.5, 8.0);
  EXPECT_DOUBLE_EQ(ring.sum_over(4.5, 5.0), 14.0);  // 2+4+8; 1.0 evicted

  // A write older than the ring's span is dropped.
  ring.add(0.5, 100.0);
  EXPECT_DOUBLE_EQ(ring.sum_over(4.5, 5.0), 14.0);
}

// -- SLO tracker --------------------------------------------------------------

TEST(SloTrackerTest, BurnRateAndMultiWindowHealth) {
  obs::SloPolicy policy;
  policy.error_budget = 0.10;
  policy.short_window_s = 10.0;
  policy.long_window_s = 60.0;
  policy.fast_burn = 11.0;
  obs::SloTracker tracker(policy, 128, 1.0);

  // 50% failures: burn = 0.5 / 0.1 = 5 in both windows.
  tracker.observe(5.0, 5, 5);
  EXPECT_NEAR(tracker.short_burn(5.0), 5.0, 1e-9);
  EXPECT_NEAR(tracker.long_burn(5.0), 5.0, 1e-9);
  // Budget term: 1 - (5-1)/(11-1) = 0.6.
  EXPECT_NEAR(tracker.health(5.0, std::nullopt), 0.6, 1e-9);

  // 30 s later the short window is clean (only good events) while the long
  // window still remembers the incident: multi-window AND keeps health 1.
  tracker.observe(35.0, 20, 0);
  EXPECT_NEAR(tracker.short_burn(35.0), 0.0, 1e-9);
  EXPECT_GT(tracker.long_burn(35.0), 1.0);
  EXPECT_NEAR(tracker.health(35.0, std::nullopt), 1.0, 1e-9);
}

TEST(SloTrackerTest, LatencyObjectiveDegradesHealth) {
  obs::SloPolicy policy;
  policy.latency_objective_s = 1.0;
  policy.latency_degraded_factor = 3.0;
  obs::SloTracker tracker(policy);
  tracker.observe(1.0, 10, 0);
  EXPECT_NEAR(tracker.health(1.0, 0.5), 1.0, 1e-9);   // under objective
  EXPECT_NEAR(tracker.health(1.0, 2.0), 0.5, 1e-9);   // halfway to 3x
  EXPECT_NEAR(tracker.health(1.0, 3.0), 0.0, 1e-9);   // fully degraded
  EXPECT_NEAR(tracker.health(1.0, std::nullopt), 1.0, 1e-9);
}

// -- TimerStats / MetricsSnapshot merge --------------------------------------

TEST(TimerStatsTest, MergeAddsCountsWidensExtremaRefreshesQuantiles) {
  obs::Timer fast, slow;
  for (int i = 0; i < 100; ++i) fast.record(0.010);
  for (int i = 0; i < 100; ++i) slow.record(1.0);

  obs::TimerStats a;
  a.count = 100;
  a.sum_s = 1.0;
  a.mean_s = 0.010;
  a.min_s = 0.010;
  a.max_s = 0.010;
  a.hist = fast.quantile_histogram();
  a.refresh_quantiles();

  obs::TimerStats b;
  b.count = 100;
  b.sum_s = 100.0;
  b.mean_s = 1.0;
  b.min_s = 1.0;
  b.max_s = 1.0;
  b.hist = slow.quantile_histogram();
  b.refresh_quantiles();

  obs::TimerStats merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.count, 200u);
  EXPECT_DOUBLE_EQ(merged.min_s, 0.010);
  EXPECT_DOUBLE_EQ(merged.max_s, 1.0);
  EXPECT_NEAR(merged.mean_s, 101.0 / 200.0, 1e-9);
  // Half the samples are 10 ms, half 1 s: the median sits in the 10 ms
  // bucket, p99 in the 1 s bucket.
  EXPECT_NEAR(merged.p50_s, 0.010, 0.10 * 0.010);
  EXPECT_NEAR(merged.p99_s, 1.0, 0.10 * 1.0);
}

TEST(TimerStatsTest, MergeWidensQuantilesFromHistLessLegacyPeer) {
  obs::Timer fast;
  for (int i = 0; i < 100; ++i) fast.record(0.010);
  obs::TimerStats with_hist;
  with_hist.count = 100;
  with_hist.sum_s = 1.0;
  with_hist.mean_s = 0.010;
  with_hist.min_s = 0.010;
  with_hist.max_s = 0.010;
  with_hist.hist = fast.quantile_histogram();
  with_hist.refresh_quantiles();

  // A legacy plant's snapshot: exported quantiles only, no histogram.
  obs::TimerStats legacy;
  legacy.count = 100;
  legacy.sum_s = 100.0;
  legacy.mean_s = 1.0;
  legacy.min_s = 1.0;
  legacy.max_s = 1.0;
  legacy.p50_s = 1.0;
  legacy.p90_s = 1.0;
  legacy.p99_s = 1.0;
  legacy.p999_s = 1.0;

  // The legacy peer's worse quantiles must survive the histogram-driven
  // refresh in either merge direction, not just in the all-legacy branch.
  obs::TimerStats merged = with_hist;
  merged.merge(legacy);
  EXPECT_EQ(merged.count, 200u);
  EXPECT_GE(merged.p50_s, 1.0);
  EXPECT_GE(merged.p99_s, 1.0);

  obs::TimerStats reversed = legacy;
  reversed.merge(with_hist);
  EXPECT_EQ(reversed.count, 200u);
  EXPECT_GE(reversed.p50_s, 1.0);
  EXPECT_GE(reversed.p99_s, 1.0);
}

TEST(MetricsSnapshotTest, MergeSumsCountersAndRatioFallsBackToDerived) {
  obs::MetricsSnapshot a;
  a.counters["ppp.plan_hit.count"] = 3;
  a.counters["ppp.plan_miss.count"] = 1;
  obs::MetricsSnapshot b;
  b.counters["ppp.plan_hit.count"] = 1;
  b.counters["ppp.plan_miss.count"] = 3;
  a.merge(b);
  EXPECT_EQ(a.counter("ppp.plan_hit.count"), 4u);
  ASSERT_TRUE(a.ratio("ppp.plan_hit.count", "ppp.plan_miss.count").has_value());
  EXPECT_DOUBLE_EQ(*a.ratio("ppp.plan_hit.count", "ppp.plan_miss.count"), 0.5);

  // A pre-merged fleet snapshot carrying only the derived ratio still
  // answers ratio().
  obs::MetricsSnapshot premerged;
  premerged.derived["ppp_plan_hit_count/ppp_plan_miss_count"] = 0.75;
  auto ratio = premerged.ratio("ppp.plan_hit.count", "ppp.plan_miss.count");
  ASSERT_TRUE(ratio.has_value());
  EXPECT_DOUBLE_EQ(*ratio, 0.75);
}

TEST(MetricsSnapshotTest, AccessorsFallBackToFoldedNames) {
  obs::MetricsSnapshot snap;
  snap.counters["bus_call_count"] = 7;
  snap.gauges["vm_active_gauge"] = 3;
  snap.timers["plant_create_seconds"].count = 2;
  EXPECT_EQ(snap.counter("bus.call.count"), 7u);
  EXPECT_EQ(snap.gauge("vm.active.gauge"), 3);
  ASSERT_NE(snap.timer_stats("plant.create.seconds"), nullptr);
  EXPECT_EQ(snap.timer_stats("plant.create.seconds")->count, 2u);
}

// -- metrics_ad round trip ----------------------------------------------------

TEST(MetricsAdTest, SnapshotSurvivesAdRoundTrip) {
  obs::MetricsSnapshot snap;
  snap.counters["bus.call.count"] = 42;
  snap.gauges["vm.active.gauge"] = 5;
  obs::Timer t;
  for (int i = 0; i < 50; ++i) t.record(0.125);
  obs::TimerStats stats;
  stats.count = 50;
  stats.sum_s = 6.25;
  stats.mean_s = 0.125;
  stats.min_s = 0.125;
  stats.max_s = 0.125;
  stats.hist = t.quantile_histogram();
  stats.refresh_quantiles();
  snap.timers["plant.create.seconds"] = stats;
  snap.counters["ppp.plan_hit.count"] = 3;
  snap.counters["ppp.plan_miss.count"] = 1;

  const classad::ClassAd ad = obs::metrics_ad(snap, util::FaultReport{});
  const obs::MetricsSnapshot back = obs::metrics_snapshot_from_ad(ad);

  EXPECT_EQ(back.counter("bus.call.count"), 42u);
  EXPECT_EQ(back.gauge("vm.active.gauge"), 5);
  const obs::TimerStats* rt = back.timer_stats("plant.create.seconds");
  ASSERT_NE(rt, nullptr);
  EXPECT_EQ(rt->count, 50u);
  EXPECT_DOUBLE_EQ(rt->mean_s, 0.125);
  EXPECT_TRUE(rt->hist == stats.hist);
  EXPECT_DOUBLE_EQ(rt->p99_s, stats.p99_s);
  // WarehouseHitRatio lands in derived (both spellings).
  auto ratio = back.ratio("ppp.plan_hit.count", "ppp.plan_miss.count");
  ASSERT_TRUE(ratio.has_value());
  EXPECT_DOUBLE_EQ(*ratio, 0.75);
}

// -- Fleet aggregator end to end ---------------------------------------------

class FleetAggregatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("vmp-fleet-test-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
    obs::MetricsRegistry::instance().reset();
    fault::FaultRegistry::instance().clear();
    store_ = std::make_unique<storage::ArtifactStore>(root_);
    warehouse_ =
        std::make_unique<warehouse::Warehouse>(store_.get(), "warehouse");
    ASSERT_TRUE(workload::publish_paper_goldens(warehouse_.get()).ok());
    for (const char* name : {"plant0", "plant1"}) {
      core::PlantConfig pc;
      pc.name = name;
      pc.obs_export = true;
      plants_.push_back(
          std::make_unique<core::VmPlant>(pc, store_.get(), warehouse_.get()));
      ASSERT_TRUE(plants_.back()->attach_to_bus(&bus_, &registry_).ok());
    }
    shop_ = std::make_unique<core::VmShop>(core::ShopConfig{}, &bus_,
                                           &registry_);
    ASSERT_TRUE(shop_->attach_to_bus().ok());
  }

  void TearDown() override {
    fault::FaultRegistry::instance().clear();
    shop_.reset();
    plants_.clear();
    warehouse_.reset();
    store_.reset();
    std::filesystem::remove_all(root_);
  }

  core::FleetAggregatorConfig aggregator_config() {
    core::FleetAggregatorConfig fc;
    fc.stale_after_s = 10.0;
    fc.slo.error_budget = 0.10;
    fc.slo.short_window_s = 30.0;
    fc.slo.long_window_s = 120.0;
    return fc;
  }

  std::filesystem::path root_;
  std::unique_ptr<storage::ArtifactStore> store_;
  std::unique_ptr<warehouse::Warehouse> warehouse_;
  net::MessageBus bus_;
  net::ServiceRegistry registry_;
  std::vector<std::unique_ptr<core::VmPlant>> plants_;
  std::unique_ptr<core::VmShop> shop_;
};

TEST_F(FleetAggregatorTest, SweepPublishesHealthAndRollupAds) {
  core::VmInformationSystem shop_info;
  core::FleetAggregator agg(aggregator_config(), &bus_, &registry_,
                            &shop_info);
  double clock_s = 0.0;
  agg.set_clock([&clock_s] { return clock_s; });

  auto ad = shop_->create(workload::workspace_request(32, 0, "dom-a"));
  ASSERT_TRUE(ad.ok());

  EXPECT_EQ(agg.sweep(), 2u);
  EXPECT_TRUE(shop_info.contains(std::string(core::kObsHealthPrefix) +
                                 "plant0"));
  EXPECT_TRUE(shop_info.contains(std::string(core::kObsHealthPrefix) +
                                 "plant1"));
  auto rollup = shop_info.query(core::kObsFleetMetricsId);
  ASSERT_TRUE(rollup.ok());
  EXPECT_EQ(rollup.value().get_integer(core::fleet_attrs::kPlantCount), 2);
  // Exactly one creation happened somewhere in the fleet.
  EXPECT_EQ(rollup.value().get_integer("fleet_create_count"), 1);

  // The rollup carries a mergeable histogram for the fleet SLI.
  const obs::MetricsSnapshot fleet = agg.fleet_snapshot();
  const obs::TimerStats* sli = fleet.timer_stats("fleet.create.seconds");
  ASSERT_NE(sli, nullptr);
  EXPECT_EQ(sli->count, 1u);
  EXPECT_FALSE(sli->hist.empty());

  // Both plants healthy: neutral scores.
  EXPECT_DOUBLE_EQ(agg.health("plant0"), 1.0);
  EXPECT_DOUBLE_EQ(agg.health("plant1"), 1.0);
  EXPECT_DOUBLE_EQ(agg.health("no-such-plant"), 1.0);
}

TEST_F(FleetAggregatorTest, SweepRollsUpLifecycleHeadroom) {
  core::VmInformationSystem shop_info;
  core::FleetAggregator agg(aggregator_config(), &bus_, &registry_,
                            &shop_info);
  double clock_s = 0.0;
  agg.set_clock([&clock_s] { return clock_s; });

  // The plants in this rig share one process registry, so each reports the
  // same headroom gauge (a real deployment has one registry per plant).
  const std::int64_t headroom = 123ll << 20;
  obs::MetricsRegistry::instance()
      .gauge("lifecycle.headroom_bytes.gauge")
      ->set(headroom);
  EXPECT_EQ(agg.sweep(), 2u);

  auto health = shop_info.query(std::string(core::kObsHealthPrefix) +
                                "plant0");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().get_integer(core::fleet_attrs::kHeadroomBytes),
            headroom);
  auto verdict = agg.plant_health("plant1");
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->lifecycle_headroom_bytes, headroom);

  // The fleet rollup sums headroom over fresh plants.
  const obs::MetricsSnapshot fleet = agg.fleet_snapshot();
  EXPECT_EQ(fleet.gauge("fleet.lifecycle.headroom_bytes.gauge"),
            2 * headroom);
  auto rollup = shop_info.query(core::kObsFleetMetricsId);
  ASSERT_TRUE(rollup.ok());
  EXPECT_EQ(rollup.value().get_integer("fleet_lifecycle_headroom_bytes_gauge"),
            2 * headroom);
}

TEST_F(FleetAggregatorTest, FailingPlantBurnsBudgetAndLosesHealth) {
  core::VmInformationSystem shop_info;
  core::FleetAggregator agg(aggregator_config(), &bus_, &registry_,
                            &shop_info);
  double clock_s = 0.0;
  agg.set_clock([&clock_s] { return clock_s; });

  // Every resume on plant1's VMs fails: plant1 creations all fail (the
  // shop fails over to plant0), burning plant1's error budget.
  auto plan = fault::FaultPlan::parse("hypervisor.resume:target=plant1-vm");
  ASSERT_TRUE(plan.ok());
  fault::FaultRegistry::instance().install(plan.value());

  for (std::size_t i = 0; i < 6; ++i) {
    auto ad = shop_->create(workload::workspace_request(32, i, "dom-a"));
    ASSERT_TRUE(ad.ok());  // plant0 serves everything
    EXPECT_EQ(ad.value().get_string(core::attrs::kPlant).value_or(""),
              "plant0");
  }

  clock_s = 5.0;
  EXPECT_EQ(agg.sweep(), 2u);
  auto plant1 = agg.plant_health("plant1");
  ASSERT_TRUE(plant1.has_value());
  EXPECT_GT(plant1->bad_total, 0u);
  EXPECT_GT(plant1->short_burn, 1.0);
  EXPECT_LT(agg.health("plant1"), 1.0);
  EXPECT_DOUBLE_EQ(agg.health("plant0"), 1.0);
}

TEST_F(FleetAggregatorTest, SilentPlantAgesOutOfHealthAndRollup) {
  core::VmInformationSystem shop_info;
  core::FleetAggregator agg(aggregator_config(), &bus_, &registry_,
                            &shop_info);
  double clock_s = 0.0;
  agg.set_clock([&clock_s] { return clock_s; });

  EXPECT_EQ(agg.sweep(), 2u);
  const std::string plant1_ad =
      std::string(core::kObsHealthPrefix) + "plant1";
  EXPECT_TRUE(shop_info.contains(plant1_ad));

  // plant1 goes silent mid-sweep (detached from the bus).  Its verdict
  // survives until stale_after_s passes ...
  plants_[1]->detach_from_bus();
  clock_s = 5.0;
  EXPECT_EQ(agg.sweep(), 1u);
  EXPECT_TRUE(shop_info.contains(plant1_ad));
  EXPECT_DOUBLE_EQ(agg.health("plant1"), 1.0);

  // ... then ages out: the health ad is removed, the rollup forgets it.
  clock_s = 20.0;
  EXPECT_EQ(agg.sweep(), 1u);
  EXPECT_FALSE(shop_info.contains(plant1_ad));
  auto rollup = shop_info.query(core::kObsFleetMetricsId);
  ASSERT_TRUE(rollup.ok());
  EXPECT_EQ(rollup.value().get_integer(core::fleet_attrs::kPlantCount), 1);
  EXPECT_DOUBLE_EQ(agg.health("plant1"), 1.0);
}

TEST_F(FleetAggregatorTest, StopPeriodicRemovesPublishedAds) {
  core::VmInformationSystem shop_info;
  core::FleetAggregator agg(aggregator_config(), &bus_, &registry_,
                            &shop_info);
  agg.start_periodic(std::chrono::milliseconds(5));
  while (agg.sweeps() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(agg.periodic_running());
  agg.stop_periodic();
  EXPECT_FALSE(agg.periodic_running());
  EXPECT_FALSE(shop_info.contains(std::string(core::kObsHealthPrefix) +
                                  "plant0"));
  EXPECT_FALSE(shop_info.contains(core::kObsFleetMetricsId));
}

TEST_F(FleetAggregatorTest, ExportJsonlWritesHealthAndRollupLines) {
  core::VmInformationSystem shop_info;
  core::FleetAggregator agg(aggregator_config(), &bus_, &registry_,
                            &shop_info);
  ASSERT_TRUE(shop_->create(workload::workspace_request(32, 0, "dom-a")).ok());
  agg.sweep();
  const std::string path = (root_ / "fleet.jsonl").string();
  ASSERT_TRUE(agg.export_jsonl(path));
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0, health_lines = 0, rollup_lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    if (line.find("obs://health/") != std::string::npos) ++health_lines;
    if (line.find("obs://fleet/metrics") != std::string::npos) ++rollup_lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(lines, 3u);
  EXPECT_EQ(health_lines, 2u);
  EXPECT_EQ(rollup_lines, 1u);
}

// -- Monitor lifecycle: obs:// ads leave no residue --------------------------

TEST(VmMonitorLifecycleTest, StopPeriodicRemovesHealthAndFleetAds) {
  storage::ArtifactStore store(std::filesystem::temp_directory_path() /
                               ("vmp-monitor-test-" +
                                std::to_string(::getpid())));
  hv::GsxHypervisor hypervisor(&store);
  core::VmInformationSystem info;
  core::VmMonitor monitor(&hypervisor, &info);
  monitor.enable_obs_export();
  monitor.start_periodic(std::chrono::milliseconds(5));
  while (monitor.sweeps() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(info.contains(core::kObsMetricsId));

  // Health and fleet ads published into the same store (an aggregator
  // co-located with the monitor) are cleaned up too: the whole obs://
  // namespace leaves with the monitor.
  classad::ClassAd health;
  health.set_real(core::fleet_attrs::kHealth, 0.5);
  info.store(std::string(core::kObsHealthPrefix) + "plant0", health);
  info.store(core::kObsFleetMetricsId, classad::ClassAd{});

  monitor.stop_periodic();
  EXPECT_FALSE(info.contains(core::kObsMetricsId));
  EXPECT_FALSE(
      info.contains(std::string(core::kObsHealthPrefix) + "plant0"));
  EXPECT_FALSE(info.contains(core::kObsFleetMetricsId));
}

// -- Health-aware bid selection ----------------------------------------------

TEST_F(FleetAggregatorTest, HealthPenaltySteersTiedBidsToHealthyPlant) {
  core::ShopConfig sc;
  sc.health_penalty_weight = 1.0;
  core::VmShop shop(sc, &bus_, &registry_);
  shop.set_health_provider([](const std::string& plant) {
    return plant == "plant1" ? 0.2 : 1.0;
  });

  std::vector<core::Bid> bids{{"plant0", 10.0}, {"plant1", 10.0}};
  // plant1's effective cost is 10 * (1 + 1.0 * 0.8) = 18.
  EXPECT_DOUBLE_EQ(shop.effective_cost(bids[1]), 18.0);
  for (int i = 0; i < 16; ++i) {
    auto chosen = shop.select_bid(bids);
    ASSERT_TRUE(chosen.has_value());
    EXPECT_EQ(chosen->plant_address, "plant0");
  }
}

TEST_F(FleetAggregatorTest, ZeroWeightKeepsPaperSelectionAndRng) {
  // With the penalty off, selection must behave exactly like the seeded
  // paper path even when a provider is installed: both tied plants remain
  // candidates and the RNG stream is consumed identically.
  core::ShopConfig sc;  // health_penalty_weight = 0
  core::VmShop with_provider(sc, &bus_, &registry_);
  with_provider.set_health_provider(
      [](const std::string&) { return 0.0; });
  core::VmShop without_provider(sc, &bus_, &registry_);

  std::vector<core::Bid> bids{{"plant0", 10.0}, {"plant1", 10.0}};
  for (int i = 0; i < 64; ++i) {
    auto a = with_provider.select_bid(bids);
    auto b = without_provider.select_bid(bids);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(a->plant_address, b->plant_address);
  }
}

TEST_F(FleetAggregatorTest, SelectBidSnapshotsHealthOncePerPlant) {
  core::ShopConfig sc;
  sc.health_penalty_weight = 1.0;
  core::VmShop shop(sc, &bus_, &registry_);
  // Adversarial provider: health decays on every read, emulating the
  // aggregator's sweep thread mutating health mid-selection.  Selection
  // must read each plant exactly once and reuse the cached value — with
  // live re-reads the filter pass can disagree with the min pass and end
  // up with zero candidates.
  int calls = 0;
  shop.set_health_provider([&calls](const std::string&) {
    return 1.0 - 0.1 * static_cast<double>(calls++);
  });

  std::vector<core::Bid> bids{{"plant0", 10.0}, {"plant1", 10.0}};
  auto chosen = shop.select_bid(bids);
  ASSERT_TRUE(chosen.has_value());
  // First read wins: plant0 sampled at health 1.0 beats plant1 at 0.9.
  EXPECT_EQ(chosen->plant_address, "plant0");
  EXPECT_EQ(calls, 2);
}

TEST_F(FleetAggregatorTest, ShopRoutesAroundBurningPlantViaAggregator) {
  core::VmInformationSystem shop_info;
  core::FleetAggregator agg(aggregator_config(), &bus_, &registry_,
                            &shop_info);
  double clock_s = 0.0;
  agg.set_clock([&clock_s] { return clock_s; });

  core::ShopConfig sc;
  sc.health_penalty_weight = 4.0;
  core::VmShop shop(sc, &bus_, &registry_);
  shop.set_health_provider(
      [&agg](const std::string& plant) { return agg.health(plant); });

  // Phase 1: plant1's resumes fail; the shop discovers this the hard way
  // (failover) while the aggregator accumulates plant1's failures.
  auto plan = fault::FaultPlan::parse("hypervisor.resume:target=plant1-vm");
  ASSERT_TRUE(plan.ok());
  fault::FaultRegistry::instance().install(plan.value());
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(shop.create(workload::workspace_request(32, i, "dom-a")).ok());
  }
  clock_s = 5.0;
  agg.sweep();
  ASSERT_LT(agg.health("plant1"), 1.0);

  // Phase 2: faults cleared — plant1 would work again, but its burned
  // budget penalizes its bids, so fresh ties go to plant0 proactively.
  fault::FaultRegistry::instance().clear();
  const std::uint64_t failovers_before = shop.failovers();
  for (std::size_t i = 4; i < 8; ++i) {
    auto ad = shop.create(workload::workspace_request(32, i, "dom-a"));
    ASSERT_TRUE(ad.ok());
    EXPECT_EQ(ad.value().get_string(core::attrs::kPlant).value_or(""),
              "plant0");
  }
  EXPECT_EQ(shop.failovers(), failovers_before);
}

}  // namespace
}  // namespace vmp
