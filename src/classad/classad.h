// The ClassAd container: an ordered map from attribute names (case
// insensitive, per Condor) to expressions.
//
// VMPlant uses classads in three places (paper Sections 3.1-3.2):
//   * the creation response handed back to the client (VMID, IP address,
//     SSH key fingerprints, action outputs);
//   * the per-plant VM Information System, which stores one ad per active
//     VM and refreshes dynamic attributes from the VM monitor;
//   * hardware-requirement matching between a creation request and golden
//     machine descriptors.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "classad/expr.h"
#include "util/error.h"

namespace vmp::xml {
class Element;
}

namespace vmp::classad {

class ClassAd {
 public:
  ClassAd() = default;
  ClassAd(const ClassAd& other);
  ClassAd& operator=(const ClassAd& other);
  ClassAd(ClassAd&&) = default;
  ClassAd& operator=(ClassAd&&) = default;

  // -- Building -------------------------------------------------------------
  void set(const std::string& name, ExprPtr expr);
  void set_integer(const std::string& name, std::int64_t v);
  void set_real(const std::string& name, double v);
  void set_string(const std::string& name, std::string v);
  void set_boolean(const std::string& name, bool v);
  /// Parses `expr_text` as an expression; returns parse failure unchanged.
  util::Status set_expression(const std::string& name,
                              const std::string& expr_text);

  bool erase(const std::string& name);
  bool has(const std::string& name) const;
  std::size_t size() const { return attrs_.size(); }

  /// Attribute names in insertion order.
  std::vector<std::string> names() const;

  /// Unevaluated expression (nullptr if absent).
  const Expr* lookup(const std::string& name) const;

  // -- Evaluation -----------------------------------------------------------
  /// Evaluate an attribute with this ad as `self` (and optionally a match
  /// candidate as `other`).  Missing attributes evaluate to UNDEFINED;
  /// cyclic definitions to ERROR.
  Value evaluate(const std::string& name, const ClassAd* other = nullptr) const;

  /// Typed convenience accessors: value if present and of the right type.
  std::optional<std::int64_t> get_integer(const std::string& name) const;
  std::optional<double> get_number(const std::string& name) const;
  std::optional<std::string> get_string(const std::string& name) const;
  std::optional<bool> get_boolean(const std::string& name) const;

  // -- Serialization --------------------------------------------------------
  /// Condor-style "[ a = 1; b = "x"; ]" rendering.
  std::string to_string() const;
  /// XML rendering used in wire messages: <classad><attr name="a">1</attr>...
  void to_xml(xml::Element* parent) const;
  static util::Result<ClassAd> from_xml(const xml::Element& element);

  bool operator==(const ClassAd& other) const;

 private:
  friend class AttrRefExpr;
  /// Case-insensitive key.
  static std::string fold(const std::string& name);

  struct Slot {
    std::string display_name;  // original spelling
    ExprPtr expr;
  };
  std::map<std::string, Slot> attrs_;      // folded name -> slot
  std::vector<std::string> order_;         // folded names, insertion order
};

/// Parse "[ a = 1; b = 2 ]" or a bare attribute list "a = 1\nb = 2".
util::Result<ClassAd> parse_classad(const std::string& text);

/// Parse a single expression.
util::Result<ExprPtr> parse_expression(const std::string& text);

}  // namespace vmp::classad
