// Bounded retry with deterministic exponential backoff in sim-time.
//
// The shop's bid-then-retry creation flow and the plant's production line
// both need "try again, but not forever" semantics.  Real wall-clock
// sleeping would make tests slow and nondeterministic, so backoff is
// accounted in virtual seconds: each recorded failure charges the next
// backoff delay against a per-request sim-time budget, and the caller can
// feed the accumulated delay into the DES timing model (or ignore it in
// direct-call tests).  Everything is pure arithmetic — same failures, same
// decisions, every run.
#pragma once

#include <string>

namespace vmp::util {

struct RetryPolicy {
  /// Total attempts allowed, including the first (1 = no retries).
  int max_attempts = 3;
  /// Backoff before the first retry, in sim seconds.
  double initial_backoff_s = 0.5;
  /// Each subsequent backoff multiplies by this (>= 1).
  double backoff_multiplier = 2.0;
  /// Backoff ceiling, in sim seconds.
  double max_backoff_s = 8.0;
  /// Per-request budget of accumulated backoff sim-time; a retry whose
  /// backoff would exceed the budget is refused (0 = unlimited).
  double request_timeout_s = 60.0;

  /// Backoff charged before retry number `retry_index` (0-based):
  /// min(initial * multiplier^retry_index, max).
  double backoff(int retry_index) const;

  /// "attempts=3 backoff=0.5s*2<=8s timeout=60s" (diagnostics).
  std::string to_string() const;
};

/// Tracks one request's retry budget against a policy.
class RetryState {
 public:
  explicit RetryState(const RetryPolicy& policy) : policy_(policy) {}

  /// Record a failed attempt.  Returns true when another attempt is allowed
  /// (attempt count and sim-time budget both permit), charging the backoff
  /// delay to elapsed(); returns false when the budget is exhausted.
  bool allow_retry();

  /// Failed attempts recorded so far.
  int failures() const { return failures_; }
  /// Retries granted so far.
  int retries_granted() const { return retries_; }
  /// Virtual seconds spent backing off.
  double elapsed_backoff_s() const { return elapsed_; }
  /// True when allow_retry() refused because the sim-time budget ran out
  /// (as opposed to the attempt cap).
  bool timed_out() const { return timed_out_; }

 private:
  RetryPolicy policy_;
  int failures_ = 0;
  int retries_ = 0;
  double elapsed_ = 0.0;
  bool timed_out_ = false;
};

}  // namespace vmp::util
