#include "hypervisor/guest.h"

#include <cstdio>

#include "util/random.h"
#include "util/strings.h"

namespace vmp::hv {

using util::Error;
using util::ErrorCode;
using util::Result;

bool GuestState::operator==(const GuestState& other) const {
  return os == other.os && hostname == other.hostname && ip == other.ip &&
         mac == other.mac && packages == other.packages &&
         users == other.users && mounts == other.mounts &&
         running_services == other.running_services && files == other.files;
  // flaky_counters intentionally excluded: they are fault-injection
  // bookkeeping, not guest configuration.
}

namespace {

/// Encode a value so it survives line-oriented storage.
std::string encode(const std::string& raw) {
  std::string out;
  for (char c : raw) {
    switch (c) {
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\\': out += "\\\\"; break;
      default: out += c;
    }
  }
  return out;
}

std::string decode(const std::string& enc) {
  std::string out;
  for (std::size_t i = 0; i < enc.size(); ++i) {
    if (enc[i] == '\\' && i + 1 < enc.size()) {
      ++i;
      switch (enc[i]) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case '\\': out += '\\'; break;
        default: out += enc[i];
      }
    } else {
      out += enc[i];
    }
  }
  return out;
}

}  // namespace

std::string render_guest_state(const GuestState& state) {
  std::string out;
  out += "os\t" + encode(state.os) + "\n";
  out += "hostname\t" + encode(state.hostname) + "\n";
  out += "ip\t" + encode(state.ip) + "\n";
  out += "mac\t" + encode(state.mac) + "\n";
  for (const auto& p : state.packages) out += "package\t" + encode(p) + "\n";
  for (const auto& [name, home] : state.users) {
    out += "user\t" + encode(name) + "\t" + encode(home) + "\n";
  }
  for (const auto& [mountpoint, source] : state.mounts) {
    out += "mount\t" + encode(mountpoint) + "\t" + encode(source) + "\n";
  }
  for (const auto& s : state.running_services) {
    out += "service\t" + encode(s) + "\n";
  }
  for (const auto& [path, content] : state.files) {
    out += "file\t" + encode(path) + "\t" + encode(content) + "\n";
  }
  return out;
}

Result<GuestState> parse_guest_state(const std::string& text) {
  GuestState state;
  for (const std::string& line : util::split(text, '\n')) {
    if (util::trim(line).empty()) continue;
    const auto fields = util::split(line, '\t');
    const std::string& tag = fields[0];
    auto field = [&](std::size_t i) {
      return i < fields.size() ? decode(fields[i]) : std::string();
    };
    if (tag == "os") state.os = field(1);
    else if (tag == "hostname") state.hostname = field(1);
    else if (tag == "ip") state.ip = field(1);
    else if (tag == "mac") state.mac = field(1);
    else if (tag == "package") state.packages.insert(field(1));
    else if (tag == "user") state.users[field(1)] = field(2);
    else if (tag == "mount") state.mounts[field(1)] = field(2);
    else if (tag == "service") state.running_services.insert(field(1));
    else if (tag == "file") state.files[field(1)] = field(2);
    else {
      return Result<GuestState>(
          Error(ErrorCode::kParseError, "guest state: unknown tag " + tag));
    }
  }
  return state;
}

// ---------------------------------------------------------------------------
// GuestAgent
// ---------------------------------------------------------------------------

namespace {

/// Split "cmd arg1 rest of line" into words; the final argument of
/// commands that accept free text is re-joined by the caller.
std::vector<std::string> words(const std::string& line) {
  std::vector<std::string> out;
  std::string current;
  for (char c : line) {
    if (c == ' ' || c == '\t') {
      if (!current.empty()) {
        out.push_back(current);
        current.clear();
      }
    } else {
      current += c;
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

std::string rest_after(const std::string& line, std::size_t n_words) {
  // Returns the raw text after the first n_words tokens.
  std::size_t pos = 0;
  std::size_t seen = 0;
  while (pos < line.size() && seen < n_words) {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
    while (pos < line.size() && line[pos] != ' ' && line[pos] != '\t') ++pos;
    ++seen;
  }
  while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
  return line.substr(pos);
}

}  // namespace

GuestOutput GuestAgent::execute(GuestState* state,
                                const std::string& script) const {
  GuestOutput result;
  auto fail = [&](const std::string& message) {
    result.success = false;
    result.failure_message = message;
    result.log.push_back("FAIL: " + message);
  };

  for (const std::string& raw_line : util::split(script, '\n')) {
    const std::string line(util::trim(raw_line));
    if (line.empty() || line[0] == '#') continue;
    const auto argv = words(line);
    const std::string& cmd = argv[0];
    ++result.commands_run;
    result.log.push_back(line);

    if (cmd == "installos") {
      if (argv.size() < 2) { fail("installos: missing distro"); break; }
      state->os = argv[1];
    } else if (cmd == "install") {
      if (argv.size() < 2) { fail("install: missing package"); break; }
      state->packages.insert(argv[1]);
    } else if (cmd == "remove") {
      if (argv.size() < 2) { fail("remove: missing package"); break; }
      state->packages.erase(argv[1]);
      state->running_services.erase(argv[1]);
    } else if (cmd == "require") {
      if (argv.size() < 2) { fail("require: missing package"); break; }
      if (!state->packages.count(argv[1])) {
        fail("require: package not installed: " + argv[1]);
        break;
      }
    } else if (cmd == "adduser") {
      if (argv.size() < 2) { fail("adduser: missing name"); break; }
      if (state->users.count(argv[1])) {
        fail("adduser: user exists: " + argv[1]);
        break;
      }
      state->users[argv[1]] =
          argv.size() > 2 ? argv[2] : "/home/" + argv[1];
    } else if (cmd == "deluser") {
      if (argv.size() < 2) { fail("deluser: missing name"); break; }
      if (state->users.erase(argv[1]) == 0) {
        fail("deluser: no such user: " + argv[1]);
        break;
      }
    } else if (cmd == "ifconfig") {
      if (argv.size() < 2) { fail("ifconfig: missing ip"); break; }
      state->ip = argv[1];
      if (argv.size() > 2) state->mac = argv[2];
    } else if (cmd == "hostname") {
      if (argv.size() < 2) { fail("hostname: missing name"); break; }
      state->hostname = argv[1];
    } else if (cmd == "mount") {
      if (argv.size() < 3) { fail("mount: need source and mountpoint"); break; }
      if (state->mounts.count(argv[2])) {
        fail("mount: mountpoint busy: " + argv[2]);
        break;
      }
      state->mounts[argv[2]] = argv[1];
    } else if (cmd == "umount") {
      if (argv.size() < 2) { fail("umount: missing mountpoint"); break; }
      if (state->mounts.erase(argv[1]) == 0) {
        fail("umount: not mounted: " + argv[1]);
        break;
      }
    } else if (cmd == "start") {
      if (argv.size() < 2) { fail("start: missing service"); break; }
      if (!state->packages.count(argv[1])) {
        fail("start: service not installed: " + argv[1]);
        break;
      }
      state->running_services.insert(argv[1]);
    } else if (cmd == "stop") {
      if (argv.size() < 2) { fail("stop: missing service"); break; }
      state->running_services.erase(argv[1]);
    } else if (cmd == "writefile") {
      if (argv.size() < 2) { fail("writefile: missing path"); break; }
      state->files[argv[1]] = rest_after(line, 2);
    } else if (cmd == "output") {
      if (argv.size() < 3) { fail("output: need key and value"); break; }
      result.outputs[argv[1]] = rest_after(line, 2);
    } else if (cmd == "sshkeygen") {
      if (argv.size() < 2) { fail("sshkeygen: missing user"); break; }
      if (!state->users.count(argv[1])) {
        fail("sshkeygen: no such user: " + argv[1]);
        break;
      }
      // Deterministic "fingerprint" derived from the guest identity, so
      // clones configured for different users/hosts get distinct keys.
      const std::uint64_t digest = util::derive_seed(
          0x55a9, argv[1] + "@" + state->hostname + "/" + state->ip);
      char fingerprint[32];
      std::snprintf(fingerprint, sizeof fingerprint, "%016llx",
                    static_cast<unsigned long long>(digest));
      const std::string home = state->users.at(argv[1]);
      state->files[home + "/.ssh/id_rsa.pub"] =
          "ssh-rsa " + std::string(fingerprint) + " " + argv[1];
      result.outputs["SSHKey_" + argv[1]] = fingerprint;
    } else if (cmd == "gridcert") {
      if (argv.size() < 3) { fail("gridcert: need user and subject"); break; }
      if (!state->users.count(argv[1])) {
        fail("gridcert: no such user: " + argv[1]);
        break;
      }
      const std::string subject = rest_after(line, 2);
      state->files["/etc/grid-security/" + argv[1] + ".pem"] =
          "SUBJECT=" + subject;
      result.outputs["GSISubject_" + argv[1]] = subject;
    } else if (cmd == "fail") {
      fail(argv.size() > 1 ? rest_after(line, 1) : "injected failure");
      break;
    } else if (cmd == "flaky") {
      if (argv.size() < 3) { fail("flaky: need token and count"); break; }
      long long threshold = 0;
      if (!util::parse_int64(argv[2], &threshold) || threshold < 0) {
        fail("flaky: bad count: " + argv[2]);
        break;
      }
      const std::uint32_t seen = state->flaky_counters[argv[1]]++;
      if (seen < static_cast<std::uint32_t>(threshold)) {
        fail("flaky: transient failure " + std::to_string(seen + 1) + "/" +
             argv[2] + " for " + argv[1]);
        break;
      }
    } else {
      fail("unknown command: " + cmd);
      break;
    }
  }
  return result;
}

}  // namespace vmp::hv
