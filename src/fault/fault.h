// Deterministic fault injection.
//
// The paper's robustness story (Section 3.1: the shop's routing map is a
// rebuildable cache, the authoritative classad lives at the plant; creation
// is bid-then-retry) only matters when components actually fail.  This
// module provides a seed-deterministic way to make them fail on purpose:
//
//   * A FaultPlan is a list of rules parsed from a compact spec string
//     ("store.write:target=clones,after=2,times=1,code=UNAVAILABLE") or the
//     equivalent XML, plus a seed for probabilistic rules.
//   * The process-wide FaultRegistry holds the armed plan.  Components
//     consult named injection points through the inline fault::check()
//     hook; with no plan armed the hook is a single relaxed atomic load,
//     so production paths pay nothing.
//   * A firing fault surfaces as an ordinary util::Status carrying one of
//     the existing ErrorCode categories — never as new control flow — so
//     callers exercise exactly the error paths a real failure would.
//
// Determinism: rules are evaluated in plan order, probabilistic rules draw
// from a SplitMix64 seeded by the plan, and the registry records the firing
// sequence; the same seed and the same consult sequence replay the same
// injections byte-for-byte (asserted in fault_test).  Rules can further be
// gated to a sim-time window ([from,until) seconds) when a clock source is
// installed, in the spirit of SimGrid's host/link failure timelines.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.h"
#include "util/random.h"
#include "util/stats.h"
#include "xml/xml.h"

namespace vmp::fault {

/// Named injection points wired into the libraries.  The set is closed:
/// FaultPlan parsing rejects unknown names so a typo cannot silently arm
/// nothing.
namespace points {
inline constexpr const char* kBusSend = "bus.send";
inline constexpr const char* kBusTimeout = "bus.timeout";
inline constexpr const char* kStoreRead = "store.read";
inline constexpr const char* kStoreWrite = "store.write";
inline constexpr const char* kStoreRemove = "store.remove";
inline constexpr const char* kHypervisorResume = "hypervisor.resume";
inline constexpr const char* kPlantConfigureAction = "plant.configure_action";
/// Consulted once per plant in VmShop::collect_bids (detail = the plant's
/// bus address).  A firing turns that one bid into a skipped bid — the
/// per-bid timeout (ShopConfig::bid_timeout_s) expiring — without
/// touching the others, so the explorer can branch on individual bid
/// losses.
inline constexpr const char* kShopBid = "shop.bid";
}  // namespace points

/// All known injection-point names.
const std::vector<std::string>& known_points();

/// Default error category surfaced by a point when a rule names none
/// (bus.timeout -> TIMEOUT, hypervisor.resume -> INTERNAL,
/// plant.configure_action -> CONFIG_ACTION_FAILED, otherwise UNAVAILABLE).
util::ErrorCode default_code(const std::string& point);

/// One injection rule.
struct FaultRule {
  std::string point;             // injection-point name (required)
  std::string target;            // substring filter on the consult detail
  util::ErrorCode code;          // error surfaced when firing
  bool code_explicit = false;    // code was named in the spec
  std::uint64_t after = 0;       // skip the first N matching consults
  std::uint64_t times = 0;       // fire at most N times (0 = unlimited)
  double probability = 1.0;      // chance an eligible consult fires
  double from_time = 0.0;        // active window start (sim seconds)
  double until_time = -1.0;      // window end; < 0 = no end
  std::string message;           // optional custom error message

  std::string to_spec_string() const;
};

/// A parsed fault plan: rules in evaluation order plus the RNG seed for
/// probabilistic rules.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Parse the compact grammar:
  ///   plan := rule (';' rule)*
  ///   rule := point [':' kv (',' kv)*]
  ///   kv   := after=N | times=N | p=F | code=NAME | target=S | msg=S
  ///           | from=F | until=F
  /// An empty spec yields an empty (armed but inert) plan.
  static util::Result<FaultPlan> parse(const std::string& spec,
                                       std::uint64_t seed = 1);

  /// XML form: <fault-plan seed="7"><fault point="store.write" target="x"
  /// after="2" times="1" code="UNAVAILABLE" p="0.5" msg="..."/></fault-plan>
  static util::Result<FaultPlan> from_xml(const xml::Element& root);
  static util::Result<FaultPlan> from_xml_string(const std::string& text);

  /// Canonical spec string (parse(to_spec_string()) round-trips).
  std::string to_spec_string() const;

  std::uint64_t seed() const { return seed_; }
  void set_seed(std::uint64_t seed) { seed_ = seed; }
  const std::vector<FaultRule>& rules() const { return rules_; }
  bool empty() const { return rules_.empty(); }
  void add_rule(FaultRule rule) { rules_.push_back(std::move(rule)); }

 private:
  std::uint64_t seed_ = 1;
  std::vector<FaultRule> rules_;
};

/// Process-wide registry of armed faults.  Thread-safe; consults are
/// serialized, so the firing sequence is deterministic whenever the consult
/// order is (single-threaded scenarios and the DES).
class FaultRegistry {
 public:
  static FaultRegistry& instance();

  /// Arm a plan: resets all counters, the firing log, and the RNG.
  void install(FaultPlan plan);

  /// Disarm and reset.  After clear(), check() costs one atomic load.
  void clear();

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Install a sim-time source used by rules with from/until windows.
  /// Pass nullptr to revert to the default (time 0: only windowed rules
  /// with from <= 0 are active).  Cleared by install()/clear().
  void set_clock(std::function<double()> clock);

  /// Exploration mode (DESIGN.md §12).  While a decider is installed, the
  /// fire / no-fire outcome of every ELIGIBLE consult — a rule whose point,
  /// target, time window, `after` skip and `times` budget all matched —
  /// comes from the decider instead of the rule's probability draw, so the
  /// state-space explorer can enumerate BOTH outcomes of each hook site
  /// (a p=1 rule becomes a binary decision point too).  Called under the
  /// registry mutex: the decider must not call back into the registry.
  /// Pass nullptr to restore seeded-RNG behavior; cleared by
  /// install()/clear().
  using Decider =
      std::function<bool(const std::string& point, const std::string& detail)>;
  void set_decider(Decider decider);
  bool exploring() const;

  /// Observability tap: called once per FIRED injection (after the firing
  /// is recorded), under the registry mutex — the listener must not call
  /// back into the registry.  Unlike the clock and decider this survives
  /// install()/clear(): it observes plans, it is not part of one.  The
  /// obs::Journal flight recorder installs itself here so counterexample
  /// dumps carry the fault timeline.
  using FireListener =
      std::function<void(const std::string& point, const std::string& detail)>;
  void set_fire_listener(FireListener listener);

  /// Correlation tap: returns the calling thread's trace id ("" when the
  /// thread is not inside a traced request).  Like the fire listener this
  /// survives install()/clear() — it observes plans rather than being part
  /// of one — and is called under the registry mutex, so the provider must
  /// not call back into the registry.  obs::Journal installs
  /// obs::Tracer::current() here so every fired injection is stamped with
  /// the trace it interrupted (DESIGN.md §14).
  using TraceProvider = std::function<std::string()>;
  void set_trace_provider(TraceProvider provider);

  /// The hook body: evaluate rules for `point`.  Called via fault::check().
  util::Status consult(const std::string& point, const std::string& detail);

  // -- Introspection (all snapshots; safe while armed) ------------------------
  /// Counters of fired injections per point.
  util::FaultReport report() const;
  std::uint64_t fired(const std::string& point) const;
  std::uint64_t fired_total() const;
  /// Total consults evaluated while armed (fired or not).
  std::uint64_t checks() const;
  /// Firing log, in order: "point@detail" entries.
  std::vector<std::string> sequence() const;
  /// Trace ids parallel to sequence(): the trace each firing interrupted
  /// ("" when none, or when no trace provider is installed).
  std::vector<std::string> sequence_traces() const;

 private:
  FaultRegistry() = default;

  mutable std::mutex mutex_;
  std::atomic<bool> armed_{false};
  FaultPlan plan_;
  std::vector<FaultRule> live_;  // rules with runtime counters
  std::vector<std::uint64_t> seen_;
  std::vector<std::uint64_t> rule_fired_;
  util::SplitMix64 rng_{1};
  std::function<double()> clock_;
  Decider decider_;
  FireListener fire_listener_;
  TraceProvider trace_provider_;
  util::FaultReport report_;
  std::vector<std::string> sequence_;
  std::vector<std::string> sequence_traces_;
  std::uint64_t checks_ = 0;
};

/// The inline hook components call.  Disabled registry: one atomic load.
inline util::Status check(const char* point, const std::string& detail = "") {
  FaultRegistry& registry = FaultRegistry::instance();
  if (!registry.armed()) return util::Status();
  return registry.consult(point, detail);
}

/// RAII plan installation for tests and examples: arms on construction,
/// clears on destruction.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan plan) {
    FaultRegistry::instance().install(std::move(plan));
  }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
  ~ScopedFaultPlan() { FaultRegistry::instance().clear(); }
};

}  // namespace vmp::fault
