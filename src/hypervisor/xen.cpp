#include "hypervisor/xen.h"

namespace vmp::hv {

using util::Error;
using util::ErrorCode;
using util::Status;

Status XenHypervisor::validate_clone_source(const CloneSource& source) const {
  if (source.spec.suspended) {
    return Status(ErrorCode::kFailedPrecondition,
                  "xen: golden image must be powered off (no checkpoint "
                  "support in this production line)");
  }
  if (source.spec.disk.mode != storage::DiskMode::kPersistent &&
      source.spec.disk.mode != storage::DiskMode::kNonPersistent) {
    return Status(ErrorCode::kFailedPrecondition, "xen: unknown disk mode");
  }
  if (source.spec.disk.mode == storage::DiskMode::kPersistent) {
    return Status(ErrorCode::kFailedPrecondition,
                  "xen: golden file system must be shareable copy-on-write");
  }
  return Status();
}

Status XenHypervisor::do_start(VmInstance* vm) {
  // Paravirtual boot through domain 0: file-system spans must be reachable;
  // transient runtime state resets like any boot.
  for (const std::string& span : vm->layout.span_paths(vm->spec.disk)) {
    if (!store_->exists(span)) {
      return Status(ErrorCode::kFailedPrecondition,
                    "xen: missing file system span: " + span);
    }
  }
  vm->guest.running_services.clear();
  return Status();
}

}  // namespace vmp::hv
