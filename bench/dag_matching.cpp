// §3.2 / Figure 3 — DAG partial matching: correctness on the paper's
// example plus an ablation quantifying what matching buys.
//
// The ablation compares creation with partial matching (clone the golden
// that already has A..C performed) against a matching-disabled PPP that
// always clones a blank-prefix image and executes the full DAG — the
// "every action at create time" world the paper's caching avoids.  It also
// sweeps matching cost against warehouse size and DAG size (the PPP runs
// the three tests against every cached image).
#include <chrono>
#include <cstdio>

#include "common.h"
#include "dag/matching.h"
#include "workload/dag_library.h"

int main() {
  using namespace vmp;
  bench::print_header(
      "§3.2 / Figure 3 — DAG partial matching and its payoff",
      "golden image with prefix A..C satisfies the workspace DAG; only "
      "D..I execute at create time");

  // 1. The Figure 3 example.
  workload::WorkspaceParams params;
  dag::ConfigDag request = workload::invigo_workspace_dag(params);
  auto eval = dag::evaluate_match(request, workload::invigo_golden_history());
  if (!eval.ok() || !eval.value().matches()) return 1;
  std::printf("figure-3 match: %zu cached actions, remaining plan:",
              eval.value().satisfied_nodes.size());
  for (const auto& id : eval.value().remaining_plan) {
    std::printf(" %s", id.c_str());
  }
  std::printf("\n\n");

  // 2. Ablation: configured-prefix golden vs blank golden, measured with
  //    the calibrated timing model at 64 MB.
  cluster::TimingModel model(cluster::TimingConfig{}, 7);
  auto time_with_actions = [&](std::size_t actions) {
    util::Summary s;
    for (int i = 0; i < 200; ++i) {
      cluster::CreationObservation obs;
      obs.backend = "vmware-gsx";
      obs.memory_bytes = 64ull << 20;
      obs.clone_bytes_copied = 64ull << 20;
      obs.clone_links = 16;
      obs.guest_actions = actions;
      obs.isos_connected = actions;
      obs.bidding_plants = 8;
      s.add(model.time_creation(obs).total_sec);
    }
    return s.mean();
  };
  const double with_matching = time_with_actions(6);   // D..I only
  const double without_matching = time_with_actions(9); // A..I every time
  std::printf("creation time, 64 MB workspace:\n");
  std::printf("  partial matching ON  (6 actions): %.1f s\n", with_matching);
  std::printf("  partial matching OFF (9 actions): %.1f s\n", without_matching);
  std::printf("  (and OFF additionally pays any install time the golden "
              "checkpoint amortizes away)\n\n");

  char measured[96];
  std::snprintf(measured, sizeof measured, "%.1f s vs %.1f s", with_matching,
                without_matching);
  bench::print_summary_row("matching.creation_saving",
                           "cached prefix shrinks per-create work", measured);

  // 3. Matching cost scaling: evaluate_match over warehouse/DAG sizes.
  std::printf("matching micro-cost (single thread):\n");
  std::printf("%-10s %-10s %-14s\n", "dag_nodes", "images", "time_per_plan");
  for (const auto [layers, width, images] :
       {std::tuple{4, 4, 16}, std::tuple{4, 4, 256}, std::tuple{8, 8, 16},
        std::tuple{8, 8, 256}, std::tuple{16, 16, 64}}) {
    dag::ConfigDag d = workload::random_layered_dag(42, layers, width, 0.3);
    auto order = d.topological_sort().value();
    std::vector<std::vector<std::string>> histories;
    for (int i = 0; i < images; ++i) {
      std::vector<std::string> h;
      const std::size_t take = (i * order.size()) / images;
      for (std::size_t k = 0; k < take; ++k) {
        h.push_back(d.action(order[k])->signature());
      }
      histories.push_back(std::move(h));
    }
    const auto start = std::chrono::steady_clock::now();
    int reps = 0;
    while (std::chrono::steady_clock::now() - start <
           std::chrono::milliseconds(200)) {
      auto ranked = dag::rank_matches(d, histories);
      if (!ranked.ok()) return 1;
      ++reps;
    }
    const double us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start)
            .count() /
        reps;
    std::printf("%-10zu %-10d %10.0f us\n", d.size(), images, us);
  }
  std::printf("\n");
  bench::print_summary_row("matching.cost",
                           "negligible next to cloning (ms vs tens of s)",
                           "microseconds per plan (table above)");
  return 0;
}
