#include "util/thread_pool.h"

namespace vmp::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  // Workers drain the queue before exiting, so nothing admitted is left
  // unrun; wake any wait_idle() stragglers observing the final state.
  idle_cv_.notify_all();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

bool ThreadPool::stopped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stopping_;
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace vmp::util
