# Empty dependencies file for publish_custom_image.
# This may be replaced when dependencies are built.
