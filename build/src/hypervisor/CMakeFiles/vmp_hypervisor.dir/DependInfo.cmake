
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hypervisor/gsx.cpp" "src/hypervisor/CMakeFiles/vmp_hypervisor.dir/gsx.cpp.o" "gcc" "src/hypervisor/CMakeFiles/vmp_hypervisor.dir/gsx.cpp.o.d"
  "/root/repo/src/hypervisor/guest.cpp" "src/hypervisor/CMakeFiles/vmp_hypervisor.dir/guest.cpp.o" "gcc" "src/hypervisor/CMakeFiles/vmp_hypervisor.dir/guest.cpp.o.d"
  "/root/repo/src/hypervisor/hypervisor.cpp" "src/hypervisor/CMakeFiles/vmp_hypervisor.dir/hypervisor.cpp.o" "gcc" "src/hypervisor/CMakeFiles/vmp_hypervisor.dir/hypervisor.cpp.o.d"
  "/root/repo/src/hypervisor/uml.cpp" "src/hypervisor/CMakeFiles/vmp_hypervisor.dir/uml.cpp.o" "gcc" "src/hypervisor/CMakeFiles/vmp_hypervisor.dir/uml.cpp.o.d"
  "/root/repo/src/hypervisor/xen.cpp" "src/hypervisor/CMakeFiles/vmp_hypervisor.dir/xen.cpp.o" "gcc" "src/hypervisor/CMakeFiles/vmp_hypervisor.dir/xen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vmp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/vmp_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
