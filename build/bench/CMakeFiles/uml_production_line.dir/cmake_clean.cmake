file(REMOVE_RECURSE
  "CMakeFiles/uml_production_line.dir/uml_production_line.cpp.o"
  "CMakeFiles/uml_production_line.dir/uml_production_line.cpp.o.d"
  "uml_production_line"
  "uml_production_line.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uml_production_line.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
