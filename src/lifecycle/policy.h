// Eviction policies for the warehouse lifecycle manager.
//
// The paper's VM Warehouse grows monotonically — every published golden
// machine stays forever.  On a finite store that is untenable: under a disk
// budget the lifecycle manager must pick victims, and the right victim is
// NOT simply the least-recently-used image.  Golden machines differ wildly
// in both size (a 2 GB disk image vs a 96 MB one) and replacement cost (an
// image deep in the configuration DAG took many guest actions to author).
// GDSF (Greedy-Dual-Size-Frequency, Cherkasova '98) folds size, popularity
// and miss penalty into one priority, and is the cost-aware baseline here;
// plain LRU is kept as the control the bench compares it against.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/error.h"

namespace vmp::lifecycle {

/// Per-image statistics the policies rank on (a snapshot built by the
/// manager under its lock; policies never see the live ledger).
struct ImageStats {
  std::string id;
  std::uint64_t physical_bytes = 0;  // symlink-aware on-disk footprint
  std::uint64_t files = 0;           // regular files + links in the tree
  std::uint64_t hits = 0;            // clone leases taken since publish
  std::uint64_t last_use_tick = 0;   // manager's logical clock at last use
  double rebuild_cost_s = 0.0;       // estimated cost to re-publish (model)
  std::uint32_t leases = 0;          // live clones holding the base
  bool pinned = false;
  bool zombie = false;               // evicted, awaiting last lease release
};

/// Estimates what re-creating an evicted golden machine would cost, in
/// seconds, using the same constants as the cluster timing model
/// (cluster/timing_model.h): a full NFS copy of the image bytes plus the
/// configuration-DAG suffix that distinguishes it from a base install.
/// This is the "miss penalty" term in the GDSF priority.
struct RebuildCostModel {
  double nfs_copy_bytes_per_sec = 10.2e6;
  double per_file_copy_overhead_sec = 0.55;
  double clone_fixed_sec = 1.2;
  /// Per configuration action: author+attach the script ISO, then the
  /// guest daemon mounts and executes it.
  double iso_connect_sec = 0.9;
  double guest_action_sec = 1.5;

  double rebuild_cost_s(std::uint64_t physical_bytes, std::uint64_t files,
                        std::size_t performed_actions) const;
};

/// Ranks eviction candidates.  The manager filters (pinned, zombie, leased
/// images never reach rank()); the policy only orders what it is given.
class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;
  virtual const char* name() const noexcept = 0;
  /// Candidate ids, evict-first order.  Deterministic for a given input
  /// (ties broken by id) so tests and benches are reproducible.
  virtual std::vector<std::string> rank(
      const std::vector<ImageStats>& candidates) = 0;
  /// Eviction notification (GDSF advances its aging clock here).
  virtual void on_evict(const ImageStats& victim) { (void)victim; }
  /// Aging-clock state the event journal persists across warm starts:
  /// clock() is recorded at each eviction, restore_clock() reinstates the
  /// replayed value (never moving the clock backwards).  Policies without
  /// aging state (LRU) keep the no-op defaults.
  virtual double clock() const { return 0.0; }
  virtual void restore_clock(double value) { (void)value; }
};

/// Least-recently-used: oldest last_use_tick first, blind to size and cost.
class LruPolicy final : public EvictionPolicy {
 public:
  const char* name() const noexcept override { return "lru"; }
  std::vector<std::string> rank(
      const std::vector<ImageStats>& candidates) override;
};

/// Greedy-Dual-Size-Frequency: priority(i) = clock + hits(i) *
/// rebuild_cost(i) / size(i); evict lowest priority first; the clock rises
/// to each victim's priority so long-idle images age out even when their
/// cost/size ratio is high.  The rebuild cost arrives precomputed in
/// ImageStats — the manager's RebuildCostModel is the single authority, so
/// the policy holds no model of its own to diverge from it.
class GdsfPolicy final : public EvictionPolicy {
 public:
  const char* name() const noexcept override { return "gdsf"; }
  std::vector<std::string> rank(
      const std::vector<ImageStats>& candidates) override;
  void on_evict(const ImageStats& victim) override;

  double priority(const ImageStats& stats) const;
  double clock() const override { return clock_; }
  void restore_clock(double value) override {
    clock_ = std::max(clock_, value);
  }

 private:
  double clock_ = 0.0;
};

/// Factory: "lru" or "gdsf" (kInvalidArgument otherwise).
util::Result<std::unique_ptr<EvictionPolicy>> make_policy(
    const std::string& name);

}  // namespace vmp::lifecycle
