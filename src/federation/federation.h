// Sharded shop federation: a VMBroker hierarchy with cached bid
// aggregation and headroom-aware routing (DESIGN.md §16).
//
// Paper, Section 3.1: the binding protocol lets VMShop "request and
// collect bids containing estimated VM creation costs from VMPlants
// (directly, or indirectly through VMBrokers)", and Section 3.3 sketches
// gateway deployments where plants live behind a private network.  The
// seed realization (core/broker.h) already hides member plants behind a
// broker endpoint — but it re-fans every estimate to every member, so a
// shop in front of brokers still pays O(plants) bid messages per create.
//
// The ShardBroker grows that seed into a federation node:
//
//   * it maintains a cached, TTL'd AGGREGATE bid per DAG-class for its
//     subtree.  A fresh cache entry answers the shop's vmplant.estimate
//     in O(1) with zero downstream messages, so a shop over N shards
//     collects bids in O(shards) instead of O(plants);
//   * the cache refreshes off the create path: refresh_all() sends ONE
//     batch message (vmplant.estimate_batch) per child covering every
//     known DAG-class — children that are plants price each class
//     locally, children that are brokers answer from their own caches,
//     so refresh traffic is O(children) per level of the tree;
//   * routing weighs the subtree's remaining lifecycle budget: a
//     headroom provider (typically federation::headroom_from_rollup over
//     the shard's "obs://fleet/metrics" ad, which already carries the
//     LifecycleHeadroomBytes rollup) scales bids up as the shard's disk
//     budget drains, so a noisy installer domain filling one shard's
//     warehouses cannot crowd out the rest of the federation;
//   * degradation is graceful by construction: a stale cache entry that
//     misroutes a create falls back to the next member within the shard,
//     then faults to the shop — whose existing next-best-bid failover
//     moves the create to a surviving subtree.  A dead broker simply
//     stops bidding; the shop keeps creating against the others.
//
// With no brokers configured nothing here runs: flat deployments keep the
// paper's direct bidding, selection order, and RNG consumption
// byte-for-byte.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/info_system.h"
#include "core/request.h"
#include "net/bus.h"
#include "net/registry.h"
#include "obs/metrics.h"
#include "util/error.h"

namespace vmp::federation {

/// The bid-cache key: requests that price identically share one cached
/// aggregate bid.  The paper's cost models (§3.4) bid on plant load plus
/// the client domain's network affinity, so the key is the request's
/// hardware shape plus its domain — not the per-user DAG suffix.
std::string dag_class_key(const core::CreateRequest& request);

struct ShardBrokerConfig {
  std::string name = "shard0";
  /// Added to every aggregate bid (the broker's cut / gateway cost),
  /// exactly like core::BrokerConfig::bid_markup.
  double bid_markup = 0.0;
  /// Cached aggregate bids older than this many clock seconds are stale:
  /// estimates and creates fall back to a synchronous single-class
  /// refresh (counted in broker.bids.refreshed.count).  The clock is
  /// whatever set_clock installed — wall seconds by default, the sim
  /// clock in deployments.
  double bid_ttl_s = 30.0;
  /// How strongly subtree headroom pressure scales bids:
  ///   effective = (min member cost + markup) * (1 + weight * pressure)
  /// where pressure = 1 - headroom / subtree_budget_bytes, clamped to
  /// [0, 1].  0 (default) disables the term entirely.
  double headroom_weight = 0.0;
  /// The subtree's total lifecycle disk budget (the pressure
  /// denominator).  0 disables the headroom term even when a provider is
  /// installed.
  std::int64_t subtree_budget_bytes = 0;
};

/// One cached aggregate bid for a DAG-class.
struct CachedBid {
  /// Member bids sorted cheapest-first (the within-shard failover order).
  std::vector<std::pair<double, std::string>> member_bids;
  /// Representative request for refreshes, serialized once.
  std::string request_xml;
  double refreshed_at = -1.0;  // clock seconds; < 0 = never refreshed
  std::uint64_t served = 0;    // estimates answered from this entry
};

class ShardBroker {
 public:
  ShardBroker(ShardBrokerConfig config, net::MessageBus* bus,
              net::ServiceRegistry* registry);
  ~ShardBroker();

  ShardBroker(const ShardBroker&) = delete;
  ShardBroker& operator=(const ShardBroker&) = delete;

  const std::string& name() const { return config_.name; }
  const ShardBrokerConfig& config() const { return config_; }

  /// Add a child's bus address — a plant or another ShardBroker.  The
  /// child must be reachable on the bus but need not be in the public
  /// registry (private-network subtree, paper §3.3).
  void add_member(const std::string& address);
  std::vector<std::string> members() const;

  /// Register the broker endpoint and publish it as a "vmplant" with
  /// property broker=true, so shops bid against it transparently and the
  /// fleet aggregator can tell it apart from a plant.
  util::Status attach_to_bus();
  void detach_from_bus();
  const std::string& bus_address() const { return config_.name; }

  /// Install a time source for TTL bookkeeping (e.g. the deployment's
  /// sim clock); nullptr restores wall seconds since construction.
  void set_clock(std::function<double()> clock);

  /// Install the subtree-headroom source consulted per aggregate bid —
  /// typically headroom_from_rollup over the shard's information system.
  /// nullptr (default) disables the headroom term.
  void set_headroom_provider(std::function<std::int64_t()> provider);
  /// The last headroom reading folded into a bid (diagnostics/export).
  std::int64_t last_headroom_bytes() const;

  /// Refresh every known DAG-class with ONE vmplant.estimate_batch per
  /// member — the off-create-path coherence mechanism.  Returns how many
  /// classes now hold a fresh aggregate.  Thread-safe; bus traffic runs
  /// outside the cache lock.
  std::size_t refresh_all();

  // -- Introspection ----------------------------------------------------------
  std::uint64_t creations_forwarded() const;
  std::uint64_t bids_cached_served() const;
  std::uint64_t bids_refreshed() const;
  std::size_t bid_cache_size() const;
  /// Snapshot of one cache entry (tests).
  std::optional<CachedBid> cached(const std::string& class_key) const;

 private:
  struct Selection {
    std::vector<std::pair<double, std::string>> member_bids;
    double effective_cost = 0.0;
    std::int64_t headroom = 0;
  };

  net::Message handle_message(const net::Message& request_msg);
  net::Message handle_estimate(const net::Message& request_msg);
  net::Message handle_batch(const net::Message& request_msg);
  net::Message handle_create(const net::Message& request_msg);
  net::Message handle_routed(const net::Message& request_msg);

  double now() const;
  /// The headroom pressure multiplier, >= 1.0 (1.0 when disabled).
  double headroom_multiplier(std::int64_t* headroom_out) const;
  /// Serve `class_key` from the cache, refreshing it synchronously (one
  /// batch message per member, this class only) when missing or stale.
  util::Result<Selection> select(const std::string& class_key,
                                 const xml::Element& request_body);
  /// Collect member bids for the classes in `batch` (key -> request xml)
  /// with one vmplant.estimate_batch per member.  Returns per-class
  /// sorted member bids; classes nobody priced are absent.
  std::map<std::string, std::vector<std::pair<double, std::string>>>
  collect_member_bids(const std::vector<std::pair<std::string, std::string>>&
                          batch) const;

  ShardBrokerConfig config_;
  net::MessageBus* bus_;
  net::ServiceRegistry* registry_;

  mutable std::mutex mutex_;
  std::vector<std::string> members_;
  std::map<std::string, CachedBid> cache_;
  std::map<std::string, std::string> vm_to_member_;
  std::function<double()> clock_;
  std::function<std::int64_t()> headroom_provider_;
  mutable std::int64_t last_headroom_ = 0;
  std::chrono::steady_clock::time_point epoch_;
  bool attached_ = false;

  // Metrics: process-wide "broker.*" plus per-broker "<name>.broker.*"
  // (what the fleet aggregator reads per shard).
  obs::Counter* bids_cached_;
  obs::Counter* bids_refreshed_;
  obs::Counter* refreshes_;
  obs::Counter* forwarded_;
  obs::Counter* member_failovers_;
  obs::Timer* refresh_seconds_;
  obs::Counter* scoped_bids_cached_;
  obs::Counter* scoped_bids_refreshed_;
  obs::Counter* scoped_forwarded_;
  obs::Timer* scoped_refresh_seconds_;
  obs::Gauge* scoped_cache_size_;
};

/// Read the LifecycleHeadroomBytes rollup a FleetAggregator published as
/// "obs://fleet/metrics" into `info` (the folded
/// fleet_lifecycle_headroom_bytes_gauge attribute).  Returns nullopt when
/// no rollup ad is present.  Bind it as a shard's headroom provider:
///   broker.set_headroom_provider([&info] {
///     return federation::headroom_from_rollup(info).value_or(0);
///   });
std::optional<std::int64_t> headroom_from_rollup(
    const core::VmInformationSystem& info);

}  // namespace vmp::federation
