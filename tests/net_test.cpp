// Unit tests for message envelopes, the in-process bus, and the registry.
#include <gtest/gtest.h>

#include "net/bus.h"
#include "net/message.h"
#include "net/registry.h"

namespace vmp::net {
namespace {

// -- Message ---------------------------------------------------------------------

TEST(MessageTest, RequestFactorySetsHeader) {
  Message m = Message::request("vmplant.create", "shop", "plant0", "req-1");
  EXPECT_EQ(m.kind(), MessageKind::kRequest);
  EXPECT_EQ(m.service(), "vmplant.create");
  EXPECT_EQ(m.from(), "shop");
  EXPECT_EQ(m.to(), "plant0");
  EXPECT_EQ(m.correlation(), "req-1");
  EXPECT_FALSE(m.is_fault());
}

TEST(MessageTest, ResponseSwapsDirection) {
  Message req = Message::request("svc", "a", "b", "c1");
  Message resp = Message::response_to(req);
  EXPECT_EQ(resp.kind(), MessageKind::kResponse);
  EXPECT_EQ(resp.from(), "b");
  EXPECT_EQ(resp.to(), "a");
  EXPECT_EQ(resp.correlation(), "c1");
}

TEST(MessageTest, FaultCarriesError) {
  Message req = Message::request("svc", "a", "b", "c1");
  Message fault = Message::fault_to(
      req, util::Error(util::ErrorCode::kResourceExhausted, "plant full"));
  EXPECT_TRUE(fault.is_fault());
  const util::Error err = fault.fault_error();
  EXPECT_EQ(err.code(), util::ErrorCode::kResourceExhausted);
  EXPECT_EQ(err.message(), "plant full");
}

TEST(MessageTest, SerializeDeserializeRoundTrip) {
  Message m = Message::request("vmshop.create", "client", "vmshop", "r-9");
  m.body().add_child("create-request").set_attr("id", "r-9");
  m.body().child("create-request")->add_child("note").set_text("a<b&c");

  auto parsed = Message::deserialize(m.serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().service(), "vmshop.create");
  EXPECT_EQ(parsed.value().correlation(), "r-9");
  ASSERT_NE(parsed.value().body().child("create-request"), nullptr);
  EXPECT_EQ(parsed.value().body().child("create-request")->child_text("note"),
            "a<b&c");
}

TEST(MessageTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Message::deserialize("not xml").ok());
  EXPECT_FALSE(Message::deserialize("<other/>").ok());
  EXPECT_FALSE(Message::deserialize("<message kind=\"bogus\"/>").ok());
}

TEST(MessageTest, FaultErrorOnNonFaultBody) {
  Message m = Message::request("svc", "a", "b", "c");
  EXPECT_EQ(m.fault_error().code(), util::ErrorCode::kInternal);
}

// -- MessageBus -------------------------------------------------------------------

TEST(BusTest, CallRoutesToHandler) {
  MessageBus bus;
  ASSERT_TRUE(bus.register_endpoint("echo", [](const Message& m) {
                   Message r = Message::response_to(m);
                   r.body().add_child("echo").set_text(
                       m.body().child_text("data"));
                   return r;
                 }).ok());

  Message m = Message::request("echo.svc", "caller", "echo", "c-1");
  m.body().add_child("data").set_text("hello");
  auto response = bus.call(m);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().body().child_text("echo"), "hello");
}

TEST(BusTest, UnknownEndpointIsUnavailable) {
  MessageBus bus;
  auto r = bus.call(Message::request("svc", "a", "ghost", "c"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), util::ErrorCode::kUnavailable);
}

TEST(BusTest, DuplicateRegistrationRejected) {
  MessageBus bus;
  ASSERT_TRUE(bus.register_endpoint("a", [](const Message& m) {
                   return Message::response_to(m);
                 }).ok());
  EXPECT_FALSE(bus.register_endpoint("a", [](const Message& m) {
                    return Message::response_to(m);
                  }).ok());
}

TEST(BusTest, UnregisterRemovesEndpoint) {
  MessageBus bus;
  ASSERT_TRUE(bus.register_endpoint("a", [](const Message& m) {
                   return Message::response_to(m);
                 }).ok());
  EXPECT_TRUE(bus.has_endpoint("a"));
  ASSERT_TRUE(bus.unregister_endpoint("a").ok());
  EXPECT_FALSE(bus.has_endpoint("a"));
  EXPECT_FALSE(bus.unregister_endpoint("a").ok());
}

TEST(BusTest, DownEndpointRefusesCalls) {
  MessageBus bus;
  ASSERT_TRUE(bus.register_endpoint("p", [](const Message& m) {
                   return Message::response_to(m);
                 }).ok());
  bus.set_down("p", true);
  auto r = bus.call(Message::request("svc", "a", "p", "c"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), util::ErrorCode::kUnavailable);
  bus.set_down("p", false);
  EXPECT_TRUE(bus.call(Message::request("svc", "a", "p", "c")).ok());
}

TEST(BusTest, DropRateProducesTimeouts) {
  MessageBus bus(7);
  ASSERT_TRUE(bus.register_endpoint("flaky", [](const Message& m) {
                   return Message::response_to(m);
                 }).ok());
  bus.set_drop_rate("flaky", 1.0);
  auto r = bus.call(Message::request("svc", "a", "flaky", "c"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), util::ErrorCode::kTimeout);

  bus.set_drop_rate("flaky", 0.5);
  int timeouts = 0;
  for (int i = 0; i < 200; ++i) {
    if (!bus.call(Message::request("svc", "a", "flaky", "c")).ok()) ++timeouts;
  }
  EXPECT_GT(timeouts, 50);
  EXPECT_LT(timeouts, 150);
}

TEST(BusTest, StatsCountCallsAndBytes) {
  MessageBus bus;
  ASSERT_TRUE(bus.register_endpoint("p", [](const Message& m) {
                   return Message::response_to(m);
                 }).ok());
  const auto before = bus.calls_total();
  (void)bus.call(Message::request("svc", "a", "p", "c"));
  EXPECT_EQ(bus.calls_total(), before + 1);
  EXPECT_GT(bus.bytes_total(), 0u);
}

TEST(BusTest, PayloadSurvivesFullWireEncoding) {
  MessageBus bus;
  // The handler sees a *decoded copy*, proving requests round-trip the
  // wire format rather than sharing in-memory structure.
  ASSERT_TRUE(bus.register_endpoint("p", [](const Message& m) {
                   Message r = Message::response_to(m);
                   r.body().add_child("len").set_text(std::to_string(
                       m.body().child("blob")->text().size()));
                   return r;
                 }).ok());
  Message m = Message::request("svc", "a", "p", "c");
  m.body().add_child("blob").set_text(std::string(10000, 'x') + "<&>\"'");
  auto r = bus.call(m);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().body().child_text("len"), "10005");
}

TEST(BusTest, CallExpectingSuccessUnwrapsFaults) {
  MessageBus bus;
  ASSERT_TRUE(bus.register_endpoint("p", [](const Message& m) {
                   return Message::fault_to(
                       m, util::Error(util::ErrorCode::kNoMatchingImage,
                                      "nothing cached"));
                 }).ok());
  auto r = call_expecting_success(&bus,
                                  Message::request("svc", "a", "p", "c"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), util::ErrorCode::kNoMatchingImage);
  EXPECT_EQ(r.error().message(), "nothing cached");
}

TEST(BusTest, EndpointsListed) {
  MessageBus bus;
  ASSERT_TRUE(bus.register_endpoint("b", [](const Message& m) {
                   return Message::response_to(m);
                 }).ok());
  ASSERT_TRUE(bus.register_endpoint("a", [](const Message& m) {
                   return Message::response_to(m);
                 }).ok());
  EXPECT_EQ(bus.endpoints(), (std::vector<std::string>{"a", "b"}));
}

// -- ServiceRegistry -------------------------------------------------------------------

TEST(RegistryTest, PublishDiscoverBind) {
  ServiceRegistry registry;
  registry.publish({"vmplant", "plant0", {{"backend", "vmware-gsx"}}});
  registry.publish({"vmplant", "plant1", {}});
  registry.publish({"vmshop", "shop", {}});

  const auto plants = registry.discover("vmplant");
  ASSERT_EQ(plants.size(), 2u);
  EXPECT_EQ(plants[0].address, "plant0");
  EXPECT_EQ(plants[1].address, "plant1");
  EXPECT_EQ(registry.discover("vmshop").size(), 1u);
  EXPECT_TRUE(registry.discover("nothing").empty());

  auto bound = registry.bind("plant0");
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(bound.value().properties.at("backend"), "vmware-gsx");
  EXPECT_FALSE(registry.bind("ghost").ok());
}

TEST(RegistryTest, RepublishReplaces) {
  ServiceRegistry registry;
  registry.publish({"vmplant", "plant0", {{"v", "1"}}});
  registry.publish({"vmplant", "plant0", {{"v", "2"}}});
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.bind("plant0").value().properties.at("v"), "2");
}

TEST(RegistryTest, WithdrawRemoves) {
  ServiceRegistry registry;
  registry.publish({"vmplant", "plant0", {}});
  EXPECT_TRUE(registry.withdraw("plant0"));
  EXPECT_FALSE(registry.withdraw("plant0"));
  EXPECT_TRUE(registry.discover("vmplant").empty());
}

}  // namespace
}  // namespace vmp::net
