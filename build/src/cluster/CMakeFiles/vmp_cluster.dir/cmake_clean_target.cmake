file(REMOVE_RECURSE
  "libvmp_cluster.a"
)
