#include "classad/expr.h"

#include <algorithm>
#include <cmath>

#include "classad/classad.h"
#include "util/strings.h"

namespace vmp::classad {

namespace {

const char* op_token(BinaryOp op) {
  switch (op) {
    case BinaryOp::kOr: return "||";
    case BinaryOp::kAnd: return "&&";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
  }
  return "?";
}

/// Lift a value to "logical" form: TRUE/FALSE for booleans, nonzero test
/// for numbers, UNDEFINED/ERROR pass through, strings are ERROR in boolean
/// position (Condor treats them as non-boolean).
Value to_logical(const Value& v) {
  switch (v.type()) {
    case ValueType::kBoolean:
    case ValueType::kUndefined:
    case ValueType::kError:
      return v;
    case ValueType::kInteger:
      return Value::boolean(v.as_integer() != 0);
    case ValueType::kReal:
      return Value::boolean(v.as_real() != 0.0);
    case ValueType::kString:
      return Value::error();
  }
  return Value::error();
}

Value eval_and(const Value& lhs_raw, const Value& rhs_raw) {
  const Value lhs = to_logical(lhs_raw);
  const Value rhs = to_logical(rhs_raw);
  if (lhs.is_error() || rhs.is_error()) return Value::error();
  // FALSE dominates UNDEFINED.
  if (lhs.type() == ValueType::kBoolean && !lhs.as_boolean()) {
    return Value::boolean(false);
  }
  if (rhs.type() == ValueType::kBoolean && !rhs.as_boolean()) {
    return Value::boolean(false);
  }
  if (lhs.is_undefined() || rhs.is_undefined()) return Value::undefined();
  return Value::boolean(lhs.as_boolean() && rhs.as_boolean());
}

Value eval_or(const Value& lhs_raw, const Value& rhs_raw) {
  const Value lhs = to_logical(lhs_raw);
  const Value rhs = to_logical(rhs_raw);
  if (lhs.is_error() || rhs.is_error()) return Value::error();
  // TRUE dominates UNDEFINED.
  if (lhs.type() == ValueType::kBoolean && lhs.as_boolean()) {
    return Value::boolean(true);
  }
  if (rhs.type() == ValueType::kBoolean && rhs.as_boolean()) {
    return Value::boolean(true);
  }
  if (lhs.is_undefined() || rhs.is_undefined()) return Value::undefined();
  return Value::boolean(lhs.as_boolean() || rhs.as_boolean());
}

Value eval_comparison(BinaryOp op, const Value& lhs, const Value& rhs) {
  if (lhs.is_error() || rhs.is_error()) return Value::error();
  if (lhs.is_undefined() || rhs.is_undefined()) return Value::undefined();

  int cmp;  // -1, 0, 1
  if (lhs.is_number() && rhs.is_number()) {
    const double a = lhs.as_number();
    const double b = rhs.as_number();
    cmp = a < b ? -1 : (a > b ? 1 : 0);
  } else if (lhs.type() == ValueType::kString &&
             rhs.type() == ValueType::kString) {
    // Condor string comparison is case-insensitive.
    const std::string a = util::to_lower(lhs.as_string());
    const std::string b = util::to_lower(rhs.as_string());
    cmp = a < b ? -1 : (a > b ? 1 : 0);
  } else if (lhs.type() == ValueType::kBoolean &&
             rhs.type() == ValueType::kBoolean) {
    const int a = lhs.as_boolean() ? 1 : 0;
    const int b = rhs.as_boolean() ? 1 : 0;
    cmp = a < b ? -1 : (a > b ? 1 : 0);
  } else {
    // Mixed incomparable types: equality is decidable, ordering is ERROR.
    if (op == BinaryOp::kEq) return Value::boolean(false);
    if (op == BinaryOp::kNe) return Value::boolean(true);
    return Value::error();
  }

  switch (op) {
    case BinaryOp::kEq: return Value::boolean(cmp == 0);
    case BinaryOp::kNe: return Value::boolean(cmp != 0);
    case BinaryOp::kLt: return Value::boolean(cmp < 0);
    case BinaryOp::kLe: return Value::boolean(cmp <= 0);
    case BinaryOp::kGt: return Value::boolean(cmp > 0);
    case BinaryOp::kGe: return Value::boolean(cmp >= 0);
    default: return Value::error();
  }
}

Value eval_arithmetic(BinaryOp op, const Value& lhs, const Value& rhs) {
  if (lhs.is_error() || rhs.is_error()) return Value::error();
  if (lhs.is_undefined() || rhs.is_undefined()) return Value::undefined();

  // String concatenation via '+'.
  if (op == BinaryOp::kAdd && lhs.type() == ValueType::kString &&
      rhs.type() == ValueType::kString) {
    return Value::string(lhs.as_string() + rhs.as_string());
  }
  if (!lhs.is_number() || !rhs.is_number()) return Value::error();

  const bool both_int = lhs.type() == ValueType::kInteger &&
                        rhs.type() == ValueType::kInteger;
  if (both_int) {
    const std::int64_t a = lhs.as_integer();
    const std::int64_t b = rhs.as_integer();
    switch (op) {
      case BinaryOp::kAdd: return Value::integer(a + b);
      case BinaryOp::kSub: return Value::integer(a - b);
      case BinaryOp::kMul: return Value::integer(a * b);
      case BinaryOp::kDiv:
        return b == 0 ? Value::error() : Value::integer(a / b);
      case BinaryOp::kMod:
        return b == 0 ? Value::error() : Value::integer(a % b);
      default: return Value::error();
    }
  }
  const double a = lhs.as_number();
  const double b = rhs.as_number();
  switch (op) {
    case BinaryOp::kAdd: return Value::real(a + b);
    case BinaryOp::kSub: return Value::real(a - b);
    case BinaryOp::kMul: return Value::real(a * b);
    case BinaryOp::kDiv: return b == 0.0 ? Value::error() : Value::real(a / b);
    case BinaryOp::kMod:
      return b == 0.0 ? Value::error() : Value::real(std::fmod(a, b));
    default: return Value::error();
  }
}

}  // namespace

// -- AttrRefExpr -------------------------------------------------------------

Value AttrRefExpr::evaluate(const EvalContext& ctx) const {
  const ClassAd* ad = nullptr;
  switch (scope_) {
    case Scope::kSelf:
    case Scope::kDefault:
      ad = ctx.self;
      break;
    case Scope::kOther:
      ad = ctx.other;
      break;
  }
  if (ad == nullptr) return Value::undefined();

  const Expr* expr = ad->lookup(name_);
  if (expr == nullptr && scope_ == Scope::kDefault && ctx.other != nullptr) {
    // Unscoped names fall through to the other ad when absent in self —
    // this is what lets Requirements say `memory >= 64` against the
    // candidate without writing `other.memory` everywhere.
    ad = ctx.other;
    expr = ad->lookup(name_);
  }
  if (expr == nullptr) return Value::undefined();

  // Cycle guard: attribute currently being evaluated referencing itself.
  const std::string key = std::to_string(reinterpret_cast<std::uintptr_t>(ad)) +
                          "/" + util::to_lower(name_);
  if (std::find(ctx.in_progress.begin(), ctx.in_progress.end(), key) !=
      ctx.in_progress.end()) {
    return Value::error();
  }
  ctx.in_progress.push_back(key);
  EvalContext nested = ctx;
  nested.self = ad;
  const Value v = expr->evaluate(nested);
  ctx.in_progress.pop_back();
  return v;
}

std::string AttrRefExpr::to_string() const {
  switch (scope_) {
    case Scope::kSelf: return "self." + name_;
    case Scope::kOther: return "other." + name_;
    case Scope::kDefault: return name_;
  }
  return name_;
}

// -- BinaryExpr --------------------------------------------------------------

Value BinaryExpr::evaluate(const EvalContext& ctx) const {
  // && and || need lazy semantics for short-circuit against ERROR?  Condor
  // evaluates both sides but FALSE/TRUE dominate UNDEFINED; we follow that,
  // evaluating eagerly (expressions are side-effect free).
  const Value lhs = lhs_->evaluate(ctx);
  const Value rhs = rhs_->evaluate(ctx);
  switch (op_) {
    case BinaryOp::kAnd: return eval_and(lhs, rhs);
    case BinaryOp::kOr: return eval_or(lhs, rhs);
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return eval_comparison(op_, lhs, rhs);
    default:
      return eval_arithmetic(op_, lhs, rhs);
  }
}

std::string BinaryExpr::to_string() const {
  return "(" + lhs_->to_string() + " " + op_token(op_) + " " +
         rhs_->to_string() + ")";
}

// -- UnaryExpr ---------------------------------------------------------------

Value UnaryExpr::evaluate(const EvalContext& ctx) const {
  const Value v = operand_->evaluate(ctx);
  if (v.is_error()) return Value::error();
  if (v.is_undefined()) return Value::undefined();
  if (op_ == UnaryOp::kNot) {
    const Value logical = to_logical(v);
    if (logical.type() != ValueType::kBoolean) return Value::error();
    return Value::boolean(!logical.as_boolean());
  }
  if (v.type() == ValueType::kInteger) return Value::integer(-v.as_integer());
  if (v.type() == ValueType::kReal) return Value::real(-v.as_real());
  return Value::error();
}

std::string UnaryExpr::to_string() const {
  return std::string(op_ == UnaryOp::kNot ? "!" : "-") + operand_->to_string();
}

// -- FunctionExpr ------------------------------------------------------------

Value FunctionExpr::evaluate(const EvalContext& ctx) const {
  std::vector<Value> args;
  args.reserve(args_.size());
  for (const auto& a : args_) args.push_back(a->evaluate(ctx));

  const std::string name = util::to_lower(name_);
  auto arity_error = [&](std::size_t want) {
    return args.size() != want;
  };

  if (name == "isundefined") {
    if (arity_error(1)) return Value::error();
    return Value::boolean(args[0].is_undefined());
  }
  if (name == "iserror") {
    if (arity_error(1)) return Value::error();
    return Value::boolean(args[0].is_error());
  }
  if (name == "int") {
    if (arity_error(1)) return Value::error();
    if (args[0].type() == ValueType::kInteger) return args[0];
    if (args[0].type() == ValueType::kReal) {
      return Value::integer(static_cast<std::int64_t>(args[0].as_real()));
    }
    if (args[0].type() == ValueType::kString) {
      long long v = 0;
      if (util::parse_int64(args[0].as_string(), &v)) return Value::integer(v);
    }
    return Value::error();
  }
  if (name == "real") {
    if (arity_error(1)) return Value::error();
    if (args[0].is_number()) return Value::real(args[0].as_number());
    if (args[0].type() == ValueType::kString) {
      double v = 0;
      if (util::parse_double(args[0].as_string(), &v)) return Value::real(v);
    }
    return Value::error();
  }
  if (name == "floor" || name == "ceiling") {
    if (arity_error(1)) return Value::error();
    if (!args[0].is_number()) return Value::error();
    const double v = args[0].as_number();
    return Value::integer(static_cast<std::int64_t>(
        name == "floor" ? std::floor(v) : std::ceil(v)));
  }
  if (name == "min" || name == "max") {
    if (arity_error(2)) return Value::error();
    if (!args[0].is_number() || !args[1].is_number()) return Value::error();
    const double a = args[0].as_number();
    const double b = args[1].as_number();
    const double r = name == "min" ? std::min(a, b) : std::max(a, b);
    if (args[0].type() == ValueType::kInteger &&
        args[1].type() == ValueType::kInteger) {
      return Value::integer(static_cast<std::int64_t>(r));
    }
    return Value::real(r);
  }
  if (name == "strcat") {
    std::string out;
    for (const Value& v : args) {
      if (v.is_error()) return Value::error();
      if (v.is_undefined()) return Value::undefined();
      if (v.type() == ValueType::kString) {
        out += v.as_string();
      } else {
        out += v.to_string();
      }
    }
    return Value::string(std::move(out));
  }
  if (name == "stringlistmember") {
    if (arity_error(2)) return Value::error();
    if (args[0].type() != ValueType::kString ||
        args[1].type() != ValueType::kString) {
      return Value::error();
    }
    for (const std::string& item : util::split(args[1].as_string(), ',')) {
      if (util::iequals(util::trim(item), args[0].as_string())) {
        return Value::boolean(true);
      }
    }
    return Value::boolean(false);
  }
  return Value::error();
}

std::string FunctionExpr::to_string() const {
  std::string out = name_ + "(";
  for (std::size_t i = 0; i < args_.size(); ++i) {
    if (i) out += ", ";
    out += args_[i]->to_string();
  }
  out += ")";
  return out;
}

ExprPtr FunctionExpr::clone() const {
  std::vector<ExprPtr> args;
  args.reserve(args_.size());
  for (const auto& a : args_) args.push_back(a->clone());
  return std::make_unique<FunctionExpr>(name_, std::move(args));
}

}  // namespace vmp::classad
