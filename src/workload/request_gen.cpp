#include "workload/request_gen.h"

#include "vnet/ethernet.h"
#include "workload/dag_library.h"

namespace vmp::workload {

using util::Status;

namespace {

constexpr std::uint64_t kMb = 1ull << 20;
constexpr std::uint64_t kGoldenDiskBytes = 2048ull * kMb;  // paper: 2 GB
constexpr std::uint32_t kGoldenDiskSpans = 16;             // paper: 16 files

hv::GuestState base_guest_state(const std::string& os) {
  hv::GuestState guest;
  guest.os = os;
  guest.hostname = "golden";
  guest.packages = {"vnc-server", "web-file-manager"};
  return guest;
}

}  // namespace

Status publish_paper_goldens(warehouse::Warehouse* warehouse,
                             const std::vector<std::uint32_t>& memory_mbs) {
  for (std::uint32_t mem_mb : memory_mbs) {
    storage::MachineSpec spec;
    spec.os = "linux-mandrake-8.1";
    spec.memory_bytes = mem_mb * kMb;
    spec.suspended = true;  // checkpointed post-boot
    spec.disk.name = "disk0";
    spec.disk.capacity_bytes = kGoldenDiskBytes;
    spec.disk.span_count = kGoldenDiskSpans;
    spec.disk.mode = storage::DiskMode::kNonPersistent;

    auto published = warehouse->publish_new(
        "golden-" + std::to_string(mem_mb) + "mb", "vmware-gsx", spec,
        base_guest_state(spec.os), invigo_golden_history());
    if (!published.ok()) return published.error();
  }
  return Status();
}

Status publish_uml_golden(warehouse::Warehouse* warehouse,
                          std::uint32_t memory_mb) {
  storage::MachineSpec spec;
  spec.os = "linux-mandrake-8.1";
  spec.memory_bytes = memory_mb * kMb;
  spec.suspended = false;  // UML clones boot
  spec.disk.name = "rootfs";
  spec.disk.capacity_bytes = kGoldenDiskBytes;
  spec.disk.span_count = 1;  // single COW-shared file system
  spec.disk.mode = storage::DiskMode::kNonPersistent;

  auto published = warehouse->publish_new(
      "golden-uml-" + std::to_string(memory_mb) + "mb", "uml", spec,
      base_guest_state(spec.os), invigo_golden_history());
  if (!published.ok()) return published.error();
  return Status();
}

core::CreateRequest workspace_request(std::uint32_t memory_mb, std::size_t i,
                                      const std::string& domain,
                                      const std::string& backend) {
  WorkspaceParams params;
  params.user = "user" + std::to_string(i);
  params.ip = "10." + std::to_string(memory_mb % 256) + "." +
              std::to_string((i / 250) % 256) + "." +
              std::to_string(2 + (i % 250));
  params.mac = vnet::MacAddress::from_index(
                   static_cast<std::uint32_t>(i + 1))
                   .to_string();

  core::CreateRequest request;
  request.request_id =
      "req-" + std::to_string(memory_mb) + "mb-" + std::to_string(i);
  request.client = "invigo-portal";
  request.domain = domain;
  request.proxy_address = "proxy." + domain + ":4096";
  request.backend = backend;
  request.hardware.os = "linux-mandrake-8.1";
  request.hardware.memory_bytes = memory_mb * kMb;
  request.hardware.min_disk_bytes = kGoldenDiskBytes;
  request.config = invigo_workspace_dag(params);
  return request;
}

std::vector<core::CreateRequest> workspace_requests(std::uint32_t memory_mb,
                                                    std::size_t count,
                                                    const std::string& domain,
                                                    const std::string& backend) {
  std::vector<core::CreateRequest> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(workspace_request(memory_mb, i, domain, backend));
  }
  return out;
}

}  // namespace vmp::workload
