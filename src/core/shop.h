// The VMShop front end.
//
// Paper, Section 3.1: "VMShop provides a single logical point of contact
// for clients to request three core services: create a VM instance, query
// information about an active VM instance, and destroy (collect) an active
// VM instance. ... VMShop is responsible for selecting a VMPlant for the
// creation of a virtual machine.  This process is implemented through a
// communication API and a binding protocol that allows VMShop to request
// and collect bids containing estimated VM creation costs from VMPlants."
//
// The shop discovers plants through the service registry, gathers bids over
// the message bus, picks the cheapest (random choice among ties, as in the
// paper's worked example), and forwards the creation.  If the chosen plant
// fails, the next-best bid is tried — bid collection is cheap, creations
// are not.  The vmid->plant routing map is a cache: the authoritative
// classad lives at the plant (Section 3.1's failure-restoration argument),
// and the shop can rebuild routing by broadcasting queries.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "classad/classad.h"
#include "core/admission.h"
#include "core/request.h"
#include "net/bus.h"
#include "net/registry.h"
#include "util/error.h"
#include "util/random.h"
#include "util/retry.h"

namespace vmp::lifecycle {
class LifecycleManager;
}
namespace vmp::warehouse {
struct GoldenImage;
}

namespace vmp::core {

/// One collected bid.
struct Bid {
  std::string plant_address;
  double cost = 0.0;
};

struct ShopConfig {
  std::string name = "vmshop";
  std::uint64_t tie_break_seed = 42;
  /// Retry policy for the creation leg of a request.  Transport-level
  /// failures (lost or timed-out bus calls) are retried against the same
  /// plant with exponential backoff in sim-time; application faults
  /// reported by a plant mark it failed for the rest of the request and
  /// trigger failover to the next-best bid.
  util::RetryPolicy retry;
  /// How strongly plant health (from the fleet aggregator, [0, 1]) penalizes
  /// a bid: effective cost = cost * (1 + weight * (1 - health)).  0 (the
  /// default) disables the penalty entirely — selection is byte-for-byte
  /// the paper's cheapest-bid-with-random-ties, consuming the tie-break RNG
  /// identically.
  double health_penalty_weight = 0.0;
  /// Admission control for the creation path (DESIGN.md §10): at most this
  /// many creations in flight at once, the rest queueing up to
  /// admission_queue_limit before callers are rejected with
  /// kResourceExhausted.  0 (default) = unlimited, no admission control.
  std::size_t max_inflight_creates = 0;
  std::size_t admission_queue_limit = 16;
  /// Per-bid deadline (modeled; the in-process bus has no wall-clock
  /// deadline).  A bidder that cannot answer within this budget — the
  /// fault::points::kShopBid hook firing, or a transport-class failure
  /// from the bus — is SKIPPED for this round, never stalls collection,
  /// and never disqualifies the others.  0 keeps the legacy behavior of
  /// waiting on every bus call (the hook still fires when armed).
  double bid_timeout_s = 0.0;
};

class VmShop {
 public:
  VmShop(ShopConfig config, net::MessageBus* bus,
         net::ServiceRegistry* registry);
  ~VmShop();

  const std::string& name() const { return config_.name; }

  // -- Client-facing services -------------------------------------------------
  /// Create: bid collection, plant selection, creation, routing update.
  util::Result<classad::ClassAd> create(const CreateRequest& request);

  /// Query an active VM (routed; falls back to broadcast when unrouted).
  /// Refreshes the shop-side classad cache.
  util::Result<classad::ClassAd> query(const std::string& vm_id);

  /// Cache-first query (paper §3.1: "VMShop may ... cache classad
  /// information in the information system to speed up queries").  Serves
  /// the last classad seen for this VM without a plant round-trip; falls
  /// through to query() on a miss.  Cached ads can be stale until the next
  /// query()/create(); destroy() invalidates.
  util::Result<classad::ClassAd> cached_query(const std::string& vm_id);

  /// Cache statistics (diagnostics / tests).
  std::uint64_t cache_hits() const;
  std::size_t cache_size() const;

  /// Destroy (collect) an active VM.
  util::Status destroy(const std::string& vm_id);

  /// Publish a golden image to the warehouse through the lifecycle
  /// manager's quota admission (paper §3.2: installers publish images "for
  /// subsequent instantiations through VMPlant").  kFailedPrecondition when
  /// no lifecycle manager is attached; kResourceExhausted is the warehouse
  /// backpressure signal — the budget is full and eviction could not make
  /// room, so the installer must retry later or publish elsewhere.
  util::Status publish_image(const warehouse::GoldenImage& image);

  /// Install the lifecycle manager publish_image()/vmshop.publish admit
  /// through.  Install during setup — not synchronized.
  void set_lifecycle(lifecycle::LifecycleManager* lifecycle) {
    lifecycle_ = lifecycle;
  }

  // -- Bidding (exposed for tests and the cost-function bench) ----------------
  /// Collect bids for a request from every registered plant.  Plants that
  /// refuse (fault) are skipped; transport failures are skipped too.
  std::vector<Bid> collect_bids(const CreateRequest& request);

  /// Lowest effective-cost bid.  Ties prefer the healthiest plant (when a
  /// health provider is installed and the penalty weight is positive), then
  /// break uniformly at random (seeded).
  std::optional<Bid> select_bid(const std::vector<Bid>& bids);

  /// Install the per-plant health source consulted by select_bid (e.g.
  /// [&agg](const std::string& p) { return agg.health(p); }).  Plants the
  /// provider does not know should score 1.0 (no penalty).  Install during
  /// setup — swapping mid-request is not synchronized.
  void set_health_provider(std::function<double(const std::string&)> provider) {
    health_provider_ = std::move(provider);
  }

  /// Bid cost after the health penalty (identity when the weight is 0 or
  /// no provider is installed).
  double effective_cost(const Bid& bid) const;

  // -- Bus integration ---------------------------------------------------------
  /// Register the shop endpoint (services vmshop.create / query / destroy)
  /// and publish it in the registry.
  util::Status attach_to_bus();
  void detach_from_bus();
  const std::string& bus_address() const { return config_.name; }

  /// Number of creations served (diagnostics).
  std::uint64_t creations() const {
    return creations_.load(std::memory_order_relaxed);
  }

  /// Transport-level retries granted across all create() calls.
  std::uint64_t retries() const {
    return retries_.load(std::memory_order_relaxed);
  }
  /// Plants abandoned mid-request (failovers to the next-best bid).
  std::uint64_t failovers() const {
    return failovers_.load(std::memory_order_relaxed);
  }
  /// Bids skipped during collection because the bidder vanished between
  /// the registry snapshot and the bid call, timed out (the shop.bid
  /// fault hook / bid_timeout_s), or failed at the transport layer.
  /// Application-level refusals ("declined") are not counted here.
  std::uint64_t bids_skipped() const {
    return bids_skipped_.load(std::memory_order_relaxed);
  }
  /// Total exponential-backoff delay charged, in virtual sim-seconds.
  double retry_backoff_s() const;

  /// The creation-path admission controller (tests and diagnostics).
  const AdmissionController& admission() const { return admission_; }

 private:
  net::Message handle_message(const net::Message& request_msg);
  util::Result<classad::ClassAd> create_impl(const CreateRequest& request);
  util::Result<classad::ClassAd> query_at(const std::string& plant_address,
                                          const std::string& vm_id);

  /// One clamped health sample per plant in `bids`.  The provider (the
  /// fleet aggregator) is mutated concurrently by its sweep thread, so a
  /// selection pass must read each plant's health exactly once and reuse
  /// the cached value for every comparison — otherwise the min/filter/sort
  /// passes can disagree with each other (empty candidate set, comparator
  /// without strict weak ordering).  Empty when the penalty is off.
  std::map<std::string, double> snapshot_health(
      const std::vector<Bid>& bids) const;
  /// effective_cost() against a snapshot instead of a live provider read.
  double effective_cost_in(const Bid& bid,
                           const std::map<std::string, double>& health) const;
  /// Stable sort by effective cost under one health snapshot.
  void sort_by_effective_cost(std::vector<Bid>* bids) const;

  ShopConfig config_;
  net::MessageBus* bus_;
  net::ServiceRegistry* registry_;
  /// Guarded by mutex_: concurrent create() calls draw tie-break picks
  /// from one seeded stream (the order of draws under contention is
  /// scheduling-dependent, but the stream itself stays intact — and
  /// single-threaded callers remain bit-for-bit reproducible).
  util::SplitMix64 tie_rng_;
  std::function<double(const std::string&)> health_provider_;
  lifecycle::LifecycleManager* lifecycle_ = nullptr;
  AdmissionController admission_;
  mutable std::mutex mutex_;
  std::map<std::string, std::string> vm_to_plant_;
  std::map<std::string, classad::ClassAd> ad_cache_;
  std::uint64_t cache_hits_ = 0;  // guarded by mutex_
  std::atomic<std::uint64_t> creations_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> bids_skipped_{0};
  double retry_backoff_s_ = 0.0;  // guarded by mutex_
  bool attached_ = false;
};

}  // namespace vmp::core
