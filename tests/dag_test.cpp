// Unit tests for the configuration-DAG container, algorithms, and XML form.
#include <gtest/gtest.h>

#include <algorithm>

#include "dag/dag.h"
#include "dag/dag_xml.h"
#include "workload/dag_library.h"

namespace vmp::dag {
namespace {

ConfigDag diamond() {
  // A -> {B, C} -> D
  return DagBuilder()
      .guest("A", "install-os", {{"distro", "r8"}})
      .guest("B", "install-package", {{"package", "p1"}})
      .guest("C", "install-package", {{"package", "p2"}})
      .guest("D", "create-user", {{"name", "u"}})
      .edge("A", "B")
      .edge("A", "C")
      .edge("B", "D")
      .edge("C", "D")
      .build();
}

// -- Action -----------------------------------------------------------------------

TEST(ActionTest, SignatureIsCanonical) {
  Action a("id1", "install-package");
  a.set_param("version", "2");
  a.set_param("package", "vnc");
  Action b("other-id", "install-package");
  b.set_param("package", "vnc");
  b.set_param("version", "2");
  EXPECT_EQ(a.signature(), b.signature());
  EXPECT_EQ(a.signature(), "install-package{package=vnc,version=2}");
}

TEST(ActionTest, SignatureIgnoresScriptAndPolicy) {
  Action a("x", "op");
  Action b("y", "op");
  b.set_script("echo hi");
  b.set_error_policy(ErrorPolicy::kContinue);
  EXPECT_EQ(a.signature(), b.signature());
}

TEST(ActionTest, DifferentParamsDifferentSignature) {
  Action a("x", "op");
  a.set_param("k", "1");
  Action b("y", "op");
  b.set_param("k", "2");
  EXPECT_NE(a.signature(), b.signature());
}

TEST(ActionTest, ScopeAndPolicyParsing) {
  EXPECT_EQ(parse_action_scope("guest").value(), ActionScope::kGuest);
  EXPECT_EQ(parse_action_scope("host").value(), ActionScope::kHost);
  EXPECT_FALSE(parse_action_scope("bogus").ok());
  EXPECT_EQ(parse_error_policy("retry").value(), ErrorPolicy::kRetry);
  EXPECT_FALSE(parse_error_policy("bogus").ok());
}

// -- Construction ------------------------------------------------------------------

TEST(ConfigDagTest, AddActionRejectsDuplicatesAndReservedIds) {
  ConfigDag dag;
  EXPECT_TRUE(dag.add_action(Action("A", "op")).ok());
  EXPECT_FALSE(dag.add_action(Action("A", "op")).ok());
  EXPECT_FALSE(dag.add_action(Action("", "op")).ok());
  EXPECT_FALSE(dag.add_action(Action("X", "")).ok());
  EXPECT_FALSE(dag.add_action(Action("START", "op")).ok());
  EXPECT_FALSE(dag.add_action(Action("FINISH", "op")).ok());
}

TEST(ConfigDagTest, AddEdgeValidation) {
  ConfigDag dag;
  ASSERT_TRUE(dag.add_action(Action("A", "op")).ok());
  ASSERT_TRUE(dag.add_action(Action("B", "op2")).ok());
  EXPECT_TRUE(dag.add_edge("A", "B").ok());
  EXPECT_FALSE(dag.add_edge("A", "B").ok());   // duplicate
  EXPECT_FALSE(dag.add_edge("A", "A").ok());   // self loop
  EXPECT_FALSE(dag.add_edge("A", "Z").ok());   // missing target
  EXPECT_FALSE(dag.add_edge("Z", "A").ok());   // missing source
  EXPECT_EQ(dag.edge_count(), 1u);
}

TEST(ConfigDagTest, PredecessorsAndSuccessors) {
  ConfigDag d = diamond();
  EXPECT_EQ(d.successors("A"), (std::set<std::string>{"B", "C"}));
  EXPECT_EQ(d.predecessors("D"), (std::set<std::string>{"B", "C"}));
  EXPECT_TRUE(d.successors("D").empty());
  EXPECT_TRUE(d.predecessors("nonexistent").empty());
}

// -- Validation / cycles --------------------------------------------------------------

TEST(ConfigDagTest, ValidatesAcyclicGraph) {
  EXPECT_TRUE(diamond().validate().ok());
}

TEST(ConfigDagTest, DetectsCycle) {
  ConfigDag dag;
  ASSERT_TRUE(dag.add_action(Action("A", "op")).ok());
  ASSERT_TRUE(dag.add_action(Action("B", "op2")).ok());
  ASSERT_TRUE(dag.add_action(Action("C", "op3")).ok());
  ASSERT_TRUE(dag.add_edge("A", "B").ok());
  ASSERT_TRUE(dag.add_edge("B", "C").ok());
  ASSERT_TRUE(dag.add_edge("C", "A").ok());
  auto status = dag.validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.error().message().find("cycle"), std::string::npos);
}

TEST(ConfigDagTest, EmptyGraphIsValid) {
  ConfigDag dag;
  EXPECT_TRUE(dag.validate().ok());
  EXPECT_TRUE(dag.topological_sort().value().empty());
}

// -- Topological sort -------------------------------------------------------------------

TEST(ConfigDagTest, TopologicalSortRespectsEdges) {
  ConfigDag d = diamond();
  auto sorted = d.topological_sort();
  ASSERT_TRUE(sorted.ok());
  const auto& order = sorted.value();
  ASSERT_EQ(order.size(), 4u);
  auto pos = [&](const std::string& id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos("A"), pos("B"));
  EXPECT_LT(pos("A"), pos("C"));
  EXPECT_LT(pos("B"), pos("D"));
  EXPECT_LT(pos("C"), pos("D"));
}

TEST(ConfigDagTest, TopologicalSortIsDeterministic) {
  // Insertion order breaks ties: B added before C -> B sorts first.
  ConfigDag d = diamond();
  auto order = d.topological_sort().value();
  EXPECT_EQ(order, (std::vector<std::string>{"A", "B", "C", "D"}));
}

// -- Ancestors / descendants ----------------------------------------------------------

TEST(ConfigDagTest, AncestorsAndDescendants) {
  ConfigDag d = diamond();
  EXPECT_EQ(d.ancestors("D"), (std::set<std::string>{"A", "B", "C"}));
  EXPECT_EQ(d.ancestors("A"), (std::set<std::string>{}));
  EXPECT_EQ(d.descendants("A"), (std::set<std::string>{"B", "C", "D"}));
  EXPECT_EQ(d.descendants("D"), (std::set<std::string>{}));
}

TEST(ConfigDagTest, OrdersBefore) {
  ConfigDag d = diamond();
  EXPECT_TRUE(d.orders_before("A", "D"));
  EXPECT_TRUE(d.orders_before("B", "D"));
  EXPECT_FALSE(d.orders_before("B", "C"));  // incomparable
  EXPECT_FALSE(d.orders_before("D", "A"));
}

// -- Signature index ---------------------------------------------------------------------

TEST(ConfigDagTest, SignatureIndexMapsUniquely) {
  ConfigDag d = diamond();
  auto index = d.signature_index();
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index.value().size(), 4u);
  EXPECT_EQ(index.value().at("install-os{distro=r8}"), "A");
}

TEST(ConfigDagTest, DuplicateSignaturesRejected) {
  ConfigDag dag;
  Action a("A", "op");
  Action b("B", "op");  // same op, same (empty) params
  ASSERT_TRUE(dag.add_action(a).ok());
  ASSERT_TRUE(dag.add_action(b).ok());
  EXPECT_FALSE(dag.signature_index().ok());
}

// -- Error sub-graphs ----------------------------------------------------------------------

TEST(ConfigDagTest, ErrorSubgraphAttachment) {
  ConfigDag d = diamond();
  ConfigDag recovery = DagBuilder()
                           .guest("fix", "remove-package", {{"package", "p1"}})
                           .build();
  EXPECT_TRUE(d.set_error_subgraph("B", recovery).ok());
  EXPECT_NE(d.error_subgraph("B"), nullptr);
  EXPECT_EQ(d.error_subgraph("A"), nullptr);
  EXPECT_FALSE(d.set_error_subgraph("nope", ConfigDag()).ok());
  EXPECT_EQ(d.total_nodes_with_subgraphs(), 5u);
}

TEST(ConfigDagTest, CyclicErrorSubgraphRejected) {
  ConfigDag d = diamond();
  ConfigDag bad;
  ASSERT_TRUE(bad.add_action(Action("X", "op")).ok());
  ASSERT_TRUE(bad.add_action(Action("Y", "op2")).ok());
  ASSERT_TRUE(bad.add_edge("X", "Y").ok());
  ASSERT_TRUE(bad.add_edge("Y", "X").ok());
  EXPECT_FALSE(d.set_error_subgraph("B", bad).ok());
}

// -- Copying --------------------------------------------------------------------------------

TEST(ConfigDagTest, CopyIsDeep) {
  ConfigDag d = diamond();
  ConfigDag recovery =
      DagBuilder().guest("fix", "emit", {{"key", "k"}, {"value", "v"}}).build();
  ASSERT_TRUE(d.set_error_subgraph("B", recovery).ok());

  ConfigDag copy = d;
  EXPECT_TRUE(copy == d);
  ASSERT_TRUE(copy.add_action(Action("E", "extra-op")).ok());
  EXPECT_FALSE(copy == d);
  EXPECT_EQ(d.size(), 4u);
  EXPECT_EQ(copy.size(), 5u);
  EXPECT_NE(copy.error_subgraph("B"), d.error_subgraph("B"));  // distinct objects
}

// -- Builder ---------------------------------------------------------------------------------

TEST(DagBuilderTest, TryBuildReportsFirstError) {
  auto result = DagBuilder()
                    .guest("A", "op")
                    .edge("A", "missing")
                    .try_build();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), util::ErrorCode::kNotFound);
}

TEST(DagBuilderTest, ChainBuildsLinearOrder) {
  ConfigDag d = DagBuilder()
                    .guest("A", "op1")
                    .guest("B", "op2")
                    .guest("C", "op3")
                    .chain({"A", "B", "C"})
                    .build();
  EXPECT_TRUE(d.orders_before("A", "C"));
  EXPECT_EQ(d.edge_count(), 2u);
}

TEST(DagBuilderTest, CyclicTryBuildFails) {
  auto result = DagBuilder()
                    .guest("A", "op1")
                    .guest("B", "op2")
                    .edge("A", "B")
                    .edge("B", "A")
                    .try_build();
  EXPECT_FALSE(result.ok());
}

// -- XML round trip ----------------------------------------------------------------------------

TEST(DagXmlTest, RoundTripPreservesStructure) {
  ConfigDag d = diamond();
  Action flaky("E", "inject-flaky");
  flaky.set_param("token", "t1");
  flaky.set_param("count", "2");
  flaky.set_error_policy(ErrorPolicy::kRetry);
  flaky.set_max_retries(3);
  ASSERT_TRUE(d.add_action(flaky).ok());
  ASSERT_TRUE(d.add_edge("D", "E").ok());
  ConfigDag recovery =
      DagBuilder().guest("fix", "emit", {{"key", "a"}, {"value", "b"}}).build();
  ASSERT_TRUE(d.set_error_subgraph("E", recovery).ok());

  const std::string xml_text = to_xml_string(d);
  auto parsed = from_xml_string(xml_text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_TRUE(parsed.value() == d);

  const Action* e = parsed.value().action("E");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->error_policy(), ErrorPolicy::kRetry);
  EXPECT_EQ(e->max_retries(), 3);
  EXPECT_NE(parsed.value().error_subgraph("E"), nullptr);
}

TEST(DagXmlTest, ScriptsSurviveRoundTrip) {
  Action a("S", "run-script");
  a.set_script("install foo\noutput key value <&>\n");
  ConfigDag d;
  ASSERT_TRUE(d.add_action(a).ok());
  auto parsed = from_xml_string(to_xml_string(d));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().action("S")->script(), a.script());
}

TEST(DagXmlTest, RejectsMalformedDags) {
  EXPECT_FALSE(from_xml_string("<dag><action id=\"A\"/></dag>").ok());  // no op
  EXPECT_FALSE(from_xml_string("<dag><edge from=\"A\" to=\"B\"/></dag>").ok());
  EXPECT_FALSE(from_xml_string("<notdag/>").ok());
  // Cycle in the wire form.
  EXPECT_FALSE(from_xml_string(
                   "<dag><action id=\"A\" op=\"x\"/><action id=\"B\" op=\"y\"/>"
                   "<edge from=\"A\" to=\"B\"/><edge from=\"B\" to=\"A\"/></dag>")
                   .ok());
}

// -- The paper's Figure 3 DAG -------------------------------------------------------------------

TEST(InVigoDagTest, HasNineActions) {
  workload::WorkspaceParams params;
  ConfigDag d = workload::invigo_workspace_dag(params);
  EXPECT_EQ(d.size(), 9u);
  EXPECT_TRUE(d.validate().ok());
}

TEST(InVigoDagTest, TopologicalOrderMatchesPaperConstraints) {
  workload::WorkspaceParams params;
  ConfigDag d = workload::invigo_workspace_dag(params);
  auto order = d.topological_sort().value();
  auto pos = [&](const std::string& id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  // The install prefix is strictly ordered.
  EXPECT_LT(pos("A"), pos("B"));
  EXPECT_LT(pos("B"), pos("C"));
  // Configuration happens after install, VNC startup last.
  EXPECT_LT(pos("C"), pos("D"));
  EXPECT_LT(pos("E"), pos("F"));
  EXPECT_LT(pos("G"), pos("H"));
  EXPECT_LT(pos("G"), pos("I"));
}

TEST(InVigoDagTest, GoldenHistoryIsTheBasePrefix) {
  const auto history = workload::invigo_golden_history();
  ASSERT_EQ(history.size(), 3u);
  EXPECT_EQ(history[0], "install-os{distro=redhat-8.0}");
}

}  // namespace
}  // namespace vmp::dag
