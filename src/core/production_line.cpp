#include "core/production_line.h"

#include <algorithm>

#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace vmp::core {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

namespace {

const util::Logger kLog("production-line");

struct LineMetrics {
  obs::Counter* actions;
  obs::Counter* action_failures;
  obs::Timer* action_seconds;
  obs::Timer* configure_seconds;
  obs::Timer* clone_seconds;
  obs::Timer* resume_seconds;

  static LineMetrics& get() {
    static LineMetrics m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::instance();
      return LineMetrics{r.counter("plant.configure_action.count"),
                         r.counter("plant.configure_action_fail.count"),
                         r.timer("plant.configure_action.seconds"),
                         r.timer("plant.configure.seconds"),
                         r.timer("plant.clone.seconds"),
                         r.timer("hypervisor.resume.seconds")};
    }();
    return m;
  }
};

/// Timer readings come from the tracer clock so latency histograms match
/// the spans under an installed virtual clock (deterministic tests).
double now_s() { return obs::Tracer::instance().now(); }

}  // namespace

Result<std::string> compile_guest_script(const dag::Action& action) {
  const std::string& op = action.operation();
  auto need = [&](const char* key) -> Result<std::string> {
    return Result<std::string>(Error(
        ErrorCode::kInvalidArgument,
        "action '" + action.id() + "' (" + op + ") missing param '" + key + "'"));
  };

  if (op == "install-os") {
    if (action.param("distro").empty()) return need("distro");
    return "installos " + action.param("distro");
  }
  if (op == "install-package") {
    if (action.param("package").empty()) return need("package");
    return "install " + action.param("package");
  }
  if (op == "remove-package") {
    if (action.param("package").empty()) return need("package");
    return "remove " + action.param("package");
  }
  if (op == "require-package") {
    if (action.param("package").empty()) return need("package");
    return "require " + action.param("package");
  }
  if (op == "create-user") {
    if (action.param("name").empty()) return need("name");
    std::string line = "adduser " + action.param("name");
    if (!action.param("home").empty()) line += " " + action.param("home");
    return line;
  }
  if (op == "delete-user") {
    if (action.param("name").empty()) return need("name");
    return "deluser " + action.param("name");
  }
  if (op == "configure-network") {
    if (action.param("ip").empty()) return need("ip");
    std::string line = "ifconfig " + action.param("ip");
    if (!action.param("mac").empty()) line += " " + action.param("mac");
    return line;
  }
  if (op == "set-hostname") {
    if (action.param("name").empty()) return need("name");
    return "hostname " + action.param("name");
  }
  if (op == "mount") {
    if (action.param("source").empty()) return need("source");
    if (action.param("mountpoint").empty()) return need("mountpoint");
    return "mount " + action.param("source") + " " + action.param("mountpoint");
  }
  if (op == "unmount") {
    if (action.param("mountpoint").empty()) return need("mountpoint");
    return "umount " + action.param("mountpoint");
  }
  if (op == "start-service") {
    if (action.param("service").empty()) return need("service");
    return "start " + action.param("service");
  }
  if (op == "stop-service") {
    if (action.param("service").empty()) return need("service");
    return "stop " + action.param("service");
  }
  if (op == "write-file") {
    if (action.param("path").empty()) return need("path");
    return "writefile " + action.param("path") + " " + action.param("content");
  }
  if (op == "emit") {
    if (action.param("key").empty()) return need("key");
    return "output " + action.param("key") + " " + action.param("value");
  }
  if (op == "setup-ssh-key") {
    if (action.param("user").empty()) return need("user");
    return "sshkeygen " + action.param("user");
  }
  if (op == "setup-gsi-cert") {
    if (action.param("user").empty()) return need("user");
    if (action.param("subject").empty()) return need("subject");
    return "gridcert " + action.param("user") + " " + action.param("subject");
  }
  if (op == "inject-fail") {
    return "fail " + action.param("message");
  }
  if (op == "inject-flaky") {
    if (action.param("token").empty()) return need("token");
    if (action.param("count").empty()) return need("count");
    return "flaky " + action.param("token") + " " + action.param("count");
  }
  if (op == "run-script" || !action.script().empty()) {
    if (action.script().empty()) {
      return Result<std::string>(Error(
          ErrorCode::kInvalidArgument,
          "action '" + action.id() + "' is run-script but has no script"));
    }
    return action.script();
  }
  return Result<std::string>(Error(
      ErrorCode::kInvalidArgument,
      "unknown guest operation '" + op + "' in action '" + action.id() + "'"));
}

Status ProductionLine::attempt_action(const dag::Action& action,
                                      const std::string& vm_id,
                                      const std::string& network_name,
                                      ProductionResult* result) {
  if (action.scope() == dag::ActionScope::kHost) {
    const std::string& op = action.operation();
    ++result->host_actions_executed;
    if (op == "host-attach-nic") {
      if (network_name.empty()) {
        return Status(ErrorCode::kFailedPrecondition,
                      "host-attach-nic: plant has no network for this VM");
      }
      result->ad.set_string(attrs::kNetwork, network_name);
      return Status();
    }
    if (op == "host-set-attr") {
      if (action.param("key").empty()) {
        return Status(ErrorCode::kInvalidArgument,
                      "host-set-attr: missing param 'key'");
      }
      result->ad.set_string(action.param("key"), action.param("value"));
      return Status();
    }
    if (op == "host-connect-iso") {
      auto iso = hypervisor_->connect_script_iso(
          vm_id, "# data cd\n" + action.param("content"));
      if (!iso.ok()) return iso.error();
      ++result->isos_connected;
      return Status();
    }
    return Status(ErrorCode::kInvalidArgument,
                  "unknown host operation '" + op + "' in action '" +
                      action.id() + "'");
  }

  // Guest action: compile -> ISO -> guest daemon.  Injected configuration
  // faults flow through the same error-policy machinery (retry / error
  // sub-graph / continue) as organic guest failures.
  if (auto fault = fault::check(fault::points::kPlantConfigureAction,
                                action.id());
      !fault.ok()) {
    return fault;
  }

  auto script = compile_guest_script(action);
  if (!script.ok()) return script.error();

  auto iso = hypervisor_->connect_script_iso(vm_id, script.value());
  if (!iso.ok()) return iso.error();
  ++result->isos_connected;

  auto output = hypervisor_->execute_connected_script(vm_id);
  if (!output.ok()) return output.error();
  ++result->guest_actions_executed;

  for (const auto& [key, value] : output.value().outputs) {
    result->ad.set_string(key, value);
  }
  if (!output.value().success) {
    return Status(ErrorCode::kConfigActionFailed,
                  "action '" + action.id() + "': " +
                      output.value().failure_message);
  }
  return Status();
}

Status ProductionLine::run_action(const dag::ConfigDag& config,
                                  const std::string& action_id,
                                  const std::string& vm_id,
                                  const std::string& network_name,
                                  ProductionResult* result) {
  const dag::Action* action = config.action(action_id);
  if (action == nullptr) {
    return Status(ErrorCode::kInternal,
                  "plan references unknown action " + action_id);
  }

  LineMetrics& metrics = LineMetrics::get();
  obs::ScopedSpan span("configure.action", "production-line", action_id);
  span.set_vm(vm_id);
  const double span_start_s = now_s();
  const auto record = [&](const Status& outcome) {
    metrics.actions->add();
    metrics.action_seconds->record(now_s() - span_start_s);
    if (!outcome.ok()) {
      metrics.action_failures->add();
      span.set_status(util::error_code_name(outcome.error().code()));
    }
    return outcome;
  };

  // Phase 1: direct attempts (1 + retries when the policy allows).
  const int attempts =
      1 + (action->error_policy() == dag::ErrorPolicy::kRetry
               ? std::max(0, action->max_retries())
               : 0);
  Status last;
  for (int i = 0; i < attempts; ++i) {
    last = attempt_action(*action, vm_id, network_name, result);
    if (last.ok()) return record(last);
    kLog.debug() << vm_id << ": action " << action_id << " attempt "
                 << (i + 1) << "/" << attempts << " failed: "
                 << last.error().message();
  }

  // Phase 2: custom error sub-graph, then one more attempt.
  if (const dag::ConfigDag* sub = config.error_subgraph(action_id)) {
    auto order = sub->topological_sort();
    if (order.ok()) {
      bool subgraph_ok = true;
      for (const std::string& sub_id : order.value()) {
        const dag::Action* sub_action = sub->action(sub_id);
        Status s = attempt_action(*sub_action, vm_id, network_name, result);
        if (!s.ok()) {
          kLog.debug() << vm_id << ": error sub-graph node " << sub_id
                       << " failed: " << s.error().message();
          subgraph_ok = false;
          break;
        }
      }
      if (subgraph_ok) {
        last = attempt_action(*action, vm_id, network_name, result);
        if (last.ok()) return record(last);
      }
    }
  }

  // Phase 3: policy fallback.
  if (action->error_policy() == dag::ErrorPolicy::kContinue) {
    ++result->failures_continued;
    result->ad.set_string("ActionFailure_" + action_id,
                          last.error().message());
    (void)record(last);  // record the underlying failure despite continuing
    return Status();
  }
  return record(Status(ErrorCode::kConfigActionFailed,
                       "production aborted at action '" + action_id + "': " +
                           last.error().message()));
}

Result<storage::CloneReport> ProductionLine::clone_and_start(
    const warehouse::GoldenImage& golden, const std::string& vm_id) {
  obs::ScopedSpan span("plant.clone", "production-line", golden.id);
  span.set_vm(vm_id);
  const double clone_start_s = now_s();
  hv::CloneSource source;
  source.layout = golden.layout;
  source.spec = golden.spec;
  source.guest = golden.guest;
  source.golden_id = golden.id;
  const std::string clone_dir = clone_base_dir_ + "/" + vm_id;
  auto cloned = hypervisor_->clone_vm(source, clone_dir, vm_id);
  if (!cloned.ok()) {
    span.set_status(util::error_code_name(cloned.error().code()));
    return cloned.propagate<storage::CloneReport>();
  }
  const storage::CloneReport report = hypervisor_->find(vm_id)->clone_report;

  Status started = [&] {
    obs::ScopedSpan resume_span("hypervisor.resume", "hypervisor",
                                hypervisor_->type());
    resume_span.set_vm(vm_id);
    const double resume_start_s = now_s();
    Status s = hypervisor_->start_vm(vm_id);
    LineMetrics::get().resume_seconds->record(now_s() - resume_start_s);
    if (!s.ok()) resume_span.set_status(util::error_code_name(s.error().code()));
    return s;
  }();
  LineMetrics::get().clone_seconds->record(now_s() - clone_start_s);
  if (!started.ok()) {
    (void)hypervisor_->destroy_vm(vm_id);
    span.set_status(util::error_code_name(started.error().code()));
    return started.propagate<storage::CloneReport>();
  }
  return report;
}

Result<ProductionResult> ProductionLine::configure(
    const ProductionPlan& plan, const CreateRequest& request,
    const std::string& vm_id, const std::string& network_name) {
  obs::ScopedSpan span("plant.configure", "production-line",
                       std::to_string(plan.remaining_plan.size()) + " actions");
  span.set_vm(vm_id);
  const double start_s = now_s();
  ProductionResult result;
  result.vm_id = vm_id;
  const hv::VmInstance* vm = hypervisor_->find(vm_id);
  if (vm == nullptr) {
    return Result<ProductionResult>(
        Error(ErrorCode::kNotFound, "configure: no VM " + vm_id));
  }
  result.clone_report = vm->clone_report;

  // Execute the remaining sub-graph in plan order; on any persistent
  // failure the partial clone is destroyed before the error propagates
  // (the plant retries on a different golden or reports the fault
  // upstream).
  for (const std::string& action_id : plan.remaining_plan) {
    Status s = run_action(request.config, action_id, vm_id, network_name,
                          &result);
    if (!s.ok()) {
      (void)hypervisor_->destroy_vm(vm_id);
      LineMetrics::get().configure_seconds->record(now_s() - start_s);
      span.set_status(util::error_code_name(s.error().code()));
      return s.propagate<ProductionResult>();
    }
  }
  LineMetrics::get().configure_seconds->record(now_s() - start_s);
  return result;
}

Result<ProductionResult> ProductionLine::produce(
    const ProductionPlan& plan, const CreateRequest& request,
    const std::string& vm_id, const std::string& network_name) {
  auto report = clone_and_start(plan.golden, vm_id);
  if (!report.ok()) return report.propagate<ProductionResult>();
  return configure(plan, request, vm_id, network_name);
}

Status ProductionLine::collect(const std::string& vm_id) {
  return hypervisor_->destroy_vm(vm_id);
}

}  // namespace vmp::core
