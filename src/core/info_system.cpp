#include "core/info_system.h"

#include "core/request.h"

namespace vmp::core {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

void VmInformationSystem::store(const std::string& vm_id,
                                classad::ClassAd ad) {
  std::lock_guard<std::mutex> lock(mutex_);
  ads_[vm_id] = std::move(ad);
}

Result<classad::ClassAd> VmInformationSystem::query(
    const std::string& vm_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = ads_.find(vm_id);
  if (it == ads_.end()) {
    return Result<classad::ClassAd>(
        Error(ErrorCode::kNotFound, "info system: no VM " + vm_id));
  }
  return it->second;
}

bool VmInformationSystem::contains(const std::string& vm_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ads_.count(vm_id) != 0;
}

Status VmInformationSystem::remove(const std::string& vm_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ads_.erase(vm_id) == 0) {
    return Status(ErrorCode::kNotFound, "info system: no VM " + vm_id);
  }
  return Status();
}

Status VmInformationSystem::update(const std::string& vm_id,
                                   const classad::ClassAd& updates) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = ads_.find(vm_id);
  if (it == ads_.end()) {
    return Status(ErrorCode::kNotFound, "info system: no VM " + vm_id);
  }
  for (const std::string& name : updates.names()) {
    it->second.set(name, updates.lookup(name)->clone());
  }
  return Status();
}

std::vector<std::string> VmInformationSystem::vm_ids() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(ads_.size());
  for (const auto& [id, ad] : ads_) out.push_back(id);
  return out;
}

std::size_t VmInformationSystem::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ads_.size();
}

Status VmMonitor::refresh(const std::string& vm_id) {
  const hv::VmInstance* vm = hypervisor_->find(vm_id);
  if (vm == nullptr) {
    return Status(ErrorCode::kNotFound, "monitor: hypervisor lost VM " + vm_id);
  }
  classad::ClassAd updates;
  updates.set_string(attrs::kState, hv::power_state_name(vm->power));
  updates.set_integer(attrs::kMemoryBytes,
                      static_cast<std::int64_t>(vm->spec.memory_bytes));
  updates.set_integer(attrs::kIsosConnected,
                      static_cast<std::int64_t>(vm->connected_isos.size()));
  if (!vm->guest.ip.empty()) updates.set_string(attrs::kIp, vm->guest.ip);
  if (!vm->guest.mac.empty()) updates.set_string(attrs::kMac, vm->guest.mac);
  return info_->update(vm_id, updates);
}

std::size_t VmMonitor::refresh_all() {
  std::size_t ok = 0;
  for (const std::string& id : info_->vm_ids()) {
    if (refresh(id).ok()) ++ok;
  }
  return ok;
}

void VmMonitor::start_periodic(std::chrono::milliseconds interval) {
  if (thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stopping_ = false;
  }
  thread_ = std::thread([this, interval] {
    std::unique_lock<std::mutex> lock(stop_mutex_);
    while (!stopping_) {
      lock.unlock();
      refresh_all();
      sweeps_.fetch_add(1);
      lock.lock();
      stop_cv_.wait_for(lock, interval, [this] { return stopping_; });
    }
  });
}

void VmMonitor::stop_periodic() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

}  // namespace vmp::core
