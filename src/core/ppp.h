// Production Process Planner (PPP).
//
// Paper, Section 3.2: "When the PPP receives a production order, it
// searches the VM Warehouse to find a suitable match — a 'golden' machine.
// The golden machine must match the client machine specification in terms
// of memory, disk, the operating system installed and (fully or partially)
// the DAG configuration actions."
//
// The PPP combines the hardware filter with the three DAG matching tests
// (dag/matching.h) and emits a ProductionPlan: which golden image to clone
// and, in execution order, which DAG actions remain to be configured.
#pragma once

#include <string>
#include <vector>

#include "core/request.h"
#include "dag/matching.h"
#include "util/error.h"
#include "warehouse/warehouse.h"

namespace vmp::core {

struct ProductionPlan {
  warehouse::GoldenImage golden;
  /// Request-DAG node ids already satisfied by the golden image.
  std::vector<std::string> satisfied_nodes;
  /// Remaining node ids, in a valid topological execution order.
  std::vector<std::string> remaining_plan;
  /// How many candidates passed the hardware filter (diagnostics).
  std::size_t hardware_candidates = 0;
};

class ProductionProcessPlanner {
 public:
  explicit ProductionProcessPlanner(warehouse::Warehouse* warehouse)
      : warehouse_(warehouse) {}

  /// Plan a production order.  Fails with kNoMatchingImage when no golden
  /// machine passes both the hardware filter and the DAG tests.
  util::Result<ProductionPlan> plan(const CreateRequest& request) const;

 private:
  warehouse::Warehouse* warehouse_;
};

}  // namespace vmp::core
