
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dag/action.cpp" "src/dag/CMakeFiles/vmp_dag.dir/action.cpp.o" "gcc" "src/dag/CMakeFiles/vmp_dag.dir/action.cpp.o.d"
  "/root/repo/src/dag/dag.cpp" "src/dag/CMakeFiles/vmp_dag.dir/dag.cpp.o" "gcc" "src/dag/CMakeFiles/vmp_dag.dir/dag.cpp.o.d"
  "/root/repo/src/dag/dag_xml.cpp" "src/dag/CMakeFiles/vmp_dag.dir/dag_xml.cpp.o" "gcc" "src/dag/CMakeFiles/vmp_dag.dir/dag_xml.cpp.o.d"
  "/root/repo/src/dag/matching.cpp" "src/dag/CMakeFiles/vmp_dag.dir/matching.cpp.o" "gcc" "src/dag/CMakeFiles/vmp_dag.dir/matching.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vmp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/vmp_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
