#!/usr/bin/env python3
"""Gate CI on a bench binary's BENCH_JSON output.

Reads BENCH_JSON lines (from a file or stdin) emitted by a bench binary
and compares them against a baseline file (bench/baselines/*.json). A
baseline opts into gates by including the matching key:

  * "throughput_floor": {name: floor} — each named measurement's
    throughput_vm_s must reach floor * (1 - max_regression_pct/100);
  * "metric_floors": {name: {metric: floor}} — like throughput_floor but
    for arbitrary metrics (e.g. hit_rate), same regression allowance;
  * "must_exceed": [{"left": name.metric, "right": name.metric,
    "min_ratio": r}] — cross-measurement ordering gates, e.g. the GDSF
    churn hit rate must exceed LRU's at equal quota;
  * "min_speedup_c16" — "create.speedup.c16" (concurrent pipeline vs the
    serialized baseline at 16 clients) must reach it, but only on hosts
    with at least min_cores_for_speedup_gate cores, since the pipeline
    cannot beat a serialized memcpy on a single-core runner;
  * any measurement reporting failures != 0 fails the gate outright.

Exit status 0 = pass, 1 = regression, 2 = bad input.
"""
import argparse
import json
import re
import sys

BENCH_LINE = re.compile(r"^BENCH_JSON\s+(\{.*\})\s*$")


def parse_bench_lines(stream):
    results = {}
    for line in stream:
        match = BENCH_LINE.match(line.strip())
        if not match:
            continue
        record = json.loads(match.group(1))
        results[record["name"]] = record
    return results


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="baseline JSON (bench/baselines/concurrency.json)")
    parser.add_argument("--results", default="-",
                        help="file with BENCH_JSON lines (default: stdin)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)

    if args.results == "-":
        results = parse_bench_lines(sys.stdin)
    else:
        with open(args.results) as f:
            results = parse_bench_lines(f)

    if not results:
        print("bench_gate: no BENCH_JSON lines found in input", file=sys.stderr)
        return 2

    max_regression = baseline.get("max_regression_pct", 20) / 100.0
    failures = []

    for record in results.values():
        if record.get("failures", 0):
            failures.append(f"{record['name']}: {record['failures']} "
                            "creations failed")

    for name, floor in baseline.get("throughput_floor", {}).items():
        record = results.get(name)
        if record is None:
            failures.append(f"{name}: measurement missing from bench output")
            continue
        measured = record.get("throughput_vm_s", 0.0)
        allowed = floor * (1.0 - max_regression)
        verdict = "ok" if measured >= allowed else "REGRESSED"
        print(f"{name:24s} {measured:10.1f} vm/s  "
              f"(floor {floor:.1f}, allowed >= {allowed:.1f})  {verdict}")
        if measured < allowed:
            failures.append(f"{name}: {measured:.1f} vm/s is below "
                            f"{allowed:.1f} (floor {floor:.1f} - "
                            f"{max_regression:.0%})")

    for name, metrics in baseline.get("metric_floors", {}).items():
        record = results.get(name)
        if record is None:
            failures.append(f"{name}: measurement missing from bench output")
            continue
        for metric, floor in metrics.items():
            measured = record.get(metric, 0.0)
            allowed = floor * (1.0 - max_regression)
            verdict = "ok" if measured >= allowed else "REGRESSED"
            print(f"{name + '.' + metric:24s} {measured:10.4f}      "
                  f"(floor {floor:.4f}, allowed >= {allowed:.4f})  {verdict}")
            if measured < allowed:
                failures.append(f"{name}.{metric}: {measured:.4f} is below "
                                f"{allowed:.4f} (floor {floor:.4f} - "
                                f"{max_regression:.0%})")

    def lookup(dotted):
        name, _, metric = dotted.rpartition(".")
        record = results.get(name)
        if record is None or metric not in record:
            return None
        return float(record[metric])

    for rule in baseline.get("must_exceed", []):
        left, right = rule["left"], rule["right"]
        min_ratio = rule.get("min_ratio", 1.0)
        lhs, rhs = lookup(left), lookup(right)
        if lhs is None or rhs is None:
            missing = left if lhs is None else right
            failures.append(f"must_exceed: {missing} missing from bench output")
            continue
        ratio = lhs / rhs if rhs else float("inf")
        verdict = "ok" if ratio >= min_ratio else "REGRESSED"
        print(f"{left:24s} {ratio:10.4f}x     "
              f"(vs {right}, required >= {min_ratio:.2f}x)  {verdict}")
        if ratio < min_ratio:
            failures.append(f"must_exceed: {left} ({lhs:.4f}) is only "
                            f"{ratio:.2f}x of {right} ({rhs:.4f}), "
                            f"needs {min_ratio:.2f}x")

    speedup_record = results.get("create.speedup.c16")
    min_speedup = baseline.get("min_speedup_c16")
    min_cores = baseline.get("min_cores_for_speedup_gate", 4)
    if min_speedup is None:
        pass  # baseline doesn't gate the pipeline speedup
    elif speedup_record is None:
        failures.append("create.speedup.c16: measurement missing")
    else:
        speedup = speedup_record.get("speedup", 0.0)
        cores = speedup_record.get("cores", 0)
        if cores >= min_cores:
            verdict = "ok" if speedup >= min_speedup else "REGRESSED"
            print(f"{'create.speedup.c16':24s} {speedup:10.2f}x     "
                  f"(required >= {min_speedup:.1f}x on {cores} cores)  "
                  f"{verdict}")
            if speedup < min_speedup:
                failures.append(f"create.speedup.c16: {speedup:.2f}x is below "
                                f"the {min_speedup:.1f}x floor "
                                f"({cores} cores)")
        else:
            print(f"{'create.speedup.c16':24s} {speedup:10.2f}x     "
                  f"(informational: only {cores} core(s), gate needs "
                  f">= {min_cores})")

    if failures:
        print("\nbench_gate: FAIL", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbench_gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
