file(REMOVE_RECURSE
  "CMakeFiles/vmp_cluster.dir/concurrent_sim.cpp.o"
  "CMakeFiles/vmp_cluster.dir/concurrent_sim.cpp.o.d"
  "CMakeFiles/vmp_cluster.dir/deployment.cpp.o"
  "CMakeFiles/vmp_cluster.dir/deployment.cpp.o.d"
  "CMakeFiles/vmp_cluster.dir/timing_model.cpp.o"
  "CMakeFiles/vmp_cluster.dir/timing_model.cpp.o.d"
  "libvmp_cluster.a"
  "libvmp_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmp_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
