// Latency model of the paper's testbed (DESIGN.md §2 substitution table).
//
// The physical setup being modeled (paper §4.2): an 8-node IBM e1350
// cluster (dual P4 2.4 GHz, 1.5 GB RAM, 18 GB SCSI disk per node), a VM
// warehouse served over NFS by a storage server on 100 Mbit/s Ethernet, and
// VMware GSX 2.5.1 / UML production lines.  The calibration targets are the
// numbers the paper reports:
//
//   * full copy of the 2 GB / 16-file golden disk: 210 s      (§4.3)
//   * mean end-to-end creation: 25-48 s, growing with memory  (Fig. 4)
//   * cloning (clone request -> resume complete) dominated by the memory-
//     state copy; ~4x cheaper than full copy even at 256 MB   (Fig. 5)
//   * cloning slows as a plant's resident VM memory exceeds ~1 GB
//     aggregate (memory pressure at resume)                   (Fig. 6)
//   * UML full-boot clone average: 76 s                       (§4.3)
//
// All durations are deterministic functions of byte/link accounting
// produced by the *real* production-line code, times a lognormal noise
// stream seeded per experiment.
#pragma once

#include <cstdint>
#include <string>

#include "util/random.h"

namespace vmp::cluster {

struct TimingConfig {
  // NFS warehouse path (shared 100 Mbit/s Ethernet): effective sustained
  // copy throughput, bytes/second.  2 GB / 10.2 MB/s + per-file overhead
  // ~= 210 s.
  double nfs_copy_bytes_per_sec = 10.2e6;
  // Per-file overhead of an NFS copy (open/close/attr traffic).
  double per_file_copy_overhead_sec = 0.55;
  // A symlink + small metadata op on the NFS mount.
  double link_op_sec = 0.08;
  // Fixed cost of the clone bookkeeping (config replica, redo, VMX ops).
  double clone_fixed_sec = 1.2;

  // GSX resume: fixed VMM cost + reading the private memory checkpoint
  // back from the NFS-resident clone directory.
  double resume_fixed_sec = 3.0;
  double resume_read_bytes_per_sec = 55.0e6;

  // UML boot (the §4.3 76-second path: kernel boot + services).
  double uml_boot_sec = 68.0;
  // Xen paravirtual boot through domain 0 (no BIOS/emulation path).
  double xen_boot_sec = 14.0;

  // Host memory pressure: resuming a VM when the plant's resident VM
  // memory (plus per-VM VMM overhead) approaches/exceeds usable host
  // memory forces paging.  multiplier = 1 + gain * max(0, ratio - knee).
  std::uint64_t host_memory_bytes = 1536ull << 20;
  double usable_memory_fraction = 0.82;   // host O/S + VMM reserve
  std::uint64_t per_vm_overhead_bytes = 24ull << 20;
  double pressure_knee = 0.65;
  double pressure_gain = 1.8;

  // Configuration actions: ISO authoring+attach, guest mount+execute.
  double iso_connect_sec = 0.9;
  double guest_action_sec = 1.5;

  // Adopting a parked speculative instance (bookkeeping only).
  double speculative_adopt_sec = 0.4;

  // Shop-side costs per creation: request parse, bid round, response.
  double shop_fixed_sec = 1.6;
  double bid_per_plant_sec = 0.12;

  // Lognormal noise sigma applied multiplicatively to each phase.
  double noise_sigma = 0.10;
};

/// Inputs describing one creation, extracted from the plant's response
/// classad (real accounting, not synthetic).
struct CreationObservation {
  std::string backend;             // "vmware-gsx" | "uml"
  std::uint64_t memory_bytes = 0;  // VM size
  std::uint64_t clone_bytes_copied = 0;
  std::uint64_t clone_links = 0;
  std::uint64_t resident_before_bytes = 0;  // plant total before this VM
  std::uint64_t active_vms_before = 0;
  std::uint64_t guest_actions = 0;
  std::uint64_t isos_connected = 0;
  std::uint64_t bidding_plants = 0;
  /// Creation adopted a pre-created (speculative) instance: no clone or
  /// resume work on the critical path.
  bool speculative_hit = false;
};

/// Phase durations for one creation (seconds).
struct CreationTiming {
  double clone_sec = 0.0;   // PPP clone request -> resume/boot complete
                            // (the paper's Figure 5 metric)
  double config_sec = 0.0;  // DAG suffix execution
  double shop_sec = 0.0;    // bid round + shop bookkeeping
  double total_sec = 0.0;   // client request -> VMShop response (Figure 4)
};

class TimingModel {
 public:
  TimingModel(TimingConfig config, std::uint64_t seed)
      : config_(config), noise_(seed, "timing-noise") {}

  const TimingConfig& config() const { return config_; }

  /// Compute the phase durations of one observed creation.  Consumes noise
  /// stream values (call order defines the experiment's randomness).
  CreationTiming time_creation(const CreationObservation& obs);

  /// Duration of fully copying an image of `bytes` in `files` files over
  /// NFS (the paper's 210-second baseline).
  double full_copy_sec(std::uint64_t bytes, std::uint64_t files);

  /// Memory-pressure multiplier for resuming a VM of `new_vm_bytes` on a
  /// plant already holding `resident_bytes` across `active_vms` VMs.
  double pressure_multiplier(std::uint64_t resident_bytes,
                             std::uint64_t active_vms,
                             std::uint64_t new_vm_bytes) const;

 private:
  double noisy(double base);

  TimingConfig config_;
  util::RandomStream noise_;
};

}  // namespace vmp::cluster
