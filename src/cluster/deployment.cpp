#include "cluster/deployment.h"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <map>

#include "core/request.h"
#include "core/snapshot.h"
#include "util/logging.h"

namespace vmp::cluster {

using util::Error;
using util::ErrorCode;
using util::Result;

namespace {

const util::Logger kLog("deployment");

std::string make_sandbox() {
  static std::atomic<std::uint64_t> counter{0};
  const auto base = std::filesystem::temp_directory_path() / "vmplants-sim";
  const std::string dir =
      (base / (std::to_string(::getpid()) + "-" +
               std::to_string(counter.fetch_add(1))))
          .string();
  std::filesystem::create_directories(dir);
  return dir;
}

}  // namespace

SimulatedDeployment::SimulatedDeployment(DeploymentConfig config)
    : config_(std::move(config)),
      bus_(net::BusConfig{config_.wire_format, config_.seed ^ 0xb05}),
      timing_(config_.timing, config_.seed) {
  std::string sandbox = config_.sandbox_dir;
  if (sandbox.empty()) {
    sandbox = make_sandbox();
    owned_sandbox_ = sandbox;
  }
  store_ = std::make_unique<storage::ArtifactStore>(sandbox);
  warehouse_ = std::make_unique<warehouse::Warehouse>(store_.get(), "warehouse");

  // Sharded federation (DESIGN.md §16): plants stay OFF the public
  // registry — only their shard broker is discoverable, like plants
  // behind a private-network gateway (paper §3.3).
  const bool sharded = config_.federation_shards > 0;
  for (std::size_t i = 0; i < config_.plant_count; ++i) {
    core::PlantConfig pc;
    pc.name = "plant" + std::to_string(i);
    pc.backend = config_.backend;
    pc.host_memory_bytes = config_.timing.host_memory_bytes;
    pc.max_vms = config_.max_vms_per_plant;
    pc.host_only_networks = config_.host_only_networks;
    pc.cost_model = config_.cost_model;
    auto plant =
        std::make_unique<core::VmPlant>(pc, store_.get(), warehouse_.get());
    auto attached = plant->attach_to_bus(&bus_, sharded ? nullptr : &registry_);
    if (!attached.ok()) {
      kLog.error() << "plant attach failed: " << attached.to_string();
    }
    plants_.push_back(std::move(plant));
  }

  if (sharded) {
    for (std::size_t s = 0; s < config_.federation_shards; ++s) {
      federation::ShardBrokerConfig bc;
      bc.name = "shard" + std::to_string(s);
      bc.bid_ttl_s = config_.federation_bid_ttl_s;
      auto broker =
          std::make_unique<federation::ShardBroker>(bc, &bus_, &registry_);
      broker->set_clock([this] { return sim_now_; });
      brokers_.push_back(std::move(broker));
    }
    for (std::size_t i = 0; i < plants_.size(); ++i) {
      brokers_[i % brokers_.size()]->add_member(plants_[i]->bus_address());
    }
    for (auto& broker : brokers_) {
      auto attached = broker->attach_to_bus();
      if (!attached.ok()) {
        kLog.error() << "broker attach failed: " << attached.to_string();
      }
    }
  }

  core::ShopConfig sc;
  sc.name = "vmshop";
  sc.tie_break_seed = config_.seed ^ 0x5b0b;
  shop_ = std::make_unique<core::VmShop>(sc, &bus_, &registry_);
  auto attached = shop_->attach_to_bus();
  if (!attached.ok()) {
    kLog.error() << "shop attach failed: " << attached.to_string();
  }
}

SimulatedDeployment::~SimulatedDeployment() {
  shop_.reset();
  brokers_.clear();
  plants_.clear();
  warehouse_.reset();
  store_.reset();
  if (!owned_sandbox_.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(owned_sandbox_, ec);
  }
}

Result<CreationSample> SimulatedDeployment::run_request(
    const core::CreateRequest& request) {
  const std::size_t bidding_plants = registry_.discover("vmplant").size();

  auto ad = shop_->create(request);
  if (!ad.ok()) {
    ++failures_;
    return ad.propagate<CreationSample>();
  }

  // Attribute timing from the plant's accounting.
  auto attr_u64 = [&](const char* name) -> std::uint64_t {
    const auto v = ad.value().get_integer(name);
    return v.has_value() && *v >= 0 ? static_cast<std::uint64_t>(*v) : 0;
  };

  CreationObservation obs;
  obs.backend = ad.value().get_string(core::attrs::kBackend).value_or("vmware-gsx");
  obs.memory_bytes = attr_u64(core::attrs::kMemoryBytes);
  obs.clone_bytes_copied = attr_u64(core::attrs::kCloneBytesCopied);
  obs.clone_links = attr_u64(core::attrs::kCloneLinks);
  obs.resident_before_bytes = attr_u64(core::attrs::kResidentBeforeBytes);
  obs.active_vms_before = attr_u64(core::attrs::kActiveVmsBefore);
  obs.guest_actions = attr_u64(core::attrs::kActionsExecuted);
  obs.isos_connected = attr_u64(core::attrs::kIsosConnected);
  obs.bidding_plants = bidding_plants;
  obs.speculative_hit =
      ad.value().get_boolean(core::attrs::kSpeculativeHit).value_or(false);

  CreationSample sample;
  sample.sequence = ++sequence_;
  sample.request_id = request.request_id;
  sample.vm_id = ad.value().get_string(core::attrs::kVmId).value_or("");
  sample.plant = ad.value().get_string(core::attrs::kPlant).value_or("");
  sample.memory_bytes = obs.memory_bytes;
  sample.timing = timing_.time_creation(obs);
  sim_now_ += sample.timing.total_sec;
  sample.sim_time_completed = sim_now_;

  created_vm_ids_.push_back(sample.vm_id);
  return sample;
}

std::vector<CreationSample> SimulatedDeployment::run_sequence(
    const std::vector<core::CreateRequest>& requests, bool stop_on_error) {
  std::vector<CreationSample> out;
  out.reserve(requests.size());
  for (const core::CreateRequest& request : requests) {
    auto sample = run_request(request);
    if (!sample.ok()) {
      kLog.warn() << "creation failed for " << request.request_id << ": "
                  << sample.error().to_string();
      if (stop_on_error) break;
      continue;
    }
    out.push_back(std::move(sample).value());
  }
  return out;
}

std::size_t SimulatedDeployment::refresh_federation() {
  std::size_t refreshed = 0;
  for (auto& broker : brokers_) refreshed += broker->refresh_all();
  return refreshed;
}

void SimulatedDeployment::collect_all() {
  for (const std::string& vm_id : created_vm_ids_) {
    (void)shop_->destroy(vm_id);
  }
  created_vm_ids_.clear();
}

Result<std::string> SimulatedDeployment::save_snapshot() const {
  core::SnapshotParticipants participants;
  participants.warehouse = warehouse_.get();
  std::map<std::string, std::string> meta;
  meta["deployment.backend"] = config_.backend;
  meta["deployment.plants"] = std::to_string(plants_.size());
  meta["deployment.sim_now"] = std::to_string(sim_now_);
  meta["deployment.sequence"] = std::to_string(sequence_);
  meta["deployment.failures"] = std::to_string(failures_);
  return core::save_snapshot(participants, std::move(meta));
}

util::Status SimulatedDeployment::load_snapshot(std::string_view frame) {
  auto data = core::decode_snapshot(frame);
  if (!data.ok()) return data.error();
  core::SnapshotParticipants participants;
  participants.warehouse = warehouse_.get();
  VMP_RETURN_IF_ERROR(core::restore_snapshot(data.value(), participants));
  const auto& meta = data.value().meta;
  auto meta_value = [&](const char* key) -> const std::string* {
    auto it = meta.find(key);
    return it == meta.end() ? nullptr : &it->second;
  };
  if (const std::string* v = meta_value("deployment.sim_now")) {
    sim_now_ = std::strtod(v->c_str(), nullptr);
  }
  if (const std::string* v = meta_value("deployment.sequence")) {
    sequence_ = std::strtoull(v->c_str(), nullptr, 10);
  }
  if (const std::string* v = meta_value("deployment.failures")) {
    failures_ = std::strtoull(v->c_str(), nullptr, 10);
  }
  return util::Status();
}

}  // namespace vmp::cluster
