#include "dag/dag_xml.h"

#include "xml/xml.h"

namespace vmp::dag {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

void to_xml(const ConfigDag& dag, xml::Element* parent) {
  xml::Element& root = parent->add_child("dag");
  for (const std::string& id : dag.node_ids()) {
    const Action& a = *dag.action(id);
    xml::Element& node = root.add_child("action");
    node.set_attr("id", a.id());
    node.set_attr("op", a.operation());
    node.set_attr("scope", action_scope_name(a.scope()));
    if (a.error_policy() != ErrorPolicy::kAbort) {
      node.set_attr("on-error", error_policy_name(a.error_policy()));
    }
    if (a.max_retries() > 0) {
      node.set_attr("max-retries", std::to_string(a.max_retries()));
    }
    for (const auto& [key, value] : a.params()) {
      xml::Element& p = node.add_child("param");
      p.set_attr("name", key);
      p.set_text(value);
    }
    if (!a.script().empty()) {
      node.add_child("script").set_text(a.script());
    }
    if (const ConfigDag* sub = dag.error_subgraph(id)) {
      to_xml(*sub, &node.add_child("error-dag"));
    }
  }
  for (const std::string& id : dag.node_ids()) {
    for (const std::string& succ : dag.successors(id)) {
      xml::Element& e = root.add_child("edge");
      e.set_attr("from", id);
      e.set_attr("to", succ);
    }
  }
}

std::string to_xml_string(const ConfigDag& dag) {
  xml::Element wrapper("wrapper");
  to_xml(dag, &wrapper);
  return wrapper.children().front()->to_string();
}

Result<ConfigDag> from_xml(const xml::Element& dag_element) {
  if (dag_element.name() != "dag") {
    return Result<ConfigDag>(Error(
        ErrorCode::kParseError,
        "expected <dag> element, found <" + dag_element.name() + ">"));
  }
  ConfigDag dag;
  for (const xml::Element* node : dag_element.children_named("action")) {
    if (!node->has_attr("id") || !node->has_attr("op")) {
      return Result<ConfigDag>(Error(ErrorCode::kParseError,
                                     "<action> requires id and op attributes"));
    }
    Action a(node->attr("id"), node->attr("op"));
    if (node->has_attr("scope")) {
      auto scope = parse_action_scope(node->attr("scope"));
      if (!scope.ok()) return scope.propagate<ConfigDag>();
      a.set_scope(scope.value());
    }
    if (node->has_attr("on-error")) {
      auto policy = parse_error_policy(node->attr("on-error"));
      if (!policy.ok()) return policy.propagate<ConfigDag>();
      a.set_error_policy(policy.value());
    }
    if (node->has_attr("max-retries")) {
      a.set_max_retries(static_cast<int>(node->attr_int("max-retries", 0)));
    }
    for (const xml::Element* p : node->children_named("param")) {
      if (!p->has_attr("name")) {
        return Result<ConfigDag>(
            Error(ErrorCode::kParseError, "<param> requires a name attribute"));
      }
      a.set_param(p->attr("name"), p->text());
    }
    if (const xml::Element* script = node->child("script")) {
      a.set_script(script->text());
    }
    Status s = dag.add_action(std::move(a));
    if (!s.ok()) return s.propagate<ConfigDag>();

    if (const xml::Element* error_wrapper = node->child("error-dag")) {
      const xml::Element* inner = error_wrapper->child("dag");
      if (inner == nullptr) {
        return Result<ConfigDag>(Error(ErrorCode::kParseError,
                                       "<error-dag> must contain a <dag>"));
      }
      auto sub = from_xml(*inner);
      if (!sub.ok()) return sub;
      s = dag.set_error_subgraph(node->attr("id"), std::move(sub).value());
      if (!s.ok()) return s.propagate<ConfigDag>();
    }
  }
  for (const xml::Element* edge : dag_element.children_named("edge")) {
    if (!edge->has_attr("from") || !edge->has_attr("to")) {
      return Result<ConfigDag>(Error(ErrorCode::kParseError,
                                     "<edge> requires from and to attributes"));
    }
    Status s = dag.add_edge(edge->attr("from"), edge->attr("to"));
    if (!s.ok()) return s.propagate<ConfigDag>();
  }
  Status valid = dag.validate();
  if (!valid.ok()) return valid.propagate<ConfigDag>();
  return dag;
}

Result<ConfigDag> from_xml_string(const std::string& text) {
  auto doc = xml::parse(text);
  if (!doc.ok()) return doc.propagate<ConfigDag>();
  return from_xml(*doc.value());
}

}  // namespace vmp::dag
