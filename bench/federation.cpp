// Sharded shop federation vs the flat bidding floor (DESIGN.md §16).
//
// The paper's shop collects a bid from EVERY registered plant per request
// (§3.1) — O(plants) messages per creation.  A ShardBroker tier hides the
// plants behind N brokers with TTL'd aggregate-bid caches, so the shop
// collects O(N) bids and the per-plant traffic moves off the create path
// into periodic estimate_batch refreshes (one message per broker member,
// regardless of how many DAG-classes it prices).
//
// This bench measures exactly that trade at grid scale: 10 000 plant
// endpoints served by stub handlers (deterministic cost function, no
// storage or hypervisor behind them — the subject here is the ROUTING
// fabric, and real clone I/O would drown it).  Three measurements:
//
//   fed.flat.p10000          the paper's topology: every plant public,
//                            every create pays a full bidding round;
//   fed.sharded.p10000.s16   16 ShardBrokers x 625 members, warm caches:
//                            creates pay 16 cached bids + 2 forwards;
//   fed.refresh.p10000.s16   one full refresh_all() sweep — the off-path
//                            cost the cache warmth is bought with: one
//                            estimate_batch per member, O(children).
//
// Message counts come from the bus's own call counter, so they are exact
// and deterministic; bench/baselines/federation.json gates the sharded /
// flat throughput ratio (>= 2x) and the flat / sharded bid-message ratio
// (>= 8x) via tools/bench_gate.py "must_exceed".
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "classad/classad.h"
#include "common.h"
#include "core/request.h"
#include "core/shop.h"
#include "federation/federation.h"
#include "net/bus.h"
#include "net/registry.h"
#include "util/strings.h"
#include "workload/request_gen.h"
#include "xml/xml.h"

namespace vmp {
namespace {

constexpr std::size_t kPlants = 10000;
constexpr std::size_t kShards = 16;
constexpr std::size_t kFlatCreates = 16;
constexpr std::size_t kShardedCreates = 256;

/// Deterministic per-plant cost: spreads bids so the auction is real (one
/// strict winner) without any plant-side state.
double stub_cost(std::size_t index) {
  return 10.0 + static_cast<double>((index * 2654435761ull) % 9973) / 100.0;
}

/// Register a stub plant endpoint: prices estimates and estimate_batch
/// from the cost function and answers creates with a minimal classad.
/// No storage, hypervisor, or production line — pure routing target.
void register_stub_plant(net::MessageBus* bus, const std::string& name,
                         std::size_t index) {
  const double cost = stub_cost(index);
  auto handler = [name, cost](const net::Message& m) -> net::Message {
    net::Message response = net::Message::response_to(m);
    if (m.service() == "vmplant.estimate") {
      xml::Element& bid = response.body().add_child("bid");
      bid.set_attr("plant", name);
      bid.set_attr("cost", util::format_double(cost));
    } else if (m.service() == "vmplant.estimate_batch") {
      xml::Element& bids = response.body().add_child("bids");
      for (const xml::Element* cls : m.body().children_named("class")) {
        if (!cls->has_attr("key")) continue;
        xml::Element& bid = bids.add_child("bid");
        bid.set_attr("class", cls->attr("key"));
        bid.set_attr("plant", name);
        bid.set_attr("cost", util::format_double(cost));
      }
    } else {  // create / query / collect
      classad::ClassAd ad;
      ad.set_string(core::attrs::kVmId, name + "-vm");
      ad.set_string(core::attrs::kPlant, name);
      ad.to_xml(&response.body());
    }
    return response;
  };
  (void)bus->register_endpoint(name, std::move(handler));
}

struct LegResult {
  double throughput_vm_s = 0.0;
  double bid_msgs_per_create = 0.0;
  std::size_t failures = 0;
};

LegResult run_creates(core::VmShop* shop, net::MessageBus* bus,
                      std::size_t creates) {
  LegResult result;
  const std::uint64_t calls_before = bus->calls_total();
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < creates; ++i) {
    auto ad = shop->create(workload::workspace_request(32, i, "bench.grid"));
    if (!ad.ok()) ++result.failures;
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.throughput_vm_s =
      elapsed > 0.0 ? static_cast<double>(creates) / elapsed : 0.0;
  result.bid_msgs_per_create =
      static_cast<double>(bus->calls_total() - calls_before) /
      static_cast<double>(creates);
  return result;
}

void report_leg(const char* name, const char* topology, const LegResult& r) {
  std::printf("%-24s %14.1f %18.1f %10zu\n", topology, r.throughput_vm_s,
              r.bid_msgs_per_create, r.failures);
  std::printf("BENCH_JSON {\"name\": \"%s\", \"throughput_vm_s\": %.2f, "
              "\"bid_msgs_per_create\": %.2f, \"plants\": %zu, "
              "\"failures\": %zu}\n",
              name, r.throughput_vm_s, r.bid_msgs_per_create, kPlants,
              r.failures);
}

LegResult run_flat() {
  net::MessageBus bus;
  net::ServiceRegistry registry;
  for (std::size_t i = 0; i < kPlants; ++i) {
    const std::string name = "plant" + std::to_string(i);
    register_stub_plant(&bus, name, i);
    registry.publish({"vmplant", name, {}});
  }
  core::ShopConfig sc;
  sc.name = "flatshop";
  core::VmShop shop(sc, &bus, &registry);
  (void)shop.attach_to_bus();
  return run_creates(&shop, &bus, kFlatCreates);
}

int run_sharded() {
  net::MessageBus bus;
  net::ServiceRegistry registry;
  std::vector<std::unique_ptr<federation::ShardBroker>> brokers;
  double clock_s = 0.0;
  for (std::size_t s = 0; s < kShards; ++s) {
    federation::ShardBrokerConfig bc;
    bc.name = "shard" + std::to_string(s);
    bc.bid_ttl_s = 1e9;  // refresh is explicit below, never on-path
    auto broker =
        std::make_unique<federation::ShardBroker>(bc, &bus, &registry);
    broker->set_clock([&clock_s] { return clock_s; });
    brokers.push_back(std::move(broker));
  }
  for (std::size_t i = 0; i < kPlants; ++i) {
    const std::string name = "plant" + std::to_string(i);
    register_stub_plant(&bus, name, i);
    brokers[i % kShards]->add_member(name);
  }
  for (auto& broker : brokers) (void)broker->attach_to_bus();

  core::ShopConfig sc;
  sc.name = "shardshop";
  core::VmShop shop(sc, &bus, &registry);
  (void)shop.attach_to_bus();

  // One warm-up create seeds every shard's cache for this DAG-class (the
  // misses run the synchronous refresh once); the measured creates then
  // ride the warm caches, which is the steady state the tier exists for.
  if (!shop.create(workload::workspace_request(32, 0, "bench.grid")).ok()) {
    std::fprintf(stderr, "federation bench: warm-up create failed\n");
    return 1;
  }

  report_leg("fed.sharded.p10000.s16", "sharded (16 brokers)",
             run_creates(&shop, &bus, kShardedCreates));

  // The off-path refresh sweep: how much traffic buys the cache warmth.
  const std::uint64_t calls_before = bus.calls_total();
  const auto start = std::chrono::steady_clock::now();
  std::size_t refreshed = 0;
  for (auto& broker : brokers) refreshed += broker->refresh_all();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const std::uint64_t msgs = bus.calls_total() - calls_before;
  std::printf("%-24s %14.1f %18zu %10zu\n", "refresh_all sweep",
              elapsed > 0.0 ? refreshed / elapsed : 0.0, msgs,
              std::size_t{0});
  std::printf("BENCH_JSON {\"name\": \"fed.refresh.p10000.s16\", "
              "\"refresh_msgs\": %llu, \"members\": %zu, "
              "\"classes_refreshed\": %zu, \"failures\": 0}\n",
              static_cast<unsigned long long>(msgs), kPlants, refreshed);
  return 0;
}

int run() {
  bench::print_header(
      "Federation routing at grid scale (DESIGN.md §16)",
      "shop bids are O(plants) per create; a ShardBroker tier makes the "
      "create path O(brokers) with off-path batch refresh");
  std::printf("%-24s %14s %18s %10s\n", "topology", "creates/s",
              "bid msgs/create", "failures");

  report_leg("fed.flat.p10000", "flat (paper §3.1)", run_flat());
  return run_sharded();
}

}  // namespace
}  // namespace vmp

int main() { return vmp::run(); }
