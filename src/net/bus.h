// In-process message bus with fault injection.
//
// Stands in for the prototype's Berkeley-socket transport (DESIGN.md §2).
// Endpoints register a request handler under an address; callers invoke
// `call` with a serialized Message and receive the serialized response.
// Requests and responses pass through the full wire encoding (serialize ->
// deserialize) on every hop, so format bugs cannot hide behind in-process
// shortcuts.
//
// The wire encoding is negotiated per bus (DESIGN.md §15): kXml (default)
// round-trips the paper's §4.1 XML text — the debug/interchange format,
// byte-identical to historical runs — while kBinary uses the versioned
// binary codec (net/codec.h) as the fast path: no DOM build, no
// escape/parse, and the server-side decode borrows the encoded frame
// zero-copy (util::ByteReader) instead of tokenizing text.  Both formats
// exercise a real encode -> decode per hop; neither is an in-process
// shortcut.
//
// Fault injection supports the failure-handling tests: an address can be
// marked down (connection refused) or given a drop probability (timeouts).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "net/message.h"
#include "obs/metrics.h"
#include "util/error.h"
#include "util/random.h"

namespace vmp::net {

/// A request handler: consumes a request Message, produces a response
/// (normal or fault).  Handlers run on the caller's thread.
using Handler = std::function<Message(const Message&)>;

/// Per-bus wire encoding.  kXml is the paper's §4.1 text format and the
/// default (paper runs stay byte-identical); kBinary is the compact
/// versioned codec of net/codec.h.
enum class WireFormat { kXml, kBinary };

const char* wire_format_name(WireFormat format) noexcept;
util::Result<WireFormat> parse_wire_format(const std::string& name);

struct BusConfig {
  WireFormat wire_format = WireFormat::kXml;
  std::uint64_t fault_seed = 1;
};

class MessageBus {
 public:
  explicit MessageBus(std::uint64_t fault_seed = 1);
  explicit MessageBus(BusConfig config);

  WireFormat wire_format() const { return config_.wire_format; }

  util::Status register_endpoint(const std::string& address, Handler handler);
  util::Status unregister_endpoint(const std::string& address);
  bool has_endpoint(const std::string& address) const;
  std::vector<std::string> endpoints() const;

  /// Round-trip a request: serialize, route, deserialize the response.
  /// Transport failures surface as Result errors (kUnavailable / kTimeout);
  /// application failures surface as fault Messages in the Result value.
  util::Result<Message> call(const Message& request_msg);

  // -- Fault injection ------------------------------------------------------
  void set_down(const std::string& address, bool down);
  /// Probability in [0,1] that a call to this address times out.
  void set_drop_rate(const std::string& address, double p);

  // -- Statistics -----------------------------------------------------------
  std::uint64_t calls_total() const;
  std::uint64_t bytes_total() const;

 private:
  struct Endpoint {
    Handler handler;
    bool down = false;
    double drop_rate = 0.0;
  };

  util::Result<Message> call_impl(const Message& request_msg);
  /// One wire leg: encode per config_.wire_format.
  std::string encode_wire(const Message& message) const;
  util::Result<Message> decode_wire(const std::string& wire) const;

  BusConfig config_;
  mutable std::mutex mutex_;
  std::map<std::string, Endpoint> endpoints_;
  util::SplitMix64 fault_rng_;
  std::uint64_t calls_ = 0;
  std::uint64_t bytes_ = 0;

  // Metrics, resolved once (stable pointers into the process registry).
  obs::Counter* obs_calls_;
  obs::Counter* obs_errors_;
  obs::Counter* obs_bytes_;
  obs::Gauge* obs_inflight_;
  obs::Timer* obs_latency_;
};

/// Helper for the common request/response pattern: returns the response
/// Message, converting transport errors AND fault responses into Errors.
util::Result<Message> call_expecting_success(MessageBus* bus,
                                             const Message& request_msg);

}  // namespace vmp::net
