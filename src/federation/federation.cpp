#include "federation/federation.h"

#include <algorithm>
#include <chrono>

#include "classad/classad.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/strings.h"
#include "xml/xml.h"

namespace vmp::federation {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

namespace {
const util::Logger kLog("federation");
}  // namespace

std::string dag_class_key(const core::CreateRequest& request) {
  // Hardware shape + backend + client domain: what the §3.4 cost models
  // actually price.  Per-user DAG suffixes (user accounts, IPs) ride on
  // the same aggregate bid.
  return request.backend + "|" + request.hardware.os + "|" +
         std::to_string(request.hardware.memory_bytes) + "|" +
         std::to_string(request.hardware.min_disk_bytes) + "|" +
         request.domain;
}

ShardBroker::ShardBroker(ShardBrokerConfig config, net::MessageBus* bus,
                         net::ServiceRegistry* registry)
    : config_(std::move(config)),
      bus_(bus),
      registry_(registry),
      epoch_(std::chrono::steady_clock::now()) {
  obs::MetricsRegistry& r = obs::MetricsRegistry::instance();
  bids_cached_ = r.counter("broker.bids.cached.count");
  bids_refreshed_ = r.counter("broker.bids.refreshed.count");
  refreshes_ = r.counter("broker.refresh.count");
  forwarded_ = r.counter("broker.creations_forwarded.count");
  member_failovers_ = r.counter("broker.member_failover.count");
  refresh_seconds_ = r.timer("broker.refresh.seconds");
  scoped_bids_cached_ =
      r.counter(config_.name + ".broker.bids.cached.count");
  scoped_bids_refreshed_ =
      r.counter(config_.name + ".broker.bids.refreshed.count");
  scoped_forwarded_ =
      r.counter(config_.name + ".broker.creations_forwarded.count");
  scoped_refresh_seconds_ = r.timer(config_.name + ".broker.refresh.seconds");
  scoped_cache_size_ = r.gauge(config_.name + ".broker.bid_cache.size.gauge");
}

ShardBroker::~ShardBroker() { detach_from_bus(); }

void ShardBroker::add_member(const std::string& address) {
  std::lock_guard<std::mutex> lock(mutex_);
  members_.push_back(address);
}

std::vector<std::string> ShardBroker::members() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return members_;
}

Status ShardBroker::attach_to_bus() {
  VMP_RETURN_IF_ERROR(bus_->register_endpoint(
      bus_address(),
      [this](const net::Message& m) { return handle_message(m); }));
  attached_ = true;
  if (registry_ != nullptr) {
    net::ServiceRecord record;
    record.type = "vmplant";  // shops bid against brokers transparently
    record.address = bus_address();
    record.properties["broker"] = "true";
    record.properties["members"] = std::to_string(members().size());
    registry_->publish(record);
  }
  return Status();
}

void ShardBroker::detach_from_bus() {
  if (attached_) {
    (void)bus_->unregister_endpoint(bus_address());
    if (registry_ != nullptr) (void)registry_->withdraw(bus_address());
    attached_ = false;
  }
}

void ShardBroker::set_clock(std::function<double()> clock) {
  std::lock_guard<std::mutex> lock(mutex_);
  clock_ = std::move(clock);
}

void ShardBroker::set_headroom_provider(
    std::function<std::int64_t()> provider) {
  std::lock_guard<std::mutex> lock(mutex_);
  headroom_provider_ = std::move(provider);
}

std::int64_t ShardBroker::last_headroom_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_headroom_;
}

double ShardBroker::now() const {
  std::function<double()> clock;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    clock = clock_;
  }
  if (clock) return clock();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

double ShardBroker::headroom_multiplier(std::int64_t* headroom_out) const {
  std::function<std::int64_t()> provider;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    provider = headroom_provider_;
  }
  if (!provider || config_.headroom_weight <= 0.0 ||
      config_.subtree_budget_bytes <= 0) {
    return 1.0;
  }
  const std::int64_t headroom = provider();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    last_headroom_ = headroom;
  }
  if (headroom_out != nullptr) *headroom_out = headroom;
  const double fraction =
      std::clamp(static_cast<double>(headroom) /
                     static_cast<double>(config_.subtree_budget_bytes),
                 0.0, 1.0);
  return 1.0 + config_.headroom_weight * (1.0 - fraction);
}

std::uint64_t ShardBroker::creations_forwarded() const {
  return scoped_forwarded_->value();
}
std::uint64_t ShardBroker::bids_cached_served() const {
  return scoped_bids_cached_->value();
}
std::uint64_t ShardBroker::bids_refreshed() const {
  return scoped_bids_refreshed_->value();
}
std::size_t ShardBroker::bid_cache_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

std::optional<CachedBid> ShardBroker::cached(
    const std::string& class_key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = cache_.find(class_key);
  if (it == cache_.end()) return std::nullopt;
  return it->second;
}

std::map<std::string, std::vector<std::pair<double, std::string>>>
ShardBroker::collect_member_bids(
    const std::vector<std::pair<std::string, std::string>>& batch) const {
  std::vector<std::string> member_list;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    member_list = members_;
  }
  std::map<std::string, std::vector<std::pair<double, std::string>>> bids;
  for (const std::string& member : member_list) {
    net::Message m = net::Message::request("vmplant.estimate_batch",
                                           config_.name, member, "refresh");
    for (const auto& [key, request_xml] : batch) {
      auto parsed = xml::parse(request_xml);
      if (!parsed.ok()) continue;
      xml::Element& cls = m.body().add_child("class");
      cls.set_attr("key", key);
      cls.adopt_child(std::move(parsed.value()));
    }
    auto response = net::call_expecting_success(bus_, m);
    if (!response.ok()) {
      kLog.debug() << config_.name << ": member " << member
                   << " skipped this refresh: "
                   << response.error().to_string();
      continue;  // dead or declining member: its bids are simply absent
    }
    const xml::Element* bids_elem = response.value().body().child("bids");
    if (bids_elem == nullptr) continue;
    for (const xml::Element* bid : bids_elem->children_named("bid")) {
      if (!bid->has_attr("class")) continue;
      bids[bid->attr("class")].emplace_back(bid->attr_double("cost", 0.0),
                                            member);
    }
  }
  for (auto& [key, member_bids] : bids) {
    std::stable_sort(member_bids.begin(), member_bids.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
  }
  return bids;
}

std::size_t ShardBroker::refresh_all() {
  obs::ScopedSpan span("broker.refresh", "broker", config_.name);
  const double start_s = obs::Tracer::instance().now();
  std::vector<std::pair<std::string, std::string>> batch;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [key, entry] : cache_) {
      batch.emplace_back(key, entry.request_xml);
    }
  }
  if (batch.empty()) return 0;

  const auto bids = collect_member_bids(batch);
  const double t = now();
  std::size_t refreshed = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [key, entry] : cache_) {
      auto it = bids.find(key);
      if (it == bids.end()) continue;  // nobody priced it: entry stays stale
      entry.member_bids = it->second;
      entry.refreshed_at = t;
      ++refreshed;
    }
    scoped_cache_size_->set(static_cast<std::int64_t>(cache_.size()));
  }
  bids_refreshed_->add(refreshed);
  scoped_bids_refreshed_->add(refreshed);
  refreshes_->add();
  refresh_seconds_->record(obs::Tracer::instance().now() - start_s);
  scoped_refresh_seconds_->record(obs::Tracer::instance().now() - start_s);
  return refreshed;
}

Result<ShardBroker::Selection> ShardBroker::select(
    const std::string& class_key, const xml::Element& request_body) {
  bool fresh = false;
  std::string request_xml;
  std::vector<std::pair<double, std::string>> member_bids;
  const double t = now();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(class_key);
    if (it != cache_.end() && it->second.refreshed_at >= 0.0 &&
        t - it->second.refreshed_at <= config_.bid_ttl_s &&
        !it->second.member_bids.empty()) {
      fresh = true;
      ++it->second.served;
      member_bids = it->second.member_bids;
    } else {
      const xml::Element* req_elem = request_body.child("create-request");
      if (req_elem == nullptr) {
        return Result<Selection>(
            Error(ErrorCode::kParseError, "missing <create-request>"));
      }
      request_xml =
          it != cache_.end() ? it->second.request_xml : req_elem->to_string();
    }
  }

  if (fresh) {
    bids_cached_->add();
    scoped_bids_cached_->add();
  } else {
    // Miss / stale: synchronous single-class refresh, one batch message
    // per member.  This is the slow path the TTL keeps rare.
    auto bids = collect_member_bids({{class_key, request_xml}});
    auto it = bids.find(class_key);
    if (it == bids.end() || it->second.empty()) {
      return Result<Selection>(Error(
          ErrorCode::kNoBids,
          config_.name + ": no member priced class " + class_key));
    }
    member_bids = it->second;
    const double refreshed_t = now();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      CachedBid& entry = cache_[class_key];
      entry.member_bids = member_bids;
      entry.request_xml = request_xml;
      entry.refreshed_at = refreshed_t;
      scoped_cache_size_->set(static_cast<std::int64_t>(cache_.size()));
    }
    bids_refreshed_->add();
    scoped_bids_refreshed_->add();
  }

  Selection selection;
  selection.member_bids = std::move(member_bids);
  const double multiplier = headroom_multiplier(&selection.headroom);
  selection.effective_cost =
      (selection.member_bids.front().first + config_.bid_markup) * multiplier;
  return selection;
}

net::Message ShardBroker::handle_message(const net::Message& request_msg) {
  const std::string& service = request_msg.service();
  if (service == "vmplant.estimate") return handle_estimate(request_msg);
  if (service == "vmplant.estimate_batch") return handle_batch(request_msg);
  if (service == "vmplant.create") return handle_create(request_msg);
  if (service == "vmplant.query" || service == "vmplant.collect") {
    return handle_routed(request_msg);
  }
  return net::Message::fault_to(
      request_msg,
      Error(ErrorCode::kInvalidArgument, "unknown service: " + service));
}

net::Message ShardBroker::handle_estimate(const net::Message& request_msg) {
  const xml::Element* req_elem = request_msg.body().child("create-request");
  if (req_elem == nullptr) {
    return net::Message::fault_to(
        request_msg, Error(ErrorCode::kParseError, "missing <create-request>"));
  }
  auto request = core::CreateRequest::from_xml(*req_elem);
  if (!request.ok()) {
    return net::Message::fault_to(request_msg, request.error());
  }
  auto selection = select(dag_class_key(request.value()), request_msg.body());
  if (!selection.ok()) {
    return net::Message::fault_to(request_msg, selection.error());
  }
  net::Message reply = net::Message::response_to(request_msg);
  xml::Element& bid = reply.body().add_child("bid");
  bid.set_attr("plant", config_.name);
  bid.set_attr("cost", util::format_double(selection.value().effective_cost));
  bid.set_attr("via", selection.value().member_bids.front().second);
  bid.set_attr("headroom",
               std::to_string(selection.value().headroom));
  return reply;
}

net::Message ShardBroker::handle_batch(const net::Message& request_msg) {
  // A parent broker refreshing its subtree: answer every requested class
  // from this shard's cache (stale classes take the synchronous
  // single-class path), one response message for the whole batch.
  net::Message reply = net::Message::response_to(request_msg);
  xml::Element& bids = reply.body().add_child("bids");
  for (const xml::Element* cls : request_msg.body().children_named("class")) {
    if (!cls->has_attr("key")) continue;
    auto selection = select(cls->attr("key"), *cls);
    if (!selection.ok()) continue;  // nobody in this subtree priced it
    xml::Element& bid = bids.add_child("bid");
    bid.set_attr("class", cls->attr("key"));
    bid.set_attr("plant", config_.name);
    bid.set_attr("cost",
                 util::format_double(selection.value().effective_cost));
  }
  return reply;
}

net::Message ShardBroker::handle_create(const net::Message& request_msg) {
  const xml::Element* req_elem = request_msg.body().child("create-request");
  if (req_elem == nullptr) {
    return net::Message::fault_to(
        request_msg, Error(ErrorCode::kParseError, "missing <create-request>"));
  }
  auto request = core::CreateRequest::from_xml(*req_elem);
  if (!request.ok()) {
    return net::Message::fault_to(request_msg, request.error());
  }
  const std::string class_key = dag_class_key(request.value());
  auto selection = select(class_key, request_msg.body());
  if (!selection.ok()) {
    return net::Message::fault_to(request_msg, selection.error());
  }

  // Try members cheapest-first.  A member that faults (or vanished since
  // the cache was refreshed — the stale-cache misroute) is skipped and
  // its cache entry invalidated; when the whole shard is out, the fault
  // reaches the shop, whose next-best-bid failover covers the surviving
  // subtrees.
  std::string last_failure = "no member attempted";
  for (std::size_t i = 0; i < selection.value().member_bids.size(); ++i) {
    const std::string& member = selection.value().member_bids[i].second;
    net::Message forward =
        net::Message::request("vmplant.create", config_.name, member,
                              request_msg.correlation());
    for (const auto& child : request_msg.body().children()) {
      forward.body().adopt_child(child->clone());
    }
    auto response = net::call_expecting_success(bus_, forward);
    if (!response.ok()) {
      last_failure = member + ": " + response.error().to_string();
      kLog.warn() << config_.name << ": member create failed (" << last_failure
                  << "); trying next member";
      member_failovers_->add();
      // The cached aggregate pointed at a member that cannot deliver:
      // drop the entry so the next estimate re-prices the class.
      std::lock_guard<std::mutex> lock(mutex_);
      cache_.erase(class_key);
      scoped_cache_size_->set(static_cast<std::int64_t>(cache_.size()));
      continue;
    }

    auto ad = classad::ClassAd::from_xml(response.value().body());
    if (ad.ok()) {
      const auto vm_id = ad.value().get_string(core::attrs::kVmId);
      if (vm_id.has_value()) {
        std::lock_guard<std::mutex> lock(mutex_);
        vm_to_member_[*vm_id] = member;
      }
    }
    forwarded_->add();
    scoped_forwarded_->add();
    net::Message reply = net::Message::response_to(request_msg);
    for (const auto& child : response.value().body().children()) {
      reply.body().adopt_child(child->clone());
    }
    return reply;
  }
  return net::Message::fault_to(
      request_msg,
      Error(ErrorCode::kUnavailable,
            config_.name + ": every member failed; last: " + last_failure));
}

net::Message ShardBroker::handle_routed(const net::Message& request_msg) {
  const xml::Element* vm_elem = request_msg.body().child("vm");
  if (vm_elem == nullptr || !vm_elem->has_attr("id")) {
    return net::Message::fault_to(
        request_msg, Error(ErrorCode::kParseError, "missing <vm id=...>"));
  }
  const std::string vm_id = vm_elem->attr("id");

  // The fleet aggregator's metrics pull: answer with this broker's own
  // export (the scoped "<name>.broker.*" metrics ride in the process
  // snapshot) plus subtree facts the per-shard rollup wants.
  if (request_msg.service() == "vmplant.query" &&
      vm_id == core::kObsMetricsId) {
    classad::ClassAd ad = obs::metrics_ad(
        obs::MetricsRegistry::instance().snapshot(), util::FaultReport{});
    ad.set_string("BrokerName", config_.name);
    ad.set_integer("BrokerMembers",
                   static_cast<std::int64_t>(members().size()));
    ad.set_integer("SubtreeHeadroomBytes", last_headroom_bytes());
    net::Message reply = net::Message::response_to(request_msg);
    ad.to_xml(&reply.body());
    return reply;
  }

  std::string member;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = vm_to_member_.find(vm_id);
    if (it != vm_to_member_.end()) member = it->second;
  }
  if (member.empty()) {
    return net::Message::fault_to(
        request_msg, Error(ErrorCode::kNotFound,
                           config_.name + ": unknown VM " + vm_id));
  }
  net::Message forward = net::Message::request(
      request_msg.service(), config_.name, member, request_msg.correlation());
  for (const auto& child : request_msg.body().children()) {
    forward.body().adopt_child(child->clone());
  }
  auto response = bus_->call(forward);
  if (!response.ok()) {
    return net::Message::fault_to(request_msg, response.error());
  }
  if (request_msg.service() == "vmplant.collect" &&
      !response.value().is_fault()) {
    std::lock_guard<std::mutex> lock(mutex_);
    vm_to_member_.erase(vm_id);
  }
  if (response.value().is_fault()) {
    return net::Message::fault_to(request_msg,
                                  response.value().fault_error());
  }
  net::Message reply = net::Message::response_to(request_msg);
  for (const auto& child : response.value().body().children()) {
    reply.body().adopt_child(child->clone());
  }
  return reply;
}

std::optional<std::int64_t> headroom_from_rollup(
    const core::VmInformationSystem& info) {
  auto ad = info.query(core::kObsFleetMetricsId);
  if (!ad.ok()) return std::nullopt;
  const classad::Value v =
      ad.value().evaluate("fleet_lifecycle_headroom_bytes_gauge");
  if (v.type() != classad::ValueType::kInteger) return std::nullopt;
  return v.as_integer();
}

}  // namespace vmp::federation
