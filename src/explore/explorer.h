// Bounded state-space exploration of DES schedules and fault outcomes.
//
// The lifecycle protocols (publish / evict / lease / zombie, DESIGN.md §11)
// interleave on a shared warehouse; PR 5's three review bugs were all
// interleaving bugs a reviewer happened to catch.  This module replaces
// reviewer luck with enumeration, in the style of SimGrid's DFSExplorer:
//
//   * A Scenario builds a small, fresh configuration per run and schedules
//     its operations on a sim::Engine with equal timestamps, so every
//     ordering of co-enabled operations is reachable.
//   * The Explorer drives the engine through ALL schedules of the scenario
//     by depth-first re-execution: each equal-time tie is a decision point
//     (which event fires next), and in exploration mode every eligible
//     fault::check() site is a binary decision point (fire or not).
//   * After each terminal state the scenario's invariants run; a violation
//     is reported together with the Trace — the full decision log — that
//     reaches it.  replay() re-executes a Trace deterministically and
//     checks the terminal digest, so counterexamples are reproducible
//     across processes and machines.
//   * Sleep-set pruning (Godefroid): when the scenario declares two event
//     tags independent — their operations commute, reaching the SAME state
//     in either order — the explorer skips the redundant orderings.  With
//     the default (nothing independent) every distinct schedule is
//     enumerated.
//
// Exploration is stateless-model-checking style: no state snapshotting,
// each schedule re-executes the scenario from scratch following a recorded
// decision prefix.  That keeps scenarios free to use real components (the
// warehouse writes a real ArtifactStore tree) at the cost of re-running
// setup per schedule — which is why scenarios are SMALL by design.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "explore/trace.h"
#include "fault/fault.h"
#include "obs/journal.h"
#include "sim/engine.h"
#include "util/error.h"

namespace vmp::explore {

/// A property of the terminal state.  check() returns OK when it holds.
struct Invariant {
  std::string name;
  std::function<util::Status()> check;
};

/// One explorable configuration.  The factory constructs a FRESH instance
/// per run; all methods are called on that instance in order: setup(),
/// engine drained, then digest() and invariants().
class Scenario {
 public:
  virtual ~Scenario() = default;

  /// Registry name + config spec, recorded into traces so replay can
  /// reconstruct the scenario (lifecycle_scenario.h resolves them).
  virtual std::string name() const = 0;
  virtual std::string config_spec() const { return std::string(); }

  /// Build fresh state and schedule the run's operations on `engine`.
  /// Equal-time events become explorer decision points; tag events with
  /// their logical actor for sleep-set pruning.
  virtual util::Status setup(sim::Engine* engine) = 0;

  /// Fault plan armed (in exploration mode) for the run; empty = no fault
  /// decision points.
  virtual fault::FaultPlan fault_plan() const { return {}; }

  /// Terminal-state digest — deterministic across processes and machines
  /// (no pointers, absolute paths, wall-clock times or RNG draws).
  virtual std::string digest() = 0;

  /// Invariants checked at the terminal state, in order.  May mutate state
  /// (e.g. run the orphan reaper); digest() is always taken first.
  virtual std::vector<Invariant> invariants() = 0;

  /// Independence for sleep-set pruning: return true only when operations
  /// carrying these tags COMMUTE (same state in either order).  Default:
  /// nothing commutes — full enumeration.
  virtual bool independent(const std::string& tag_a,
                           const std::string& tag_b) const {
    (void)tag_a;
    (void)tag_b;
    return false;
  }
};

using ScenarioFactory = std::function<std::unique_ptr<Scenario>()>;

struct ExploreOptions {
  /// Hard cap on schedules executed (the CI budget knob).
  std::uint64_t max_schedules = 50000;
  /// Decision-depth budget per run; deeper decision points take the
  /// default choice without branching (run still completes + checks).
  std::size_t max_decisions_per_run = 4096;
  /// Engine-step budget per run; a run cut off here is counted truncated
  /// and its invariants are NOT checked (mid-flight state is not terminal).
  std::uint64_t max_steps_per_run = 100000;
  /// Sleep-set pruning of commuting orders (scenario-declared independence).
  bool sleep_sets = true;
  /// Stop at the first invariant violation (explore everything otherwise).
  bool stop_on_violation = true;
  /// When >= 0, capture the Trace of this 0-based schedule into
  /// ExploreReport::dumped_trace even if no invariant fails (fixture
  /// generation: `vmp_explore --dump-schedule`).
  std::int64_t dump_schedule = -1;
};

struct ExploreViolation {
  std::string invariant;
  std::string message;
  Trace trace;
  /// Flight-recorder contents at the violating terminal state: the
  /// lifecycle/fault event timeline of exactly this run (the explorer
  /// clears the ring before each run and drives the journal clock from the
  /// engine).  vmp_explore dumps this as JSONL next to the trace XML.
  std::vector<obs::JournalRecord> flight;
};

struct ExploreReport {
  std::uint64_t schedules = 0;        // runs executed (incl. pruned-aborted)
  std::uint64_t terminal_states = 0;  // runs that reached a checked terminal
  std::uint64_t decision_points = 0;  // decision nodes created
  std::uint64_t branch_points = 0;    // nodes with more than one candidate
  std::uint64_t pruned_choices = 0;   // alternatives skipped by sleep sets
  std::uint64_t sleep_aborted_runs = 0;  // runs cut where all choices slept
  std::uint64_t truncated_runs = 0;      // runs cut by the step budget
  std::uint64_t depth_clipped_runs = 0;  // runs past the decision budget
  bool schedule_budget_hit = false;      // max_schedules reached first
  std::vector<std::string> distinct_digests;  // sorted unique digests
  std::vector<ExploreViolation> violations;
  std::optional<Trace> dumped_trace;

  bool complete() const { return !schedule_budget_hit; }
};

/// Exhaustively (within budgets) explore a scenario's schedule space.
/// Errors only on harness failure — scenario setup failing, or the scenario
/// behaving nondeterministically under a replayed prefix; invariant
/// violations are reported in the ExploreReport, not as errors.
util::Result<ExploreReport> explore(const ScenarioFactory& factory,
                                    const ExploreOptions& options);

struct ReplayResult {
  std::string digest;          // terminal digest this replay produced
  bool digest_matches = false; // equals trace.digest
  std::vector<std::string> violations;  // "invariant: message" per failure
};

/// Re-execute a recorded trace against a fresh scenario instance.  Strict:
/// any divergence from the recorded decisions (different co-enabled sets,
/// different fault sites, log exhausted early/late) is an error.
util::Result<ReplayResult> replay(const ScenarioFactory& factory,
                                  const Trace& trace);

}  // namespace vmp::explore
