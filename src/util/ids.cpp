#include "util/ids.h"

#include <cstdio>

namespace vmp::util {

std::string IdGenerator::next() {
  const std::uint64_t n = counter_.fetch_add(1) + 1;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%0*llu", width_,
                static_cast<unsigned long long>(n));
  return prefix_ + "-" + buf;
}

}  // namespace vmp::util
