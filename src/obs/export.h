// Export metrics snapshots and trace summaries as classads.
//
// Paper-faithful monitoring: Figure 2's VM Information System "maintains
// state about currently active machines (including dynamic information
// gathered by a VM monitor)" — classads are the monitoring store.  This
// module renders the numeric plane (obs::MetricsRegistry) and the tracing
// plane (obs::Tracer) into classads; core::VmMonitor publishes them into
// the per-plant VmInformationSystem on every sweep under reserved
// "obs://..." ids (see core/info_system.h).
//
// Attribute naming: metric names ("component.verb.unit") are folded to
// classad-safe identifiers by replacing [.-] with '_', e.g.
// "bus.call.count" -> bus_call_count.  Timers export _count/_mean/_min/
// _max/_sum variants plus _p50/_p90/_p99/_p999 quantiles and an encoded
// _hist attribute (obs::HistogramSnapshot) so a remote aggregator can
// merge tails across plants.  Fired fault injections (util::FaultReport)
// merge in as fault_<point>_count so one snapshot answers "what happened".
//
// metrics_snapshot_from_ad is the inverse: the fleet aggregator pulls a
// plant's obs://metrics ad over the bus and reconstructs a mergeable
// MetricsSnapshot from it (names stay in their folded spelling; the
// snapshot accessors fold on lookup).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "classad/classad.h"
#include "obs/metrics.h"
#include "obs/tail.h"
#include "obs/trace.h"
#include "util/stats.h"

namespace vmp::obs {

/// Reserved attribute names in exported ads.
namespace export_attrs {
inline constexpr const char* kKind = "ObsKind";  // "metrics" | "trace"
inline constexpr const char* kTraceId = "TraceId";
inline constexpr const char* kRootSpan = "RootSpan";
inline constexpr const char* kVmId = "VMID";
inline constexpr const char* kDurationSeconds = "DurationSeconds";
inline constexpr const char* kSpanCount = "SpanCount";
inline constexpr const char* kErrorCount = "ErrorCount";
inline constexpr const char* kRetryCount = "RetryCount";
inline constexpr const char* kWarehouseHitRatio = "WarehouseHitRatio";
inline constexpr const char* kCause = "Cause";  // tail ads: "slow" | "error"
inline constexpr const char* kThresholdSeconds = "ThresholdSeconds";
inline constexpr const char* kEventCount = "EventCount";
}  // namespace export_attrs

/// Fold a metric name into a classad-safe attribute name.
std::string attr_name(const std::string& metric_name);

/// One trace rolled up for the information system.
struct TraceSummary {
  std::string trace_id;
  std::string root_name;     // name of the root span ("" when still open)
  std::string vm_id;         // last non-empty Span::vm_id in the trace
  double duration_s = 0.0;   // root duration; span extent when no root
  std::size_t span_count = 0;
  std::size_t error_count = 0;   // spans with !ok()
  std::size_t retry_count = 0;   // spans with status "retry"
  /// Summed duration per span name (the per-phase breakdown).
  std::map<std::string, double> phase_seconds;
};

/// Roll up finished spans by trace id (first-completion order).
std::vector<TraceSummary> summarize_traces(const std::vector<Span>& spans);

/// Render a metrics snapshot (+ fired fault injections) as one classad.
/// Computes derived attributes: WarehouseHitRatio from
/// ppp.plan_hit.count / ppp.plan_miss.count when either is non-zero.
classad::ClassAd metrics_ad(const MetricsSnapshot& snapshot,
                            const util::FaultReport& faults);

/// Reconstruct a MetricsSnapshot from a metrics ad.  Classification relies
/// on the naming scheme: integer attrs ending in "_gauge" are gauges,
/// other integers are counters, attrs with a "_seconds_<component>" suffix
/// reassemble timers (including the encoded _hist), remaining reals land
/// in `derived` (WarehouseHitRatio doubles as the derived plan-hit ratio).
/// Names keep their folded spelling.
MetricsSnapshot metrics_snapshot_from_ad(const classad::ClassAd& ad);

/// Render one trace summary as a classad (Phase_<name> attributes carry
/// the per-phase seconds).
classad::ClassAd trace_summary_ad(const TraceSummary& summary);

/// Render one retained tail exemplar as a classad: cause, duration vs the
/// quantile threshold at decision time, and CriticalSelf_<stage> per-stage
/// self-seconds (the information-system view of a slow request; the full
/// span/journal evidence stays in TailSampler and its jsonl dump).
classad::ClassAd tail_exemplar_ad(const TailExemplar& exemplar);

/// Snapshot the process-wide registries (metrics + tracer + fault report +
/// tail sampler) into export-ready ads: the metrics ad, one ad per trace
/// that produced a VM (keyed by vm id), and one ad per retained tail
/// exemplar (keyed by trace id).
struct ExportBundle {
  classad::ClassAd metrics;
  std::vector<std::pair<std::string, classad::ClassAd>> vm_traces;
  std::vector<std::pair<std::string, classad::ClassAd>> tail_exemplars;
};
ExportBundle export_bundle();

}  // namespace vmp::obs
