#include "obs/journal.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstring>

#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace vmp::obs {

namespace {
const util::Logger kLog("journal");

/// Records a durable sink failed to persist (dead sink or short write),
/// fleet-visible: FleetAggregator lifts it into the per-plant health ad and
/// the obs://fleet/metrics rollup, so a dying journal is not just a local
/// accessor nobody polls.
Counter* dropped_counter() {
  static Counter* c =
      MetricsRegistry::instance().counter("lifecycle.journal.dropped.count");
  return c;
}
}  // namespace

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

namespace {

constexpr char kSegmentPrefix[] = "seg-";
constexpr char kSegmentSuffix[] = ".vmj";
/// A record larger than this is treated as corruption, not data: the codec
/// never produces one (ids are capped far below), so an oversized length
/// prefix means the tail bytes are garbage.
constexpr std::uint32_t kMaxRecordBytes = 64u << 10;

std::uint32_t fnv1a32(const char* data, std::size_t size) {
  std::uint32_t hash = 2166136261u;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 16777619u;
  }
  return hash;
}

void put_u16(std::string* out, std::uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_f64(std::string* out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

std::uint16_t get_u16(const char* p) {
  return static_cast<std::uint16_t>(static_cast<unsigned char>(p[0]) |
                                    (static_cast<unsigned char>(p[1]) << 8));
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

double get_f64(const char* p) { return std::bit_cast<double>(get_u64(p)); }

std::string segment_name(std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%06zu%s", kSegmentPrefix, index,
                kSegmentSuffix);
  return buf;
}

/// Segment files under `dir`, name order (names zero-pad, so lexicographic
/// order is write order).  Missing directory -> empty list.
std::vector<std::filesystem::path> list_segments(
    const std::filesystem::path& dir) {
  std::vector<std::filesystem::path> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(kSegmentPrefix, 0) == 0 &&
        name.size() > sizeof(kSegmentSuffix) &&
        name.compare(name.size() + 1 - sizeof(kSegmentSuffix),
                     sizeof(kSegmentSuffix) - 1, kSegmentSuffix) == 0) {
      out.push_back(entry.path());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string json_escape(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* journal_event_name(JournalEvent kind) noexcept {
  switch (kind) {
    case JournalEvent::kPublishReserve: return "publish_reserve";
    case JournalEvent::kPublishCommit: return "publish_commit";
    case JournalEvent::kPublishReject: return "publish_reject";
    case JournalEvent::kEvictBegin: return "evict_begin";
    case JournalEvent::kEvictCommit: return "evict_commit";
    case JournalEvent::kEvictRollback: return "evict_rollback";
    case JournalEvent::kLeaseAcquire: return "lease_acquire";
    case JournalEvent::kLeaseRelease: return "lease_release";
    case JournalEvent::kZombify: return "zombify";
    case JournalEvent::kReap: return "reap";
    case JournalEvent::kOrphanReap: return "orphan_reap";
    case JournalEvent::kWarmStart: return "warm_start";
    case JournalEvent::kAdopt: return "adopt";
    case JournalEvent::kFaultFired: return "fault_fired";
  }
  return "unknown";
}

std::string JournalRecord::to_json() const {
  // %.6f of a large clock value can emit hundreds of characters, so the
  // head is sized from a dry run instead of a fixed guess — a truncated
  // head would be a silently malformed JSON line in a flight dump.
  constexpr char kFormat[] =
      "{\"seq\": %" PRIu64 ", \"kind\": \"%s\", \"t\": %.6f, "
      "\"wall\": %.6f, \"bytes\": %lld, \"aux\": %" PRIu64
      ", \"value\": %.9g, \"id\": \"";
  char buf[512];
  int n = std::snprintf(buf, sizeof(buf), kFormat, seq,
                        journal_event_name(kind), time_s, wall_s,
                        static_cast<long long>(bytes_delta), aux, value);
  if (n < 0) return "{}";
  std::string head;
  if (static_cast<std::size_t>(n) < sizeof(buf)) {
    head.assign(buf, static_cast<std::size_t>(n));
  } else {
    head.resize(static_cast<std::size_t>(n) + 1);
    std::snprintf(head.data(), head.size(), kFormat, seq,
                  journal_event_name(kind), time_s, wall_s,
                  static_cast<long long>(bytes_delta), aux, value);
    head.resize(static_cast<std::size_t>(n));
  }
  std::string out = head + json_escape(image_id) + "\"";
  if (!trace_id.empty()) {
    out += ", \"trace\": \"" + json_escape(trace_id) + "\"";
  }
  return out + "}";
}

void Journal::encode(const JournalRecord& record, std::string* out) {
  std::string payload;
  payload.reserve(51 + record.image_id.size());
  payload.push_back(static_cast<char>(record.kind));
  put_u64(&payload, record.seq);
  put_f64(&payload, record.time_s);
  put_f64(&payload, record.wall_s);
  put_u64(&payload, std::bit_cast<std::uint64_t>(record.bytes_delta));
  put_u64(&payload, record.aux);
  put_f64(&payload, record.value);
  const std::uint16_t id_len = static_cast<std::uint16_t>(
      std::min<std::size_t>(record.image_id.size(), 0xffff));
  put_u16(&payload, id_len);
  payload.append(record.image_id.data(), id_len);
  // The trace block is written only when there is a trace: a payload that
  // ends at the id is byte-identical to the pre-trace format, so journals
  // written by either side of this change replay on the other.
  if (!record.trace_id.empty()) {
    const std::uint16_t trace_len = static_cast<std::uint16_t>(
        std::min<std::size_t>(record.trace_id.size(), 0xffff));
    put_u16(&payload, trace_len);
    payload.append(record.trace_id.data(), trace_len);
  }

  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out->append(payload);
  put_u32(out, fnv1a32(payload.data(), payload.size()));
}

std::size_t Journal::decode(const char* data, std::size_t size,
                            JournalRecord* record) {
  if (size < 4) return 0;
  const std::uint32_t len = get_u32(data);
  // header(4) + payload + checksum(4); the fixed payload head is 51 bytes.
  if (len < 51 || len > kMaxRecordBytes || size < 8u + len) return 0;
  const char* payload = data + 4;
  if (get_u32(payload + len) != fnv1a32(payload, len)) return 0;
  const std::uint16_t id_len = get_u16(payload + 49);
  // Either the payload ends at the id (pre-trace format, trace_id empty) or
  // a [u16 trace_len | trace] block follows and must account for every
  // remaining byte — anything else is corruption.
  record->trace_id.clear();
  if (51u + id_len != len) {
    if (len < 53u + id_len) return 0;
    const std::uint16_t trace_len = get_u16(payload + 51 + id_len);
    if (53u + id_len + trace_len != len) return 0;
    record->trace_id.assign(payload + 53 + id_len, trace_len);
  }
  record->kind = static_cast<JournalEvent>(payload[0]);
  record->seq = get_u64(payload + 1);
  record->time_s = get_f64(payload + 9);
  record->wall_s = get_f64(payload + 17);
  record->bytes_delta = std::bit_cast<std::int64_t>(get_u64(payload + 25));
  record->aux = get_u64(payload + 33);
  record->value = get_f64(payload + 41);
  record->image_id.assign(payload + 51, id_len);
  return 8u + len;
}

Journal::Journal(std::size_t ring_capacity)
    : capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      epoch_(std::chrono::steady_clock::now()) {
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

Journal::~Journal() { close_durable(); }

Journal& Journal::instance() {
  static Journal* journal = [] {
    auto* j = new Journal();
    // Observability taps, not plan state: both survive install()/clear() so
    // a counterexample's flight dump always shows which injections fired.
    // The listener runs on the consulting thread, so the kFaultFired append
    // picks up that thread's trace context; the trace provider additionally
    // stamps the registry's own firing log (sequence_traces()).
    fault::FaultRegistry::instance().set_fire_listener(
        [j](const std::string& point, const std::string& detail) {
          j->append(JournalEvent::kFaultFired,
                    detail.empty() ? point : point + "@" + detail);
        });
    fault::FaultRegistry::instance().set_trace_provider(
        [] { return Tracer::current().trace_id; });
    return j;
  }();
  return *journal;
}

void Journal::set_clock(std::function<double()> clock) {
  std::lock_guard<std::mutex> lock(mutex_);
  clock_ = std::move(clock);
}

double Journal::now() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (clock_) return clock_();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void Journal::append(JournalEvent kind, std::string_view image_id,
                     std::int64_t bytes_delta, std::uint64_t aux,
                     double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  JournalRecord record;
  record.seq = next_seq_++;
  record.kind = kind;
  record.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - epoch_)
                      .count();
  record.time_s = clock_ ? clock_() : record.wall_s;
  record.bytes_delta = bytes_delta;
  record.aux = aux;
  record.value = value;
  record.image_id.assign(image_id);
  // Correlation stamp (DESIGN.md §14): the lifecycle transitions a traced
  // create causes (evictions, lease waits, rejects) run on the request's
  // own thread, so the thread-local trace context is exactly the causing
  // trace — no parameter plumbing through the lifecycle call sites.
  if (tracer_armed()) record.trace_id = Tracer::current().trace_id;
  ++appended_;
  if (segment_ != nullptr) {
    append_durable_locked(record);
  } else if (durable_dead_) {
    ++durable_dropped_;  // sink died mid-run; the ring alone has this one
    dropped_counter()->add();
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    ring_next_ = ring_.size() % capacity_;
  } else {
    ring_[ring_next_] = std::move(record);
    ring_next_ = (ring_next_ + 1) % capacity_;
  }
}

std::vector<JournalRecord> Journal::ring() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JournalRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(ring_next_ + i) % capacity_]);
    }
  }
  return out;
}

void Journal::clear_ring() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  ring_next_ = 0;
}

std::uint64_t Journal::appended() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return appended_;
}

std::string Journal::ring_jsonl() const {
  std::string out;
  for (const JournalRecord& record : ring()) {
    out += record.to_json();
    out += '\n';
  }
  return out;
}

bool Journal::dump_ring_jsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = ring_jsonl();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

Status Journal::open_durable(const std::filesystem::path& dir,
                             JournalDurableConfig config) {
  auto replayed = replay(dir);
  if (!replayed.ok()) return replayed.error();

  std::lock_guard<std::mutex> lock(mutex_);
  if (segment_ != nullptr) {
    return Status(ErrorCode::kFailedPrecondition,
                  "journal: durable sink already open at " + dir_.string());
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status(ErrorCode::kInternal,
                  "journal: cannot create " + dir.string() + ": " +
                      ec.message());
  }
  // Never append into a possibly-torn tail: always start a fresh segment
  // after the existing ones.  The torn record (if any) stays where it is —
  // replay skips it — and rotation keeps segment sizes bounded anyway.
  const std::size_t next_index = list_segments(dir).size() + 1;
  const std::filesystem::path path = dir / segment_name(next_index);
  std::FILE* f = std::fopen(path.string().c_str(), "ab");
  if (f == nullptr) {
    return Status(ErrorCode::kInternal,
                  "journal: cannot open segment " + path.string());
  }
  dir_ = dir;
  durable_config_ = config;
  segment_ = f;
  segment_index_ = next_index;
  segment_bytes_ = 0;
  segments_open_ = 1;
  durable_dropped_ = 0;
  durable_dead_ = false;
  recovered_ = std::move(replayed).value();
  next_seq_ = std::max(next_seq_, recovered_->last_seq + 1);
  return Status();
}

void Journal::close_durable() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (segment_ != nullptr) {
    std::fclose(segment_);
    segment_ = nullptr;
  }
  segments_open_ = 0;
  durable_dead_ = false;
  recovered_.reset();
}

bool Journal::durable() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return segment_ != nullptr;
}

void Journal::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (segment_ != nullptr) std::fflush(segment_);
}

std::size_t Journal::segments_open() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return segments_open_;
}

std::uint64_t Journal::durable_dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return durable_dropped_;
}

const std::optional<JournalReplay>& Journal::recovered() const {
  // recovered_ only changes under open/close; callers hold the journal
  // single-threaded during recovery (warm_start runs before serving).
  return recovered_;
}

void Journal::append_durable_locked(const JournalRecord& record) {
  std::string bytes;
  encode(record, &bytes);
  if (segment_bytes_ + bytes.size() > durable_config_.max_segment_bytes &&
      segment_bytes_ > 0) {
    rotate_locked();
  }
  if (segment_ == nullptr) {
    // Rotation failed and the sink is dead: the ring still has the record,
    // but the durable log does not — count it so the loss is visible.
    ++durable_dropped_;
    dropped_counter()->add();
    return;
  }
  if (std::fwrite(bytes.data(), 1, bytes.size(), segment_) == bytes.size()) {
    segment_bytes_ += bytes.size();
    if (durable_config_.flush_each_append) std::fflush(segment_);
  } else {
    ++durable_dropped_;
    dropped_counter()->add();
  }
}

void Journal::rotate_locked() {
  std::fflush(segment_);
  std::fclose(segment_);
  segment_ = nullptr;
  const std::filesystem::path path = dir_ / segment_name(segment_index_ + 1);
  std::FILE* f = std::fopen(path.string().c_str(), "ab");
  if (f == nullptr) {
    // The sink is dead until the next open_durable(): appends stay ring-only
    // and are counted in durable_dropped().
    segments_open_ = 0;
    durable_dead_ = true;
    kLog.warn() << "cannot open segment " << path.string()
                << "; durable sink dead, further appends are ring-only";
    return;
  }
  segment_ = f;
  ++segment_index_;
  segment_bytes_ = 0;
  ++segments_open_;
}

Result<JournalReplay> Journal::replay(const std::filesystem::path& dir) {
  JournalReplay out;
  std::error_code ec;
  if (!std::filesystem::exists(dir, ec)) return out;
  const std::vector<std::filesystem::path> segments = list_segments(dir);
  for (const std::filesystem::path& path : segments) {
    ++out.segments;
    std::FILE* f = std::fopen(path.string().c_str(), "rb");
    if (f == nullptr) {
      return Result<JournalReplay>(Error(
          ErrorCode::kInternal, "journal: cannot read " + path.string()));
    }
    std::string bytes;
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      bytes.append(buf, n);
    }
    std::fclose(f);

    std::size_t offset = 0;
    while (offset < bytes.size()) {
      JournalRecord record;
      const std::size_t consumed =
          decode(bytes.data() + offset, bytes.size() - offset, &record);
      if (consumed == 0) {
        // Torn or corrupt: this segment's crash tail.  A record boundary
        // cannot be re-synchronized past a bad length, but segment starts
        // are clean resync points — and open_durable() leaves a torn
        // segment in place and writes post-crash history into FRESH
        // segments, so later segments must still be read.
        out.torn_tail = true;
        break;
      }
      offset += consumed;
      out.last_seq = std::max(out.last_seq, record.seq);
      out.records.push_back(std::move(record));
    }
  }
  return out;
}

}  // namespace vmp::obs
