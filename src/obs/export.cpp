#include "obs/export.h"

#include "fault/fault.h"

namespace vmp::obs {

std::string attr_name(const std::string& metric_name) {
  std::string out = metric_name;
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}

std::vector<TraceSummary> summarize_traces(const std::vector<Span>& spans) {
  std::vector<TraceSummary> out;
  std::map<std::string, std::size_t> index;  // trace_id -> out position
  for (const Span& span : spans) {
    auto it = index.find(span.trace_id);
    if (it == index.end()) {
      it = index.emplace(span.trace_id, out.size()).first;
      out.push_back(TraceSummary{});
      out.back().trace_id = span.trace_id;
    }
    TraceSummary& summary = out[it->second];
    ++summary.span_count;
    if (!span.ok()) ++summary.error_count;
    if (span.status == "retry") ++summary.retry_count;
    if (!span.vm_id.empty()) summary.vm_id = span.vm_id;
    summary.phase_seconds[span.name] += span.duration_s();
    if (span.parent_id == 0) {
      summary.root_name = span.name;
      summary.duration_s = span.duration_s();
    }
  }
  // Traces whose root never closed: report the span extent instead.
  for (TraceSummary& summary : out) {
    if (!summary.root_name.empty()) continue;
    double lo = 0.0, hi = 0.0;
    bool first = true;
    for (const Span& span : spans) {
      if (span.trace_id != summary.trace_id) continue;
      if (first || span.start_s < lo) lo = span.start_s;
      if (first || span.end_s > hi) hi = span.end_s;
      first = false;
    }
    summary.duration_s = hi - lo;
  }
  return out;
}

classad::ClassAd metrics_ad(const MetricsSnapshot& snapshot,
                            const util::FaultReport& faults) {
  classad::ClassAd ad;
  ad.set_string(export_attrs::kKind, "metrics");
  for (const auto& [name, value] : snapshot.counters) {
    ad.set_integer(attr_name(name), static_cast<std::int64_t>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    ad.set_integer(attr_name(name), value);
  }
  for (const auto& [name, stats] : snapshot.timers) {
    const std::string base = attr_name(name);
    ad.set_integer(base + "_count", static_cast<std::int64_t>(stats.count));
    ad.set_real(base + "_mean", stats.mean_s);
    ad.set_real(base + "_min", stats.min_s);
    ad.set_real(base + "_max", stats.max_s);
    ad.set_real(base + "_sum", stats.sum_s);
  }
  for (const auto& [point, count] : faults.by_point()) {
    ad.set_integer("fault_" + attr_name(point) + "_count",
                   static_cast<std::int64_t>(count));
  }
  if (auto ratio =
          snapshot.ratio("ppp.plan_hit.count", "ppp.plan_miss.count")) {
    ad.set_real(export_attrs::kWarehouseHitRatio, *ratio);
  }
  return ad;
}

classad::ClassAd trace_summary_ad(const TraceSummary& summary) {
  classad::ClassAd ad;
  ad.set_string(export_attrs::kKind, "trace");
  ad.set_string(export_attrs::kTraceId, summary.trace_id);
  if (!summary.root_name.empty()) {
    ad.set_string(export_attrs::kRootSpan, summary.root_name);
  }
  if (!summary.vm_id.empty()) {
    ad.set_string(export_attrs::kVmId, summary.vm_id);
  }
  ad.set_real(export_attrs::kDurationSeconds, summary.duration_s);
  ad.set_integer(export_attrs::kSpanCount,
                 static_cast<std::int64_t>(summary.span_count));
  ad.set_integer(export_attrs::kErrorCount,
                 static_cast<std::int64_t>(summary.error_count));
  ad.set_integer(export_attrs::kRetryCount,
                 static_cast<std::int64_t>(summary.retry_count));
  for (const auto& [phase, seconds] : summary.phase_seconds) {
    ad.set_real("Phase_" + attr_name(phase), seconds);
  }
  return ad;
}

ExportBundle export_bundle() {
  ExportBundle bundle;
  bundle.metrics = metrics_ad(MetricsRegistry::instance().snapshot(),
                              fault::FaultRegistry::instance().report());
  for (const TraceSummary& summary :
       summarize_traces(Tracer::instance().spans())) {
    if (summary.vm_id.empty()) continue;
    bundle.vm_traces.emplace_back(summary.vm_id, trace_summary_ad(summary));
  }
  return bundle;
}

}  // namespace vmp::obs
