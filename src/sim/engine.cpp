#include "sim/engine.h"

#include <limits>

namespace vmp::sim {

EventHandle Engine::schedule(SimTime delay, std::function<void()> fn) {
  if (delay < 0.0) delay = 0.0;
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Engine::schedule_at(SimTime when, std::function<void()> fn) {
  if (when < now_) when = now_;
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Event{when, next_seq_++, std::move(fn), cancelled});
  return EventHandle(std::move(cancelled));
}

bool Engine::step() {
  while (!queue_.empty()) {
    // priority_queue::top is const; the event is copied out then popped.
    Event ev = queue_.top();
    queue_.pop();
    if (*ev.cancelled) continue;  // skip cancelled entries lazily
    now_ = ev.when;
    *ev.cancelled = true;  // mark fired so EventHandle::pending() is false
    ev.fn();
    return true;
  }
  return false;
}

std::size_t Engine::run() { return run_until(std::numeric_limits<SimTime>::infinity()); }

std::size_t Engine::run_until(SimTime deadline) {
  std::size_t fired = 0;
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (*top.cancelled) {
      queue_.pop();
      continue;
    }
    if (top.when > deadline) break;
    if (step()) ++fired;
  }
  if (now_ < deadline && deadline < std::numeric_limits<SimTime>::infinity()) {
    now_ = deadline;
  }
  return fired;
}

}  // namespace vmp::sim
