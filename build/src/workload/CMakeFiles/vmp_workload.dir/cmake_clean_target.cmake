file(REMOVE_RECURSE
  "libvmp_workload.a"
)
