#include "core/shop.h"

#include <algorithm>
#include <set>

#include "fault/fault.h"
#include "lifecycle/lifecycle.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/strings.h"
#include "warehouse/warehouse.h"

namespace vmp::core {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

namespace {
const util::Logger kLog("vmshop");

struct ShopMetrics {
  obs::Counter* creates;
  obs::Counter* create_failures;
  obs::Counter* retries;
  obs::Counter* failovers;
  obs::Counter* cache_hits;
  obs::Counter* bids;
  obs::Counter* bids_skipped;
  obs::Counter* bid_timeouts;
  obs::Counter* admission_rejects;
  obs::Timer* create_seconds;
  obs::Timer* bid_seconds;
  obs::Timer* admission_wait_seconds;
  obs::Gauge* admission_queue;
  obs::Gauge* admission_inflight;

  static ShopMetrics& get() {
    static ShopMetrics m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::instance();
      return ShopMetrics{r.counter("shop.create.count"),
                         r.counter("shop.create_fail.count"),
                         r.counter("shop.retry.count"),
                         r.counter("shop.failover.count"),
                         r.counter("shop.cache_hit.count"),
                         r.counter("shop.bid.count"),
                         r.counter("shop.bid_skipped.count"),
                         r.counter("shop.bid_timeout.count"),
                         r.counter("shop.admission_reject.count"),
                         r.timer("shop.create.seconds"),
                         r.timer("shop.bid.seconds"),
                         r.timer("shop.admission_wait.seconds"),
                         r.gauge("shop.admission_queue.gauge"),
                         r.gauge("shop.admission_inflight.gauge")};
    }();
    return m;
  }
};

}  // namespace

VmShop::VmShop(ShopConfig config, net::MessageBus* bus,
               net::ServiceRegistry* registry)
    : config_(std::move(config)),
      bus_(bus),
      registry_(registry),
      tie_rng_(config_.tie_break_seed),
      admission_(AdmissionConfig{config_.max_inflight_creates,
                                 config_.admission_queue_limit}) {}

VmShop::~VmShop() { detach_from_bus(); }

std::vector<Bid> VmShop::collect_bids(const CreateRequest& request) {
  obs::ScopedSpan span("shop.bid", "vmshop", request.request_id);
  const double start_s = obs::Tracer::instance().now();
  std::vector<Bid> bids;
  for (const net::ServiceRecord& plant : registry_->discover("vmplant")) {
    // The registry snapshot is a cache (paper §3.1): a plant can detach
    // between discover() and the bid call.  Probe the bus first so a
    // vanished bidder costs one lookup — a skipped bid, never a stall.
    if (!bus_->has_endpoint(plant.address)) {
      kLog.warn() << plant.address
                  << " vanished before bidding (detached after registry "
                     "snapshot); skipping its bid";
      bids_skipped_.fetch_add(1, std::memory_order_relaxed);
      ShopMetrics::get().bids_skipped->add();
      continue;
    }
    // Modeled per-bid deadline: the hook stands in for bid_timeout_s
    // expiring without an answer.  A firing loses THIS bid only.
    if (Status deadline = fault::check(fault::points::kShopBid, plant.address);
        !deadline.ok()) {
      kLog.warn() << plant.address << " bid timed out (budget "
                  << config_.bid_timeout_s
                  << "s): " << deadline.error().to_string();
      bids_skipped_.fetch_add(1, std::memory_order_relaxed);
      ShopMetrics::get().bids_skipped->add();
      ShopMetrics::get().bid_timeouts->add();
      continue;
    }
    net::Message m = net::Message::request("vmplant.estimate", config_.name,
                                           plant.address, request.request_id);
    request.to_xml(&m.body());
    auto response = net::call_expecting_success(bus_, m);
    if (!response.ok()) {
      const ErrorCode code = response.error().code();
      const bool transport = code == ErrorCode::kUnavailable ||
                             code == ErrorCode::kTimeout ||
                             code == ErrorCode::kNotFound;
      if (transport) {
        // Lost/refused at the transport layer — same class as a vanished
        // plant, distinct from an application-level refusal below.
        kLog.warn() << plant.address << " unreachable during bidding: "
                    << response.error().to_string() << "; skipping its bid";
        bids_skipped_.fetch_add(1, std::memory_order_relaxed);
        ShopMetrics::get().bids_skipped->add();
        if (code == ErrorCode::kTimeout) ShopMetrics::get().bid_timeouts->add();
      } else {
        kLog.debug() << plant.address
                     << " declined to bid: " << response.error().to_string();
      }
      continue;
    }
    const xml::Element* bid_elem = response.value().body().child("bid");
    if (bid_elem == nullptr) continue;
    Bid bid;
    bid.plant_address = plant.address;
    bid.cost = bid_elem->attr_double("cost", 0.0);
    bids.push_back(bid);
  }
  ShopMetrics::get().bids->add(bids.size());
  ShopMetrics::get().bid_seconds->record(obs::Tracer::instance().now() -
                                         start_s);
  return bids;
}

std::map<std::string, double> VmShop::snapshot_health(
    const std::vector<Bid>& bids) const {
  std::map<std::string, double> health;
  if (config_.health_penalty_weight <= 0.0 || !health_provider_) {
    return health;
  }
  for (const Bid& b : bids) {
    if (health.count(b.plant_address) == 0) {
      health[b.plant_address] =
          std::clamp(health_provider_(b.plant_address), 0.0, 1.0);
    }
  }
  return health;
}

double VmShop::effective_cost_in(
    const Bid& bid, const std::map<std::string, double>& health) const {
  auto it = health.find(bid.plant_address);
  if (it == health.end()) return bid.cost;
  return bid.cost *
         (1.0 + config_.health_penalty_weight * (1.0 - it->second));
}

double VmShop::effective_cost(const Bid& bid) const {
  if (config_.health_penalty_weight <= 0.0 || !health_provider_) {
    return bid.cost;
  }
  const double health =
      std::clamp(health_provider_(bid.plant_address), 0.0, 1.0);
  return bid.cost * (1.0 + config_.health_penalty_weight * (1.0 - health));
}

void VmShop::sort_by_effective_cost(std::vector<Bid>* bids) const {
  const std::map<std::string, double> health = snapshot_health(*bids);
  std::stable_sort(bids->begin(), bids->end(),
                   [&](const Bid& a, const Bid& b) {
                     return effective_cost_in(a, health) <
                            effective_cost_in(b, health);
                   });
}

std::optional<Bid> VmShop::select_bid(const std::vector<Bid>& bids) {
  if (bids.empty()) return std::nullopt;
  const std::map<std::string, double> health = snapshot_health(bids);
  double best = effective_cost_in(bids.front(), health);
  for (const Bid& b : bids) {
    best = std::min(best, effective_cost_in(b, health));
  }
  std::vector<const Bid*> cheapest;
  for (const Bid& b : bids) {
    if (effective_cost_in(b, health) <= best) cheapest.push_back(&b);
  }
  // Among equal effective costs, prefer the healthiest plant (fleet SLO
  // verdicts, DESIGN.md §9) — skipped entirely when the penalty is off so
  // the paper-faithful path below consumes the RNG identically.
  if (!health.empty() && cheapest.size() > 1) {
    double best_health = 0.0;
    for (const Bid* b : cheapest) {
      best_health = std::max(best_health, health.at(b->plant_address));
    }
    std::erase_if(cheapest, [&](const Bid* b) {
      return health.at(b->plant_address) < best_health - 1e-12;
    });
  }
  // "The VMShop picks one plant at random" among equal bids (paper §3.4).
  // The draw is guarded: concurrent selections share one seeded stream.
  std::size_t pick;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pick = tie_rng_.next_below(cheapest.size());
  }
  return *cheapest[pick];
}

Result<classad::ClassAd> VmShop::create(const CreateRequest& request) {
  // Root span of the request's trace: everything downstream (bids, bus
  // hops, plant-side production) chains underneath this context.
  ShopMetrics& metrics = ShopMetrics::get();
  obs::ScopedSpan span("shop.create", "vmshop", request.request_id);
  const double start_s = obs::Tracer::instance().now();

  // Admission before any work: bounded concurrency with backpressure the
  // client can observe (queue-wait latency) or act on (kResourceExhausted
  // when the wait queue itself is full).
  auto ticket = admission_.admit();
  metrics.admission_wait_seconds->record(obs::Tracer::instance().now() -
                                         start_s);
  metrics.admission_queue->set(
      static_cast<std::int64_t>(admission_.queued()));
  metrics.admission_inflight->set(
      static_cast<std::int64_t>(admission_.inflight()));
  if (!ticket.ok()) metrics.admission_rejects->add();

  Result<classad::ClassAd> result =
      ticket.ok() ? create_impl(request)
                  : ticket.propagate<classad::ClassAd>();

  metrics.create_seconds->record(obs::Tracer::instance().now() - start_s);
  if (result.ok()) {
    metrics.creates->add();
    span.set_vm(result.value().get_string(attrs::kVmId).value_or(""));
    // Stamp the trace id into the response ad so a client holding a slow
    // VM can look up its retained tail exemplar.
    if (span.active()) {
      result.value().set_string(attrs::kTraceId, span.context().trace_id);
    }
  } else {
    metrics.create_failures->add();
    span.set_status(util::error_code_name(result.error().code()));
  }
  return result;
}

Result<classad::ClassAd> VmShop::create_impl(const CreateRequest& request) {
  VMP_RETURN_IF_ERROR_AS(request.validate(), classad::ClassAd);

  std::vector<Bid> bids = collect_bids(request);
  if (bids.empty()) {
    return Result<classad::ClassAd>(Error(
        ErrorCode::kNoBids, "no plant produced a bid for request " +
                                request.request_id));
  }
  sort_by_effective_cost(&bids);

  // Creation proper.  Two distinct failure classes drive two distinct
  // recovery strategies (both bounded by config_.retry):
  //
  //   * transport errors (the bus call itself fails: message loss,
  //     timeout) -> retry the SAME plant with exponential backoff, since
  //     the request may simply not have arrived;
  //   * application faults (the plant answered and said no: clone
  //     failure, capacity, ...) -> the plant is marked failed for the
  //     rest of this request and the shop fails over to the next-best
  //     bid.  A failed plant is never re-attempted within one request,
  //     even if bids are re-collected.
  std::set<std::string> failed_plants;
  util::RetryState retry_state(config_.retry);
  bool rebid_done = false;
  std::string last_failure;

  while (true) {
    bids.erase(std::remove_if(bids.begin(), bids.end(),
                              [&](const Bid& b) {
                                return failed_plants.count(b.plant_address) != 0;
                              }),
               bids.end());
    if (bids.empty()) {
      // One fresh bid round before giving up: bid collection is cheap and
      // plant load may have changed.  Plants that already failed in this
      // request are skipped (filtered on the next pass), not re-bid into
      // the candidate set.
      if (rebid_done) break;
      rebid_done = true;
      bids = collect_bids(request);
      sort_by_effective_cost(&bids);
      continue;
    }

    auto chosen = select_bid(bids);

    // Transport attempts against the chosen plant.
    Result<net::Message> response(
        Error(ErrorCode::kInternal, "create: no attempt made"));
    bool abandoned = false;
    while (true) {
      net::Message m = net::Message::request("vmplant.create", config_.name,
                                             chosen->plant_address,
                                             request.request_id);
      request.to_xml(&m.body());
      response = bus_->call(m);
      if (response.ok()) break;

      last_failure =
          chosen->plant_address + ": " + response.error().to_string();
      const double backoff_before = retry_state.elapsed_backoff_s();
      if (!retry_state.allow_retry()) {
        if (retry_state.timed_out()) {
          return Result<classad::ClassAd>(Error(
              ErrorCode::kTimeout,
              "create " + request.request_id +
                  " exceeded its retry budget (" + config_.retry.to_string() +
                  "); last: " + last_failure));
        }
        // Per-request transport attempts exhausted: give up on this plant.
        abandoned = true;
        break;
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        retry_backoff_s_ += retry_state.elapsed_backoff_s() - backoff_before;
      }
      retries_.fetch_add(1, std::memory_order_relaxed);
      ShopMetrics::get().retries->add();
      obs::Tracer::instance().instant("shop.retry", "vmshop", "retry",
                                      chosen->plant_address);
      kLog.debug() << "transport failure (" << last_failure << "); retry "
                   << retry_state.retries_granted() << " after "
                   << retry_state.elapsed_backoff_s() << "s backoff";
    }

    if (!abandoned && response.ok() && !response.value().is_fault()) {
      auto ad = classad::ClassAd::from_xml(response.value().body());
      if (!ad.ok()) return ad;
      const auto vm_id = ad.value().get_string(attrs::kVmId);
      if (vm_id.has_value()) {
        std::lock_guard<std::mutex> lock(mutex_);
        vm_to_plant_[*vm_id] = chosen->plant_address;
        ad_cache_[*vm_id] = ad.value();
        creations_.fetch_add(1, std::memory_order_relaxed);
      }
      return ad;
    }

    if (!abandoned && response.ok()) {
      last_failure = chosen->plant_address + ": " +
                     response.value().fault_error().to_string();
    }
    failed_plants.insert(chosen->plant_address);
    failovers_.fetch_add(1, std::memory_order_relaxed);
    ShopMetrics::get().failovers->add();
    obs::Tracer::instance().instant("shop.failover", "vmshop", "failover",
                                    chosen->plant_address);
    kLog.warn() << "creation failed at " << last_failure
                << "; failing over to next-best bid";
  }
  return Result<classad::ClassAd>(
      Error(ErrorCode::kUnavailable,
            "all bidding plants failed; last: " + last_failure));
}

Result<classad::ClassAd> VmShop::query_at(const std::string& plant_address,
                                          const std::string& vm_id) {
  net::Message m = net::Message::request("vmplant.query", config_.name,
                                         plant_address, vm_id);
  m.body().add_child("vm").set_attr("id", vm_id);
  auto response = net::call_expecting_success(bus_, m);
  if (!response.ok()) return response.propagate<classad::ClassAd>();
  return classad::ClassAd::from_xml(response.value().body());
}

Result<classad::ClassAd> VmShop::query(const std::string& vm_id) {
  obs::ScopedSpan span("shop.query", "vmshop", vm_id);
  std::string routed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = vm_to_plant_.find(vm_id);
    if (it != vm_to_plant_.end()) routed = it->second;
  }
  if (!routed.empty()) {
    auto ad = query_at(routed, vm_id);
    if (ad.ok()) {
      std::lock_guard<std::mutex> lock(mutex_);
      ad_cache_[vm_id] = ad.value();
      return ad;
    }
  }
  // Routing cache miss (or stale): rebuild by broadcast.
  for (const net::ServiceRecord& plant : registry_->discover("vmplant")) {
    if (plant.address == routed) continue;
    auto ad = query_at(plant.address, vm_id);
    if (ad.ok()) {
      std::lock_guard<std::mutex> lock(mutex_);
      vm_to_plant_[vm_id] = plant.address;
      ad_cache_[vm_id] = ad.value();
      return ad;
    }
  }
  return Result<classad::ClassAd>(
      Error(ErrorCode::kNotFound, "no plant knows VM " + vm_id));
}

Status VmShop::destroy(const std::string& vm_id) {
  obs::ScopedSpan span("shop.destroy", "vmshop", vm_id);
  // Resolve the owning plant (query refreshes the routing cache).
  auto ad = query(vm_id);
  if (!ad.ok()) return ad.error();

  std::string plant_address;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    plant_address = vm_to_plant_[vm_id];
  }
  net::Message m = net::Message::request("vmplant.collect", config_.name,
                                         plant_address, vm_id);
  m.body().add_child("vm").set_attr("id", vm_id);
  auto response = net::call_expecting_success(bus_, m);
  if (!response.ok()) return response.error();
  std::lock_guard<std::mutex> lock(mutex_);
  vm_to_plant_.erase(vm_id);
  ad_cache_.erase(vm_id);
  return Status();
}

Status VmShop::publish_image(const warehouse::GoldenImage& image) {
  obs::ScopedSpan span("shop.publish", "vmshop", image.id);
  if (lifecycle_ == nullptr) {
    return Status(ErrorCode::kFailedPrecondition,
                  config_.name +
                      ": no lifecycle manager attached; image publishing "
                      "is unavailable at this shop");
  }
  Status published = lifecycle_->publish(image);
  if (!published.ok()) {
    span.set_status(util::error_code_name(published.error().code()));
    kLog.warn() << config_.name << ": publish '" << image.id
                << "' rejected: " << published.error().message();
  } else {
    kLog.info() << config_.name << ": published golden '" << image.id << "'";
  }
  return published;
}

Result<classad::ClassAd> VmShop::cached_query(const std::string& vm_id) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = ad_cache_.find(vm_id);
    if (it != ad_cache_.end()) {
      ++cache_hits_;
      ShopMetrics::get().cache_hits->add();
      return it->second;
    }
  }
  return query(vm_id);
}

std::uint64_t VmShop::cache_hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_hits_;
}

std::size_t VmShop::cache_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ad_cache_.size();
}

double VmShop::retry_backoff_s() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return retry_backoff_s_;
}

Status VmShop::attach_to_bus() {
  VMP_RETURN_IF_ERROR(bus_->register_endpoint(
      bus_address(),
      [this](const net::Message& m) { return handle_message(m); }));
  attached_ = true;
  net::ServiceRecord record;
  record.type = "vmshop";
  record.address = bus_address();
  registry_->publish(record);
  return Status();
}

void VmShop::detach_from_bus() {
  if (attached_) {
    (void)bus_->unregister_endpoint(bus_address());
    (void)registry_->withdraw(bus_address());
    attached_ = false;
  }
}

net::Message VmShop::handle_message(const net::Message& request_msg) {
  const std::string& service = request_msg.service();

  if (service == "vmshop.create") {
    const xml::Element* req_elem = request_msg.body().child("create-request");
    if (req_elem == nullptr) {
      return net::Message::fault_to(
          request_msg,
          Error(ErrorCode::kParseError, "missing <create-request>"));
    }
    auto request = CreateRequest::from_xml(*req_elem);
    if (!request.ok()) {
      return net::Message::fault_to(request_msg, request.error());
    }
    auto ad = create(request.value());
    if (!ad.ok()) return net::Message::fault_to(request_msg, ad.error());
    net::Message response = net::Message::response_to(request_msg);
    ad.value().to_xml(&response.body());
    return response;
  }

  if (service == "vmshop.publish") {
    const xml::Element* golden = request_msg.body().child("golden");
    if (golden == nullptr) {
      return net::Message::fault_to(
          request_msg, Error(ErrorCode::kParseError, "missing <golden>"));
    }
    auto image = warehouse::parse_descriptor(golden->to_string());
    if (!image.ok()) {
      return net::Message::fault_to(request_msg, image.error());
    }
    Status published = publish_image(image.value());
    // A kResourceExhausted fault here IS the backpressure: installers see
    // the budget rejection exactly like any other application fault.
    if (!published.ok()) {
      return net::Message::fault_to(request_msg, published.error());
    }
    net::Message response = net::Message::response_to(request_msg);
    response.body().add_child("published").set_attr("id", image.value().id);
    return response;
  }

  if (service == "vmshop.query" || service == "vmshop.destroy") {
    const xml::Element* vm_elem = request_msg.body().child("vm");
    if (vm_elem == nullptr || !vm_elem->has_attr("id")) {
      return net::Message::fault_to(
          request_msg, Error(ErrorCode::kParseError, "missing <vm id=...>"));
    }
    const std::string vm_id = vm_elem->attr("id");
    if (service == "vmshop.query") {
      auto ad = query(vm_id);
      if (!ad.ok()) return net::Message::fault_to(request_msg, ad.error());
      net::Message response = net::Message::response_to(request_msg);
      ad.value().to_xml(&response.body());
      return response;
    }
    Status s = destroy(vm_id);
    if (!s.ok()) return net::Message::fault_to(request_msg, s.error());
    net::Message response = net::Message::response_to(request_msg);
    response.body().add_child("destroyed").set_attr("id", vm_id);
    return response;
  }

  return net::Message::fault_to(
      request_msg,
      Error(ErrorCode::kInvalidArgument, "unknown service: " + service));
}

}  // namespace vmp::core
