file(REMOVE_RECURSE
  "CMakeFiles/vmp_storage.dir/artifact_store.cpp.o"
  "CMakeFiles/vmp_storage.dir/artifact_store.cpp.o.d"
  "CMakeFiles/vmp_storage.dir/clone_ops.cpp.o"
  "CMakeFiles/vmp_storage.dir/clone_ops.cpp.o.d"
  "CMakeFiles/vmp_storage.dir/disk.cpp.o"
  "CMakeFiles/vmp_storage.dir/disk.cpp.o.d"
  "CMakeFiles/vmp_storage.dir/image_layout.cpp.o"
  "CMakeFiles/vmp_storage.dir/image_layout.cpp.o.d"
  "libvmp_storage.a"
  "libvmp_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmp_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
