// Tests for the workload generators and the periodic VM monitor.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <set>
#include <thread>

#include "core/info_system.h"
#include "hypervisor/gsx.h"
#include "warehouse/warehouse.h"
#include "workload/dag_library.h"
#include "vnet/ethernet.h"
#include "vnet/router.h"
#include "workload/request_gen.h"

namespace vmp::workload {
namespace {

constexpr std::uint64_t kMb = 1ull << 20;

// -- Request generators ----------------------------------------------------------

TEST(RequestGenTest, SequenceHasDistinctIdsUsersAndIps) {
  const auto requests = workspace_requests(64, 128, "ufl.edu");
  ASSERT_EQ(requests.size(), 128u);
  std::set<std::string> ids, ips;
  for (const auto& r : requests) {
    ids.insert(r.request_id);
    ASSERT_TRUE(r.validate().ok()) << r.request_id;
    EXPECT_EQ(r.domain, "ufl.edu");
    EXPECT_EQ(r.hardware.memory_bytes, 64 * kMb);
    const dag::Action* net = r.config.action("D");
    ASSERT_NE(net, nullptr);
    ips.insert(net->param("ip"));
  }
  EXPECT_EQ(ids.size(), 128u);
  EXPECT_EQ(ips.size(), 128u);  // every request its own address
}

TEST(RequestGenTest, IpsStayValidBeyondASingleSubnet) {
  // Request 250+ rolls into the next /24; octets must stay in range.
  for (std::size_t i : {0u, 249u, 250u, 499u, 700u}) {
    const core::CreateRequest r = workspace_request(32, i, "d");
    const std::string ip = r.config.action("D")->param("ip");
    auto parsed = vnet::parse_ipv4(ip);
    EXPECT_TRUE(parsed.ok()) << "request " << i << " ip " << ip;
  }
}

TEST(RequestGenTest, MacAddressesAreWellFormed) {
  for (std::size_t i : {0u, 65535u, 100000u}) {
    const core::CreateRequest r = workspace_request(32, i, "d");
    EXPECT_TRUE(
        vnet::MacAddress::parse(r.config.action("D")->param("mac")).ok());
  }
}

TEST(RequestGenTest, BackendSelectsGoldenFamily) {
  EXPECT_EQ(workspace_request(32, 0, "d").backend, "vmware-gsx");
  EXPECT_EQ(workspace_request(32, 0, "d", "uml").backend, "uml");
}

TEST(DagLibraryTest, MinimalConfigDagIsValidAndOrdered) {
  dag::ConfigDag d = minimal_config_dag("alice", "10.0.0.5");
  ASSERT_TRUE(d.validate().ok());
  EXPECT_EQ(d.size(), 2u);
  EXPECT_TRUE(d.orders_before("net", "user"));
}

TEST(DagLibraryTest, RandomLayeredDagRespectsShape) {
  dag::ConfigDag d = random_layered_dag(5, 4, 3, 0.5);
  EXPECT_EQ(d.size(), 12u);
  ASSERT_TRUE(d.validate().ok());
  // Determinism in the seed.
  EXPECT_TRUE(random_layered_dag(5, 4, 3, 0.5) == d);
  EXPECT_FALSE(random_layered_dag(6, 4, 3, 0.5) == d);
}

TEST(DagLibraryTest, RandomLayeredDagLayersAreConnected) {
  dag::ConfigDag d = random_layered_dag(9, 3, 4, 0.0);  // density 0: fallback
  // Even with zero density every non-final-layer node gets one edge.
  for (const std::string& id : d.node_ids()) {
    if (id.rfind("L2", 0) == 0) continue;  // final layer: sinks allowed
    EXPECT_FALSE(d.successors(id).empty()) << id;
  }
}

// -- Periodic monitor ---------------------------------------------------------------

TEST(MonitorTest, PeriodicSweepsRefreshDynamicAttributes) {
  const auto root = std::filesystem::temp_directory_path() /
                    ("vmp-monitor-test-" + std::to_string(::getpid()));
  std::filesystem::remove_all(root);
  {
    storage::ArtifactStore store(root);
    storage::MachineSpec spec;
    spec.os = "linux";
    spec.memory_bytes = 32 * kMb;
    spec.suspended = true;
    spec.disk = {"disk0", 128 * kMb, 2, storage::DiskMode::kNonPersistent};
    const storage::ImageLayout golden{"golden"};
    ASSERT_TRUE(storage::materialize_image(&store, golden, spec).ok());

    hv::GsxHypervisor gsx(&store);
    hv::CloneSource source;
    source.layout = golden;
    source.spec = spec;
    ASSERT_TRUE(gsx.clone_vm(source, "clones/vm1", "vm1").ok());

    core::VmInformationSystem info;
    classad::ClassAd ad;
    ad.set_string("VMID", "vm1");
    info.store("vm1", ad);

    core::VmMonitor monitor(&gsx, &info);
    EXPECT_FALSE(monitor.periodic_running());
    monitor.start_periodic(std::chrono::milliseconds(5));
    EXPECT_TRUE(monitor.periodic_running());
    monitor.start_periodic(std::chrono::milliseconds(5));  // idempotent

    // First sweeps record the stopped state.
    while (monitor.sweeps() < 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_EQ(info.query("vm1").value().get_string("State").value(),
              "stopped");

    // Start the VM; the monitor notices without an explicit refresh.
    ASSERT_TRUE(gsx.start_vm("vm1").ok());
    const std::uint64_t sweep_mark = monitor.sweeps();
    while (monitor.sweeps() < sweep_mark + 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_EQ(info.query("vm1").value().get_string("State").value(),
              "running");

    monitor.stop_periodic();
    EXPECT_FALSE(monitor.periodic_running());
    const std::uint64_t final_sweeps = monitor.sweeps();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(monitor.sweeps(), final_sweeps);  // really stopped
  }
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace vmp::workload
