
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/architect.cpp" "src/core/CMakeFiles/vmp_core.dir/architect.cpp.o" "gcc" "src/core/CMakeFiles/vmp_core.dir/architect.cpp.o.d"
  "/root/repo/src/core/broker.cpp" "src/core/CMakeFiles/vmp_core.dir/broker.cpp.o" "gcc" "src/core/CMakeFiles/vmp_core.dir/broker.cpp.o.d"
  "/root/repo/src/core/cost.cpp" "src/core/CMakeFiles/vmp_core.dir/cost.cpp.o" "gcc" "src/core/CMakeFiles/vmp_core.dir/cost.cpp.o.d"
  "/root/repo/src/core/info_system.cpp" "src/core/CMakeFiles/vmp_core.dir/info_system.cpp.o" "gcc" "src/core/CMakeFiles/vmp_core.dir/info_system.cpp.o.d"
  "/root/repo/src/core/migration.cpp" "src/core/CMakeFiles/vmp_core.dir/migration.cpp.o" "gcc" "src/core/CMakeFiles/vmp_core.dir/migration.cpp.o.d"
  "/root/repo/src/core/plant.cpp" "src/core/CMakeFiles/vmp_core.dir/plant.cpp.o" "gcc" "src/core/CMakeFiles/vmp_core.dir/plant.cpp.o.d"
  "/root/repo/src/core/ppp.cpp" "src/core/CMakeFiles/vmp_core.dir/ppp.cpp.o" "gcc" "src/core/CMakeFiles/vmp_core.dir/ppp.cpp.o.d"
  "/root/repo/src/core/production_line.cpp" "src/core/CMakeFiles/vmp_core.dir/production_line.cpp.o" "gcc" "src/core/CMakeFiles/vmp_core.dir/production_line.cpp.o.d"
  "/root/repo/src/core/request.cpp" "src/core/CMakeFiles/vmp_core.dir/request.cpp.o" "gcc" "src/core/CMakeFiles/vmp_core.dir/request.cpp.o.d"
  "/root/repo/src/core/shop.cpp" "src/core/CMakeFiles/vmp_core.dir/shop.cpp.o" "gcc" "src/core/CMakeFiles/vmp_core.dir/shop.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vmp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/vmp_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/classad/CMakeFiles/vmp_classad.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/vmp_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/vmp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vmp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/vnet/CMakeFiles/vmp_vnet.dir/DependInfo.cmake"
  "/root/repo/build/src/hypervisor/CMakeFiles/vmp_hypervisor.dir/DependInfo.cmake"
  "/root/repo/build/src/warehouse/CMakeFiles/vmp_warehouse.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
