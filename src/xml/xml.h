// Minimal XML document model, parser and writer.
//
// VMPlant service requests travel as XML strings (Section 4.1 of the paper:
// "Services requested by VMShop clients are specified as XML strings. The
// Create VM service specification contains the DAG of configuration
// actions").  This module implements the subset of XML those messages need:
// elements, attributes, text content, comments, CDATA, and the five
// predefined entities.  It does not implement namespaces, DTDs or processing
// instruction semantics (a leading <?xml ...?> declaration is tolerated and
// skipped).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.h"

namespace vmp::xml {

/// One element node.  Children are owned; text interleaved between child
/// elements is concatenated into `text` (mixed content is rare in our
/// messages, and ordering relative to children is not preserved).
class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // -- Attributes -----------------------------------------------------------
  bool has_attr(const std::string& key) const;
  /// Returns "" when absent; use has_attr to distinguish.
  const std::string& attr(const std::string& key) const;
  void set_attr(const std::string& key, std::string value);
  const std::map<std::string, std::string>& attrs() const { return attrs_; }

  /// Attribute parsed as integer/double; falls back to `fallback` when the
  /// attribute is missing or malformed.
  long long attr_int(const std::string& key, long long fallback) const;
  double attr_double(const std::string& key, double fallback) const;

  // -- Text -----------------------------------------------------------------
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }
  void append_text(std::string_view more) { text_ += more; }

  // -- Children -------------------------------------------------------------
  Element& add_child(std::string name);
  /// Take ownership of an already-built subtree.
  Element& adopt_child(std::unique_ptr<Element> child);
  const std::vector<std::unique_ptr<Element>>& children() const {
    return children_;
  }
  /// First child with the given name, or nullptr.
  const Element* child(const std::string& name) const;
  Element* child(const std::string& name);
  /// All children with the given name.
  std::vector<const Element*> children_named(const std::string& name) const;

  /// Text of the first child with the given name ("" if absent).
  const std::string& child_text(const std::string& name) const;

  // -- Serialization --------------------------------------------------------
  /// Render with 2-space indentation.
  std::string to_string() const;
  /// Render without any whitespace between elements (canonical-ish form used
  /// for equality in tests).
  std::string to_compact_string() const;

  bool deep_equal(const Element& other) const;

  /// Deep copy of this subtree.
  std::unique_ptr<Element> clone() const;

 private:
  void render(std::string* out, int indent, bool pretty) const;

  std::string name_;
  std::map<std::string, std::string> attrs_;
  std::string text_;
  std::vector<std::unique_ptr<Element>> children_;
};

/// Escape text for use as element content / attribute value.
std::string escape(std::string_view raw);

/// Parse a document; returns its root element.
util::Result<std::unique_ptr<Element>> parse(std::string_view input);

}  // namespace vmp::xml
