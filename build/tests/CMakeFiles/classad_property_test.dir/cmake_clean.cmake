file(REMOVE_RECURSE
  "CMakeFiles/classad_property_test.dir/classad_property_test.cpp.o"
  "CMakeFiles/classad_property_test.dir/classad_property_test.cpp.o.d"
  "classad_property_test"
  "classad_property_test.pdb"
  "classad_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classad_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
