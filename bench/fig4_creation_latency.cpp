// Figure 4: distribution of end-to-end VM creation latencies.
//
// Paper setup (§4.2): 8 VMPlants, sequential VMShop requests — 128 for
// 32 MB and 64 MB golden machines, 40 for 256 MB.  Latency is measured
// from client request to VMShop response.  Paper findings: VMs instantiate
// on average in 25-48 s, and creation times grow with memory size; the
// plotted bins are 10 s wide, centered 5..85.
#include <cstdio>

#include "common.h"

int main() {
  using namespace vmp;
  bench::print_header(
      "Figure 4 — distribution of overall VM creation latencies",
      "means 25-48 s; larger-memory VMs take longer; bins 5..85 s");

  bench::PaperExperimentConfig config;
  const auto results = bench::run_paper_experiment(config);

  for (const auto& series : results) {
    util::Histogram h(0, 90, 10);  // centers 5,15,...,85 as in the paper
    for (const auto& sample : series.samples) {
      h.add(sample.timing.total_sec);
    }
    char label[128];
    std::snprintf(label, sizeof label,
                  "%u MB golden machine (%zu successful creations)",
                  series.memory_mb, series.samples.size());
    bench::print_histogram(label, h);

    const util::Summary s = series.creation_summary();
    std::printf("mean=%.1fs stddev=%.1fs min=%.1fs max=%.1fs\n\n", s.mean(),
                s.stddev(), s.min(), s.max());
  }

  // Paper-vs-measured summary.
  if (results.size() == 3) {
    char measured[160];
    std::snprintf(measured, sizeof measured,
                  "means %.0f / %.0f / %.0f s (32/64/256 MB)",
                  results[0].creation_summary().mean(),
                  results[1].creation_summary().mean(),
                  results[2].creation_summary().mean());
    bench::print_summary_row("fig4.creation_means",
                             "25 to 48 s, increasing with memory", measured);
    const bool ordered = results[0].creation_summary().mean() <
                             results[1].creation_summary().mean() &&
                         results[1].creation_summary().mean() <
                             results[2].creation_summary().mean();
    bench::print_summary_row("fig4.ordering_by_memory", "strictly increasing",
                             ordered ? "strictly increasing" : "VIOLATED");
  }
  return 0;
}
