file(REMOVE_RECURSE
  "CMakeFiles/vmp_warehouse.dir/warehouse.cpp.o"
  "CMakeFiles/vmp_warehouse.dir/warehouse.cpp.o.d"
  "libvmp_warehouse.a"
  "libvmp_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmp_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
