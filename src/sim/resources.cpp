#include "sim/resources.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

namespace vmp::sim {

// ---------------------------------------------------------------------------
// SharedBandwidth
// ---------------------------------------------------------------------------

SharedBandwidth::SharedBandwidth(Engine* engine, double capacity,
                                 std::string name)
    : engine_(engine), capacity_(capacity), name_(std::move(name)) {
  if (capacity <= 0.0) {
    throw std::invalid_argument("SharedBandwidth: capacity must be > 0");
  }
  last_update_ = engine_->now();
}

std::uint64_t SharedBandwidth::start(double units,
                                     std::function<void()> on_done) {
  if (units < 0.0) units = 0.0;
  advance_and_reschedule();  // settle progress before membership changes
  const std::uint64_t id = next_id_++;
  jobs_.emplace(id, Job{units, std::move(on_done)});
  advance_and_reschedule();
  return id;
}

void SharedBandwidth::advance_and_reschedule() {
  const SimTime now = engine_->now();
  const SimTime elapsed = now - last_update_;
  if (elapsed > 0.0 && !jobs_.empty()) {
    const double per_job = capacity_ / static_cast<double>(jobs_.size()) * elapsed;
    for (auto& [id, job] : jobs_) {
      const double moved = std::min(job.remaining, per_job);
      job.remaining -= moved;
      total_transferred_ += moved;
    }
  }
  last_update_ = now;

  next_completion_.cancel();
  if (jobs_.empty()) return;

  // Earliest finisher under equal sharing.
  double min_remaining = std::numeric_limits<double>::infinity();
  for (const auto& [id, job] : jobs_) {
    min_remaining = std::min(min_remaining, job.remaining);
  }
  const double rate = capacity_ / static_cast<double>(jobs_.size());
  // Completion tolerance scales with the rate: rounding residue from
  // advancing a multi-megabyte transfer exceeds any fixed epsilon, and an
  // ETA below the clock's own ulp would fire with zero elapsed time and
  // livelock.  Anything finishing within a nanosecond is done now.
  const double eps_units = rate * 1e-9;
  const SimTime eta =
      min_remaining <= eps_units ? 0.0 : min_remaining / rate;

  next_completion_ = engine_->schedule(eta, [this] {
    advance_and_reschedule_completions();
  });
}

// Completion pass: called from the scheduled event.  Declared out-of-line in
// the header as part of advance_and_reschedule's flow; split here so the
// callback list is collected before user code runs (user callbacks may start
// new transfers reentrantly).
void SharedBandwidth::advance_and_reschedule_completions() {
  const SimTime now = engine_->now();
  const SimTime elapsed = now - last_update_;
  if (elapsed > 0.0 && !jobs_.empty()) {
    const double per_job = capacity_ / static_cast<double>(jobs_.size()) * elapsed;
    for (auto& [id, job] : jobs_) {
      const double moved = std::min(job.remaining, per_job);
      job.remaining -= moved;
      total_transferred_ += moved;
    }
  }
  last_update_ = now;

  const double completion_rate =
      jobs_.empty() ? capacity_ : capacity_ / static_cast<double>(jobs_.size());
  const double eps_units = completion_rate * 1e-9;
  std::vector<std::function<void()>> done;
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    if (it->second.remaining <= eps_units) {
      done.push_back(std::move(it->second.on_done));
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
  advance_and_reschedule();
  for (auto& fn : done) {
    if (fn) fn();
  }
}

// ---------------------------------------------------------------------------
// FifoServer
// ---------------------------------------------------------------------------

FifoServer::FifoServer(Engine* engine, std::size_t servers, std::string name)
    : engine_(engine), servers_(servers ? servers : 1), name_(std::move(name)) {}

void FifoServer::submit(SimTime service_time, std::function<void()> on_done) {
  queue_.push_back(Job{service_time, std::move(on_done)});
  try_dispatch();
}

void FifoServer::try_dispatch() {
  while (busy_ < servers_ && !queue_.empty()) {
    Job job = std::move(queue_.front());
    queue_.pop_front();
    ++busy_;
    engine_->schedule(job.service_time,
                      [this, on_done = std::move(job.on_done)]() mutable {
                        --busy_;
                        if (on_done) on_done();
                        try_dispatch();
                      });
  }
}

// ---------------------------------------------------------------------------
// CapacityPool
// ---------------------------------------------------------------------------

CapacityPool::CapacityPool(Engine* engine, double capacity, std::string name)
    : engine_(engine),
      capacity_(capacity),
      available_(capacity),
      name_(std::move(name)) {
  if (capacity < 0.0) {
    throw std::invalid_argument("CapacityPool: capacity must be >= 0");
  }
}

bool CapacityPool::try_acquire(double amount) {
  // FIFO fairness: do not jump ahead of existing waiters.
  if (!waiters_.empty()) return false;
  if (amount > available_ + 1e-12) return false;
  available_ -= amount;
  return true;
}

void CapacityPool::acquire(double amount, std::function<void()> on_granted) {
  if (try_acquire(amount)) {
    // Grant asynchronously to keep caller stack discipline uniform.
    engine_->schedule(0.0, std::move(on_granted));
    return;
  }
  waiters_.push_back(Waiter{amount, std::move(on_granted)});
}

void CapacityPool::release(double amount) {
  available_ = std::min(capacity_, available_ + amount);
  drain_waiters();
}

void CapacityPool::drain_waiters() {
  while (!waiters_.empty() && waiters_.front().amount <= available_ + 1e-12) {
    Waiter w = std::move(waiters_.front());
    waiters_.pop_front();
    available_ -= w.amount;
    engine_->schedule(0.0, std::move(w.on_granted));
  }
}

}  // namespace vmp::sim
