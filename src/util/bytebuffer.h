// Compact binary encoding primitives: ByteBuffer (writer) and ByteReader.
//
// The paper's §4.1 wire format is XML text — kept as the debug/interchange
// encoding — but at fleet scale every bus hop and descriptor round-trip
// pays the DOM build + escape/parse tax.  This module is the foundation of
// the binary codec (net/codec.h, DESIGN.md §15): little-endian fixed-width
// integers, LEB128 varints, zigzag signed varints, IEEE-754 doubles, and
// length-prefixed strings, plus the FNV-1a checksums the frame layer uses
// (the same discipline as the event journal's segment codec, obs/journal.cpp).
//
// ByteReader BORROWS the input (std::string_view) and never copies a byte
// it does not hand out: view() returns sub-views of the original buffer, so
// an in-process decode is zero-copy until a field is materialized into an
// owning object.  Every read is bounds-checked; a failed read latches an
// error state (ok() goes false, fail_error() says why) and all subsequent
// reads return zero values, so decoders can check once per structural
// boundary instead of per field.  Length prefixes are validated against the
// bytes actually remaining BEFORE any allocation — an adversarial or
// corrupted prefix can never trigger an oversized reserve.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/error.h"

namespace vmp::util {

/// FNV-1a over a byte range; journal segment checksums (32-bit) and content
/// digests (64-bit).
std::uint32_t fnv1a32(std::string_view data) noexcept;
std::uint64_t fnv1a64(std::string_view data) noexcept;

/// Frame-layer checksum for the binary codec (net/codec.h): two interleaved
/// 32-bit FNV-1a lanes over alternating little-endian words, folded at the
/// end.  Word-at-a-time is ~8x faster than byte-serial FNV (the multiply
/// dependency chain advances 8 bytes per step instead of 1), which matters
/// because the checksum is paid on BOTH sides of every bus hop.  Each lane
/// stays bijective per absorbed block (xor + odd multiply), so any
/// corruption confined to one 32-bit word — in particular every single-bit
/// flip — is guaranteed to change the checksum; the trailing partial word
/// absorbs its length so truncated tails cannot alias padded ones.
std::uint32_t frame_checksum32(std::string_view data) noexcept;

class ByteBuffer {
 public:
  void put_u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  /// IEEE-754 bit pattern, little-endian (bit-exact round trip, NaNs kept).
  void put_f64(double v);
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  /// LEB128: 7 bits per byte, low group first, high bit = continuation.
  void put_varint(std::uint64_t v);
  /// Zigzag-mapped varint for signed values (small magnitudes stay small).
  void put_svarint(std::int64_t v);
  /// Varint byte length, then the raw bytes.
  void put_string(std::string_view v);
  void append_raw(std::string_view v) { out_.append(v.data(), v.size()); }

  /// Overwrite 4 bytes at `offset` (length back-patching).
  void patch_u32(std::size_t offset, std::uint32_t v);

  /// Pre-size the backing store (encoders that know roughly how big the
  /// payload will be avoid the append-growth reallocations).
  void reserve(std::size_t n) { out_.reserve(n); }

  std::size_t size() const { return out_.size(); }
  const std::string& bytes() const& { return out_; }
  std::string take() { return std::move(out_); }
  void clear() { out_.clear(); }

 private:
  std::string out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  bool boolean();
  std::uint64_t varint();
  std::int64_t svarint();
  /// Borrowed sub-view of the next `n` bytes (no copy).
  std::string_view view(std::size_t n);
  /// Length-prefixed string as a borrowed view; the prefix is rejected
  /// (error latch) when it exceeds the remaining bytes.
  std::string_view string_view_field();
  /// Owning copy of a length-prefixed string.
  std::string string_field() { return std::string(string_view_field()); }

  /// A decoded count is plausible only if the stream still holds at least
  /// `min_bytes_each` bytes per element; reject it up front so corrupted
  /// counts fail fast instead of driving giant loops/allocations.
  bool check_count(std::uint64_t count, std::size_t min_bytes_each = 1);

  std::size_t offset() const { return offset_; }
  std::size_t remaining() const { return data_.size() - offset_; }
  bool done() const { return ok_ && offset_ == data_.size(); }

  bool ok() const { return ok_; }
  /// First failure (kParseError with the offset); OK while ok().
  Status status() const;
  /// Latch a decoder-level failure (semantic validation, not bounds).
  void fail(const std::string& why);

 private:
  const char* take(std::size_t n);

  std::string_view data_;
  std::size_t offset_ = 0;
  bool ok_ = true;
  std::string fail_reason_;
  std::size_t fail_offset_ = 0;
};

}  // namespace vmp::util
