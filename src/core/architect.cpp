#include "core/architect.h"

#include "util/logging.h"

namespace vmp::core {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

namespace {
const util::Logger kLog("vmarchitect");
}

Result<RouterDeployment> VmArchitect::deploy_router(
    VmPlant* plant, const CreateRequest& request,
    const std::vector<RouterInterfaceSpec>& interfaces) {
  if (interfaces.size() < 2) {
    return Result<RouterDeployment>(
        Error(ErrorCode::kInvalidArgument,
              name_ + ": a router needs at least two interfaces"));
  }
  for (const RouterInterfaceSpec& spec : interfaces) {
    if (spec.network == nullptr) {
      return Result<RouterDeployment>(Error(
          ErrorCode::kInvalidArgument, name_ + ": null interface network"));
    }
  }

  // The router is an ordinary plant-managed VM.
  auto ad = plant->create(request);
  if (!ad.ok()) return ad.propagate<RouterDeployment>();

  RouterDeployment deployment;
  deployment.vm_id = ad.value().get_string(attrs::kVmId).value_or("");
  deployment.plant = plant->name();
  deployment.ad = std::move(ad).value();
  deployment.router = std::make_unique<vnet::VirtualRouter>(
      name_ + "-router-" + deployment.vm_id);

  const std::uint64_t deployment_index = ++deployments_;
  for (std::size_t i = 0; i < interfaces.size(); ++i) {
    const RouterInterfaceSpec& spec = interfaces[i];
    const vnet::MacAddress mac = vnet::MacAddress::from_index(
        static_cast<std::uint32_t>(0xA0000 + deployment_index * 16 + i));
    Status attached = deployment.router->attach_interface(
        spec.network, mac, spec.ip, spec.subnet_cidr);
    if (!attached.ok()) {
      // Roll back the VM; the partially-wired router detaches on destroy.
      (void)plant->collect(deployment.vm_id);
      return attached.propagate<RouterDeployment>();
    }
  }

  kLog.info() << name_ << ": deployed router " << deployment.vm_id << " with "
              << interfaces.size() << " interfaces on " << plant->name();
  return deployment;
}

Status VmArchitect::teardown(VmPlant* plant, RouterDeployment deployment) {
  deployment.router.reset();  // detaches all switch ports
  return plant->collect(deployment.vm_id);
}

}  // namespace vmp::core
