// Binary wire codec: frame discipline, per-object round trips, the
// bus-level wire-format negotiation, committed-fixture compatibility
// (the wire-compat CI job), and adversarial robustness sweeps — every
// truncation offset, every single-bit flip, and oversized length prefixes
// must fail CLEANLY (error Status, no crash, no giant allocation).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "net/bus.h"
#include "net/codec.h"
#include "net/message.h"
#include "util/bytebuffer.h"
#include "wire_fixtures.h"

namespace vmp {
namespace {

namespace codec = net::codec;
using util::ByteBuffer;
using util::ByteReader;

void expect_image_eq(const warehouse::GoldenImage& a,
                     const warehouse::GoldenImage& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.backend, b.backend);
  EXPECT_EQ(a.layout.dir, b.layout.dir);
  EXPECT_EQ(a.spec.os, b.spec.os);
  EXPECT_EQ(a.spec.memory_bytes, b.spec.memory_bytes);
  EXPECT_EQ(a.spec.suspended, b.spec.suspended);
  EXPECT_EQ(a.spec.disk.name, b.spec.disk.name);
  EXPECT_EQ(a.spec.disk.capacity_bytes, b.spec.disk.capacity_bytes);
  EXPECT_EQ(a.spec.disk.span_count, b.spec.disk.span_count);
  EXPECT_EQ(a.spec.disk.mode, b.spec.disk.mode);
  EXPECT_TRUE(a.guest == b.guest);
  EXPECT_EQ(a.performed, b.performed);
}

void expect_message_eq(const net::Message& a, const net::Message& b) {
  EXPECT_EQ(a.kind(), b.kind());
  EXPECT_EQ(a.service(), b.service());
  EXPECT_EQ(a.from(), b.from());
  EXPECT_EQ(a.to(), b.to());
  EXPECT_EQ(a.correlation(), b.correlation());
  EXPECT_EQ(a.trace().trace_id, b.trace().trace_id);
  EXPECT_EQ(a.trace().span_id, b.trace().span_id);
  EXPECT_EQ(a.body().to_compact_string(), b.body().to_compact_string());
}

void expect_classad_eq(const classad::ClassAd& a, const classad::ClassAd& b) {
  ASSERT_EQ(a.names(), b.names());
  for (const std::string& name : a.names()) {
    ASSERT_NE(a.lookup(name), nullptr);
    ASSERT_NE(b.lookup(name), nullptr);
    EXPECT_EQ(a.lookup(name)->to_string(), b.lookup(name)->to_string())
        << "attr " << name;
  }
}

// ---- ByteBuffer / ByteReader primitives ------------------------------------

TEST(ByteBufferTest, PrimitiveRoundTrip) {
  ByteBuffer buf;
  buf.put_u8(0xab);
  buf.put_u16(0xbeef);
  buf.put_u32(0xdeadbeefu);
  buf.put_u64(0x0123456789abcdefull);
  buf.put_f64(-2.5);
  buf.put_bool(true);
  buf.put_varint(0);
  buf.put_varint(127);
  buf.put_varint(128);
  buf.put_varint(~0ull);
  buf.put_svarint(-1);
  buf.put_svarint(1);
  buf.put_svarint(-(1ll << 40));
  buf.put_string("hello");
  buf.put_string("");

  ByteReader in(buf.bytes());
  EXPECT_EQ(in.u8(), 0xab);
  EXPECT_EQ(in.u16(), 0xbeef);
  EXPECT_EQ(in.u32(), 0xdeadbeefu);
  EXPECT_EQ(in.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(in.f64(), -2.5);
  EXPECT_TRUE(in.boolean());
  EXPECT_EQ(in.varint(), 0u);
  EXPECT_EQ(in.varint(), 127u);
  EXPECT_EQ(in.varint(), 128u);
  EXPECT_EQ(in.varint(), ~0ull);
  EXPECT_EQ(in.svarint(), -1);
  EXPECT_EQ(in.svarint(), 1);
  EXPECT_EQ(in.svarint(), -(1ll << 40));
  EXPECT_EQ(in.string_field(), "hello");
  EXPECT_EQ(in.string_field(), "");
  EXPECT_TRUE(in.done());
  EXPECT_TRUE(in.status().ok());
}

TEST(ByteBufferTest, ReadPastEndLatchesError) {
  ByteBuffer buf;
  buf.put_u16(7);
  ByteReader in(buf.bytes());
  (void)in.u32();  // 4 > 2 remaining
  EXPECT_FALSE(in.ok());
  EXPECT_FALSE(in.status().ok());
  // Latched: everything after the first failure reads as zero.
  EXPECT_EQ(in.u8(), 0);
  EXPECT_EQ(in.varint(), 0u);
  EXPECT_EQ(in.string_field(), "");
}

TEST(ByteBufferTest, OversizedStringPrefixRejectedBeforeAllocation) {
  ByteBuffer buf;
  buf.put_varint(1ull << 60);  // length prefix far beyond the buffer
  buf.append_raw("xy");
  ByteReader in(buf.bytes());
  EXPECT_EQ(in.string_view_field(), "");
  EXPECT_FALSE(in.ok());
}

TEST(ByteBufferTest, OverlongVarintRejected) {
  // 11 continuation bytes: more than any valid 64-bit LEB128.
  const std::string overlong(11, '\x80');
  ByteReader in(overlong);
  (void)in.varint();
  EXPECT_FALSE(in.ok());
}

TEST(ByteBufferTest, CheckCountRejectsImplausibleCounts) {
  ByteBuffer buf;
  buf.put_varint(1ull << 40);
  ByteReader in(buf.bytes());
  const std::uint64_t count = in.varint();
  EXPECT_FALSE(in.check_count(count, 2));
  EXPECT_FALSE(in.ok());
}

// ---- Frame layer ------------------------------------------------------------

TEST(FrameTest, SealAndOpen) {
  const std::string frame =
      codec::seal_frame(codec::FrameTag::kClassAd, "payload-bytes");
  auto view = codec::open_frame(frame);
  ASSERT_TRUE(view.ok()) << view.error().to_string();
  EXPECT_EQ(view.value().tag, codec::FrameTag::kClassAd);
  EXPECT_EQ(view.value().version, codec::kCodecVersion);
  EXPECT_EQ(view.value().payload, "payload-bytes");
}

TEST(FrameTest, TagMismatchRejected) {
  const std::string frame = codec::seal_frame(codec::FrameTag::kClassAd, "x");
  EXPECT_FALSE(codec::open_frame(frame, codec::FrameTag::kMessage).ok());
}

TEST(FrameTest, FutureVersionRejected) {
  std::string frame = codec::seal_frame(codec::FrameTag::kMessage, "x");
  frame[3] = static_cast<char>(codec::kCodecVersion + 1);
  EXPECT_FALSE(codec::open_frame(frame).ok());
  frame[3] = 0;
  EXPECT_FALSE(codec::open_frame(frame).ok());
}

TEST(FrameTest, ChecksumMismatchRejected) {
  std::string frame = codec::seal_frame(codec::FrameTag::kMessage, "payload");
  frame.back() ^= 0x01;  // corrupt payload, leave header intact
  EXPECT_FALSE(codec::open_frame(frame).ok());
}

TEST(FrameTest, LengthMismatchRejected) {
  std::string frame = codec::seal_frame(codec::FrameTag::kMessage, "payload");
  EXPECT_FALSE(codec::open_frame(frame + "extra").ok());
}

// ---- Object round trips -----------------------------------------------------

TEST(CodecTest, MessageRoundTrip) {
  const net::Message original = testing::wire_fixture_message();
  auto decoded = codec::decode_message(codec::encode_message(original));
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  expect_message_eq(original, decoded.value());
}

TEST(CodecTest, FaultMessageRoundTrip) {
  const net::Message request = testing::wire_fixture_message();
  const net::Message fault = net::Message::fault_to(
      request, util::Error(util::ErrorCode::kResourceExhausted,
                           "warehouse budget exhausted"));
  auto decoded = codec::decode_message(codec::encode_message(fault));
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_TRUE(decoded.value().is_fault());
  EXPECT_EQ(decoded.value().fault_error().code(),
            util::ErrorCode::kResourceExhausted);
  EXPECT_EQ(decoded.value().fault_error().message(),
            "warehouse budget exhausted");
}

TEST(CodecTest, DescriptorRoundTrip) {
  const warehouse::GoldenImage original = testing::wire_fixture_descriptor();
  auto decoded = codec::decode_descriptor(codec::encode_descriptor(original));
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  expect_image_eq(original, decoded.value());
}

TEST(CodecTest, DescriptorValidatesSpecLikeXmlParser) {
  warehouse::GoldenImage bad = testing::wire_fixture_descriptor();
  bad.spec.memory_bytes = 0;  // structurally encodable, semantically invalid
  auto decoded = codec::decode_descriptor(codec::encode_descriptor(bad));
  EXPECT_FALSE(decoded.ok());
}

TEST(CodecTest, ClassAdRoundTrip) {
  const classad::ClassAd original = testing::wire_fixture_classad();
  auto decoded = codec::decode_classad(codec::encode_classad(original));
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  expect_classad_eq(original, decoded.value());
}

TEST(CodecTest, BinaryDescriptorSmallerThanXml) {
  const warehouse::GoldenImage image = testing::wire_fixture_descriptor();
  EXPECT_LT(codec::encode_descriptor(image).size(),
            warehouse::render_descriptor(image).size());
}

// ---- Bus wire-format negotiation --------------------------------------------

TEST(BusWireFormatTest, NamesParseAndRender) {
  EXPECT_STREQ(net::wire_format_name(net::WireFormat::kXml), "xml");
  EXPECT_STREQ(net::wire_format_name(net::WireFormat::kBinary), "binary");
  ASSERT_TRUE(net::parse_wire_format("binary").ok());
  EXPECT_EQ(net::parse_wire_format("binary").value(),
            net::WireFormat::kBinary);
  EXPECT_FALSE(net::parse_wire_format("protobuf").ok());
}

void exercise_bus(net::WireFormat wire) {
  net::MessageBus bus{net::BusConfig{wire}};
  EXPECT_EQ(bus.wire_format(), wire);
  ASSERT_TRUE(bus.register_endpoint("echo", [](const net::Message& m) {
                   net::Message response = net::Message::response_to(m);
                   auto& result = response.body().add_child("result");
                   result.set_attr("seen", m.service());
                   result.set_text(m.body().child_text("note"));
                   return response;
                 }).ok());

  net::Message request =
      net::Message::request("echo.ping", "client", "echo", "c1");
  request.body().add_child("note").set_text("payload survives the wire");
  auto response = bus.call(request);
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  EXPECT_EQ(response.value().kind(), net::MessageKind::kResponse);
  EXPECT_EQ(response.value().correlation(), "c1");
  const xml::Element* result = response.value().body().child("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->attr("seen"), "echo.ping");
  EXPECT_EQ(result->text(), "payload survives the wire");

  // Fault responses survive the wire too.
  ASSERT_TRUE(bus.register_endpoint("faulty", [](const net::Message& m) {
                   return net::Message::fault_to(
                       m, util::Error(util::ErrorCode::kNotFound, "no vm"));
                 }).ok());
  auto fault = bus.call(
      net::Message::request("vm.destroy", "client", "faulty", "c2"));
  ASSERT_TRUE(fault.ok()) << fault.error().to_string();
  EXPECT_TRUE(fault.value().is_fault());
  EXPECT_EQ(fault.value().fault_error().code(), util::ErrorCode::kNotFound);
}

TEST(BusWireFormatTest, XmlBusRoundTrips) {
  exercise_bus(net::WireFormat::kXml);
}

TEST(BusWireFormatTest, BinaryBusRoundTrips) {
  exercise_bus(net::WireFormat::kBinary);
}

// ---- Committed golden fixtures (the wire-compat contract) -------------------

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(VMP_WIRE_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path
                         << " (regenerate with wire_fixture_gen)";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(WireCompatTest, DecodesCommittedMessageFixture) {
  const std::string frame = read_fixture("v1-message.bin");
  ASSERT_FALSE(frame.empty());
  auto decoded = codec::decode_message(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  expect_message_eq(testing::wire_fixture_message(), decoded.value());
}

TEST(WireCompatTest, DecodesCommittedDescriptorFixture) {
  const std::string frame = read_fixture("v1-descriptor.bin");
  ASSERT_FALSE(frame.empty());
  auto decoded = codec::decode_descriptor(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  expect_image_eq(testing::wire_fixture_descriptor(), decoded.value());
}

TEST(WireCompatTest, DecodesCommittedClassAdFixture) {
  const std::string frame = read_fixture("v1-classad.bin");
  ASSERT_FALSE(frame.empty());
  auto decoded = codec::decode_classad(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  expect_classad_eq(testing::wire_fixture_classad(), decoded.value());
}

TEST(WireCompatTest, CurrentEncoderMatchesCurrentVersionFixturesByteForByte) {
  // Any encoding change must come with a kCodecVersion bump and fresh
  // fixtures for the NEW version; silently re-encoding the current version
  // differently would orphan persisted frames.
  ASSERT_EQ(codec::kCodecVersion, 1) << "codec version bumped: commit new "
                                        "v2-*.bin fixtures and extend this "
                                        "test instead of editing v1's";
  EXPECT_EQ(read_fixture("v1-message.bin"),
            codec::encode_message(testing::wire_fixture_message()));
  EXPECT_EQ(read_fixture("v1-descriptor.bin"),
            codec::encode_descriptor(testing::wire_fixture_descriptor()));
  EXPECT_EQ(read_fixture("v1-classad.bin"),
            codec::encode_classad(testing::wire_fixture_classad()));
}

// ---- Robustness sweeps ------------------------------------------------------

/// Decode `frame` as whatever `tag` says it is; must return error, never
/// crash.  Returns true when the decode was (unexpectedly) accepted.
bool decode_any(codec::FrameTag tag, const std::string& frame) {
  switch (tag) {
    case codec::FrameTag::kMessage:
      return codec::decode_message(frame).ok();
    case codec::FrameTag::kDescriptor:
      return codec::decode_descriptor(frame).ok();
    case codec::FrameTag::kClassAd:
      return codec::decode_classad(frame).ok();
    case codec::FrameTag::kSnapshot:
      return false;  // exercised by snapshot_test's sweep
  }
  return false;
}

TEST(RobustnessTest, TruncationAtEveryOffsetFailsCleanly) {
  const struct {
    codec::FrameTag tag;
    std::string frame;
  } cases[] = {
      {codec::FrameTag::kMessage,
       codec::encode_message(testing::wire_fixture_message())},
      {codec::FrameTag::kDescriptor,
       codec::encode_descriptor(testing::wire_fixture_descriptor())},
      {codec::FrameTag::kClassAd,
       codec::encode_classad(testing::wire_fixture_classad())},
  };
  for (const auto& c : cases) {
    for (std::size_t len = 0; len < c.frame.size(); ++len) {
      EXPECT_FALSE(decode_any(c.tag, c.frame.substr(0, len)))
          << codec::frame_tag_name(c.tag) << " truncated to " << len
          << " bytes was accepted";
    }
  }
}

TEST(RobustnessTest, SingleBitFlipsAtEveryPositionFailCleanly) {
  const struct {
    codec::FrameTag tag;
    std::string frame;
  } cases[] = {
      {codec::FrameTag::kMessage,
       codec::encode_message(testing::wire_fixture_message())},
      {codec::FrameTag::kDescriptor,
       codec::encode_descriptor(testing::wire_fixture_descriptor())},
      {codec::FrameTag::kClassAd,
       codec::encode_classad(testing::wire_fixture_classad())},
  };
  for (const auto& c : cases) {
    for (std::size_t byte = 0; byte < c.frame.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string flipped = c.frame;
        flipped[byte] ^= static_cast<char>(1 << bit);
        EXPECT_FALSE(decode_any(c.tag, flipped))
            << codec::frame_tag_name(c.tag) << " with bit " << bit
            << " of byte " << byte << " flipped was accepted";
      }
    }
  }
}

TEST(RobustnessTest, OversizedLengthPrefixInsidePayloadFailsCleanly) {
  // A well-formed frame whose payload claims a giant string: the length
  // prefix must be rejected against remaining bytes, not allocated.
  ByteBuffer payload;
  payload.put_varint(1);             // one classad attribute...
  payload.put_varint(1ull << 62);    // ...whose name claims 2^62 bytes
  payload.append_raw("x");
  const std::string frame =
      codec::seal_frame(codec::FrameTag::kClassAd, payload.take());
  EXPECT_FALSE(codec::decode_classad(frame).ok());
}

TEST(RobustnessTest, HugeElementCountsFailCleanly) {
  ByteBuffer payload;
  payload.put_varint(1ull << 40);  // implausible attribute count
  const std::string frame =
      codec::seal_frame(codec::FrameTag::kClassAd, payload.take());
  EXPECT_FALSE(codec::decode_classad(frame).ok());
}

}  // namespace
}  // namespace vmp
