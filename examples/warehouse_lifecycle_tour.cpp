// Warehouse lifecycle tour: quota pressure, lease-protected eviction,
// zombies, and a crash + warm restart — all deterministic.
//
// The paper's VM Warehouse (§3.2) only ever grows; this walks the
// lifecycle subsystem that makes a finite warehouse safe to operate:
//
//   1. publishes under a disk budget until admission must evict-to-fit;
//   2. clones against a golden, evicts the base mid-clone, and shows the
//      lease turning deletion into a zombie (artefacts intact, index
//      entry gone) until the last clone is destroyed;
//   3. "crashes" (drops every in-memory structure), warm-starts a fresh
//      manager from the descriptors on disk, and shows the rebuilt ledger
//      matching the pre-crash one with the zombie's remains swept as an
//      orphan.
//
// Build & run:  ./build/examples/warehouse_lifecycle_tour
#include <cstdio>
#include <filesystem>
#include <memory>

#include "hypervisor/gsx.h"
#include "lifecycle/lifecycle.h"
#include "storage/artifact_store.h"
#include "warehouse/warehouse.h"

namespace {

vmp::warehouse::GoldenImage golden(const std::string& id,
                                   std::uint64_t mem_mb,
                                   std::uint64_t disk_mb,
                                   std::vector<std::string> performed = {}) {
  vmp::warehouse::GoldenImage image;
  image.id = id;
  image.backend = "vmware-gsx";
  image.spec.os = "linux-mandrake-8.1";
  image.spec.memory_bytes = mem_mb << 20;
  image.spec.suspended = true;
  image.spec.disk = vmp::storage::DiskSpec{
      "disk0", disk_mb << 20, 2, vmp::storage::DiskMode::kNonPersistent};
  image.guest.os = image.spec.os;
  image.performed = std::move(performed);
  return image;
}

void print_ledger(const vmp::lifecycle::LifecycleManager& lifecycle) {
  std::printf("  ledger (%s): %llu/%llu MB used\n",
              lifecycle.policy_name(),
              static_cast<unsigned long long>(lifecycle.used_bytes() >> 20),
              static_cast<unsigned long long>(lifecycle.budget_bytes() >> 20));
  for (const auto& stats : lifecycle.stats()) {
    std::printf("    %-12s %5llu MB  hits=%llu leases=%u%s%s\n",
                stats.id.c_str(),
                static_cast<unsigned long long>(stats.physical_bytes >> 20),
                static_cast<unsigned long long>(stats.hits), stats.leases,
                stats.pinned ? "  [pinned]" : "",
                stats.zombie ? "  [zombie]" : "");
  }
}

}  // namespace

int main() {
  using namespace vmp;

  const auto sandbox =
      std::filesystem::temp_directory_path() / "vmplants-lifecycle-tour";
  std::filesystem::remove_all(sandbox);
  storage::ArtifactStore store(sandbox);
  auto warehouse =
      std::make_unique<warehouse::Warehouse>(&store, "warehouse");

  // ~520 MB budget: enough for three of the four goldens below.
  lifecycle::LifecycleManager::Config config;
  config.disk_budget_bytes = 520ull << 20;
  config.policy = "gdsf";
  auto created = lifecycle::LifecycleManager::create(warehouse.get(), config);
  if (!created.ok()) return 1;
  auto lifecycle = std::move(created).value();

  // -- 1. Quota pressure ----------------------------------------------------
  std::printf("== publish under a %llu MB budget\n",
              static_cast<unsigned long long>(config.disk_budget_bytes >> 20));
  if (!lifecycle->publish(golden("base", 32, 96)).ok()) return 1;
  if (!lifecycle->publish(golden("matlab", 32, 96, {"install-matlab"})).ok())
    return 1;
  if (!lifecycle->publish(golden("bulk-data", 32, 160)).ok()) return 1;
  // Two production orders lease 'base' — GDSF now values it well above the
  // larger, never-used 'bulk-data'.
  for (int i = 0; i < 2; ++i) {
    if (!lifecycle->acquire("base").ok()) return 1;
    lifecycle->release("base");
  }
  print_ledger(*lifecycle);

  // The fourth image does not fit: admission must evict in policy order.
  // GDSF picks 'bulk-data' — biggest footprint, no hits, cheap per byte.
  if (!lifecycle->pin("matlab", true).ok()) return 1;
  std::printf("\n== publish 'workspace' (needs eviction; matlab pinned)\n");
  if (!lifecycle->publish(golden("workspace", 64, 128)).ok()) return 1;
  print_ledger(*lifecycle);

  // -- 2. Leases turn eviction into zombies ---------------------------------
  std::printf("\n== clone 'base', then evict it while the clone lives\n");
  hv::GsxHypervisor gsx(&store);
  gsx.set_lease_hook(lifecycle.get());
  if (!store.make_dir("clones").ok()) return 1;
  auto base = warehouse->lookup("base");
  if (!base.ok()) return 1;
  hv::CloneSource source;
  source.layout = base.value().layout;
  source.spec = base.value().spec;
  source.guest = base.value().guest;
  source.golden_id = "base";
  if (!gsx.clone_vm(source, "clones/vm1", "vm1").ok()) return 1;

  if (!lifecycle->evict("base").ok()) return 1;
  std::printf("  evicted leased 'base': in index=%s, artefacts on disk=%s, "
              "zombies=%zu\n",
              warehouse->contains("base") ? "yes" : "no",
              store.exists("warehouse/base/disk0-s001.vmdk") ? "yes" : "no",
              lifecycle->zombie_count());
  auto refused = gsx.clone_vm(source, "clones/vm2", "vm2");
  std::printf("  new clone against the zombie: %s\n",
              refused.ok() ? "allowed (BUG)"
                           : refused.error().message().c_str());

  // -- 3. Crash + warm restart ----------------------------------------------
  // Drop every in-memory structure (the "crash"); the clone's lease dies
  // with the process, so the zombie's remains become an orphan on disk.
  std::printf("\n== crash: discard index + ledger, warm-start from disk\n");
  // What a descriptor-driven rebuild must reproduce: the LIVE entries
  // (the zombie's descriptor is already gone — it can never resurrect).
  std::uint64_t live_before_crash = 0;
  for (const auto& stats : lifecycle->stats()) {
    if (!stats.zombie) live_before_crash += stats.physical_bytes;
  }
  gsx.set_lease_hook(nullptr);
  lifecycle.reset();
  warehouse = std::make_unique<warehouse::Warehouse>(&store, "warehouse");
  created = lifecycle::LifecycleManager::create(warehouse.get(), config);
  if (!created.ok()) return 1;
  lifecycle = std::move(created).value();
  if (!lifecycle->warm_start().ok()) return 1;
  print_ledger(*lifecycle);
  std::printf("  live bytes: pre-crash %llu MB, rebuilt %llu MB (%s)\n",
              static_cast<unsigned long long>(live_before_crash >> 20),
              static_cast<unsigned long long>(lifecycle->used_bytes() >> 20),
              live_before_crash == lifecycle->used_bytes() ? "identical"
                                                           : "DIFFER");
  std::printf("  zombie 'base' resurrected: %s\n",
              warehouse->contains("base") ? "yes (BUG)" : "no");

  auto swept = lifecycle->reap_orphans();
  if (!swept.ok()) return 1;
  std::printf("  orphan sweep: %zu directories, %llu MB freed\n",
              swept.value().directories,
              static_cast<unsigned long long>(swept.value().bytes_freed >> 20));

  std::filesystem::remove_all(sandbox);
  return 0;
}
