// Overhead of the observability plane on production paths.
//
// The tracer's disarmed cost is one relaxed atomic load per ScopedSpan —
// the contract that lets every hot path stay instrumented all the time.
// Measured four ways so regressions in the "nobody is tracing" path show
// up:
//   1. ScopedSpan construct+destruct, tracer disarmed  (target: <= 5 ns/op)
//   2. ScopedSpan construct+destruct, tracer armed     (reported, not bounded)
//   3. Counter::add and Timer::record (always-on metrics)
//   4. MessageBus::call round-trip, disarmed vs armed
#include <chrono>
#include <cstdio>

#include "common.h"
#include "net/bus.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  using namespace vmp;
  bench::print_header(
      "observability overhead — cost of spans and metrics on hot paths",
      "disarmed ScopedSpan is one relaxed atomic load (<= 5 ns/op); "
      "counters are sharded relaxed atomics and stay armed always");

  constexpr int kSpanIters = 2'000'000;
  constexpr int kMetricIters = 2'000'000;
  constexpr int kCallIters = 20'000;

  obs::Tracer& tracer = obs::Tracer::instance();

  tracer.disarm();
  {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kSpanIters; ++i) {
      obs::ScopedSpan span("bench.noop", "bench");
    }
    const double ns = seconds_since(start) * 1e9 / kSpanIters;
    std::printf("span disarmed        : %8.2f ns/op %s\n", ns,
                ns <= 5.0 ? "(within 5 ns budget)" : "(OVER 5 ns budget!)");
  }

  tracer.arm();
  {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kSpanIters / 20; ++i) {
      obs::ScopedSpan span("bench.noop", "bench");
    }
    std::printf("span armed           : %8.2f ns/op (%zu spans recorded)\n",
                seconds_since(start) * 1e9 / (kSpanIters / 20),
                tracer.span_count());
  }
  tracer.disarm();

  {
    obs::Counter* c = obs::MetricsRegistry::instance().counter("bench.count");
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kMetricIters; ++i) c->add();
    std::printf("counter add          : %8.2f ns/op\n",
                seconds_since(start) * 1e9 / kMetricIters);
  }
  {
    obs::Timer* t = obs::MetricsRegistry::instance().timer("bench.seconds");
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kMetricIters; ++i) t->record(1e-6);
    std::printf("timer record         : %8.2f ns/op\n",
                seconds_since(start) * 1e9 / kMetricIters);
  }

  // A full bus round-trip with a trivial echo handler, disarmed vs armed.
  net::MessageBus bus;
  (void)bus.register_endpoint("echo", [](const net::Message& m) {
    return net::Message::response_to(m);
  });
  const auto call_sweep = [&](const char* label) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kCallIters; ++i) {
      net::Message m = net::Message::request("echo.ping", "bench", "echo",
                                             "c" + std::to_string(i));
      (void)bus.call(m);
    }
    std::printf("%s: %8.2f us/call\n", label,
                seconds_since(start) * 1e6 / kCallIters);
  };
  call_sweep("bus.call disarmed    ");
  tracer.arm();
  call_sweep("bus.call armed       ");
  tracer.disarm();

  return 0;
}
