#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace vmp::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;
LogSink g_sink;                       // guarded by g_mutex
std::function<double()> g_clock;      // guarded by g_mutex

double wall_seconds() {
  static const auto start = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

void set_log_clock(std::function<double()> clock) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_clock = std::move(clock);
}

void log_line(LogLevel level, const std::string& component,
              const std::string& message) {
  if (level < log_level()) return;
  LogRecord record;
  record.level = level;
  record.component = component;
  record.message = message;
  record.wall_time_s = wall_seconds();

  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_clock) record.sim_time_s = g_clock();
  if (g_sink) {
    g_sink(record);
    return;
  }
  if (record.sim_time_s >= 0.0) {
    std::fprintf(stderr, "[%s] t=%.3f %s: %s\n", level_tag(level),
                 record.sim_time_s, component.c_str(), message.c_str());
  } else {
    std::fprintf(stderr, "[%s] %s: %s\n", level_tag(level), component.c_str(),
                 message.c_str());
  }
}

}  // namespace vmp::util
