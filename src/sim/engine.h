// Discrete-event simulation engine.
//
// The paper's evaluation (Figures 4-6) measures latency distributions on an
// 8-node cluster whose shape is produced by contention: concurrent clones
// share NFS bandwidth, disks serialize, and host memory pressure slows
// resume.  This engine provides the substrate those models run on: a
// virtual clock, an ordered event queue with stable tie-breaking, and
// cancellable events.
//
// Single-threaded by design — determinism is a core requirement (DESIGN.md
// §5) — with callback-chaining rather than coroutines so the control flow
// stays debuggable in stack traces.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace vmp::sim {

/// Simulated time, in seconds since simulation start.
using SimTime = double;

/// Handle for cancelling a scheduled event.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event has neither fired nor been cancelled.
  bool pending() const { return state_ && !*state_; }

  /// Cancel; returns true if the event had been pending.
  bool cancel() {
    if (!pending()) return false;
    *state_ = true;
    return true;
  }

 private:
  friend class Engine;
  explicit EventHandle(std::shared_ptr<bool> state)
      : state_(std::move(state)) {}
  std::shared_ptr<bool> state_;  // true = cancelled-or-fired
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` to run at now()+delay.  delay < 0 is clamped to 0.
  /// Events at equal times fire in scheduling order (stable).
  EventHandle schedule(SimTime delay, std::function<void()> fn);

  /// Schedule at an absolute time (>= now()).
  EventHandle schedule_at(SimTime when, std::function<void()> fn);

  /// Run until the queue drains.  Returns the number of events fired.
  std::size_t run();

  /// Run until the queue drains or the clock would pass `deadline`.
  /// Events at exactly `deadline` do fire.
  std::size_t run_until(SimTime deadline);

  /// Fire at most one event; returns false if the queue is empty.
  bool step();

  std::size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace vmp::sim
