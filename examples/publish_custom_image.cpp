// Application-centric image publishing (paper Sections 1 and 3.2).
//
// "Users can define customized execution environments (where Grid
// applications and their preferred environments are encapsulated), which
// can then be archived, copied, shared (with other users) and instantiated
// as multiple run-time clones."
//
// This example plays the VM-installer role: create a workspace, install an
// application into it (matlab), suspend the machine, publish it to the
// warehouse with its action history — then show that a colleague's request
// for the same environment is satisfied ENTIRELY from cache (zero
// configuration actions at create time), while a request for a different
// user still partially matches the original golden.
//
// Build & run:  ./build/examples/publish_custom_image
#include <cstdio>
#include <filesystem>

#include "core/plant.h"
#include "core/shop.h"
#include "storage/artifact_store.h"
#include "warehouse/warehouse.h"
#include "workload/dag_library.h"
#include "workload/request_gen.h"

int main() {
  using namespace vmp;

  const auto sandbox =
      std::filesystem::temp_directory_path() / "vmplants-publish-example";
  std::filesystem::remove_all(sandbox);
  storage::ArtifactStore store(sandbox);
  warehouse::Warehouse wh(&store, "warehouse");
  if (!workload::publish_paper_goldens(&wh, {64}).ok()) return 1;

  net::MessageBus bus;
  net::ServiceRegistry registry;
  core::PlantConfig pc;
  pc.name = "plant0";
  core::VmPlant plant(pc, &store, &wh);
  (void)plant.attach_to_bus(&bus, &registry);
  core::VmShop shop(core::ShopConfig{}, &bus, &registry);
  (void)shop.attach_to_bus();

  // 1. The installer's request: a workspace plus the matlab application.
  core::CreateRequest request = workload::workspace_request(64, 0, "ufl.edu");
  dag::Action app("APP", "install-package");
  app.set_param("package", "matlab-6.5");
  (void)request.config.add_action(app);
  (void)request.config.add_edge("I", "APP");

  auto ad = shop.create(request);
  if (!ad.ok()) {
    std::fprintf(stderr, "create failed: %s\n", ad.error().to_string().c_str());
    return 1;
  }
  const std::string vm_id = ad.value().get_string(core::attrs::kVmId).value();
  std::printf("installer VM %s created: %lld cached + %lld executed actions\n",
              vm_id.c_str(),
              static_cast<long long>(
                  ad.value().get_integer(core::attrs::kActionsSatisfied).value()),
              static_cast<long long>(
                  ad.value().get_integer(core::attrs::kActionsExecuted).value()));

  // 2. Suspend and publish the configured machine with its full history.
  auto& hypervisor = plant.hypervisor();
  if (!hypervisor.suspend_vm(vm_id).ok()) return 1;
  const hv::VmInstance* vm = hypervisor.find(vm_id);

  std::vector<std::string> performed;
  const auto order = request.config.topological_sort().value();
  for (const std::string& id : order) {
    performed.push_back(request.config.action(id)->signature());
  }
  auto published = wh.publish_new("golden-matlab-workspace", "vmware-gsx",
                                  vm->spec, vm->guest, performed);
  if (!published.ok()) {
    std::fprintf(stderr, "publish failed: %s\n",
                 published.error().to_string().c_str());
    return 1;
  }
  std::printf("published '%s' with %zu performed actions\n\n",
              published.value().id.c_str(), performed.size());

  // 3. A colleague asks for the IDENTICAL environment: full cache hit.
  auto clone_ad = shop.create(request);
  if (!clone_ad.ok()) return 1;
  std::printf("identical request -> golden '%s', cached=%lld executed=%lld\n",
              clone_ad.value().get_string(core::attrs::kGoldenImage).value().c_str(),
              static_cast<long long>(
                  clone_ad.value().get_integer(core::attrs::kActionsSatisfied).value()),
              static_cast<long long>(
                  clone_ad.value().get_integer(core::attrs::kActionsExecuted).value()));

  // 4. A different user's workspace (no matlab): the matlab image fails
  //    the Subset test, so the PPP falls back to the base golden.
  core::CreateRequest other_user = workload::workspace_request(64, 1, "ufl.edu");
  auto other_ad = shop.create(other_user);
  if (!other_ad.ok()) return 1;
  std::printf("different user     -> golden '%s', cached=%lld executed=%lld\n",
              other_ad.value().get_string(core::attrs::kGoldenImage).value().c_str(),
              static_cast<long long>(
                  other_ad.value().get_integer(core::attrs::kActionsSatisfied).value()),
              static_cast<long long>(
                  other_ad.value().get_integer(core::attrs::kActionsExecuted).value()));

  std::printf("\nwarehouse now holds %zu golden machines\n", wh.size());
  std::filesystem::remove_all(sandbox);
  return 0;
}
