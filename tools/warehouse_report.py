#!/usr/bin/env python3
"""Summarize warehouse lifecycle churn: hit rates, evictions, reclaimed bytes.

Accepts either (auto-detected per line, both may be mixed in one input):

  * BENCH_JSON lines from bench/warehouse_churn —
        BENCH_JSON {"name": "churn.gdsf", "hit_rate": 0.58, ...}
    rendered as a per-policy hit/miss table;

  * metrics-export JSONL (FleetAggregator::export_jsonl, or any file of
    {"id": ..., "attrs": {...}} ads) — the lifecycle_* attributes
    (lifecycle.* metric names in their classad-folded spelling) are
    rendered as a lease/eviction/reclaim summary per exporting plant;

  * --journal DIR — decode the binary event-journal segments the lifecycle
    manager writes (obs::Journal, seg-NNNNNN.vmj; DESIGN.md §13) and
    reconstruct the publish/eviction timeline: per-image lifespan, acquire
    count, eviction cause (evicted / zombified / reaped), bytes reclaimed.
    Replay is torn-tail tolerant, exactly like the C++ side: a record cut
    mid-write by a crash drops the rest of that segment, replay resumes at
    the next segment boundary, and the tear is reported as such.

Usage:
    build/bench/warehouse_churn | python3 tools/warehouse_report.py -
    python3 tools/warehouse_report.py fleet.jsonl [--json]
    python3 tools/warehouse_report.py --journal store/journal [--json]
"""

import argparse
import json
import pathlib
import re
import struct
import sys

BENCH_LINE = re.compile(r"^BENCH_JSON\s+(\{.*\})\s*$")

# -- Event-journal decoding (mirrors src/obs/journal.{h,cpp}) -----------------

JOURNAL_EVENTS = {
    1: "publish_reserve", 2: "publish_commit", 3: "publish_reject",
    4: "evict_begin", 5: "evict_commit", 6: "evict_rollback",
    7: "lease_acquire", 8: "lease_release", 9: "zombify", 10: "reap",
    11: "orphan_reap", 12: "warm_start", 13: "adopt", 14: "fault_fired",
}

# payload := u8 kind | u64 seq | f64 time_s | f64 wall_s | i64 bytes_delta |
#            u64 aux | f64 value | u16 id_len | id
#            [u16 trace_len | trace]     (trace block only when non-empty;
#            records without it are the pre-trace format, byte-identical)
JOURNAL_HEAD = struct.Struct("<BQddqQdH")
JOURNAL_MAX_RECORD = 64 * 1024


def fnv1a32(data):
    acc = 2166136261
    for byte in data:
        acc = ((acc ^ byte) * 16777619) & 0xFFFFFFFF
    return acc


def decode_journal_record(buf, offset):
    """One record at offset -> (record, next_offset); (None, _) when torn."""
    if offset + 4 > len(buf):
        return None, offset
    (length,) = struct.unpack_from("<I", buf, offset)
    if (length < JOURNAL_HEAD.size or length > JOURNAL_MAX_RECORD
            or offset + 8 + length > len(buf)):
        return None, offset
    payload = buf[offset + 4:offset + 4 + length]
    (checksum,) = struct.unpack_from("<I", buf, offset + 4 + length)
    if fnv1a32(payload) != checksum:
        return None, offset
    kind, seq, time_s, wall_s, bytes_delta, aux, value, id_len = \
        JOURNAL_HEAD.unpack_from(payload)
    base = JOURNAL_HEAD.size
    trace = ""
    if base + id_len != length:
        # Trace-stamped record: u16 trace_len | trace after the id.
        if length < base + id_len + 2:
            return None, offset
        (trace_len,) = struct.unpack_from("<H", payload, base + id_len)
        if base + id_len + 2 + trace_len != length:
            return None, offset
        trace = payload[base + id_len + 2:].decode("utf-8", "replace")
    return {
        "seq": seq,
        "event": JOURNAL_EVENTS.get(kind, "unknown"),
        "time_s": time_s,
        "wall_s": wall_s,
        "bytes_delta": bytes_delta,
        "aux": aux,
        "value": value,
        "image": payload[base:base + id_len].decode("utf-8", "replace"),
        "trace": trace,
    }, offset + 8 + length


def replay_journal(journal_dir):
    """All valid records from seg-*.vmj in name order, C++ replay semantics:
    a torn/corrupt record drops the rest of THAT segment (the crash tail)
    and replay resumes at the next segment boundary — post-crash reopens
    write into fresh segments that must still be read.

    Returns (records, segment_count, tears); each tear names the segment,
    the offset replay resynced at, and how many trailing bytes it dropped,
    so an operator can tell ONE crash tail from systematic corruption.
    Raises OSError when the directory or a segment cannot be read."""
    records = []
    tears = []
    segments = sorted(pathlib.Path(journal_dir).glob("seg-*.vmj"))
    for segment in segments:
        buf = segment.read_bytes()
        offset = 0
        decoded = 0
        while offset < len(buf):
            record, offset = decode_journal_record(buf, offset)
            if record is None:
                tears.append({
                    "segment": segment.name,
                    "offset": offset,
                    "bytes_dropped": len(buf) - offset,
                    "records_kept": decoded,
                })
                break
            decoded += 1
            records.append(record)
    return records, len(segments), tears


def journal_timeline(records):
    """Fold the event stream into one row per image (latest incarnation
    wins for publish time; counters accumulate across republishes)."""
    images = {}
    totals = {"reclaimed": 0, "fault_firings": 0, "warm_starts": 0}

    def row(image):
        return images.setdefault(image, {
            "published_t": None, "end_t": None, "fate": "resident",
            "publishes": 0, "acquires": 0, "rejects": 0,
            "bytes": 0, "reclaimed": 0, "lifespan_s": None,
        })

    for rec in records:
        event, image = rec["event"], rec["image"]
        if event == "fault_fired":
            totals["fault_firings"] += 1
            continue
        if event == "warm_start":
            totals["warm_starts"] += 1
            continue
        if event == "orphan_reap":
            totals["reclaimed"] += -rec["bytes_delta"]
            continue
        if not image:
            continue
        entry = row(image)
        if event in ("publish_commit", "adopt"):
            entry["publishes"] += 1
            entry["published_t"] = rec["time_s"]
            entry["end_t"] = None
            entry["fate"] = "resident"
            entry["bytes"] = rec["bytes_delta"]
        elif event == "publish_reject":
            entry["rejects"] += 1
        elif event == "lease_acquire":
            entry["acquires"] += 1
        elif event == "evict_commit":
            entry["fate"] = "evicted"
            entry["end_t"] = rec["time_s"]
            entry["reclaimed"] += -rec["bytes_delta"]
            totals["reclaimed"] += -rec["bytes_delta"]
        elif event == "zombify":
            entry["fate"] = "zombified"
            entry["end_t"] = rec["time_s"]
        elif event == "reap":
            entry["fate"] = "reaped"
            entry["end_t"] = rec["time_s"]
            entry["reclaimed"] += -rec["bytes_delta"]
            totals["reclaimed"] += -rec["bytes_delta"]

    for entry in images.values():
        if entry["published_t"] is not None and entry["end_t"] is not None:
            entry["lifespan_s"] = entry["end_t"] - entry["published_t"]
    return images, totals


def print_journal(images, totals, records, segments, tears):
    print(f"journal: {len(records)} records in {segments} segment(s)"
          + ("  [torn tail dropped]" if tears else ""))
    for tear in tears:
        print(f"warning: {tear['segment']}: torn record at offset "
              f"{tear['offset']}, dropped {tear['bytes_dropped']} trailing "
              f"byte(s) after {tear['records_kept']} record(s); replay "
              f"resynced at the next segment boundary", file=sys.stderr)
    header = (f"{'image':<24} {'fate':<10} {'publishes':>9} {'acquires':>9} "
              f"{'rejects':>8} {'size MB':>8} {'reclaimed MB':>13} "
              f"{'lifespan s':>11}")
    print(header)
    print("-" * len(header))
    for image in sorted(images):
        entry = images[image]
        lifespan = (f"{entry['lifespan_s']:>11.3f}"
                    if entry["lifespan_s"] is not None else f"{'-':>11}")
        print(f"{image:<24} {entry['fate']:<10} {entry['publishes']:>9} "
              f"{entry['acquires']:>9} {entry['rejects']:>8} "
              f"{entry['bytes'] / 2**20:>8.1f} "
              f"{entry['reclaimed'] / 2**20:>13.1f} {lifespan}")
    print(f"\ntotal reclaimed: {totals['reclaimed'] / 2**20:.1f} MB"
          f"  warm starts: {totals['warm_starts']}"
          f"  fault firings: {totals['fault_firings']}")


def load(stream):
    """Split input lines into churn records and lifecycle ads."""
    churn = {}
    ads = []
    for line in stream:
        line = line.strip()
        match = BENCH_LINE.match(line)
        if match:
            record = json.loads(match.group(1))
            name = record.get("name", "")
            if name.startswith("churn."):
                churn[name[len("churn."):]] = record
            continue
        if not line.startswith("{"):
            continue
        try:
            ad = json.loads(line)
        except json.JSONDecodeError:
            continue
        attrs = ad.get("attrs", {})
        if any(key.startswith("lifecycle_") for key in attrs):
            ads.append(ad)
    return churn, ads


def churn_summary(churn):
    policies = {}
    for policy, record in sorted(churn.items()):
        hits = int(record.get("hits", 0))
        misses = int(record.get("misses", 0))
        total = hits + misses
        policies[policy] = {
            "hit_rate": float(record.get("hit_rate",
                                         hits / total if total else 0.0)),
            "hits": hits,
            "misses": misses,
            "rejected_publishes": int(record.get("failures", 0)),
        }
    return policies


def print_churn(policies):
    header = f"{'policy':<8} {'hit-rate':>9} {'hits':>8} {'misses':>8} {'rejected':>9}"
    print(header)
    print("-" * len(header))
    for policy, row in policies.items():
        print(f"{policy:<8} {row['hit_rate']:>9.4f} {row['hits']:>8} "
              f"{row['misses']:>8} {row['rejected_publishes']:>9}")
    if "gdsf" in policies and "lru" in policies and policies["lru"]["hit_rate"]:
        ratio = policies["gdsf"]["hit_rate"] / policies["lru"]["hit_rate"]
        print(f"\ngdsf/lru hit-rate ratio: {ratio:.2f}x at equal quota")


def lifecycle_summary(ads):
    """Latest lifecycle_* attrs per ad id (a plant, or obs://metrics)."""
    plants = {}
    for ad in ads:
        attrs = ad.get("attrs", {})
        hit = int(attrs.get("lifecycle_lease_hit_count", 0))
        miss = int(attrs.get("lifecycle_lease_miss_count", 0))
        total = hit + miss
        plants[ad.get("id", "?")] = {
            "lease_hits": hit,
            "lease_misses": miss,
            "lease_hit_rate": hit / total if total else 1.0,
            "evictions": int(attrs.get("lifecycle_evict_count", 0)),
            "zombie_evictions": int(attrs.get("lifecycle_evict_zombie_count", 0)),
            "zombie_reaps": int(attrs.get("lifecycle_reap_count", 0)),
            "orphan_reaps": int(attrs.get("lifecycle_orphan_reap_count", 0)),
            "rejected_publishes": int(
                attrs.get("lifecycle_publish_reject_count", 0)),
            "bytes_reclaimed": int(
                attrs.get("lifecycle_bytes_reclaimed_count", 0)),
            "used_bytes": int(attrs.get("lifecycle_used_bytes_gauge", 0)),
            "zombies_now": int(attrs.get("lifecycle_zombies_gauge", 0)),
        }
    return plants


def print_lifecycle(plants):
    header = (f"{'source':<24} {'lease-hit%':>10} {'evict':>6} {'zombie':>7} "
              f"{'reaped':>7} {'orphans':>8} {'reject':>7} "
              f"{'reclaimed MB':>13} {'used MB':>9} {'zombies':>8}")
    print(header)
    print("-" * len(header))
    for source in sorted(plants):
        row = plants[source]
        print(f"{source:<24} {row['lease_hit_rate'] * 100:>9.1f}% "
              f"{row['evictions']:>6} {row['zombie_evictions']:>7} "
              f"{row['zombie_reaps']:>7} {row['orphan_reaps']:>8} "
              f"{row['rejected_publishes']:>7} "
              f"{row['bytes_reclaimed'] / 2**20:>13.1f} "
              f"{row['used_bytes'] / 2**20:>9.1f} {row['zombies_now']:>8}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("input", nargs="?",
                        help="BENCH_JSON / metrics-JSONL file, or - for stdin")
    parser.add_argument("--journal", metavar="DIR",
                        help="event-journal directory (seg-*.vmj segments) "
                             "to reconstruct the publish/eviction timeline")
    parser.add_argument("--json", action="store_true",
                        help="emit one machine-readable summary object")
    args = parser.parse_args()
    if args.input is None and args.journal is None:
        parser.error("need an input file (or -) and/or --journal DIR")

    if args.journal is not None:
        if not pathlib.Path(args.journal).is_dir():
            print(f"--journal: {args.journal} is not a directory",
                  file=sys.stderr)
            return 1
        try:
            records, segments, tears = replay_journal(args.journal)
        except OSError as err:
            print(f"--journal: cannot read {args.journal}: {err}",
                  file=sys.stderr)
            return 1
        images, totals = journal_timeline(records)
        if args.json:
            print(json.dumps({"records": len(records), "segments": segments,
                              "torn_tail": bool(tears), "tears": tears,
                              "images": images, "totals": totals}, indent=2))
        else:
            print_journal(images, totals, records, segments, tears)
        if args.input is None:
            return 0
        print()

    if args.input == "-":
        churn, ads = load(sys.stdin)
    else:
        with open(args.input, "r", encoding="utf-8") as fh:
            churn, ads = load(fh)

    policies = churn_summary(churn)
    plants = lifecycle_summary(ads)
    if not policies and not plants:
        print("no churn BENCH_JSON lines or lifecycle_* ads found",
              file=sys.stderr)
        return 1

    if args.json:
        print(json.dumps({"churn": policies, "lifecycle": plants}, indent=2))
        return 0

    if policies:
        print_churn(policies)
    if plants:
        if policies:
            print()
        print_lifecycle(plants)
    return 0


if __name__ == "__main__":
    sys.exit(main())
