#include "fault/fault.h"

#include <algorithm>

#include "util/strings.h"

namespace vmp::fault {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

const std::vector<std::string>& known_points() {
  static const std::vector<std::string> kPoints = {
      points::kBusSend,          points::kBusTimeout,
      points::kStoreRead,        points::kStoreWrite,
      points::kStoreRemove,      points::kHypervisorResume,
      points::kPlantConfigureAction, points::kShopBid,
  };
  return kPoints;
}

ErrorCode default_code(const std::string& point) {
  if (point == points::kBusTimeout) return ErrorCode::kTimeout;
  if (point == points::kShopBid) return ErrorCode::kTimeout;
  if (point == points::kHypervisorResume) return ErrorCode::kInternal;
  if (point == points::kPlantConfigureAction) {
    return ErrorCode::kConfigActionFailed;
  }
  return ErrorCode::kUnavailable;
}

namespace {

bool is_known_point(const std::string& point) {
  const auto& all = known_points();
  return std::find(all.begin(), all.end(), point) != all.end();
}

Result<std::uint64_t> parse_u64(const std::string& key,
                                const std::string& value) {
  long long parsed = 0;
  if (!util::parse_int64(value, &parsed) || parsed < 0) {
    return Result<std::uint64_t>(Error(
        ErrorCode::kParseError,
        "fault spec: '" + key + "' expects an integer, got '" + value + "'"));
  }
  return static_cast<std::uint64_t>(parsed);
}

Result<double> parse_f64(const std::string& key, const std::string& value) {
  double parsed = 0.0;
  if (!util::parse_double(value, &parsed)) {
    return Result<double>(Error(
        ErrorCode::kParseError,
        "fault spec: '" + key + "' expects a number, got '" + value + "'"));
  }
  return parsed;
}

Status apply_key(FaultRule* rule, const std::string& key,
                 const std::string& value) {
  if (key == "after") {
    auto n = parse_u64(key, value);
    if (!n.ok()) return n.error();
    rule->after = n.value();
    return Status();
  }
  if (key == "times") {
    auto n = parse_u64(key, value);
    if (!n.ok()) return n.error();
    rule->times = n.value();
    return Status();
  }
  if (key == "p") {
    auto p = parse_f64(key, value);
    if (!p.ok()) return p.error();
    if (p.value() < 0.0 || p.value() > 1.0) {
      return Status(ErrorCode::kParseError,
                    "fault spec: p must be in [0,1], got " + value);
    }
    rule->probability = p.value();
    return Status();
  }
  if (key == "from") {
    auto t = parse_f64(key, value);
    if (!t.ok()) return t.error();
    rule->from_time = t.value();
    return Status();
  }
  if (key == "until") {
    auto t = parse_f64(key, value);
    if (!t.ok()) return t.error();
    rule->until_time = t.value();
    return Status();
  }
  if (key == "code") {
    auto code = util::error_code_from_name(value);
    if (!code.has_value()) {
      return Status(ErrorCode::kParseError,
                    "fault spec: unknown error code '" + value + "'");
    }
    if (*code == ErrorCode::kOk) {
      return Status(ErrorCode::kParseError,
                    "fault spec: a fault cannot surface OK");
    }
    rule->code = *code;
    rule->code_explicit = true;
    return Status();
  }
  if (key == "target") {
    rule->target = value;
    return Status();
  }
  if (key == "msg") {
    rule->message = value;
    return Status();
  }
  return Status(ErrorCode::kParseError,
                "fault spec: unknown key '" + key + "'");
}

Result<FaultRule> parse_rule(const std::string& text) {
  const std::string trimmed(util::trim(text));
  const std::size_t colon = trimmed.find(':');
  FaultRule rule;
  rule.point = std::string(util::trim(
      colon == std::string::npos ? trimmed : trimmed.substr(0, colon)));
  if (rule.point.empty()) {
    return Result<FaultRule>(
        Error(ErrorCode::kParseError, "fault spec: empty injection point"));
  }
  if (!is_known_point(rule.point)) {
    return Result<FaultRule>(Error(
        ErrorCode::kParseError,
        "fault spec: unknown injection point '" + rule.point + "'"));
  }
  rule.code = default_code(rule.point);
  if (colon != std::string::npos) {
    for (const std::string& kv :
         util::split(trimmed.substr(colon + 1), ',')) {
      const std::string pair(util::trim(kv));
      if (pair.empty()) continue;
      const std::size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        return Result<FaultRule>(Error(
            ErrorCode::kParseError,
            "fault spec: expected key=value, got '" + pair + "'"));
      }
      VMP_RETURN_IF_ERROR_AS(
          apply_key(&rule, std::string(util::trim(pair.substr(0, eq))),
                    std::string(util::trim(pair.substr(eq + 1)))),
          FaultRule);
    }
  }
  return rule;
}

}  // namespace

std::string FaultRule::to_spec_string() const {
  std::string out = point;
  std::string opts;
  auto add = [&opts](const std::string& kv) {
    if (!opts.empty()) opts += ',';
    opts += kv;
  };
  if (!target.empty()) add("target=" + target);
  if (after != 0) add("after=" + std::to_string(after));
  if (times != 0) add("times=" + std::to_string(times));
  if (probability < 1.0) add("p=" + util::format_double(probability));
  if (from_time > 0.0) add("from=" + util::format_double(from_time));
  if (until_time >= 0.0) add("until=" + util::format_double(until_time));
  if (code_explicit) add(std::string("code=") + util::error_code_name(code));
  if (!message.empty()) add("msg=" + message);
  if (!opts.empty()) out += ':' + opts;
  return out;
}

Result<FaultPlan> FaultPlan::parse(const std::string& spec,
                                   std::uint64_t seed) {
  FaultPlan plan;
  plan.seed_ = seed;
  for (const std::string& rule_text : util::split(spec, ';')) {
    if (util::trim(rule_text).empty()) continue;
    auto rule = parse_rule(rule_text);
    if (!rule.ok()) return rule.propagate<FaultPlan>();
    plan.rules_.push_back(std::move(rule).value());
  }
  return plan;
}

Result<FaultPlan> FaultPlan::from_xml(const xml::Element& root) {
  if (root.name() != "fault-plan") {
    return Result<FaultPlan>(Error(
        ErrorCode::kParseError, "fault plan: expected <fault-plan> root"));
  }
  FaultPlan plan;
  plan.seed_ = static_cast<std::uint64_t>(root.attr_int("seed", 1));
  for (const xml::Element* elem : root.children_named("fault")) {
    if (!elem->has_attr("point")) {
      return Result<FaultPlan>(Error(
          ErrorCode::kParseError, "fault plan: <fault> missing point"));
    }
    // Reassemble the element as a spec rule so both forms share one
    // validation path.
    std::string spec = elem->attr("point");
    std::string opts;
    for (const auto& [key, value] : elem->attrs()) {
      if (key == "point") continue;
      if (!opts.empty()) opts += ',';
      opts += key + "=" + value;
    }
    if (!opts.empty()) spec += ':' + opts;
    auto rule = parse_rule(spec);
    if (!rule.ok()) return rule.propagate<FaultPlan>();
    plan.rules_.push_back(std::move(rule).value());
  }
  return plan;
}

Result<FaultPlan> FaultPlan::from_xml_string(const std::string& text) {
  auto doc = xml::parse(text);
  if (!doc.ok()) return doc.propagate<FaultPlan>();
  return from_xml(*doc.value());
}

std::string FaultPlan::to_spec_string() const {
  std::string out;
  for (const FaultRule& rule : rules_) {
    if (!out.empty()) out += ';';
    out += rule.to_spec_string();
  }
  return out;
}

// ---------------------------------------------------------------------------
// FaultRegistry
// ---------------------------------------------------------------------------

FaultRegistry& FaultRegistry::instance() {
  static FaultRegistry registry;
  return registry;
}

void FaultRegistry::install(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  plan_ = std::move(plan);
  live_ = plan_.rules();
  seen_.assign(live_.size(), 0);
  rule_fired_.assign(live_.size(), 0);
  rng_ = util::SplitMix64(plan_.seed());
  clock_ = nullptr;
  decider_ = nullptr;
  report_ = util::FaultReport();
  sequence_.clear();
  sequence_traces_.clear();
  checks_ = 0;
  armed_.store(true, std::memory_order_relaxed);
}

void FaultRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_.store(false, std::memory_order_relaxed);
  plan_ = FaultPlan();
  live_.clear();
  seen_.clear();
  rule_fired_.clear();
  clock_ = nullptr;
  decider_ = nullptr;
  report_ = util::FaultReport();
  sequence_.clear();
  sequence_traces_.clear();
  checks_ = 0;
}

void FaultRegistry::set_clock(std::function<double()> clock) {
  std::lock_guard<std::mutex> lock(mutex_);
  clock_ = std::move(clock);
}

void FaultRegistry::set_decider(Decider decider) {
  std::lock_guard<std::mutex> lock(mutex_);
  decider_ = std::move(decider);
}

bool FaultRegistry::exploring() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<bool>(decider_);
}

void FaultRegistry::set_fire_listener(FireListener listener) {
  std::lock_guard<std::mutex> lock(mutex_);
  fire_listener_ = std::move(listener);
}

void FaultRegistry::set_trace_provider(TraceProvider provider) {
  std::lock_guard<std::mutex> lock(mutex_);
  trace_provider_ = std::move(provider);
}

Status FaultRegistry::consult(const std::string& point,
                              const std::string& detail) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!armed_.load(std::memory_order_relaxed)) return Status();
  ++checks_;
  const double now = clock_ ? clock_() : 0.0;
  for (std::size_t i = 0; i < live_.size(); ++i) {
    const FaultRule& rule = live_[i];
    if (rule.point != point) continue;
    if (!rule.target.empty() &&
        detail.find(rule.target) == std::string::npos) {
      continue;
    }
    if (now < rule.from_time) continue;
    if (rule.until_time >= 0.0 && now >= rule.until_time) continue;
    const std::uint64_t seen = seen_[i]++;
    if (seen < rule.after) continue;
    if (rule.times != 0 && rule_fired_[i] >= rule.times) continue;
    if (decider_) {
      // Exploration mode: the hook outcome is a decision point owned by the
      // explorer, not a draw from the seeded RNG.
      if (!decider_(point, detail)) continue;
    } else if (rule.probability < 1.0 && !rng_.bernoulli(rule.probability)) {
      continue;
    }
    ++rule_fired_[i];
    report_.record(point);
    sequence_.push_back(detail.empty() ? point : point + "@" + detail);
    sequence_traces_.push_back(trace_provider_ ? trace_provider_() : "");
    if (fire_listener_) fire_listener_(point, detail);
    std::string message = rule.message.empty()
                              ? "injected fault: " + point +
                                    (detail.empty() ? "" : " (" + detail + ")")
                              : rule.message;
    return Status(rule.code, std::move(message));
  }
  return Status();
}

util::FaultReport FaultRegistry::report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return report_;
}

std::uint64_t FaultRegistry::fired(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return report_.count(point);
}

std::uint64_t FaultRegistry::fired_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return report_.total();
}

std::uint64_t FaultRegistry::checks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return checks_;
}

std::vector<std::string> FaultRegistry::sequence() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sequence_;
}

std::vector<std::string> FaultRegistry::sequence_traces() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sequence_traces_;
}

}  // namespace vmp::fault
