// End-to-end request tracing.
//
// Every Create/Query/Destroy request through the shop yields a span tree:
// span = {name, component, sim-time start/end, status, parent}, linked by a
// trace id that rides on net::Message across bus hops (the in-process
// stand-in for the prototype's socket wire format).  The design goals:
//
//   * ~zero cost disarmed: ScopedSpan's constructor is one relaxed atomic
//     load when no tracing is enabled (bench/obs_overhead holds this to
//     <= 5 ns/op).
//   * no parameter plumbing: the current span is a thread-local, so code
//     deep in the production line opens child spans without every caller
//     threading a context through.  Cross-"process" hops restore the
//     context from the message header instead (ContextGuard).
//   * offline analysis: finished spans drain to a JSONL sink
//     (tools/trace_summarize.py turns it into a per-phase latency table in
//     the spirit of the paper's Figure 6).
//
// Time is virtual-friendly: the tracer reads a pluggable clock (install the
// DES clock via set_clock for sim-time spans); the default is wall seconds
// since process start.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace vmp::obs {

namespace detail {
/// The tracer's armed flag lives at namespace scope so the disarmed fast
/// path is one relaxed load — no function-local-static guard, no call.
extern std::atomic<bool> g_armed;
}  // namespace detail

/// True while tracing is armed (one relaxed atomic load).
inline bool tracer_armed() {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// Identifies a position in a trace; carried on messages across bus hops.
/// A default-constructed context is "not part of any trace".
struct TraceContext {
  std::string trace_id;    // "" = no trace
  std::uint64_t span_id = 0;

  bool valid() const { return !trace_id.empty(); }
};

/// One finished span.
struct Span {
  std::string trace_id;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  // 0 = root
  std::string name;             // e.g. "plant.create"
  std::string component;        // e.g. "vmplant"
  std::string detail;           // free-form (plant address, action id, vm id)
  std::string vm_id;            // set when the span produced/handled a VM
  double start_s = 0.0;
  double end_s = 0.0;
  std::string status = "ok";    // "ok", an error-code name, or "retry"

  double duration_s() const { return end_s - start_s; }
  bool ok() const { return status == "ok" || status == "retry"; }

  /// One-line JSON object (the JSONL sink format).
  std::string to_json() const;
};

class Tracer {
 public:
  static Tracer& instance();

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Arm/disarm.  arm() clears previously collected spans so a test or
  /// example starts from a clean buffer.
  void arm();
  void disarm();
  bool armed() const { return tracer_armed(); }

  /// Install a time source (e.g. the DES clock).  nullptr restores the
  /// default wall clock.  Applies to spans started afterwards.
  void set_clock(std::function<double()> clock);
  double now() const;

  /// Mirror span-end events into util::Logger at debug level ("trace"
  /// component).  Off by default.
  void set_log_spans(bool on) { log_spans_.store(on); }

  // -- Span lifecycle (used by ScopedSpan; callable directly) ---------------
  /// Open a span.  Parent resolution: explicit `parent` if valid, else the
  /// calling thread's current span, else a fresh root (new trace id).
  /// The new span becomes the thread's current span.
  TraceContext begin_span(const std::string& name, const std::string& component,
                          const std::string& detail = "",
                          const TraceContext& parent = {});

  /// Close the span begun last on this thread and record it.
  void end_span(const TraceContext& ctx, const std::string& status,
                const std::string& vm_id = "");

  /// Record an instantaneous event span (start == end) under the current
  /// span; used for retry/failover markers.
  void instant(const std::string& name, const std::string& component,
               const std::string& status, const std::string& detail = "");

  // -- Thread-local context -------------------------------------------------
  static TraceContext current();

  // -- Root-completion sink (the tail sampler's hook) -----------------------
  /// Called once per finished ROOT span (parent_id == 0), on the thread
  /// that ended it, after the span landed in the finished buffer.  The
  /// sink runs outside the tracer lock, so it may call back into the
  /// tracer (extract_trace does).  One sink at a time; nullptr uninstalls.
  /// instant() roots (lone markers) do not trigger it.
  using RootSink = std::function<void(const Span& root)>;
  void set_root_sink(RootSink sink);

  // -- Introspection --------------------------------------------------------
  /// Copies of all finished spans (in completion order).
  std::vector<Span> spans() const;
  /// Finished spans of one trace.
  std::vector<Span> trace(const std::string& trace_id) const;
  /// Remove and return one trace's finished spans (completion order kept).
  /// The tail sampler drains every decided trace through this, so an armed
  /// tracer's buffer stays bounded by the in-flight traces instead of
  /// growing with history (DESIGN.md §14).
  std::vector<Span> extract_trace(const std::string& trace_id);
  /// Distinct trace ids seen, in first-completion order.
  std::vector<std::string> trace_ids() const;
  std::size_t span_count() const;

  /// Drop collected spans (arming does this too).
  void clear();

  /// Append every finished span as one JSON object per line.  Returns
  /// false when the file cannot be opened.
  bool write_jsonl(const std::string& path) const;

 private:
  friend class ContextGuard;

  std::atomic<bool> log_spans_{false};
  std::atomic<std::uint64_t> next_span_id_{1};
  std::atomic<std::uint64_t> next_trace_{1};
  /// Fast-path flag so end_span pays for the root copy only when a sink is
  /// actually installed (the armed-span budget in bench/obs_overhead).
  std::atomic<bool> root_sink_armed_{false};

  mutable std::mutex mutex_;
  std::function<double()> clock_;
  RootSink root_sink_;
  std::vector<Span> finished_;

  struct OpenSpan {
    Span span;
  };
};

/// RAII span.  Disarmed: constructor is one relaxed atomic load, destructor
/// a branch.  Armed: opens a child of the thread's current span (or of the
/// explicit parent context) and closes it on destruction.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* component)
      : active_(tracer_armed()) {
    if (active_) ctx_ = Tracer::instance().begin_span(name, component);
  }
  ScopedSpan(const char* name, const char* component,
             const std::string& detail, const TraceContext& parent = {})
      : active_(tracer_armed()) {
    if (active_) {
      ctx_ = Tracer::instance().begin_span(name, component, detail, parent);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (active_) {
      Tracer::instance().end_span(
          ctx_, status_.empty() ? std::string("ok") : status_, vm_id_);
    }
  }

  /// Mark the span failed (status = error-code name or free-form).
  void set_status(const std::string& status) { status_ = status; }
  /// Associate a VM with this span (per-VM summaries in the exporter).
  void set_vm(const std::string& vm_id) { vm_id_ = vm_id; }

  const TraceContext& context() const { return ctx_; }
  bool active() const { return active_; }

 private:
  bool active_;
  TraceContext ctx_;
  std::string status_;  // empty = "ok"; set via set_status
  std::string vm_id_;
};

/// Restore a trace context received over the wire as this thread's current
/// span for the guard's lifetime (the server half of an RPC hop).  A
/// no-op when the context is invalid or tracing is disarmed.
class ContextGuard {
 public:
  explicit ContextGuard(const TraceContext& ctx);
  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;
  ~ContextGuard();

 private:
  bool restored_ = false;
  TraceContext saved_;
};

/// Shorthand for Tracer::instance().current().
inline TraceContext current_context() { return Tracer::current(); }

/// Assemble a parent -> children index for a span set (tree traversal in
/// tests and the exporter).
std::map<std::uint64_t, std::vector<const Span*>> span_children(
    const std::vector<Span>& spans);

/// Find the root span of a trace (parent_id == 0); nullptr when absent.
const Span* find_root(const std::vector<Span>& trace_spans);

}  // namespace vmp::obs
