#include "vnet/router.h"

#include "util/strings.h"

namespace vmp::vnet {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

Result<std::uint32_t> parse_ipv4(const std::string& text) {
  const auto parts = util::split(text, '.');
  if (parts.size() != 4) {
    return Result<std::uint32_t>(
        Error(ErrorCode::kParseError, "bad IPv4 address: " + text));
  }
  std::uint32_t address = 0;
  for (const std::string& part : parts) {
    long long v = 0;
    if (!util::parse_int64(part, &v) || v < 0 || v > 255) {
      return Result<std::uint32_t>(
          Error(ErrorCode::kParseError, "bad IPv4 octet in: " + text));
    }
    address = (address << 8) | static_cast<std::uint32_t>(v);
  }
  return address;
}

std::string format_ipv4(std::uint32_t address) {
  return std::to_string((address >> 24) & 0xff) + "." +
         std::to_string((address >> 16) & 0xff) + "." +
         std::to_string((address >> 8) & 0xff) + "." +
         std::to_string(address & 0xff);
}

Result<Subnet> Subnet::parse(const std::string& cidr) {
  const auto slash = cidr.find('/');
  if (slash == std::string::npos) {
    return Result<Subnet>(
        Error(ErrorCode::kParseError, "subnet missing '/': " + cidr));
  }
  auto network = parse_ipv4(cidr.substr(0, slash));
  if (!network.ok()) return network.propagate<Subnet>();
  long long prefix = 0;
  if (!util::parse_int64(cidr.substr(slash + 1), &prefix) || prefix < 0 ||
      prefix > 32) {
    return Result<Subnet>(
        Error(ErrorCode::kParseError, "bad prefix length: " + cidr));
  }
  Subnet subnet;
  subnet.prefix_len = static_cast<std::uint32_t>(prefix);
  const std::uint32_t mask =
      prefix == 0 ? 0 : ~std::uint32_t{0} << (32 - subnet.prefix_len);
  subnet.network = network.value() & mask;
  return subnet;
}

bool Subnet::contains(std::uint32_t address) const {
  const std::uint32_t mask =
      prefix_len == 0 ? 0 : ~std::uint32_t{0} << (32 - prefix_len);
  return (address & mask) == network;
}

std::string Subnet::to_string() const {
  return format_ipv4(network) + "/" + std::to_string(prefix_len);
}

std::string IpPacket::encode() const {
  return "ip:" + format_ipv4(dst) + "|" + data;
}

std::optional<IpPacket> IpPacket::decode(const std::string& payload) {
  if (!util::starts_with(payload, "ip:")) return std::nullopt;
  const auto bar = payload.find('|');
  if (bar == std::string::npos) return std::nullopt;
  auto dst = parse_ipv4(payload.substr(3, bar - 3));
  if (!dst.ok()) return std::nullopt;
  IpPacket packet;
  packet.dst = dst.value();
  packet.data = payload.substr(bar + 1);
  return packet;
}

VirtualRouter::~VirtualRouter() { detach_all(); }

void VirtualRouter::detach_all() {
  for (Interface& iface : interfaces_) {
    if (iface.network != nullptr && iface.port != 0) {
      (void)iface.network->detach(iface.port);
      iface.network = nullptr;
      iface.port = 0;
    }
  }
}

Status VirtualRouter::attach_interface(HostOnlySwitch* network,
                                       const MacAddress& mac,
                                       const std::string& ip,
                                       const std::string& subnet_cidr) {
  auto address = parse_ipv4(ip);
  if (!address.ok()) return address.error();
  auto subnet = Subnet::parse(subnet_cidr);
  if (!subnet.ok()) return subnet.error();
  if (!subnet.value().contains(address.value())) {
    return Status(ErrorCode::kInvalidArgument,
                  name_ + ": interface address " + ip + " outside subnet " +
                      subnet.value().to_string());
  }
  for (const Interface& iface : interfaces_) {
    if (iface.subnet.network == subnet.value().network &&
        iface.subnet.prefix_len == subnet.value().prefix_len) {
      return Status(ErrorCode::kAlreadyExists,
                    name_ + ": subnet already attached: " + subnet_cidr);
    }
  }

  const std::size_t index = interfaces_.size();
  Interface iface;
  iface.network = network;
  iface.mac = mac;
  iface.ip = address.value();
  iface.subnet = subnet.value();
  iface.port = network->attach(
      [this, index](const EthernetFrame& frame) { receive(index, frame); });
  interfaces_.push_back(std::move(iface));
  return Status();
}

Status VirtualRouter::add_arp_entry(const std::string& interface_ip,
                                    const std::string& host_ip,
                                    const MacAddress& host_mac) {
  auto iface_addr = parse_ipv4(interface_ip);
  if (!iface_addr.ok()) return iface_addr.error();
  auto host_addr = parse_ipv4(host_ip);
  if (!host_addr.ok()) return host_addr.error();
  for (Interface& iface : interfaces_) {
    if (iface.ip == iface_addr.value()) {
      iface.arp[host_addr.value()] = host_mac;
      return Status();
    }
  }
  return Status(ErrorCode::kNotFound,
                name_ + ": no interface with address " + interface_ip);
}

void VirtualRouter::receive(std::size_t interface_index,
                            const EthernetFrame& frame) {
  const Interface& iface = interfaces_[interface_index];
  // Routers forward frames addressed to their interface MAC (a default
  // gateway) or broadcast probes; everything else is other hosts' traffic.
  if (!(frame.dst == iface.mac) && !frame.dst.is_broadcast()) return;
  const auto packet = IpPacket::decode(frame.payload);
  if (!packet.has_value()) return;  // not simulated IP traffic
  // Local delivery to the router itself is not modelled; pure forwarding.
  forward(*packet);
}

void VirtualRouter::forward(const IpPacket& packet) {
  // Longest-prefix match across attached subnets.
  const Interface* best = nullptr;
  for (const Interface& iface : interfaces_) {
    if (!iface.subnet.contains(packet.dst)) continue;
    if (best == nullptr || iface.subnet.prefix_len > best->subnet.prefix_len) {
      best = &iface;
    }
  }
  if (best == nullptr) {
    ++packets_dropped_;
    return;
  }

  EthernetFrame out;
  out.src = best->mac;
  out.payload = packet.encode();
  auto arp = best->arp.find(packet.dst);
  // Known next hop: unicast.  Unknown: broadcast (first-hop ARP behaviour,
  // collapsed into the data frame for the simulation).
  out.dst = arp != best->arp.end() ? arp->second : MacAddress::broadcast();
  ++packets_forwarded_;
  (void)best->network->inject(best->port, out);
}

}  // namespace vmp::vnet
