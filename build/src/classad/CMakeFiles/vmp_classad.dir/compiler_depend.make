# Empty compiler generated dependencies file for vmp_classad.
# This may be replaced when dependencies are built.
