
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/cost_function.cpp" "bench/CMakeFiles/cost_function.dir/cost_function.cpp.o" "gcc" "bench/CMakeFiles/cost_function.dir/cost_function.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/vmp_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vmp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vmp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vmp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/classad/CMakeFiles/vmp_classad.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/vmp_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vmp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/vnet/CMakeFiles/vmp_vnet.dir/DependInfo.cmake"
  "/root/repo/build/src/warehouse/CMakeFiles/vmp_warehouse.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/vmp_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/hypervisor/CMakeFiles/vmp_hypervisor.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/vmp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vmp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
