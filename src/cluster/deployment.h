// SimulatedDeployment: the paper's 8-node testbed in a box.
//
// Owns the full middleware stack — artifact store (sandbox directory),
// warehouse with the paper's golden machines, N VMPlants, message bus,
// service registry, and a VMShop — and drives request sequences through the
// REAL service path (client -> shop -> bidding -> plant -> PPP -> production
// line -> hypervisor -> storage).  Latency is then attributed per creation
// by the TimingModel from the accounting the plant returns in each classad,
// which is valid because the paper's experiments issue requests strictly in
// sequence (§4.2: "a series of requests, in sequence").
//
// For concurrent workloads (not part of the paper's evaluation; explored in
// bench/concurrency ablation) see concurrent_sim.h, which uses the DES with
// shared-bandwidth contention instead of post-hoc attribution.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/timing_model.h"
#include "core/plant.h"
#include "core/shop.h"
#include "federation/federation.h"
#include "net/bus.h"
#include "net/registry.h"
#include "storage/artifact_store.h"
#include "util/error.h"
#include "warehouse/warehouse.h"

namespace vmp::cluster {

struct DeploymentConfig {
  std::size_t plant_count = 8;           // paper: 8-node cluster subset
  std::string backend = "vmware-gsx";
  std::string cost_model = "memory-available";  // the prototype's bid model
  std::size_t max_vms_per_plant = 32;
  std::size_t host_only_networks = 4;
  TimingConfig timing;
  std::uint64_t seed = 2004;             // experiment RNG seed
  /// Sandbox directory for all artefacts; "" = create under /tmp.
  std::string sandbox_dir;
  /// Wire encoding every bus hop uses (net/codec.h).  kXml is the paper's
  /// §4.1 text format and the default — paper runs stay byte-identical;
  /// kBinary is the compact codec (bench/concurrency's binbus ablation).
  net::WireFormat wire_format = net::WireFormat::kXml;
  /// Federation (DESIGN.md §16).  0 (default) keeps the paper's flat
  /// topology byte-for-byte: plants register publicly, the shop bids
  /// directly.  N > 0 hides the plants behind N ShardBrokers (round-robin
  /// membership): only brokers appear in the registry, so the shop
  /// collects O(N) bids per create regardless of plant_count.
  std::size_t federation_shards = 0;
  /// TTL of each shard's cached aggregate bids (sim-clock seconds).
  double federation_bid_ttl_s = 30.0;
};

/// One completed creation with attributed timing.
struct CreationSample {
  std::size_t sequence = 0;        // global request order (Figure 6 x-axis)
  std::string request_id;
  std::string vm_id;
  std::string plant;
  std::uint64_t memory_bytes = 0;
  CreationTiming timing;
  double sim_time_completed = 0.0; // virtual clock at completion
};

class SimulatedDeployment {
 public:
  explicit SimulatedDeployment(DeploymentConfig config);
  ~SimulatedDeployment();

  SimulatedDeployment(const SimulatedDeployment&) = delete;
  SimulatedDeployment& operator=(const SimulatedDeployment&) = delete;

  // -- Access to the stack ----------------------------------------------------
  warehouse::Warehouse& warehouse() { return *warehouse_; }
  core::VmShop& shop() { return *shop_; }
  net::MessageBus& bus() { return bus_; }
  net::ServiceRegistry& registry() { return registry_; }
  storage::ArtifactStore& store() { return *store_; }
  TimingModel& timing_model() { return timing_; }
  core::VmPlant& plant(std::size_t index) { return *plants_.at(index); }
  std::size_t plant_count() const { return plants_.size(); }
  federation::ShardBroker& broker(std::size_t index) {
    return *brokers_.at(index);
  }
  std::size_t broker_count() const { return brokers_.size(); }

  /// Refresh every shard's bid cache (one estimate_batch per member per
  /// shard).  Returns the total refreshed classes; no-op when flat.
  std::size_t refresh_federation();

  /// Execute one request through the real stack and attribute its timing.
  /// Advances the virtual clock.  Failures propagate.
  util::Result<CreationSample> run_request(const core::CreateRequest& request);

  /// Execute a sequence of requests; stops at the first hard failure if
  /// `stop_on_error`, otherwise skips failed creations (the paper's Fig. 4
  /// histograms count only "VMs successfully created").
  std::vector<CreationSample> run_sequence(
      const std::vector<core::CreateRequest>& requests,
      bool stop_on_error = false);

  /// Destroy every VM currently known to the shop-side routing of this
  /// deployment (between experiment phases).
  void collect_all();

  // -- Snapshot ---------------------------------------------------------------
  /// Encode the deployment's durable state (warehouse index + experiment
  /// meta: sim clock, sequence, failure count) as one binary kSnapshot
  /// frame (core/snapshot.h).
  util::Result<std::string> save_snapshot() const;
  /// Restore a save_snapshot() frame into THIS deployment: warehouse index
  /// and experiment counters come back; the sandbox must already hold the
  /// captured images' artefact trees (same-sandbox restore).
  util::Status load_snapshot(std::string_view frame);

  double sim_now() const { return sim_now_; }
  std::size_t creations() const { return sequence_; }
  std::size_t failures() const { return failures_; }

 private:
  DeploymentConfig config_;
  std::string owned_sandbox_;  // deleted on destruction if we created it
  std::unique_ptr<storage::ArtifactStore> store_;
  std::unique_ptr<warehouse::Warehouse> warehouse_;
  net::MessageBus bus_;
  net::ServiceRegistry registry_;
  std::vector<std::unique_ptr<core::VmPlant>> plants_;
  std::vector<std::unique_ptr<federation::ShardBroker>> brokers_;
  std::unique_ptr<core::VmShop> shop_;
  TimingModel timing_;
  double sim_now_ = 0.0;
  std::size_t sequence_ = 0;
  std::size_t failures_ = 0;
  std::vector<std::string> created_vm_ids_;
};

}  // namespace vmp::cluster
