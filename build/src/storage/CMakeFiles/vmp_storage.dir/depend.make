# Empty dependencies file for vmp_storage.
# This may be replaced when dependencies are built.
