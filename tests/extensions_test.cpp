// Tests for the paper's §6 future-work features implemented as extensions:
// the Xen paravirtual backend, speculative pre-creation, cross-plant VM
// migration, and the VMBroker indirect-bidding path.
#include <gtest/gtest.h>

#include <filesystem>

#include "cluster/timing_model.h"
#include "core/broker.h"
#include "core/migration.h"
#include "core/plant.h"
#include "core/shop.h"
#include "hypervisor/gsx.h"
#include "hypervisor/xen.h"
#include "util/stats.h"
#include "workload/dag_library.h"
#include "workload/request_gen.h"

namespace vmp {
namespace {

constexpr std::uint64_t kMb = 1ull << 20;

class ExtensionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("vmp-ext-test-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
    store_ = std::make_unique<storage::ArtifactStore>(root_);
    warehouse_ = std::make_unique<warehouse::Warehouse>(store_.get(), "warehouse");
    ASSERT_TRUE(workload::publish_paper_goldens(warehouse_.get()).ok());
  }
  void TearDown() override {
    warehouse_.reset();
    store_.reset();
    std::filesystem::remove_all(root_);
  }

  std::unique_ptr<core::VmPlant> make_plant(const std::string& name,
                                            const std::string& backend =
                                                "vmware-gsx") {
    core::PlantConfig pc;
    pc.name = name;
    pc.backend = backend;
    return std::make_unique<core::VmPlant>(pc, store_.get(), warehouse_.get());
  }

  std::filesystem::path root_;
  std::unique_ptr<storage::ArtifactStore> store_;
  std::unique_ptr<warehouse::Warehouse> warehouse_;
};

// -- Xen backend ----------------------------------------------------------------

/// Publish a Xen golden (powered-off COW image, like UML's).
void publish_xen_golden(warehouse::Warehouse* wh, std::uint32_t mem_mb) {
  storage::MachineSpec spec;
  spec.os = "linux-mandrake-8.1";
  spec.memory_bytes = mem_mb * kMb;
  spec.suspended = false;
  spec.disk = {"rootfs", 2048ull * kMb, 1, storage::DiskMode::kNonPersistent};
  hv::GuestState guest;
  guest.os = spec.os;
  guest.packages = {"vnc-server", "web-file-manager"};
  ASSERT_TRUE(wh->publish_new("golden-xen-" + std::to_string(mem_mb) + "mb",
                              "xen", spec, guest,
                              workload::invigo_golden_history())
                  .ok());
}

TEST_F(ExtensionsTest, XenBackendBootsClones) {
  publish_xen_golden(warehouse_.get(), 64);
  auto plant = make_plant("xenplant", "xen");
  auto ad = plant->create(workload::workspace_request(64, 0, "d", "xen"));
  ASSERT_TRUE(ad.ok()) << ad.error().to_string();
  EXPECT_EQ(ad.value().get_string(core::attrs::kBackend).value(), "xen");
  // Boot path: no memory checkpoint copied.
  EXPECT_LT(ad.value().get_integer(core::attrs::kCloneBytesCopied).value(),
            static_cast<std::int64_t>(1 * kMb));
}

TEST_F(ExtensionsTest, XenRefusesSuspendedGolden) {
  hv::XenHypervisor xen(store_.get());
  hv::CloneSource source;
  source.layout = storage::ImageLayout{"warehouse/golden-32mb"};
  auto golden = warehouse_->lookup("golden-32mb");
  ASSERT_TRUE(golden.ok());
  source.spec = golden.value().spec;  // suspended GSX checkpoint
  auto id = xen.clone_vm(source, "clones/x1", "x1");
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.error().code(), util::ErrorCode::kFailedPrecondition);
}

TEST_F(ExtensionsTest, XenTimingFasterThanUmlSlowerThanResume) {
  cluster::TimingModel model(cluster::TimingConfig{}, 3);
  cluster::CreationObservation xen, uml, gsx;
  xen.backend = "xen";
  uml.backend = "uml";
  gsx.backend = "vmware-gsx";
  for (auto* obs : {&xen, &uml, &gsx}) {
    obs->memory_bytes = 32 * kMb;
    obs->clone_links = 1;
  }
  gsx.clone_bytes_copied = 32 * kMb;
  util::Summary sx, su, sg;
  for (int i = 0; i < 50; ++i) {
    sx.add(model.time_creation(xen).clone_sec);
    su.add(model.time_creation(uml).clone_sec);
    sg.add(model.time_creation(gsx).clone_sec);
  }
  EXPECT_LT(sx.mean(), su.mean());   // paravirt boot beats full UML boot
  EXPECT_GT(sx.mean(), sg.mean());   // but resume-from-checkpoint wins
}

// -- Speculative pre-creation -----------------------------------------------------

TEST_F(ExtensionsTest, PreCreateParksInstances) {
  auto plant = make_plant("plant0");
  ASSERT_TRUE(plant->pre_create("golden-64mb", 3).ok());
  EXPECT_EQ(plant->speculative_pool_size("golden-64mb"), 3u);
  EXPECT_EQ(plant->speculative_pool_size(), 3u);
  // Parked instances are resident (they are resumed and waiting).
  EXPECT_EQ(plant->resident_memory_bytes(), 3 * 64 * kMb);
}

TEST_F(ExtensionsTest, CreateAdoptsParkedInstance) {
  auto plant = make_plant("plant0");
  ASSERT_TRUE(plant->pre_create("golden-64mb", 2).ok());

  auto ad = plant->create(workload::workspace_request(64, 0, "d"));
  ASSERT_TRUE(ad.ok()) << ad.error().to_string();
  EXPECT_TRUE(ad.value().get_boolean(core::attrs::kSpeculativeHit).value());
  EXPECT_EQ(ad.value().get_integer(core::attrs::kCloneBytesCopied).value(), 0);
  EXPECT_EQ(plant->speculative_pool_size("golden-64mb"), 1u);

  // The adopted VM is fully configured despite skipping the clone.
  const std::string vm_id = ad.value().get_string(core::attrs::kVmId).value();
  const hv::VmInstance* vm = plant->hypervisor().find(vm_id);
  ASSERT_NE(vm, nullptr);
  EXPECT_TRUE(vm->guest.users.count("user0"));
  EXPECT_TRUE(vm->guest.running_services.count("vnc-server"));
}

TEST_F(ExtensionsTest, PoolExhaustionFallsBackToCloning) {
  auto plant = make_plant("plant0");
  ASSERT_TRUE(plant->pre_create("golden-64mb", 1).ok());
  auto first = plant->create(workload::workspace_request(64, 0, "d"));
  auto second = plant->create(workload::workspace_request(64, 1, "d"));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(first.value().get_boolean(core::attrs::kSpeculativeHit).value());
  EXPECT_FALSE(second.value().get_boolean(core::attrs::kSpeculativeHit).value());
  EXPECT_EQ(plant->speculative_pool_size(), 0u);
}

TEST_F(ExtensionsTest, PoolIgnoredForDifferentGolden) {
  auto plant = make_plant("plant0");
  ASSERT_TRUE(plant->pre_create("golden-32mb", 1).ok());
  auto ad = plant->create(workload::workspace_request(64, 0, "d"));
  ASSERT_TRUE(ad.ok());
  EXPECT_FALSE(ad.value().get_boolean(core::attrs::kSpeculativeHit).value());
  EXPECT_EQ(plant->speculative_pool_size("golden-32mb"), 1u);
}

TEST_F(ExtensionsTest, DiscardSpeculativeFreesResources) {
  auto plant = make_plant("plant0");
  ASSERT_TRUE(plant->pre_create("golden-256mb", 2).ok());
  EXPECT_EQ(plant->resident_memory_bytes(), 2 * 256 * kMb);
  plant->discard_speculative();
  EXPECT_EQ(plant->speculative_pool_size(), 0u);
  EXPECT_EQ(plant->resident_memory_bytes(), 0u);
}

TEST_F(ExtensionsTest, PreCreateValidation) {
  auto plant = make_plant("plant0");
  EXPECT_FALSE(plant->pre_create("no-such-golden", 1).ok());
  ASSERT_TRUE(workload::publish_uml_golden(warehouse_.get(), 32).ok());
  // Backend mismatch: a GSX plant cannot pre-create UML images.
  EXPECT_FALSE(plant->pre_create("golden-uml-32mb", 1).ok());
}

// -- Migration ----------------------------------------------------------------------

TEST_F(ExtensionsTest, MigrationMovesRunningVm) {
  auto source = make_plant("plantA");
  auto target = make_plant("plantB");

  auto ad = source->create(workload::workspace_request(64, 0, "ufl.edu"));
  ASSERT_TRUE(ad.ok());
  const std::string vm_id = ad.value().get_string(core::attrs::kVmId).value();
  const std::string original_ip =
      ad.value().get_string(core::attrs::kIp).value();

  auto migrated = core::migrate_vm(source.get(), target.get(), vm_id);
  ASSERT_TRUE(migrated.ok()) << migrated.error().to_string();

  // Gone from the source; alive at the target with its guest state intact.
  EXPECT_EQ(source->active_vms(), 0u);
  EXPECT_EQ(source->allocator().free_networks(), 4u);
  EXPECT_EQ(target->active_vms(), 1u);
  const std::string new_id =
      migrated.value().get_string(core::attrs::kVmId).value();
  EXPECT_NE(new_id, vm_id);
  EXPECT_EQ(migrated.value().get_string(core::attrs::kMigratedFrom).value(),
            vm_id);

  const hv::VmInstance* vm = target->hypervisor().find(new_id);
  ASSERT_NE(vm, nullptr);
  EXPECT_EQ(vm->power, hv::PowerState::kRunning);
  EXPECT_EQ(vm->guest.ip, original_ip);
  EXPECT_TRUE(vm->guest.users.count("user0"));
  // The domain holds a host-only network at the target now.
  EXPECT_EQ(target->allocator().free_networks(), 3u);

  // The migrated VM is queryable and collectable at the target.
  EXPECT_TRUE(target->query(new_id).ok());
  EXPECT_TRUE(target->collect(new_id).ok());
}

TEST_F(ExtensionsTest, MigrationFailureResumesAtSource) {
  auto source = make_plant("plantA");
  // Target with zero capacity: migrate_in must fail.
  core::PlantConfig pc;
  pc.name = "plantB";
  pc.max_vms = 0;
  core::VmPlant target(pc, store_.get(), warehouse_.get());

  auto ad = source->create(workload::workspace_request(64, 0, "d"));
  ASSERT_TRUE(ad.ok());
  const std::string vm_id = ad.value().get_string(core::attrs::kVmId).value();

  auto migrated = core::migrate_vm(source.get(), &target, vm_id);
  ASSERT_FALSE(migrated.ok());
  // Source still owns the VM, resumed.
  EXPECT_EQ(source->active_vms(), 1u);
  EXPECT_EQ(source->hypervisor().find(vm_id)->power,
            hv::PowerState::kRunning);
}

TEST_F(ExtensionsTest, MigrationRejectsBootOnlyBackends) {
  ASSERT_TRUE(workload::publish_uml_golden(warehouse_.get(), 32).ok());
  auto source = make_plant("umlA", "uml");
  auto target = make_plant("umlB", "uml");
  auto ad = source->create(workload::workspace_request(32, 0, "d", "uml"));
  ASSERT_TRUE(ad.ok());
  const std::string vm_id = ad.value().get_string(core::attrs::kVmId).value();
  auto migrated = core::migrate_vm(source.get(), target.get(), vm_id);
  ASSERT_FALSE(migrated.ok());
  EXPECT_EQ(migrated.error().code(), util::ErrorCode::kFailedPrecondition);
}

TEST_F(ExtensionsTest, MigrateUnknownVmFails) {
  auto source = make_plant("plantA");
  auto target = make_plant("plantB");
  EXPECT_FALSE(core::migrate_vm(source.get(), target.get(), "ghost").ok());
  EXPECT_FALSE(core::migrate_vm(source.get(), source.get(), "x").ok());
}

// -- copy_tree / import_vm (migration substrate) -------------------------------------

TEST_F(ExtensionsTest, CopyTreePreservesFilesAndLinks) {
  ASSERT_TRUE(store_->write_file("src/a.txt", "alpha").ok());
  ASSERT_TRUE(store_->write_file("src/sub/b.txt", "beta").ok());
  ASSERT_TRUE(store_->link_file("src/a.txt", "src/link-to-a").ok());
  auto acct = store_->copy_tree("src", "dst");
  ASSERT_TRUE(acct.ok()) << acct.error().to_string();
  EXPECT_EQ(store_->read_file("dst/a.txt").value(), "alpha");
  EXPECT_EQ(store_->read_file("dst/sub/b.txt").value(), "beta");
  EXPECT_TRUE(store_->is_symlink("dst/link-to-a"));
  EXPECT_EQ(store_->read_file("dst/link-to-a").value(), "alpha");
  EXPECT_GE(acct.value().links_created, 1u);
  // Target existing or source missing fail.
  EXPECT_FALSE(store_->copy_tree("src", "dst").ok());
  EXPECT_FALSE(store_->copy_tree("missing", "other").ok());
}

TEST_F(ExtensionsTest, ImportVmValidation) {
  hv::GsxHypervisor gsx(store_.get());
  auto golden = warehouse_->lookup("golden-32mb");
  ASSERT_TRUE(golden.ok());
  // Copy the golden dir to act as an imported clone directory.
  ASSERT_TRUE(store_->copy_tree(golden.value().layout.dir, "import/vm").ok());

  auto imported = gsx.import_vm("import/vm", golden.value().spec,
                                golden.value().guest, "m1", true);
  ASSERT_TRUE(imported.ok()) << imported.error().to_string();
  EXPECT_EQ(gsx.find("m1")->power, hv::PowerState::kSuspended);
  ASSERT_TRUE(gsx.start_vm("m1").ok());

  // Duplicate id and missing artefacts fail.
  EXPECT_FALSE(gsx.import_vm("import/vm", golden.value().spec,
                             golden.value().guest, "m1", true)
                   .ok());
  EXPECT_FALSE(gsx.import_vm("does/not/exist", golden.value().spec,
                             golden.value().guest, "m2", true)
                   .ok());
}

// -- VMBroker -----------------------------------------------------------------------

class BrokerTest : public ExtensionsTest {
 protected:
  void SetUp() override {
    ExtensionsTest::SetUp();
    // Two hidden plants reachable only via the broker, one public plant.
    hidden0_ = make_plant("hidden0");
    hidden1_ = make_plant("hidden1");
    public0_ = make_plant("public0");
    // Hidden plants: bus endpoint but NO registry entry.
    ASSERT_TRUE(hidden0_->attach_to_bus(&bus_, nullptr).ok());
    ASSERT_TRUE(hidden1_->attach_to_bus(&bus_, nullptr).ok());
    ASSERT_TRUE(public0_->attach_to_bus(&bus_, &registry_).ok());

    broker_ = std::make_unique<core::VmBroker>(core::BrokerConfig{},
                                               &bus_, &registry_);
    broker_->add_member("hidden0");
    broker_->add_member("hidden1");
    ASSERT_TRUE(broker_->attach_to_bus().ok());

    shop_ = std::make_unique<core::VmShop>(core::ShopConfig{}, &bus_,
                                           &registry_);
    ASSERT_TRUE(shop_->attach_to_bus().ok());
  }
  void TearDown() override {
    shop_.reset();
    broker_.reset();
    hidden0_.reset();
    hidden1_.reset();
    public0_.reset();
    ExtensionsTest::TearDown();
  }

  net::MessageBus bus_;
  net::ServiceRegistry registry_;
  std::unique_ptr<core::VmPlant> hidden0_, hidden1_, public0_;
  std::unique_ptr<core::VmBroker> broker_;
  std::unique_ptr<core::VmShop> shop_;
};

TEST_F(BrokerTest, ShopSeesBrokerAsAPlant) {
  auto bids = shop_->collect_bids(workload::workspace_request(64, 0, "d"));
  // public0 + broker (representing two hidden plants) = 2 bids.
  ASSERT_EQ(bids.size(), 2u);
}

TEST_F(BrokerTest, CreationRoutesThroughBrokerToHiddenPlant) {
  // Make the public plant expensive by marking it down: the broker wins.
  bus_.set_down("public0", true);
  auto ad = shop_->create(workload::workspace_request(64, 0, "ufl.edu"));
  ASSERT_TRUE(ad.ok()) << ad.error().to_string();
  const std::string plant = ad.value().get_string(core::attrs::kPlant).value();
  EXPECT_TRUE(plant == "hidden0" || plant == "hidden1") << plant;
  EXPECT_EQ(broker_->creations_forwarded(), 1u);
  EXPECT_EQ(hidden0_->active_vms() + hidden1_->active_vms(), 1u);
}

TEST_F(BrokerTest, QueryAndDestroyRouteThroughBroker) {
  bus_.set_down("public0", true);
  auto ad = shop_->create(workload::workspace_request(32, 0, "d"));
  ASSERT_TRUE(ad.ok());
  const std::string vm_id = ad.value().get_string(core::attrs::kVmId).value();
  bus_.set_down("public0", false);

  auto q = shop_->query(vm_id);
  ASSERT_TRUE(q.ok()) << q.error().to_string();
  EXPECT_EQ(q.value().get_string(core::attrs::kVmId).value(), vm_id);

  ASSERT_TRUE(shop_->destroy(vm_id).ok());
  EXPECT_EQ(hidden0_->active_vms() + hidden1_->active_vms(), 0u);
}

TEST_F(BrokerTest, MarkupRaisesBrokerBids) {
  core::VmBroker pricey(core::BrokerConfig{.name = "pricey", .bid_markup = 10.0},
                        &bus_, &registry_);
  pricey.add_member("hidden0");
  ASSERT_TRUE(pricey.attach_to_bus().ok());

  auto bids = shop_->collect_bids(workload::workspace_request(64, 0, "d"));
  double broker_bid = -1, pricey_bid = -1;
  for (const core::Bid& bid : bids) {
    if (bid.plant_address == "broker0") broker_bid = bid.cost;
    if (bid.plant_address == "pricey") pricey_bid = bid.cost;
  }
  ASSERT_GE(broker_bid, 0.0);
  ASSERT_GE(pricey_bid, 0.0);
  EXPECT_DOUBLE_EQ(pricey_bid, broker_bid + 10.0);
}

TEST_F(BrokerTest, BrokerWithNoMembersDeclines) {
  core::VmBroker empty(core::BrokerConfig{.name = "empty"}, &bus_, &registry_);
  ASSERT_TRUE(empty.attach_to_bus().ok());
  net::Message m = net::Message::request("vmplant.estimate", "x", "empty", "c");
  workload::workspace_request(64, 0, "d").to_xml(&m.body());
  auto response = net::call_expecting_success(&bus_, m);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.error().code(), util::ErrorCode::kNoBids);
}

}  // namespace
}  // namespace vmp
