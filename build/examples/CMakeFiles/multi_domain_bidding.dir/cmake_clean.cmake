file(REMOVE_RECURSE
  "CMakeFiles/multi_domain_bidding.dir/multi_domain_bidding.cpp.o"
  "CMakeFiles/multi_domain_bidding.dir/multi_domain_bidding.cpp.o.d"
  "multi_domain_bidding"
  "multi_domain_bidding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_domain_bidding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
