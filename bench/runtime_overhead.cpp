// §4.3 run-time overhead context: VM execution cost once instantiated.
//
// The paper does not measure run-time overhead itself; it cites prior
// results — "3% for UML, 2% for VMware and negligible for Xen" on SPEC
// INT2000 [Xen SOSP'03], ~6% for SPECseis/SPECchem under VMware [ICDCS'03],
// and 13% for the I/O-heavy LSS application [CLADE'04] — to argue the
// instantiation cost is the part worth engineering.  This bench reproduces
// that context with a synthetic workload model: virtualization overhead as
// a function of the workload's I/O fraction, applied to simulated
// compute/I/O phase mixes.
#include <cstdio>

#include "common.h"
#include "util/random.h"

namespace {

/// Per-backend overhead model: CPU-bound work is nearly native; I/O and
/// system-call work pays the (2004-era) virtualization tax.
struct OverheadModel {
  const char* backend;
  double cpu_overhead;  // fractional slowdown of pure user-mode compute
  double io_overhead;   // fractional slowdown of I/O and syscalls
};

constexpr OverheadModel kModels[] = {
    {"vmware-gsx", 0.015, 0.24},
    {"uml", 0.028, 0.42},
    {"xen-paravirt", 0.003, 0.06},
};

/// Synthetic applications as (name, io_fraction, paper_reference) rows.
struct App {
  const char* name;
  double io_fraction;
  const char* paper_claim;
};

constexpr App kApps[] = {
    {"SPEC-INT2000-like (CPU bound)", 0.02, "2-3% (VMware/UML), ~0% Xen"},
    {"SPECseis/chem-like (serial HPC)", 0.17, "~6% under VMware"},
    {"LSS-like (DB-heavy parallel)", 0.52, "13% under VMware"},
};

}  // namespace

int main() {
  using namespace vmp;
  bench::print_header(
      "§4.3 context — run-time overhead of executing inside VMs",
      "cited: 2-3% CPU-bound (VMware/UML), ~6% serial HPC, 13% I/O-heavy "
      "LSS; negligible for Xen");

  util::SplitMix64 rng(7);
  std::printf("%-34s %14s %14s %14s\n", "workload", "vmware-gsx", "uml",
              "xen-paravirt");
  double lss_gsx = 0.0;
  double spec_gsx = 0.0;
  for (const App& app : kApps) {
    std::printf("%-34s", app.name);
    for (const OverheadModel& m : kModels) {
      // Simulate 50 runs: native time 100 units split compute/I/O, with
      // small run-to-run noise; report mean fractional overhead.
      util::Summary overhead;
      for (int run = 0; run < 50; ++run) {
        const double native = 100.0 * rng.uniform(0.95, 1.05);
        const double compute = native * (1.0 - app.io_fraction);
        const double io = native * app.io_fraction;
        const double virtualized = compute * (1.0 + m.cpu_overhead) +
                                   io * (1.0 + m.io_overhead);
        overhead.add((virtualized - native) / native);
      }
      std::printf(" %13.1f%%", overhead.mean() * 100.0);
      if (std::string(m.backend) == "vmware-gsx") {
        if (std::string(app.name).rfind("LSS", 0) == 0) {
          lss_gsx = overhead.mean();
        }
        if (std::string(app.name).rfind("SPEC-INT", 0) == 0) {
          spec_gsx = overhead.mean();
        }
      }
    }
    std::printf("   (paper: %s)\n", app.paper_claim);
  }
  std::printf("\n");

  char measured[64];
  std::snprintf(measured, sizeof measured, "%.1f%%", spec_gsx * 100.0);
  bench::print_summary_row("overhead.cpu_bound_vmware", "~2%", measured);
  std::snprintf(measured, sizeof measured, "%.1f%%", lss_gsx * 100.0);
  bench::print_summary_row("overhead.lss_vmware", "13%", measured);
  return 0;
}
