// Regenerate the committed golden wire fixtures (tests/fixtures/wire/).
//
// Usage: wire_fixture_gen <output-dir>
//
// Run manually ONLY after a deliberate codec change, alongside a
// kCodecVersion bump — the committed v<N>-*.bin files are the wire-compat
// contract; regenerating them without a version bump rewrites history for
// frames already persisted by older builds.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "net/codec.h"
#include "wire_fixtures.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 2;
  }
  namespace fs = std::filesystem;
  namespace codec = vmp::net::codec;
  const fs::path dir = argv[1];
  std::error_code ec;
  fs::create_directories(dir, ec);

  const std::string prefix =
      "v" + std::to_string(static_cast<int>(codec::kCodecVersion)) + "-";
  const auto write = [&](const char* name, const std::string& bytes) {
    const fs::path path = dir / (prefix + name);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();
    if (!out) {
      std::fprintf(stderr, "write failed: %s\n", path.c_str());
      std::exit(1);
    }
    std::printf("%s  (%zu bytes)\n", path.c_str(), bytes.size());
  };

  write("message.bin",
        codec::encode_message(vmp::testing::wire_fixture_message()));
  write("descriptor.bin",
        codec::encode_descriptor(vmp::testing::wire_fixture_descriptor()));
  write("classad.bin",
        codec::encode_classad(vmp::testing::wire_fixture_classad()));
  write("snapshot.bin",
        vmp::core::encode_snapshot(vmp::testing::wire_fixture_snapshot()));
  return 0;
}
