// Shop-side admission control for the creation path.
//
// The concurrent plant pipeline (DESIGN.md §10) means the shop no longer
// has a natural serialization point: every client thread that calls
// create() drives clone I/O somewhere in the fleet.  The admission
// controller bounds that fan-in with two numbers: how many creations may
// be in flight at once, and how many callers may wait for a slot.  A
// caller beyond both bounds is rejected immediately with
// kResourceExhausted — backpressure the client can see and retry against,
// instead of an unbounded convoy of blocked threads.
//
// The controller is pure mechanism (no metrics, no tracing); the shop
// wraps admit() with its own timers and gauges so the policy stays
// testable in isolation.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "util/error.h"

namespace vmp::core {

struct AdmissionConfig {
  /// Creations allowed in flight at once; 0 disables admission control
  /// entirely (every admit() succeeds immediately).
  std::size_t max_inflight = 0;
  /// Callers allowed to WAIT for a slot beyond max_inflight.  A caller
  /// arriving when the queue is full is rejected, not blocked.
  std::size_t queue_limit = 16;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config) : config_(config) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// RAII slot: releasing (destruction) wakes one queued waiter.
  class Ticket {
   public:
    Ticket() = default;
    explicit Ticket(AdmissionController* controller)
        : controller_(controller) {}
    Ticket(Ticket&& other) noexcept : controller_(other.controller_) {
      other.controller_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        release();
        controller_ = other.controller_;
        other.controller_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { release(); }

   private:
    void release() {
      if (controller_ != nullptr) controller_->release();
      controller_ = nullptr;
    }
    AdmissionController* controller_ = nullptr;
  };

  /// Take a slot, waiting in the bounded queue if necessary.  Returns
  /// kResourceExhausted without blocking when the queue is already full.
  util::Result<Ticket> admit();

  std::size_t inflight() const;
  std::size_t queued() const;
  std::uint64_t rejected() const;
  const AdmissionConfig& config() const { return config_; }

 private:
  void release();

  AdmissionConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable slot_free_;
  std::size_t inflight_ = 0;
  std::size_t queued_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace vmp::core
