# Empty compiler generated dependencies file for speculative.
# This may be replaced when dependencies are built.
