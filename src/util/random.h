// Deterministic random number streams.
//
// Every stochastic quantity in the simulation (clone latencies, guest boot
// jitter, request inter-arrival noise) draws from a named stream derived
// from a single experiment seed, so figure benches reproduce bit-identically
// run to run and adding a new consumer does not perturb existing streams.
#pragma once

#include <cstdint>
#include <string>

namespace vmp::util {

/// SplitMix64: tiny, fast, well-distributed 64-bit generator.  Used both as
/// a generator and to derive child seeds from (seed, name) pairs.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
      : state_(seed) {}

  std::uint64_t next_u64();

  /// Uniform in [0, bound); bound must be > 0.  Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (no cached spare: keeps state a single
  /// word so streams can be split freely).
  double normal(double mean, double stddev);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Log-normal: underlying normal has the given mu/sigma.
  double lognormal(double mu, double sigma);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  std::uint64_t state() const { return state_; }

 private:
  std::uint64_t state_;
};

/// Derives a child seed from a parent seed and a stream name, by hashing
/// the name (FNV-1a) into the SplitMix64 sequence.
std::uint64_t derive_seed(std::uint64_t parent_seed, const std::string& name);

/// A named stream: convenience wrapper binding derive_seed + SplitMix64.
class RandomStream : public SplitMix64 {
 public:
  RandomStream(std::uint64_t experiment_seed, const std::string& name)
      : SplitMix64(derive_seed(experiment_seed, name)) {}
};

}  // namespace vmp::util
