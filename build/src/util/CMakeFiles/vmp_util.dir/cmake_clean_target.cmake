file(REMOVE_RECURSE
  "libvmp_util.a"
)
