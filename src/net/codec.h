// Versioned binary wire codec for VMPlants objects (DESIGN.md §15).
//
// The paper's §4.1 wire format is XML text; it stays the debug/interchange
// encoding and the default everywhere (paper runs remain byte-identical).
// This codec is the compact alternative the bus negotiates per instance
// (net::BusConfig::wire_format = kBinary): message envelopes + payloads,
// warehouse golden-image descriptors, classad snapshots, and the
// whole-simulation snapshot sections built on top of them (core/snapshot.h).
//
// Frame layout (little-endian), shared by every object kind:
//
//   offset  size  field
//   0       2     magic "VW"            (VMPlants Wire)
//   2       1     tag                   (FrameTag: what the payload encodes)
//   3       1     version               (1..kCodecVersion)
//   4       4     payload length        (must equal exactly the bytes left)
//   8       4     frame_checksum32(payload)  (word-parallel FNV lanes)
//   12      len   payload
//
// Decoding validates magic, tag, version range, exact length, and checksum
// before touching a payload byte; payload strings decode as zero-copy views
// of the frame (util::ByteReader).  Version bumps append fields or add
// tags — decoders accept every version <= kCodecVersion, and the committed
// golden fixtures under tests/fixtures/wire/ pin each released version so
// CI turns red if an encoding change orphans persisted bytes.
#pragma once

#include <string>
#include <string_view>

#include "classad/classad.h"
#include "net/message.h"
#include "util/bytebuffer.h"
#include "util/error.h"
#include "warehouse/warehouse.h"
#include "xml/xml.h"

namespace vmp::net::codec {

/// Current encoder version.  History: 1 = initial binary codec (this PR).
inline constexpr std::uint8_t kCodecVersion = 1;

enum class FrameTag : std::uint8_t {
  kMessage = 1,     // net::Message envelope + XML payload tree
  kDescriptor = 2,  // warehouse::GoldenImage (descriptor + guest state)
  kClassAd = 3,     // classad snapshot (attr name -> expression text)
  kSnapshot = 4,    // whole-simulation snapshot (core/snapshot.h sections)
};

const char* frame_tag_name(FrameTag tag) noexcept;

/// Wrap a payload in the versioned checksummed frame.
std::string seal_frame(FrameTag tag, std::string payload);

struct FrameView {
  FrameTag tag;
  std::uint8_t version = 0;
  std::string_view payload;  // borrowed from the input
};

/// Validate header + checksum and return the borrowed payload.  The input
/// must be exactly one frame (length prefix == remaining bytes).
util::Result<FrameView> open_frame(std::string_view frame);
/// open_frame + tag check in one step.
util::Result<FrameView> open_frame(std::string_view frame, FrameTag expected);

// -- XML element trees (message payload bodies) -------------------------------
void encode_element(const xml::Element& element, util::ByteBuffer* out);
/// Depth-limited recursive decode (corrupted child counts cannot recurse
/// unboundedly; limit 64 nests, far beyond any real payload).
util::Result<std::unique_ptr<xml::Element>> decode_element(
    util::ByteReader* in);

// -- Message envelopes --------------------------------------------------------
std::string encode_message(const Message& message);
util::Result<Message> decode_message(std::string_view frame);

// -- Warehouse descriptors ----------------------------------------------------
std::string encode_descriptor(const warehouse::GoldenImage& image);
util::Result<warehouse::GoldenImage> decode_descriptor(std::string_view frame);
/// Raw (unframed) payload encoders, for embedding descriptors inside
/// snapshot sections without a nested frame per image.
void encode_descriptor_payload(const warehouse::GoldenImage& image,
                               util::ByteBuffer* out);
util::Result<warehouse::GoldenImage> decode_descriptor_payload(
    util::ByteReader* in);

// -- ClassAd snapshots --------------------------------------------------------
std::string encode_classad(const classad::ClassAd& ad);
util::Result<classad::ClassAd> decode_classad(std::string_view frame);
void encode_classad_payload(const classad::ClassAd& ad, util::ByteBuffer* out);
util::Result<classad::ClassAd> decode_classad_payload(util::ByteReader* in);

}  // namespace vmp::net::codec
