file(REMOVE_RECURSE
  "libvmp_vnet.a"
)
