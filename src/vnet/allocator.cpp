#include "vnet/allocator.h"

#include "obs/metrics.h"

namespace vmp::vnet {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

namespace {

struct VnetMetrics {
  obs::Counter* acquires;
  obs::Counter* acquire_failures;
  obs::Counter* releases;
  obs::Gauge* domains_active;

  static VnetMetrics& get() {
    static VnetMetrics m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::instance();
      return VnetMetrics{r.counter("vnet.acquire.count"),
                         r.counter("vnet.acquire_fail.count"),
                         r.counter("vnet.release.count"),
                         r.gauge("vnet.domains_active.gauge")};
    }();
    return m;
  }
};

}  // namespace

NetworkAllocator::NetworkAllocator(std::string host_name,
                                   std::size_t network_count)
    : host_name_(std::move(host_name)) {
  for (std::size_t i = 1; i <= network_count; ++i) {
    const std::string name = host_name_ + "-vmnet" + std::to_string(i);
    Network net;
    net.sw = std::make_unique<HostOnlySwitch>(name);
    networks_.emplace(name, std::move(net));
  }
}

bool NetworkAllocator::needs_new_network(const std::string& domain) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return domain_to_net_.count(domain) == 0;
}

bool NetworkAllocator::can_serve(const std::string& domain) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (domain_to_net_.count(domain)) return true;
  for (const auto& [name, net] : networks_) {
    if (net.domain.empty()) return true;
  }
  return false;
}

Result<std::string> NetworkAllocator::acquire(const std::string& domain) {
  if (domain.empty()) {
    return Result<std::string>(
        Error(ErrorCode::kInvalidArgument, "domain must not be empty"));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto held = domain_to_net_.find(domain);
  if (held != domain_to_net_.end()) {
    Network& net = networks_.at(held->second);
    ++net.vm_count;
    VnetMetrics::get().acquires->add();
    return held->second;
  }
  for (auto& [name, net] : networks_) {
    if (net.domain.empty()) {
      net.domain = domain;
      net.vm_count = 1;
      domain_to_net_[domain] = name;
      VnetMetrics::get().acquires->add();
      VnetMetrics::get().domains_active->set(
          static_cast<std::int64_t>(domain_to_net_.size()));
      return name;
    }
  }
  VnetMetrics::get().acquire_failures->add();
  return Result<std::string>(Error(
      ErrorCode::kResourceExhausted,
      host_name_ + ": no free host-only network for domain " + domain));
}

Status NetworkAllocator::release(const std::string& domain) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto held = domain_to_net_.find(domain);
  if (held == domain_to_net_.end()) {
    return Status(ErrorCode::kNotFound,
                  host_name_ + ": domain holds no network: " + domain);
  }
  Network& net = networks_.at(held->second);
  if (net.vm_count == 0) {
    return Status(ErrorCode::kInternal,
                  host_name_ + ": release underflow for " + domain);
  }
  if (--net.vm_count == 0) {
    net.domain.clear();
    domain_to_net_.erase(held);
    VnetMetrics::get().domains_active->set(
        static_cast<std::int64_t>(domain_to_net_.size()));
  }
  VnetMetrics::get().releases->add();
  return Status();
}

Result<HostOnlySwitch*> NetworkAllocator::switch_for(
    const std::string& network_name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = networks_.find(network_name);
  if (it == networks_.end()) {
    return Result<HostOnlySwitch*>(Error(
        ErrorCode::kNotFound, host_name_ + ": no network " + network_name));
  }
  return it->second.sw.get();
}

std::string NetworkAllocator::holder_of(const std::string& network_name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = networks_.find(network_name);
  return it == networks_.end() ? std::string() : it->second.domain;
}

std::size_t NetworkAllocator::total_networks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return networks_.size();
}

std::size_t NetworkAllocator::free_networks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [name, net] : networks_) {
    if (net.domain.empty()) ++n;
  }
  return n;
}

std::size_t NetworkAllocator::domains_served() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return domain_to_net_.size();
}

}  // namespace vmp::vnet
