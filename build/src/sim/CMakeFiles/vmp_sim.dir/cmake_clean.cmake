file(REMOVE_RECURSE
  "CMakeFiles/vmp_sim.dir/engine.cpp.o"
  "CMakeFiles/vmp_sim.dir/engine.cpp.o.d"
  "CMakeFiles/vmp_sim.dir/resources.cpp.o"
  "CMakeFiles/vmp_sim.dir/resources.cpp.o.d"
  "libvmp_sim.a"
  "libvmp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
