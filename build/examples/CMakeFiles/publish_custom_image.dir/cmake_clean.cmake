file(REMOVE_RECURSE
  "CMakeFiles/publish_custom_image.dir/publish_custom_image.cpp.o"
  "CMakeFiles/publish_custom_image.dir/publish_custom_image.cpp.o.d"
  "publish_custom_image"
  "publish_custom_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/publish_custom_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
