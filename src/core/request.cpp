#include "core/request.h"

#include "dag/dag_xml.h"

namespace vmp::core {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

bool MachineRequirements::satisfied_by(const std::string& image_os,
                                       std::uint64_t image_memory_bytes,
                                       std::uint64_t image_disk_bytes) const {
  if (!os.empty() && image_os != os) return false;
  if (memory_bytes != 0 && image_memory_bytes != memory_bytes) return false;
  if (min_disk_bytes != 0 && image_disk_bytes < min_disk_bytes) return false;
  return true;
}

void MachineRequirements::to_xml(xml::Element* parent) const {
  xml::Element& hw = parent->add_child("hardware");
  hw.set_attr("os", os);
  hw.set_attr("memory-bytes", std::to_string(memory_bytes));
  hw.set_attr("min-disk-bytes", std::to_string(min_disk_bytes));
}

Result<MachineRequirements> MachineRequirements::from_xml(
    const xml::Element& parent) {
  const xml::Element* hw =
      parent.name() == "hardware" ? &parent : parent.child("hardware");
  if (hw == nullptr) {
    return Result<MachineRequirements>(
        Error(ErrorCode::kParseError, "missing <hardware> element"));
  }
  MachineRequirements out;
  out.os = hw->attr("os");
  out.memory_bytes = static_cast<std::uint64_t>(hw->attr_int("memory-bytes", 0));
  out.min_disk_bytes =
      static_cast<std::uint64_t>(hw->attr_int("min-disk-bytes", 0));
  return out;
}

Status CreateRequest::validate() const {
  if (request_id.empty()) {
    return Status(ErrorCode::kInvalidArgument, "request_id must not be empty");
  }
  if (domain.empty()) {
    return Status(ErrorCode::kInvalidArgument,
                  "client domain must not be empty (host-only network "
                  "assignment requires it)");
  }
  if (hardware.memory_bytes == 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "hardware memory requirement must be specified");
  }
  return config.validate();
}

void CreateRequest::to_xml(xml::Element* parent) const {
  xml::Element& req = parent->add_child("create-request");
  req.set_attr("id", request_id);
  req.set_attr("client", client);
  req.set_attr("domain", domain);
  req.set_attr("proxy", proxy_address);
  req.set_attr("backend", backend);
  hardware.to_xml(&req);
  dag::to_xml(config, &req);
}

Result<CreateRequest> CreateRequest::from_xml(const xml::Element& element) {
  const xml::Element* req = element.name() == "create-request"
                                ? &element
                                : element.child("create-request");
  if (req == nullptr) {
    return Result<CreateRequest>(
        Error(ErrorCode::kParseError, "missing <create-request>"));
  }
  CreateRequest out;
  out.request_id = req->attr("id");
  out.client = req->attr("client");
  out.domain = req->attr("domain");
  out.proxy_address = req->attr("proxy");
  out.backend = req->attr("backend");

  auto hw = MachineRequirements::from_xml(*req);
  if (!hw.ok()) return hw.propagate<CreateRequest>();
  out.hardware = std::move(hw).value();

  const xml::Element* dag_elem = req->child("dag");
  if (dag_elem == nullptr) {
    return Result<CreateRequest>(
        Error(ErrorCode::kParseError, "create-request missing <dag>"));
  }
  auto parsed = dag::from_xml(*dag_elem);
  if (!parsed.ok()) return parsed.propagate<CreateRequest>();
  out.config = std::move(parsed).value();
  return out;
}

std::string CreateRequest::to_xml_string() const {
  xml::Element wrapper("wrapper");
  to_xml(&wrapper);
  return wrapper.children().front()->to_string();
}

Result<CreateRequest> CreateRequest::from_xml_string(const std::string& text) {
  auto doc = xml::parse(text);
  if (!doc.ok()) return doc.propagate<CreateRequest>();
  return from_xml(*doc.value());
}

}  // namespace vmp::core
