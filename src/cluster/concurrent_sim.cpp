#include "cluster/concurrent_sim.h"

#include <algorithm>
#include <functional>
#include <memory>

namespace vmp::cluster {

ConcurrentCreationSim::ConcurrentCreationSim(std::size_t plant_count,
                                             TimingConfig timing,
                                             std::uint64_t seed)
    : plant_count_(plant_count ? plant_count : 1),
      timing_(timing),
      seed_(seed) {}

std::size_t ConcurrentCreationSim::pick_plant() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < plants_.size(); ++i) {
    if (plants_[i].resident_bytes < plants_[best].resident_bytes) best = i;
  }
  return best;
}

ConcurrentResult ConcurrentCreationSim::run(
    const std::vector<ConcurrentRequest>& requests,
    std::size_t max_in_flight) {
  if (max_in_flight == 0) max_in_flight = 1;
  plants_.assign(plant_count_, PlantState{});

  sim::Engine engine;
  // One NFS uplink shared by every concurrent state transfer.
  sim::SharedBandwidth nfs(&engine, timing_.nfs_copy_bytes_per_sec, "nfs");
  // Per-plant resume/boot serialization (one VMM control process each).
  std::vector<std::unique_ptr<sim::FifoServer>> resume_queues;
  for (std::size_t i = 0; i < plant_count_; ++i) {
    resume_queues.push_back(
        std::make_unique<sim::FifoServer>(&engine, 1, "resume"));
  }

  util::RandomStream noise(seed_, "concurrent-noise");
  ConcurrentResult result;
  result.samples.resize(requests.size());

  std::size_t next_request = 0;
  // Stored as std::function so nested completion callbacks can re-invoke it
  // by reference; it outlives them (engine.run() is below in this frame).
  std::function<void()> launch_next;
  launch_next = [&]() -> void {
    if (next_request >= requests.size()) return;
    const std::size_t index = next_request++;
    const ConcurrentRequest& req = requests[index];
    const std::size_t plant = pick_plant();

    ConcurrentSample& sample = result.samples[index];
    sample.index = index;
    sample.plant = plant;
    sample.start_sec = engine.now();

    // Reserve the memory on the plant up front (drives pressure for
    // later arrivals, as residents do in the sequential experiments).
    const double pressure = TimingModel(timing_, seed_ ^ index)
                                .pressure_multiplier(
                                    plants_[plant].resident_bytes,
                                    plants_[plant].active_vms,
                                    req.memory_bytes);
    plants_[plant].resident_bytes += req.memory_bytes;
    plants_[plant].active_vms += 1;

    // Phase 1: link ops + fixed clone cost (not contended).
    const double fixed =
        timing_.clone_fixed_sec +
        static_cast<double>(req.links) * timing_.link_op_sec;

    engine.schedule(fixed * noise.lognormal(0.0, timing_.noise_sigma), [&,
                    index, plant, pressure] {
      const ConcurrentRequest& r = requests[index];
      // Phase 2: state transfer over the shared NFS pipe.
      nfs.start(static_cast<double>(r.bytes_to_copy), [&, index, plant,
                                                       pressure] {
        const ConcurrentRequest& r2 = requests[index];
        // Phase 3: resume/boot, serialized per plant, slowed by pressure.
        double instantiate =
            r2.uml_boot
                ? timing_.uml_boot_sec
                : timing_.resume_fixed_sec +
                      static_cast<double>(r2.memory_bytes) /
                          timing_.resume_read_bytes_per_sec;
        instantiate *= pressure * noise.lognormal(0.0, timing_.noise_sigma);
        resume_queues[plant]->submit(instantiate, [&, index] {
          const ConcurrentRequest& r3 = requests[index];
          result.samples[index].clone_done_sec = engine.now();
          // Phase 4: guest configuration (not contended).
          const double config_time =
              (static_cast<double>(r3.isos) * timing_.iso_connect_sec +
               static_cast<double>(r3.guest_actions) *
                   timing_.guest_action_sec) *
              noise.lognormal(0.0, timing_.noise_sigma);
          engine.schedule(config_time, [&, index] {
            result.samples[index].finish_sec = engine.now();
            // Window slot freed: admit the next request.
            launch_next();
          });
        });
      });
    });
  };

  const std::size_t initial =
      std::min(max_in_flight, requests.size());
  for (std::size_t i = 0; i < initial; ++i) launch_next();

  engine.run();
  result.makespan_sec = engine.now();
  result.nfs_bytes_moved = nfs.total_transferred();
  return result;
}

}  // namespace vmp::cluster
