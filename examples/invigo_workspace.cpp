// In-VIGO virtual workspaces (paper Figure 3 + Section 1).
//
// Reproduces the paper's flagship scenario: a problem-solving-environment
// portal requests per-user "virtual workspaces" — VMs running a VNC server
// and a web file manager, configured with the user's identity, IP address,
// and home-directory mount.  Golden machines checkpointed after the base
// install (actions A..C) make instantiation cheap: only D..I execute per
// user.
//
// Build & run:  ./build/examples/invigo_workspace
#include <cstdio>

#include "cluster/deployment.h"
#include "workload/dag_library.h"
#include "workload/request_gen.h"

int main() {
  using namespace vmp;

  // An 8-plant site, as in the paper's testbed.
  cluster::DeploymentConfig config;
  config.plant_count = 8;
  config.seed = 2004;
  cluster::SimulatedDeployment site(config);
  if (!workload::publish_paper_goldens(&site.warehouse()).ok()) return 1;

  std::printf("site: %zu plants, warehouse holds %zu golden machines\n\n",
              site.plant_count(), site.warehouse().size());

  // Three users from the In-VIGO portal ask for workspaces.
  const char* users[] = {"arijit", "ivan", "renato"};
  for (int i = 0; i < 3; ++i) {
    workload::WorkspaceParams params;
    params.user = users[i];
    params.ip = "10.1.0." + std::to_string(2 + i);
    params.mac = vnet::MacAddress::from_index(2 + i).to_string();

    core::CreateRequest request;
    request.request_id = std::string("ws-") + users[i];
    request.client = "invigo-portal";
    request.domain = "acis.ufl.edu";
    request.proxy_address = "proxy.acis.ufl.edu:4096";
    request.hardware.os = "linux-mandrake-8.1";
    request.hardware.memory_bytes = 64ull << 20;
    request.config = workload::invigo_workspace_dag(params);

    auto sample = site.run_request(request);
    if (!sample.ok()) {
      std::fprintf(stderr, "workspace for %s failed: %s\n", users[i],
                   sample.error().to_string().c_str());
      return 1;
    }

    auto ad = site.shop().query(sample.value().vm_id);
    std::printf("workspace for %-7s -> %s on %s\n", users[i],
                sample.value().vm_id.c_str(), sample.value().plant.c_str());
    std::printf("  ip=%s  vnc=%s  cached-actions=%lld  executed=%lld\n",
                ad.value().get_string(core::attrs::kIp).value().c_str(),
                ad.value().get_string(core::attrs::kState).value().c_str(),
                static_cast<long long>(
                    ad.value().get_integer(core::attrs::kActionsSatisfied).value()),
                static_cast<long long>(
                    ad.value().get_integer(core::attrs::kActionsExecuted).value()));
    std::printf("  simulated latency: clone %.1fs + config %.1fs + shop %.1fs "
                "= %.1fs\n",
                sample.value().timing.clone_sec,
                sample.value().timing.config_sec,
                sample.value().timing.shop_sec,
                sample.value().timing.total_sec);
  }

  // Inspect one workspace guest to show the configuration really happened.
  std::printf("\nguest state of the first plant's first VM:\n");
  for (std::size_t p = 0; p < site.plant_count(); ++p) {
    auto ids = site.plant(p).hypervisor().instance_ids();
    if (ids.empty()) continue;
    const hv::VmInstance* vm = site.plant(p).hypervisor().find(ids.front());
    std::printf("  os=%s ip=%s users:", vm->guest.os.c_str(),
                vm->guest.ip.c_str());
    for (const auto& [name, home] : vm->guest.users) {
      std::printf(" %s(%s)", name.c_str(), home.c_str());
    }
    std::printf("\n  services:");
    for (const auto& svc : vm->guest.running_services) {
      std::printf(" %s", svc.c_str());
    }
    std::printf("\n");
    break;
  }

  site.collect_all();
  std::printf("\nall workspaces collected; site idle again\n");
  return 0;
}
