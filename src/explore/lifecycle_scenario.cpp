#include "explore/lifecycle_scenario.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <memory>
#include <utility>
#include <vector>

#include "fault/fault.h"
#include "lifecycle/lifecycle.h"
#include "storage/artifact_store.h"
#include "util/strings.h"
#include "warehouse/warehouse.h"

namespace vmp::explore {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

namespace {

const char* const kVariants[] = {"mixed", "zombie_reuse",
                                 "publish_reservation", "evict_rollback"};

bool known_variant(const std::string& variant) {
  for (const char* v : kVariants) {
    if (variant == v) return true;
  }
  return false;
}

/// The variant's default fault plan when the config leaves it empty.
std::string effective_fault_spec(const LifecycleConfig& config) {
  if (!config.fault_spec.empty()) return config.fault_spec;
  if (config.variant == "publish_reservation") {
    return "store.write:target=descriptor.xml,times=1";
  }
  if (config.variant == "evict_rollback") {
    return "store.remove:target=descriptor.xml,times=1";
  }
  return std::string();
}

storage::MachineSpec spec_mb(std::uint64_t mem_mb, std::uint64_t disk_mb) {
  storage::MachineSpec spec;
  spec.os = "linux-mandrake-8.1";
  spec.memory_bytes = mem_mb << 20;
  spec.suspended = true;
  spec.disk = storage::DiskSpec{"disk0", disk_mb << 20, 2,
                                storage::DiskMode::kNonPersistent};
  return spec;
}

warehouse::GoldenImage golden(const std::string& id, std::uint64_t mem_mb,
                              std::uint64_t disk_mb) {
  warehouse::GoldenImage image;
  image.id = id;
  image.backend = "vmware-gsx";
  image.spec = spec_mb(mem_mb, disk_mb);
  image.guest.os = image.spec.os;
  return image;
}

class LifecycleScenario : public Scenario {
 public:
  explicit LifecycleScenario(LifecycleConfig config)
      : config_(std::move(config)) {
    static std::atomic<std::uint64_t> counter{0};
    root_ = std::filesystem::temp_directory_path() /
            ("vmp-explore-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter.fetch_add(1)));
  }

  ~LifecycleScenario() override {
    manager_.reset();
    warehouse_.reset();
    store_.reset();
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
  }

  std::string name() const override { return "lifecycle"; }
  std::string config_spec() const override { return config_.to_spec(); }

  fault::FaultPlan fault_plan() const override {
    const std::string spec = effective_fault_spec(config_);
    if (spec.empty()) return {};
    // Validated by lifecycle_factory(); cannot fail here.
    return fault::FaultPlan::parse(spec, 1).value_or(fault::FaultPlan());
  }

  util::Status setup(sim::Engine* engine) override {
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
    store_ = std::make_unique<storage::ArtifactStore>(root_);
    warehouse_ =
        std::make_unique<warehouse::Warehouse>(store_.get(), "warehouse");
    lifecycle::LifecycleManager::Config mc;
    mc.disk_budget_bytes = config_.budget_mb << 20;
    mc.policy = "lru";  // deterministic victim order
    auto manager = lifecycle::LifecycleManager::create(warehouse_.get(), mc);
    if (!manager.ok()) return manager.error();
    manager_ = std::move(manager).value();

    if (config_.variant == "mixed") {
      schedule_mixed(engine);
    } else if (config_.variant == "zombie_reuse") {
      schedule_zombie_reuse(engine);
    } else if (config_.variant == "publish_reservation") {
      schedule_publish_reservation(engine);
    } else {
      schedule_evict_rollback(engine);
    }
    return Status();
  }

  std::string digest() override {
    std::string s = outcomes_;
    s += "used=" + std::to_string(manager_->used_bytes()) + "\n";
    s += "reserved=" + std::to_string(manager_->reserved_bytes()) + "\n";
    s += "inflight=" + std::to_string(manager_->inflight_publishes()) + "\n";
    s += "zombies=" + std::to_string(manager_->zombie_count()) + "\n";
    for (const lifecycle::ImageStats& st : manager_->stats()) {
      s += "entry=" + st.id + " bytes=" + std::to_string(st.physical_bytes) +
           " leases=" + std::to_string(st.leases) +
           " zombie=" + std::to_string(st.zombie ? 1 : 0) + "\n";
    }
    for (const warehouse::GoldenImage& image : warehouse_->list()) {
      s += "indexed=" + image.id + "\n";
    }
    auto dirs = store_->list_dir("warehouse");
    if (dirs.ok()) {
      std::vector<std::string> names = std::move(dirs).value();
      std::sort(names.begin(), names.end());
      for (const std::string& dir : names) {
        const std::string rel = "warehouse/" + dir;
        auto footprint = store_->tree_footprint(rel);
        s += "dir=" + dir + " bytes=" +
             (footprint.ok()
                  ? std::to_string(footprint.value().physical_bytes)
                  : std::string("?")) +
             " descriptor=" +
             std::to_string(store_->exists(rel + "/descriptor.xml") ? 1 : 0) +
             "\n";
      }
    }
    return digest_hex(s);
  }

  std::vector<Invariant> invariants() override {
    // Order matters: the orphan reaper mutates the store, so it runs last;
    // everything before it is read-only against the scenario's own state.
    return {
        {"ledger-matches-disk", [this] { return check_ledger(); }},
        {"no-leased-delete", [this] { return check_leases(); }},
        {"reservations-drain", [this] { return check_reservations(); }},
        {"warm-start-fixpoint", [this] { return check_warm_start(); }},
        {"reap-leaves-no-orphans", [this] { return check_reap(); }},
    };
  }

 private:
  // -- Operation scripts ----------------------------------------------------
  // Every operation is one engine event; operations meant to race share a
  // timestamp.  Outcomes go into the digest so protocol differences between
  // orderings are distinguishable terminal states.

  void record(const std::string& op, const Status& status) {
    outcomes_ += op + "=" +
                 (status.ok() ? "ok" : util::error_code_name(
                                           status.error().code())) +
                 "\n";
  }

  void at(sim::Engine* engine, double when, std::string tag,
          std::function<void()> fn) {
    engine->schedule_at(when, std::move(fn), std::move(tag));
  }

  void schedule_mixed(sim::Engine* engine) {
    for (int p = 0; p < config_.plants; ++p) {
      const std::string actor = "p" + std::to_string(p);
      const std::string own = "g" + std::to_string(p % config_.goldens);
      const std::string other =
          "g" + std::to_string((p + 1) % config_.goldens);
      const std::string fresh = "h" + std::to_string(p);
      at(engine, 1.0, actor + ".publish." + own, [this, actor, own] {
        record(actor + ".publish." + own,
               manager_->publish(golden(own, 16, 64)));
      });
      at(engine, 2.0, actor + ".acquire." + other, [this, actor, other] {
        record(actor + ".acquire." + other, manager_->acquire(other));
      });
      at(engine, 3.0, actor + ".evict." + own, [this, actor, own] {
        record(actor + ".evict." + own, manager_->evict(own));
      });
      at(engine, 3.0, actor + ".release." + other, [this, actor, other] {
        manager_->release(other);
        record(actor + ".release." + other, Status());
      });
      at(engine, 4.0, actor + ".publish." + fresh, [this, actor, fresh] {
        record(actor + ".publish." + fresh,
               manager_->publish(golden(fresh, 16, 64)));
      });
    }
  }

  void schedule_zombie_reuse(sim::Engine* engine) {
    // Evicting a leased g0 races a publish of the SAME id: whichever order
    // fires, the zombie's tree must never be materialized over.
    at(engine, 1.0, "p0.publish.g0", [this] {
      record("p0.publish.g0", manager_->publish(golden("g0", 16, 64)));
    });
    at(engine, 2.0, "p0.acquire.g0", [this] {
      record("p0.acquire.g0", manager_->acquire("g0"));
    });
    at(engine, 3.0, "p0.evict.g0", [this] {
      record("p0.evict.g0", manager_->evict("g0"));
    });
    at(engine, 3.0, "p1.publish.g0", [this] {
      record("p1.publish.g0", manager_->publish(golden("g0", 8, 32)));
    });
    at(engine, 4.0, "p0.release.g0", [this] {
      manager_->release("g0");
      record("p0.release.g0", Status());
    });
  }

  void schedule_publish_reservation(sim::Engine* engine) {
    // Two publishes race for a budget that holds two images only if the
    // first-published g0 is evicted; the descriptor-write fault makes one
    // of them fail AFTER admission, so its reservation must drain.
    at(engine, 1.0, "p0.publish.g0", [this] {
      record("p0.publish.g0", manager_->publish(golden("g0", 16, 64)));
    });
    at(engine, 2.0, "p0.publish.h0", [this] {
      record("p0.publish.h0", manager_->publish(golden("h0", 16, 64)));
    });
    at(engine, 2.0, "p1.publish.h1", [this] {
      record("p1.publish.h1", manager_->publish(golden("h1", 16, 64)));
    });
  }

  void schedule_evict_rollback(sim::Engine* engine) {
    // Zombifying a leased image whose descriptor removal fails must roll
    // back (re-attach); the t=4 race then retries the evict around the
    // lease release.
    at(engine, 1.0, "p0.publish.g0", [this] {
      record("p0.publish.g0", manager_->publish(golden("g0", 16, 64)));
    });
    at(engine, 2.0, "p0.acquire.g0", [this] {
      record("p0.acquire.g0", manager_->acquire("g0"));
    });
    at(engine, 3.0, "p0.evict.g0", [this] {
      record("p0.evict.g0", manager_->evict("g0"));
    });
    at(engine, 4.0, "p0.release.g0", [this] {
      manager_->release("g0");
      record("p0.release.g0", Status());
    });
    at(engine, 4.0, "p1.evict.g0", [this] {
      record("p1.evict.g0", manager_->evict("g0"));
    });
  }

  // -- Invariants ------------------------------------------------------------

  /// used_bytes == Σ ledger entries, and every LIVE entry's tree footprint
  /// on disk equals its ledger charge.  (Zombie trees shrink by exactly the
  /// removed descriptor, so they are existence-checked by check_leases and
  /// the reaper instead of byte-compared.)
  Status check_ledger() {
    std::uint64_t total = 0;
    for (const lifecycle::ImageStats& st : manager_->stats()) {
      total += st.physical_bytes;
      if (st.zombie) continue;
      auto footprint = store_->tree_footprint("warehouse/" + st.id);
      if (!footprint.ok()) {
        return Status(ErrorCode::kInternal,
                      "live image '" + st.id +
                          "' has no measurable tree: " +
                          footprint.error().message());
      }
      if (footprint.value().physical_bytes != st.physical_bytes) {
        return Status(
            ErrorCode::kInternal,
            "image '" + st.id + "': ledger says " +
                std::to_string(st.physical_bytes) + " bytes, disk has " +
                std::to_string(footprint.value().physical_bytes));
      }
    }
    if (total != manager_->used_bytes()) {
      return Status(ErrorCode::kInternal,
                    "ledger total " + std::to_string(total) +
                        " != used_bytes " +
                        std::to_string(manager_->used_bytes()));
    }
    return Status();
  }

  /// No image with live leases — zombie or not — may lose its tree.
  Status check_leases() {
    for (const lifecycle::ImageStats& st : manager_->stats()) {
      if (st.leases == 0) continue;
      if (!store_->exists("warehouse/" + st.id)) {
        return Status(ErrorCode::kInternal,
                      "image '" + st.id + "' holds " +
                          std::to_string(st.leases) +
                          " leases but its tree was deleted");
      }
    }
    return Status();
  }

  /// Publish admission reservations drain to zero once no publish runs.
  Status check_reservations() {
    if (manager_->reserved_bytes() != 0 ||
        manager_->inflight_publishes() != 0) {
      return Status(ErrorCode::kInternal,
                    "publish reservations leaked: " +
                        std::to_string(manager_->reserved_bytes()) +
                        " bytes across " +
                        std::to_string(manager_->inflight_publishes()) +
                        " in-flight publishes at quiescence");
    }
    return Status();
  }

  /// warm_start() over the same store (a fresh warehouse + manager, i.e. a
  /// crash that drops all memory) reconstructs exactly the live index, and
  /// its ledger equals the live images' on-disk footprints.
  Status check_warm_start() {
    auto warehouse2 =
        std::make_unique<warehouse::Warehouse>(store_.get(), "warehouse");
    auto manager2 =
        lifecycle::LifecycleManager::create(warehouse2.get(), {});
    if (!manager2.ok()) return manager2.error();
    Status warmed = manager2.value()->warm_start();
    if (!warmed.ok()) return warmed;

    std::vector<std::string> live;
    std::uint64_t live_bytes = 0;
    for (const warehouse::GoldenImage& image : warehouse_->list()) {
      live.push_back(image.id);
      auto footprint = store_->tree_footprint("warehouse/" + image.id);
      if (footprint.ok()) live_bytes += footprint.value().physical_bytes;
    }
    std::vector<std::string> recovered;
    for (const warehouse::GoldenImage& image : warehouse2->list()) {
      recovered.push_back(image.id);
    }
    if (recovered != live) {
      return Status(ErrorCode::kInternal,
                    "warm_start index [" + util::join(recovered, ",") +
                        "] != live index [" + util::join(live, ",") + "]");
    }
    if (manager2.value()->used_bytes() != live_bytes) {
      return Status(ErrorCode::kInternal,
                    "warm_start ledger " +
                        std::to_string(manager2.value()->used_bytes()) +
                        " != live on-disk bytes " +
                        std::to_string(live_bytes));
    }
    return Status();
  }

  /// After one orphan sweep, every directory under the warehouse root is
  /// either descriptor-backed or a lease-protected zombie, and a second
  /// sweep finds nothing (idempotence).
  Status check_reap() {
    auto first = manager_->reap_orphans();
    if (!first.ok()) return first.error();
    auto dirs = store_->list_dir("warehouse");
    if (!dirs.ok()) return Status();  // warehouse root empty or gone: clean
    for (const std::string& dir : dirs.value()) {
      if (store_->exists("warehouse/" + dir + "/descriptor.xml")) continue;
      bool live_zombie = false;
      for (const lifecycle::ImageStats& st : manager_->stats()) {
        if (st.id == dir && st.zombie && st.leases > 0) live_zombie = true;
      }
      if (!live_zombie) {
        return Status(ErrorCode::kInternal,
                      "orphan survived the sweep: warehouse/" + dir +
                          " has no descriptor and is not a leased zombie");
      }
    }
    auto second = manager_->reap_orphans();
    if (!second.ok()) return second.error();
    if (second.value().directories != 0) {
      return Status(ErrorCode::kInternal,
                    "orphan sweep is not idempotent: second pass removed " +
                        std::to_string(second.value().directories) +
                        " directories");
    }
    return Status();
  }

  LifecycleConfig config_;
  std::filesystem::path root_;
  std::unique_ptr<storage::ArtifactStore> store_;
  std::unique_ptr<warehouse::Warehouse> warehouse_;
  std::unique_ptr<lifecycle::LifecycleManager> manager_;
  std::string outcomes_;
};

}  // namespace

std::string LifecycleConfig::to_spec() const {
  return "variant=" + variant + "|plants=" + std::to_string(plants) +
         "|goldens=" + std::to_string(goldens) +
         "|budget_mb=" + std::to_string(budget_mb) + "|fault=" + fault_spec;
}

Result<LifecycleConfig> LifecycleConfig::parse(const std::string& spec) {
  LifecycleConfig config;
  for (const std::string& part : util::split(spec, '|')) {
    if (util::trim(part).empty()) continue;
    const std::size_t eq = part.find('=');
    if (eq == std::string::npos) {
      return Result<LifecycleConfig>(
          Error(ErrorCode::kParseError,
                "lifecycle config: expected key=value, got '" + part + "'"));
    }
    const std::string key(util::trim(part.substr(0, eq)));
    const std::string value(util::trim(part.substr(eq + 1)));
    long long parsed = 0;
    if (key == "variant") {
      config.variant = value;
    } else if (key == "fault") {
      config.fault_spec = value;
    } else if (key == "plants" && util::parse_int64(value, &parsed) &&
               parsed >= 0) {
      config.plants = static_cast<int>(parsed);
    } else if (key == "goldens" && util::parse_int64(value, &parsed) &&
               parsed >= 0) {
      config.goldens = static_cast<int>(parsed);
    } else if (key == "budget_mb" && util::parse_int64(value, &parsed) &&
               parsed >= 0) {
      config.budget_mb = static_cast<std::uint64_t>(parsed);
    } else {
      return Result<LifecycleConfig>(Error(
          ErrorCode::kParseError,
          "lifecycle config: bad entry '" + part + "'"));
    }
  }
  return config;
}

Result<ScenarioFactory> lifecycle_factory(const LifecycleConfig& config) {
  if (!known_variant(config.variant)) {
    return Result<ScenarioFactory>(
        Error(ErrorCode::kInvalidArgument,
              "lifecycle scenario: unknown variant '" + config.variant +
                  "' (mixed, zombie_reuse, publish_reservation, "
                  "evict_rollback)"));
  }
  if (config.plants < 1 || config.plants > 4 || config.goldens < 1 ||
      config.goldens > 4) {
    return Result<ScenarioFactory>(Error(
        ErrorCode::kInvalidArgument,
        "lifecycle scenario: plants and goldens must be in 1..4 (state "
        "space is factorial in the actor count)"));
  }
  const std::string fault_spec = effective_fault_spec(config);
  if (!fault_spec.empty()) {
    auto plan = fault::FaultPlan::parse(fault_spec, 1);
    if (!plan.ok()) return plan.propagate<ScenarioFactory>();
  }
  return ScenarioFactory([config]() -> std::unique_ptr<Scenario> {
    return std::make_unique<LifecycleScenario>(config);
  });
}

Result<ScenarioFactory> factory_for_trace(const Trace& trace) {
  if (trace.scenario != "lifecycle") {
    return Result<ScenarioFactory>(
        Error(ErrorCode::kNotFound,
              "no scenario registered under '" + trace.scenario + "'"));
  }
  auto config = LifecycleConfig::parse(trace.config);
  if (!config.ok()) return config.propagate<ScenarioFactory>();
  return lifecycle_factory(config.value());
}

}  // namespace vmp::explore
