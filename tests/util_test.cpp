// Unit tests for src/util: errors, random streams, statistics, strings,
// identifiers, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>

#include "util/error.h"
#include "util/ids.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace vmp::util {
namespace {

// -- Error / Result / Status --------------------------------------------------

TEST(ErrorTest, DefaultIsOk) {
  Error e;
  EXPECT_TRUE(e.ok());
  EXPECT_EQ(e.to_string(), "OK");
}

TEST(ErrorTest, ToStringIncludesCodeAndMessage) {
  Error e(ErrorCode::kNotFound, "no golden machine");
  EXPECT_EQ(e.to_string(), "NOT_FOUND: no golden machine");
}

TEST(ErrorTest, WrapPrependsContext) {
  Error e = Error(ErrorCode::kInternal, "disk full").wrap("while cloning vm1");
  EXPECT_EQ(e.message(), "while cloning vm1: disk full");
}

TEST(ErrorTest, EveryCodeHasAName) {
  for (std::uint32_t c = 0; c <= 14; ++c) {
    EXPECT_STRNE(error_code_name(static_cast<ErrorCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(ErrorCode::kTimeout, "too slow");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kTimeout);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, ValueAccessOnErrorThrows) {
  Result<int> r(ErrorCode::kInternal, "boom");
  EXPECT_THROW(r.value(), BadResultAccess);
}

TEST(ResultTest, ErrorAccessOnValueThrows) {
  Result<int> r(1);
  EXPECT_THROW(r.error(), BadResultAccess);
}

TEST(ResultTest, PropagateConvertsType) {
  Result<int> r(ErrorCode::kNotFound, "x");
  Result<std::string> s = r.propagate<std::string>();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code(), ErrorCode::kNotFound);
}

TEST(StatusTest, DefaultOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, CarriesError) {
  Status s(ErrorCode::kUnavailable, "down");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code(), ErrorCode::kUnavailable);
}

TEST(StatusTest, MoveOnlyValueTypesWork) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 5);
}

// -- Random -------------------------------------------------------------------

TEST(RandomTest, DeterministicForSameSeed) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(RandomTest, NextBelowRespectsBound) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(10), 10u);
  }
}

TEST(RandomTest, NextBelowOneIsZero) {
  SplitMix64 rng(7);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(RandomTest, DoubleInUnitInterval) {
  SplitMix64 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RandomTest, UniformWithinRange) {
  SplitMix64 rng(11);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.uniform(5.0, 6.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 6.0);
  }
}

TEST(RandomTest, NormalHasRoughlyRightMoments) {
  SplitMix64 rng(13);
  Summary s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(RandomTest, ExponentialHasRoughlyRightMean) {
  SplitMix64 rng(17);
  Summary s;
  for (int i = 0; i < 20000; ++i) s.add(rng.exponential(3.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.15);
}

TEST(RandomTest, BernoulliEdgeCases) {
  SplitMix64 rng(19);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(RandomTest, BernoulliFrequency) {
  SplitMix64 rng(23);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RandomTest, DerivedSeedsAreStreamIndependent) {
  EXPECT_NE(derive_seed(1, "alpha"), derive_seed(1, "beta"));
  EXPECT_NE(derive_seed(1, "alpha"), derive_seed(2, "alpha"));
  EXPECT_EQ(derive_seed(1, "alpha"), derive_seed(1, "alpha"));
}

TEST(RandomTest, LognormalIsPositive) {
  SplitMix64 rng(29);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
}

// -- Stats ---------------------------------------------------------------------

TEST(SummaryTest, EmptySummaryIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(SummaryTest, BasicMoments) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(PercentileTest, NearestRank) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_EQ(percentile(v, 50), 5.0);
  EXPECT_EQ(percentile(v, 100), 10.0);
  EXPECT_EQ(percentile(v, 0), 1.0);
  EXPECT_EQ(percentile(v, 90), 9.0);
}

TEST(PercentileTest, EmptyIsZero) {
  EXPECT_EQ(percentile({}, 50), 0.0);
}

TEST(HistogramTest, PaperFigure4Binning) {
  // Figure 4: bins of width 10 centered at 5,15,...,85 -> [0,90).
  Histogram h(0, 90, 10);
  EXPECT_EQ(h.bin_count(), 9u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_center(8), 85.0);
}

TEST(HistogramTest, CountsAndNormalization) {
  Histogram h(0, 30, 10);
  h.add(5);
  h.add(6);
  h.add(15);
  h.add(29);
  EXPECT_EQ(h.count_at(0), 2u);
  EXPECT_EQ(h.count_at(1), 1u);
  EXPECT_EQ(h.count_at(2), 1u);
  EXPECT_DOUBLE_EQ(h.normalized(0), 0.5);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, OutOfRangeClampsToEdgeBins) {
  Histogram h(0, 30, 10);
  h.add(-5);
  h.add(100);
  EXPECT_EQ(h.count_at(0), 1u);
  EXPECT_EQ(h.count_at(2), 1u);
}

TEST(HistogramTest, BadSpecThrows) {
  EXPECT_THROW(Histogram(0, 10, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(10, 0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0, 25, 10), std::invalid_argument);
}

TEST(HistogramTest, TableRendering) {
  Histogram h(0, 20, 10);
  h.add(5);
  const std::string table = h.to_table("test");
  EXPECT_NE(table.find("# test"), std::string::npos);
  EXPECT_NE(table.find("5 1 1"), std::string::npos);
}

// -- Strings -------------------------------------------------------------------

TEST(StringsTest, SplitBasic) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringsTest, SplitNoSeparator) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, JoinRoundTrip) {
  EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(join({}, "-"), "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(starts_with("vmplant", "vm"));
  EXPECT_FALSE(starts_with("vm", "vmplant"));
  EXPECT_TRUE(ends_with("disk0.redo", ".redo"));
  EXPECT_FALSE(ends_with("redo", "disk0.redo"));
}

TEST(StringsTest, CaseInsensitiveEquals) {
  EXPECT_TRUE(iequals("Requirements", "requirements"));
  EXPECT_FALSE(iequals("Rank", "Ran"));
}

TEST(StringsTest, ParseInt64) {
  long long v = 0;
  EXPECT_TRUE(parse_int64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(parse_int64(" -7 ", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(parse_int64("4x", &v));
  EXPECT_FALSE(parse_int64("", &v));
}

TEST(StringsTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(parse_double("4.5", &v));
  EXPECT_DOUBLE_EQ(v, 4.5);
  EXPECT_TRUE(parse_double("1e3", &v));
  EXPECT_DOUBLE_EQ(v, 1000.0);
  EXPECT_FALSE(parse_double("abc", &v));
}

TEST(StringsTest, FormatDoubleRoundTrips) {
  for (double v : {0.0, 1.0, -4.5, 0.0625, 1e-9, 12345678.9}) {
    double parsed = 0;
    ASSERT_TRUE(parse_double(format_double(v), &parsed)) << format_double(v);
    EXPECT_DOUBLE_EQ(parsed, v);
  }
}

// -- Ids ------------------------------------------------------------------------

TEST(IdsTest, SequentialAndPrefixed) {
  IdGenerator gen("vm");
  EXPECT_EQ(gen.next(), "vm-0001");
  EXPECT_EQ(gen.next(), "vm-0002");
  EXPECT_EQ(gen.issued(), 2u);
}

TEST(IdsTest, ThreadSafeUniqueness) {
  IdGenerator gen("x", 6);
  std::set<std::string> ids;
  std::mutex mu;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        const std::string id = gen.next();
        std::lock_guard<std::mutex> lock(mu);
        ids.insert(id);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ids.size(), 1600u);
}

// -- ThreadPool -------------------------------------------------------------------

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, WaitIdleDrains) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      counter.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ExceptionsSurfaceThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("bad"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

}  // namespace
}  // namespace vmp::util
