# Empty compiler generated dependencies file for dag_matching.
# This may be replaced when dependencies are built.
