file(REMOVE_RECURSE
  "CMakeFiles/dag_matching_test.dir/dag_matching_test.cpp.o"
  "CMakeFiles/dag_matching_test.dir/dag_matching_test.cpp.o.d"
  "dag_matching_test"
  "dag_matching_test.pdb"
  "dag_matching_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_matching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
