file(REMOVE_RECURSE
  "CMakeFiles/vmp_classad.dir/classad.cpp.o"
  "CMakeFiles/vmp_classad.dir/classad.cpp.o.d"
  "CMakeFiles/vmp_classad.dir/expr.cpp.o"
  "CMakeFiles/vmp_classad.dir/expr.cpp.o.d"
  "CMakeFiles/vmp_classad.dir/matchmaker.cpp.o"
  "CMakeFiles/vmp_classad.dir/matchmaker.cpp.o.d"
  "CMakeFiles/vmp_classad.dir/parser.cpp.o"
  "CMakeFiles/vmp_classad.dir/parser.cpp.o.d"
  "CMakeFiles/vmp_classad.dir/value.cpp.o"
  "CMakeFiles/vmp_classad.dir/value.cpp.o.d"
  "libvmp_classad.a"
  "libvmp_classad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmp_classad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
