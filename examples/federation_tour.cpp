// Federation tour: a sharded grid site whose plants hide behind
// ShardBrokers (DESIGN.md §16, paper §3.1/§3.3).
//
// The walk-through (virtual clock, seeded shop — the output is
// byte-stable, and CI diffs two runs to prove it):
//   phase 1  topology — 8 plants behind 2 shard brokers: only the brokers
//            appear in the registry, like plants behind a private-network
//            gateway (paper §3.3);
//   phase 2  creations route through the tier — the shop auctions over 2
//            aggregate bids instead of 8, each broker forwards to its
//            cheapest member, and repeat bids serve from the TTL'd cache;
//   phase 3  the off-path refresh — refresh_all() re-prices every cached
//            DAG-class with one estimate_batch message per member;
//   phase 4  a broker dies — creations keep landing on the surviving
//            shard's members (the shop fails over to the next-best bid);
//   phase 5  fleet sweep — the aggregator publishes one obs://broker/<n>
//            ad per shard, the per-shard view tools/fleet_report.py
//            --by-shard renders.
//
// Build & run:  ./build/examples/federation_tour
#include <cstdio>
#include <map>
#include <string>

#include "cluster/deployment.h"
#include "core/fleet.h"
#include "core/info_system.h"
#include "core/request.h"
#include "util/error.h"
#include "workload/request_gen.h"

namespace {

std::map<std::string, int> run_creates(vmp::cluster::SimulatedDeployment& site,
                                       std::size_t count,
                                       std::size_t first_index) {
  using namespace vmp;
  std::map<std::string, int> placements;
  const auto requests =
      workload::workspace_requests(32, count, "ufl.edu", "vmware-gsx");
  for (std::size_t i = 0; i < count; ++i) {
    core::CreateRequest request = requests[i];
    request.request_id = "tour-" + std::to_string(first_index + i);
    auto sample = site.run_request(request);
    if (!sample.ok()) {
      std::printf("  create %s failed: %s\n", request.request_id.c_str(),
                  util::error_code_name(sample.error().code()));
      continue;
    }
    placements[sample.value().plant]++;
  }
  return placements;
}

void print_placements(const std::map<std::string, int>& placements) {
  std::printf("  placements:");
  for (const auto& [plant, n] : placements) {
    std::printf("  %s=%d", plant.c_str(), n);
  }
  std::printf("\n");
}

void print_broker_stats(vmp::cluster::SimulatedDeployment& site) {
  std::printf("  %-8s %8s %10s %10s %10s\n", "shard", "members", "forwarded",
              "cached", "refreshed");
  for (std::size_t s = 0; s < site.broker_count(); ++s) {
    auto& broker = site.broker(s);
    std::printf("  %-8s %8zu %10llu %10llu %10llu\n", broker.name().c_str(),
                broker.members().size(),
                static_cast<unsigned long long>(broker.creations_forwarded()),
                static_cast<unsigned long long>(broker.bids_cached_served()),
                static_cast<unsigned long long>(broker.bids_refreshed()));
  }
}

}  // namespace

int main() {
  using namespace vmp;

  cluster::DeploymentConfig config;
  config.plant_count = 8;
  config.federation_shards = 2;
  config.seed = 2004;
  cluster::SimulatedDeployment site(config);
  if (!workload::publish_paper_goldens(&site.warehouse()).ok()) {
    std::fprintf(stderr, "failed to publish golden machines\n");
    return 1;
  }

  std::printf("== phase 1: topology ==\n");
  std::printf("  plants: %zu, shard brokers: %zu\n", site.plant_count(),
              site.broker_count());
  std::printf("  public registry records:");
  for (const auto& record : site.registry().discover("vmplant")) {
    std::printf("  %s", record.address.c_str());
  }
  std::printf("\n");

  std::printf("== phase 2: creations route through the tier ==\n");
  print_placements(run_creates(site, 12, 0));
  print_broker_stats(site);

  std::printf("== phase 3: off-path cache refresh ==\n");
  std::printf("  refresh_all() re-priced %zu cached classes\n",
              site.refresh_federation());
  print_broker_stats(site);

  std::printf("== phase 4: shard1 dies, the site degrades ==\n");
  site.bus().set_down("shard1", true);
  const auto survivors = run_creates(site, 6, 12);
  print_placements(survivors);
  bool all_on_shard0 = true;
  for (const auto& [plant, n] : survivors) {
    (void)n;
    // shard0 owns the even-numbered plants (round-robin membership).
    const int index = std::atoi(plant.substr(5).c_str());
    if (index % 2 != 0) all_on_shard0 = false;
  }
  std::printf("  all survivors on shard0's members: %s\n",
              all_on_shard0 ? "yes" : "no");
  std::printf("  dead-broker bids skipped by the shop: %llu\n",
              static_cast<unsigned long long>(site.shop().bids_skipped()));
  site.bus().set_down("shard1", false);

  std::printf("== phase 5: fleet sweep publishes per-shard ads ==\n");
  core::VmInformationSystem info;
  core::FleetAggregator aggregator(core::FleetAggregatorConfig{}, &site.bus(),
                                   &site.registry(), &info);
  std::printf("  sweep answered by %zu services\n", aggregator.sweep());
  for (const auto& state : aggregator.broker_states()) {
    std::printf("  obs://broker/%s members=%d forwarded=%llu\n",
                state.broker.c_str(), state.members,
                static_cast<unsigned long long>(state.creations_forwarded));
  }
  std::printf("done\n");
  return 0;
}
