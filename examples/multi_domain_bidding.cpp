// Cost-based plant selection across client domains (paper Section 3.4).
//
// Recreates the paper's worked example: two plants A and B, each with 4
// host-only networks and room for 32 VMs; network cost 50, compute cost 4
// per resident VM.  A single client domain keeps winning cheaper compute
// bids on its first plant until the 13th VM, when the other plant's
// one-time network cost becomes the better deal.
//
// Build & run:  ./build/examples/multi_domain_bidding
#include <cstdio>
#include <filesystem>

#include "core/plant.h"
#include "core/shop.h"
#include "storage/artifact_store.h"
#include "warehouse/warehouse.h"
#include "workload/request_gen.h"

int main() {
  using namespace vmp;

  const auto sandbox =
      std::filesystem::temp_directory_path() / "vmplants-bidding-example";
  std::filesystem::remove_all(sandbox);
  storage::ArtifactStore store(sandbox);
  warehouse::Warehouse wh(&store, "warehouse");
  if (!workload::publish_paper_goldens(&wh, {32}).ok()) return 1;

  net::MessageBus bus;
  net::ServiceRegistry registry;

  auto make_plant = [&](const std::string& name) {
    core::PlantConfig pc;
    pc.name = name;
    pc.cost_model = "network-compute";  // the paper's §3.4 model
    pc.host_only_networks = 4;
    pc.max_vms = 32;
    return std::make_unique<core::VmPlant>(pc, &store, &wh);
  };
  auto plant_a = make_plant("plantA");
  auto plant_b = make_plant("plantB");
  (void)plant_a->attach_to_bus(&bus, &registry);
  (void)plant_b->attach_to_bus(&bus, &registry);

  core::VmShop shop(core::ShopConfig{}, &bus, &registry);
  (void)shop.attach_to_bus();

  std::printf("%-5s %-10s %-10s %-8s %6s %6s\n", "req", "bid(A)", "bid(B)",
              "winner", "VMs@A", "VMs@B");

  for (int i = 0; i < 16; ++i) {
    core::CreateRequest request =
        workload::workspace_request(32, i, "ufl.edu");

    auto bids = shop.collect_bids(request);
    double bid_a = -1, bid_b = -1;
    for (const core::Bid& bid : bids) {
      if (bid.plant_address == "plantA") bid_a = bid.cost;
      if (bid.plant_address == "plantB") bid_b = bid.cost;
    }

    auto ad = shop.create(request);
    if (!ad.ok()) {
      std::fprintf(stderr, "create failed: %s\n",
                   ad.error().to_string().c_str());
      return 1;
    }
    std::printf("%-5d %-10.0f %-10.0f %-8s %6zu %6zu\n", i + 1, bid_a, bid_b,
                ad.value().get_string(core::attrs::kPlant).value().c_str(),
                plant_a->active_vms(), plant_b->active_vms());
  }

  std::printf("\na second domain pays the network cost wherever it lands:\n");
  auto other = shop.create(workload::workspace_request(32, 99, "wisc.edu"));
  if (other.ok()) {
    std::printf("  wisc.edu VM on %s, network %s\n",
                other.value().get_string(core::attrs::kPlant).value().c_str(),
                other.value().get_string(core::attrs::kNetwork).value().c_str());
  }

  std::printf("\nhost-only network assignments:\n");
  for (auto* plant : {plant_a.get(), plant_b.get()}) {
    std::printf("  %s: %zu/%zu networks free, %zu domains served\n",
                plant->name().c_str(), plant->allocator().free_networks(),
                plant->allocator().total_networks(),
                plant->allocator().domains_served());
  }

  std::filesystem::remove_all(sandbox);
  return 0;
}
