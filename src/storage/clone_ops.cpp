#include "storage/clone_ops.h"

#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace vmp::storage {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

namespace {

/// Linked vs full-copy latency split (paper Figure 5: full copies are the
/// 210-second baseline, linked clones the optimisation being measured).
struct CloneMetrics {
  obs::Counter* linked;
  obs::Counter* full;
  obs::Counter* failures;
  obs::Timer* linked_seconds;
  obs::Timer* full_seconds;

  static CloneMetrics& get() {
    static CloneMetrics m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::instance();
      return CloneMetrics{r.counter("storage.clone_linked.count"),
                          r.counter("storage.clone_full.count"),
                          r.counter("storage.clone_fail.count"),
                          r.timer("storage.clone_linked.seconds"),
                          r.timer("storage.clone_full.seconds")};
    }();
    return m;
  }
};

}  // namespace

const char* clone_strategy_name(CloneStrategy strategy) noexcept {
  switch (strategy) {
    case CloneStrategy::kLinked: return "linked";
    case CloneStrategy::kFullCopy: return "full-copy";
  }
  return "linked";
}

IoAccounting CloneReport::total() const {
  IoAccounting out;
  out += config;
  out += memory;
  out += disk;
  out += redo;
  return out;
}

static Result<CloneReport> clone_image_impl(ArtifactStore* store,
                                            const ImageLayout& golden,
                                            const MachineSpec& spec,
                                            const std::string& clone_dir,
                                            CloneStrategy strategy) {
  if (strategy == CloneStrategy::kLinked &&
      spec.disk.mode == DiskMode::kPersistent) {
    return Result<CloneReport>(Error(
        ErrorCode::kFailedPrecondition,
        "linked clone requires a non-persistent disk; golden image '" +
            golden.dir + "' is persistent"));
  }
  if (store->exists(clone_dir)) {
    return Result<CloneReport>(
        Error(ErrorCode::kAlreadyExists, "clone dir exists: " + clone_dir));
  }
  VMP_RETURN_IF_ERROR_AS(store->make_dir(clone_dir), CloneReport);

  // A failed artefact copy (disk full, injected store.write fault, ...)
  // must not leave a half-written clone directory behind: the partial tree
  // is removed before the error propagates, so a retry or a failover to
  // another plant starts from a clean slate.
  auto abort_clone = [&](const Error& error) {
    (void)store->remove_tree(clone_dir);
    return Result<CloneReport>(error);
  };

  const ImageLayout clone{clone_dir};
  CloneReport report;

  // Config file is always replicated (it is tiny and per-clone mutable).
  auto cfg = store->copy_file(golden.config_path(), clone.config_path());
  if (!cfg.ok()) return abort_clone(cfg.error());
  report.config = cfg.value();

  // Memory state: VMware GSX requires the .vmss to be a private copy
  // (paper footnote 2) — this is the size-proportional cost of cloning.
  if (spec.suspended) {
    auto mem = store->copy_file(golden.memory_path(), clone.memory_path());
    if (!mem.ok()) return abort_clone(mem.error());
    report.memory = mem.value();
  }

  // Disk spans: links (cheap) or copies (the 210-second baseline).
  const auto golden_spans = golden.span_paths(spec.disk);
  const auto clone_spans = clone.span_paths(spec.disk);
  for (std::size_t i = 0; i < golden_spans.size(); ++i) {
    auto op = strategy == CloneStrategy::kLinked
                  ? store->link_file(golden_spans[i], clone_spans[i])
                  : store->copy_file(golden_spans[i], clone_spans[i]);
    if (!op.ok()) return abort_clone(op.error());
    report.disk += op.value();
  }

  // Base redo log is replicated so the clone starts from the golden state's
  // committed view.
  auto redo = store->copy_file(golden.base_redo_path(spec.disk),
                               clone.base_redo_path(spec.disk));
  if (!redo.ok()) return abort_clone(redo.error());
  report.redo = redo.value();

  return report;
}

Result<CloneReport> clone_image(ArtifactStore* store,
                                const ImageLayout& golden,
                                const MachineSpec& spec,
                                const std::string& clone_dir,
                                CloneStrategy strategy) {
  CloneMetrics& metrics = CloneMetrics::get();
  obs::ScopedSpan span("storage.clone", "storage",
                       std::string(clone_strategy_name(strategy)) + " " +
                           clone_dir);
  const auto start = std::chrono::steady_clock::now();

  auto result = clone_image_impl(store, golden, spec, clone_dir, strategy);

  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (strategy == CloneStrategy::kLinked) {
    metrics.linked->add();
    metrics.linked_seconds->record(elapsed);
  } else {
    metrics.full->add();
    metrics.full_seconds->record(elapsed);
  }
  if (!result.ok()) {
    metrics.failures->add();
    span.set_status(util::error_code_name(result.error().code()));
  }
  return result;
}

Result<IoAccounting> destroy_clone(ArtifactStore* store,
                                   const std::string& clone_dir) {
  if (!store->exists(clone_dir)) {
    return Result<IoAccounting>(
        Error(ErrorCode::kNotFound, "clone dir missing: " + clone_dir));
  }
  return store->remove_tree(clone_dir);
}

}  // namespace vmp::storage
