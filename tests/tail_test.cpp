// Tail-latency forensics tests (DESIGN.md §14): the critical-path analyzer
// against the golden fixture shared with tools/trace_summarize.py, the
// tail sampler's quantile/warmup/budget semantics, and the end-to-end
// acceptance scenario — a create slowed by an injected evict-to-fit stall
// whose retained exemplar correlates spans, journal records, and the
// fault firing in causal order.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "lifecycle/lifecycle.h"
#include "obs/critical_path.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/tail.h"
#include "obs/trace.h"
#include "storage/artifact_store.h"
#include "warehouse/warehouse.h"

namespace vmp::obs {
namespace {

// -- Golden fixture loading (ad-hoc parse of Span::to_json lines) -----------

std::string str_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t start = at + needle.size();
  return line.substr(start, line.find('"', start) - start);
}

double num_field(const std::string& line, const std::string& key,
                 double fallback) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return fallback;
  return std::strtod(line.c_str() + at + needle.size(), nullptr);
}

std::vector<Span> load_golden_fixture() {
  const std::filesystem::path path =
      std::filesystem::path(VMP_TRACE_DIR) / "tail_golden.jsonl";
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::vector<Span> spans;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Span s;
    s.trace_id = str_field(line, "trace");
    s.span_id = static_cast<std::uint64_t>(num_field(line, "span", 0));
    s.parent_id = static_cast<std::uint64_t>(num_field(line, "parent", 0));
    s.name = str_field(line, "name");
    s.component = str_field(line, "component");
    s.start_s = num_field(line, "start", 0.0);
    s.end_s = num_field(line, "end", 0.0);  // missing end -> 0 (open span)
    s.status = str_field(line, "status");
    spans.push_back(std::move(s));
  }
  return spans;
}

Span make_root(const std::string& trace_id, const std::string& name,
               double start, double end, const std::string& status = "ok") {
  Span s;
  s.trace_id = trace_id;
  s.span_id = 1;
  s.parent_id = 0;
  s.name = name;
  s.start_s = start;
  s.end_s = end;
  s.status = status;
  return s;
}

// -- Critical path ----------------------------------------------------------

// The expected self-times are hard-coded HERE and in
// tools/test_trace_summarize.py: both sides agreeing with the same numbers
// proves the C++ analyzer and the Python --critical-path walk match.
TEST(CriticalPathTest, GoldenFixtureSelfTimes) {
  const std::vector<Span> spans = load_golden_fixture();
  ASSERT_EQ(spans.size(), 7u);
  const CriticalPath path = critical_path(spans);
  ASSERT_EQ(path.entries.size(), 4u);
  EXPECT_DOUBLE_EQ(path.total_s, 1.0);

  EXPECT_EQ(path.entries[0].span.name, "shop.create");
  EXPECT_NEAR(path.entries[0].self_s, 0.1, 1e-9);
  EXPECT_EQ(path.entries[1].span.name, "plant.create");
  EXPECT_NEAR(path.entries[1].self_s, 0.1, 1e-9);
  EXPECT_EQ(path.entries[2].span.name, "lifecycle.publish");
  EXPECT_NEAR(path.entries[2].self_s, 0.2, 1e-9);
  EXPECT_EQ(path.entries[3].span.name, "lifecycle.evict_to_fit");
  EXPECT_NEAR(path.entries[3].self_s, 0.4, 1e-9);

  const std::map<std::string, double> selves = self_times(path);
  EXPECT_NEAR(selves.at("lifecycle.evict_to_fit"), 0.4, 1e-9);
}

TEST(CriticalPathTest, EmptyAndRootlessTraces) {
  EXPECT_TRUE(critical_path({}).empty());
  // A lone span whose parent is missing is an orphan: re-parented to the
  // virtual root, it becomes the whole path.
  Span s = make_root("t", "orphan", 1.0, 3.0);
  s.parent_id = 42;
  const CriticalPath path = critical_path({s});
  ASSERT_EQ(path.entries.size(), 1u);
  EXPECT_EQ(path.entries[0].span.name, "orphan");
  EXPECT_DOUBLE_EQ(path.entries[0].self_s, 2.0);
}

TEST(CriticalPathTest, NegativeDurationsClampToZero) {
  // end < start (clock skew / missing end): attributes zero, never negative.
  const Span s = make_root("t", "skewed", 5.0, 1.0);
  EXPECT_DOUBLE_EQ(attributed_duration(s), 0.0);
  const CriticalPath path = critical_path({s});
  ASSERT_EQ(path.entries.size(), 1u);
  EXPECT_DOUBLE_EQ(path.entries[0].self_s, 0.0);
}

TEST(CriticalPathTest, RecordsSelfTimeHistograms) {
  MetricsRegistry registry;
  std::vector<Span> spans = load_golden_fixture();
  record_critical_path(critical_path(spans), &registry);
  const MetricsSnapshot snap = registry.snapshot();
  const TimerStats* stats =
      snap.timer_stats("tail.self.lifecycle.evict_to_fit.seconds");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->count, 1u);
  EXPECT_NEAR(stats->sum_s, 0.4, 1e-9);
}

// -- Tail sampler semantics -------------------------------------------------

TailSamplerConfig small_config() {
  TailSamplerConfig config;
  config.quantile = 0.5;
  config.reservoir = 8;  // stride 1: threshold recomputed every insert
  config.warmup = 4;
  config.max_retained = 4;
  config.record_metrics = false;
  return config;
}

TEST(TailSamplerTest, WarmupGatesTheQuantileAndErrorsBypassIt) {
  Tracer tracer;
  Journal journal(64);
  TailSampler sampler;
  sampler.arm(small_config(), &tracer, &journal);

  // Before warmup: even a (relatively) slow ok root is not retained...
  for (int i = 0; i < 3; ++i) {
    sampler.observe_root(
        make_root("warm-" + std::to_string(i), "op", 0.0, 0.01));
  }
  EXPECT_LT(sampler.threshold("op"), 0.0);
  sampler.observe_root(make_root("fast-but-early", "op", 0.0, 9.0));
  EXPECT_EQ(sampler.exemplars().size(), 0u);

  // ...but an errored root always is, warmup or not.
  sampler.observe_root(make_root("boom", "op", 0.0, 0.001, "UNAVAILABLE"));
  ASSERT_EQ(sampler.exemplars().size(), 1u);
  EXPECT_EQ(sampler.exemplars()[0].cause, "error");

  // Past warmup the quantile gate arms; strictly-above retains.
  EXPECT_GE(sampler.threshold("op"), 0.0);
  sampler.observe_root(make_root("slow", "op", 0.0, 20.0));
  ASSERT_EQ(sampler.exemplars().size(), 2u);
  EXPECT_EQ(sampler.exemplars()[1].cause, "slow");
  EXPECT_EQ(sampler.observed(), 6u);
  sampler.disarm();
  tracer.disarm();
}

TEST(TailSamplerTest, RetentionBudgetEvictsShortestNonError) {
  Tracer tracer;
  Journal journal(64);
  TailSampler sampler;
  TailSamplerConfig config = small_config();
  config.warmup = 1;
  config.max_retained = 2;
  sampler.arm(config, &tracer, &journal);

  sampler.observe_root(make_root("seed", "op", 0.0, 0.01));  // arms threshold
  sampler.observe_root(make_root("slow-a", "op", 0.0, 1.0));
  sampler.observe_root(make_root("err-b", "op", 0.0, 0.02, "UNAVAILABLE"));
  ASSERT_EQ(sampler.exemplars().size(), 2u);

  // Budget full.  A longer slow one replaces slow-a; the error (higher
  // retention priority despite its tiny duration) survives.
  sampler.observe_root(make_root("slow-c", "op", 0.0, 2.0));
  const std::vector<TailExemplar> kept = sampler.exemplars();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_FALSE(sampler.exemplar("slow-a").has_value());
  EXPECT_TRUE(sampler.exemplar("err-b").has_value());
  EXPECT_TRUE(sampler.exemplar("slow-c").has_value());
  EXPECT_EQ(sampler.budget_evictions(), 1u);
  EXPECT_EQ(sampler.retained_total(), 3u);
  sampler.disarm();
  tracer.disarm();
}

TEST(TailSamplerTest, CorrelatesOnlyMatchingJournalRecords) {
  Tracer tracer;
  Journal journal(64);
  // Deterministic virtual time: every read advances 50 ms, so any real
  // root lands above the seeded 10 ms threshold.
  auto tick = std::make_shared<double>(0.0);
  tracer.set_clock([tick] { return *tick += 0.05; });
  TailSampler sampler;
  TailSamplerConfig config = small_config();
  config.warmup = 1;
  sampler.arm(config, &tracer, &journal);
  sampler.observe_root(make_root("seed", "op", 0.0, 0.01));

  // A record inside ANOTHER trace, and one with no trace context at all —
  // neither may leak into the exemplar under test.
  {
    const TraceContext ctx = tracer.begin_span("op", "test");
    journal.append(JournalEvent::kEvictBegin, "other-image");
    tracer.end_span(ctx, "ok");
  }
  journal.append(JournalEvent::kLeaseAcquire, "unstamped-image");

  // The trace under test: a child span costs extra clock reads, making
  // this root strictly slower than the earlier one under virtual time.
  const TraceContext ctx = tracer.begin_span("op", "test");
  const std::string trace_id = ctx.trace_id;
  const TraceContext child = tracer.begin_span("child", "test");
  journal.append(JournalEvent::kEvictBegin, "g1");
  tracer.end_span(child, "ok");
  tracer.end_span(ctx, "ok");

  const auto exemplar = sampler.exemplar(trace_id);
  ASSERT_TRUE(exemplar.has_value());
  ASSERT_EQ(exemplar->events.size(), 1u);
  EXPECT_EQ(exemplar->events[0].trace_id, trace_id);
  EXPECT_EQ(exemplar->events[0].image_id, "g1");
  sampler.disarm();
  tracer.disarm();
}

TEST(TailSamplerTest, RootSinkDrainsTracerBufferEvenWhenNotRetained) {
  Tracer tracer;
  tracer.set_clock([] { return 1.0; });  // zero-duration spans, never "slow"
  Journal journal(64);
  TailSampler sampler;
  sampler.arm(small_config(), &tracer, &journal);
  // Fast ok spans are decided and DROPPED — an armed tracer no longer
  // accumulates history (what makes always-on sampling affordable).
  for (int i = 0; i < 50; ++i) {
    const TraceContext ctx = tracer.begin_span("op", "test");
    tracer.end_span(ctx, "ok");
  }
  EXPECT_EQ(tracer.span_count(), 0u);
  EXPECT_EQ(sampler.exemplars().size(), 0u);
  EXPECT_EQ(sampler.observed(), 50u);
  sampler.disarm();
  tracer.disarm();
}

// -- End-to-end acceptance: exemplar capture under an evict-to-fit stall ----

warehouse::GoldenImage golden(const std::string& id) {
  warehouse::GoldenImage image;
  image.id = id;
  image.backend = "vmware-gsx";
  image.spec.os = "linux-mandrake-8.1";
  image.spec.memory_bytes = 32ull << 20;
  image.spec.suspended = true;
  image.spec.disk = storage::DiskSpec{"disk0", 128ull << 20, 2,
                                      storage::DiskMode::kNonPersistent};
  image.guest.os = image.spec.os;
  return image;
}

class TailExemplarCaptureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("vmp-tail-test-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
    store_ = std::make_unique<storage::ArtifactStore>(root_);
    warehouse_ =
        std::make_unique<warehouse::Warehouse>(store_.get(), "warehouse");
    journal_ = std::make_unique<Journal>();
    // Deterministic virtual time: every clock read advances 50 ms, so span
    // durations count work (clock reads), not wall time.
    auto tick = std::make_shared<double>(0.0);
    Tracer::instance().set_clock([tick] { return *tick += 0.05; });
    journal_->set_clock([tick] { return *tick += 0.05; });
    // Route fault firings into THIS journal (Journal::instance() normally
    // owns the listener; the test wants one self-contained timeline).
    Journal* j = journal_.get();
    fault::FaultRegistry::instance().set_fire_listener(
        [j](const std::string& point, const std::string& detail) {
          j->append(JournalEvent::kFaultFired,
                    detail.empty() ? point : point + "@" + detail);
        });
    fault::FaultRegistry::instance().set_trace_provider(
        [] { return Tracer::current().trace_id; });
  }

  void TearDown() override {
    sampler_.disarm();
    Tracer::instance().disarm();
    Tracer::instance().set_clock(nullptr);
    fault::FaultRegistry::instance().clear();
    fault::FaultRegistry::instance().set_fire_listener(nullptr);
    fault::FaultRegistry::instance().set_trace_provider(nullptr);
    lifecycle_.reset();
    warehouse_.reset();
    store_.reset();
    journal_.reset();
    std::filesystem::remove_all(root_);
  }

  std::filesystem::path root_;
  std::unique_ptr<storage::ArtifactStore> store_;
  std::unique_ptr<warehouse::Warehouse> warehouse_;
  std::unique_ptr<Journal> journal_;
  std::unique_ptr<lifecycle::LifecycleManager> lifecycle_;
  TailSampler sampler_;
};

TEST_F(TailExemplarCaptureTest, EvictToFitStallYieldsCorrelatedExemplar) {
  // Budget fits two images; the third publish must evict.  The injected
  // store.remove fault fires inside that eviction.
  lifecycle::LifecycleManager::Config config;
  config.disk_budget_bytes = 400ull << 20;
  config.policy = "lru";
  config.journal = journal_.get();
  auto manager = lifecycle::LifecycleManager::create(warehouse_.get(), config);
  ASSERT_TRUE(manager.ok()) << manager.error().to_string();
  lifecycle_ = std::move(manager).value();

  TailSamplerConfig sampler_config;
  sampler_config.quantile = 0.5;
  sampler_config.reservoir = 8;
  sampler_config.warmup = 4;
  sampler_.arm(sampler_config, &Tracer::instance(), journal_.get());

  // Prime the "create.vm" reservoir so the quantile gate is armed before
  // the create under test (a handful of fast synthetic roots).
  for (int i = 0; i < 4; ++i) {
    sampler_.observe_root(
        make_root("prime-" + std::to_string(i), "create.vm", 0.0, 0.01));
  }
  ASSERT_GE(sampler_.threshold("create.vm"), 0.0);

  ASSERT_TRUE(lifecycle_->publish(golden("g1")).ok());
  ASSERT_TRUE(lifecycle_->publish(golden("g2")).ok());

  auto plan = fault::FaultPlan::parse("store.remove:times=1");
  ASSERT_TRUE(plan.ok()) << plan.error().to_string();
  fault::FaultRegistry::instance().install(std::move(plan).value());

  // The create under test: a root span over the publish that stalls in
  // evict-to-fit.  Virtual time makes it deterministically slower than the
  // primed threshold (the stall costs extra clock reads).
  std::string trace_id;
  {
    ScopedSpan root("create.vm", "test");
    trace_id = root.context().trace_id;
    ASSERT_TRUE(lifecycle_->publish(golden("g3")).ok());
  }

  const auto exemplar = sampler_.exemplar(trace_id);
  ASSERT_TRUE(exemplar.has_value())
      << "slow create not retained (threshold "
      << sampler_.threshold("create.vm") << ")";
  EXPECT_EQ(exemplar->cause, "slow");
  EXPECT_EQ(exemplar->op, "create.vm");

  // Span evidence: the root, the publish, and the evict-to-fit stall.
  auto has_span = [&](const std::string& name) {
    for (const Span& s : exemplar->spans) {
      if (s.name == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_span("create.vm"));
  EXPECT_TRUE(has_span("lifecycle.publish"));
  EXPECT_TRUE(has_span("lifecycle.evict_to_fit"));

  // Journal evidence: every correlated record carries THIS trace, and the
  // eviction reads begin -> fault -> commit in causal (seq) order.
  ASSERT_FALSE(exemplar->events.empty());
  std::uint64_t begin_seq = 0, fault_seq = 0, commit_seq = 0;
  for (std::size_t i = 1; i < exemplar->events.size(); ++i) {
    EXPECT_LT(exemplar->events[i - 1].seq, exemplar->events[i].seq);
  }
  // First of each kind: with multiple victims the causal claim is
  // begin(first victim) -> fault (its remove) -> commit(first victim).
  for (const JournalRecord& r : exemplar->events) {
    EXPECT_EQ(r.trace_id, trace_id) << journal_event_name(r.kind);
    if (r.kind == JournalEvent::kEvictBegin && begin_seq == 0) {
      begin_seq = r.seq;
    }
    if (r.kind == JournalEvent::kFaultFired && fault_seq == 0) {
      fault_seq = r.seq;
    }
    if (r.kind == JournalEvent::kEvictCommit && commit_seq == 0) {
      commit_seq = r.seq;
    }
  }
  ASSERT_GT(begin_seq, 0u) << "no kEvictBegin correlated";
  ASSERT_GT(fault_seq, 0u) << "no kFaultFired correlated";
  ASSERT_GT(commit_seq, 0u) << "no kEvictCommit correlated";
  EXPECT_LT(begin_seq, fault_seq);
  EXPECT_LT(fault_seq, commit_seq);

  // The registry's own firing log carries the same correlation.
  const auto traces = fault::FaultRegistry::instance().sequence_traces();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0], trace_id);

  // Critical path: the stall is attributable, and its self-time histogram
  // landed in the metrics registry for the fleet rollup.
  ASSERT_FALSE(exemplar->path.empty());
  EXPECT_EQ(exemplar->path.entries[0].span.name, "create.vm");
  const std::map<std::string, double> selves = self_times(exemplar->path);
  EXPECT_TRUE(selves.count("lifecycle.evict_to_fit"))
      << "evict-to-fit stall missing from the critical path";
  const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
  EXPECT_NE(snap.timer_stats("tail.self.lifecycle.evict_to_fit.seconds"),
            nullptr);

  // Dump + reload shape: <trace-id>.exemplar.jsonl with header/spans/events.
  const std::filesystem::path dump_dir = root_ / "exemplars";
  ASSERT_EQ(sampler_.dump(dump_dir), 1u);
  std::ifstream in(dump_dir / (trace_id + ".exemplar.jsonl"));
  ASSERT_TRUE(in.is_open());
  std::string header;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, header)));
  EXPECT_NE(header.find("\"exemplar\": \"" + trace_id + "\""),
            std::string::npos);
  EXPECT_NE(header.find("\"cause\": \"slow\""), std::string::npos);
  EXPECT_NE(header.find("lifecycle.evict_to_fit"), std::string::npos);
  std::size_t lines = 1;
  std::string line;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 1 + exemplar->spans.size() + exemplar->events.size());
}

}  // namespace
}  // namespace vmp::obs
