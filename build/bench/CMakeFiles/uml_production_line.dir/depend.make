# Empty dependencies file for uml_production_line.
# This may be replaced when dependencies are built.
