// Xen-style paravirtualized backend.
//
// The paper's Section 2 names para-virtualized VMs (Xen [3], Denali [25])
// as a third class of virtualization the plant architecture must absorb:
// "instantiation can be implemented by a control process (e.g. ... Xen's
// 'domain 0')".  2004-era Xen had no production checkpoint/restore in this
// pipeline, so clones boot like UML — but a paravirtual kernel boots far
// faster than a full emulated BIOS path, which is what the timing model
// charges (TimingConfig::xen_boot_sec).
#pragma once

#include "hypervisor/hypervisor.h"

namespace vmp::hv {

class XenHypervisor final : public Hypervisor {
 public:
  explicit XenHypervisor(storage::ArtifactStore* store) : Hypervisor(store) {}

  std::string type() const override { return "xen"; }
  bool resumes_from_checkpoint() const override { return false; }

 protected:
  util::Status do_start(VmInstance* vm) override;
  util::Status validate_clone_source(const CloneSource& source) const override;
};

}  // namespace vmp::hv
