// Minimal thread-safe structured logger.
//
// Services in this repo (VMShop, VMPlant daemons, the simulated cluster) run
// on multiple threads; the logger serializes lines and tags them with a
// component name, mirroring the per-daemon logs of the original prototype.
//
// Lines carry wall-time (seconds since the first log call) and, when a
// sim-time clock is installed (set_log_clock), virtual time too.  The
// default stderr format stays "[level] component: message" with no clock
// installed; sinks (set_log_sink) receive the full record — tests capture
// lines with them, and the tracer mirrors span-end events through here.
#pragma once

#include <functional>
#include <mutex>
#include <sstream>
#include <string>

namespace vmp::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; defaults to kWarn so tests and benches stay quiet.
void set_log_level(LogLevel level);
LogLevel log_level();

/// One emitted line, as handed to sinks.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  std::string component;
  std::string message;
  double wall_time_s = 0.0;  // seconds since the first log call
  double sim_time_s = -1.0;  // virtual seconds; < 0 when no clock installed
};

/// Replace the stderr writer with `sink` (nullptr restores stderr).  The
/// sink runs under the logger's mutex: records arrive serialized.
using LogSink = std::function<void(const LogRecord&)>;
void set_log_sink(LogSink sink);

/// Install a sim-time source stamped onto every record (e.g. the DES
/// clock).  nullptr removes it.  With a clock installed, the stderr format
/// becomes "[level] t=<sim> component: message".
void set_log_clock(std::function<double()> clock);

/// Emit one line: "[level] component: message".  Thread-safe.
void log_line(LogLevel level, const std::string& component,
              const std::string& message);

/// Stream-style helper: Logger("vmshop").info() << "bid won by " << plant;
class Logger {
 public:
  explicit Logger(std::string component) : component_(std::move(component)) {}

  class Line {
   public:
    // The component is stored by value: a Line routinely outlives the
    // temporary Logger that minted it (Logger("x").info() << ...).
    Line(LogLevel level, std::string component)
        : level_(level),
          component_(std::move(component)),
          active_(level >= log_level()) {}
    Line(const Line&) = delete;
    Line& operator=(const Line&) = delete;
    ~Line() {
      if (active_) log_line(level_, component_, stream_.str());
    }
    template <typename T>
    Line& operator<<(const T& v) {
      if (active_) stream_ << v;
      return *this;
    }

   private:
    LogLevel level_;
    std::string component_;
    std::ostringstream stream_;
    bool active_;
  };

  Line debug() const { return Line(LogLevel::kDebug, component_); }
  Line info() const { return Line(LogLevel::kInfo, component_); }
  Line warn() const { return Line(LogLevel::kWarn, component_); }
  Line error() const { return Line(LogLevel::kError, component_); }

  const std::string& component() const { return component_; }

 private:
  std::string component_;
};

}  // namespace vmp::util
