// Warehouse churn under a disk budget — LRU vs GDSF eviction, plus the
// allocation cost of a PPP candidate scan.
//
// The paper's VM Warehouse (§3.2) never evicts; under a finite budget the
// lifecycle manager must, and the policy choice is measurable.  A Zipf-
// popular request mix over golden machines of widely varying sizes (96 MB
// to ~1.3 GB apparent) drives publish-on-miss / lease-on-hit churn through
// a budget that holds only a fraction of the working set.  LRU is blind to
// the fact that one huge cold image displaces a dozen small popular ones;
// GDSF (priority = clock + hits x rebuild_cost / size) keeps the small
// popular tail resident and wins on object hit rate at equal quota.
//
// Everything is seeded and wall-clock-free: hit rates are deterministic,
// so bench/baselines/warehouse_churn.json gates ABSOLUTE floors and the
// gdsf > lru ordering via tools/bench_gate.py "must_exceed".
//
// The second measurement counts heap allocations per warehouse candidate
// scan: match_candidates() returns lightweight CandidateViews (id +
// performed + fingerprint) instead of full GoldenImage copies; the
// list_backend() column is what every PPP scan used to pay.
//
// The third is crash-mid-churn: the same request stream, killed at 2/3 and
// restarted over the surviving store.  A journal-replayed warm_start()
// restores GDSF's hit/usage history and aging clock, so the final-third
// hit rate must stay within 2% of an uninterrupted run; a cold restart
// (descriptors only, no journal) is the baseline it beats.
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <new>
#include <string>
#include <vector>

#include "common.h"
#include "lifecycle/lifecycle.h"
#include "obs/journal.h"
#include "util/random.h"
#include "warehouse/warehouse.h"

// -- Allocation counter -------------------------------------------------------
// Global operator new override, bench-binary only: counts every heap
// allocation so the scan comparison below is exact, not sampled.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace vmp;

constexpr std::size_t kImages = 64;
constexpr std::size_t kRequests = 3000;
constexpr double kZipfExponent = 0.9;
constexpr std::uint64_t kSeed = 20040621;

struct Catalog {
  std::vector<warehouse::GoldenImage> images;
  std::uint64_t total_estimate = 0;
};

/// 64 golden machines, sizes spread over ~14x, configuration depth 0-8.
/// Popularity rank == index (the Zipf draw below favours low indexes), and
/// sizes are assigned from a seeded stream so small/large images land at
/// BOTH popular and unpopular ranks.
Catalog build_catalog() {
  util::SplitMix64 rng(kSeed);
  Catalog catalog;
  for (std::size_t i = 0; i < kImages; ++i) {
    warehouse::GoldenImage image;
    image.id = "golden-" + std::to_string(i);
    image.backend = "vmware-gsx";
    image.spec.os = "linux-mandrake-8.1";
    image.spec.memory_bytes = (32ull + rng.next_below(225)) << 20;
    image.spec.suspended = true;
    image.spec.disk =
        storage::DiskSpec{"disk0", (64ull + rng.next_below(961)) << 20, 4,
                          storage::DiskMode::kNonPersistent};
    image.guest.os = image.spec.os;
    const std::size_t depth = rng.next_below(9);
    for (std::size_t d = 0; d < depth; ++d) {
      image.performed.push_back("action-" + std::to_string(d));
    }
    catalog.total_estimate +=
        lifecycle::LifecycleManager::estimate_publish_bytes(image.spec);
    catalog.images.push_back(std::move(image));
  }
  return catalog;
}

/// Rank-based Zipf sampler over [0, n): P(i) proportional to 1/(i+1)^s.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s, std::uint64_t seed) : rng_(seed) {
    cumulative_.reserve(n);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cumulative_.push_back(total);
    }
    for (double& c : cumulative_) c /= total;
  }
  std::size_t next() {
    const double u = rng_.next_double();
    std::size_t lo = 0, hi = cumulative_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cumulative_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  util::SplitMix64 rng_;
  std::vector<double> cumulative_;
};

struct ChurnResult {
  double hit_rate = 0.0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t rejected_publishes = 0;
  std::uint64_t evictions_observed = 0;  // miss-publishes that displaced
};

ChurnResult run_churn(const std::string& policy, std::uint64_t budget) {
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() /
      ("vmp-bench-churn-" + std::to_string(::getpid()) + "-" + policy);
  std::filesystem::remove_all(root);
  ChurnResult result;
  {
    storage::ArtifactStore store(root);
    warehouse::Warehouse wh(&store, "warehouse");
    lifecycle::LifecycleManager::Config config;
    config.disk_budget_bytes = budget;
    config.policy = policy;
    auto manager = lifecycle::LifecycleManager::create(&wh, config);
    if (!manager.ok()) {
      std::fprintf(stderr, "lifecycle create failed: %s\n",
                   manager.error().to_string().c_str());
      std::exit(2);
    }
    lifecycle::LifecycleManager& lifecycle = *manager.value();

    const Catalog catalog = build_catalog();
    ZipfSampler zipf(kImages, kZipfExponent, kSeed ^ 0x5eed);
    for (std::size_t r = 0; r < kRequests; ++r) {
      const warehouse::GoldenImage& want = catalog.images[zipf.next()];
      if (wh.contains(want.id)) {
        // Hit: a production order leases the base for its clone.
        if (lifecycle.acquire(want.id).ok()) {
          ++result.hits;
          lifecycle.release(want.id);
          continue;
        }
      }
      // Miss: the image must be (re)published before the order can run.
      ++result.misses;
      const std::size_t before = wh.size();
      auto published = lifecycle.publish(want);
      if (!published.ok()) {
        ++result.rejected_publishes;
      } else if (wh.size() <= before) {
        ++result.evictions_observed;
      }
    }
  }
  std::filesystem::remove_all(root);
  result.hit_rate = static_cast<double>(result.hits) /
                    static_cast<double>(kRequests);
  return result;
}

void report_churn(const std::string& policy, const ChurnResult& run) {
  std::printf("%-6s %10.4f %8llu %8llu %10llu %10llu\n", policy.c_str(),
              run.hit_rate, static_cast<unsigned long long>(run.hits),
              static_cast<unsigned long long>(run.misses),
              static_cast<unsigned long long>(run.evictions_observed),
              static_cast<unsigned long long>(run.rejected_publishes));
  std::printf("BENCH_JSON {\"name\": \"churn.%s\", \"hit_rate\": %.4f, "
              "\"hits\": %llu, \"misses\": %llu, \"failures\": %llu}\n",
              policy.c_str(), run.hit_rate,
              static_cast<unsigned long long>(run.hits),
              static_cast<unsigned long long>(run.misses),
              static_cast<unsigned long long>(run.rejected_publishes));
}

// -- Crash-mid-churn ----------------------------------------------------------

constexpr std::size_t kCrashAt = kRequests * 2 / 3;

enum class RestartMode {
  kUninterrupted,  // one continuous session, no crash
  kJournalReplay,  // crash at kCrashAt; warm_start folds the journal back in
  kColdRestart,    // crash at kCrashAt; warm_start from descriptors only
};

struct CrashChurnResult {
  double tail_hit_rate = 0.0;  // hit rate over requests [kCrashAt, kRequests)
  std::uint64_t tail_hits = 0;
};

/// GDSF churn with a crash at 2/3 of the request stream.  All three modes
/// serve the IDENTICAL seeded request sequence; only what survives the
/// restart differs.  flush_each_append makes the journal's on-disk state at
/// the crash point exactly what a killed process would leave (warehouse
/// descriptors are already written synchronously at publish).
CrashChurnResult run_crash_churn(RestartMode mode, const char* label,
                                 std::uint64_t budget) {
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() /
      ("vmp-bench-churn-crash-" + std::to_string(::getpid()) + "-" + label);
  std::filesystem::remove_all(root);
  const Catalog catalog = build_catalog();
  ZipfSampler zipf(kImages, kZipfExponent, kSeed ^ 0x5eed);
  CrashChurnResult result;

  obs::JournalDurableConfig durable;
  durable.flush_each_append = true;

  const auto make_manager = [&](warehouse::Warehouse* wh,
                                obs::Journal* journal) {
    lifecycle::LifecycleManager::Config config;
    config.disk_budget_bytes = budget;
    config.policy = "gdsf";
    config.journal = journal;
    auto manager = lifecycle::LifecycleManager::create(wh, config);
    if (!manager.ok()) {
      std::fprintf(stderr, "lifecycle create failed: %s\n",
                   manager.error().to_string().c_str());
      std::exit(2);
    }
    return std::move(manager).value();
  };
  const auto serve = [&](lifecycle::LifecycleManager& lifecycle,
                         warehouse::Warehouse& wh, std::size_t r) {
    const warehouse::GoldenImage& want = catalog.images[zipf.next()];
    if (wh.contains(want.id) && lifecycle.acquire(want.id).ok()) {
      lifecycle.release(want.id);
      if (r >= kCrashAt) ++result.tail_hits;
      return;
    }
    (void)lifecycle.publish(want);
  };

  const std::size_t crash_at =
      mode == RestartMode::kUninterrupted ? kRequests : kCrashAt;
  {
    // Session 1 (the whole run when uninterrupted).  The journal outlives
    // the manager; scope exit without close_durable() IS the crash — with
    // per-append flushes there is nothing buffered left to lose.
    obs::Journal journal;
    if (!journal.open_durable(root / "journal", durable).ok()) {
      std::fprintf(stderr, "open_durable failed\n");
      std::exit(2);
    }
    storage::ArtifactStore store(root);
    warehouse::Warehouse wh(&store, "warehouse");
    auto manager = make_manager(&wh, &journal);
    for (std::size_t r = 0; r < crash_at; ++r) serve(*manager, wh, r);
  }
  if (mode != RestartMode::kUninterrupted) {
    // Session 2: restart over the surviving store.  Replay opens the
    // durable sink over the existing segments BEFORE warm_start(), which
    // then folds the recovered history in; cold gets a fresh journal and
    // rebuilds from descriptors alone.
    obs::Journal journal;
    if (mode == RestartMode::kJournalReplay &&
        !journal.open_durable(root / "journal", durable).ok()) {
      std::fprintf(stderr, "re-open_durable failed\n");
      std::exit(2);
    }
    storage::ArtifactStore store(root);
    warehouse::Warehouse wh(&store, "warehouse");
    auto manager = make_manager(&wh, &journal);
    if (auto warmed = manager->warm_start(); !warmed.ok()) {
      std::fprintf(stderr, "warm_start failed: %s\n",
                   warmed.to_string().c_str());
      std::exit(2);
    }
    for (std::size_t r = kCrashAt; r < kRequests; ++r) serve(*manager, wh, r);
  }
  std::filesystem::remove_all(root);
  result.tail_hit_rate = static_cast<double>(result.tail_hits) /
                         static_cast<double>(kRequests - kCrashAt);
  return result;
}

void report_crash(const char* label, const CrashChurnResult& run) {
  std::printf("%-14s %10.4f %8llu / %zu\n", label, run.tail_hit_rate,
              static_cast<unsigned long long>(run.tail_hits),
              kRequests - kCrashAt);
  std::printf("BENCH_JSON {\"name\": \"churn.crash.%s\", \"hit_rate\": %.4f, "
              "\"failures\": 0}\n",
              label, run.tail_hit_rate);
}

/// Allocations per candidate scan: CandidateViews vs full-image copies.
void run_scan_alloc_comparison() {
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() /
      ("vmp-bench-churn-scan-" + std::to_string(::getpid()));
  std::filesystem::remove_all(root);
  {
    storage::ArtifactStore store(root);
    warehouse::Warehouse wh(&store, "warehouse");
    const Catalog catalog = build_catalog();
    for (const warehouse::GoldenImage& image : catalog.images) {
      if (!wh.publish(image).ok()) {
        std::fprintf(stderr, "publish %s failed\n", image.id.c_str());
        std::exit(2);
      }
    }
    constexpr std::size_t kScans = 200;
    const auto hardware_ok = [](const warehouse::GoldenImage&) {
      return true;
    };

    std::uint64_t views_allocs = 0;
    std::uint64_t full_allocs = 0;
    std::size_t sink = 0;
    {
      const std::uint64_t start =
          g_allocations.load(std::memory_order_relaxed);
      for (std::size_t i = 0; i < kScans; ++i) {
        auto scan = wh.match_candidates("vmware-gsx", hardware_ok, ~0ull);
        sink += scan.candidates.size();
      }
      views_allocs = g_allocations.load(std::memory_order_relaxed) - start;
    }
    {
      const std::uint64_t start =
          g_allocations.load(std::memory_order_relaxed);
      for (std::size_t i = 0; i < kScans; ++i) {
        // What the PPP used to copy per scan: every candidate in full
        // (layout + spec + guest state), via the list path.
        auto scan = wh.list_backend("vmware-gsx");
        sink += scan.size();
      }
      full_allocs = g_allocations.load(std::memory_order_relaxed) - start;
    }
    if (sink == 0) std::printf("(empty scans?)\n");

    std::printf("\ncandidate-scan allocations over %zu scans x %zu images:\n",
                kScans, catalog.images.size());
    std::printf("  lightweight views: %10llu allocs\n",
                static_cast<unsigned long long>(views_allocs));
    std::printf("  full-image copies: %10llu allocs  (%.2fx)\n",
                static_cast<unsigned long long>(full_allocs),
                views_allocs
                    ? static_cast<double>(full_allocs) /
                          static_cast<double>(views_allocs)
                    : 0.0);
    std::printf("BENCH_JSON {\"name\": \"scan.alloc.views\", "
                "\"allocs\": %llu, \"failures\": 0}\n",
                static_cast<unsigned long long>(views_allocs));
    std::printf("BENCH_JSON {\"name\": \"scan.alloc.full\", "
                "\"allocs\": %llu, \"failures\": 0}\n",
                static_cast<unsigned long long>(full_allocs));
  }
  std::filesystem::remove_all(root);
}

}  // namespace

int main() {
  bench::print_header(
      "warehouse churn — eviction policy quality under a disk budget",
      "the paper's warehouse only grows; under a budget, cost/size-aware "
      "eviction (GDSF) must beat LRU on hit rate at equal quota");

  // Budget = ~22% of the catalog's apparent working set: small enough that
  // the policies must constantly choose victims, big enough that choosing
  // WELL keeps the popular tail resident.
  const Catalog catalog = build_catalog();
  const std::uint64_t budget = catalog.total_estimate / 9 * 2;
  std::printf("catalog: %zu images, ~%llu MB apparent; budget %llu MB\n\n",
              catalog.images.size(),
              static_cast<unsigned long long>(catalog.total_estimate >> 20),
              static_cast<unsigned long long>(budget >> 20));
  std::printf("%-6s %10s %8s %8s %10s %10s\n", "policy", "hit-rate", "hits",
              "misses", "evicted", "rejected");

  const ChurnResult lru = run_churn("lru", budget);
  report_churn("lru", lru);
  const ChurnResult gdsf = run_churn("gdsf", budget);
  report_churn("gdsf", gdsf);

  run_scan_alloc_comparison();

  std::printf("\ncrash at request %zu of %zu; final-third hit rate "
              "(GDSF, same stream):\n",
              kCrashAt, kRequests);
  std::printf("%-14s %10s %s\n", "restart", "hit-rate", "tail hits");
  const CrashChurnResult uninterrupted =
      run_crash_churn(RestartMode::kUninterrupted, "uninterrupted", budget);
  report_crash("uninterrupted", uninterrupted);
  const CrashChurnResult replay =
      run_crash_churn(RestartMode::kJournalReplay, "replay", budget);
  report_crash("replay", replay);
  const CrashChurnResult cold =
      run_crash_churn(RestartMode::kColdRestart, "cold", budget);
  report_crash("cold", cold);

  bench::print_summary_row(
      "gdsf vs lru hit rate",
      "n/a (paper never evicts)",
      "gdsf " + std::to_string(gdsf.hit_rate) + " vs lru " +
          std::to_string(lru.hit_rate));
  return 0;
}
