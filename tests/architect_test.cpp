// Tests for the virtual-router substrate and the VMArchitect (paper §6:
// router VMs establishing virtual networks that span distinct domains),
// plus the shop-side classad cache (paper §3.1).
#include <gtest/gtest.h>

#include <filesystem>

#include "core/architect.h"
#include "core/shop.h"
#include "net/bus.h"
#include "net/registry.h"
#include "vnet/router.h"
#include "workload/request_gen.h"

namespace vmp {
namespace {

// -- IPv4 / Subnet / IpPacket ---------------------------------------------------

TEST(Ipv4Test, ParseFormatRoundTrip) {
  auto a = vnet::parse_ipv4("10.1.2.3");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(vnet::format_ipv4(a.value()), "10.1.2.3");
  EXPECT_EQ(vnet::parse_ipv4("0.0.0.0").value(), 0u);
  EXPECT_EQ(vnet::parse_ipv4("255.255.255.255").value(), 0xffffffffu);
}

TEST(Ipv4Test, ParseRejectsMalformed) {
  EXPECT_FALSE(vnet::parse_ipv4("10.1.2").ok());
  EXPECT_FALSE(vnet::parse_ipv4("10.1.2.256").ok());
  EXPECT_FALSE(vnet::parse_ipv4("10.1.2.x").ok());
  EXPECT_FALSE(vnet::parse_ipv4("").ok());
}

TEST(SubnetTest, ContainsAndNormalizes) {
  auto subnet = vnet::Subnet::parse("10.1.0.0/16");
  ASSERT_TRUE(subnet.ok());
  EXPECT_TRUE(subnet.value().contains(vnet::parse_ipv4("10.1.2.3").value()));
  EXPECT_FALSE(subnet.value().contains(vnet::parse_ipv4("10.2.0.1").value()));
  // Host bits are masked off.
  auto messy = vnet::Subnet::parse("10.1.2.3/16");
  ASSERT_TRUE(messy.ok());
  EXPECT_EQ(messy.value().to_string(), "10.1.0.0/16");
}

TEST(SubnetTest, EdgePrefixes) {
  auto all = vnet::Subnet::parse("0.0.0.0/0");
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(all.value().contains(vnet::parse_ipv4("192.168.1.1").value()));
  auto host = vnet::Subnet::parse("10.0.0.7/32");
  ASSERT_TRUE(host.ok());
  EXPECT_TRUE(host.value().contains(vnet::parse_ipv4("10.0.0.7").value()));
  EXPECT_FALSE(host.value().contains(vnet::parse_ipv4("10.0.0.8").value()));
  EXPECT_FALSE(vnet::Subnet::parse("10.0.0.0/33").ok());
  EXPECT_FALSE(vnet::Subnet::parse("10.0.0.0").ok());
}

TEST(IpPacketTest, EncodeDecodeRoundTrip) {
  vnet::IpPacket packet;
  packet.dst = vnet::parse_ipv4("10.2.0.9").value();
  packet.data = "payload|with|bars";
  auto decoded = vnet::IpPacket::decode(packet.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->dst, packet.dst);
  // Data after the FIRST bar is preserved verbatim.
  EXPECT_EQ(decoded->data, "payload|with|bars");
  EXPECT_FALSE(vnet::IpPacket::decode("not ip traffic").has_value());
  EXPECT_FALSE(vnet::IpPacket::decode("ip:10.0.0.1-nobar").has_value());
}

// -- VirtualRouter ----------------------------------------------------------------

class RouterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    host_a_port_ = net_a_.attach(
        [this](const vnet::EthernetFrame& f) { a_rx_.push_back(f); });
    host_b_port_ = net_b_.attach(
        [this](const vnet::EthernetFrame& f) { b_rx_.push_back(f); });

    ASSERT_TRUE(router_
                    .attach_interface(&net_a_, router_mac_a_, "10.1.0.1",
                                      "10.1.0.0/24")
                    .ok());
    ASSERT_TRUE(router_
                    .attach_interface(&net_b_, router_mac_b_, "10.2.0.1",
                                      "10.2.0.0/24")
                    .ok());
  }

  /// Host A sends an IP packet to `dst_ip` via its default gateway.
  void send_from_a(const std::string& dst_ip, const std::string& data) {
    vnet::EthernetFrame frame;
    frame.src = host_a_mac_;
    frame.dst = router_mac_a_;  // default gateway
    vnet::IpPacket packet;
    packet.dst = vnet::parse_ipv4(dst_ip).value();
    packet.data = data;
    frame.payload = packet.encode();
    ASSERT_TRUE(net_a_.inject(host_a_port_, frame).ok());
  }

  vnet::HostOnlySwitch net_a_{"domA-vmnet"};
  vnet::HostOnlySwitch net_b_{"domB-vmnet"};
  vnet::VirtualRouter router_{"r1"};
  const vnet::MacAddress router_mac_a_ = vnet::MacAddress::from_index(0xA1);
  const vnet::MacAddress router_mac_b_ = vnet::MacAddress::from_index(0xA2);
  const vnet::MacAddress host_a_mac_ = vnet::MacAddress::from_index(0x11);
  const vnet::MacAddress host_b_mac_ = vnet::MacAddress::from_index(0x22);
  std::vector<vnet::EthernetFrame> a_rx_, b_rx_;
  std::uint32_t host_a_port_ = 0, host_b_port_ = 0;
};

TEST_F(RouterTest, ForwardsAcrossSubnetsWithArp) {
  ASSERT_TRUE(router_.add_arp_entry("10.2.0.1", "10.2.0.9", host_b_mac_).ok());
  send_from_a("10.2.0.9", "hello-b");
  ASSERT_EQ(b_rx_.size(), 1u);
  EXPECT_TRUE(b_rx_[0].dst == host_b_mac_);  // unicast via ARP
  EXPECT_TRUE(b_rx_[0].src == router_mac_b_);
  auto packet = vnet::IpPacket::decode(b_rx_[0].payload);
  ASSERT_TRUE(packet.has_value());
  EXPECT_EQ(packet->data, "hello-b");
  EXPECT_EQ(router_.packets_forwarded(), 1u);
  EXPECT_TRUE(a_rx_.empty());
}

TEST_F(RouterTest, UnknownHostIsBroadcastOnTargetNetwork) {
  send_from_a("10.2.0.77", "anyone-there");
  ASSERT_EQ(b_rx_.size(), 1u);
  EXPECT_TRUE(b_rx_[0].dst.is_broadcast());
}

TEST_F(RouterTest, NoRouteDrops) {
  send_from_a("192.168.9.9", "lost");
  EXPECT_TRUE(b_rx_.empty());
  EXPECT_EQ(router_.packets_dropped(), 1u);
  EXPECT_EQ(router_.packets_forwarded(), 0u);
}

TEST_F(RouterTest, IgnoresTrafficNotAddressedToIt) {
  vnet::EthernetFrame frame;
  frame.src = host_a_mac_;
  frame.dst = vnet::MacAddress::from_index(0x33);  // some other host
  vnet::IpPacket packet;
  packet.dst = vnet::parse_ipv4("10.2.0.9").value();
  frame.payload = packet.encode();
  ASSERT_TRUE(net_a_.inject(host_a_port_, frame).ok());
  EXPECT_TRUE(b_rx_.empty());
  EXPECT_EQ(router_.packets_forwarded(), 0u);
}

TEST_F(RouterTest, NonIpTrafficIgnored) {
  vnet::EthernetFrame frame;
  frame.src = host_a_mac_;
  frame.dst = router_mac_a_;
  frame.payload = "raw ethernet data";
  ASSERT_TRUE(net_a_.inject(host_a_port_, frame).ok());
  EXPECT_TRUE(b_rx_.empty());
  EXPECT_EQ(router_.packets_dropped(), 0u);
}

TEST_F(RouterTest, LongestPrefixWins) {
  // A third interface owning a more specific slice of B's space.
  vnet::HostOnlySwitch net_c("domC-vmnet");
  std::vector<vnet::EthernetFrame> c_rx;
  net_c.attach([&](const vnet::EthernetFrame& f) { c_rx.push_back(f); });
  ASSERT_TRUE(router_
                  .attach_interface(&net_c, vnet::MacAddress::from_index(0xA3),
                                    "10.2.0.129", "10.2.0.128/25")
                  .ok());
  send_from_a("10.2.0.200", "specific");  // in /25 -> net C
  send_from_a("10.2.0.5", "general");     // only /24 -> net B
  ASSERT_EQ(c_rx.size(), 1u);
  ASSERT_EQ(b_rx_.size(), 1u);
  EXPECT_EQ(vnet::IpPacket::decode(c_rx[0].payload)->data, "specific");
  EXPECT_EQ(vnet::IpPacket::decode(b_rx_[0].payload)->data, "general");
  // net_c dies at the end of this scope, before the fixture's router:
  // detach everything while all switches are still alive.
  router_.detach_all();
}

TEST_F(RouterTest, InterfaceValidation) {
  vnet::HostOnlySwitch net("x");
  // Address outside subnet.
  EXPECT_FALSE(router_
                   .attach_interface(&net, vnet::MacAddress::from_index(9),
                                     "10.9.0.1", "10.8.0.0/24")
                   .ok());
  // Duplicate subnet.
  EXPECT_FALSE(router_
                   .attach_interface(&net, vnet::MacAddress::from_index(9),
                                     "10.1.0.2", "10.1.0.0/24")
                   .ok());
  // ARP entry on unknown interface.
  EXPECT_FALSE(router_.add_arp_entry("10.99.0.1", "10.99.0.2",
                                     vnet::MacAddress::from_index(9))
                   .ok());
}

// -- VMArchitect ------------------------------------------------------------------

class ArchitectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("vmp-arch-test-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
    store_ = std::make_unique<storage::ArtifactStore>(root_);
    warehouse_ = std::make_unique<warehouse::Warehouse>(store_.get(), "warehouse");
    ASSERT_TRUE(workload::publish_paper_goldens(warehouse_.get()).ok());
    core::PlantConfig pc;
    pc.name = "plant0";
    plant_ = std::make_unique<core::VmPlant>(pc, store_.get(), warehouse_.get());
  }
  void TearDown() override {
    plant_.reset();
    warehouse_.reset();
    store_.reset();
    std::filesystem::remove_all(root_);
  }

  std::filesystem::path root_;
  std::unique_ptr<storage::ArtifactStore> store_;
  std::unique_ptr<warehouse::Warehouse> warehouse_;
  std::unique_ptr<core::VmPlant> plant_;
};

TEST_F(ArchitectTest, DeployAndTeardownRouterVm) {
  vnet::HostOnlySwitch net_a("domA"), net_b("domB");
  core::VmArchitect architect("arch");
  auto deployment = architect.deploy_router(
      plant_.get(), workload::workspace_request(64, 0, "infra.ufl.edu"),
      {{&net_a, "10.1.0.1", "10.1.0.0/24"},
       {&net_b, "10.2.0.1", "10.2.0.0/24"}});
  ASSERT_TRUE(deployment.ok()) << deployment.error().to_string();

  // The router is a real managed VM...
  EXPECT_EQ(plant_->active_vms(), 1u);
  EXPECT_FALSE(deployment.value().vm_id.empty());
  EXPECT_EQ(deployment.value().router->interface_count(), 2u);
  EXPECT_EQ(architect.deployments(), 1u);

  // ...and actually forwards across the two domains.
  std::vector<vnet::EthernetFrame> b_rx;
  net_b.attach([&](const vnet::EthernetFrame& f) { b_rx.push_back(f); });
  const auto a_port = net_a.attach([](const vnet::EthernetFrame&) {});
  vnet::EthernetFrame frame;
  frame.src = vnet::MacAddress::from_index(0x11);
  frame.dst = vnet::MacAddress::broadcast();  // reaches the router interface
  vnet::IpPacket packet;
  packet.dst = vnet::parse_ipv4("10.2.0.42").value();
  packet.data = "cross-domain";
  frame.payload = packet.encode();
  ASSERT_TRUE(net_a.inject(a_port, frame).ok());
  ASSERT_EQ(b_rx.size(), 1u);
  EXPECT_EQ(vnet::IpPacket::decode(b_rx[0].payload)->data, "cross-domain");

  // Teardown collects the VM and detaches the router.
  ASSERT_TRUE(
      architect.teardown(plant_.get(), std::move(deployment).value()).ok());
  EXPECT_EQ(plant_->active_vms(), 0u);
}

TEST_F(ArchitectTest, RejectsFewerThanTwoInterfaces) {
  vnet::HostOnlySwitch net_a("domA");
  core::VmArchitect architect("arch");
  auto deployment = architect.deploy_router(
      plant_.get(), workload::workspace_request(64, 0, "d"),
      {{&net_a, "10.1.0.1", "10.1.0.0/24"}});
  ASSERT_FALSE(deployment.ok());
  EXPECT_EQ(plant_->active_vms(), 0u);  // nothing leaked
}

TEST_F(ArchitectTest, RollsBackVmOnBadInterfaceSpec) {
  vnet::HostOnlySwitch net_a("domA"), net_b("domB");
  core::VmArchitect architect("arch");
  auto deployment = architect.deploy_router(
      plant_.get(), workload::workspace_request(64, 0, "d"),
      {{&net_a, "10.1.0.1", "10.1.0.0/24"},
       {&net_b, "10.9.0.1", "10.2.0.0/24"}});  // address outside subnet
  ASSERT_FALSE(deployment.ok());
  EXPECT_EQ(plant_->active_vms(), 0u);
}

// -- Shop classad cache (paper §3.1) ----------------------------------------------

TEST_F(ArchitectTest, ShopCachesClassads) {
  net::MessageBus bus;
  net::ServiceRegistry registry;
  ASSERT_TRUE(plant_->attach_to_bus(&bus, &registry).ok());
  core::VmShop shop(core::ShopConfig{}, &bus, &registry);
  ASSERT_TRUE(shop.attach_to_bus().ok());

  auto ad = shop.create(workload::workspace_request(32, 0, "d"));
  ASSERT_TRUE(ad.ok());
  const std::string vm_id = ad.value().get_string(core::attrs::kVmId).value();
  EXPECT_EQ(shop.cache_size(), 1u);

  // Cached query: no bus traffic.
  const auto calls_before = bus.calls_total();
  auto cached = shop.cached_query(vm_id);
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(bus.calls_total(), calls_before);
  EXPECT_EQ(shop.cache_hits(), 1u);
  EXPECT_EQ(cached.value().get_string(core::attrs::kVmId).value(), vm_id);

  // Miss falls through to the plant.
  EXPECT_FALSE(shop.cached_query("vm-ghost").ok());
  EXPECT_GT(bus.calls_total(), calls_before);

  // Destroy invalidates.
  ASSERT_TRUE(shop.destroy(vm_id).ok());
  EXPECT_EQ(shop.cache_size(), 0u);
  EXPECT_FALSE(shop.cached_query(vm_id).ok());

  // The bus/registry are locals dying before the fixture's plant: detach
  // the plant now so its destructor does not touch a dead bus.
  plant_->detach_from_bus();
}

}  // namespace
}  // namespace vmp
