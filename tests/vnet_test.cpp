// Unit tests for the virtual-networking substrate: MAC addresses, learning
// switches, per-domain network allocation, and VNET bridge/tunnel
// connectivity + isolation.
#include <gtest/gtest.h>

#include <vector>

#include "vnet/allocator.h"
#include "vnet/ethernet.h"
#include "vnet/switch.h"
#include "vnet/vnet_bridge.h"

namespace vmp::vnet {
namespace {

// -- MacAddress --------------------------------------------------------------

TEST(MacAddressTest, FromIndexIsDeterministicAndUnique) {
  EXPECT_EQ(MacAddress::from_index(1), MacAddress::from_index(1));
  EXPECT_FALSE(MacAddress::from_index(1) == MacAddress::from_index(2));
  EXPECT_EQ(MacAddress::from_index(0x010203).to_string(), "02:56:4d:01:02:03");
}

TEST(MacAddressTest, ParseRoundTrip) {
  auto mac = MacAddress::parse("02:56:4d:00:00:2a");
  ASSERT_TRUE(mac.ok());
  EXPECT_EQ(mac.value().to_string(), "02:56:4d:00:00:2a");
}

TEST(MacAddressTest, ParseRejectsMalformed) {
  EXPECT_FALSE(MacAddress::parse("02:56:4d:00:00").ok());
  EXPECT_FALSE(MacAddress::parse("zz:56:4d:00:00:2a").ok());
  EXPECT_FALSE(MacAddress::parse("2:56:4d:0:0:2a").ok());
  EXPECT_FALSE(MacAddress::parse("").ok());
}

TEST(MacAddressTest, Broadcast) {
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
  EXPECT_FALSE(MacAddress::from_index(1).is_broadcast());
  EXPECT_EQ(MacAddress::broadcast().to_string(), "ff:ff:ff:ff:ff:ff");
}

// -- HostOnlySwitch -----------------------------------------------------------

struct PortLog {
  std::vector<EthernetFrame> frames;
  FrameSink sink() {
    return [this](const EthernetFrame& f) { frames.push_back(f); };
  }
};

EthernetFrame frame(const MacAddress& src, const MacAddress& dst,
                    const std::string& payload = "data") {
  EthernetFrame f;
  f.src = src;
  f.dst = dst;
  f.payload = payload;
  return f;
}

TEST(SwitchTest, FloodsUnknownDestination) {
  HostOnlySwitch sw("vmnet1");
  PortLog a, b, c;
  const auto pa = sw.attach(a.sink());
  sw.attach(b.sink());
  sw.attach(c.sink());

  const MacAddress src = MacAddress::from_index(1);
  const MacAddress dst = MacAddress::from_index(2);
  ASSERT_TRUE(sw.inject(pa, frame(src, dst)).ok());
  EXPECT_EQ(a.frames.size(), 0u);  // no hairpin
  EXPECT_EQ(b.frames.size(), 1u);
  EXPECT_EQ(c.frames.size(), 1u);
  EXPECT_EQ(sw.frames_flooded(), 1u);
}

TEST(SwitchTest, LearnsAndSwitchesUnicast) {
  HostOnlySwitch sw("vmnet1");
  PortLog a, b, c;
  const auto pa = sw.attach(a.sink());
  const auto pb = sw.attach(b.sink());
  sw.attach(c.sink());

  const MacAddress ma = MacAddress::from_index(1);
  const MacAddress mb = MacAddress::from_index(2);
  // B talks first: switch learns B's port.
  ASSERT_TRUE(sw.inject(pb, frame(mb, ma)).ok());
  ASSERT_EQ(sw.learned_port(mb), pb);
  // Now A->B is switched, not flooded.
  c.frames.clear();
  ASSERT_TRUE(sw.inject(pa, frame(ma, mb)).ok());
  EXPECT_EQ(b.frames.size(), 1u);
  EXPECT_TRUE(c.frames.empty());
  EXPECT_EQ(sw.frames_switched(), 1u);
}

TEST(SwitchTest, BroadcastReachesAllButIngress) {
  HostOnlySwitch sw("vmnet1");
  PortLog a, b, c;
  const auto pa = sw.attach(a.sink());
  sw.attach(b.sink());
  sw.attach(c.sink());
  ASSERT_TRUE(
      sw.inject(pa, frame(MacAddress::from_index(1), MacAddress::broadcast()))
          .ok());
  EXPECT_TRUE(a.frames.empty());
  EXPECT_EQ(b.frames.size(), 1u);
  EXPECT_EQ(c.frames.size(), 1u);
}

TEST(SwitchTest, DetachFlushesLearnedMacs) {
  HostOnlySwitch sw("vmnet1");
  PortLog a, b;
  const auto pa = sw.attach(a.sink());
  const auto pb = sw.attach(b.sink());
  const MacAddress mb = MacAddress::from_index(2);
  ASSERT_TRUE(sw.inject(pb, frame(mb, MacAddress::from_index(1))).ok());
  ASSERT_TRUE(sw.detach(pb).ok());
  EXPECT_FALSE(sw.learned_port(mb).has_value());
  EXPECT_FALSE(sw.detach(pb).ok());
  (void)pa;
}

TEST(SwitchTest, InjectOnUnknownPortFails) {
  HostOnlySwitch sw("vmnet1");
  EXPECT_FALSE(
      sw.inject(99, frame(MacAddress::from_index(1), MacAddress::broadcast()))
          .ok());
}

// -- NetworkAllocator ------------------------------------------------------------

TEST(AllocatorTest, PaperConfigurationFourNetworks) {
  NetworkAllocator alloc("plant0", 4);
  EXPECT_EQ(alloc.total_networks(), 4u);
  EXPECT_EQ(alloc.free_networks(), 4u);
}

TEST(AllocatorTest, DomainReusesItsNetwork) {
  NetworkAllocator alloc("plant0", 2);
  auto n1 = alloc.acquire("ufl.edu");
  ASSERT_TRUE(n1.ok());
  auto n2 = alloc.acquire("ufl.edu");
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(n1.value(), n2.value());
  EXPECT_EQ(alloc.free_networks(), 1u);
  EXPECT_EQ(alloc.domains_served(), 1u);
}

TEST(AllocatorTest, DistinctDomainsGetDistinctNetworks) {
  NetworkAllocator alloc("plant0", 2);
  auto n1 = alloc.acquire("ufl.edu");
  auto n2 = alloc.acquire("northwestern.edu");
  ASSERT_TRUE(n1.ok());
  ASSERT_TRUE(n2.ok());
  EXPECT_NE(n1.value(), n2.value());
  EXPECT_EQ(alloc.holder_of(n1.value()), "ufl.edu");
  EXPECT_EQ(alloc.holder_of(n2.value()), "northwestern.edu");
}

TEST(AllocatorTest, ExhaustionRefusesNewDomains) {
  NetworkAllocator alloc("plant0", 1);
  ASSERT_TRUE(alloc.acquire("d1").ok());
  auto r = alloc.acquire("d2");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), util::ErrorCode::kResourceExhausted);
  // Existing domain can still add VMs.
  EXPECT_TRUE(alloc.acquire("d1").ok());
  EXPECT_TRUE(alloc.can_serve("d1"));
  EXPECT_FALSE(alloc.can_serve("d2"));
}

TEST(AllocatorTest, ReleaseReturnsNetworkWhenLastVmLeaves) {
  NetworkAllocator alloc("plant0", 1);
  ASSERT_TRUE(alloc.acquire("d1").ok());
  ASSERT_TRUE(alloc.acquire("d1").ok());
  ASSERT_TRUE(alloc.release("d1").ok());
  EXPECT_EQ(alloc.free_networks(), 0u);  // one VM still using it
  ASSERT_TRUE(alloc.release("d1").ok());
  EXPECT_EQ(alloc.free_networks(), 1u);
  // Now a new domain fits.
  EXPECT_TRUE(alloc.acquire("d2").ok());
}

TEST(AllocatorTest, ReleaseWithoutAcquireFails) {
  NetworkAllocator alloc("plant0", 1);
  EXPECT_FALSE(alloc.release("ghost").ok());
}

TEST(AllocatorTest, NeedsNewNetworkDrivesTheCostModel) {
  NetworkAllocator alloc("plant0", 4);
  EXPECT_TRUE(alloc.needs_new_network("d1"));
  ASSERT_TRUE(alloc.acquire("d1").ok());
  EXPECT_FALSE(alloc.needs_new_network("d1"));
  EXPECT_TRUE(alloc.needs_new_network("d2"));
}

TEST(AllocatorTest, EmptyDomainRejected) {
  NetworkAllocator alloc("plant0", 1);
  EXPECT_FALSE(alloc.acquire("").ok());
}

TEST(AllocatorTest, SwitchForNamedNetwork) {
  NetworkAllocator alloc("plant0", 2);
  auto name = alloc.acquire("d1");
  ASSERT_TRUE(name.ok());
  auto sw = alloc.switch_for(name.value());
  ASSERT_TRUE(sw.ok());
  EXPECT_EQ(sw.value()->name(), name.value());
  EXPECT_FALSE(alloc.switch_for("bogus").ok());
}

// -- VNET bridge end-to-end ----------------------------------------------------------

class VnetEndToEndTest : public ::testing::Test {
 protected:
  // Client home network with a "client workstation" attached; plant
  // host-only network with a "VM" attached; VNET server + proxy bridging.
  void SetUp() override {
    vm_port_ = host_only_.attach(vm_log_.sink());
    client_port_ = home_.attach(client_log_.sink());

    server_ = std::make_unique<VnetServer>("vnet-plant0", &host_only_);
    proxy_ = std::make_unique<VnetProxy>("proxy-ufl", &home_);
    tunnel_ = std::make_unique<Tunnel>(
        "t1", std::vector<std::string>{"gateway.acis.ufl.edu", "ssh:4096"});
    ASSERT_TRUE(server_->connect(tunnel_.get()).ok());
    ASSERT_TRUE(proxy_->connect(tunnel_.get()).ok());
    tunnel_->bind(server_.get(), proxy_.get());
  }

  HostOnlySwitch host_only_{"plant0-vmnet1"};
  HostOnlySwitch home_{"ufl-lan"};
  PortLog vm_log_, client_log_;
  std::uint32_t vm_port_ = 0, client_port_ = 0;
  std::unique_ptr<VnetServer> server_;
  std::unique_ptr<VnetProxy> proxy_;
  std::unique_ptr<Tunnel> tunnel_;

  const MacAddress vm_mac_ = MacAddress::from_index(100);
  const MacAddress client_mac_ = MacAddress::from_index(200);
};

TEST_F(VnetEndToEndTest, VmReachesClientDomainThroughTunnel) {
  // VM sends to the (unknown) client MAC: floods to the uplink, crosses
  // the tunnel, floods the home network, reaches the client.
  ASSERT_TRUE(host_only_.inject(vm_port_, frame(vm_mac_, client_mac_, "ping"))
                  .ok());
  ASSERT_EQ(client_log_.frames.size(), 1u);
  EXPECT_EQ(client_log_.frames[0].payload, "ping");
  EXPECT_EQ(tunnel_->frames_to_proxy(), 1u);
}

TEST_F(VnetEndToEndTest, ClientReachesVmBack) {
  // Prime: VM talks first so both sides learn.
  ASSERT_TRUE(host_only_.inject(vm_port_, frame(vm_mac_, client_mac_, "syn"))
                  .ok());
  ASSERT_TRUE(home_.inject(client_port_, frame(client_mac_, vm_mac_, "ack"))
                  .ok());
  ASSERT_EQ(vm_log_.frames.size(), 1u);
  EXPECT_EQ(vm_log_.frames[0].payload, "ack");
  EXPECT_EQ(tunnel_->frames_to_plant(), 1u);
}

TEST_F(VnetEndToEndTest, BroadcastCrossesTheBridge) {
  ASSERT_TRUE(
      home_.inject(client_port_, frame(client_mac_, MacAddress::broadcast(),
                                       "arp-who-has"))
          .ok());
  ASSERT_EQ(vm_log_.frames.size(), 1u);
  EXPECT_EQ(vm_log_.frames[0].payload, "arp-who-has");
}

TEST_F(VnetEndToEndTest, TearDownSevers) {
  tunnel_->tear_down();
  EXPECT_FALSE(tunnel_->connected());
  ASSERT_TRUE(host_only_.inject(vm_port_, frame(vm_mac_, client_mac_, "lost"))
                  .ok());
  EXPECT_TRUE(client_log_.frames.empty());
}

TEST_F(VnetEndToEndTest, HopsRecorded) {
  ASSERT_EQ(tunnel_->hops().size(), 2u);
  EXPECT_EQ(tunnel_->hops()[0], "gateway.acis.ufl.edu");
}

TEST(VnetIsolationTest, DomainsOnDifferentNetworksCannotTalk) {
  // Two domains, two host-only networks on the same plant, two tunnels to
  // two different home networks.  Frames from domain A's VM must never
  // appear in domain B's home network.
  NetworkAllocator alloc("plant0", 2);
  auto net_a = alloc.acquire("domA");
  auto net_b = alloc.acquire("domB");
  ASSERT_TRUE(net_a.ok());
  ASSERT_TRUE(net_b.ok());
  HostOnlySwitch* sw_a = alloc.switch_for(net_a.value()).value();
  HostOnlySwitch* sw_b = alloc.switch_for(net_b.value()).value();

  PortLog vm_a, vm_b, home_a_log, home_b_log;
  const auto port_a = sw_a->attach(vm_a.sink());
  sw_b->attach(vm_b.sink());

  HostOnlySwitch home_a("homeA"), home_b("homeB");
  home_a.attach(home_a_log.sink());
  home_b.attach(home_b_log.sink());

  VnetServer server_a("va", sw_a), server_b("vb", sw_b);
  VnetProxy proxy_a("pa", &home_a), proxy_b("pb", &home_b);
  Tunnel tun_a("ta", {}), tun_b("tb", {});
  ASSERT_TRUE(server_a.connect(&tun_a).ok());
  ASSERT_TRUE(proxy_a.connect(&tun_a).ok());
  tun_a.bind(&server_a, &proxy_a);
  ASSERT_TRUE(server_b.connect(&tun_b).ok());
  ASSERT_TRUE(proxy_b.connect(&tun_b).ok());
  tun_b.bind(&server_b, &proxy_b);

  ASSERT_TRUE(sw_a->inject(port_a, frame(MacAddress::from_index(1),
                                         MacAddress::broadcast(), "secret"))
                  .ok());
  EXPECT_EQ(home_a_log.frames.size(), 1u);   // own domain sees it
  EXPECT_TRUE(home_b_log.frames.empty());    // other domain isolated
  EXPECT_TRUE(vm_b.frames.empty());
}

}  // namespace
}  // namespace vmp::vnet
