file(REMOVE_RECURSE
  "libvmp_storage.a"
)
