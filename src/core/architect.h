// VMArchitect: instantiating router VMs that span virtual networks.
//
// Paper, Section 6: "the use of a VMArchitect to instantiate customized
// virtual machines with router and tunneling capabilities to establish
// virtual networks that seamlessly span across distinct domains."
//
// The architect composes two existing mechanisms: a VMPlant creation (the
// router is an ordinary managed VM, with a classad, collected like any
// other) and a vnet::VirtualRouter bound to the layer-2 networks the
// deployment should join.  Where plain VMPlant networking *isolates*
// domains on separate host-only networks, an architect-deployed router
// deliberately bridges chosen subnets at the IP layer.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "classad/classad.h"
#include "core/plant.h"
#include "util/error.h"
#include "vnet/router.h"

namespace vmp::core {

/// One router interface to wire: the network to join and the router's
/// address/subnet there.
struct RouterInterfaceSpec {
  vnet::HostOnlySwitch* network = nullptr;
  std::string ip;           // router address on this network
  std::string subnet_cidr;  // prefix the router owns there
};

/// A deployed router: the backing VM's identity plus the live forwarding
/// element.  Movable, single owner.
struct RouterDeployment {
  std::string vm_id;
  std::string plant;
  classad::ClassAd ad;
  std::unique_ptr<vnet::VirtualRouter> router;
};

class VmArchitect {
 public:
  explicit VmArchitect(std::string name) : name_(std::move(name)) {}

  /// Create the router VM at `plant` from `request` (the caller chooses
  /// hardware + a DAG matching an available golden) and wire one interface
  /// per spec.  Interface MACs are derived deterministically from the
  /// architect's deployment counter.
  util::Result<RouterDeployment> deploy_router(
      VmPlant* plant, const CreateRequest& request,
      const std::vector<RouterInterfaceSpec>& interfaces);

  /// Tear a deployment down: detach the router and collect its VM.
  util::Status teardown(VmPlant* plant, RouterDeployment deployment);

  std::uint64_t deployments() const { return deployments_; }

 private:
  std::string name_;
  std::uint64_t deployments_ = 0;
};

}  // namespace vmp::core
