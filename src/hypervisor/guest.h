// Simulated guest operating system state and the in-guest configuration
// daemon.
//
// Paper, Section 4.1: "The DAG actions are converted into Perl scripts, and
// the Production Line writes each such script to one or more CD/ISO images
// that are then connected to the cloned VM as virtual CD-ROMs.  Once a
// CD-ROM is connected to the guest, a daemon running within the VM mounts
// the CD-ROM and executes the configuration scripts."
//
// GuestState models the observable configuration of a guest O/S (packages,
// users, network identity, mounts, services, files); GuestAgent is that
// daemon: it interprets configuration scripts line by line against the
// state and reports per-script outputs that the production line folds into
// the VM's classad.
//
// Script language (one command per line, '#' comments):
//   installos <distro>            -- set the guest O/S identity
//   install <package>             remove <package>
//   require <package>             -- fail unless installed
//   adduser <name> [home]         deluser <name>
//   ifconfig <ip> [mac]           hostname <name>
//   mount <source> <mountpoint>   umount <mountpoint>
//   start <service>               stop <service>
//   writefile <path> <content>    output <key> <value>
//   sshkeygen <user>              -- key pair for an existing user; the
//                                    public-key fingerprint is reported as
//                                    output SSHKey_<user>
//   gridcert <user> <subject>     -- X.509/GSI credential for a user;
//                                    reported as output GSISubject_<user>
//   fail [message]                -- unconditional failure (fault injection)
//   flaky <token> <n>             -- fail the first n runs with this token
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/error.h"

namespace vmp::hv {

/// Configuration state of a simulated guest O/S.
struct GuestState {
  std::string os;
  std::string hostname;
  std::string ip;
  std::string mac;
  std::set<std::string> packages;
  std::map<std::string, std::string> users;     // name -> home dir
  std::map<std::string, std::string> mounts;    // mountpoint -> source
  std::set<std::string> running_services;
  std::map<std::string, std::string> files;     // path -> content
  std::map<std::string, std::uint32_t> flaky_counters;

  bool operator==(const GuestState& other) const;
};

/// Serialize/parse guest state (stored as guest.state in image dirs, so a
/// golden image's guest configuration survives publish/clone).
std::string render_guest_state(const GuestState& state);
util::Result<GuestState> parse_guest_state(const std::string& text);

/// Result of executing one script.
struct GuestOutput {
  bool success = true;
  std::string failure_message;
  std::size_t commands_run = 0;
  /// Key/value pairs emitted by `output` commands (merged into the classad).
  std::map<std::string, std::string> outputs;
  /// Execution transcript, one line per command (for logs and tests).
  std::vector<std::string> log;
};

/// The in-guest daemon.  Stateless; all effects land in the GuestState.
class GuestAgent {
 public:
  /// Execute a script.  Stops at the first failing command; state mutations
  /// made by earlier commands persist (like a real shell script would).
  GuestOutput execute(GuestState* state, const std::string& script) const;
};

}  // namespace vmp::hv
