// Configuration actions: the nodes of a configuration DAG.
//
// Paper, Section 3.1: "The DAG represents configuration actions by nodes,
// and ordering is established by directed edges. ... Nodes in the
// configuration DAG may be associated with actions to be performed within a
// virtual machine's guest (e.g. setup of a user account) or by a virtual
// machine's host (e.g. setup of a virtual device, such as a CD-ROM ISO
// image or a network interface card)."
//
// Two actions are "the same" for warehouse matching when their *signatures*
// match: operation name plus canonical parameter list.  Node ids are local
// to a graph and never compared across graphs.
#pragma once

#include <map>
#include <string>

#include "util/error.h"

namespace vmp::dag {

/// Where an action executes.
enum class ActionScope {
  kGuest,  // inside the VM (script via virtual CD-ROM + guest daemon)
  kHost,   // on the hosting VMPlant (virtual device setup etc.)
};

const char* action_scope_name(ActionScope scope) noexcept;
util::Result<ActionScope> parse_action_scope(const std::string& name);

/// What the PPP does when an action fails and no custom error sub-graph is
/// attached.  (With a custom sub-graph, the sub-graph runs first and this
/// policy applies only if the sub-graph itself fails.)
enum class ErrorPolicy {
  kAbort,     // fail the whole creation (default, paper's implicit node)
  kRetry,     // retry the action up to `max_retries` times, then abort
  kContinue,  // record the failure in the classad and keep going
};

const char* error_policy_name(ErrorPolicy policy) noexcept;
util::Result<ErrorPolicy> parse_error_policy(const std::string& name);

class Action {
 public:
  Action() = default;
  Action(std::string id, std::string operation,
         ActionScope scope = ActionScope::kGuest)
      : id_(std::move(id)), operation_(std::move(operation)), scope_(scope) {}

  const std::string& id() const { return id_; }
  const std::string& operation() const { return operation_; }
  ActionScope scope() const { return scope_; }
  void set_scope(ActionScope scope) { scope_ = scope; }

  /// Free-form parameters ("package" -> "vnc-server-3.3").
  const std::map<std::string, std::string>& params() const { return params_; }
  void set_param(const std::string& key, std::string value) {
    params_[key] = std::move(value);
  }
  /// "" when absent.
  const std::string& param(const std::string& key) const;

  /// Guest script body executed by the in-VM daemon (guest scope only).
  const std::string& script() const { return script_; }
  void set_script(std::string script) { script_ = std::move(script); }

  ErrorPolicy error_policy() const { return error_policy_; }
  void set_error_policy(ErrorPolicy policy) { error_policy_ = policy; }
  int max_retries() const { return max_retries_; }
  void set_max_retries(int n) { max_retries_ = n; }

  /// Canonical identity for cross-graph comparison:
  /// "operation{k1=v1,k2=v2}".  Parameters are sorted by key (std::map),
  /// so equal parameter sets produce equal signatures regardless of
  /// insertion order.  Scripts and error policies are intentionally NOT
  /// part of the signature: two installs of the same package match even if
  /// their failure handling differs.
  std::string signature() const;

 private:
  std::string id_;
  std::string operation_;
  ActionScope scope_ = ActionScope::kGuest;
  std::map<std::string, std::string> params_;
  std::string script_;
  ErrorPolicy error_policy_ = ErrorPolicy::kAbort;
  int max_retries_ = 0;
};

}  // namespace vmp::dag
