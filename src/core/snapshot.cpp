#include "core/snapshot.h"

#include <algorithm>

#include "net/codec.h"
#include "util/bytebuffer.h"

namespace vmp::core {

using util::ByteBuffer;
using util::ByteReader;
using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

namespace {

// Section ids.  Append-only: ids are never reused, unknown ids are skipped.
constexpr std::uint64_t kSectionMeta = 1;
constexpr std::uint64_t kSectionWarehouse = 2;
constexpr std::uint64_t kSectionLedger = 3;
constexpr std::uint64_t kSectionAds = 4;

void encode_meta(const std::map<std::string, std::string>& meta,
                 ByteBuffer* out) {
  out->put_varint(meta.size());
  for (const auto& [key, value] : meta) {
    out->put_string(key);
    out->put_string(value);
  }
}

bool decode_meta(ByteReader* in, std::map<std::string, std::string>* meta) {
  const std::uint64_t count = in->varint();
  if (!in->check_count(count, 2)) return false;
  for (std::uint64_t i = 0; i < count && in->ok(); ++i) {
    std::string key = in->string_field();
    std::string value = in->string_field();
    if (!in->ok()) break;
    (*meta)[std::move(key)] = std::move(value);
  }
  return in->ok();
}

void encode_warehouse(const std::string& base_dir,
                      const std::vector<warehouse::GoldenImage>& images,
                      ByteBuffer* out) {
  out->put_string(base_dir);
  out->put_varint(images.size());
  for (const warehouse::GoldenImage& image : images) {
    net::codec::encode_descriptor_payload(image, out);
  }
}

Status decode_warehouse(ByteReader* in, SnapshotData* data) {
  data->warehouse_base_dir = in->string_field();
  const std::uint64_t count = in->varint();
  // A descriptor payload is several strings + spec + guest state; 16 bytes
  // per image is far below any real encoding.
  if (!in->check_count(count, 16)) return in->status();
  data->images.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    auto image = net::codec::decode_descriptor_payload(in);
    if (!image.ok()) return image.error();
    data->images.push_back(std::move(image).value());
  }
  return in->status();
}

void encode_ledger(const lifecycle::LedgerSnapshot& ledger, ByteBuffer* out) {
  out->put_string(ledger.policy);
  out->put_f64(ledger.policy_clock);
  out->put_varint(ledger.used_bytes);
  out->put_varint(ledger.tick);
  out->put_varint(ledger.entries.size());
  for (const lifecycle::LedgerSnapshot::Entry& e : ledger.entries) {
    out->put_string(e.id);
    out->put_string(e.dir);
    out->put_varint(e.physical_bytes);
    out->put_varint(e.files);
    out->put_varint(e.hits);
    out->put_varint(e.last_use_tick);
    out->put_varint(e.leases);
    out->put_f64(e.rebuild_cost_s);
    out->put_bool(e.pinned);
    out->put_bool(e.zombie);
  }
}

Status decode_ledger(ByteReader* in, lifecycle::LedgerSnapshot* ledger) {
  ledger->policy = in->string_field();
  ledger->policy_clock = in->f64();
  ledger->used_bytes = in->varint();
  ledger->tick = in->varint();
  const std::uint64_t count = in->varint();
  // id(>=2) + dir(>=1) + 5 varints + f64(8) + 2 bools.
  if (!in->check_count(count, 18)) return in->status();
  ledger->entries.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count && in->ok(); ++i) {
    lifecycle::LedgerSnapshot::Entry e;
    e.id = in->string_field();
    e.dir = in->string_field();
    e.physical_bytes = in->varint();
    e.files = in->varint();
    e.hits = in->varint();
    e.last_use_tick = in->varint();
    const std::uint64_t leases = in->varint();
    if (leases > 0xffffffffull) {
      in->fail("ledger entry '" + e.id + "': implausible lease count");
      break;
    }
    e.leases = static_cast<std::uint32_t>(leases);
    e.rebuild_cost_s = in->f64();
    e.pinned = in->boolean();
    e.zombie = in->boolean();
    if (!in->ok()) break;
    if (e.id.empty()) {
      in->fail("ledger entry with empty id");
      break;
    }
    ledger->entries.push_back(std::move(e));
  }
  return in->status();
}

void encode_ads(
    const std::vector<std::pair<std::string, classad::ClassAd>>& ads,
    ByteBuffer* out) {
  out->put_varint(ads.size());
  for (const auto& [vm_id, ad] : ads) {
    out->put_string(vm_id);
    net::codec::encode_classad_payload(ad, out);
  }
}

Status decode_ads(ByteReader* in, SnapshotData* data) {
  const std::uint64_t count = in->varint();
  if (!in->check_count(count, 2)) return in->status();
  data->ads.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string vm_id = in->string_field();
    if (!in->ok()) break;
    auto ad = net::codec::decode_classad_payload(in);
    if (!ad.ok()) return ad.error();
    data->ads.emplace_back(std::move(vm_id), std::move(ad).value());
  }
  return in->status();
}

void append_section(std::uint64_t id, ByteBuffer&& body, ByteBuffer* out) {
  out->put_varint(id);
  out->put_string(body.bytes());
}

}  // namespace

std::string encode_snapshot(const SnapshotData& data) {
  ByteBuffer payload;
  {
    ByteBuffer body;
    encode_meta(data.meta, &body);
    append_section(kSectionMeta, std::move(body), &payload);
  }
  {
    ByteBuffer body;
    encode_warehouse(data.warehouse_base_dir, data.images, &body);
    append_section(kSectionWarehouse, std::move(body), &payload);
  }
  if (data.has_ledger) {
    ByteBuffer body;
    encode_ledger(data.ledger, &body);
    append_section(kSectionLedger, std::move(body), &payload);
  }
  if (data.has_ads) {
    ByteBuffer body;
    encode_ads(data.ads, &body);
    append_section(kSectionAds, std::move(body), &payload);
  }
  return net::codec::seal_frame(net::codec::FrameTag::kSnapshot,
                                payload.take());
}

Result<SnapshotData> decode_snapshot(std::string_view frame) {
  auto view = net::codec::open_frame(frame, net::codec::FrameTag::kSnapshot);
  if (!view.ok()) return view.propagate<SnapshotData>();
  SnapshotData data;
  ByteReader reader(view.value().payload);
  bool saw_warehouse = false;
  while (reader.ok() && !reader.done()) {
    const std::uint64_t id = reader.varint();
    const std::string_view body = reader.string_view_field();
    if (!reader.ok()) break;
    ByteReader section(body);
    Status decoded;
    switch (id) {
      case kSectionMeta:
        if (!decode_meta(&section, &data.meta)) decoded = section.status();
        break;
      case kSectionWarehouse:
        decoded = decode_warehouse(&section, &data);
        saw_warehouse = true;
        break;
      case kSectionLedger:
        decoded = decode_ledger(&section, &data.ledger);
        data.has_ledger = decoded.ok();
        break;
      case kSectionAds:
        decoded = decode_ads(&section, &data);
        data.has_ads = decoded.ok();
        break;
      default:
        // Unknown section from a same-or-older encoder variant: skip whole.
        continue;
    }
    if (!decoded.ok()) {
      return Error(decoded.error().code(),
                   "snapshot section " + std::to_string(id) + ": " +
                       decoded.error().message());
    }
    if (!section.done()) {
      return Error(ErrorCode::kParseError,
                   "snapshot section " + std::to_string(id) + ": " +
                       std::to_string(section.remaining()) +
                       " trailing byte(s)");
    }
  }
  if (!reader.ok()) return reader.status().error();
  if (!saw_warehouse) {
    return Error(ErrorCode::kParseError,
                 "snapshot has no warehouse section");
  }
  return data;
}

Result<SnapshotData> capture_snapshot(
    const SnapshotParticipants& participants,
    std::map<std::string, std::string> meta) {
  if (participants.warehouse == nullptr) {
    return Error(ErrorCode::kInvalidArgument,
                 "capture_snapshot: a warehouse is required");
  }
  SnapshotData data;
  data.meta = std::move(meta);
  data.warehouse_base_dir = participants.warehouse->base_dir();
  data.images = participants.warehouse->list();
  if (participants.lifecycle != nullptr) {
    auto ledger = participants.lifecycle->ledger_snapshot();
    if (!ledger.ok()) return ledger.propagate<SnapshotData>();
    data.ledger = std::move(ledger).value();
    data.has_ledger = true;
  }
  if (participants.info != nullptr) {
    for (const std::string& vm_id : participants.info->vm_ids()) {
      auto ad = participants.info->query(vm_id);
      if (!ad.ok()) continue;  // removed between listing and query
      data.ads.emplace_back(vm_id, std::move(ad).value());
    }
    data.has_ads = true;
  }
  return data;
}

Status restore_snapshot(const SnapshotData& data,
                        const SnapshotParticipants& participants) {
  if (participants.warehouse == nullptr) {
    return Status(ErrorCode::kInvalidArgument,
                  "restore_snapshot: a warehouse is required");
  }
  if (data.warehouse_base_dir != participants.warehouse->base_dir()) {
    return Status(ErrorCode::kInvalidArgument,
                  "restore_snapshot: snapshot was captured under warehouse "
                  "root '" + data.warehouse_base_dir +
                      "' but the target's root is '" +
                      participants.warehouse->base_dir() + "'");
  }
  // Dependency order: the index first (the ledger's ids refer into it),
  // then the ledger, then the classads.
  VMP_RETURN_IF_ERROR(participants.warehouse->restore_index(data.images));
  if (data.has_ledger && participants.lifecycle != nullptr) {
    VMP_RETURN_IF_ERROR(participants.lifecycle->restore_ledger(data.ledger));
  }
  if (data.has_ads && participants.info != nullptr) {
    participants.info->remove_prefixed("");
    for (const auto& [vm_id, ad] : data.ads) {
      participants.info->store(vm_id, ad);
    }
  }
  return Status();
}

Result<std::string> save_snapshot(const SnapshotParticipants& participants,
                                  std::map<std::string, std::string> meta) {
  auto data = capture_snapshot(participants, std::move(meta));
  if (!data.ok()) return data.propagate<std::string>();
  return encode_snapshot(data.value());
}

Status load_snapshot(std::string_view frame,
                     const SnapshotParticipants& participants) {
  auto data = decode_snapshot(frame);
  if (!data.ok()) return data.error();
  return restore_snapshot(data.value(), participants);
}

}  // namespace vmp::core
