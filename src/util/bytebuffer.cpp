#include "util/bytebuffer.h"

#include <bit>
#include <cstring>

namespace vmp::util {

std::uint32_t fnv1a32(std::string_view data) noexcept {
  std::uint32_t hash = 2166136261u;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 16777619u;
  }
  return hash;
}

std::uint64_t fnv1a64(std::string_view data) noexcept {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::uint32_t frame_checksum32(std::string_view data) noexcept {
  constexpr std::uint32_t kPrime = 16777619u;
  std::uint32_t lane0 = 2166136261u;
  std::uint32_t lane1 = 0x9747b28cu;
  const char* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    std::uint32_t w0;
    std::uint32_t w1;
    std::memcpy(&w0, p, 4);
    std::memcpy(&w1, p + 4, 4);
    lane0 = (lane0 ^ w0) * kPrime;
    lane1 = (lane1 ^ w1) * kPrime;
    p += 8;
    n -= 8;
  }
  // Absorb the trailing 0..7 bytes with the tail length in the top byte of
  // the padded word (a partial word can hold at most 7 data bytes, so the
  // length byte never collides with data).
  std::uint64_t tail = static_cast<std::uint64_t>(n) << 56;
  std::memcpy(&tail, p, n);
  lane0 = (lane0 ^ static_cast<std::uint32_t>(tail)) * kPrime;
  lane1 = (lane1 ^ static_cast<std::uint32_t>(tail >> 32)) * kPrime;
  // Cross-fold so both lanes influence every output bit region.
  std::uint32_t h = lane0 ^ ((lane1 << 16) | (lane1 >> 16));
  h ^= h >> 15;
  h *= 0x85ebca6bu;
  h ^= h >> 13;
  return h;
}

void ByteBuffer::put_u16(std::uint16_t v) {
  out_.push_back(static_cast<char>(v & 0xff));
  out_.push_back(static_cast<char>((v >> 8) & 0xff));
}

void ByteBuffer::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void ByteBuffer::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void ByteBuffer::put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }

void ByteBuffer::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    out_.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out_.push_back(static_cast<char>(v));
}

void ByteBuffer::put_svarint(std::int64_t v) {
  const std::uint64_t u = static_cast<std::uint64_t>(v);
  put_varint((u << 1) ^ static_cast<std::uint64_t>(v >> 63));
}

void ByteBuffer::put_string(std::string_view v) {
  put_varint(v.size());
  out_.append(v.data(), v.size());
}

void ByteBuffer::patch_u32(std::size_t offset, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_[offset + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

const char* ByteReader::take(std::size_t n) {
  if (!ok_) return nullptr;
  if (n > remaining()) {
    fail("read of " + std::to_string(n) + " bytes past end");
    return nullptr;
  }
  const char* p = data_.data() + offset_;
  offset_ += n;
  return p;
}

std::uint8_t ByteReader::u8() {
  const char* p = take(1);
  return p != nullptr ? static_cast<std::uint8_t>(*p) : 0;
}

std::uint16_t ByteReader::u16() {
  const char* p = take(2);
  if (p == nullptr) return 0;
  return static_cast<std::uint16_t>(static_cast<unsigned char>(p[0]) |
                                    (static_cast<unsigned char>(p[1]) << 8));
}

std::uint32_t ByteReader::u32() {
  const char* p = take(4);
  if (p == nullptr) return 0;
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

std::uint64_t ByteReader::u64() {
  const char* p = take(8);
  if (p == nullptr) return 0;
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

bool ByteReader::boolean() {
  const std::uint8_t v = u8();
  if (ok_ && v > 1) fail("boolean byte out of range");
  return v == 1;
}

std::uint64_t ByteReader::varint() {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const char* p = take(1);
    if (p == nullptr) return 0;
    const auto byte = static_cast<unsigned char>(*p);
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      // The 10th group may only carry the top bit of a 64-bit value.
      if (shift == 63 && (byte & 0x7e) != 0) {
        fail("varint overflows 64 bits");
        return 0;
      }
      return v;
    }
  }
  fail("varint longer than 10 bytes");
  return 0;
}

std::int64_t ByteReader::svarint() {
  const std::uint64_t u = varint();
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

std::string_view ByteReader::view(std::size_t n) {
  const char* p = take(n);
  return p != nullptr ? std::string_view(p, n) : std::string_view();
}

std::string_view ByteReader::string_view_field() {
  const std::uint64_t n = varint();
  if (!ok_) return {};
  if (n > remaining()) {
    fail("string length " + std::to_string(n) + " exceeds remaining " +
         std::to_string(remaining()) + " bytes");
    return {};
  }
  return view(static_cast<std::size_t>(n));
}

bool ByteReader::check_count(std::uint64_t count, std::size_t min_bytes_each) {
  if (!ok_) return false;
  if (min_bytes_each != 0 && count > remaining() / min_bytes_each) {
    fail("element count " + std::to_string(count) +
         " implausible for remaining " + std::to_string(remaining()) +
         " bytes");
    return false;
  }
  return true;
}

void ByteReader::fail(const std::string& why) {
  if (!ok_) return;  // keep the FIRST failure; later reads are noise
  ok_ = false;
  fail_reason_ = why;
  fail_offset_ = offset_;
}

Status ByteReader::status() const {
  if (ok_) return Status();
  return Status(ErrorCode::kParseError,
                "byte " + std::to_string(fail_offset_) + ": " + fail_reason_);
}

}  // namespace vmp::util
