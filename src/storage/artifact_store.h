// Sandbox-rooted filesystem operations for VM artefacts.
//
// Everything the warehouse and production lines touch on disk goes through
// an ArtifactStore rooted at a sandbox directory.  The store exposes exactly
// the operations the paper's cloning mechanics need — sparse file creation
// (virtual disks), symlinks (link-based cloning of non-persistent disks),
// copies (memory state, which VMware GSX forces to be copied), and tree
// removal (collecting a VM) — and accounts bytes moved so the simulated
// cluster can charge transfer time for them.
//
// Paths are always relative to the root; ".." traversal and absolute paths
// are rejected, so a misbehaving test or plant cannot escape the sandbox.
#pragma once

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "util/error.h"

namespace vmp::storage {

/// Byte-accounting for one operation, consumed by the timing model.
struct IoAccounting {
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t files_touched = 0;
  std::uint64_t links_created = 0;
  /// Physical bytes released by a removal (symlink-aware: a removed link
  /// frees nothing of its target).  Consumed by the warehouse quota ledger
  /// and by the timing model's deletion cost.
  std::uint64_t bytes_freed = 0;

  IoAccounting& operator+=(const IoAccounting& other);
};

/// Physical footprint of a directory tree, symlink-aware: regular files
/// charge their apparent size (the simulation's convention — sparse files
/// bill as if real), symlinks charge zero (their targets are billed where
/// they physically live).  This is what a golden image "costs" the
/// warehouse's disk budget.
struct TreeFootprint {
  std::uint64_t physical_bytes = 0;
  std::uint64_t files = 0;
  std::uint64_t links = 0;
};

class ArtifactStore {
 public:
  /// Creates the root directory if needed.
  explicit ArtifactStore(std::filesystem::path root);

  const std::filesystem::path& root() const { return root_; }

  // -- Path handling --------------------------------------------------------
  /// Resolve a store-relative path; fails on absolute paths or traversal.
  util::Result<std::filesystem::path> resolve(const std::string& relative) const;

  // -- Queries --------------------------------------------------------------
  bool exists(const std::string& relative) const;
  bool is_symlink(const std::string& relative) const;
  util::Result<std::uint64_t> file_size(const std::string& relative) const;
  /// Logical size: symlinks report the size of their target.  A dangling
  /// symlink is an explicit error (kFailedPrecondition) rather than a
  /// generic lookup failure — callers that see it are usually holding a
  /// stale reference to an evicted or half-removed base image.
  util::Result<std::uint64_t> logical_size(const std::string& relative) const;
  util::Result<std::vector<std::string>> list_dir(const std::string& relative) const;

  /// Physical footprint of a directory tree (see TreeFootprint).  Also
  /// accepts a single file or symlink.
  util::Result<TreeFootprint> tree_footprint(const std::string& relative) const;

  // -- Mutations ------------------------------------------------------------
  util::Status make_dir(const std::string& relative);

  /// Create a file of `size` bytes.  Written sparsely (seek + one byte) so
  /// multi-gigabyte "virtual disks" cost no real disk space in tests.
  util::Result<IoAccounting> create_sparse_file(const std::string& relative,
                                                std::uint64_t size);

  /// Write full content (small artefacts: configs, descriptors, scripts).
  util::Result<IoAccounting> write_file(const std::string& relative,
                                        const std::string& content);
  util::Result<std::string> read_file(const std::string& relative) const;

  /// Append to a file (redo logs grow during a VM session).
  util::Result<IoAccounting> append_file(const std::string& relative,
                                         const std::string& content);

  /// Copy a file; the accounting reports its logical size as read+written
  /// (a copy of a symlinked disk reads through the link, like cp does).
  util::Result<IoAccounting> copy_file(const std::string& from,
                                       const std::string& to);

  /// Symbolic link `to` -> existing `from` (both store-relative).  This is
  /// the paper's cheap clone path for non-persistent virtual disks.
  util::Result<IoAccounting> link_file(const std::string& from,
                                       const std::string& to);

  /// Recursively copy a directory: regular files via copy_file (sparse
  /// sources stay sparse, accounting charges logical bytes), symlinks are
  /// recreated pointing at the same target.  Used by VM migration, where a
  /// suspended clone directory moves between plants' clone areas.
  util::Result<IoAccounting> copy_tree(const std::string& from,
                                       const std::string& to);

  util::Status remove(const std::string& relative);

  /// Recursively delete a tree; reports the physical bytes it freed
  /// (symlink-aware, like tree_footprint).  Removing a missing path
  /// succeeds and frees nothing, so cleanup paths stay idempotent.
  util::Result<IoAccounting> remove_tree(const std::string& relative);

  // -- Aggregate accounting ---------------------------------------------------
  /// Snapshot (by value: concurrent operations keep accumulating while the
  /// caller reads — plants clone in parallel through one store).
  IoAccounting lifetime_accounting() const {
    std::lock_guard<std::mutex> lock(lifetime_mutex_);
    return lifetime_;
  }

 private:
  void account(const IoAccounting& acct) {
    std::lock_guard<std::mutex> lock(lifetime_mutex_);
    lifetime_ += acct;
  }

  std::filesystem::path root_;
  mutable std::mutex lifetime_mutex_;
  IoAccounting lifetime_;
};

}  // namespace vmp::storage
