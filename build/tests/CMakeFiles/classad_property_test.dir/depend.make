# Empty dependencies file for classad_property_test.
# This may be replaced when dependencies are built.
