// Per-domain allocation of host-only networks.
//
// Paper, Section 3.3-3.4: each VMPlant host has a small static set of
// host-only networks ("vmnet" switches).  A network is dynamically assigned
// to a client domain; VMs of different domains must never share one.  The
// pool therefore limits how many distinct client domains a plant can serve
// concurrently, and its allocation state drives the cost function's
// one-time "network cost" (a domain that already holds a network on the
// plant pays only the compute cost for additional VMs).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/error.h"
#include "vnet/switch.h"

namespace vmp::vnet {

class NetworkAllocator {
 public:
  /// `network_count` host-only networks, named "<host>-vmnet1"..N.
  NetworkAllocator(std::string host_name, std::size_t network_count);

  /// Would a request for `domain` need a fresh network?  (False when the
  /// domain already holds one here.)  Used by the cost model for bidding
  /// without mutating state.
  bool needs_new_network(const std::string& domain) const;

  /// True if a request for `domain` can be satisfied (held or free network).
  bool can_serve(const std::string& domain) const;

  /// Acquire a network for one VM of `domain`: reuses the domain's network
  /// or assigns a free one; fails with kResourceExhausted when the domain
  /// holds none and no network is free.
  util::Result<std::string> acquire(const std::string& domain);

  /// Release one VM's use; the network returns to the free pool when its
  /// last VM releases it.
  util::Status release(const std::string& domain);

  /// The switch object backing a named network (for attaching VM ports).
  util::Result<HostOnlySwitch*> switch_for(const std::string& network_name);

  /// Domain currently holding a network ("" if free).
  std::string holder_of(const std::string& network_name) const;

  std::size_t total_networks() const;
  std::size_t free_networks() const;
  std::size_t domains_served() const;

 private:
  struct Network {
    std::unique_ptr<HostOnlySwitch> sw;
    std::string domain;      // "" when free
    std::uint32_t vm_count = 0;
  };

  mutable std::mutex mutex_;
  std::string host_name_;
  std::map<std::string, Network> networks_;          // by network name
  std::map<std::string, std::string> domain_to_net_; // domain -> network name
};

}  // namespace vmp::vnet
