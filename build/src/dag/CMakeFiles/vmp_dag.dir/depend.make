# Empty dependencies file for vmp_dag.
# This may be replaced when dependencies are built.
