file(REMOVE_RECURSE
  "CMakeFiles/invigo_workspace.dir/invigo_workspace.cpp.o"
  "CMakeFiles/invigo_workspace.dir/invigo_workspace.cpp.o.d"
  "invigo_workspace"
  "invigo_workspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invigo_workspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
