// Microbenchmarks (google-benchmark) for the hot middleware paths: XML
// parsing, classad evaluation, DAG topological sort, the three matching
// tests, request round-trips, and linked-clone artefact mechanics.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "classad/classad.h"
#include "classad/matchmaker.h"
#include "dag/dag_xml.h"
#include "dag/matching.h"
#include "storage/clone_ops.h"
#include "workload/dag_library.h"
#include "workload/request_gen.h"
#include "xml/xml.h"

namespace {

using namespace vmp;

void BM_XmlParseWorkspaceRequest(benchmark::State& state) {
  const std::string wire =
      workload::workspace_request(64, 0, "ufl.edu").to_xml_string();
  for (auto _ : state) {
    auto doc = xml::parse(wire);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(state.iterations() * wire.size());
}
BENCHMARK(BM_XmlParseWorkspaceRequest);

void BM_RequestRoundTrip(benchmark::State& state) {
  const core::CreateRequest request =
      workload::workspace_request(64, 0, "ufl.edu");
  for (auto _ : state) {
    auto parsed = core::CreateRequest::from_xml_string(request.to_xml_string());
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_RequestRoundTrip);

void BM_ClassAdEvaluateRequirements(benchmark::State& state) {
  classad::ClassAd request;
  (void)request.set_expression(
      "Requirements",
      "other.Memory >= 64 && other.OS == \"linux\" && other.Disk > 1000");
  classad::ClassAd machine;
  machine.set_integer("Memory", 128);
  machine.set_string("OS", "linux");
  machine.set_integer("Disk", 2048);
  for (auto _ : state) {
    auto v = request.evaluate("Requirements", &machine);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_ClassAdEvaluateRequirements);

void BM_ClassAdMatchAll(benchmark::State& state) {
  classad::ClassAd request;
  (void)request.set_expression("Requirements", "other.Memory >= 64");
  (void)request.set_expression("Rank", "other.Memory");
  std::vector<classad::ClassAd> machines;
  for (int i = 0; i < state.range(0); ++i) {
    classad::ClassAd m;
    m.set_integer("Memory", 32 + i);
    machines.push_back(std::move(m));
  }
  for (auto _ : state) {
    auto matches = classad::match_all(request, machines);
    benchmark::DoNotOptimize(matches);
  }
}
BENCHMARK(BM_ClassAdMatchAll)->Arg(8)->Arg(64)->Arg(512);

void BM_TopologicalSort(benchmark::State& state) {
  const dag::ConfigDag d = workload::random_layered_dag(
      1, state.range(0), state.range(0), 0.3);
  for (auto _ : state) {
    auto order = d.topological_sort();
    benchmark::DoNotOptimize(order);
  }
  state.SetLabel(std::to_string(d.size()) + " nodes");
}
BENCHMARK(BM_TopologicalSort)->Arg(4)->Arg(8)->Arg(16);

void BM_EvaluateMatch(benchmark::State& state) {
  const dag::ConfigDag d =
      workload::random_layered_dag(2, state.range(0), state.range(0), 0.3);
  const auto order = d.topological_sort().value();
  std::vector<std::string> history;
  for (std::size_t i = 0; i < order.size() / 2; ++i) {
    history.push_back(d.action(order[i])->signature());
  }
  for (auto _ : state) {
    auto eval = dag::evaluate_match(d, history);
    benchmark::DoNotOptimize(eval);
  }
  state.SetLabel(std::to_string(d.size()) + " nodes, half performed");
}
BENCHMARK(BM_EvaluateMatch)->Arg(4)->Arg(8)->Arg(16);

void BM_InVigoMatch(benchmark::State& state) {
  workload::WorkspaceParams params;
  const dag::ConfigDag request = workload::invigo_workspace_dag(params);
  const auto history = workload::invigo_golden_history();
  for (auto _ : state) {
    auto eval = dag::evaluate_match(request, history);
    benchmark::DoNotOptimize(eval);
  }
}
BENCHMARK(BM_InVigoMatch);

void BM_DagXmlRoundTrip(benchmark::State& state) {
  workload::WorkspaceParams params;
  const dag::ConfigDag d = workload::invigo_workspace_dag(params);
  for (auto _ : state) {
    auto parsed = dag::from_xml_string(dag::to_xml_string(d));
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_DagXmlRoundTrip);

void BM_LinkedClone(benchmark::State& state) {
  const auto sandbox =
      std::filesystem::temp_directory_path() / "vmplants-microbench";
  std::filesystem::remove_all(sandbox);
  storage::ArtifactStore store(sandbox);
  storage::MachineSpec spec;
  spec.os = "linux";
  spec.memory_bytes = 64ull << 20;
  spec.suspended = true;
  spec.disk = {"disk0", 2048ull << 20, 16, storage::DiskMode::kNonPersistent};
  const storage::ImageLayout golden{"golden"};
  if (!storage::materialize_image(&store, golden, spec).ok()) {
    state.SkipWithError("materialize failed");
    return;
  }
  std::size_t n = 0;
  for (auto _ : state) {
    auto report = storage::clone_image(&store, golden, spec,
                                       "clones/c" + std::to_string(n++),
                                       storage::CloneStrategy::kLinked);
    benchmark::DoNotOptimize(report);
  }
  std::filesystem::remove_all(sandbox);
}
BENCHMARK(BM_LinkedClone);

}  // namespace

BENCHMARK_MAIN();
