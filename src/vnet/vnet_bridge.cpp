#include "vnet/vnet_bridge.h"

namespace vmp::vnet {

using util::Error;
using util::ErrorCode;
using util::Status;

// ---------------------------------------------------------------------------
// Tunnel
// ---------------------------------------------------------------------------

Tunnel::Tunnel(std::string name, std::vector<std::string> hops)
    : name_(std::move(name)), hops_(std::move(hops)) {}

void Tunnel::bind(TunnelEndpoint* plant_side, TunnelEndpoint* proxy_side) {
  plant_side_ = plant_side;
  proxy_side_ = proxy_side;
  connected_ = plant_side_ != nullptr && proxy_side_ != nullptr;
}

Status Tunnel::send_to_proxy(const EthernetFrame& frame) {
  if (!connected_) {
    return Status(ErrorCode::kUnavailable, name_ + ": tunnel down");
  }
  ++frames_to_proxy_;
  proxy_side_->receive_from_tunnel(frame);
  return Status();
}

Status Tunnel::send_to_plant(const EthernetFrame& frame) {
  if (!connected_) {
    return Status(ErrorCode::kUnavailable, name_ + ": tunnel down");
  }
  ++frames_to_plant_;
  plant_side_->receive_from_tunnel(frame);
  return Status();
}

void Tunnel::tear_down() {
  connected_ = false;
  plant_side_ = nullptr;
  proxy_side_ = nullptr;
}

// ---------------------------------------------------------------------------
// VnetServer
// ---------------------------------------------------------------------------

VnetServer::VnetServer(std::string name, HostOnlySwitch* host_only)
    : name_(std::move(name)), host_only_(host_only) {}

VnetServer::~VnetServer() { disconnect(); }

Status VnetServer::connect(Tunnel* tunnel) {
  if (tunnel_ != nullptr) {
    return Status(ErrorCode::kFailedPrecondition,
                  name_ + ": already connected");
  }
  tunnel_ = tunnel;
  // Uplink port: frames the host-only switch cannot deliver locally reach
  // the VNET server, which relays them toward the client domain.
  uplink_port_ = host_only_->attach(
      [this](const EthernetFrame& frame) {
        if (tunnel_ != nullptr) {
          (void)tunnel_->send_to_proxy(frame);
        }
      },
      /*uplink=*/true);
  return Status();
}

void VnetServer::disconnect() {
  if (uplink_port_ != 0) {
    (void)host_only_->detach(uplink_port_);
    uplink_port_ = 0;
  }
  tunnel_ = nullptr;
}

void VnetServer::receive_from_tunnel(const EthernetFrame& frame) {
  // Frame from the client domain: inject into the host-only network as if
  // it arrived on the uplink port.
  if (uplink_port_ != 0) {
    (void)host_only_->inject(uplink_port_, frame);
  }
}

// ---------------------------------------------------------------------------
// VnetProxy
// ---------------------------------------------------------------------------

VnetProxy::VnetProxy(std::string name, HostOnlySwitch* home_network)
    : name_(std::move(name)), home_network_(home_network) {}

VnetProxy::~VnetProxy() { disconnect(); }

Status VnetProxy::connect(Tunnel* tunnel) {
  if (tunnel_ != nullptr) {
    return Status(ErrorCode::kFailedPrecondition,
                  name_ + ": already connected");
  }
  tunnel_ = tunnel;
  port_ = home_network_->attach(
      [this](const EthernetFrame& frame) {
        if (tunnel_ != nullptr) {
          (void)tunnel_->send_to_plant(frame);
        }
      },
      /*uplink=*/true);
  return Status();
}

void VnetProxy::disconnect() {
  if (port_ != 0) {
    (void)home_network_->detach(port_);
    port_ = 0;
  }
  tunnel_ = nullptr;
}

void VnetProxy::receive_from_tunnel(const EthernetFrame& frame) {
  if (port_ != 0) {
    (void)home_network_->inject(port_, frame);
  }
}

}  // namespace vmp::vnet
