// Grid-site operations day: the paper's §6 future-work features in action.
//
// An operator's session on a two-plant site:
//   1. speculative pre-creation — park clones of the popular golden image
//      so user requests skip the clone+resume phase;
//   2. migration — drain a plant for maintenance by moving its running VM
//      to the other plant (state intact);
//   3. VMBroker — plants inside a private network served indirectly;
//   4. VMArchitect — a router VM bridging two domains' virtual networks.
//
// Build & run:  ./build/examples/grid_site_operations
#include <cstdio>
#include <filesystem>

#include "core/architect.h"
#include "core/broker.h"
#include "core/migration.h"
#include "core/plant.h"
#include "core/shop.h"
#include "storage/artifact_store.h"
#include "warehouse/warehouse.h"
#include "workload/request_gen.h"

int main() {
  using namespace vmp;

  const auto sandbox =
      std::filesystem::temp_directory_path() / "vmplants-ops-example";
  std::filesystem::remove_all(sandbox);
  storage::ArtifactStore store(sandbox);
  warehouse::Warehouse wh(&store, "warehouse");
  if (!workload::publish_paper_goldens(&wh, {64}).ok()) return 1;

  net::MessageBus bus;
  net::ServiceRegistry registry;
  core::PlantConfig pa;
  pa.name = "plantA";
  core::VmPlant plant_a(pa, &store, &wh);
  core::PlantConfig pb;
  pb.name = "plantB";
  core::VmPlant plant_b(pb, &store, &wh);
  (void)plant_a.attach_to_bus(&bus, &registry);
  (void)plant_b.attach_to_bus(&bus, &registry);
  core::VmShop shop(core::ShopConfig{}, &bus, &registry);
  (void)shop.attach_to_bus();

  // -- 1. Speculative pre-creation -----------------------------------------
  std::printf("== speculative pre-creation\n");
  (void)plant_a.pre_create("golden-64mb", 2);
  std::printf("plantA parked %zu pre-created clones of golden-64mb\n",
              plant_a.speculative_pool_size());
  auto user_vm = plant_a.create(workload::workspace_request(64, 0, "ufl.edu"));
  if (!user_vm.ok()) return 1;
  std::printf("user request adopted a parked clone: SpeculativeHit=%s, "
              "CloneBytesCopied=%lld\n\n",
              user_vm.value().get_boolean(core::attrs::kSpeculativeHit).value()
                  ? "true"
                  : "false",
              static_cast<long long>(
                  user_vm.value()
                      .get_integer(core::attrs::kCloneBytesCopied)
                      .value()));

  // -- 2. Migration: drain plantA -------------------------------------------
  std::printf("== migration (drain plantA for maintenance)\n");
  const std::string vm_id =
      user_vm.value().get_string(core::attrs::kVmId).value();
  auto moved = core::migrate_vm(&plant_a, &plant_b, vm_id);
  if (!moved.ok()) {
    std::fprintf(stderr, "migration failed: %s\n",
                 moved.error().to_string().c_str());
    return 1;
  }
  plant_a.discard_speculative();
  std::printf("%s -> %s (new id %s); plantA now hosts %zu VMs, plantB %zu\n\n",
              vm_id.c_str(),
              moved.value().get_string(core::attrs::kPlant).value().c_str(),
              moved.value().get_string(core::attrs::kVmId).value().c_str(),
              plant_a.active_vms(), plant_b.active_vms());

  // -- 3. Broker: private-network plants ------------------------------------
  std::printf("== broker (plants behind a private network)\n");
  core::PlantConfig ph;
  ph.name = "hiddenplant";
  core::VmPlant hidden(ph, &store, &wh);
  (void)hidden.attach_to_bus(&bus, nullptr);  // bus endpoint, NOT registered
  core::VmBroker broker(core::BrokerConfig{.name = "gateway-broker",
                                           .bid_markup = 2.0},
                        &bus, &registry);
  broker.add_member("hiddenplant");
  (void)broker.attach_to_bus();

  auto bids = shop.collect_bids(workload::workspace_request(64, 1, "wisc.edu"));
  std::printf("shop collected %zu bids:", bids.size());
  for (const core::Bid& bid : bids) {
    std::printf(" %s=%.0f", bid.plant_address.c_str(), bid.cost);
  }
  std::printf("\n\n");

  // -- 4. VMArchitect: cross-domain router ----------------------------------
  std::printf("== VMArchitect (router VM spanning two domains)\n");
  vnet::HostOnlySwitch lan_ufl("ufl-vnet"), lan_wisc("wisc-vnet");
  core::VmArchitect architect("site-architect");
  auto router = architect.deploy_router(
      &plant_a, workload::workspace_request(64, 2, "infra"),
      {{&lan_ufl, "10.10.0.1", "10.10.0.0/24"},
       {&lan_wisc, "10.20.0.1", "10.20.0.0/24"}});
  if (!router.ok()) {
    std::fprintf(stderr, "router deployment failed: %s\n",
                 router.error().to_string().c_str());
    return 1;
  }
  std::printf("router VM %s deployed on %s with %zu interfaces\n",
              router.value().vm_id.c_str(), router.value().plant.c_str(),
              router.value().router->interface_count());

  // Demonstrate forwarding: a ufl host pings a wisc host via the router.
  std::size_t delivered = 0;
  lan_wisc.attach([&](const vnet::EthernetFrame&) { ++delivered; });
  const auto ufl_port = lan_ufl.attach([](const vnet::EthernetFrame&) {});
  vnet::EthernetFrame frame;
  frame.src = vnet::MacAddress::from_index(0x100);
  frame.dst = vnet::MacAddress::broadcast();
  vnet::IpPacket packet;
  packet.dst = vnet::parse_ipv4("10.20.0.5").value();
  packet.data = "cross-domain-ping";
  frame.payload = packet.encode();
  (void)lan_ufl.inject(ufl_port, frame);
  std::printf("cross-domain packet delivered to wisc network: %s "
              "(router forwarded %llu packets)\n",
              delivered ? "yes" : "no",
              static_cast<unsigned long long>(
                  router.value().router->packets_forwarded()));

  (void)architect.teardown(&plant_a, std::move(router).value());
  std::printf("\nsite state: plantA=%zu plantB=%zu hidden=%zu VMs\n",
              plant_a.active_vms(), plant_b.active_vms(), hidden.active_vms());

  std::filesystem::remove_all(sandbox);
  return 0;
}
