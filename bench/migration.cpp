// §6 extension: migration of active VMs across plants.
//
// Paper §6 names "migration of active VMs across plants" as future work.
// The mechanism built here suspends the VM (its clone directory becomes
// its complete state — the paper's Section 2 encapsulation-as-data
// property), copies the directory to the target plant's clone area over
// the warehouse store, and resumes.  The cost is dominated by moving the
// memory checkpoint, so migration latency scales with VM memory the same
// way cloning does — this bench quantifies that and the load-balancing
// payoff.
#include <cstdio>
#include <filesystem>

#include "common.h"
#include "core/migration.h"
#include "core/plant.h"

int main() {
  using namespace vmp;
  bench::print_header(
      "§6 extension — migration of active VMs across plants",
      "future work in the paper: suspend -> copy state -> resume elsewhere");

  const auto sandbox =
      std::filesystem::temp_directory_path() / "vmplants-migration-bench";
  std::filesystem::remove_all(sandbox);
  storage::ArtifactStore store(sandbox);
  warehouse::Warehouse wh(&store, "warehouse");
  if (!workload::publish_paper_goldens(&wh).ok()) return 1;

  cluster::TimingModel model(cluster::TimingConfig{}, 5);

  std::printf("%-8s %16s %16s %14s\n", "memory", "state_moved_MB",
              "migration_s", "vs_fresh_clone");
  for (const std::uint32_t memory_mb : {32u, 64u, 256u}) {
    core::PlantConfig pa;
    pa.name = "srcplant" + std::to_string(memory_mb);
    core::VmPlant source(pa, &store, &wh);
    core::PlantConfig pb;
    pb.name = "dstplant" + std::to_string(memory_mb);
    core::VmPlant target(pb, &store, &wh);

    auto ad = source.create(
        workload::workspace_request(memory_mb, 0, "ufl.edu"));
    if (!ad.ok()) return 1;
    const std::string vm_id =
        ad.value().get_string(core::attrs::kVmId).value();

    auto migrated = core::migrate_vm(&source, &target, vm_id);
    if (!migrated.ok()) {
      std::fprintf(stderr, "migration failed: %s\n",
                   migrated.error().to_string().c_str());
      return 1;
    }
    const auto moved = migrated.value()
                           .get_integer(core::attrs::kCloneBytesCopied)
                           .value();

    // Time the state movement + resume with the calibrated model (suspend
    // writes locally; the copy crosses the warehouse path like a clone).
    util::Summary migration_time, clone_time;
    for (int i = 0; i < 100; ++i) {
      cluster::CreationObservation move_obs;
      move_obs.backend = "vmware-gsx";
      move_obs.memory_bytes = memory_mb * (1ull << 20);
      move_obs.clone_bytes_copied = static_cast<std::uint64_t>(moved);
      migration_time.add(model.time_creation(move_obs).clone_sec);

      cluster::CreationObservation clone_obs = move_obs;
      clone_obs.clone_bytes_copied = memory_mb * (1ull << 20) + 4096;
      clone_obs.clone_links = 16;
      clone_time.add(model.time_creation(clone_obs).clone_sec);
    }
    std::printf("%-8u %16.1f %16.1f %13.2fx\n", memory_mb,
                moved / (1024.0 * 1024.0), migration_time.mean(),
                migration_time.mean() / clone_time.mean());
  }
  std::printf("\n");

  bench::print_summary_row("migration.cost_scaling",
                           "untested in the paper (future work)",
                           "latency tracks memory-checkpoint size, like "
                           "cloning (table above)");
  bench::print_summary_row(
      "migration.correctness",
      "VM state survives the move",
      "guest users/ip/services verified in extensions_test");

  std::filesystem::remove_all(sandbox);
  return 0;
}
