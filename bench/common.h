// Shared machinery for the figure/table reproduction benches.
//
// Every bench binary prints:
//   * a header naming the paper artefact it regenerates,
//   * the same rows/series the paper reports,
//   * a "paper vs measured" summary for EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/deployment.h"
#include "util/stats.h"
#include "workload/request_gen.h"

namespace vmp::bench {

/// The paper's §4.2 experiment: an 8-plant site serving sequential In-VIGO
/// workspace requests from one client domain.
struct PaperExperimentConfig {
  std::size_t plant_count = 8;
  std::uint64_t seed = 2004;
  /// (memory_mb, request_count) series; defaults to the paper's
  /// 128x32MB, 128x64MB, 40x256MB.
  std::vector<std::pair<std::uint32_t, std::size_t>> series = {
      {32, 128}, {64, 128}, {256, 40}};
};

struct SeriesResult {
  std::uint32_t memory_mb = 0;
  std::vector<cluster::CreationSample> samples;

  util::Summary creation_summary() const;
  util::Summary cloning_summary() const;
};

/// Run the full experiment.  Each memory series runs against a FRESH site
/// (as the paper did: separate experiment runs), with golden machines
/// published from workload::publish_paper_goldens.
std::vector<SeriesResult> run_paper_experiment(const PaperExperimentConfig& config);

/// Print a normalized-frequency histogram in the paper's format.
void print_histogram(const std::string& label, const util::Histogram& h);

/// Standard bench header/footer.
void print_header(const std::string& artefact, const std::string& paper_claim);
void print_summary_row(const std::string& name, const std::string& paper,
                       const std::string& measured);

}  // namespace vmp::bench
