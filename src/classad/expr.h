// Classad expression tree and evaluator.
//
// Grammar (precedence low to high):
//   or:         expr '||' expr
//   and:        expr '&&' expr
//   comparison: expr (== != < <= > >=) expr
//   additive:   expr (+ -) expr
//   multiplic.: expr (* / %) expr
//   unary:      '!' expr | '-' expr
//   primary:    literal | attribute-ref | 'other.attr' | 'self.attr'
//               | function '(' args ')' | '(' expr ')'
//
// Three-valued logic follows Condor semantics: UNDEFINED short-circuits
// through && / || where the other operand decides (FALSE && UNDEFINED is
// FALSE); arithmetic and comparisons on UNDEFINED yield UNDEFINED; any
// operation on ERROR yields ERROR.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "classad/value.h"

namespace vmp::classad {

class ClassAd;

/// Evaluation context: `self` is the ad owning the expression; `other` is
/// the candidate ad during matchmaking (may be null).
struct EvalContext {
  const ClassAd* self = nullptr;
  const ClassAd* other = nullptr;
  /// Recursion guard for cyclic attribute references.
  mutable std::vector<std::string> in_progress;
};

class Expr {
 public:
  virtual ~Expr() = default;
  virtual Value evaluate(const EvalContext& ctx) const = 0;
  /// Unparse back to classad syntax.
  virtual std::string to_string() const = 0;
  virtual std::unique_ptr<Expr> clone() const = 0;
};

using ExprPtr = std::unique_ptr<Expr>;

// -- Node kinds --------------------------------------------------------------

class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value value) : value_(std::move(value)) {}
  Value evaluate(const EvalContext&) const override { return value_; }
  std::string to_string() const override { return value_.to_string(); }
  ExprPtr clone() const override {
    return std::make_unique<LiteralExpr>(value_);
  }

 private:
  Value value_;
};

/// Attribute reference with optional scope: name, self.name, other.name.
class AttrRefExpr final : public Expr {
 public:
  enum class Scope { kDefault, kSelf, kOther };
  AttrRefExpr(Scope scope, std::string name)
      : scope_(scope), name_(std::move(name)) {}
  Value evaluate(const EvalContext& ctx) const override;
  std::string to_string() const override;
  ExprPtr clone() const override {
    return std::make_unique<AttrRefExpr>(scope_, name_);
  }
  const std::string& name() const { return name_; }
  Scope scope() const { return scope_; }

 private:
  Scope scope_;
  std::string name_;
};

enum class BinaryOp {
  kOr, kAnd,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAdd, kSub, kMul, kDiv, kMod,
};

class BinaryExpr final : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  Value evaluate(const EvalContext& ctx) const override;
  std::string to_string() const override;
  ExprPtr clone() const override {
    return std::make_unique<BinaryExpr>(op_, lhs_->clone(), rhs_->clone());
  }

 private:
  BinaryOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

enum class UnaryOp { kNot, kNegate };

class UnaryExpr final : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand)
      : op_(op), operand_(std::move(operand)) {}
  Value evaluate(const EvalContext& ctx) const override;
  std::string to_string() const override;
  ExprPtr clone() const override {
    return std::make_unique<UnaryExpr>(op_, operand_->clone());
  }

 private:
  UnaryOp op_;
  ExprPtr operand_;
};

/// Built-in functions: isUndefined(x), isError(x), int(x), real(x),
/// floor(x), ceiling(x), min(a,b), max(a,b), strcat(a,b,...),
/// stringListMember(item, "a,b,c").
class FunctionExpr final : public Expr {
 public:
  FunctionExpr(std::string name, std::vector<ExprPtr> args)
      : name_(std::move(name)), args_(std::move(args)) {}
  Value evaluate(const EvalContext& ctx) const override;
  std::string to_string() const override;
  ExprPtr clone() const override;

 private:
  std::string name_;
  std::vector<ExprPtr> args_;
};

}  // namespace vmp::classad
