// On-disk layout of a VM image (golden or clone).
//
// Mirrors the prototype's warehouse layout (paper Section 4.1): "Golden
// machines are stored as files in sub-directories of the VM Warehouse; each
// golden machine is specified by a configuration file, and virtual disk and
// memory files."  A suspended image additionally has a memory-state file
// (VMware's .vmss) whose size equals the VM's configured memory — this is
// the file the production line must physically copy per clone, and the
// reason larger-memory VMs clone slower (Figures 4-6).
//
//   <dir>/
//     machine.cfg        -- config file (key=value, VMX-like)
//     memory.vmss        -- suspended memory state (sparse, mem_bytes)
//     disk0-s001.vmdk .. -- base disk spans (sparse)
//     disk0.redo         -- base redo log (small)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/artifact_store.h"
#include "storage/disk.h"
#include "util/error.h"

namespace vmp::storage {

/// Hardware-level description of an image (what the PPP matches before
/// looking at DAG actions).
struct MachineSpec {
  std::string os;                  // "linux-mandrake-8.1"
  std::uint64_t memory_bytes = 0;  // suspended state size == this
  DiskSpec disk;
  /// True when the image is a suspended checkpoint (resume instead of boot).
  bool suspended = true;

  util::Status validate() const;
};

/// Artefact paths of one image directory (all relative to an ArtifactStore).
struct ImageLayout {
  std::string dir;  // e.g. "warehouse/golden-32mb"

  std::string config_path() const { return dir + "/machine.cfg"; }
  std::string memory_path() const { return dir + "/memory.vmss"; }
  std::string base_redo_path(const DiskSpec& disk) const {
    return dir + "/" + disk.redo_file_name();
  }
  std::vector<std::string> span_paths(const DiskSpec& disk) const;
};

/// Materialize a fresh image directory: config file, sparse memory state
/// (when suspended), sparse disk spans, empty base redo log.  Returns the
/// total accounting (dominated by the sparse sizes, which the simulation
/// charges as if they were real).
util::Result<IoAccounting> materialize_image(ArtifactStore* store,
                                             const ImageLayout& layout,
                                             const MachineSpec& spec);

/// Serialize/parse the config file (key=value lines).
std::string render_machine_config(const MachineSpec& spec);
util::Result<MachineSpec> parse_machine_config(const std::string& text);

}  // namespace vmp::storage
