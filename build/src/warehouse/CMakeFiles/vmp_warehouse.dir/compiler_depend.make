# Empty compiler generated dependencies file for vmp_warehouse.
# This may be replaced when dependencies are built.
