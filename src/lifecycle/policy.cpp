#include "lifecycle/policy.h"

#include <algorithm>

namespace vmp::lifecycle {

using util::Error;
using util::ErrorCode;
using util::Result;

double RebuildCostModel::rebuild_cost_s(std::uint64_t physical_bytes,
                                        std::uint64_t files,
                                        std::size_t performed_actions) const {
  return clone_fixed_sec +
         static_cast<double>(physical_bytes) / nfs_copy_bytes_per_sec +
         static_cast<double>(files) * per_file_copy_overhead_sec +
         static_cast<double>(performed_actions) *
             (iso_connect_sec + guest_action_sec);
}

std::vector<std::string> LruPolicy::rank(
    const std::vector<ImageStats>& candidates) {
  std::vector<const ImageStats*> order;
  order.reserve(candidates.size());
  for (const ImageStats& s : candidates) order.push_back(&s);
  std::sort(order.begin(), order.end(),
            [](const ImageStats* a, const ImageStats* b) {
              if (a->last_use_tick != b->last_use_tick)
                return a->last_use_tick < b->last_use_tick;
              return a->id < b->id;
            });
  std::vector<std::string> ids;
  ids.reserve(order.size());
  for (const ImageStats* s : order) ids.push_back(s->id);
  return ids;
}

double GdsfPolicy::priority(const ImageStats& stats) const {
  // hits+1: a never-cloned image still carries its rebuild cost — charging
  // zero would make every fresh publish the instant victim.
  const double size =
      static_cast<double>(std::max<std::uint64_t>(stats.physical_bytes, 1));
  return clock_ + static_cast<double>(stats.hits + 1) *
                      stats.rebuild_cost_s / size;
}

std::vector<std::string> GdsfPolicy::rank(
    const std::vector<ImageStats>& candidates) {
  std::vector<const ImageStats*> order;
  order.reserve(candidates.size());
  for (const ImageStats& s : candidates) order.push_back(&s);
  std::sort(order.begin(), order.end(),
            [this](const ImageStats* a, const ImageStats* b) {
              const double pa = priority(*a);
              const double pb = priority(*b);
              if (pa != pb) return pa < pb;
              return a->id < b->id;
            });
  std::vector<std::string> ids;
  ids.reserve(order.size());
  for (const ImageStats* s : order) ids.push_back(s->id);
  return ids;
}

void GdsfPolicy::on_evict(const ImageStats& victim) {
  // Classic greedy-dual aging: the clock never moves backwards, and rises
  // to the evicted priority so surviving images' advantage decays over
  // time instead of being permanent.
  clock_ = std::max(clock_, priority(victim));
}

Result<std::unique_ptr<EvictionPolicy>> make_policy(const std::string& name) {
  if (name == "lru") {
    return Result<std::unique_ptr<EvictionPolicy>>(
        std::make_unique<LruPolicy>());
  }
  if (name == "gdsf") {
    return Result<std::unique_ptr<EvictionPolicy>>(
        std::make_unique<GdsfPolicy>());
  }
  return Result<std::unique_ptr<EvictionPolicy>>(Error(
      ErrorCode::kInvalidArgument,
      "unknown eviction policy '" + name + "' (expected \"lru\" or \"gdsf\")"));
}

}  // namespace vmp::lifecycle
