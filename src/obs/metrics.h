// Lock-cheap metrics registry: named counters, gauges, latency timers.
//
// The paper's monitoring plane (Figure 2) stores per-VM state in the VM
// Information System; this module is the fleet-wide numeric side of that
// plane.  Components resolve a metric once (a stable pointer) and then
// update it on hot paths:
//
//   * Counter   — monotonically increasing; sharded cache-line-padded
//                 atomics so concurrent increments do not bounce one line.
//   * Gauge     — a settable signed level (active VMs, in-flight calls).
//   * Timer     — latency samples folded into a util::Summary (mutex-
//                 protected; the paths that record timers already pay far
//                 more than a lock), an always-on log-linear LogHistogram
//                 (lock-free) so every latency site answers p50/p90/p99/
//                 p999, and an optional fixed-bin util::Histogram for the
//                 paper figures.
//
// Naming scheme (DESIGN.md §8): "component.verb.unit" where unit is one of
// `count`, `gauge`, `seconds` (e.g. "bus.call.seconds", "vm.active.gauge").
// The process-wide registry is what the classad exporter snapshots into the
// information system on every monitor sweep.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.h"
#include "util/stats.h"

namespace vmp::obs {

/// Monotonic counter, sharded to keep concurrent increments cheap.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    shards_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr std::size_t kShards = 8;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  static std::size_t shard_index() {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t index =
        next.fetch_add(1, std::memory_order_relaxed) % kShards;
    return index;
  }
  Shard shards_[kShards];
};

/// Settable signed level.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Latency recorder: Summary + LogHistogram always, fixed-bin Histogram
/// when bins are configured.
class Timer {
 public:
  void record(double seconds);
  /// Attach fixed-width bins (replaces any existing histogram; keeps the
  /// summary).  Width/bounds follow util::Histogram semantics.
  void set_bins(double lo, double hi, double width);

  util::Summary summary() const;
  std::optional<util::Histogram> histogram() const;
  /// Mergeable snapshot of the always-on log-linear histogram.
  HistogramSnapshot quantile_histogram() const { return log_hist_.snapshot(); }

 private:
  mutable std::mutex mutex_;
  util::Summary summary_;
  std::unique_ptr<util::Histogram> histogram_;
  LogHistogram log_hist_;
};

/// Point-in-time copy of one timer.  The mean/min/max fields and their
/// classad attribute names predate the histogram and stay backward
/// compatible; the p* quantiles come from `hist`, which also makes the
/// stats mergeable across plants (fleet rollups).
struct TimerStats {
  std::size_t count = 0;
  double sum_s = 0.0;
  double mean_s = 0.0;
  double min_s = 0.0;
  double max_s = 0.0;
  double p50_s = 0.0;
  double p90_s = 0.0;
  double p99_s = 0.0;
  double p999_s = 0.0;
  HistogramSnapshot hist;

  /// Recompute the p* fields from `hist` (no-op when hist is empty).
  void refresh_quantiles();
  /// Fold another plant's stats into this one (fleet rollup): counts and
  /// sums add, min/max widen, histograms merge, quantiles refresh.
  void merge(const TimerStats& other);
};

/// Point-in-time copy of every metric (safe to read with no locks held).
/// Also the fleet rollup unit: snapshots parsed back from exported classads
/// (obs::metrics_snapshot_from_ad) carry classad-folded names
/// ("bus_call_count"), so the accessors fall back to the folded spelling,
/// and merge() folds per-plant snapshots into one.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, TimerStats> timers;
  /// Derived real-valued attributes a pre-merged fleet snapshot may carry
  /// in place of raw counters; ratio() keys are "<hit>/<miss>" in folded
  /// spelling.
  std::map<std::string, double> derived;

  /// counters[name], 0 when absent (folded-name fallback).
  std::uint64_t counter(const std::string& name) const;
  std::int64_t gauge(const std::string& name) const;
  /// Timer stats, nullptr when absent (folded-name fallback).
  const TimerStats* timer_stats(const std::string& name) const;

  /// hits / (hits + misses); nullopt when both are zero.  Pre-merged fleet
  /// snapshots that carry only the derived ratio (no raw counters) are
  /// served from `derived`.
  std::optional<double> ratio(const std::string& hit_counter,
                              const std::string& miss_counter) const;

  /// Fold another snapshot in: counters/gauges sum, timers merge, derived
  /// values keep the first spelling seen.
  void merge(const MetricsSnapshot& other);
};

class MetricsRegistry {
 public:
  /// The process-wide registry every instrumented component uses.
  static MetricsRegistry& instance();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create.  Returned pointers are stable for the registry's
  /// lifetime — resolve once, update forever.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Timer* timer(const std::string& name);

  MetricsSnapshot snapshot() const;

  /// Zero every metric (counters restart, gauges reset, timers empty).
  /// Registered names and handed-out pointers stay valid.
  void reset();

  std::vector<std::string> names() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Timer>> timers_;
};

/// Render a snapshot as an aligned human-readable table.
std::string render_metrics_text(const MetricsSnapshot& snapshot);

}  // namespace vmp::obs
