// Microbenchmarks (google-benchmark) for the hot middleware paths: XML
// parsing, classad evaluation, DAG topological sort, the three matching
// tests, request round-trips, and linked-clone artefact mechanics.
//
// After the google-benchmark tables, main() runs hand-timed codec rows —
// full encode+decode round trips of the same objects through the XML text
// format and the binary codec (net/codec.h) — and emits one BENCH_JSON
// line per row:
//   BENCH_JSON {"name": "codec.descriptor.binary", "ns_per_op": ...,
//               "mops": ..., "bytes": ...}
// CI's bench-gate job feeds these to tools/bench_gate.py against
// bench/baselines/micro_core.json, which enforces the binary codec's >= 3x
// advantage over XML on descriptors (this PR's acceptance bar) plus
// conservative throughput floors.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "classad/classad.h"
#include "classad/matchmaker.h"
#include "dag/dag_xml.h"
#include "dag/matching.h"
#include "net/codec.h"
#include "net/message.h"
#include "storage/clone_ops.h"
#include "warehouse/warehouse.h"
#include "workload/dag_library.h"
#include "workload/request_gen.h"
#include "xml/xml.h"

namespace {

using namespace vmp;

void BM_XmlParseWorkspaceRequest(benchmark::State& state) {
  const std::string wire =
      workload::workspace_request(64, 0, "ufl.edu").to_xml_string();
  for (auto _ : state) {
    auto doc = xml::parse(wire);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(state.iterations() * wire.size());
}
BENCHMARK(BM_XmlParseWorkspaceRequest);

void BM_RequestRoundTrip(benchmark::State& state) {
  const core::CreateRequest request =
      workload::workspace_request(64, 0, "ufl.edu");
  for (auto _ : state) {
    auto parsed = core::CreateRequest::from_xml_string(request.to_xml_string());
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_RequestRoundTrip);

void BM_ClassAdEvaluateRequirements(benchmark::State& state) {
  classad::ClassAd request;
  (void)request.set_expression(
      "Requirements",
      "other.Memory >= 64 && other.OS == \"linux\" && other.Disk > 1000");
  classad::ClassAd machine;
  machine.set_integer("Memory", 128);
  machine.set_string("OS", "linux");
  machine.set_integer("Disk", 2048);
  for (auto _ : state) {
    auto v = request.evaluate("Requirements", &machine);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_ClassAdEvaluateRequirements);

void BM_ClassAdMatchAll(benchmark::State& state) {
  classad::ClassAd request;
  (void)request.set_expression("Requirements", "other.Memory >= 64");
  (void)request.set_expression("Rank", "other.Memory");
  std::vector<classad::ClassAd> machines;
  for (int i = 0; i < state.range(0); ++i) {
    classad::ClassAd m;
    m.set_integer("Memory", 32 + i);
    machines.push_back(std::move(m));
  }
  for (auto _ : state) {
    auto matches = classad::match_all(request, machines);
    benchmark::DoNotOptimize(matches);
  }
}
BENCHMARK(BM_ClassAdMatchAll)->Arg(8)->Arg(64)->Arg(512);

void BM_TopologicalSort(benchmark::State& state) {
  const dag::ConfigDag d = workload::random_layered_dag(
      1, state.range(0), state.range(0), 0.3);
  for (auto _ : state) {
    auto order = d.topological_sort();
    benchmark::DoNotOptimize(order);
  }
  state.SetLabel(std::to_string(d.size()) + " nodes");
}
BENCHMARK(BM_TopologicalSort)->Arg(4)->Arg(8)->Arg(16);

void BM_EvaluateMatch(benchmark::State& state) {
  const dag::ConfigDag d =
      workload::random_layered_dag(2, state.range(0), state.range(0), 0.3);
  const auto order = d.topological_sort().value();
  std::vector<std::string> history;
  for (std::size_t i = 0; i < order.size() / 2; ++i) {
    history.push_back(d.action(order[i])->signature());
  }
  for (auto _ : state) {
    auto eval = dag::evaluate_match(d, history);
    benchmark::DoNotOptimize(eval);
  }
  state.SetLabel(std::to_string(d.size()) + " nodes, half performed");
}
BENCHMARK(BM_EvaluateMatch)->Arg(4)->Arg(8)->Arg(16);

void BM_InVigoMatch(benchmark::State& state) {
  workload::WorkspaceParams params;
  const dag::ConfigDag request = workload::invigo_workspace_dag(params);
  const auto history = workload::invigo_golden_history();
  for (auto _ : state) {
    auto eval = dag::evaluate_match(request, history);
    benchmark::DoNotOptimize(eval);
  }
}
BENCHMARK(BM_InVigoMatch);

void BM_DagXmlRoundTrip(benchmark::State& state) {
  workload::WorkspaceParams params;
  const dag::ConfigDag d = workload::invigo_workspace_dag(params);
  for (auto _ : state) {
    auto parsed = dag::from_xml_string(dag::to_xml_string(d));
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_DagXmlRoundTrip);

void BM_LinkedClone(benchmark::State& state) {
  const auto sandbox =
      std::filesystem::temp_directory_path() / "vmplants-microbench";
  std::filesystem::remove_all(sandbox);
  storage::ArtifactStore store(sandbox);
  storage::MachineSpec spec;
  spec.os = "linux";
  spec.memory_bytes = 64ull << 20;
  spec.suspended = true;
  spec.disk = {"disk0", 2048ull << 20, 16, storage::DiskMode::kNonPersistent};
  const storage::ImageLayout golden{"golden"};
  if (!storage::materialize_image(&store, golden, spec).ok()) {
    state.SkipWithError("materialize failed");
    return;
  }
  std::size_t n = 0;
  for (auto _ : state) {
    auto report = storage::clone_image(&store, golden, spec,
                                       "clones/c" + std::to_string(n++),
                                       storage::CloneStrategy::kLinked);
    benchmark::DoNotOptimize(report);
  }
  std::filesystem::remove_all(sandbox);
}
BENCHMARK(BM_LinkedClone);

// ---- Hand-timed codec rows (BENCH_JSON, consumed by tools/bench_gate.py) ----

/// A representative golden-image descriptor: the paper's 64 MB workspace
/// image with a configured guest (packages, users, mounts, services) and a
/// performed-action history — the object every warehouse rescan parses and
/// every binary snapshot section carries.
warehouse::GoldenImage make_codec_descriptor() {
  warehouse::GoldenImage image;
  image.id = "golden-64mb";
  image.backend = "vmware-gsx";
  image.layout.dir = "warehouse/golden-64mb";
  image.spec.os = "linux";
  image.spec.memory_bytes = 64ull << 20;
  image.spec.suspended = true;
  image.spec.disk = {"disk0", 2048ull << 20, 16,
                     storage::DiskMode::kNonPersistent};
  image.guest.os = "linux";
  image.guest.hostname = "workspace-00";
  image.guest.ip = "10.0.0.42";
  image.guest.mac = "02:00:0a:00:00:2a";
  image.guest.packages = {"openssh", "nfs-utils", "perl", "globus-gsi",
                          "condor", "gcc"};
  image.guest.users = {{"griduser", "/home/griduser"},
                       {"vmplant", "/home/vmplant"}};
  image.guest.mounts = {{"/mnt/nfs", "nfs-server:/export"}};
  image.guest.running_services = {"sshd", "nfslock", "condor_startd"};
  image.guest.files = {{"/etc/grid/vmplant.conf", "plant=plant0\nshop=shop0"},
                       {"/etc/hosts", "10.0.0.1 nfs-server"}};
  for (int i = 0; i < 8; ++i) {
    image.performed.push_back("action-sig-" + std::to_string(i));
  }
  return image;
}

/// A representative bus message: a create-request envelope with a small
/// XML body, the shape every shop->plant hop round-trips.
net::Message make_codec_message() {
  net::Message m = net::Message::request("vmplant.create", "shop0", "plant3",
                                         "req-0042");
  auto& req = m.body().add_child("create");
  req.set_attr("memory_mb", "64");
  req.set_attr("os", "linux");
  auto& reqs = req.add_child("requirements");
  reqs.set_text("other.Memory >= 64 && other.OS == \"linux\"");
  return m;
}

struct CodecRow {
  double ns_per_op = 0.0;
  std::size_t wire_bytes = 0;
};

/// Time `iters` full encode+decode round trips of `fn` (fn returns the
/// encoded size; decode success is asserted inside).
template <typename Fn>
CodecRow time_codec(int iters, Fn&& fn) {
  CodecRow row;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) row.wire_bytes = fn();
  row.ns_per_op = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count() *
                  1e9 / iters;
  return row;
}

void report_codec(const char* name, const CodecRow& row) {
  const double mops = row.ns_per_op > 0.0 ? 1e3 / row.ns_per_op : 0.0;
  std::printf("%-24s %12.0f ns/op %10.3f Mop/s %8zu bytes\n", name,
              row.ns_per_op, mops, row.wire_bytes);
  std::printf("BENCH_JSON {\"name\": \"%s\", \"ns_per_op\": %.2f, "
              "\"mops\": %.4f, \"bytes\": %zu}\n",
              name, row.ns_per_op, mops, row.wire_bytes);
}

int run_codec_rows() {
  constexpr int kIters = 20'000;
  const warehouse::GoldenImage image = make_codec_descriptor();
  const net::Message message = make_codec_message();
  bool ok = true;

  std::printf("\ncodec round trips (encode + decode, %d iters)\n", kIters);

  const CodecRow desc_xml = time_codec(kIters, [&] {
    const std::string wire = warehouse::render_descriptor(image);
    auto parsed = warehouse::parse_descriptor(wire);
    if (!parsed.ok()) ok = false;
    benchmark::DoNotOptimize(parsed);
    return wire.size();
  });
  const CodecRow desc_bin = time_codec(kIters, [&] {
    const std::string wire = net::codec::encode_descriptor(image);
    auto parsed = net::codec::decode_descriptor(wire);
    if (!parsed.ok()) ok = false;
    benchmark::DoNotOptimize(parsed);
    return wire.size();
  });
  const CodecRow msg_xml = time_codec(kIters, [&] {
    const std::string wire = message.serialize();
    auto parsed = net::Message::deserialize(wire);
    if (!parsed.ok()) ok = false;
    benchmark::DoNotOptimize(parsed);
    return wire.size();
  });
  const CodecRow msg_bin = time_codec(kIters, [&] {
    const std::string wire = net::codec::encode_message(message);
    auto parsed = net::codec::decode_message(wire);
    if (!parsed.ok()) ok = false;
    benchmark::DoNotOptimize(parsed);
    return wire.size();
  });

  report_codec("codec.descriptor.xml", desc_xml);
  report_codec("codec.descriptor.binary", desc_bin);
  report_codec("codec.message.xml", msg_xml);
  report_codec("codec.message.binary", msg_bin);
  const double desc_speedup =
      desc_bin.ns_per_op > 0.0 ? desc_xml.ns_per_op / desc_bin.ns_per_op : 0.0;
  std::printf("BENCH_JSON {\"name\": \"codec.descriptor.speedup\", "
              "\"speedup\": %.2f}\n",
              desc_speedup);

  if (!ok) {
    std::printf("FAILED: a codec round trip returned an error\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return run_codec_rows();
}
