// Figure 6: cloning time as a function of VM sequence number.
//
// Paper (§4.3): "cloning times tend to increase when the VMPlant hosts a
// large number of VMs.  This behavior is most noticeable in the 64MB and
// 256MB cases, where each of the 8 VMPlants hosts up to 16 64MB clones or
// 5 256MB clones, requiring an aggregate of more than 1GB of host memory."
// The plot is per-request: x = VM sequence number, y = cloning time.
#include <cstdio>

#include "common.h"

int main() {
  using namespace vmp;
  bench::print_header(
      "Figure 6 — cloning time vs VM sequence number",
      "flat for 32 MB; rising tail for 64 MB and 256 MB as plants exceed "
      "~1 GB aggregate VM memory");

  bench::PaperExperimentConfig config;
  const auto results = bench::run_paper_experiment(config);

  for (const auto& series : results) {
    std::printf("# %u MB series: sequence_number cloning_time_s plant\n",
                series.memory_mb);
    for (const auto& sample : series.samples) {
      std::printf("%4zu %8.1f %s\n", sample.sequence,
                  sample.timing.clone_sec, sample.plant.c_str());
    }
    std::printf("\n");
  }

  // Trend check: first-quarter vs last-quarter means per series.
  std::printf("trend (first-quarter mean -> last-quarter mean):\n");
  for (const auto& series : results) {
    const std::size_t n = series.samples.size();
    if (n < 8) continue;
    util::Summary head, tail;
    for (std::size_t i = 0; i < n / 4; ++i) {
      head.add(series.samples[i].timing.clone_sec);
    }
    for (std::size_t i = n - n / 4; i < n; ++i) {
      tail.add(series.samples[i].timing.clone_sec);
    }
    std::printf("  %3u MB: %.1fs -> %.1fs (x%.2f)\n", series.memory_mb,
                head.mean(), tail.mean(), tail.mean() / head.mean());

    char name[64], measured[64];
    std::snprintf(name, sizeof name, "fig6.rise_%umb", series.memory_mb);
    std::snprintf(measured, sizeof measured, "x%.2f tail/head",
                  tail.mean() / head.mean());
    bench::print_summary_row(
        name,
        series.memory_mb == 32 ? "mostly flat"
                               : "clear rise once plants fill",
        measured);
  }
  return 0;
}
