#include "core/admission.h"

namespace vmp::core {

using util::Error;
using util::ErrorCode;
using util::Result;

Result<AdmissionController::Ticket> AdmissionController::admit() {
  if (config_.max_inflight == 0) return Ticket(this);

  std::unique_lock<std::mutex> lock(mutex_);
  if (inflight_ < config_.max_inflight) {
    ++inflight_;
    return Ticket(this);
  }
  if (queued_ >= config_.queue_limit) {
    ++rejected_;
    return Result<Ticket>(Error(
        ErrorCode::kResourceExhausted,
        "admission: " + std::to_string(inflight_) + " creations in flight, " +
            std::to_string(queued_) + " queued (limit " +
            std::to_string(config_.queue_limit) + ")"));
  }
  ++queued_;
  slot_free_.wait(lock, [this] { return inflight_ < config_.max_inflight; });
  --queued_;
  ++inflight_;
  return Ticket(this);
}

void AdmissionController::release() {
  if (config_.max_inflight == 0) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --inflight_;
  }
  slot_free_.notify_one();
}

std::size_t AdmissionController::inflight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return inflight_;
}

std::size_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_;
}

std::uint64_t AdmissionController::rejected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rejected_;
}

}  // namespace vmp::core
