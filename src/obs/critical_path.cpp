#include "obs/critical_path.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace vmp::obs {

namespace {

/// Longest span in a non-empty list; the FIRST longest wins a tie, exactly
/// like Python's max() in trace_summarize.py.
const Span* longest(const std::vector<const Span*>& list) {
  return *std::max_element(
      list.begin(), list.end(), [](const Span* a, const Span* b) {
        return attributed_duration(*a) < attributed_duration(*b);
      });
}

}  // namespace

double attributed_duration(const Span& span) {
  return std::max(0.0, span.end_s - span.start_s);
}

CriticalPath critical_path(const std::vector<Span>& trace_spans) {
  CriticalPath out;
  if (trace_spans.empty()) return out;

  std::unordered_set<std::uint64_t> ids;
  ids.reserve(trace_spans.size());
  for (const Span& s : trace_spans) ids.insert(s.span_id);

  // Children indexed by parent, completion order preserved.  A parent id
  // that never finished (an open or crashed span, or a root lost to a
  // truncated dump) re-parents its children to the virtual root so partial
  // traces still attribute instead of vanishing.
  std::unordered_map<std::uint64_t, std::vector<const Span*>> children;
  children.reserve(trace_spans.size() + 1);
  for (const Span& s : trace_spans) {
    const std::uint64_t parent =
        (s.parent_id != 0 && ids.count(s.parent_id) != 0) ? s.parent_id : 0;
    children[parent].push_back(&s);
  }

  const auto roots = children.find(0);
  if (roots == children.end() || roots->second.empty()) return out;
  const Span* node = longest(roots->second);
  out.total_s = attributed_duration(*node);
  while (node != nullptr) {
    double child_sum = 0.0;
    const Span* next = nullptr;
    const auto kids = children.find(node->span_id);
    if (kids != children.end() && !kids->second.empty()) {
      for (const Span* k : kids->second) child_sum += attributed_duration(*k);
      next = longest(kids->second);
    }
    out.entries.push_back(
        {*node, std::max(0.0, attributed_duration(*node) - child_sum)});
    node = next;
  }
  return out;
}

std::map<std::string, double> self_times(const CriticalPath& path) {
  std::map<std::string, double> out;
  for (const CriticalPathEntry& entry : path.entries) {
    out[entry.span.name] += entry.self_s;
  }
  return out;
}

void record_critical_path(const CriticalPath& path,
                          MetricsRegistry* registry) {
  if (registry == nullptr) registry = &MetricsRegistry::instance();
  for (const CriticalPathEntry& entry : path.entries) {
    registry->timer(kTailSelfMetricPrefix + entry.span.name + ".seconds")
        ->record(entry.self_s);
  }
}

}  // namespace vmp::obs
