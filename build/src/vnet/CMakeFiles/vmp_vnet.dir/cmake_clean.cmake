file(REMOVE_RECURSE
  "CMakeFiles/vmp_vnet.dir/allocator.cpp.o"
  "CMakeFiles/vmp_vnet.dir/allocator.cpp.o.d"
  "CMakeFiles/vmp_vnet.dir/ethernet.cpp.o"
  "CMakeFiles/vmp_vnet.dir/ethernet.cpp.o.d"
  "CMakeFiles/vmp_vnet.dir/router.cpp.o"
  "CMakeFiles/vmp_vnet.dir/router.cpp.o.d"
  "CMakeFiles/vmp_vnet.dir/switch.cpp.o"
  "CMakeFiles/vmp_vnet.dir/switch.cpp.o.d"
  "CMakeFiles/vmp_vnet.dir/vnet_bridge.cpp.o"
  "CMakeFiles/vmp_vnet.dir/vnet_bridge.cpp.o.d"
  "libvmp_vnet.a"
  "libvmp_vnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmp_vnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
