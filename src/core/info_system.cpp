#include "core/info_system.h"

#include "core/request.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vmp::core {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

void VmInformationSystem::store(const std::string& vm_id,
                                classad::ClassAd ad) {
  std::lock_guard<std::mutex> lock(mutex_);
  ads_[vm_id] = std::move(ad);
}

Result<classad::ClassAd> VmInformationSystem::query(
    const std::string& vm_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = ads_.find(vm_id);
  if (it == ads_.end()) {
    return Result<classad::ClassAd>(
        Error(ErrorCode::kNotFound, "info system: no VM " + vm_id));
  }
  return it->second;
}

bool VmInformationSystem::contains(const std::string& vm_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ads_.count(vm_id) != 0;
}

Status VmInformationSystem::remove(const std::string& vm_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ads_.erase(vm_id) == 0) {
    return Status(ErrorCode::kNotFound, "info system: no VM " + vm_id);
  }
  return Status();
}

Status VmInformationSystem::update(const std::string& vm_id,
                                   const classad::ClassAd& updates) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = ads_.find(vm_id);
  if (it == ads_.end()) {
    return Status(ErrorCode::kNotFound, "info system: no VM " + vm_id);
  }
  for (const std::string& name : updates.names()) {
    it->second.set(name, updates.lookup(name)->clone());
  }
  return Status();
}

std::vector<std::string> VmInformationSystem::vm_ids() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(ads_.size());
  for (const auto& [id, ad] : ads_) out.push_back(id);
  return out;
}

std::size_t VmInformationSystem::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ads_.size();
}

std::size_t VmInformationSystem::remove_prefixed(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t removed = 0;
  for (auto it = ads_.begin(); it != ads_.end();) {
    if (it->first.starts_with(prefix)) {
      it = ads_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

Status VmMonitor::refresh(const std::string& vm_id) {
  // The monitor runs on its own thread while creates are in flight, so it
  // reads a consistent copy rather than borrowing a pointer into the
  // hypervisor's instance table.
  const std::optional<hv::VmInstance> vm = hypervisor_->snapshot_vm(vm_id);
  if (!vm.has_value()) {
    return Status(ErrorCode::kNotFound, "monitor: hypervisor lost VM " + vm_id);
  }
  classad::ClassAd updates;
  updates.set_string(attrs::kState, hv::power_state_name(vm->power));
  updates.set_integer(attrs::kMemoryBytes,
                      static_cast<std::int64_t>(vm->spec.memory_bytes));
  updates.set_integer(attrs::kIsosConnected,
                      static_cast<std::int64_t>(vm->connected_isos.size()));
  if (!vm->guest.ip.empty()) updates.set_string(attrs::kIp, vm->guest.ip);
  if (!vm->guest.mac.empty()) updates.set_string(attrs::kMac, vm->guest.mac);
  return info_->update(vm_id, updates);
}

std::size_t VmMonitor::refresh_all() {
  std::size_t ok = 0;
  std::size_t active = 0;
  std::size_t suspended = 0;
  for (const std::string& id : info_->vm_ids()) {
    if (id.starts_with(kObsAdPrefix)) continue;  // not a VM
    if (!refresh(id).ok()) continue;
    ++ok;
    if (const auto vm = hypervisor_->snapshot_vm(id)) {
      if (vm->power == hv::PowerState::kRunning) ++active;
      if (vm->power == hv::PowerState::kSuspended) ++suspended;
    }
  }
  obs::MetricsRegistry& r = obs::MetricsRegistry::instance();
  r.gauge("vm.active.gauge")->set(static_cast<std::int64_t>(active));
  r.gauge("vm.suspended.gauge")->set(static_cast<std::int64_t>(suspended));
  publish_obs_ads();
  return ok;
}

void VmMonitor::enable_obs_export() {
  obs_export_.store(true, std::memory_order_relaxed);
}

void VmMonitor::disable_obs_export() {
  obs_export_.store(false, std::memory_order_relaxed);
  (void)info_->remove_prefixed(kObsAdPrefix);
}

void VmMonitor::publish_obs_ads() {
  if (!obs_export_.load(std::memory_order_relaxed)) return;
  const obs::ExportBundle bundle = obs::export_bundle();
  info_->store(kObsMetricsId, bundle.metrics);
  for (const auto& [vm_id, ad] : bundle.vm_traces) {
    info_->store(kObsTracePrefix + vm_id, ad);
  }
  for (const auto& [trace_id, ad] : bundle.tail_exemplars) {
    info_->store(kObsTailPrefix + trace_id, ad);
  }
}

void VmMonitor::start_periodic(std::chrono::milliseconds interval) {
  if (thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stopping_ = false;
  }
  thread_ = std::thread([this, interval] {
    std::unique_lock<std::mutex> lock(stop_mutex_);
    while (!stopping_) {
      lock.unlock();
      refresh_all();
      sweeps_.fetch_add(1);
      lock.lock();
      stop_cv_.wait_for(lock, interval, [this] { return stopping_; });
    }
  });
}

void VmMonitor::stop_periodic() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
    // A stopped monitor leaves no stale observability ads behind: the
    // obs:// snapshots are only meaningful while sweeps keep them fresh.
    if (obs_export_.load(std::memory_order_relaxed)) {
      (void)info_->remove_prefixed(kObsAdPrefix);
    }
  }
}

}  // namespace vmp::core
