// Host-only network switch ("vmnet" switch / UML tap+daemon).
//
// Paper, Section 3.3: "host-only networks correspond to statically
// installed 'vmnet' switches for VMware and 'tap' devices with a switch
// daemon for UML, which are dynamically assigned to client domains."
//
// The switch is a learning L2 switch: ports deliver frames to attached
// receivers; unknown/broadcast destinations flood.  One port may be an
// uplink (the VNET bridge) receiving everything that isn't local.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/error.h"
#include "vnet/ethernet.h"

namespace vmp::vnet {

/// Receives frames delivered to a port.
using FrameSink = std::function<void(const EthernetFrame&)>;

class HostOnlySwitch {
 public:
  explicit HostOnlySwitch(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Attach a port; returns its id.  `sink` is invoked for frames delivered
  /// to this port.  A port marked as uplink receives frames for unknown
  /// destinations (after local flooding) exactly once.
  std::uint32_t attach(FrameSink sink, bool uplink = false);

  util::Status detach(std::uint32_t port);

  /// Inject a frame arriving on `ingress_port`.  Learning: the source MAC
  /// is bound to the ingress port.  Delivery: known unicast to its port;
  /// otherwise flooded to every other port.
  util::Status inject(std::uint32_t ingress_port, const EthernetFrame& frame);

  std::size_t port_count() const { return ports_.size(); }
  std::uint64_t frames_switched() const { return frames_switched_; }
  std::uint64_t frames_flooded() const { return frames_flooded_; }

  /// Port a MAC was learned on, if any (for tests).
  std::optional<std::uint32_t> learned_port(const MacAddress& mac) const;

 private:
  struct Port {
    FrameSink sink;
    bool uplink = false;
  };

  std::string name_;
  std::map<std::uint32_t, Port> ports_;
  std::map<MacAddress, std::uint32_t> mac_table_;
  std::uint32_t next_port_ = 1;
  std::uint64_t frames_switched_ = 0;
  std::uint64_t frames_flooded_ = 0;
};

}  // namespace vmp::vnet
