#include "explore/explorer.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace vmp::explore {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// One decision point on the current DFS path.  The path persists across
/// runs: a prefix of it prescribes the next run, and backtracking advances
/// the deepest node with an untried alternative.
struct PathNode {
  Decision::Kind kind = Decision::Kind::kTie;

  // kTie ------------------------------------------------------------------
  struct Alt {
    std::uint64_t seq = 0;
    std::string tag;
  };
  double when = 0.0;
  std::vector<Alt> alts;  // co-enabled events, ascending seq
  /// Sleep set inherited at node creation: events (by seq, with tag) whose
  /// firing here is provably covered by an already-explored sibling order.
  std::vector<std::pair<std::uint64_t, std::string>> sleep_in;
  std::vector<std::size_t> explored;  // alt indices fully explored
  std::size_t chosen = kNone;         // alt index taken in the current run

  // kFault ----------------------------------------------------------------
  std::string point;
  std::string detail;
  bool fire = true;      // current branch (explored fire-first)
  bool flipped = false;  // the no-fire branch has been taken
};

bool alt_asleep(const PathNode& node, std::size_t index) {
  const std::uint64_t seq = node.alts[index].seq;
  for (const auto& [slept, tag] : node.sleep_in) {
    if (slept == seq) return true;
  }
  return false;
}

bool alt_explored(const PathNode& node, std::size_t index) {
  return std::find(node.explored.begin(), node.explored.end(), index) !=
         node.explored.end();
}

/// Drives one run.  Decisions at depths covered by `path` are prescribed
/// (with strict determinism checks); deeper decisions create fresh nodes,
/// defaulting to the first awake alternative (ties) or the injected branch
/// (faults).  Every decision — prescribed or fresh, branching or singleton —
/// is appended to the run's decision log for trace emission.
class RunDriver : public sim::SchedulePolicy {
 public:
  RunDriver(std::vector<PathNode>* path, const Scenario* scenario,
            const ExploreOptions* options)
      : path_(path), scenario_(scenario), options_(options) {}

  std::size_t pick(sim::SimTime when,
                   const std::vector<Choice>& ready) override {
    if (aborted_ || failed()) return 0;

    std::vector<std::uint64_t> seqs;
    seqs.reserve(ready.size());
    for (const Choice& c : ready) seqs.push_back(c.seq);

    if (depth_ < path_->size()) {
      PathNode& node = (*path_)[depth_];
      bool matches = node.kind == Decision::Kind::kTie &&
                     node.when == when && node.alts.size() == ready.size();
      for (std::size_t i = 0; matches && i < ready.size(); ++i) {
        matches = node.alts[i].seq == ready[i].seq;
      }
      if (!matches || node.chosen == kNone) {
        fail_at("tie");
        return 0;
      }
      ++depth_;
      decisions_.push_back(
          Decision::tie(when, std::move(seqs), node.alts[node.chosen].seq));
      return node.chosen;
    }

    if (depth_ >= options_->max_decisions_per_run) {
      // Past the decision budget: finish the run on defaults, no branching.
      depth_clipped_ = true;
      ++depth_;
      decisions_.push_back(Decision::tie(when, std::move(seqs), ready[0].seq));
      return 0;
    }

    PathNode node;
    node.kind = Decision::Kind::kTie;
    node.when = when;
    node.alts.reserve(ready.size());
    for (const Choice& c : ready) node.alts.push_back({c.seq, c.tag});
    if (options_->sleep_sets && depth_ > 0) {
      node.sleep_in = child_sleep((*path_)[depth_ - 1]);
    }
    ++new_nodes_;

    std::size_t first = kNone;
    std::size_t awake = 0;
    for (std::size_t i = 0; i < node.alts.size(); ++i) {
      if (alt_asleep(node, i)) continue;
      ++awake;
      if (first == kNone) first = i;
    }
    if (awake > 1) ++new_branch_nodes_;
    node.chosen = first;
    ++depth_;
    if (first == kNone) {
      // Every co-enabled event is asleep: each of their firings here is
      // covered by an already-explored order.  The continuation is
      // redundant — abandon the run without checking invariants.
      aborted_ = true;
      path_->push_back(std::move(node));
      return 0;
    }
    decisions_.push_back(
        Decision::tie(when, std::move(seqs), node.alts[first].seq));
    path_->push_back(std::move(node));
    return first;
  }

  bool fault_decide(const std::string& point, const std::string& detail) {
    if (aborted_ || failed()) return false;

    if (depth_ < path_->size()) {
      PathNode& node = (*path_)[depth_];
      if (node.kind != Decision::Kind::kFault || node.point != point ||
          node.detail != detail) {
        fail_at("fault");
        return false;
      }
      ++depth_;
      decisions_.push_back(Decision::fault(point, detail, node.fire));
      return node.fire;
    }

    if (depth_ >= options_->max_decisions_per_run) {
      depth_clipped_ = true;
      ++depth_;
      decisions_.push_back(Decision::fault(point, detail, false));
      return false;
    }

    PathNode node;
    node.kind = Decision::Kind::kFault;
    node.point = point;
    node.detail = detail;
    node.fire = true;
    ++new_nodes_;
    ++new_branch_nodes_;  // a fault site always branches: fire / no-fire
    ++depth_;
    decisions_.push_back(Decision::fault(point, detail, true));
    path_->push_back(std::move(node));
    return true;
  }

  bool aborted() const { return aborted_; }
  bool depth_clipped() const { return depth_clipped_; }
  bool failed() const { return !error_.empty(); }
  const std::string& error() const { return error_; }
  std::vector<Decision> take_decisions() { return std::move(decisions_); }
  std::uint64_t new_nodes() const { return new_nodes_; }
  std::uint64_t new_branch_nodes() const { return new_branch_nodes_; }

 private:
  void fail_at(const char* what) {
    error_ = std::string("scenario is nondeterministic: replayed decision "
                         "prefix diverged at ") +
             what + " decision " + std::to_string(depth_);
  }

  /// Sleep set a child node inherits after `parent` takes its chosen
  /// alternative: members of the parent's sleep set plus the parent's
  /// already-explored alternatives, kept only when independent of the taken
  /// action.  A fault outcome is treated as dependent with everything
  /// (conservative), so children of fault nodes start awake.
  std::vector<std::pair<std::uint64_t, std::string>> child_sleep(
      const PathNode& parent) const {
    std::vector<std::pair<std::uint64_t, std::string>> out;
    if (parent.kind != Decision::Kind::kTie || parent.chosen == kNone) {
      return out;
    }
    const std::string& taken = parent.alts[parent.chosen].tag;
    if (taken.empty()) return out;  // untagged events commute with nothing
    auto consider = [&](std::uint64_t seq, const std::string& tag) {
      if (!tag.empty() && scenario_->independent(tag, taken)) {
        out.emplace_back(seq, tag);
      }
    };
    for (const auto& [seq, tag] : parent.sleep_in) consider(seq, tag);
    for (std::size_t index : parent.explored) {
      consider(parent.alts[index].seq, parent.alts[index].tag);
    }
    return out;
  }

  std::vector<PathNode>* path_;
  const Scenario* scenario_;
  const ExploreOptions* options_;
  std::size_t depth_ = 0;
  bool aborted_ = false;
  bool depth_clipped_ = false;
  std::string error_;
  std::vector<Decision> decisions_;
  std::uint64_t new_nodes_ = 0;
  std::uint64_t new_branch_nodes_ = 0;
};

/// Advance the DFS to the next unexplored schedule: find the deepest node
/// with an untried, awake alternative, select it, and drop everything
/// beneath.  Returns false when the whole space is exhausted.
bool advance(std::vector<PathNode>* path, ExploreReport* report) {
  while (!path->empty()) {
    PathNode& node = path->back();
    if (node.kind == Decision::Kind::kTie) {
      if (node.chosen != kNone) node.explored.push_back(node.chosen);
      std::size_t next = kNone;
      for (std::size_t i = 0; i < node.alts.size(); ++i) {
        if (alt_explored(node, i) || alt_asleep(node, i)) continue;
        next = i;
        break;
      }
      if (next != kNone) {
        node.chosen = next;
        return true;
      }
      // Exhausted: everything never chosen was asleep — skipped orderings.
      report->pruned_choices += node.alts.size() - node.explored.size();
      path->pop_back();
    } else {
      if (node.fire && !node.flipped) {
        node.fire = false;
        node.flipped = true;
        return true;
      }
      path->pop_back();
    }
  }
  return false;
}

void insert_unique_sorted(std::vector<std::string>* values,
                          const std::string& value) {
  auto it = std::lower_bound(values->begin(), values->end(), value);
  if (it == values->end() || *it != value) values->insert(it, value);
}

/// Arm the process-wide fault registry for one exploration run.  No-op when
/// the scenario has no fault plan.
template <typename Decide>
bool arm_faults(Scenario* scenario, sim::Engine* engine, Decide decide) {
  fault::FaultPlan plan = scenario->fault_plan();
  fault::FaultRegistry& registry = fault::FaultRegistry::instance();
  registry.clear();
  if (plan.rules().empty()) return false;
  registry.install(std::move(plan));
  registry.set_clock([engine]() { return engine->now(); });
  registry.set_decider(std::move(decide));
  return true;
}

/// Scope the process-wide flight recorder to one run: empty ring, journal
/// clock driven by the engine (records carry sim time), both reverted on
/// destruction — the engine dies with the run, so the clock MUST not
/// outlive this scope.
class ScopedFlightRecorder {
 public:
  explicit ScopedFlightRecorder(sim::Engine* engine)
      : journal_(obs::Journal::instance()) {
    journal_.clear_ring();
    journal_.set_clock([engine]() { return engine->now(); });
  }
  ScopedFlightRecorder(const ScopedFlightRecorder&) = delete;
  ScopedFlightRecorder& operator=(const ScopedFlightRecorder&) = delete;
  ~ScopedFlightRecorder() { journal_.set_clock(nullptr); }

  std::vector<obs::JournalRecord> ring() const { return journal_.ring(); }

 private:
  obs::Journal& journal_;
};

Trace make_trace(const Scenario& scenario, std::vector<Decision> decisions,
                 std::string digest, std::uint64_t schedule,
                 std::vector<std::string> violations) {
  Trace trace;
  trace.scenario = scenario.name();
  trace.config = scenario.config_spec();
  trace.digest = std::move(digest);
  trace.schedule = schedule;
  trace.violations = std::move(violations);
  trace.decisions = std::move(decisions);
  return trace;
}

}  // namespace

Result<ExploreReport> explore(const ScenarioFactory& factory,
                              const ExploreOptions& options) {
  ExploreReport report;
  std::vector<PathNode> path;

  for (;;) {
    if (report.schedules >= options.max_schedules) {
      report.schedule_budget_hit = true;
      break;
    }

    std::unique_ptr<Scenario> scenario = factory();
    if (!scenario) {
      return Result<ExploreReport>(
          Error(ErrorCode::kInternal, "explore: scenario factory returned "
                                      "null"));
    }
    RunDriver driver(&path, scenario.get(), &options);
    sim::Engine engine;
    ScopedFlightRecorder flight(&engine);
    arm_faults(scenario.get(), &engine,
               [&driver](const std::string& point, const std::string& detail) {
                 return driver.fault_decide(point, detail);
               });

    Status setup = scenario->setup(&engine);
    if (!setup.ok()) {
      fault::FaultRegistry::instance().clear();
      return setup.propagate<ExploreReport>();
    }

    engine.set_scheduler(&driver);
    std::uint64_t steps = 0;
    bool truncated = false;
    while (!driver.aborted() && !driver.failed()) {
      if (steps >= options.max_steps_per_run) {
        truncated = true;
        break;
      }
      if (!engine.step()) break;
      ++steps;
    }
    engine.set_scheduler(nullptr);
    // Disarm before digesting: recovery scans inside invariants must not
    // consult fault hooks (and the decider must not outlive the driver).
    fault::FaultRegistry::instance().clear();

    ++report.schedules;
    report.decision_points += driver.new_nodes();
    report.branch_points += driver.new_branch_nodes();

    if (driver.failed()) {
      return Result<ExploreReport>(
          Error(ErrorCode::kInternal, "explore: " + driver.error()));
    }

    bool stop = false;
    if (driver.aborted()) {
      ++report.sleep_aborted_runs;
    } else if (truncated) {
      ++report.truncated_runs;
    } else {
      if (driver.depth_clipped()) ++report.depth_clipped_runs;
      const std::uint64_t terminal_index = report.terminal_states++;
      const std::string digest = scenario->digest();
      insert_unique_sorted(&report.distinct_digests, digest);

      std::vector<std::string> failed_names;
      std::vector<std::string> failed_messages;
      for (Invariant& invariant : scenario->invariants()) {
        Status status = invariant.check();
        if (!status.ok()) {
          failed_names.push_back(invariant.name);
          failed_messages.push_back(status.error().message());
        }
      }

      const bool want_dump =
          options.dump_schedule >= 0 &&
          static_cast<std::uint64_t>(options.dump_schedule) == terminal_index;
      if (!failed_names.empty() || want_dump) {
        Trace trace = make_trace(*scenario, driver.take_decisions(), digest,
                                 terminal_index, failed_names);
        const std::vector<obs::JournalRecord> ring = flight.ring();
        for (std::size_t i = 0; i < failed_names.size(); ++i) {
          report.violations.push_back(ExploreViolation{
              failed_names[i], failed_messages[i], trace, ring});
        }
        if (want_dump) report.dumped_trace = std::move(trace);
      }
      if (!failed_names.empty() && options.stop_on_violation) stop = true;
    }

    if (stop) break;
    if (!advance(&path, &report)) break;
  }

  return report;
}

namespace {

/// Replays a recorded trace: every decision must match the log exactly.
class ReplayDriver : public sim::SchedulePolicy {
 public:
  explicit ReplayDriver(const Trace* trace) : trace_(trace) {}

  std::size_t pick(sim::SimTime when,
                   const std::vector<Choice>& ready) override {
    if (failed()) return 0;
    const Decision* decision = next("tie");
    if (decision == nullptr) return 0;
    if (decision->kind != Decision::Kind::kTie) {
      error_ = diverged() + "engine hit a tie, trace recorded a fault";
      return 0;
    }
    if (std::fabs(decision->when - when) > 1e-9) {
      error_ = diverged() + "tie at t=" + std::to_string(when) +
               ", trace recorded t=" + std::to_string(decision->when);
      return 0;
    }
    bool same = decision->ready.size() == ready.size();
    for (std::size_t i = 0; same && i < ready.size(); ++i) {
      same = decision->ready[i] == ready[i].seq;
    }
    if (!same) {
      error_ = diverged() + "co-enabled event set differs from the trace";
      return 0;
    }
    for (std::size_t i = 0; i < ready.size(); ++i) {
      if (ready[i].seq == decision->chosen) return i;
    }
    error_ = diverged() + "recorded chosen seq " +
             std::to_string(decision->chosen) + " is not co-enabled";
    return 0;
  }

  bool fault_decide(const std::string& point, const std::string& detail) {
    if (failed()) return false;
    const Decision* decision = next("fault");
    if (decision == nullptr) return false;
    if (decision->kind != Decision::Kind::kFault) {
      error_ = diverged() + "engine hit a fault site, trace recorded a tie";
      return false;
    }
    if (decision->point != point || decision->detail != detail) {
      error_ = diverged() + "fault site " + point + "@" + detail +
               " differs from recorded " + decision->point + "@" +
               decision->detail;
      return false;
    }
    return decision->fire;
  }

  bool failed() const { return !error_.empty(); }
  const std::string& error() const { return error_; }
  bool exhausted() const { return next_ == trace_->decisions.size(); }
  std::size_t consumed() const { return next_; }

 private:
  const Decision* next(const char* what) {
    if (next_ >= trace_->decisions.size()) {
      error_ = diverged() + std::string("trace ended but the run asked for "
                                        "another ") +
               what + " decision";
      return nullptr;
    }
    return &trace_->decisions[next_++];
  }

  std::string diverged() const {
    return "replay diverged at decision " + std::to_string(next_) + ": ";
  }

  const Trace* trace_;
  std::size_t next_ = 0;
  std::string error_;
};

}  // namespace

Result<ReplayResult> replay(const ScenarioFactory& factory,
                            const Trace& trace) {
  std::unique_ptr<Scenario> scenario = factory();
  if (!scenario) {
    return Result<ReplayResult>(
        Error(ErrorCode::kInternal, "replay: scenario factory returned null"));
  }
  if (!trace.scenario.empty() && trace.scenario != scenario->name()) {
    return Result<ReplayResult>(Error(
        ErrorCode::kInvalidArgument, "replay: trace is for scenario '" +
                                         trace.scenario + "', factory built '" +
                                         scenario->name() + "'"));
  }

  ReplayDriver driver(&trace);
  sim::Engine engine;
  ScopedFlightRecorder flight(&engine);
  arm_faults(scenario.get(), &engine,
             [&driver](const std::string& point, const std::string& detail) {
               return driver.fault_decide(point, detail);
             });

  Status setup = scenario->setup(&engine);
  if (!setup.ok()) {
    fault::FaultRegistry::instance().clear();
    return setup.propagate<ReplayResult>();
  }

  engine.set_scheduler(&driver);
  // The decision log bounds the run; allow slack for decision-free events.
  const std::uint64_t step_budget =
      1000 + 100 * static_cast<std::uint64_t>(trace.decisions.size());
  std::uint64_t steps = 0;
  while (!driver.failed() && steps < step_budget && engine.step()) ++steps;
  engine.set_scheduler(nullptr);
  fault::FaultRegistry::instance().clear();

  if (driver.failed()) {
    return Result<ReplayResult>(
        Error(ErrorCode::kFailedPrecondition, "replay: " + driver.error()));
  }
  if (steps >= step_budget) {
    return Result<ReplayResult>(Error(
        ErrorCode::kInternal, "replay: run exceeded the step budget"));
  }
  if (!driver.exhausted()) {
    return Result<ReplayResult>(Error(
        ErrorCode::kFailedPrecondition,
        "replay: run finished with " +
            std::to_string(trace.decisions.size() - driver.consumed()) +
            " recorded decisions unconsumed"));
  }

  ReplayResult result;
  result.digest = scenario->digest();
  result.digest_matches = result.digest == trace.digest;
  for (Invariant& invariant : scenario->invariants()) {
    Status status = invariant.check();
    if (!status.ok()) {
      result.violations.push_back(invariant.name + ": " +
                                  status.error().message());
    }
  }
  return result;
}

}  // namespace vmp::explore
