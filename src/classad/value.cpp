#include "classad/value.h"

#include "util/strings.h"

namespace vmp::classad {

ValueType Value::type() const {
  switch (data_.index()) {
    case 0: return ValueType::kUndefined;
    case 1: return ValueType::kError;
    case 2: return ValueType::kBoolean;
    case 3: return ValueType::kInteger;
    case 4: return ValueType::kReal;
    case 5: return ValueType::kString;
  }
  return ValueType::kError;
}

double Value::as_number() const {
  if (type() == ValueType::kInteger) {
    return static_cast<double>(as_integer());
  }
  return as_real();
}

std::string Value::to_string() const {
  switch (type()) {
    case ValueType::kUndefined: return "UNDEFINED";
    case ValueType::kError: return "ERROR";
    case ValueType::kBoolean: return as_boolean() ? "TRUE" : "FALSE";
    case ValueType::kInteger: return std::to_string(as_integer());
    case ValueType::kReal: {
      std::string s = util::format_double(as_real());
      // Keep reals distinguishable from integers in round-trips.
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos &&
          s.find("nan") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case ValueType::kString: {
      std::string out = "\"";
      for (char c : as_string()) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
      }
      out += '"';
      return out;
    }
  }
  return "ERROR";
}

bool operator==(const Value& a, const Value& b) { return a.data_ == b.data_; }

}  // namespace vmp::classad
