// §3.4 cost-function illustration: bidding crossover at the 13th VM.
//
// Paper: two plants A and B, 4 host-only networks each, capacity 32 VMs;
// network cost 50, compute cost 4 x resident VMs.  One domain's requests
// keep landing on the first chosen plant until the compute cost exceeds
// the other plant's one-time network cost — "when the client has requested
// as many as 13 VMs ... At that point, the shop would pick plant B".
//
// The bench drives the REAL bidding protocol (registry discovery + bus
// estimates) and prints the bid table, then ablates the cost model against
// the prototype's memory-available bidding.
#include <cstdio>
#include <filesystem>
#include <memory>

#include "common.h"
#include "core/plant.h"
#include "core/shop.h"

namespace {

struct Site {
  std::unique_ptr<vmp::storage::ArtifactStore> store;
  std::unique_ptr<vmp::warehouse::Warehouse> warehouse;
  vmp::net::MessageBus bus;
  vmp::net::ServiceRegistry registry;
  std::vector<std::unique_ptr<vmp::core::VmPlant>> plants;
  std::unique_ptr<vmp::core::VmShop> shop;
};

std::unique_ptr<Site> make_site(const std::string& cost_model,
                                const std::filesystem::path& sandbox) {
  using namespace vmp;
  auto site = std::make_unique<Site>();
  std::filesystem::remove_all(sandbox);
  site->store = std::make_unique<storage::ArtifactStore>(sandbox);
  site->warehouse =
      std::make_unique<warehouse::Warehouse>(site->store.get(), "warehouse");
  if (!workload::publish_paper_goldens(site->warehouse.get(), {32}).ok()) {
    return nullptr;
  }
  for (const char* name : {"plantA", "plantB"}) {
    core::PlantConfig pc;
    pc.name = name;
    pc.cost_model = cost_model;
    pc.host_only_networks = 4;
    pc.max_vms = 32;
    site->plants.push_back(std::make_unique<core::VmPlant>(
        pc, site->store.get(), site->warehouse.get()));
    (void)site->plants.back()->attach_to_bus(&site->bus, &site->registry);
  }
  site->shop = std::make_unique<core::VmShop>(core::ShopConfig{}, &site->bus,
                                              &site->registry);
  (void)site->shop->attach_to_bus();
  return site;
}

/// Returns the request index (1-based) at which the second plant first won.
int run_domain_sequence(Site* site, const std::string& domain, int requests,
                        bool print_rows) {
  using namespace vmp;
  int crossover = -1;
  std::string first_winner;
  if (print_rows) {
    std::printf("%-5s %-9s %-9s %-8s\n", "req", "bidA", "bidB", "winner");
  }
  for (int i = 0; i < requests; ++i) {
    core::CreateRequest request = workload::workspace_request(32, i, domain);
    auto bids = site->shop->collect_bids(request);
    double bid_a = -1, bid_b = -1;
    for (const core::Bid& bid : bids) {
      if (bid.plant_address == "plantA") bid_a = bid.cost;
      if (bid.plant_address == "plantB") bid_b = bid.cost;
    }
    auto ad = site->shop->create(request);
    if (!ad.ok()) break;
    const std::string winner =
        ad.value().get_string(core::attrs::kPlant).value();
    if (first_winner.empty()) first_winner = winner;
    if (crossover < 0 && winner != first_winner) crossover = i + 1;
    if (print_rows) {
      std::printf("%-5d %-9.0f %-9.0f %-8s\n", i + 1, bid_a, bid_b,
                  winner.c_str());
    }
  }
  return crossover;
}

}  // namespace

int main() {
  using namespace vmp;
  bench::print_header(
      "§3.4 — cost function and bidding crossover",
      "network cost 50, compute cost 4/VM: one domain fills plant A with 13 "
      "VMs before plant B's network cost wins");

  const auto sandbox =
      std::filesystem::temp_directory_path() / "vmplants-costfn";

  // The paper's model.
  auto site = make_site("network-compute", sandbox);
  if (!site) return 1;
  const int crossover =
      run_domain_sequence(site.get(), "ufl.edu", 16, /*print_rows=*/true);
  std::printf("\nsecond plant first chosen at request #%d\n\n", crossover);

  char measured[64];
  std::snprintf(measured, sizeof measured, "request #%d", crossover);
  bench::print_summary_row("cost.crossover",
                           "14th request (after 13 VMs on one plant)",
                           measured);

  // Ablation: the prototype's memory-available bidding spreads the same
  // domain across plants immediately (no network-cost term).
  auto ablation_site =
      make_site("memory-available", sandbox.string() + "-ablation");
  if (!ablation_site) return 1;
  (void)run_domain_sequence(ablation_site.get(), "ufl.edu", 8,
                            /*print_rows=*/false);
  std::printf("\nablation (memory-available model): VMs per plant after 8 "
              "requests: A=%zu B=%zu\n",
              ablation_site->plants[0]->active_vms(),
              ablation_site->plants[1]->active_vms());
  std::snprintf(measured, sizeof measured, "A=%zu B=%zu",
                ablation_site->plants[0]->active_vms(),
                ablation_site->plants[1]->active_vms());
  bench::print_summary_row("cost.ablation_memory_model",
                           "balanced spread (no host-only-network economy)",
                           measured);

  std::filesystem::remove_all(sandbox);
  std::filesystem::remove_all(sandbox.string() + "-ablation");
  return 0;
}
