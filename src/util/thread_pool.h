// Fixed-size thread pool used by the real-backend integration layer.
//
// The simulated cluster is single-threaded (the DES owns time); the real
// backend instead runs plant daemons and concurrent client requests on pool
// threads, which is how the thread-safety of the warehouse, information
// system, and network allocator gets exercised in tests.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace vmp::util {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns a future for its result.
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> result = packaged->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool::submit after shutdown");
      }
      queue_.emplace_back([packaged] { (*packaged)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Block until all submitted tasks have finished.
  void wait_idle();

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace vmp::util
