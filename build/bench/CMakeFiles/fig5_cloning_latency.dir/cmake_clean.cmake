file(REMOVE_RECURSE
  "CMakeFiles/fig5_cloning_latency.dir/fig5_cloning_latency.cpp.o"
  "CMakeFiles/fig5_cloning_latency.dir/fig5_cloning_latency.cpp.o.d"
  "fig5_cloning_latency"
  "fig5_cloning_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_cloning_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
