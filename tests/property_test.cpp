// Property-based tests: parameterized sweeps over randomized inputs
// checking structural invariants of the DAG algorithms, the matching tests,
// the simulation resources, and serialization round-trips.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <set>

#include "core/plant.h"
#include "core/request.h"
#include "core/shop.h"
#include "dag/dag_xml.h"
#include "dag/matching.h"
#include "fault/fault.h"
#include "net/bus.h"
#include "net/registry.h"
#include "sim/engine.h"
#include "sim/resources.h"
#include "util/random.h"
#include "warehouse/warehouse.h"
#include "workload/dag_library.h"
#include "workload/request_gen.h"

namespace vmp {
namespace {

// =====================================================================
// Random DAG properties, swept over seeds and shapes.
// =====================================================================

struct DagShape {
  std::uint64_t seed;
  std::size_t layers;
  std::size_t width;
  double density;
};

class RandomDagProperty : public ::testing::TestWithParam<DagShape> {
 protected:
  dag::ConfigDag make() const {
    const DagShape& s = GetParam();
    return workload::random_layered_dag(s.seed, s.layers, s.width, s.density);
  }
};

TEST_P(RandomDagProperty, ValidatesAndSortsConsistently) {
  dag::ConfigDag d = make();
  ASSERT_TRUE(d.validate().ok());
  auto sorted = d.topological_sort();
  ASSERT_TRUE(sorted.ok());
  const auto& order = sorted.value();
  ASSERT_EQ(order.size(), d.size());

  // Topological property: every edge points forward in the order.
  std::map<std::string, std::size_t> pos;
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (const std::string& id : d.node_ids()) {
    for (const std::string& succ : d.successors(id)) {
      EXPECT_LT(pos.at(id), pos.at(succ));
    }
  }
}

TEST_P(RandomDagProperty, AncestorsAgreeWithEdges) {
  dag::ConfigDag d = make();
  for (const std::string& id : d.node_ids()) {
    const auto ancestors = d.ancestors(id);
    // Direct predecessors are ancestors.
    for (const std::string& pred : d.predecessors(id)) {
      EXPECT_TRUE(ancestors.count(pred));
    }
    // Ancestor-of-ancestor is an ancestor (transitivity).
    for (const std::string& a : ancestors) {
      for (const std::string& aa : d.ancestors(a)) {
        EXPECT_TRUE(ancestors.count(aa));
      }
    }
    // Nothing is its own ancestor (acyclicity).
    EXPECT_FALSE(ancestors.count(id));
  }
}

TEST_P(RandomDagProperty, XmlRoundTripIsIdentity) {
  dag::ConfigDag d = make();
  auto parsed = dag::from_xml_string(dag::to_xml_string(d));
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_TRUE(parsed.value() == d);
}

TEST_P(RandomDagProperty, EveryTopoPrefixPassesAllThreeTests) {
  // A history taken as a prefix of a valid topological order is by
  // construction subset-closed, prefix-closed, and order-consistent.
  dag::ConfigDag d = make();
  auto order = d.topological_sort().value();
  std::vector<std::string> history;
  for (std::size_t take = 0; take <= order.size(); ++take) {
    history.clear();
    for (std::size_t i = 0; i < take; ++i) {
      history.push_back(d.action(order[i])->signature());
    }
    auto eval = dag::evaluate_match(d, history);
    ASSERT_TRUE(eval.ok());
    EXPECT_TRUE(eval.value().matches())
        << "prefix of length " << take << ": "
        << eval.value().failure_reason;
    EXPECT_EQ(eval.value().satisfied_nodes.size(), take);
    EXPECT_EQ(eval.value().remaining_plan.size(), order.size() - take);
  }
}

TEST_P(RandomDagProperty, MatchedPlanIsAValidCompletion) {
  // For a random downward-closed subset (not necessarily a topo prefix),
  // the remaining plan must respect all edges relative to the full graph.
  dag::ConfigDag d = make();
  util::SplitMix64 rng(GetParam().seed ^ 0xabcdef);

  // Build a random downward-closed set by including each node only if all
  // its predecessors are included.
  const auto topo_order = d.topological_sort().value();
  std::set<std::string> closed;
  for (const std::string& id : topo_order) {
    bool all_preds = true;
    for (const std::string& p : d.predecessors(id)) {
      if (!closed.count(p)) all_preds = false;
    }
    if (all_preds && rng.bernoulli(0.6)) closed.insert(id);
  }
  // History: the closed set in topo order (a valid execution).
  std::vector<std::string> history;
  for (const std::string& id : topo_order) {
    if (closed.count(id)) history.push_back(d.action(id)->signature());
  }

  auto eval = dag::evaluate_match(d, history);
  ASSERT_TRUE(eval.ok());
  ASSERT_TRUE(eval.value().matches()) << eval.value().failure_reason;

  // Concatenating history order + plan order yields a full linear
  // extension of the DAG.
  std::map<std::string, std::size_t> pos;
  std::size_t i = 0;
  for (const std::string& id : eval.value().satisfied_nodes) pos[id] = i++;
  for (const std::string& id : eval.value().remaining_plan) pos[id] = i++;
  ASSERT_EQ(pos.size(), d.size());
  for (const std::string& id : d.node_ids()) {
    for (const std::string& succ : d.successors(id)) {
      EXPECT_LT(pos.at(id), pos.at(succ));
    }
  }
}

TEST_P(RandomDagProperty, ViolatingHistoriesAreRejected) {
  dag::ConfigDag d = make();
  auto order = d.topological_sort().value();

  // Find a node with at least one ancestor; performing it alone must fail
  // the prefix test.
  for (const std::string& id : order) {
    if (!d.ancestors(id).empty()) {
      auto eval = dag::evaluate_match(d, {d.action(id)->signature()});
      ASSERT_TRUE(eval.ok());
      EXPECT_FALSE(eval.value().matches());
      EXPECT_FALSE(eval.value().prefix_ok);
      break;
    }
  }

  // An alien action must fail the subset test.
  auto eval = dag::evaluate_match(d, {"alien-op{x=1}"});
  ASSERT_TRUE(eval.ok());
  EXPECT_FALSE(eval.value().subset_ok);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RandomDagProperty,
    ::testing::Values(DagShape{1, 2, 2, 0.5}, DagShape{2, 3, 3, 0.4},
                      DagShape{3, 4, 4, 0.3}, DagShape{4, 5, 3, 0.6},
                      DagShape{5, 3, 6, 0.2}, DagShape{6, 6, 2, 0.7},
                      DagShape{7, 2, 8, 0.4}, DagShape{8, 8, 2, 0.3},
                      DagShape{9, 4, 5, 0.5}, DagShape{10, 5, 5, 0.25}));

// =====================================================================
// Ranking properties.
// =====================================================================

class RankingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RankingProperty, RankedMatchesAreSortedAndConsistent) {
  dag::ConfigDag d = workload::random_layered_dag(GetParam(), 4, 3, 0.4);
  auto order = d.topological_sort().value();

  // Candidate images: topo prefixes of various lengths + one broken.
  std::vector<std::vector<std::string>> images;
  for (std::size_t take = 0; take <= order.size(); take += 2) {
    std::vector<std::string> history;
    for (std::size_t i = 0; i < take; ++i) {
      history.push_back(d.action(order[i])->signature());
    }
    images.push_back(history);
  }
  images.push_back({"alien-op{}"});

  auto ranked = dag::rank_matches(d, images);
  ASSERT_TRUE(ranked.ok());
  // The alien image must be absent; all others present.
  EXPECT_EQ(ranked.value().size(), images.size() - 1);
  // Sorted by satisfied_count descending; satisfied+remaining == |dag|.
  for (std::size_t i = 0; i < ranked.value().size(); ++i) {
    if (i > 0) {
      EXPECT_GE(ranked.value()[i - 1].satisfied_count,
                ranked.value()[i].satisfied_count);
    }
    EXPECT_EQ(ranked.value()[i].satisfied_count +
                  ranked.value()[i].remaining_count,
              d.size());
  }
  // The best match is the longest prefix.
  EXPECT_EQ(ranked.value().front().satisfied_count,
            images[images.size() - 2].size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RankingProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// =====================================================================
// Simulation resource conservation properties.
// =====================================================================

class BandwidthProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BandwidthProperty, WorkConservationAndOrdering) {
  // N random transfers: total transferred equals total offered, and the
  // pipe is never idle while work remains -> makespan == total/capacity
  // when all jobs start at t=0.
  util::SplitMix64 rng(GetParam());
  sim::Engine engine;
  const double capacity = 8.0;
  sim::SharedBandwidth pipe(&engine, capacity);

  double total = 0.0;
  std::size_t completions = 0;
  const std::size_t n = 2 + rng.next_below(10);
  for (std::size_t i = 0; i < n; ++i) {
    const double units = 1.0 + rng.uniform(0.0, 100.0);
    total += units;
    pipe.start(units, [&] { ++completions; });
  }
  engine.run();
  EXPECT_EQ(completions, n);
  EXPECT_NEAR(pipe.total_transferred(), total, 1e-6);
  EXPECT_NEAR(engine.now(), total / capacity, 1e-6);
}

TEST_P(BandwidthProperty, StaggeredArrivalsStillConserveWork) {
  util::SplitMix64 rng(GetParam() ^ 0x777);
  sim::Engine engine;
  sim::SharedBandwidth pipe(&engine, 5.0);
  double total = 0.0;
  std::size_t completions = 0;
  const std::size_t n = 3 + rng.next_below(8);
  for (std::size_t i = 0; i < n; ++i) {
    const double units = 1.0 + rng.uniform(0.0, 50.0);
    const double arrival = rng.uniform(0.0, 10.0);
    total += units;
    engine.schedule(arrival, [&pipe, units, &completions] {
      pipe.start(units, [&completions] { ++completions; });
    });
  }
  engine.run();
  EXPECT_EQ(completions, n);
  EXPECT_NEAR(pipe.total_transferred(), total, 1e-6);
  // Makespan is at least the lower bound (work/capacity).
  EXPECT_GE(engine.now() + 1e-9, total / 5.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BandwidthProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

// =====================================================================
// In-VIGO workspace DAG sweep: every (memory, request-index) combination
// builds a valid request whose XML round-trips.
// =====================================================================

class WorkspaceSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::size_t>> {
};

TEST_P(WorkspaceSweep, RequestsAreValidAndRoundTrip) {
  const auto [mem, index] = GetParam();
  core::CreateRequest r = workload::workspace_request(mem, index, "ufl.edu");
  ASSERT_TRUE(r.validate().ok());
  auto parsed = core::CreateRequest::from_xml_string(r.to_xml_string());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_TRUE(parsed.value().config == r.config);
  EXPECT_EQ(parsed.value().hardware.memory_bytes, r.hardware.memory_bytes);

  // Each request matches the golden prefix regardless of parameters.
  auto eval =
      dag::evaluate_match(r.config, workload::invigo_golden_history());
  ASSERT_TRUE(eval.ok());
  EXPECT_TRUE(eval.value().matches());
}

INSTANTIATE_TEST_SUITE_P(
    MemAndIndex, WorkspaceSweep,
    ::testing::Combine(::testing::Values(32u, 64u, 256u),
                       ::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{17}, std::size_t{127},
                                         std::size_t{300})));

// =====================================================================
// Fault-schedule properties: random single-fault schedules against the
// full shop->plant->store path.  Whatever fires, a creation either
// succeeds or fails with a typed error, and the store never keeps
// half-written clone or image directories.
// =====================================================================

class SingleFaultScheduleProperty
    : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("vmp-prop-fault-" + std::to_string(::getpid()) + "-" +
             std::to_string(GetParam()));
    std::filesystem::remove_all(root_);
  }
  void TearDown() override {
    fault::FaultRegistry::instance().clear();
    std::filesystem::remove_all(root_);
  }

  // Every directory under the plants' clone areas must be a complete
  // clone (its guest.state exists — the last artefact written), and every
  // directory under the warehouse must hold a descriptor.
  void check_no_partial_dirs(storage::ArtifactStore* store,
                             const std::vector<std::string>& clone_areas) {
    for (const std::string& area : clone_areas) {
      auto entries = store->list_dir(area);
      ASSERT_TRUE(entries.ok()) << entries.error().to_string();
      for (const std::string& entry : entries.value()) {
        EXPECT_TRUE(store->exists(area + "/" + entry + "/guest.state"))
            << "half-written clone dir: " << area << "/" << entry;
      }
    }
    auto images = store->list_dir("warehouse");
    ASSERT_TRUE(images.ok());
    for (const std::string& entry : images.value()) {
      EXPECT_TRUE(store->exists("warehouse/" + entry + "/descriptor.xml"))
          << "half-written image dir: warehouse/" << entry;
    }
  }

  std::filesystem::path root_;
};

TEST_P(SingleFaultScheduleProperty, CreationsFailTypedAndStoreStaysClean) {
  const std::uint64_t seed = GetParam();
  util::SplitMix64 rng(seed);
  storage::ArtifactStore store(root_);
  warehouse::Warehouse warehouse(&store, "warehouse");
  ASSERT_TRUE(workload::publish_paper_goldens(&warehouse).ok());
  net::MessageBus bus;
  net::ServiceRegistry registry;
  std::vector<std::unique_ptr<core::VmPlant>> plants;
  std::vector<std::string> clone_areas;
  for (int i = 0; i < 2; ++i) {
    core::PlantConfig pc;
    pc.name = "plant" + std::to_string(i);
    plants.push_back(
        std::make_unique<core::VmPlant>(pc, &store, &warehouse));
    ASSERT_TRUE(plants.back()->attach_to_bus(&bus, &registry).ok());
    clone_areas.push_back(pc.name + "/clones");
  }
  core::VmShop shop(core::ShopConfig{}, &bus, &registry);
  ASSERT_TRUE(shop.attach_to_bus().ok());

  const std::vector<std::string>& points = fault::known_points();
  for (int iter = 0; iter < 8; ++iter) {
    // One random fault rule per iteration: random point, random onset.
    const std::string& point = points[rng.next_below(points.size())];
    const std::string spec = point + ":after=" +
                             std::to_string(rng.next_below(6)) + ",times=1";
    fault::ScopedFaultPlan scoped(
        fault::FaultPlan::parse(spec, seed + iter).value());

    // Mix well-formed workspace requests with random-DAG requests (whose
    // configuration may not match any golden image at all).
    core::CreateRequest request = workload::workspace_request(32, iter, "d");
    if (rng.bernoulli(0.25)) {
      request.config = workload::random_layered_dag(
          seed * 31 + iter, 2 + rng.next_below(3), 2 + rng.next_below(3), 0.4);
    }

    auto ad = shop.create(request);
    if (ad.ok()) {
      EXPECT_TRUE(ad.value().get_string(core::attrs::kVmId).has_value());
    } else {
      // Failure must be a typed error with a message, never a crash or an
      // untagged fault.
      EXPECT_NE(ad.error().code(), util::ErrorCode::kOk);
      EXPECT_FALSE(ad.error().message().empty());
    }
    check_no_partial_dirs(&store, clone_areas);
  }
}

TEST_P(SingleFaultScheduleProperty, WarehouseNeverKeepsHalfWrittenImages) {
  const std::uint64_t seed = GetParam();
  util::SplitMix64 rng(seed ^ 0x5A5A5A5Aull);
  storage::ArtifactStore store(root_);
  warehouse::Warehouse warehouse(&store, "warehouse");

  storage::MachineSpec spec;
  spec.os = "linux";
  spec.memory_bytes = 32ull << 20;
  spec.suspended = true;
  spec.disk = {"disk0", 128ull << 20, 2, storage::DiskMode::kNonPersistent};

  int published = 0;
  for (int iter = 0; iter < 10; ++iter) {
    warehouse::GoldenImage image;
    image.id = "image-" + std::to_string(iter);
    image.backend = "vmware-gsx";
    image.spec = spec;

    util::Status publish_status;
    if (rng.bernoulli(0.6)) {
      fault::ScopedFaultPlan scoped(fault::FaultPlan::parse(
          "store.write:after=" + std::to_string(rng.next_below(8)) +
              ",times=1",
          seed + iter).value());
      publish_status = warehouse.publish(image);
    } else {
      publish_status = warehouse.publish(image);
    }
    if (publish_status.ok()) {
      ++published;
    } else {
      EXPECT_NE(publish_status.error().code(), util::ErrorCode::kOk);
    }
    // Invariant after every attempt: all image dirs are complete.
    auto entries = store.list_dir("warehouse");
    ASSERT_TRUE(entries.ok());
    for (const std::string& entry : entries.value()) {
      EXPECT_TRUE(store.exists("warehouse/" + entry + "/descriptor.xml"))
          << "half-written image dir: warehouse/" << entry;
    }
  }

  // A fresh rescan agrees with the surviving set.
  warehouse::Warehouse reloaded(&store, "warehouse");
  ASSERT_TRUE(reloaded.rescan().ok());
  EXPECT_EQ(reloaded.size(), static_cast<std::size_t>(published));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SingleFaultScheduleProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace vmp
