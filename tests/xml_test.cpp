// Unit tests for the XML document model, parser, and writer.
#include <gtest/gtest.h>

#include "xml/xml.h"

namespace vmp::xml {
namespace {

TEST(XmlBuildTest, ElementBasics) {
  Element e("vm");
  e.set_attr("id", "vm-1");
  e.set_text("hello");
  EXPECT_EQ(e.name(), "vm");
  EXPECT_TRUE(e.has_attr("id"));
  EXPECT_EQ(e.attr("id"), "vm-1");
  EXPECT_FALSE(e.has_attr("missing"));
  EXPECT_EQ(e.attr("missing"), "");
  EXPECT_EQ(e.text(), "hello");
}

TEST(XmlBuildTest, ChildNavigation) {
  Element root("root");
  root.add_child("a").set_text("1");
  root.add_child("b").set_text("2");
  root.add_child("a").set_text("3");
  ASSERT_NE(root.child("a"), nullptr);
  EXPECT_EQ(root.child("a")->text(), "1");
  EXPECT_EQ(root.child_text("b"), "2");
  EXPECT_EQ(root.children_named("a").size(), 2u);
  EXPECT_EQ(root.child("zzz"), nullptr);
}

TEST(XmlBuildTest, AttrIntAndDouble) {
  Element e("x");
  e.set_attr("n", "42");
  e.set_attr("d", "2.5");
  e.set_attr("bad", "zz");
  EXPECT_EQ(e.attr_int("n", 0), 42);
  EXPECT_DOUBLE_EQ(e.attr_double("d", 0), 2.5);
  EXPECT_EQ(e.attr_int("bad", 7), 7);
  EXPECT_EQ(e.attr_int("absent", 9), 9);
}

TEST(XmlEscapeTest, EscapesSpecials) {
  EXPECT_EQ(escape("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&apos;");
}

TEST(XmlParseTest, SimpleElement) {
  auto doc = parse("<vm id=\"vm-1\">text</vm>");
  ASSERT_TRUE(doc.ok()) << doc.error().to_string();
  EXPECT_EQ(doc.value()->name(), "vm");
  EXPECT_EQ(doc.value()->attr("id"), "vm-1");
  EXPECT_EQ(doc.value()->text(), "text");
}

TEST(XmlParseTest, SelfClosing) {
  auto doc = parse("<edge from=\"A\" to=\"B\"/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value()->attr("from"), "A");
  EXPECT_EQ(doc.value()->attr("to"), "B");
}

TEST(XmlParseTest, Nesting) {
  auto doc = parse("<a><b><c/></b><b/></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value()->children().size(), 2u);
  EXPECT_NE(doc.value()->child("b")->child("c"), nullptr);
}

TEST(XmlParseTest, EntityDecoding) {
  auto doc = parse("<x a=\"&lt;&amp;&gt;\">&quot;hi&apos;</x>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value()->attr("a"), "<&>");
  EXPECT_EQ(doc.value()->text(), "\"hi'");
}

TEST(XmlParseTest, NumericEntities) {
  auto doc = parse("<x>&#65;&#x42;</x>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value()->text(), "AB");
}

TEST(XmlParseTest, Utf8NumericEntity) {
  auto doc = parse("<x>&#233;</x>");  // é
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value()->text(), "\xc3\xa9");
}

TEST(XmlParseTest, CdataPreservedVerbatim) {
  auto doc = parse("<s><![CDATA[if (a < b && c) { }]]></s>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value()->text(), "if (a < b && c) { }");
}

TEST(XmlParseTest, CommentsSkipped) {
  auto doc = parse("<!-- header --><a><!-- inner -->x<b/></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value()->text(), "x");
  EXPECT_EQ(doc.value()->children().size(), 1u);
}

TEST(XmlParseTest, XmlDeclarationTolerated) {
  auto doc = parse("<?xml version=\"1.0\"?>\n<a/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value()->name(), "a");
}

TEST(XmlParseTest, WhitespaceAroundDocument) {
  auto doc = parse("  \n <a/>  \n");
  ASSERT_TRUE(doc.ok());
}

TEST(XmlParseTest, SingleQuotedAttributes) {
  auto doc = parse("<a k='v'/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value()->attr("k"), "v");
}

// -- Malformed inputs ---------------------------------------------------------

TEST(XmlParseErrorTest, MismatchedTags) {
  EXPECT_FALSE(parse("<a></b>").ok());
}

TEST(XmlParseErrorTest, UnterminatedElement) {
  EXPECT_FALSE(parse("<a><b></b>").ok());
}

TEST(XmlParseErrorTest, DuplicateAttribute) {
  EXPECT_FALSE(parse("<a k=\"1\" k=\"2\"/>").ok());
}

TEST(XmlParseErrorTest, UnknownEntity) {
  EXPECT_FALSE(parse("<a>&bogus;</a>").ok());
}

TEST(XmlParseErrorTest, TrailingContent) {
  EXPECT_FALSE(parse("<a/><b/>").ok());
}

TEST(XmlParseErrorTest, BareText) {
  EXPECT_FALSE(parse("just text").ok());
}

TEST(XmlParseErrorTest, UnterminatedAttribute) {
  EXPECT_FALSE(parse("<a k=\"v/>").ok());
}

TEST(XmlParseErrorTest, MissingAttrValue) {
  EXPECT_FALSE(parse("<a k/>").ok());
}

TEST(XmlParseErrorTest, EmptyInput) {
  EXPECT_FALSE(parse("").ok());
}

TEST(XmlParseErrorTest, BadNumericEntity) {
  EXPECT_FALSE(parse("<a>&#xZZ;</a>").ok());
  EXPECT_FALSE(parse("<a>&#1114112;</a>").ok());  // beyond U+10FFFF
}

// -- Round trips ----------------------------------------------------------------

TEST(XmlRoundTripTest, SerializeParseDeepEqual) {
  Element root("create-request");
  root.set_attr("id", "req-1");
  Element& dag = root.add_child("dag");
  Element& action = dag.add_child("action");
  action.set_attr("id", "A");
  action.set_attr("op", "install-os");
  action.add_child("param").set_attr("name", "distro");
  action.child("param")->set_text("redhat-8.0 & \"friends\" <beta>");
  dag.add_child("edge");

  auto parsed = parse(root.to_string());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_TRUE(root.deep_equal(*parsed.value()));
}

TEST(XmlRoundTripTest, CompactForm) {
  Element root("a");
  root.add_child("b").set_text("x");
  EXPECT_EQ(root.to_compact_string(), "<a><b>x</b></a>");
  auto parsed = parse(root.to_compact_string());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(root.deep_equal(*parsed.value()));
}

TEST(XmlRoundTripTest, CloneIsDeepAndIndependent) {
  Element root("a");
  root.add_child("b").set_attr("k", "v");
  auto copy = root.clone();
  ASSERT_TRUE(copy->deep_equal(root));
  copy->child("b")->set_attr("k", "other");
  EXPECT_FALSE(copy->deep_equal(root));
  EXPECT_EQ(root.child("b")->attr("k"), "v");
}

TEST(XmlRoundTripTest, SpecialCharactersInAttributes) {
  Element root("m");
  root.set_attr("expr", "a < b && \"x\"");
  auto parsed = parse(root.to_string());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value()->attr("expr"), "a < b && \"x\"");
}

}  // namespace
}  // namespace vmp::xml
