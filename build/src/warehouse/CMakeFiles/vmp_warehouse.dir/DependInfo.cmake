
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/warehouse/warehouse.cpp" "src/warehouse/CMakeFiles/vmp_warehouse.dir/warehouse.cpp.o" "gcc" "src/warehouse/CMakeFiles/vmp_warehouse.dir/warehouse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vmp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/vmp_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/vmp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/hypervisor/CMakeFiles/vmp_hypervisor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
