# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/xml_test[1]_include.cmake")
include("/root/repo/build/tests/classad_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/dag_test[1]_include.cmake")
include("/root/repo/build/tests/dag_matching_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/vnet_test[1]_include.cmake")
include("/root/repo/build/tests/hypervisor_test[1]_include.cmake")
include("/root/repo/build/tests/warehouse_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/shop_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/architect_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/classad_property_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
