file(REMOVE_RECURSE
  "CMakeFiles/grid_site_operations.dir/grid_site_operations.cpp.o"
  "CMakeFiles/grid_site_operations.dir/grid_site_operations.cpp.o.d"
  "grid_site_operations"
  "grid_site_operations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_site_operations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
