// Tests for the timing model, the simulated deployment, and the concurrent
// creation simulator.
#include <gtest/gtest.h>

#include "cluster/concurrent_sim.h"
#include "cluster/deployment.h"
#include "cluster/timing_model.h"
#include "util/stats.h"
#include "workload/request_gen.h"

namespace vmp::cluster {
namespace {

constexpr std::uint64_t kMb = 1ull << 20;

CreationObservation gsx_observation(std::uint64_t mem_mb,
                                    std::uint64_t resident_mb = 0,
                                    std::uint64_t active = 0) {
  CreationObservation obs;
  obs.backend = "vmware-gsx";
  obs.memory_bytes = mem_mb * kMb;
  obs.clone_bytes_copied = mem_mb * kMb + 4096;  // memory + small artefacts
  obs.clone_links = 16;
  obs.resident_before_bytes = resident_mb * kMb;
  obs.active_vms_before = active;
  obs.guest_actions = 6;
  obs.isos_connected = 6;
  obs.bidding_plants = 8;
  return obs;
}

// -- TimingModel --------------------------------------------------------------

TEST(TimingModelTest, CloneTimeGrowsWithMemorySize) {
  TimingModel model(TimingConfig{}, 1);
  const double t32 = model.time_creation(gsx_observation(32)).clone_sec;
  const double t64 = model.time_creation(gsx_observation(64)).clone_sec;
  const double t256 = model.time_creation(gsx_observation(256)).clone_sec;
  EXPECT_LT(t32, t64);
  EXPECT_LT(t64, t256);
}

TEST(TimingModelTest, CalibrationLandsInPaperRange) {
  // Means over many noisy draws should sit near the paper's reported
  // ranges: creation 17-85 s overall; clone ≈ 5-15 s (32/64 MB) and
  // ≈ 25-60 s (256 MB).
  TimingModel model(TimingConfig{}, 7);
  util::Summary clone32, clone256, total32, total256;
  for (int i = 0; i < 200; ++i) {
    const CreationTiming t32 = model.time_creation(gsx_observation(32));
    const CreationTiming t256 = model.time_creation(gsx_observation(256));
    clone32.add(t32.clone_sec);
    clone256.add(t256.clone_sec);
    total32.add(t32.total_sec);
    total256.add(t256.total_sec);
  }
  EXPECT_GT(clone32.mean(), 4.0);
  EXPECT_LT(clone32.mean(), 15.0);
  EXPECT_GT(clone256.mean(), 25.0);
  EXPECT_LT(clone256.mean(), 60.0);
  EXPECT_GT(total32.mean(), 17.0);
  EXPECT_LT(total32.mean(), 40.0);
  EXPECT_LT(total256.mean(), 85.0);
}

TEST(TimingModelTest, FullCopyApproximatelyPaper210Seconds) {
  TimingModel model(TimingConfig{}, 3);
  util::Summary copies;
  for (int i = 0; i < 100; ++i) {
    copies.add(model.full_copy_sec(2048 * kMb, 16));
  }
  EXPECT_GT(copies.mean(), 180.0);
  EXPECT_LT(copies.mean(), 240.0);
}

TEST(TimingModelTest, PressureMultiplierKicksInPastKnee) {
  TimingModel model(TimingConfig{}, 1);
  // Empty plant: no pressure.
  EXPECT_NEAR(model.pressure_multiplier(0, 0, 64 * kMb), 1.0, 0.05);
  // 15 resident 64 MB VMs on a 1.5 GB host: well past the knee.
  const double loaded =
      model.pressure_multiplier(15 * 64 * kMb, 15, 64 * kMb);
  EXPECT_GT(loaded, 1.5);
  // Monotone in residency.
  EXPECT_GT(model.pressure_multiplier(1200 * kMb, 5, 256 * kMb),
            model.pressure_multiplier(600 * kMb, 2, 256 * kMb));
}

TEST(TimingModelTest, UmlBootDominatesCloneTime) {
  TimingModel model(TimingConfig{}, 5);
  CreationObservation obs = gsx_observation(32);
  obs.backend = "uml";
  obs.clone_bytes_copied = 4096;  // no memory state
  obs.clone_links = 1;
  util::Summary clones;
  for (int i = 0; i < 100; ++i) {
    clones.add(model.time_creation(obs).clone_sec);
  }
  // Paper §4.3: UML full-boot clone average 76 s.
  EXPECT_GT(clones.mean(), 60.0);
  EXPECT_LT(clones.mean(), 95.0);
}

TEST(TimingModelTest, DeterministicForSameSeed) {
  TimingModel a(TimingConfig{}, 42);
  TimingModel b(TimingConfig{}, 42);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.time_creation(gsx_observation(64)).total_sec,
                     b.time_creation(gsx_observation(64)).total_sec);
  }
}

TEST(TimingModelTest, PhasesSumToTotal) {
  TimingModel model(TimingConfig{}, 9);
  const CreationTiming t = model.time_creation(gsx_observation(64));
  EXPECT_NEAR(t.total_sec, t.clone_sec + t.config_sec + t.shop_sec, 1e-9);
  EXPECT_GT(t.clone_sec, 0.0);
  EXPECT_GT(t.config_sec, 0.0);
  EXPECT_GT(t.shop_sec, 0.0);
}

// -- SimulatedDeployment ----------------------------------------------------------

class DeploymentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DeploymentConfig config;
    config.plant_count = 4;  // smaller than the paper for test speed
    config.seed = 99;
    deployment_ = std::make_unique<SimulatedDeployment>(config);
    ASSERT_TRUE(
        workload::publish_paper_goldens(&deployment_->warehouse()).ok());
  }
  std::unique_ptr<SimulatedDeployment> deployment_;
};

TEST_F(DeploymentTest, RunsRequestsThroughRealStack) {
  auto samples = deployment_->run_sequence(
      workload::workspace_requests(64, 8, "ufl.edu"));
  ASSERT_EQ(samples.size(), 8u);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].sequence, i + 1);
    EXPECT_FALSE(samples[i].vm_id.empty());
    EXPECT_FALSE(samples[i].plant.empty());
    EXPECT_GT(samples[i].timing.total_sec, 0.0);
    EXPECT_EQ(samples[i].memory_bytes, 64 * kMb);
  }
  // The virtual clock advanced by the sum of creation times.
  double sum = 0;
  for (const auto& s : samples) sum += s.timing.total_sec;
  EXPECT_NEAR(deployment_->sim_now(), sum, 1e-6);
  EXPECT_EQ(deployment_->creations(), 8u);
}

TEST_F(DeploymentTest, MemoryBasedBiddingBalancesPlants) {
  auto samples = deployment_->run_sequence(
      workload::workspace_requests(64, 16, "ufl.edu"));
  ASSERT_EQ(samples.size(), 16u);
  std::map<std::string, int> per_plant;
  for (const auto& s : samples) per_plant[s.plant]++;
  // Memory-available bidding spreads 16 VMs evenly over 4 plants.
  EXPECT_EQ(per_plant.size(), 4u);
  for (const auto& [plant, count] : per_plant) EXPECT_EQ(count, 4);
}

TEST_F(DeploymentTest, CollectAllEmptiesPlants) {
  auto samples = deployment_->run_sequence(
      workload::workspace_requests(32, 4, "ufl.edu"));
  ASSERT_EQ(samples.size(), 4u);
  deployment_->collect_all();
  for (std::size_t i = 0; i < deployment_->plant_count(); ++i) {
    EXPECT_EQ(deployment_->plant(i).active_vms(), 0u);
  }
}

TEST_F(DeploymentTest, FailedRequestsSkippedNotFatal) {
  std::vector<core::CreateRequest> requests =
      workload::workspace_requests(64, 2, "ufl.edu");
  requests.push_back(workload::workspace_request(128, 9, "ufl.edu"));  // no golden
  requests.push_back(workload::workspace_request(64, 3, "ufl.edu"));
  auto samples = deployment_->run_sequence(requests);
  EXPECT_EQ(samples.size(), 3u);
  EXPECT_EQ(deployment_->failures(), 1u);
}

TEST_F(DeploymentTest, DeterministicAcrossIdenticalDeployments) {
  DeploymentConfig config;
  config.plant_count = 4;
  config.seed = 99;
  SimulatedDeployment other(config);
  ASSERT_TRUE(workload::publish_paper_goldens(&other.warehouse()).ok());

  auto a = deployment_->run_sequence(workload::workspace_requests(64, 6, "d"));
  auto b = other.run_sequence(workload::workspace_requests(64, 6, "d"));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].timing.total_sec, b[i].timing.total_sec);
    EXPECT_EQ(a[i].plant, b[i].plant);
  }
}

TEST_F(DeploymentTest, Figure6EffectCloningSlowsAsPlantsFill) {
  // Drive enough 256 MB VMs that each of the 4 plants holds several:
  // later clones must be slower than early ones (memory pressure).
  auto samples = deployment_->run_sequence(
      workload::workspace_requests(256, 20, "ufl.edu"));
  ASSERT_EQ(samples.size(), 20u);
  const double early = (samples[0].timing.clone_sec +
                        samples[1].timing.clone_sec +
                        samples[2].timing.clone_sec) / 3.0;
  const double late = (samples[17].timing.clone_sec +
                       samples[18].timing.clone_sec +
                       samples[19].timing.clone_sec) / 3.0;
  EXPECT_GT(late, early * 1.3);
}

// -- ConcurrentCreationSim -----------------------------------------------------------

ConcurrentRequest concurrent_64mb() {
  ConcurrentRequest req;
  req.memory_bytes = 64 * kMb;
  req.bytes_to_copy = 64 * kMb;
  req.links = 16;
  req.guest_actions = 6;
  req.isos = 6;
  return req;
}

TEST(ConcurrentSimTest, SerialWindowMatchesSequentialIntuition) {
  ConcurrentCreationSim sim(8, TimingConfig{}, 1);
  std::vector<ConcurrentRequest> requests(10, concurrent_64mb());
  auto result = sim.run(requests, 1);
  ASSERT_EQ(result.samples.size(), 10u);
  // With window 1, creations never overlap.
  for (std::size_t i = 1; i < result.samples.size(); ++i) {
    EXPECT_GE(result.samples[i].start_sec,
              result.samples[i - 1].finish_sec - 1e-6);
  }
}

TEST(ConcurrentSimTest, ConcurrencyShrinksMakespan) {
  std::vector<ConcurrentRequest> requests(16, concurrent_64mb());
  ConcurrentCreationSim serial(8, TimingConfig{}, 1);
  ConcurrentCreationSim wide(8, TimingConfig{}, 1);
  const double serial_makespan = serial.run(requests, 1).makespan_sec;
  const double wide_makespan = wide.run(requests, 8).makespan_sec;
  EXPECT_LT(wide_makespan, serial_makespan * 0.7);
}

TEST(ConcurrentSimTest, ContentionStretchesIndividualClones) {
  std::vector<ConcurrentRequest> requests(16, concurrent_64mb());
  ConcurrentCreationSim serial(8, TimingConfig{}, 1);
  ConcurrentCreationSim wide(8, TimingConfig{}, 1);
  auto serial_result = serial.run(requests, 1);
  auto wide_result = wide.run(requests, 16);

  util::Summary serial_clone, wide_clone;
  for (const auto& s : serial_result.samples) serial_clone.add(s.clone_latency());
  for (const auto& s : wide_result.samples) wide_clone.add(s.clone_latency());
  // The shared NFS pipe makes concurrent clones individually slower.
  EXPECT_GT(wide_clone.mean(), serial_clone.mean() * 1.5);
}

TEST(ConcurrentSimTest, AllBytesMoveThroughNfs) {
  std::vector<ConcurrentRequest> requests(4, concurrent_64mb());
  ConcurrentCreationSim sim(2, TimingConfig{}, 1);
  auto result = sim.run(requests, 4);
  EXPECT_NEAR(result.nfs_bytes_moved, 4.0 * 64 * kMb, 1024.0);
}

TEST(ConcurrentSimTest, SamplesCoverAllRequests) {
  std::vector<ConcurrentRequest> requests(7, concurrent_64mb());
  ConcurrentCreationSim sim(3, TimingConfig{}, 2);
  auto result = sim.run(requests, 3);
  ASSERT_EQ(result.samples.size(), 7u);
  for (const auto& s : result.samples) {
    EXPECT_GT(s.finish_sec, s.start_sec);
    EXPECT_GE(s.clone_done_sec, s.start_sec);
    EXPECT_GE(s.finish_sec, s.clone_done_sec);
    EXPECT_LT(s.plant, 3u);
  }
}

}  // namespace
}  // namespace vmp::cluster
