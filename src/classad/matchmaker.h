// Two-way classad matchmaking (Condor-style).
//
// A match between ads A and B requires A.Requirements to evaluate to TRUE in
// the context (self=A, other=B) and symmetrically for B.  Rank (optional,
// numeric, higher wins) orders multiple matches.  VMShop uses this to check
// a creation request's hardware constraints against golden-machine
// descriptor ads, and In-VIGO-style middleware can reuse it for resource
// selection.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "classad/classad.h"

namespace vmp::classad {

/// True iff `request.Requirements` is TRUE against `candidate` AND
/// `candidate.Requirements` is TRUE or absent against `request`.
/// A missing Requirements on the request side is treated as TRUE.
bool symmetric_match(const ClassAd& request, const ClassAd& candidate);

/// One-way test: does `ad.Requirements` evaluate TRUE against `other`?
/// Missing Requirements counts as `default_when_absent`.
bool requirements_hold(const ClassAd& ad, const ClassAd& other,
                       bool default_when_absent = true);

/// Rank of `candidate` from the point of view of `request`
/// (request.Rank evaluated with other=candidate); 0.0 when absent/non-numeric.
double rank_of(const ClassAd& request, const ClassAd& candidate);

struct MatchResult {
  std::size_t index;  // into the candidate vector
  double rank;
};

/// All candidates matching `request`, best rank first (stable for ties).
std::vector<MatchResult> match_all(const ClassAd& request,
                                   const std::vector<ClassAd>& candidates);

/// Best match or nullopt.
std::optional<MatchResult> match_best(const ClassAd& request,
                                      const std::vector<ClassAd>& candidates);

}  // namespace vmp::classad
