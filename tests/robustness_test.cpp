// Robustness tests: fault injection across the service path, parser
// resilience against malformed input, session-state mechanics, and shared
// state under concurrent mutation.
#include <gtest/gtest.h>

#include <filesystem>
#include <future>

#include "classad/classad.h"
#include "core/plant.h"
#include "core/shop.h"
#include "dag/dag_xml.h"
#include "fault/fault.h"
#include "hypervisor/gsx.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "warehouse/warehouse.h"
#include "workload/request_gen.h"
#include "xml/xml.h"

namespace vmp {
namespace {

// -- Parser resilience: malformed input never crashes, only errors -----------------

std::string random_garbage(util::SplitMix64* rng, std::size_t max_len) {
  // Printable ASCII plus XML-significant characters, biased toward the
  // characters the parser branches on.
  static const char kAlphabet[] =
      "<>&;\"'=/![]-ABCdef123 \n\txml?#CDATA";
  std::string out;
  const std::size_t len = rng->next_below(max_len);
  for (std::size_t i = 0; i < len; ++i) {
    out += kAlphabet[rng->next_below(sizeof(kAlphabet) - 1)];
  }
  return out;
}

TEST(FuzzTest, XmlParserNeverCrashesOnGarbage) {
  util::SplitMix64 rng(0xF022);
  for (int i = 0; i < 3000; ++i) {
    const std::string input = random_garbage(&rng, 200);
    auto doc = xml::parse(input);  // must return, never crash/hang
    (void)doc;
  }
}

TEST(FuzzTest, XmlParserNeverCrashesOnMutatedValidDocuments) {
  const std::string valid =
      workload::workspace_request(64, 0, "ufl.edu").to_xml_string();
  util::SplitMix64 rng(0xF023);
  for (int i = 0; i < 1000; ++i) {
    std::string mutated = valid;
    const std::size_t mutations = 1 + rng.next_below(8);
    for (std::size_t m = 0; m < mutations; ++m) {
      const std::size_t pos = rng.next_below(mutated.size());
      switch (rng.next_below(3)) {
        case 0: mutated[pos] = static_cast<char>(rng.next_below(256)); break;
        case 1: mutated.erase(pos, 1); break;
        default: mutated.insert(pos, 1, '<'); break;
      }
    }
    auto doc = xml::parse(mutated);
    if (doc.ok()) {
      // A mutated document that still parses must also round-trip.
      auto again = xml::parse(doc.value()->to_string());
      EXPECT_TRUE(again.ok());
    }
  }
}

TEST(FuzzTest, ClassAdParserNeverCrashesOnGarbage) {
  util::SplitMix64 rng(0xF024);
  static const char kAlphabet[] = "[]=;()&|!<>+-*/%\"' azAZ09._,#\n";
  for (int i = 0; i < 3000; ++i) {
    std::string input;
    const std::size_t len = rng.next_below(120);
    for (std::size_t c = 0; c < len; ++c) {
      input += kAlphabet[rng.next_below(sizeof(kAlphabet) - 1)];
    }
    (void)classad::parse_classad(input);
    (void)classad::parse_expression(input);
  }
}

TEST(FuzzTest, DagXmlParserNeverCrashesOnGarbage) {
  util::SplitMix64 rng(0xF025);
  for (int i = 0; i < 1000; ++i) {
    (void)dag::from_xml_string(random_garbage(&rng, 300));
  }
}

TEST(FuzzTest, GuestAgentNeverCrashesOnGarbageScripts) {
  util::SplitMix64 rng(0xF026);
  hv::GuestAgent agent;
  hv::GuestState state;
  static const char kAlphabet[] = "abcdefgh /\n\t0123456789.-";
  for (int i = 0; i < 2000; ++i) {
    std::string script;
    const std::size_t len = rng.next_below(150);
    for (std::size_t c = 0; c < len; ++c) {
      script += kAlphabet[rng.next_below(sizeof(kAlphabet) - 1)];
    }
    (void)agent.execute(&state, script);
  }
}

// -- Fault injection across the service path ----------------------------------------

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("vmp-fault-test-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
    store_ = std::make_unique<storage::ArtifactStore>(root_);
    warehouse_ = std::make_unique<warehouse::Warehouse>(store_.get(), "warehouse");
    ASSERT_TRUE(workload::publish_paper_goldens(warehouse_.get()).ok());
    for (int i = 0; i < 3; ++i) {
      core::PlantConfig pc;
      pc.name = "plant" + std::to_string(i);
      plants_.push_back(
          std::make_unique<core::VmPlant>(pc, store_.get(), warehouse_.get()));
      ASSERT_TRUE(plants_.back()->attach_to_bus(&bus_, &registry_).ok());
    }
    shop_ = std::make_unique<core::VmShop>(core::ShopConfig{}, &bus_, &registry_);
    ASSERT_TRUE(shop_->attach_to_bus().ok());
  }
  void TearDown() override {
    shop_.reset();
    plants_.clear();
    warehouse_.reset();
    store_.reset();
    std::filesystem::remove_all(root_);
  }

  std::filesystem::path root_;
  std::unique_ptr<storage::ArtifactStore> store_;
  std::unique_ptr<warehouse::Warehouse> warehouse_;
  net::MessageBus bus_;
  net::ServiceRegistry registry_;
  std::vector<std::unique_ptr<core::VmPlant>> plants_;
  std::unique_ptr<core::VmShop> shop_;
};

TEST_F(FaultTest, ShopToleratesLossyTransport) {
  // 40% of calls to every plant time out; the shop must still complete a
  // burst of creations by skipping unlucky bids and retrying next-best.
  for (int i = 0; i < 3; ++i) {
    bus_.set_drop_rate("plant" + std::to_string(i), 0.4);
  }
  int successes = 0;
  for (int i = 0; i < 20; ++i) {
    auto ad = shop_->create(workload::workspace_request(32, i, "d"));
    if (ad.ok()) ++successes;
  }
  // With three independent plants at 40% loss per call, nearly every
  // request should still find a path.
  EXPECT_GE(successes, 15);
}

TEST_F(FaultTest, AllPlantsDownYieldsCleanNoBids) {
  for (int i = 0; i < 3; ++i) {
    bus_.set_down("plant" + std::to_string(i), true);
  }
  auto ad = shop_->create(workload::workspace_request(32, 0, "d"));
  ASSERT_FALSE(ad.ok());
  EXPECT_EQ(ad.error().code(), util::ErrorCode::kNoBids);
}

TEST_F(FaultTest, PlantRecoversAfterTransientOutage) {
  bus_.set_down("plant0", true);
  bus_.set_down("plant1", true);
  bus_.set_down("plant2", true);
  EXPECT_FALSE(shop_->create(workload::workspace_request(32, 0, "d")).ok());
  bus_.set_down("plant0", false);
  auto ad = shop_->create(workload::workspace_request(32, 1, "d"));
  ASSERT_TRUE(ad.ok());
  EXPECT_EQ(ad.value().get_string(core::attrs::kPlant).value(), "plant0");
}

TEST_F(FaultTest, InjectedVmmStartFailureAbortsCleanly) {
  // Force the next clone's resume to fail inside the hypervisor: the plant
  // must clean up (no leaked instance, no leaked network) and fault.
  auto& plant = *plants_[0];
  // The next VM id the plant will assign:
  const std::string next_id = plant.name() + "-vm-0001";
  plant.hypervisor().inject_start_failure(next_id);

  auto ad = plant.create(workload::workspace_request(32, 0, "d"));
  ASSERT_FALSE(ad.ok());
  EXPECT_EQ(plant.active_vms(), 0u);
  EXPECT_EQ(plant.allocator().free_networks(), 4u);

  // The very next attempt succeeds (failure was transient).
  EXPECT_TRUE(plant.create(workload::workspace_request(32, 1, "d")).ok());
}

TEST_F(FaultTest, RedoLogDiscardOnPowerOff) {
  auto& plant = *plants_[0];
  auto ad = plant.create(workload::workspace_request(32, 0, "d"));
  ASSERT_TRUE(ad.ok());
  const std::string vm_id = ad.value().get_string(core::attrs::kVmId).value();
  const hv::VmInstance* vm = plant.hypervisor().find(vm_id);
  const std::string redo = vm->layout.base_redo_path(vm->spec.disk);

  // Session writes land in the redo log...
  ASSERT_TRUE(store_->append_file(redo, "dirty-blocks").ok());
  EXPECT_GT(store_->file_size(redo).value(), 0u);
  // ...and are discarded at power-off (non-persistent disk semantics).
  ASSERT_TRUE(plant.hypervisor().power_off(vm_id).ok());
  EXPECT_EQ(store_->file_size(redo).value(), 0u);
}

TEST_F(FaultTest, WarehouseSurvivesConcurrentPublishers) {
  util::ThreadPool pool(8);
  std::vector<std::future<bool>> results;
  for (int i = 0; i < 24; ++i) {
    results.push_back(pool.submit([this, i] {
      storage::MachineSpec spec;
      spec.os = "linux";
      spec.memory_bytes = 32ull << 20;
      spec.suspended = true;
      spec.disk = {"disk0", 128ull << 20, 2, storage::DiskMode::kNonPersistent};
      return warehouse_
          ->publish_new("concurrent-" + std::to_string(i), "vmware-gsx", spec,
                        hv::GuestState{}, {})
          .ok();
    }));
  }
  int ok = 0;
  for (auto& f : results) ok += f.get();
  EXPECT_EQ(ok, 24);
  EXPECT_EQ(warehouse_->size(), 3u + 24u);  // paper goldens + these
  // Rescan agrees with the in-memory index.
  warehouse::Warehouse reloaded(store_.get(), "warehouse");
  ASSERT_TRUE(reloaded.rescan().ok());
  EXPECT_EQ(reloaded.size(), warehouse_->size());
}

TEST_F(FaultTest, DuplicatePublishRacesResolveToOneWinner) {
  util::ThreadPool pool(8);
  std::vector<std::future<bool>> results;
  for (int i = 0; i < 8; ++i) {
    results.push_back(pool.submit([this] {
      storage::MachineSpec spec;
      spec.os = "linux";
      spec.memory_bytes = 32ull << 20;
      spec.suspended = true;
      spec.disk = {"disk0", 128ull << 20, 2, storage::DiskMode::kNonPersistent};
      return warehouse_
          ->publish_new("contested-id", "vmware-gsx", spec, hv::GuestState{},
                        {})
          .ok();
    }));
  }
  int winners = 0;
  for (auto& f : results) winners += f.get();
  EXPECT_EQ(winners, 1);
  EXPECT_TRUE(warehouse_->contains("contested-id"));
}

TEST_F(FaultTest, SpeculativeHitsFlowThroughTheShop) {
  for (auto& plant : plants_) {
    ASSERT_TRUE(plant->pre_create("golden-32mb", 1).ok());
  }
  auto ad = shop_->create(workload::workspace_request(32, 0, "d"));
  ASSERT_TRUE(ad.ok());
  EXPECT_TRUE(ad.value().get_boolean(core::attrs::kSpeculativeHit).value());
}

// -- Plan-driven fault injection ----------------------------------------------------

TEST_F(FaultTest, CorruptedGoldenDescriptorFailsRescanWithParseError) {
  // Corrupt one golden image descriptor on disk; a fresh warehouse rescan
  // must surface kParseError (not crash, not silently drop the image).
  ASSERT_TRUE(store_
                  ->write_file("warehouse/golden-32mb/descriptor.xml",
                               "<golden id=\"x\"><machi")
                  .ok());
  warehouse::Warehouse reloaded(store_.get(), "warehouse");
  auto rescan = reloaded.rescan();
  ASSERT_FALSE(rescan.ok());
  EXPECT_EQ(rescan.error().code(), util::ErrorCode::kParseError);
}

TEST_F(FaultTest, InjectedDescriptorReadFailureSurfacesAsStoreError) {
  fault::ScopedFaultPlan scoped(
      fault::FaultPlan::parse("store.read:target=descriptor.xml,times=1")
          .value());
  warehouse::Warehouse reloaded(store_.get(), "warehouse");
  auto rescan = reloaded.rescan();
  ASSERT_FALSE(rescan.ok());
  EXPECT_EQ(rescan.error().code(), util::ErrorCode::kUnavailable);
  EXPECT_EQ(fault::FaultRegistry::instance().fired("store.read"), 1u);
  // With the fault spent, the same rescan succeeds.
  EXPECT_TRUE(reloaded.rescan().ok());
}

TEST_F(FaultTest, BidMessageLossExcludesPlantFromBidding) {
  // plant1 is unreachable for the whole request: it never bids, and the
  // creation lands on one of the surviving plants.
  fault::ScopedFaultPlan scoped(
      fault::FaultPlan::parse("bus.send:target=plant1").value());
  auto ad = shop_->create(workload::workspace_request(32, 0, "d"));
  ASSERT_TRUE(ad.ok()) << ad.error().to_string();
  EXPECT_NE(ad.value().get_string(core::attrs::kPlant).value(), "plant1");
  EXPECT_GE(fault::FaultRegistry::instance().fired("bus.send"), 1u);
}

TEST_F(FaultTest, TransportTimeoutOnCreateIsRetriedAgainstSamePlant) {
  // The three estimate calls pass (after=3); the first create call times
  // out at the transport layer, and the shop retries the same plant with
  // backoff instead of abandoning it.
  fault::ScopedFaultPlan scoped(
      fault::FaultPlan::parse("bus.timeout:after=3,times=1").value());
  auto ad = shop_->create(workload::workspace_request(32, 0, "d"));
  ASSERT_TRUE(ad.ok()) << ad.error().to_string();
  EXPECT_EQ(fault::FaultRegistry::instance().fired("bus.timeout"), 1u);
  EXPECT_EQ(shop_->retries(), 1u);
  EXPECT_EQ(shop_->failovers(), 0u);
  EXPECT_GT(shop_->retry_backoff_s(), 0.0);
}

TEST_F(FaultTest, StoreWriteFaultMidCloneRecoversViaShopFailover) {
  // Acceptance scenario: the first artefact write of the winning plant's
  // clone fails; the plant reports a typed fault, the shop marks it failed
  // and the next-best bid completes the creation.
  fault::ScopedFaultPlan scoped(
      fault::FaultPlan::parse("store.write:target=/clones/,times=1").value());
  auto ad = shop_->create(workload::workspace_request(32, 0, "d"));
  ASSERT_TRUE(ad.ok()) << ad.error().to_string();
  EXPECT_EQ(fault::FaultRegistry::instance().fired("store.write"), 1u);
  EXPECT_EQ(shop_->failovers(), 1u);
  EXPECT_EQ(shop_->retries(), 0u);

  // The failed plant kept nothing: no instance, no network, and no
  // half-written clone directory.
  const std::string failed_plant = fault::FaultRegistry::instance()
                                       .sequence()
                                       .front()
                                       .substr(std::string("store.write@").size());
  for (auto& plant : plants_) {
    if (failed_plant.rfind(plant->name() + "/", 0) == 0) {
      EXPECT_EQ(plant->active_vms(), 0u);
      EXPECT_EQ(plant->allocator().free_networks(), 4u);
      auto leftover = store_->list_dir(plant->name() + "/clones");
      ASSERT_TRUE(leftover.ok());
      EXPECT_TRUE(leftover.value().empty());
    }
  }
}

TEST_F(FaultTest, ResumeFaultAbortsCleanlyWhenPlantRetryDisabled) {
  // Default plants run with clone_retry disabled (one attempt): an
  // injected VMM resume failure surfaces as the plant's typed error and
  // leaves no residue.
  fault::ScopedFaultPlan scoped(
      fault::FaultPlan::parse("hypervisor.resume:times=1").value());
  auto& plant = *plants_[0];
  auto ad = plant.create(workload::workspace_request(32, 0, "d"));
  ASSERT_FALSE(ad.ok());
  EXPECT_EQ(ad.error().code(), util::ErrorCode::kInternal);
  EXPECT_EQ(plant.active_vms(), 0u);
  EXPECT_EQ(plant.allocator().free_networks(), 4u);
  EXPECT_EQ(plant.clone_retries(), 0u);
}

TEST_F(FaultTest, ResumeFaultRecoveredByPlantLocalRetry) {
  // A plant configured with clone_retry enabled absorbs the same transient
  // resume fault locally: the clone is rebuilt and the creation succeeds
  // without any shop involvement.
  core::PlantConfig pc;
  pc.name = "plant-retry";
  pc.clone_retry.max_attempts = 2;
  core::VmPlant plant(pc, store_.get(), warehouse_.get());

  fault::ScopedFaultPlan scoped(
      fault::FaultPlan::parse("hypervisor.resume:times=1").value());
  auto ad = plant.create(workload::workspace_request(32, 0, "d"));
  ASSERT_TRUE(ad.ok()) << ad.error().to_string();
  EXPECT_EQ(plant.clone_retries(), 1u);
  EXPECT_EQ(plant.active_vms(), 1u);
  EXPECT_EQ(fault::FaultRegistry::instance().fired("hypervisor.resume"), 1u);
}

TEST_F(FaultTest, AllPlantsFaultingYieldsTypedUnavailable) {
  // Every clone write fails everywhere: after failing over through every
  // bidder (and one re-bid round) the shop reports kUnavailable.
  fault::ScopedFaultPlan scoped(
      fault::FaultPlan::parse("store.write:target=/clones/").value());
  auto ad = shop_->create(workload::workspace_request(32, 0, "d"));
  ASSERT_FALSE(ad.ok());
  EXPECT_EQ(ad.error().code(), util::ErrorCode::kUnavailable);
  EXPECT_EQ(shop_->failovers(), 3u);
  for (auto& plant : plants_) {
    EXPECT_EQ(plant->active_vms(), 0u);
    EXPECT_EQ(plant->allocator().free_networks(), 4u);
  }
}

// -- Session-state mechanics -----------------------------------------------------

TEST_F(FaultTest, SuspendResumeCyclePreservesGuestState) {
  auto& plant = *plants_[0];
  auto ad = plant.create(workload::workspace_request(64, 0, "d"));
  ASSERT_TRUE(ad.ok());
  const std::string vm_id = ad.value().get_string(core::attrs::kVmId).value();
  auto& hypervisor = plant.hypervisor();

  ASSERT_TRUE(hypervisor.execute_on_guest(vm_id, "install late-package").ok());
  ASSERT_TRUE(hypervisor.suspend_vm(vm_id).ok());
  ASSERT_TRUE(hypervisor.start_vm(vm_id).ok());  // resume
  EXPECT_TRUE(hypervisor.find(vm_id)->guest.packages.count("late-package"));
  // Resume, not boot: services kept running across the cycle.
  EXPECT_TRUE(
      hypervisor.find(vm_id)->guest.running_services.count("vnc-server"));
}

}  // namespace
}  // namespace vmp
