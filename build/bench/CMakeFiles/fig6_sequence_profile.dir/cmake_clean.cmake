file(REMOVE_RECURSE
  "CMakeFiles/fig6_sequence_profile.dir/fig6_sequence_profile.cpp.o"
  "CMakeFiles/fig6_sequence_profile.dir/fig6_sequence_profile.cpp.o.d"
  "fig6_sequence_profile"
  "fig6_sequence_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_sequence_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
