#!/usr/bin/env python3
"""Reconstruct retained tail exemplars into human-readable causal timelines.

The tail sampler (src/obs/tail.h, DESIGN.md §14) dumps each retained
slow/errored create as <trace-id>.exemplar.jsonl:

  line 1   header object: {"exemplar": trace_id, "op", "status", "cause",
           "duration", "threshold", "critical_path": [{name, dur, self}]}
  then     one line per span  (Span::to_json — keys trace/span/parent/...)
  then     one line per correlated journal record (JournalRecord::to_json —
           keys seq/kind/t/... stamped with the same trace id)

This tool merges the span tree and the journal records into ONE timeline
ordered by simulation time, so a single slow request reads as a story:
which stage the create was in when the evict-to-fit stall began, which
fault fired inside it, and where the critical-path self time went.

Usage:
    python3 tools/tail_report.py DIR                # every *.exemplar.jsonl
    python3 tools/tail_report.py a.exemplar.jsonl [b.exemplar.jsonl ...]
    python3 tools/tail_report.py DIR --json        # machine-readable
"""

import argparse
import json
import pathlib
import sys


def load_exemplar(path):
    """Parse one exemplar file -> dict with header/spans/events (or None).

    Damaged lines are skipped with a warning rather than aborting: an
    exemplar dumped during a crash is exactly when you want a best-effort
    read.
    """
    header = None
    spans = []
    events = []
    try:
        lines = pathlib.Path(path).read_text(encoding="utf-8").splitlines()
    except OSError as err:
        print(f"{path}: cannot read: {err}", file=sys.stderr)
        return None
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as err:
            print(f"{path}:{lineno}: skipping bad line: {err}",
                  file=sys.stderr)
            continue
        if "exemplar" in obj:
            header = obj
        elif "span" in obj:
            spans.append(obj)
        elif "seq" in obj:
            events.append(obj)
        else:
            print(f"{path}:{lineno}: skipping unrecognized object",
                  file=sys.stderr)
    if header is None and not spans and not events:
        print(f"{path}: no exemplar content", file=sys.stderr)
        return None
    return {"path": str(path), "header": header or {},
            "spans": spans, "events": events}


def span_depths(spans):
    """Depth of each span id in the tree (root = 0; orphans = 0)."""
    ids = {s.get("span") for s in spans}
    parent = {s.get("span"): s.get("parent", 0) for s in spans}
    depths = {}

    def depth(span_id, seen):
        if span_id in depths:
            return depths[span_id]
        p = parent.get(span_id, 0)
        if p == 0 or p not in ids or p in seen:
            depths[span_id] = 0
        else:
            depths[span_id] = depth(p, seen | {span_id}) + 1
        return depths[span_id]

    for s in spans:
        depth(s.get("span"), set())
    return depths


def timeline(exemplar):
    """Merge spans + journal records into (time, sort_key, line) rows."""
    spans = exemplar["spans"]
    events = exemplar["events"]
    depths = span_depths(spans)
    starts = [float(s.get("start", 0.0)) for s in spans]
    t0 = min(starts) if starts else (
        min((float(e.get("t", 0.0)) for e in events), default=0.0))
    rows = []
    for s in spans:
        start = float(s.get("start", 0.0))
        end = s.get("end")
        dur_ms = (float(end) - start) * 1e3 if end is not None else None
        indent = "  " * depths.get(s.get("span"), 0)
        status = s.get("status", "ok")
        flag = "" if status in ("ok", "retry") else "  <-- ERROR"
        dur = f"{dur_ms:9.3f}ms" if dur_ms is not None else "      open"
        rows.append((start, 0, f"span     {dur}  {indent}"
                     f"{s.get('name', '?')} [{s.get('component', '?')}]"
                     f" status={status}{flag}"))
    for e in events:
        t = float(e.get("t", 0.0))
        kind = e.get("kind", "?")
        detail = f" id={e['id']}" if e.get("id") else ""
        if e.get("bytes"):
            detail += f" bytes={e['bytes']}"
        if e.get("aux"):
            detail += f" aux={e['aux']}"
        flag = "  <-- FAULT" if kind == "fault_fired" else ""
        rows.append((t, 1, f"journal  seq={e.get('seq', '?'):<6} "
                     f"{kind}{detail}{flag}"))
    rows.sort(key=lambda r: (r[0], r[1]))
    return t0, rows


def print_exemplar(exemplar):
    header = exemplar["header"]
    trace = header.get("exemplar") or (
        exemplar["spans"][0].get("trace", "?") if exemplar["spans"] else "?")
    print(f"exemplar {trace}  op={header.get('op', '?')}"
          f"  cause={header.get('cause', '?')}"
          f"  status={header.get('status', '?')}")
    duration = header.get("duration")
    threshold = header.get("threshold")
    if duration is not None:
        over = (f"  ({duration / threshold:.2f}x the p-quantile threshold "
                f"{threshold * 1e3:.3f}ms)"
                if threshold else "  (retained during warmup/error)")
        print(f"  duration {duration * 1e3:.3f}ms{over}")

    path = header.get("critical_path") or []
    if path:
        print("  critical path (self time = not attributable to children):")
        for depth, entry in enumerate(path):
            name = "  " * depth + str(entry.get("name", "?"))
            dur = float(entry.get("dur", 0.0)) * 1e3
            self_ms = float(entry.get("self", 0.0)) * 1e3
            print(f"    {name:<32} {dur:>10.3f}ms dur {self_ms:>10.3f}ms self")

    t0, rows = timeline(exemplar)
    if rows:
        print(f"  timeline ({len(exemplar['spans'])} spans, "
              f"{len(exemplar['events'])} journal records; "
              f"t relative to first span):")
        for t, _, line in rows:
            print(f"    {(t - t0) * 1e3:>10.3f}ms  {line}")
    print()


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("inputs", nargs="+",
                        help="exemplar .jsonl file(s) or a dump directory")
    parser.add_argument("--json", action="store_true",
                        help="emit one machine-readable object per exemplar")
    args = parser.parse_args()

    files = []
    for item in args.inputs:
        p = pathlib.Path(item)
        if p.is_dir():
            found = sorted(p.glob("*.exemplar.jsonl"))
            if not found:
                print(f"{item}: no *.exemplar.jsonl files", file=sys.stderr)
            files.extend(found)
        else:
            files.append(p)

    exemplars = [e for e in (load_exemplar(f) for f in files) if e]
    if not exemplars:
        print("no readable exemplars", file=sys.stderr)
        return 1

    if args.json:
        for exemplar in exemplars:
            t0, rows = timeline(exemplar)
            print(json.dumps({
                "path": exemplar["path"],
                "header": exemplar["header"],
                "span_count": len(exemplar["spans"]),
                "event_count": len(exemplar["events"]),
                "timeline": [{"t_ms": (t - t0) * 1e3, "line": line}
                             for t, _, line in rows],
            }))
        return 0

    for exemplar in exemplars:
        print_exemplar(exemplar)
    return 0


if __name__ == "__main__":
    sys.exit(main())
