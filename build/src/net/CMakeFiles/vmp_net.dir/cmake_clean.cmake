file(REMOVE_RECURSE
  "CMakeFiles/vmp_net.dir/bus.cpp.o"
  "CMakeFiles/vmp_net.dir/bus.cpp.o.d"
  "CMakeFiles/vmp_net.dir/message.cpp.o"
  "CMakeFiles/vmp_net.dir/message.cpp.o.d"
  "CMakeFiles/vmp_net.dir/registry.cpp.o"
  "CMakeFiles/vmp_net.dir/registry.cpp.o.d"
  "libvmp_net.a"
  "libvmp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
