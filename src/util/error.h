// Error and Result types used across the VMPlants libraries.
//
// The middleware is service-oriented: most failures (a plant that cannot
// satisfy a request, a malformed DAG, an exhausted host-only network pool)
// are expected outcomes that must travel back to the client as data, not as
// exceptions.  Result<T> carries either a value or an Error with a stable
// category code that survives serialization into classads / XML responses.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace vmp::util {

/// Stable error categories; the numeric values appear in wire responses.
enum class ErrorCode : std::uint32_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kResourceExhausted = 4,
  kFailedPrecondition = 5,
  kUnavailable = 6,
  kTimeout = 7,
  kInternal = 8,
  kParseError = 9,
  kConfigActionFailed = 10,   // a DAG action node failed inside the guest
  kNoMatchingImage = 11,      // warehouse has no golden machine for the DAG
  kNoBids = 12,               // no plant produced a usable bid
  kPermissionDenied = 13,
  kCancelled = 14,
};

/// Human-readable name of an ErrorCode ("NOT_FOUND", ...).
const char* error_code_name(ErrorCode code) noexcept;

/// Inverse of error_code_name; nullopt for unknown names.  Used by the
/// fault-injection spec parser and by wire decoding.
std::optional<ErrorCode> error_code_from_name(const std::string& name);

/// An error with category, message, and optional nested context frames.
class Error {
 public:
  Error() = default;
  Error(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  ErrorCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// Prepends a context frame: Error("x").wrap("while cloning vm42").
  Error&& wrap(const std::string& context) && {
    message_ = context + ": " + message_;
    return std::move(*this);
  }

  /// "NOT_FOUND: no golden machine matches request"
  std::string to_string() const;

  bool ok() const noexcept { return code_ == ErrorCode::kOk; }

  friend bool operator==(const Error& a, const Error& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// Thrown only by Result::value() misuse; library code never throws this
/// across module boundaries.
class BadResultAccess : public std::logic_error {
 public:
  explicit BadResultAccess(const std::string& what) : std::logic_error(what) {}
};

/// Result<T>: a value or an Error.  Modeled on the usual expected<> shape;
/// kept minimal and dependency-free for C++20.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT implicit
  Result(Error error) : data_(std::move(error)) {}      // NOLINT implicit
  Result(ErrorCode code, std::string message)
      : data_(Error(code, std::move(message))) {}

  bool ok() const noexcept { return std::holds_alternative<T>(data_); }
  explicit operator bool() const noexcept { return ok(); }

  const T& value() const& {
    require_ok();
    return std::get<T>(data_);
  }
  T& value() & {
    require_ok();
    return std::get<T>(data_);
  }
  T&& value() && {
    require_ok();
    return std::get<T>(std::move(data_));
  }

  T value_or(T fallback) const& {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

  const Error& error() const& {
    if (ok()) throw BadResultAccess("Result holds a value, not an error");
    return std::get<Error>(data_);
  }

  /// Propagate the error into a Result of a different type.
  template <typename U>
  Result<U> propagate() const {
    return Result<U>(error());
  }

 private:
  void require_ok() const {
    if (!ok()) {
      throw BadResultAccess("Result access on error: " +
                            std::get<Error>(data_).to_string());
    }
  }
  std::variant<T, Error> data_;
};

/// Status: Result with no payload.
class Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}  // NOLINT implicit
  Status(ErrorCode code, std::string message)
      : error_(Error(code, std::move(message))) {}

  static Status ok_status() { return Status(); }

  bool ok() const noexcept { return !error_ || error_->ok(); }
  explicit operator bool() const noexcept { return ok(); }

  const Error& error() const {
    static const Error kOkError{};
    return error_ ? *error_ : kOkError;
  }

  /// Propagate a failure status into a Result of any type.
  template <typename U>
  Result<U> propagate() const {
    return Result<U>(error());
  }
  std::string to_string() const {
    return ok() ? "OK" : error_->to_string();
  }

 private:
  std::optional<Error> error_;
};

#define VMP_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    auto vmp_status__ = (expr);                     \
    if (!vmp_status__.ok()) return vmp_status__;    \
  } while (false)

/// Propagate a failed Status out of a function returning Result<T>.
#define VMP_RETURN_IF_ERROR_AS(expr, T)                          \
  do {                                                           \
    auto vmp_status__ = (expr);                                  \
    if (!vmp_status__.ok()) return vmp_status__.propagate<T>();  \
  } while (false)

}  // namespace vmp::util
