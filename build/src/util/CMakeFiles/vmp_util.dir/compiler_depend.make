# Empty compiler generated dependencies file for vmp_util.
# This may be replaced when dependencies are built.
