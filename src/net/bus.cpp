#include "net/bus.h"

#include <chrono>
#include <vector>

#include "fault/fault.h"
#include "net/codec.h"
#include "obs/trace.h"

namespace vmp::net {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

const char* wire_format_name(WireFormat format) noexcept {
  switch (format) {
    case WireFormat::kXml: return "xml";
    case WireFormat::kBinary: return "binary";
  }
  return "xml";
}

Result<WireFormat> parse_wire_format(const std::string& name) {
  if (name == "xml") return WireFormat::kXml;
  if (name == "binary") return WireFormat::kBinary;
  return Result<WireFormat>(
      Error(ErrorCode::kInvalidArgument, "unknown wire format: " + name));
}

MessageBus::MessageBus(std::uint64_t fault_seed)
    : MessageBus(BusConfig{WireFormat::kXml, fault_seed}) {}

MessageBus::MessageBus(BusConfig config)
    : config_(config), fault_rng_(config.fault_seed) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::instance();
  obs_calls_ = metrics.counter("bus.call.count");
  obs_errors_ = metrics.counter("bus.error.count");
  obs_bytes_ = metrics.counter("bus.bytes.count");
  obs_inflight_ = metrics.gauge("bus.inflight.gauge");
  obs_latency_ = metrics.timer("bus.call.seconds");
}

std::string MessageBus::encode_wire(const Message& message) const {
  return config_.wire_format == WireFormat::kBinary
             ? codec::encode_message(message)
             : message.serialize();
}

Result<Message> MessageBus::decode_wire(const std::string& wire) const {
  return config_.wire_format == WireFormat::kBinary
             ? codec::decode_message(wire)
             : Message::deserialize(wire);
}

Status MessageBus::register_endpoint(const std::string& address,
                                     Handler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (endpoints_.count(address)) {
    return Status(ErrorCode::kAlreadyExists,
                  "endpoint already registered: " + address);
  }
  endpoints_.emplace(address, Endpoint{std::move(handler), false, 0.0});
  return Status();
}

Status MessageBus::unregister_endpoint(const std::string& address) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (endpoints_.erase(address) == 0) {
    return Status(ErrorCode::kNotFound, "no such endpoint: " + address);
  }
  return Status();
}

bool MessageBus::has_endpoint(const std::string& address) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return endpoints_.count(address) != 0;
}

std::vector<std::string> MessageBus::endpoints() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(endpoints_.size());
  for (const auto& [address, ep] : endpoints_) out.push_back(address);
  return out;
}

Result<Message> MessageBus::call(const Message& request_msg) {
  // Client-side transport span, parented by the context carried on the
  // message (the caller's span) so a request joins its originating trace
  // even when the caller sits on another thread.
  obs::ScopedSpan span("bus.call", "bus",
                       request_msg.service() + "->" + request_msg.to(),
                       request_msg.trace());
  obs_calls_->add();
  obs_inflight_->add(1);
  const auto start = std::chrono::steady_clock::now();

  Result<Message> result = call_impl(request_msg);

  obs_latency_->record(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  obs_inflight_->add(-1);
  if (!result.ok()) {
    obs_errors_->add();
    span.set_status(util::error_code_name(result.error().code()));
  }
  return result;
}

Result<Message> MessageBus::call_impl(const Message& request_msg) {
  // Injected transport faults (message loss, timeouts) surface exactly like
  // the built-in down/drop mechanisms: as transport-level Result errors.
  if (auto injected = fault::check(fault::points::kBusSend, request_msg.to());
      !injected.ok()) {
    return injected.propagate<Message>();
  }
  if (auto injected =
          fault::check(fault::points::kBusTimeout, request_msg.to());
      !injected.ok()) {
    return injected.propagate<Message>();
  }

  // Wire encoding happens outside the lock; routing decisions inside.
  const std::string wire = encode_wire(request_msg);

  Handler handler;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++calls_;
    bytes_ += wire.size();
    auto it = endpoints_.find(request_msg.to());
    if (it == endpoints_.end()) {
      return Result<Message>(Error(
          ErrorCode::kUnavailable, "no endpoint at " + request_msg.to()));
    }
    if (it->second.down) {
      return Result<Message>(Error(
          ErrorCode::kUnavailable, "endpoint down: " + request_msg.to()));
    }
    if (it->second.drop_rate > 0.0 &&
        fault_rng_.bernoulli(it->second.drop_rate)) {
      return Result<Message>(Error(
          ErrorCode::kTimeout, "request to " + request_msg.to() + " timed out"));
    }
    handler = it->second.handler;
  }

  obs_bytes_->add(wire.size());

  // Decode on the "server" side.  The binary path reads the frame in place
  // (zero-copy views); XML tokenizes the text into a DOM.
  auto decoded = decode_wire(wire);
  if (!decoded.ok()) return decoded;

  // Adopt the trace context that actually survived the wire encoding, so
  // handler-side spans join the caller's trace the way a remote process
  // would (not via this thread's ambient context).
  const Message response = [&] {
    obs::ContextGuard adopt(decoded.value().trace());
    return handler(decoded.value());
  }();

  // Encode/decode the response leg too.
  const std::string response_wire = encode_wire(response);
  obs_bytes_->add(response_wire.size());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    bytes_ += response_wire.size();
  }
  return decode_wire(response_wire);
}

void MessageBus::set_down(const std::string& address, bool down) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = endpoints_.find(address);
  if (it != endpoints_.end()) it->second.down = down;
}

void MessageBus::set_drop_rate(const std::string& address, double p) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = endpoints_.find(address);
  if (it != endpoints_.end()) it->second.drop_rate = p;
}

std::uint64_t MessageBus::calls_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return calls_;
}

std::uint64_t MessageBus::bytes_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

Result<Message> call_expecting_success(MessageBus* bus,
                                       const Message& request_msg) {
  auto response = bus->call(request_msg);
  if (!response.ok()) return response;
  if (response.value().is_fault()) {
    return Result<Message>(response.value().fault_error());
  }
  return response;
}

}  // namespace vmp::net
