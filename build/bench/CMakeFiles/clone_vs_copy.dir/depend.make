# Empty dependencies file for clone_vs_copy.
# This may be replaced when dependencies are built.
