// Warehouse lifecycle tests: quota admission, lease-protected eviction,
// zombies, crash-recoverable index, orphan sweep, and the eviction policies.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <random>
#include <thread>
#include <vector>

#include "hypervisor/gsx.h"
#include "lifecycle/lifecycle.h"
#include "lifecycle/policy.h"
#include "warehouse/warehouse.h"

namespace vmp::lifecycle {
namespace {

using util::ErrorCode;

storage::MachineSpec spec_mb(std::uint64_t mem_mb, std::uint64_t disk_mb) {
  storage::MachineSpec spec;
  spec.os = "linux-mandrake-8.1";
  spec.memory_bytes = mem_mb << 20;
  spec.suspended = true;
  spec.disk = storage::DiskSpec{"disk0", disk_mb << 20, 2,
                                storage::DiskMode::kNonPersistent};
  return spec;
}

warehouse::GoldenImage golden(const std::string& id, std::uint64_t mem_mb,
                              std::uint64_t disk_mb,
                              std::vector<std::string> performed = {}) {
  warehouse::GoldenImage image;
  image.id = id;
  image.backend = "vmware-gsx";
  image.spec = spec_mb(mem_mb, disk_mb);
  image.guest.os = image.spec.os;
  image.performed = std::move(performed);
  return image;
}

class LifecycleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("vmp-lc-test-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
    store_ = std::make_unique<storage::ArtifactStore>(root_);
    warehouse_ = std::make_unique<warehouse::Warehouse>(store_.get(),
                                                        "warehouse");
  }
  void TearDown() override {
    lifecycle_.reset();
    warehouse_.reset();
    store_.reset();
    std::filesystem::remove_all(root_);
  }

  /// Build the manager under test.  Budget 0 = unlimited.
  void make_manager(std::uint64_t budget, const std::string& policy = "gdsf") {
    LifecycleManager::Config config;
    config.disk_budget_bytes = budget;
    config.policy = policy;
    auto manager = LifecycleManager::create(warehouse_.get(), config);
    ASSERT_TRUE(manager.ok()) << manager.error().to_string();
    lifecycle_ = std::move(manager).value();
  }

  std::filesystem::path root_;
  std::unique_ptr<storage::ArtifactStore> store_;
  std::unique_ptr<warehouse::Warehouse> warehouse_;
  std::unique_ptr<LifecycleManager> lifecycle_;
};

// -- Quota admission --------------------------------------------------------

TEST_F(LifecycleTest, PublishChargesMeasuredFootprint) {
  make_manager(0);
  ASSERT_TRUE(lifecycle_->publish(golden("g1", 32, 128)).ok());
  auto footprint = store_->tree_footprint("warehouse/g1");
  ASSERT_TRUE(footprint.ok());
  EXPECT_EQ(lifecycle_->used_bytes(), footprint.value().physical_bytes);
  EXPECT_TRUE(warehouse_->contains("g1"));
}

TEST_F(LifecycleTest, OversizedImageRejectedOutright) {
  make_manager(64ull << 20);  // budget far below the image itself
  auto status = lifecycle_->publish(golden("huge", 64, 512));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code(), ErrorCode::kResourceExhausted);
  EXPECT_FALSE(warehouse_->contains("huge"));
  EXPECT_EQ(lifecycle_->used_bytes(), 0u);
}

TEST_F(LifecycleTest, PublishEvictsToFit) {
  // Budget fits roughly two images; the third publish must evict one.
  make_manager(400ull << 20, "lru");
  ASSERT_TRUE(lifecycle_->publish(golden("g1", 32, 128)).ok());
  ASSERT_TRUE(lifecycle_->publish(golden("g2", 32, 128)).ok());
  ASSERT_TRUE(lifecycle_->publish(golden("g3", 32, 128)).ok());
  EXPECT_TRUE(warehouse_->contains("g3"));
  // LRU: g1 (oldest) went first.
  EXPECT_FALSE(warehouse_->contains("g1"));
  EXPECT_TRUE(warehouse_->contains("g2"));
  EXPECT_FALSE(store_->exists("warehouse/g1"));
  EXPECT_LE(lifecycle_->used_bytes(), 400ull << 20);
}

TEST_F(LifecycleTest, PublishRejectedWhenEverythingLeasedOrPinned) {
  make_manager(400ull << 20);
  ASSERT_TRUE(lifecycle_->publish(golden("g1", 32, 128)).ok());
  ASSERT_TRUE(lifecycle_->publish(golden("g2", 32, 128)).ok());
  ASSERT_TRUE(lifecycle_->acquire("g1").ok());  // leased: cannot free
  ASSERT_TRUE(lifecycle_->pin("g2", true).ok());  // pinned: cannot free
  auto status = lifecycle_->publish(golden("g3", 32, 128));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code(), ErrorCode::kResourceExhausted);
  EXPECT_TRUE(warehouse_->contains("g1"));
  EXPECT_TRUE(warehouse_->contains("g2"));
  EXPECT_FALSE(warehouse_->contains("g3"));
}

TEST_F(LifecycleTest, PublishCannotReuseALiveId) {
  make_manager(0);
  ASSERT_TRUE(lifecycle_->publish(golden("g1", 32, 128)).ok());
  const std::uint64_t used = lifecycle_->used_bytes();
  auto status = lifecycle_->publish(golden("g1", 16, 64));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(lifecycle_->used_bytes(), used);
}

TEST_F(LifecycleTest, PublishCannotReuseAZombieId) {
  make_manager(0);
  ASSERT_TRUE(lifecycle_->publish(golden("g1", 32, 128)).ok());
  ASSERT_TRUE(lifecycle_->acquire("g1").ok());
  ASSERT_TRUE(lifecycle_->evict("g1").ok());  // leased → zombie

  // The zombie is gone from the warehouse index, but its artefact tree is
  // exactly what live clones still symlink into: publishing the same id
  // must be refused, never materialize over it.
  auto status = lifecycle_->publish(golden("g1", 16, 64));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code(), ErrorCode::kFailedPrecondition);
  EXPECT_TRUE(store_->exists("warehouse/g1/memory.vmss"));
  EXPECT_FALSE(warehouse_->contains("g1"));
  EXPECT_EQ(lifecycle_->zombie_count(), 1u);

  // Lease accounting survived the refused publish: the last release still
  // reaps the zombie, and only then is the id free for reuse.
  lifecycle_->release("g1");
  EXPECT_FALSE(store_->exists("warehouse/g1"));
  EXPECT_EQ(lifecycle_->used_bytes(), 0u);
  ASSERT_TRUE(lifecycle_->publish(golden("g1", 16, 64)).ok());
  EXPECT_TRUE(warehouse_->contains("g1"));
}

// -- Leases and zombies -----------------------------------------------------

TEST_F(LifecycleTest, EvictUnleasedDeletesTree) {
  make_manager(0);
  ASSERT_TRUE(lifecycle_->publish(golden("g1", 32, 128)).ok());
  const std::uint64_t used = lifecycle_->used_bytes();
  ASSERT_GT(used, 0u);
  ASSERT_TRUE(lifecycle_->evict("g1").ok());
  EXPECT_FALSE(warehouse_->contains("g1"));
  EXPECT_FALSE(store_->exists("warehouse/g1"));
  EXPECT_EQ(lifecycle_->used_bytes(), 0u);
}

TEST_F(LifecycleTest, EvictLeasedBecomesZombieThenReaps) {
  make_manager(0);
  ASSERT_TRUE(lifecycle_->publish(golden("g1", 32, 128)).ok());
  ASSERT_TRUE(lifecycle_->acquire("g1").ok());
  ASSERT_TRUE(lifecycle_->acquire("g1").ok());

  ASSERT_TRUE(lifecycle_->evict("g1").ok());
  // Invisible to the index, descriptor gone, artefacts still on disk.
  EXPECT_FALSE(warehouse_->contains("g1"));
  EXPECT_FALSE(store_->exists("warehouse/g1/descriptor.xml"));
  EXPECT_TRUE(store_->exists("warehouse/g1/memory.vmss"));
  EXPECT_EQ(lifecycle_->zombie_count(), 1u);

  // New leases on a zombie must fail (the PPP cannot see it; only a stale
  // caller could try).
  auto relocked = lifecycle_->acquire("g1");
  ASSERT_FALSE(relocked.ok());
  EXPECT_EQ(relocked.error().code(), ErrorCode::kFailedPrecondition);

  lifecycle_->release("g1");
  EXPECT_TRUE(store_->exists("warehouse/g1"));  // one lease still out
  lifecycle_->release("g1");
  EXPECT_FALSE(store_->exists("warehouse/g1"));  // last release reaped
  EXPECT_EQ(lifecycle_->zombie_count(), 0u);
  EXPECT_EQ(lifecycle_->used_bytes(), 0u);
}

TEST_F(LifecycleTest, EvictToFitSkipsLeasedImages) {
  make_manager(0, "lru");
  ASSERT_TRUE(lifecycle_->publish(golden("g1", 32, 128)).ok());
  ASSERT_TRUE(lifecycle_->publish(golden("g2", 32, 128)).ok());
  ASSERT_TRUE(lifecycle_->acquire("g1").ok());
  // g1 is LRU-oldest but leased; only g2 can free bytes now.
  const std::uint64_t freed = lifecycle_->evict_to_fit(1);
  EXPECT_GT(freed, 0u);
  EXPECT_TRUE(warehouse_->contains("g1"));
  EXPECT_FALSE(warehouse_->contains("g2"));
}

TEST_F(LifecycleTest, PinBlocksExplicitEvict) {
  make_manager(0);
  ASSERT_TRUE(lifecycle_->publish(golden("g1", 32, 128)).ok());
  ASSERT_TRUE(lifecycle_->pin("g1", true).ok());
  auto status = lifecycle_->evict("g1");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code(), ErrorCode::kFailedPrecondition);
  ASSERT_TRUE(lifecycle_->pin("g1", false).ok());
  EXPECT_TRUE(lifecycle_->evict("g1").ok());
}

TEST_F(LifecycleTest, AdoptsImagesPublishedDirectlyThroughWarehouse) {
  make_manager(0);
  ASSERT_TRUE(warehouse_
                  ->publish_new("seeded", "vmware-gsx", spec_mb(32, 128),
                                hv::GuestState{}, {})
                  .ok());
  EXPECT_EQ(lifecycle_->used_bytes(), 0u);  // not yet adopted
  ASSERT_TRUE(lifecycle_->acquire("seeded").ok());
  EXPECT_GT(lifecycle_->used_bytes(), 0u);
  lifecycle_->release("seeded");
  EXPECT_TRUE(warehouse_->contains("seeded"));  // release != evict
}

// -- Hypervisor integration -------------------------------------------------

TEST_F(LifecycleTest, CloneLeasePreventsBaseDeletion) {
  make_manager(0);
  auto image = golden("base", 16, 64);
  ASSERT_TRUE(lifecycle_->publish(image).ok());
  auto published = warehouse_->lookup("base");
  ASSERT_TRUE(published.ok());

  hv::GsxHypervisor gsx(store_.get());
  gsx.set_lease_hook(lifecycle_.get());
  ASSERT_TRUE(store_->make_dir("clones").ok());

  hv::CloneSource source;
  source.layout = published.value().layout;
  source.spec = published.value().spec;
  source.guest = published.value().guest;
  source.golden_id = "base";
  ASSERT_TRUE(gsx.clone_vm(source, "clones/vm1", "vm1").ok());

  // The clone's non-persistent spans are symlinks into the base: evicting
  // the base while the clone lives must zombie it, never delete it.
  ASSERT_TRUE(lifecycle_->evict("base").ok());
  EXPECT_TRUE(store_->exists("warehouse/base/disk0-s001.vmdk"));
  EXPECT_EQ(lifecycle_->zombie_count(), 1u);

  // A second clone against the zombie base must be refused at lease time.
  auto again = gsx.clone_vm(source, "clones/vm2", "vm2");
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error().code(), ErrorCode::kFailedPrecondition);

  // Destroying the clone releases the last lease and reaps the base.
  ASSERT_TRUE(gsx.destroy_vm("vm1").ok());
  EXPECT_FALSE(store_->exists("warehouse/base"));
  EXPECT_EQ(lifecycle_->zombie_count(), 0u);
}

TEST_F(LifecycleTest, FailedCloneReleasesItsLease) {
  make_manager(0);
  ASSERT_TRUE(lifecycle_->publish(golden("base", 16, 64)).ok());
  auto published = warehouse_->lookup("base");
  ASSERT_TRUE(published.ok());

  hv::GsxHypervisor gsx(store_.get());
  gsx.set_lease_hook(lifecycle_.get());
  ASSERT_TRUE(store_->make_dir("clones").ok());
  // Pre-existing clone dir makes clone_image fail AFTER the lease is taken.
  ASSERT_TRUE(store_->make_dir("clones/vm1").ok());

  hv::CloneSource source;
  source.layout = published.value().layout;
  source.spec = published.value().spec;
  source.guest = published.value().guest;
  source.golden_id = "base";
  ASSERT_FALSE(gsx.clone_vm(source, "clones/vm1", "vm1").ok());

  // Lease released on the failure path: a full evict deletes the tree.
  ASSERT_TRUE(lifecycle_->evict("base").ok());
  EXPECT_FALSE(store_->exists("warehouse/base"));
  EXPECT_EQ(lifecycle_->zombie_count(), 0u);
}

// -- Crash recovery ---------------------------------------------------------

TEST_F(LifecycleTest, WarmStartRebuildsIndexAndLedgerFromDisk) {
  make_manager(0);
  ASSERT_TRUE(lifecycle_->publish(golden("g1", 32, 128, {"a", "b"})).ok());
  ASSERT_TRUE(lifecycle_->publish(golden("g2", 16, 64)).ok());
  const std::uint64_t used_before = lifecycle_->used_bytes();

  // "Crash": a fresh manager + warehouse over the same store, no memory of
  // the first incarnation.
  auto warehouse2 =
      std::make_unique<warehouse::Warehouse>(store_.get(), "warehouse");
  auto manager2 = LifecycleManager::create(warehouse2.get(), {});
  ASSERT_TRUE(manager2.ok());
  ASSERT_TRUE(manager2.value()->warm_start().ok());

  EXPECT_EQ(warehouse2->size(), 2u);
  EXPECT_TRUE(warehouse2->contains("g1"));
  EXPECT_TRUE(warehouse2->contains("g2"));
  EXPECT_EQ(manager2.value()->used_bytes(), used_before);
  auto recovered = warehouse2->lookup("g1");
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value().performed,
            (std::vector<std::string>{"a", "b"}));
}

TEST_F(LifecycleTest, ZombieNeverResurrectsAcrossWarmStart) {
  make_manager(0);
  ASSERT_TRUE(lifecycle_->publish(golden("g1", 32, 128)).ok());
  ASSERT_TRUE(lifecycle_->publish(golden("g2", 16, 64)).ok());
  ASSERT_TRUE(lifecycle_->acquire("g1").ok());
  ASSERT_TRUE(lifecycle_->evict("g1").ok());  // zombie, dir still on disk

  auto warehouse2 =
      std::make_unique<warehouse::Warehouse>(store_.get(), "warehouse");
  auto manager2 = LifecycleManager::create(warehouse2.get(), {});
  ASSERT_TRUE(manager2.ok());
  ASSERT_TRUE(manager2.value()->warm_start().ok());

  // The evicted image lost its descriptor, so the descriptor-driven warm
  // start reconstructs exactly the pre-crash LIVE index.
  EXPECT_EQ(warehouse2->size(), 1u);
  EXPECT_FALSE(warehouse2->contains("g1"));
  EXPECT_TRUE(warehouse2->contains("g2"));

  // The crash dropped all leases; the zombie's remains are now an orphan.
  auto report = manager2.value()->reap_orphans();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().directories, 1u);
  EXPECT_GT(report.value().bytes_freed, 0u);
  EXPECT_FALSE(store_->exists("warehouse/g1"));
}

TEST_F(LifecycleTest, OrphanReaperIsIdempotentAndSparesLiveState) {
  make_manager(0);
  ASSERT_TRUE(lifecycle_->publish(golden("live", 16, 64)).ok());
  // A live zombie (leases out) must be spared.
  ASSERT_TRUE(lifecycle_->publish(golden("undead", 16, 64)).ok());
  ASSERT_TRUE(lifecycle_->acquire("undead").ok());
  ASSERT_TRUE(lifecycle_->evict("undead").ok());
  // Debris: an interrupted publish left a partial tree, no descriptor.
  ASSERT_TRUE(store_->make_dir("warehouse/partial").ok());
  ASSERT_TRUE(store_->write_file("warehouse/partial/machine.cfg", "x").ok());

  auto first = lifecycle_->reap_orphans();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().directories, 1u);
  EXPECT_FALSE(store_->exists("warehouse/partial"));
  EXPECT_TRUE(store_->exists("warehouse/live"));
  EXPECT_TRUE(store_->exists("warehouse/undead"));

  auto second = lifecycle_->reap_orphans();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().directories, 0u);
  EXPECT_EQ(second.value().bytes_freed, 0u);
}

TEST_F(LifecycleTest, PropertyWarmStartFixpointAtEveryCrashPrefix) {
  // Property: for ANY operation sequence, crashing after ANY prefix and
  // warm-starting reconstructs exactly the live (descriptor-backed) index
  // with a ledger equal to the on-disk footprints — and recovery is a
  // fixpoint: crashing the recovered incarnation and warm-starting again
  // changes nothing.  Randomized sequences, deterministic seed.
  std::mt19937 rng(20260808);
  constexpr int kSequences = 3;
  constexpr int kOps = 8;
  for (int seq = 0; seq < kSequences; ++seq) {
    struct Op {
      int kind;
      std::string id;
    };
    std::vector<Op> ops;
    for (int i = 0; i < kOps; ++i) {
      ops.push_back({static_cast<int>(rng() % 4),
                     "g" + std::to_string(rng() % 3)});
    }
    for (int prefix = 0; prefix <= kOps; ++prefix) {
      // A fresh world per prefix, so each crash point is independent.
      std::filesystem::remove_all(root_);
      store_ = std::make_unique<storage::ArtifactStore>(root_);
      warehouse_ =
          std::make_unique<warehouse::Warehouse>(store_.get(), "warehouse");
      make_manager(0);
      for (int i = 0; i < prefix; ++i) {
        switch (ops[i].kind) {
          case 0:
            (void)lifecycle_->publish(golden(ops[i].id, 8, 16));
            break;
          case 1:
            (void)lifecycle_->acquire(ops[i].id);
            break;
          case 2:
            lifecycle_->release(ops[i].id);
            break;
          default:
            (void)lifecycle_->evict(ops[i].id);
            break;
        }
      }
      // Ground truth: the live index and its on-disk bytes.
      std::vector<std::string> live;
      std::uint64_t live_bytes = 0;
      for (const auto& image : warehouse_->list()) {
        live.push_back(image.id);
        auto footprint = store_->tree_footprint("warehouse/" + image.id);
        ASSERT_TRUE(footprint.ok());
        live_bytes += footprint.value().physical_bytes;
      }

      // Crash #1: fresh warehouse + manager, no memory, warm start.
      auto warehouse2 =
          std::make_unique<warehouse::Warehouse>(store_.get(), "warehouse");
      auto manager2 = LifecycleManager::create(warehouse2.get(), {});
      ASSERT_TRUE(manager2.ok());
      ASSERT_TRUE(manager2.value()->warm_start().ok())
          << "seq " << seq << " prefix " << prefix;
      std::vector<std::string> recovered;
      for (const auto& image : warehouse2->list()) {
        recovered.push_back(image.id);
      }
      EXPECT_EQ(recovered, live) << "seq " << seq << " prefix " << prefix;
      EXPECT_EQ(manager2.value()->used_bytes(), live_bytes)
          << "seq " << seq << " prefix " << prefix;

      // Crash #2 over the recovered state: warm_start must be a fixpoint.
      auto warehouse3 =
          std::make_unique<warehouse::Warehouse>(store_.get(), "warehouse");
      auto manager3 = LifecycleManager::create(warehouse3.get(), {});
      ASSERT_TRUE(manager3.ok());
      ASSERT_TRUE(manager3.value()->warm_start().ok());
      std::vector<std::string> again;
      for (const auto& image : warehouse3->list()) {
        again.push_back(image.id);
      }
      EXPECT_EQ(again, recovered);
      EXPECT_EQ(manager3.value()->used_bytes(),
                manager2.value()->used_bytes());
    }
  }
}

// -- Concurrency (TSan targets) ---------------------------------------------

TEST_F(LifecycleTest, CloneEvictStormNeverBreaksALease) {
  make_manager(0);
  constexpr int kImages = 4;
  for (int i = 0; i < kImages; ++i) {
    ASSERT_TRUE(
        lifecycle_->publish(golden("g" + std::to_string(i), 16, 64)).ok());
  }
  hv::GsxHypervisor gsx(store_.get());
  gsx.set_lease_hook(lifecycle_.get());
  ASSERT_TRUE(store_->make_dir("clones").ok());

  std::atomic<int> vm_seq{0};
  std::atomic<int> broken_bases{0};
  std::vector<std::thread> cloners;
  for (int t = 0; t < 4; ++t) {
    cloners.emplace_back([&, t] {
      for (int i = 0; i < 8; ++i) {
        const std::string id = "g" + std::to_string((t + i) % kImages);
        auto image = warehouse_->lookup(id);
        if (!image.ok()) continue;  // evicted between pick and lookup: fine
        hv::CloneSource source;
        source.layout = image.value().layout;
        source.spec = image.value().spec;
        source.guest = image.value().guest;
        source.golden_id = id;
        const std::string vm = "vm" + std::to_string(vm_seq.fetch_add(1));
        auto cloned = gsx.clone_vm(source, "clones/" + vm, vm);
        if (!cloned.ok()) continue;  // lost the race to an eviction: fine
        // INVARIANT: while this clone lives, its base tree must exist.
        if (!store_->exists(image.value().layout.dir + "/disk0-s001.vmdk")) {
          broken_bases.fetch_add(1);
        }
        ASSERT_TRUE(gsx.destroy_vm(vm).ok());
      }
    });
  }
  std::vector<std::thread> evictors;
  for (int t = 0; t < 2; ++t) {
    evictors.emplace_back([&, t] {
      for (int i = 0; i < 16; ++i) {
        (void)lifecycle_->evict("g" + std::to_string((t + i) % kImages));
      }
    });
  }
  for (auto& th : cloners) th.join();
  for (auto& th : evictors) th.join();
  EXPECT_EQ(broken_bases.load(), 0);
  // Every clone was destroyed, so no zombie can survive the storm.
  EXPECT_EQ(lifecycle_->zombie_count(), 0u);
}

TEST_F(LifecycleTest, ConcurrentPublishStormRespectsBudget) {
  // Budget admits ~3 of 8 images; concurrent publishes fight for room.
  make_manager(500ull << 20);
  std::atomic<int> admitted{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> publishers;
  for (int t = 0; t < 8; ++t) {
    publishers.emplace_back([&, t] {
      auto status =
          lifecycle_->publish(golden("g" + std::to_string(t), 32, 128));
      if (status.ok()) {
        admitted.fetch_add(1);
      } else {
        ASSERT_EQ(status.error().code(), ErrorCode::kResourceExhausted);
        rejected.fetch_add(1);
      }
    });
  }
  for (auto& th : publishers) th.join();
  EXPECT_EQ(admitted.load() + rejected.load(), 8);
  EXPECT_GT(admitted.load(), 0);
  EXPECT_LE(lifecycle_->used_bytes(), 500ull << 20);
  EXPECT_EQ(warehouse_->size(),
            static_cast<std::size_t>(lifecycle_->stats().size()));
}

// -- Policies ---------------------------------------------------------------

TEST(PolicyTest, LruEvictsOldestFirst) {
  LruPolicy lru;
  std::vector<ImageStats> stats(3);
  stats[0].id = "a";
  stats[0].last_use_tick = 5;
  stats[1].id = "b";
  stats[1].last_use_tick = 2;
  stats[2].id = "c";
  stats[2].last_use_tick = 9;
  EXPECT_EQ(lru.rank(stats),
            (std::vector<std::string>{"b", "a", "c"}));
}

TEST(PolicyTest, GdsfPrefersEvictingCheapLowValueImages) {
  GdsfPolicy gdsf;
  ImageStats big_cold;  // huge, never cloned, cheap to rebuild
  big_cold.id = "big-cold";
  big_cold.physical_bytes = 2ull << 30;
  big_cold.hits = 0;
  big_cold.rebuild_cost_s = 30.0;
  ImageStats small_hot;  // small, popular, expensive to rebuild
  small_hot.id = "small-hot";
  small_hot.physical_bytes = 64ull << 20;
  small_hot.hits = 40;
  small_hot.rebuild_cost_s = 90.0;
  EXPECT_LT(gdsf.priority(big_cold), gdsf.priority(small_hot));
  EXPECT_EQ(gdsf.rank({big_cold, small_hot}).front(), "big-cold");
}

TEST(PolicyTest, GdsfClockAgesOutFormerlyPopularImages) {
  GdsfPolicy gdsf;
  ImageStats victim;
  victim.id = "v";
  victim.physical_bytes = 1ull << 20;
  victim.rebuild_cost_s = 50.0;
  victim.hits = 10;
  const double before = gdsf.clock();
  gdsf.on_evict(victim);
  EXPECT_GT(gdsf.clock(), before);
  // The clock never regresses, even if a lower-priority victim follows.
  const double after = gdsf.clock();
  ImageStats cheap;
  cheap.id = "c";
  cheap.physical_bytes = 1ull << 30;
  cheap.rebuild_cost_s = 1.0;
  gdsf.on_evict(cheap);
  EXPECT_GE(gdsf.clock(), after);
}

TEST(PolicyTest, RebuildCostGrowsWithBytesFilesAndActions) {
  RebuildCostModel model;
  const double base = model.rebuild_cost_s(1ull << 30, 16, 0);
  EXPECT_GT(model.rebuild_cost_s(2ull << 30, 16, 0), base);
  EXPECT_GT(model.rebuild_cost_s(1ull << 30, 32, 0), base);
  EXPECT_GT(model.rebuild_cost_s(1ull << 30, 16, 4), base);
}

TEST(PolicyTest, UnknownPolicyNameRejected) {
  auto policy = make_policy("mru");
  ASSERT_FALSE(policy.ok());
  EXPECT_EQ(policy.error().code(), ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace vmp::lifecycle
