// Virtual routers: multi-homed forwarding nodes for cross-domain virtual
// networks.
//
// Paper, Section 6: future work includes "the use of a VMArchitect to
// instantiate customized virtual machines with router and tunneling
// capabilities to establish virtual networks that seamlessly span across
// distinct domains."
//
// A VirtualRouter attaches one interface (MAC + IPv4 subnet) per layer-2
// network and forwards IP payloads between them by destination address:
// frames addressed to the router's interface MAC are parsed (the simulated
// payload carries "ip:<dst>|<data>"), the destination is matched against
// the attached subnets (longest prefix wins), and the packet is re-emitted
// on the winning interface with the router as the L2 source.  A small ARP
// cache maps IPs to MACs per interface; unknown destinations are resolved
// by L2 broadcast (flood) like a real first hop would.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/error.h"
#include "vnet/switch.h"

namespace vmp::vnet {

/// IPv4 address helpers (dotted-quad <-> u32).
util::Result<std::uint32_t> parse_ipv4(const std::string& text);
std::string format_ipv4(std::uint32_t address);

/// A subnet in CIDR form.
struct Subnet {
  std::uint32_t network = 0;
  std::uint32_t prefix_len = 0;

  static util::Result<Subnet> parse(const std::string& cidr);  // "10.1.0.0/16"
  bool contains(std::uint32_t address) const;
  std::string to_string() const;
};

/// Simulated IP packet carried in Ethernet payloads as "ip:<dst>|<data>".
struct IpPacket {
  std::uint32_t dst = 0;
  std::string data;

  std::string encode() const;
  static std::optional<IpPacket> decode(const std::string& payload);
};

class VirtualRouter {
 public:
  explicit VirtualRouter(std::string name) : name_(std::move(name)) {}
  ~VirtualRouter();

  VirtualRouter(const VirtualRouter&) = delete;
  VirtualRouter& operator=(const VirtualRouter&) = delete;

  /// Attach an interface to a network: `ip` is the router's own address on
  /// that network, `subnet` the prefix it owns there.
  util::Status attach_interface(HostOnlySwitch* network, const MacAddress& mac,
                                const std::string& ip,
                                const std::string& subnet_cidr);

  /// Detach every interface from its switch.  Call this before any
  /// attached switch is destroyed — the destructor also detaches, but it
  /// requires all attached networks to still be alive.
  void detach_all();

  /// Teach the router an IP->MAC binding on an interface (static ARP).
  /// `interface_ip` identifies the interface by the router's address there.
  util::Status add_arp_entry(const std::string& interface_ip,
                             const std::string& host_ip,
                             const MacAddress& host_mac);

  std::size_t interface_count() const { return interfaces_.size(); }
  std::uint64_t packets_forwarded() const { return packets_forwarded_; }
  std::uint64_t packets_dropped() const { return packets_dropped_; }
  const std::string& name() const { return name_; }

 private:
  struct Interface {
    HostOnlySwitch* network = nullptr;
    std::uint32_t port = 0;
    MacAddress mac;
    std::uint32_t ip = 0;
    Subnet subnet;
    std::map<std::uint32_t, MacAddress> arp;
  };

  void receive(std::size_t interface_index, const EthernetFrame& frame);
  void forward(const IpPacket& packet);

  std::string name_;
  std::vector<Interface> interfaces_;
  std::uint64_t packets_forwarded_ = 0;
  std::uint64_t packets_dropped_ = 0;
};

}  // namespace vmp::vnet
