file(REMOVE_RECURSE
  "CMakeFiles/vmp_util.dir/error.cpp.o"
  "CMakeFiles/vmp_util.dir/error.cpp.o.d"
  "CMakeFiles/vmp_util.dir/ids.cpp.o"
  "CMakeFiles/vmp_util.dir/ids.cpp.o.d"
  "CMakeFiles/vmp_util.dir/logging.cpp.o"
  "CMakeFiles/vmp_util.dir/logging.cpp.o.d"
  "CMakeFiles/vmp_util.dir/random.cpp.o"
  "CMakeFiles/vmp_util.dir/random.cpp.o.d"
  "CMakeFiles/vmp_util.dir/stats.cpp.o"
  "CMakeFiles/vmp_util.dir/stats.cpp.o.d"
  "CMakeFiles/vmp_util.dir/strings.cpp.o"
  "CMakeFiles/vmp_util.dir/strings.cpp.o.d"
  "CMakeFiles/vmp_util.dir/thread_pool.cpp.o"
  "CMakeFiles/vmp_util.dir/thread_pool.cpp.o.d"
  "libvmp_util.a"
  "libvmp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
