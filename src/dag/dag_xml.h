// XML (de)serialization for configuration DAGs.
//
// Wire format (carried inside Create-VM requests, paper Section 4.1):
//
//   <dag>
//     <action id="A" op="install-os" scope="guest" on-error="abort">
//       <param name="distro">redhat-8.0</param>
//       <script>...</script>            <!-- optional -->
//       <error-dag> ... nested <dag> content ... </error-dag>  <!-- optional -->
//     </action>
//     ...
//     <edge from="A" to="B"/>
//   </dag>
#pragma once

#include <memory>
#include <string>

#include "dag/dag.h"
#include "util/error.h"

namespace vmp::xml {
class Element;
}

namespace vmp::dag {

/// Serialize into a new <dag> child of `parent`.
void to_xml(const ConfigDag& dag, xml::Element* parent);

/// Serialize to a standalone XML string.
std::string to_xml_string(const ConfigDag& dag);

/// Parse from a <dag> element.
util::Result<ConfigDag> from_xml(const xml::Element& dag_element);

/// Parse from a string whose root element is <dag>.
util::Result<ConfigDag> from_xml_string(const std::string& text);

}  // namespace vmp::dag
