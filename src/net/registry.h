// Service registry: publish / discover / bind.
//
// Paper, Section 3 and Figure 1: "The service can use standard mechanisms
// for dynamic or static discovery (e.g. UDDI) and for obtaining the
// service's binding and location description."  This registry provides that
// role for the in-process deployment: services publish a type ("vmshop",
// "vmplant"), an address on the MessageBus, and a property map; clients
// discover by type and bind by address.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/error.h"

namespace vmp::net {

struct ServiceRecord {
  std::string type;     // "vmshop", "vmplant", "vnet", ...
  std::string address;  // MessageBus endpoint
  std::map<std::string, std::string> properties;
};

class ServiceRegistry {
 public:
  /// Publish (or refresh) a record; keyed by address.
  void publish(ServiceRecord record);

  /// Remove the record at an address; false if absent.
  bool withdraw(const std::string& address);

  /// All records of a type, address-ordered (deterministic).
  std::vector<ServiceRecord> discover(const std::string& type) const;

  /// Record at a specific address.
  util::Result<ServiceRecord> bind(const std::string& address) const;

  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, ServiceRecord> records_;  // by address
};

}  // namespace vmp::net
