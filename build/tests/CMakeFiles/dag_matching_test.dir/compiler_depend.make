# Empty compiler generated dependencies file for dag_matching_test.
# This may be replaced when dependencies are built.
