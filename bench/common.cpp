#include "common.h"

#include <cstdio>

namespace vmp::bench {

util::Summary SeriesResult::creation_summary() const {
  util::Summary s;
  for (const auto& sample : samples) s.add(sample.timing.total_sec);
  return s;
}

util::Summary SeriesResult::cloning_summary() const {
  util::Summary s;
  for (const auto& sample : samples) s.add(sample.timing.clone_sec);
  return s;
}

std::vector<SeriesResult> run_paper_experiment(
    const PaperExperimentConfig& config) {
  std::vector<SeriesResult> results;
  for (const auto& [memory_mb, count] : config.series) {
    cluster::DeploymentConfig dc;
    dc.plant_count = config.plant_count;
    dc.seed = config.seed ^ memory_mb;
    cluster::SimulatedDeployment site(dc);
    if (!workload::publish_paper_goldens(&site.warehouse()).ok()) continue;

    SeriesResult series;
    series.memory_mb = memory_mb;
    series.samples = site.run_sequence(
        workload::workspace_requests(memory_mb, count, "acis.ufl.edu"));
    results.push_back(std::move(series));
  }
  return results;
}

void print_histogram(const std::string& label, const util::Histogram& h) {
  std::printf("# %s\n", label.c_str());
  std::printf("%-12s %8s %12s\n", "bin_center_s", "count", "normalized");
  for (std::size_t i = 0; i < h.bin_count(); ++i) {
    std::printf("%-12.0f %8zu %12.3f\n", h.bin_center(i), h.count_at(i),
                h.normalized(i));
  }
  std::printf("\n");
}

void print_header(const std::string& artefact, const std::string& paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", artefact.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("==============================================================\n\n");
}

void print_summary_row(const std::string& name, const std::string& paper,
                       const std::string& measured) {
  std::printf("SUMMARY %-32s paper=[%s] measured=[%s]\n", name.c_str(),
              paper.c_str(), measured.c_str());
}

}  // namespace vmp::bench
