// Extension bench: speculative / concurrent VM creation.
//
// The paper's experiments are strictly sequential and §4.3 closes with
// "latency-hiding optimizations such as speculative pre-creation of VMs
// can be conceived, but have not yet been investigated."  This bench does
// the investigation on the DES: a window of concurrent creations shares
// the warehouse's NFS uplink (processor sharing) and per-plant resume
// serialization.  It reports, per window size, the makespan of a 64-VM
// burst and the mean per-VM cloning latency — showing throughput gains
// flattening as the shared link saturates while individual clones stretch.
#include <cstdio>

#include "cluster/concurrent_sim.h"
#include "common.h"

int main() {
  using namespace vmp;
  bench::print_header(
      "extension — concurrent creation / speculative pre-creation",
      "future work in the paper: quantify the shared-NFS bottleneck");

  // A burst of 64 MB workspace creations described by their real
  // accounting profile (memory checkpoint copy + 16 links + 6 actions).
  cluster::ConcurrentRequest profile;
  profile.memory_bytes = 64ull << 20;
  profile.bytes_to_copy = 64ull << 20;
  profile.links = 16;
  profile.guest_actions = 6;
  profile.isos = 6;
  std::vector<cluster::ConcurrentRequest> burst(64, profile);

  std::printf("%-8s %12s %14s %16s %14s\n", "window", "makespan_s",
              "mean_clone_s", "throughput_vm_s", "nfs_util_%");

  double serial_makespan = 0.0;
  double best_makespan = 1e18;
  for (const std::size_t window : {1, 2, 4, 8, 16, 32, 64}) {
    cluster::ConcurrentCreationSim sim(8, cluster::TimingConfig{}, 11);
    const auto result = sim.run(burst, window);

    util::Summary clone;
    for (const auto& sample : result.samples) clone.add(sample.clone_latency());
    const double throughput = burst.size() / result.makespan_sec;
    const double nfs_util =
        result.nfs_bytes_moved /
        (cluster::TimingConfig{}.nfs_copy_bytes_per_sec * result.makespan_sec);

    std::printf("%-8zu %12.0f %14.1f %16.3f %14.1f\n", window,
                result.makespan_sec, clone.mean(), throughput,
                nfs_util * 100.0);
    if (window == 1) serial_makespan = result.makespan_sec;
    best_makespan = std::min(best_makespan, result.makespan_sec);
  }

  std::printf("\n");
  char measured[96];
  std::snprintf(measured, sizeof measured, "%.1fx makespan reduction",
                serial_makespan / best_makespan);
  bench::print_summary_row("concurrency.speedup",
                           "untested in the paper (future work)", measured);
  bench::print_summary_row(
      "concurrency.bottleneck",
      "NFS uplink saturates; per-clone latency grows with window",
      "see nfs_util column");
  return 0;
}
