// Quickstart: stand up a one-plant VMPlant deployment, publish a golden
// machine, and create a configured VM through the VMShop.
//
// Walks the full public API surface in ~100 lines:
//   ArtifactStore -> Warehouse (publish a golden image)
//   VmPlant + VmShop over a MessageBus with registry discovery
//   DagBuilder (configuration DAG) -> CreateRequest -> classad response.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <filesystem>

#include "core/plant.h"
#include "core/shop.h"
#include "dag/dag.h"
#include "net/bus.h"
#include "net/registry.h"
#include "storage/artifact_store.h"
#include "warehouse/warehouse.h"

int main() {
  using namespace vmp;

  // 1. A sandbox directory holds every VM artefact (disks, checkpoints,
  //    clones).  In the paper this is the NFS-served VM Warehouse.
  const auto sandbox = std::filesystem::temp_directory_path() / "vmplants-quickstart";
  std::filesystem::remove_all(sandbox);
  storage::ArtifactStore store(sandbox);
  warehouse::Warehouse wh(&store, "warehouse");

  // 2. Publish a "golden" machine: a suspended 64 MB Linux checkpoint with
  //    a base O/S already installed (the paper's offline golden authoring).
  storage::MachineSpec spec;
  spec.os = "linux-mandrake-8.1";
  spec.memory_bytes = 64ull << 20;
  spec.suspended = true;
  spec.disk = {"disk0", 2048ull << 20, 16, storage::DiskMode::kNonPersistent};

  hv::GuestState guest;
  guest.os = spec.os;

  dag::Action base("base", "install-os");
  base.set_param("distro", "mandrake-8.1");
  auto golden = wh.publish_new("golden-64mb", "vmware-gsx", spec, guest,
                               {base.signature()});
  if (!golden.ok()) {
    std::fprintf(stderr, "publish failed: %s\n",
                 golden.error().to_string().c_str());
    return 1;
  }
  std::printf("published golden image '%s' (%zu artefact dirs)\n",
              golden.value().id.c_str(), wh.size());

  // 3. One VMPlant and one VMShop, wired through the message bus.
  net::MessageBus bus;
  net::ServiceRegistry registry;

  core::PlantConfig plant_config;
  plant_config.name = "plant0";
  core::VmPlant plant(plant_config, &store, &wh);
  (void)plant.attach_to_bus(&bus, &registry);

  core::VmShop shop(core::ShopConfig{}, &bus, &registry);
  (void)shop.attach_to_bus();

  // 4. Describe the machine we want: hardware constraints plus a
  //    configuration DAG (base install must match the golden, then our
  //    own customization on top).
  core::CreateRequest request;
  request.request_id = "quickstart-1";
  request.client = "quickstart-user";
  request.domain = "example.org";
  request.proxy_address = "proxy.example.org:4096";
  request.hardware.os = spec.os;
  request.hardware.memory_bytes = spec.memory_bytes;
  request.config =
      dag::DagBuilder()
          .guest("base", "install-os", {{"distro", "mandrake-8.1"}})
          .guest("net", "configure-network", {{"ip", "10.0.0.2"}})
          .guest("user", "create-user", {{"name", "alice"}})
          .guest("editor", "install-package", {{"package", "emacs"}})
          .chain({"base", "net", "user", "editor"})
          .build();

  // 5. Create through the shop: bidding picks the (only) plant, the PPP
  //    matches the golden image's prefix, and only net/user/editor run.
  auto ad = shop.create(request);
  if (!ad.ok()) {
    std::fprintf(stderr, "create failed: %s\n", ad.error().to_string().c_str());
    return 1;
  }
  std::printf("created VM. classad:\n%s\n", ad.value().to_string().c_str());

  const std::string vm_id = ad.value().get_string(core::attrs::kVmId).value();
  std::printf("cached actions skipped : %lld\n",
              static_cast<long long>(
                  ad.value().get_integer(core::attrs::kActionsSatisfied).value()));
  std::printf("actions executed       : %lld\n",
              static_cast<long long>(
                  ad.value().get_integer(core::attrs::kActionsExecuted).value()));

  // 6. Query, then destroy (collect).
  auto queried = shop.query(vm_id);
  std::printf("query(%s): state=%s ip=%s\n", vm_id.c_str(),
              queried.value().get_string(core::attrs::kState).value().c_str(),
              queried.value().get_string(core::attrs::kIp).value().c_str());

  (void)shop.destroy(vm_id);
  std::printf("destroyed %s; plant now hosts %zu VMs\n", vm_id.c_str(),
              plant.active_vms());

  std::filesystem::remove_all(sandbox);
  return 0;
}
