// Observability tour: arm the tracer, create a VM through the shop, and
// inspect everything the observability plane captured —
//   * the span tree of the creation (bid -> match -> clone -> configure ->
//     attach), printed as an indented tree with per-span latencies,
//   * the metrics registry dump (counters / gauges / timers),
//   * the obs:// classads a monitor sweep publishes into the VM
//     Information System,
//   * a JSONL trace file for tools/trace_summarize.py.
//
// Build & run:  ./build/examples/observability_tour
#include <cstdio>
#include <filesystem>

#include "core/info_system.h"
#include "core/plant.h"
#include "core/shop.h"
#include "dag/dag.h"
#include "net/bus.h"
#include "net/registry.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/artifact_store.h"
#include "warehouse/warehouse.h"
#include "workload/request_gen.h"

namespace {

void print_tree(const std::vector<vmp::obs::Span>& spans,
                const std::map<std::uint64_t,
                               std::vector<const vmp::obs::Span*>>& children,
                const vmp::obs::Span& span, int depth) {
  std::printf("  %*s%-20s %-16s %8.3f ms  %s\n", depth * 2, "",
              span.name.c_str(), span.component.c_str(),
              span.duration_s() * 1e3, span.status.c_str());
  auto it = children.find(span.span_id);
  if (it == children.end()) return;
  for (const vmp::obs::Span* child : it->second) {
    print_tree(spans, children, *child, depth + 1);
  }
}

}  // namespace

int main() {
  using namespace vmp;

  const auto sandbox =
      std::filesystem::temp_directory_path() / "vmplants-obs-tour";
  std::filesystem::remove_all(sandbox);
  storage::ArtifactStore store(sandbox);
  warehouse::Warehouse wh(&store, "warehouse");
  if (!workload::publish_paper_goldens(&wh).ok()) return 1;

  net::MessageBus bus;
  net::ServiceRegistry registry;
  core::PlantConfig plant_config;
  plant_config.name = "plant0";
  core::VmPlant plant(plant_config, &store, &wh);
  (void)plant.attach_to_bus(&bus, &registry);
  core::VmShop shop(core::ShopConfig{}, &bus, &registry);
  (void)shop.attach_to_bus();

  // 1. Arm the tracer (clears any previous spans) and create a VM.  Every
  //    hop of the request — shop, bus, planner, production line, vnet —
  //    contributes spans to one trace.  A virtual clock (each read advances
  //    0.1 ms, the same mechanism the DES engine uses) keeps the printed
  //    latencies identical across runs.
  obs::Tracer::instance().set_clock([] {
    static double t = 0.0;
    return t += 0.0001;
  });
  obs::Tracer::instance().arm();
  auto ad = shop.create(workload::workspace_request(64, 0, "example.org"));
  if (!ad.ok()) {
    std::fprintf(stderr, "create failed: %s\n", ad.error().to_string().c_str());
    return 1;
  }
  const std::string vm_id = ad.value().get_string(core::attrs::kVmId).value();
  std::printf("created %s\n\n", vm_id.c_str());

  // 2. The span tree of the creation.
  const auto trace_ids = obs::Tracer::instance().trace_ids();
  for (const std::string& trace_id : trace_ids) {
    auto spans = obs::Tracer::instance().trace(trace_id);
    std::printf("trace %s (%zu spans):\n", trace_id.c_str(), spans.size());
    const auto children = obs::span_children(spans);
    if (const obs::Span* root = obs::find_root(spans)) {
      print_tree(spans, children, *root, 0);
    }
  }

  // 3. The metrics dump: what the whole pipeline counted along the way.
  //    Timers are listed by sample count only — their latencies are wall
  //    time and would differ from run to run.
  auto snapshot = obs::MetricsRegistry::instance().snapshot();
  auto counts_only = snapshot;
  counts_only.timers.clear();
  std::printf("\nmetrics:\n%s", obs::render_metrics_text(counts_only).c_str());
  std::printf("timers (wall latencies vary; sample counts shown):\n");
  for (const auto& [name, stats] : snapshot.timers) {
    std::printf("  %-40s n=%zu\n", name.c_str(), stats.count);
  }

  // 4. A monitor sweep publishes the same data as classads under reserved
  //    obs:// ids in the plant's VM Information System.
  core::VmMonitor monitor(&plant.hypervisor(), &plant.info_system());
  monitor.enable_obs_export();
  monitor.refresh_all();
  auto metrics_ad = plant.info_system().query(core::kObsMetricsId);
  auto trace_ad = plant.info_system().query(core::kObsTracePrefix + vm_id);
  if (metrics_ad.ok() && trace_ad.ok()) {
    std::printf("\nobs://metrics has %zu attributes; obs://trace/%s:\n%s\n",
                metrics_ad.value().size(), vm_id.c_str(),
                trace_ad.value().to_string().c_str());
  }

  // 5. Drain the trace to JSONL for offline analysis:
  //    python3 tools/trace_summarize.py /tmp/vmplants-obs-tour-trace.jsonl
  const auto jsonl = std::filesystem::temp_directory_path() /
                     "vmplants-obs-tour-trace.jsonl";
  std::filesystem::remove(jsonl);
  if (obs::Tracer::instance().write_jsonl(jsonl.string())) {
    std::printf("wrote %zu spans to %s\n",
                obs::Tracer::instance().span_count(), jsonl.string().c_str());
  }

  (void)shop.destroy(vm_id);
  obs::Tracer::instance().disarm();
  std::filesystem::remove_all(sandbox);
  return 0;
}
