file(REMOVE_RECURSE
  "libvmp_net.a"
)
