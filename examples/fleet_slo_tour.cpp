// Fleet SLO tour: three plants, one of them degrading, and a shop that
// learns to route around it.
//
// The walk-through (all timing on a virtual clock, so the run is
// deterministic):
//   phase 1  baseline — creations spread across the fleet, every plant
//            healthy, the aggregator's sweep publishes obs://health ads
//            and the obs://fleet/metrics rollup;
//   phase 2  an injected fault plan makes plant1's resumes fail 90% of
//            the time.  Its local retries inflate the create p99 and the
//            exhausted retries burn its error budget — the aggregator's
//            SLO tracker sees both and plant1's health collapses;
//   phase 3  faults cleared — plant1 would work again, but its burned
//            budget penalizes its bids, so the shop proactively shifts
//            Create requests to the healthy plants instead of waiting
//            for another failover.
//
// Ends by exporting the published ads as JSONL for tools/fleet_report.py.
//
// Build & run:  ./build/examples/fleet_slo_tour
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "core/fleet.h"
#include "core/info_system.h"
#include "core/plant.h"
#include "core/request.h"
#include "core/shop.h"
#include "fault/fault.h"
#include "net/bus.h"
#include "net/registry.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/artifact_store.h"
#include "warehouse/warehouse.h"
#include "workload/request_gen.h"

namespace {

constexpr std::size_t kCreatesPerPhase = 24;

/// Run one phase of creations and return how many landed on each plant.
/// Requests cycle through six client domains so the paper's network-cost
/// affinity (a plant that already has a domain's network bids cheaper)
/// doesn't hand all traffic to a single plant.
std::map<std::string, int> run_phase(vmp::core::VmShop& shop,
                                     std::size_t first_index) {
  using namespace vmp;
  std::map<std::string, int> placements;
  for (std::size_t i = 0; i < kCreatesPerPhase; ++i) {
    const std::string domain = "dom-" + std::string(1, 'a' + (i % 6));
    auto ad = shop.create(
        workload::workspace_request(32, first_index + i, domain));
    if (!ad.ok()) {
      std::fprintf(stderr, "create failed: %s\n",
                   ad.error().to_string().c_str());
      continue;
    }
    placements[ad.value().get_string(core::attrs::kPlant).value_or("?")]++;
  }
  return placements;
}

void print_phase(const char* title, const std::map<std::string, int>& placed,
                 const vmp::core::FleetAggregator& agg) {
  std::printf("%s\n", title);
  std::printf("  placements:");
  for (const auto& [plant, n] : placed) {
    std::printf("  %s=%d", plant.c_str(), n);
  }
  std::printf("\n  %-8s %8s %11s %10s %7s %6s\n", "plant", "health",
              "short_burn", "long_burn", "p99_ms", "fails");
  for (const auto& ph : agg.plant_healths()) {
    std::printf("  %-8s %8.3f %11.2f %10.2f %7.2f %6llu\n", ph.plant.c_str(),
                ph.health, ph.short_burn, ph.long_burn,
                ph.sli_quantile_s.value_or(0.0) * 1e3,
                static_cast<unsigned long long>(ph.bad_total));
  }
  const vmp::obs::MetricsSnapshot fleet = agg.fleet_snapshot();
  if (const vmp::obs::TimerStats* sli =
          fleet.timer_stats("fleet.create.seconds")) {
    std::printf("  fleet: n=%zu p50=%.2f ms p99=%.2f ms\n\n", sli->count,
                sli->p50_s * 1e3, sli->p99_s * 1e3);
  }
}

}  // namespace

int main() {
  using namespace vmp;

  const auto sandbox =
      std::filesystem::temp_directory_path() / "vmplants-fleet-slo-tour";
  std::filesystem::remove_all(sandbox);
  storage::ArtifactStore store(sandbox);
  warehouse::Warehouse wh(&store, "warehouse");
  if (!workload::publish_paper_goldens(&wh).ok()) return 1;

  // Virtual clock: every read advances 0.1 ms, so latencies reflect how
  // much work (clone attempts, retries) each creation did — identically
  // on every run.
  obs::Tracer::instance().set_clock([] {
    static double t = 0.0;
    return t += 0.0001;
  });

  net::MessageBus bus;
  net::ServiceRegistry registry;
  std::vector<std::unique_ptr<core::VmPlant>> plants;
  for (const char* name : {"plant0", "plant1", "plant2"}) {
    core::PlantConfig pc;
    pc.name = name;
    pc.obs_export = true;
    // Local retries so transient resume faults turn into latency (the
    // paper's plants retry the clone+resume phase before giving up).
    pc.clone_retry = util::RetryPolicy{.max_attempts = 4};
    plants.push_back(
        std::make_unique<core::VmPlant>(pc, &store, &wh));
    if (!plants.back()->attach_to_bus(&bus, &registry).ok()) return 1;
  }

  // The aggregator publishes its verdicts into the shop-side information
  // system; its observation clock is stepped explicitly between sweeps.
  core::VmInformationSystem shop_info;
  core::FleetAggregatorConfig fc;
  fc.stale_after_s = 120.0;
  fc.slo.error_budget = 0.10;
  fc.slo.short_window_s = 30.0;
  fc.slo.long_window_s = 120.0;
  core::FleetAggregator agg(fc, &bus, &registry, &shop_info);
  double fleet_clock_s = 0.0;
  agg.set_clock([&fleet_clock_s] { return fleet_clock_s; });

  // The shop consults the aggregator on every bid round: effective cost =
  // cost * (1 + weight * (1 - health)).
  core::ShopConfig sc;
  sc.health_penalty_weight = 8.0;
  core::VmShop shop(sc, &bus, &registry);
  shop.set_health_provider(
      [&agg](const std::string& plant) { return agg.health(plant); });

  // Phase 1: healthy fleet.
  auto placed = run_phase(shop, 0);
  fleet_clock_s = 5.0;
  agg.sweep();
  print_phase("phase 1 — baseline (all plants healthy)", placed, agg);

  // Phase 2: plant1's resumes fail 90% of the time (seeded, so the same
  // creations fail on every run).  Retries inflate its p99; exhausted
  // retries fail the creation at the plant, burning its error budget
  // while the shop fails over to the next-best bid.
  auto plan = fault::FaultPlan::parse("hypervisor.resume:target=plant1-vm,p=0.9");
  if (!plan.ok()) return 1;
  fault::FaultRegistry::instance().install(plan.value());
  placed = run_phase(shop, kCreatesPerPhase);
  fleet_clock_s = 10.0;
  agg.sweep();
  print_phase("phase 2 — plant1 resumes failing (p=0.9)", placed, agg);
  const std::uint64_t failovers_during_fault = shop.failovers();

  // Phase 3: faults gone, but plant1's burned budget keeps penalizing its
  // bids — the shop routes around it without a single new failover.
  fault::FaultRegistry::instance().clear();
  placed = run_phase(shop, 2 * kCreatesPerPhase);
  fleet_clock_s = 15.0;
  agg.sweep();
  print_phase("phase 3 — faults cleared, penalty still steering", placed,
              agg);
  std::printf("failovers: during fault=%llu, after recovery=%llu\n",
              static_cast<unsigned long long>(failovers_during_fault),
              static_cast<unsigned long long>(shop.failovers() -
                                              failovers_during_fault));

  // Export the published ads for tools/fleet_report.py.
  const auto jsonl = std::filesystem::temp_directory_path() /
                     "vmplants-fleet-slo-tour.jsonl";
  std::filesystem::remove(jsonl);
  if (agg.export_jsonl(jsonl.string())) {
    std::printf("wrote fleet ads to %s\n", jsonl.string().c_str());
    std::printf("  python3 tools/fleet_report.py %s\n", jsonl.string().c_str());
  }

  obs::Tracer::instance().set_clock(nullptr);
  std::filesystem::remove_all(sandbox);
  return 0;
}
