#!/usr/bin/env python3
"""Render a fleet observability export as per-plant health + rollup tables.

FleetAggregator::export_jsonl (src/core/fleet.cpp) writes one JSON object
per published classad:

    {"id": "obs://health/<plant>", "attrs": {"Health": 0.8, ...}}
    {"id": "obs://fleet/metrics",  "attrs": {"fleet_create_count": 72, ...}}

This tool turns that into the operator's view: a health table (health,
burn rates, SLI quantile, good/bad totals per plant) and the fleet rollup
(plant count, creations, failures, merged latency quantiles).

Usage:
    python3 tools/fleet_report.py fleet.jsonl [--json]

With --json, emits a single machine-readable summary object instead of
tables.
"""

import argparse
import json
import sys

HEALTH_PREFIX = "obs://health/"
BROKER_PREFIX = "obs://broker/"
FLEET_ID = "obs://fleet/metrics"


def load_ads(path):
    ads = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                ads.append(json.loads(line))
            except json.JSONDecodeError as err:
                print(f"{path}:{lineno}: skipping bad line: {err}",
                      file=sys.stderr)
    return ads


def split_ads(ads):
    """Latest health ad per plant, broker ad per shard, and fleet rollup."""
    plants = {}
    brokers = {}
    rollup = None
    for ad in ads:
        ad_id = ad.get("id", "")
        attrs = ad.get("attrs", {})
        if ad_id.startswith(HEALTH_PREFIX):
            plants[ad_id[len(HEALTH_PREFIX):]] = attrs
        elif ad_id.startswith(BROKER_PREFIX):
            brokers[ad_id[len(BROKER_PREFIX):]] = attrs
        elif ad_id == FLEET_ID:
            rollup = attrs
    return plants, brokers, rollup


def health_grade(health):
    if health >= 0.99:
        return "ok"
    if health >= 0.8:
        return "warn"
    return "burning"


def print_health_table(plants):
    header = (f"{'plant':<16} {'health':>8} {'grade':>8} {'short_burn':>11} "
              f"{'long_burn':>10} {'sli ms':>9} {'good':>8} {'bad':>6}")
    print(header)
    print("-" * len(header))
    for plant in sorted(plants):
        attrs = plants[plant]
        health = float(attrs.get("Health", 1.0))
        sli = float(attrs.get("SliQuantileSeconds", 0.0))
        print(f"{plant:<16} {health:>8.3f} {health_grade(health):>8} "
              f"{float(attrs.get('ShortBurn', 0.0)):>11.2f} "
              f"{float(attrs.get('LongBurn', 0.0)):>10.2f} "
              f"{sli * 1e3:>9.2f} "
              f"{int(attrs.get('GoodTotal', 0)):>8} "
              f"{int(attrs.get('BadTotal', 0)):>6}")


def broker_row(attrs):
    return {
        "members": int(attrs.get("Members", 0)),
        "forwarded": int(attrs.get("CreationsForwarded", 0)),
        "bids_cached": int(attrs.get("BidsCachedServed", 0)),
        "bids_refreshed": int(attrs.get("BidsRefreshed", 0)),
        "cache_size": int(attrs.get("BidCacheSize", 0)),
        "headroom_bytes": int(attrs.get("SubtreeHeadroomBytes", 0)),
    }


def print_broker_table(brokers):
    header = (f"{'shard':<16} {'members':>8} {'forwarded':>10} "
              f"{'cached':>8} {'refreshed':>10} {'cache':>6} "
              f"{'headroom':>12}")
    print(header)
    print("-" * len(header))
    for name in sorted(brokers):
        row = broker_row(brokers[name])
        headroom = row["headroom_bytes"]
        headroom_str = (f"{headroom / (1 << 20):.0f} MB" if headroom
                        else "-")
        print(f"{name:<16} {row['members']:>8} {row['forwarded']:>10} "
              f"{row['bids_cached']:>8} {row['bids_refreshed']:>10} "
              f"{row['cache_size']:>6} {headroom_str:>12}")


def rollup_summary(rollup):
    """Pick the headline numbers out of the folded metric attribute names."""
    if not rollup:
        return {}
    summary = {
        "plants": int(rollup.get("PlantCount", 0)),
        "creates": int(rollup.get("fleet_create_count", 0)),
        "failures": int(rollup.get("fleet_create_fail_count", 0)),
    }
    for quantile in ("p50", "p90", "p99", "p999"):
        key = f"fleet_create_seconds_{quantile}"
        if key in rollup:
            summary[quantile + "_s"] = float(rollup[key])
    return summary


def print_rollup(rollup):
    summary = rollup_summary(rollup)
    if not summary:
        print("no fleet rollup ad in this export", file=sys.stderr)
        return
    creates = summary["creates"]
    failures = summary["failures"]
    total = creates + failures
    rate = failures / total * 100.0 if total else 0.0
    print(f"fleet: {summary['plants']} plants, {creates} creations, "
          f"{failures} failures ({rate:.1f}%)")
    quantiles = [f"{q}={summary[q + '_s'] * 1e3:.2f} ms"
                 for q in ("p50", "p90", "p99", "p999")
                 if q + "_s" in summary]
    if quantiles:
        print("fleet create latency: " + "  ".join(quantiles))


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("jsonl",
                        help="file written by FleetAggregator::export_jsonl")
    parser.add_argument("--json", action="store_true",
                        help="emit one machine-readable summary object")
    parser.add_argument("--by-shard", action="store_true",
                        help="per-shard broker table (obs://broker/* ads) "
                             "instead of the per-plant health view")
    args = parser.parse_args()

    ads = load_ads(args.jsonl)
    if not ads:
        print("no ads found", file=sys.stderr)
        return 1
    plants, brokers, rollup = split_ads(ads)

    if args.json:
        print(json.dumps({
            "plants": {
                name: {
                    "health": float(attrs.get("Health", 1.0)),
                    "grade": health_grade(float(attrs.get("Health", 1.0))),
                    "short_burn": float(attrs.get("ShortBurn", 0.0)),
                    "long_burn": float(attrs.get("LongBurn", 0.0)),
                    "sli_quantile_s": float(
                        attrs.get("SliQuantileSeconds", 0.0)),
                    "good": int(attrs.get("GoodTotal", 0)),
                    "bad": int(attrs.get("BadTotal", 0)),
                } for name, attrs in sorted(plants.items())
            },
            "brokers": {
                name: broker_row(attrs)
                for name, attrs in sorted(brokers.items())
            },
            "fleet": rollup_summary(rollup),
        }, indent=2))
        return 0

    if args.by_shard:
        if not brokers:
            print("no obs://broker/* ads in this export (flat deployment?)",
                  file=sys.stderr)
            return 1
        print_broker_table(brokers)
        print()
        print_rollup(rollup)
        return 0

    if plants:
        print_health_table(plants)
        print()
    print_rollup(rollup)
    return 0


if __name__ == "__main__":
    sys.exit(main())
