# Empty compiler generated dependencies file for fig6_sequence_profile.
# This may be replaced when dependencies are built.
