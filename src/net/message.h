// Service message envelopes.
//
// The prototype exchanged serialized objects over Berkeley sockets with
// XML-encoded service payloads (paper Section 4.1).  This module keeps the
// same split: an envelope carrying routing metadata, and an XML body.  The
// envelope is itself rendered to XML for wire-format tests:
//
//   <message kind="request" service="vmplant.create" from="shop0"
//            to="plant3" correlation="req-0042">
//     ...payload elements...
//   </message>
#pragma once

#include <memory>
#include <string>

#include "obs/trace.h"
#include "util/error.h"
#include "xml/xml.h"

namespace vmp::net {

enum class MessageKind { kRequest, kResponse, kFault };

const char* message_kind_name(MessageKind kind) noexcept;
util::Result<MessageKind> parse_message_kind(const std::string& name);

class Message {
 public:
  Message() : body_(std::make_unique<xml::Element>("message")) {}

  static Message request(std::string service, std::string from, std::string to,
                         std::string correlation);
  /// Rebuild an envelope from already-decoded fields (wire decoders only —
  /// unlike request(), this neither captures the ambient trace context nor
  /// assumes a kind).
  static Message assemble(MessageKind kind, std::string service,
                          std::string from, std::string to,
                          std::string correlation);
  static Message response_to(const Message& request_msg);
  /// Fault response carrying an error code/description.
  static Message fault_to(const Message& request_msg, const util::Error& error);

  MessageKind kind() const { return kind_; }
  const std::string& service() const { return service_; }
  const std::string& from() const { return from_; }
  const std::string& to() const { return to_; }
  const std::string& correlation() const { return correlation_; }

  /// Payload root (children of <message>).
  xml::Element& body() { return *body_; }
  const xml::Element& body() const { return *body_; }

  /// For faults: the carried error.
  util::Error fault_error() const;
  bool is_fault() const { return kind_ == MessageKind::kFault; }

  /// Trace context riding the envelope (serialized as trace="..."
  /// span="..." attributes when set).  Message::request captures the
  /// calling thread's current span automatically; responses inherit the
  /// request's context.
  const obs::TraceContext& trace() const { return trace_; }
  void set_trace(obs::TraceContext ctx) { trace_ = std::move(ctx); }

  /// Wire form.
  std::string serialize() const;
  static util::Result<Message> deserialize(const std::string& wire);

  Message clone_shallow_header() const;

 private:
  MessageKind kind_ = MessageKind::kRequest;
  std::string service_;
  std::string from_;
  std::string to_;
  std::string correlation_;
  obs::TraceContext trace_;
  std::unique_ptr<xml::Element> body_;
};

}  // namespace vmp::net
