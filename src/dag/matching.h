// Partial matching of configuration DAGs against cached golden images.
//
// Paper, Section 3.2.  Each cached image records the ordered sequence of
// configuration actions already performed on it.  For a cached image to be
// usable as a clone source for a requested DAG, three conditions must hold:
//
//  * Subset Test — every performed action is required by the DAG (no
//    extraneous operations baked into the image).
//  * Prefix Test — the performed set is downward-closed under the DAG's
//    precedence: if action A was performed, every DAG-predecessor of A was
//    performed too.
//  * Partial Order Test — the order in which actions were performed on the
//    image is consistent with the DAG's partial order: if the DAG requires
//    A before B and both were performed, A appears before B in the image's
//    history.
//
// Identity between a performed action and a DAG node is by Action signature
// (operation + canonical parameters); see dag/action.h.
#pragma once

#include <string>
#include <vector>

#include "dag/dag.h"
#include "util/error.h"

namespace vmp::dag {

/// Outcome of testing one cached image description against a request DAG.
struct MatchEvaluation {
  bool subset_ok = false;
  bool prefix_ok = false;
  bool partial_order_ok = false;

  /// All three tests passed.
  bool matches() const { return subset_ok && prefix_ok && partial_order_ok; }

  /// Node ids (in the request DAG) already satisfied by the image.
  std::vector<std::string> satisfied_nodes;

  /// Node ids still to be executed, in a valid topological order of the
  /// remaining sub-graph (empty unless matches()).
  std::vector<std::string> remaining_plan;

  /// Diagnostic for the first failed test ("" when matches()).
  std::string failure_reason;
};

/// Evaluate the three tests for one image.
///
/// `performed_signatures` is the image's action history, oldest first.
/// The request DAG must have unique signatures (ConfigDag::signature_index);
/// an error is returned otherwise.  Unknown signatures in the history are
/// not an error — they simply fail the Subset test, because the image has an
/// operation the request does not want.
util::Result<MatchEvaluation> evaluate_match(
    const ConfigDag& request,
    const std::vector<std::string>& performed_signatures);

/// A scored candidate (index into the caller's image list).
struct RankedMatch {
  std::size_t image_index = 0;
  std::size_t satisfied_count = 0;
  std::size_t remaining_count = 0;
};

/// Rank all matching images: most satisfied actions first (fewest remaining
/// configuration actions to execute), stable on ties.  Non-matching images
/// are absent from the result.
util::Result<std::vector<RankedMatch>> rank_matches(
    const ConfigDag& request,
    const std::vector<std::vector<std::string>>& image_histories);

}  // namespace vmp::dag
