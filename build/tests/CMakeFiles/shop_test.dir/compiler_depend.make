# Empty compiler generated dependencies file for shop_test.
# This may be replaced when dependencies are built.
