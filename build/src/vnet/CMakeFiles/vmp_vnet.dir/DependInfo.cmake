
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vnet/allocator.cpp" "src/vnet/CMakeFiles/vmp_vnet.dir/allocator.cpp.o" "gcc" "src/vnet/CMakeFiles/vmp_vnet.dir/allocator.cpp.o.d"
  "/root/repo/src/vnet/ethernet.cpp" "src/vnet/CMakeFiles/vmp_vnet.dir/ethernet.cpp.o" "gcc" "src/vnet/CMakeFiles/vmp_vnet.dir/ethernet.cpp.o.d"
  "/root/repo/src/vnet/router.cpp" "src/vnet/CMakeFiles/vmp_vnet.dir/router.cpp.o" "gcc" "src/vnet/CMakeFiles/vmp_vnet.dir/router.cpp.o.d"
  "/root/repo/src/vnet/switch.cpp" "src/vnet/CMakeFiles/vmp_vnet.dir/switch.cpp.o" "gcc" "src/vnet/CMakeFiles/vmp_vnet.dir/switch.cpp.o.d"
  "/root/repo/src/vnet/vnet_bridge.cpp" "src/vnet/CMakeFiles/vmp_vnet.dir/vnet_bridge.cpp.o" "gcc" "src/vnet/CMakeFiles/vmp_vnet.dir/vnet_bridge.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vmp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
