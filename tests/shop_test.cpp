// Tests for the VMShop: bid collection, plant selection, creation routing,
// query/destroy, and failure handling over the message bus.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/plant.h"
#include "core/shop.h"
#include "lifecycle/lifecycle.h"
#include "workload/request_gen.h"

namespace vmp::core {
namespace {

class ShopTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("vmp-shop-test-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
    store_ = std::make_unique<storage::ArtifactStore>(root_);
    warehouse_ = std::make_unique<warehouse::Warehouse>(store_.get(), "warehouse");
    ASSERT_TRUE(workload::publish_paper_goldens(warehouse_.get()).ok());

    for (int i = 0; i < 3; ++i) {
      PlantConfig config;
      config.name = "plant" + std::to_string(i);
      config.cost_model = "network-compute";
      plants_.push_back(
          std::make_unique<VmPlant>(config, store_.get(), warehouse_.get()));
      ASSERT_TRUE(plants_.back()->attach_to_bus(&bus_, &registry_).ok());
    }
    shop_ = std::make_unique<VmShop>(ShopConfig{}, &bus_, &registry_);
    ASSERT_TRUE(shop_->attach_to_bus().ok());
  }
  void TearDown() override {
    shop_.reset();
    plants_.clear();
    warehouse_.reset();
    store_.reset();
    std::filesystem::remove_all(root_);
  }

  std::filesystem::path root_;
  std::unique_ptr<storage::ArtifactStore> store_;
  std::unique_ptr<warehouse::Warehouse> warehouse_;
  net::MessageBus bus_;
  net::ServiceRegistry registry_;
  std::vector<std::unique_ptr<VmPlant>> plants_;
  std::unique_ptr<VmShop> shop_;
};

TEST_F(ShopTest, CollectsBidsFromAllPlants) {
  auto bids = shop_->collect_bids(workload::workspace_request(64, 0, "d1"));
  ASSERT_EQ(bids.size(), 3u);
  for (const Bid& bid : bids) {
    EXPECT_DOUBLE_EQ(bid.cost, 50.0);  // all empty, new domain everywhere
  }
}

TEST_F(ShopTest, SelectBidPicksCheapest) {
  std::vector<Bid> bids{{"a", 50.0}, {"b", 4.0}, {"c", 12.0}};
  auto best = shop_->select_bid(bids);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->plant_address, "b");
  EXPECT_FALSE(shop_->select_bid({}).has_value());
}

TEST_F(ShopTest, TiesBrokenAmongCheapestOnly) {
  std::vector<Bid> bids{{"a", 5.0}, {"b", 5.0}, {"c", 9.0}};
  for (int i = 0; i < 20; ++i) {
    auto pick = shop_->select_bid(bids);
    ASSERT_TRUE(pick.has_value());
    EXPECT_NE(pick->plant_address, "c");
  }
}

TEST_F(ShopTest, CreateRoutesThroughCheapestPlant) {
  // First create lands somewhere (ties).  Second create for the same
  // domain must land on the SAME plant: its compute bid (4*1=4) beats the
  // other plants' network bids (50) — the paper's §3.4 behaviour.
  auto first = shop_->create(workload::workspace_request(64, 0, "ufl.edu"));
  ASSERT_TRUE(first.ok()) << first.error().to_string();
  const std::string first_plant =
      first.value().get_string(attrs::kPlant).value();

  auto second = shop_->create(workload::workspace_request(64, 1, "ufl.edu"));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().get_string(attrs::kPlant).value(), first_plant);
  EXPECT_EQ(shop_->creations(), 2u);
}

TEST_F(ShopTest, DifferentDomainsSpreadWhenCostsEqual) {
  // Domain d2's bid is 50 everywhere (new network), so it can land on any
  // plant; the first domain's plant charges 50 for d2 as well (its network
  // is held by d1).  Just verify creation succeeds and isolation holds.
  ASSERT_TRUE(shop_->create(workload::workspace_request(64, 0, "d1")).ok());
  auto r2 = shop_->create(workload::workspace_request(64, 1, "d2"));
  ASSERT_TRUE(r2.ok());
}

TEST_F(ShopTest, QueryRoutedAndBroadcast) {
  auto ad = shop_->create(workload::workspace_request(32, 0, "d1"));
  ASSERT_TRUE(ad.ok());
  const std::string vm_id = ad.value().get_string(attrs::kVmId).value();

  auto q = shop_->query(vm_id);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().get_string(attrs::kVmId).value(), vm_id);

  // A second shop with no routing cache finds the VM by broadcast.
  VmShop shop2(ShopConfig{.name = "vmshop2"}, &bus_, &registry_);
  auto q2 = shop2.query(vm_id);
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2.value().get_string(attrs::kVmId).value(), vm_id);

  EXPECT_FALSE(shop_->query("vm-ghost").ok());
}

TEST_F(ShopTest, DestroyCollectsAtPlant) {
  auto ad = shop_->create(workload::workspace_request(32, 0, "d1"));
  ASSERT_TRUE(ad.ok());
  const std::string vm_id = ad.value().get_string(attrs::kVmId).value();
  const std::string plant_name = ad.value().get_string(attrs::kPlant).value();

  ASSERT_TRUE(shop_->destroy(vm_id).ok());
  for (const auto& plant : plants_) {
    if (plant->name() == plant_name) {
      EXPECT_EQ(plant->active_vms(), 0u);
      EXPECT_EQ(plant->allocator().free_networks(), 4u);
    }
  }
  EXPECT_FALSE(shop_->destroy(vm_id).ok());
}

TEST_F(ShopTest, NoBidsWhenNothingMatches) {
  // 128 MB golden does not exist -> every plant's PPP would fail, but the
  // estimate stage already refuses nothing (cost model doesn't know);
  // creation fails at the chosen plant and the shop falls through all
  // bids, reporting kUnavailable with the underlying reason.
  auto r = shop_->create(workload::workspace_request(128, 0, "d1"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), util::ErrorCode::kUnavailable);
  EXPECT_NE(r.error().message().find("NO_MATCHING_IMAGE"), std::string::npos);
}

TEST_F(ShopTest, NoBidsAtAllWhenPlantsGone) {
  for (auto& plant : plants_) plant->detach_from_bus();
  auto r = shop_->create(workload::workspace_request(64, 0, "d1"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), util::ErrorCode::kNoBids);
}

TEST_F(ShopTest, FailoverToNextBestBidOnPlantFailure) {
  // Wedge one plant (down at create time but alive at bid time is hard to
  // arrange; instead mark it down entirely — bids skip it, creation goes
  // elsewhere).
  bus_.set_down("plant0", true);
  auto r = shop_->create(workload::workspace_request(64, 0, "d1"));
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.value().get_string(attrs::kPlant).value(), "plant0");
}

TEST_F(ShopTest, FailoverWhenChosenPlantFailsCreation) {
  // All plants bid, but plant capacity 0 at two of them via saturating
  // their networks with other domains.
  for (int d = 0; d < 4; ++d) {
    // Fill plant0's networks by addressing it directly.
    ASSERT_TRUE(plants_[0]
                    ->create(workload::workspace_request(
                        32, d + 100, "filler" + std::to_string(d)))
                    .ok());
  }
  // plant0 now has 4 domains holding its networks; a new domain's create
  // there would fail.  The shop should still succeed via another plant.
  auto r = shop_->create(workload::workspace_request(64, 0, "fresh-domain"));
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_NE(r.value().get_string(attrs::kPlant).value(), "plant0");
}

TEST_F(ShopTest, WireProtocolThroughShopEndpoint) {
  // Drive the shop through its *bus* endpoint like an external client.
  CreateRequest request = workload::workspace_request(32, 0, "d1");
  net::Message m =
      net::Message::request("vmshop.create", "client", "vmshop", "c-1");
  request.to_xml(&m.body());
  auto response = net::call_expecting_success(&bus_, m);
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  auto ad = classad::ClassAd::from_xml(response.value().body());
  ASSERT_TRUE(ad.ok());
  const std::string vm_id = ad.value().get_string(attrs::kVmId).value();

  net::Message query =
      net::Message::request("vmshop.query", "client", "vmshop", "c-2");
  query.body().add_child("vm").set_attr("id", vm_id);
  EXPECT_TRUE(net::call_expecting_success(&bus_, query).ok());

  net::Message destroy =
      net::Message::request("vmshop.destroy", "client", "vmshop", "c-3");
  destroy.body().add_child("vm").set_attr("id", vm_id);
  EXPECT_TRUE(net::call_expecting_success(&bus_, destroy).ok());

  net::Message bad =
      net::Message::request("vmshop.unknown", "client", "vmshop", "c-4");
  auto fault = bus_.call(bad);
  ASSERT_TRUE(fault.ok());
  EXPECT_TRUE(fault.value().is_fault());
}

TEST_F(ShopTest, PublishMessageAdmitsAndBackpressures) {
  // Serialize a golden descriptor into a vmshop.publish message body.
  const auto publish_msg = [](const std::string& id, std::uint64_t disk_mb,
                              const std::string& call_id) {
    net::Message m =
        net::Message::request("vmshop.publish", "installer", "vmshop",
                              call_id);
    xml::Element& golden = m.body().add_child("golden");
    golden.set_attr("id", id);
    golden.set_attr("backend", "vmware-gsx");
    xml::Element& machine = golden.add_child("machine");
    machine.set_attr("os", "linux-mandrake-8.1");
    machine.set_attr("memory-bytes", std::to_string(32ull << 20));
    machine.set_attr("suspended", "true");
    xml::Element& disk = machine.add_child("disk");
    disk.set_attr("name", "disk0");
    disk.set_attr("capacity-bytes", std::to_string(disk_mb << 20));
    disk.set_attr("span-count", "2");
    disk.set_attr("mode", "non-persistent");
    golden.add_child("performed");
    return m;
  };

  // Without a lifecycle manager, publishing is unavailable at this shop.
  auto no_lifecycle = bus_.call(publish_msg("installer-img", 64, "p-0"));
  ASSERT_TRUE(no_lifecycle.ok());
  ASSERT_TRUE(no_lifecycle.value().is_fault());
  EXPECT_EQ(no_lifecycle.value().fault_error().code(),
            util::ErrorCode::kFailedPrecondition);

  // ~256 MB budget: the 64 MB-disk image fits, a 512 MB one cannot.
  lifecycle::LifecycleManager::Config config;
  config.disk_budget_bytes = 256ull << 20;
  auto manager =
      lifecycle::LifecycleManager::create(warehouse_.get(), config);
  ASSERT_TRUE(manager.ok());
  shop_->set_lifecycle(manager.value().get());

  auto ok = net::call_expecting_success(
      &bus_, publish_msg("installer-img", 64, "p-1"));
  ASSERT_TRUE(ok.ok()) << ok.error().to_string();
  const xml::Element* published = ok.value().body().child("published");
  ASSERT_NE(published, nullptr);
  EXPECT_EQ(published->attr("id"), "installer-img");
  EXPECT_TRUE(warehouse_->contains("installer-img"));

  // An image whose estimate alone exceeds the budget is rejected with
  // kResourceExhausted — the fault IS the installer's backpressure.
  auto rejected = bus_.call(publish_msg("oversized-img", 512, "p-2"));
  ASSERT_TRUE(rejected.ok());
  ASSERT_TRUE(rejected.value().is_fault());
  EXPECT_EQ(rejected.value().fault_error().code(),
            util::ErrorCode::kResourceExhausted);
  EXPECT_FALSE(warehouse_->contains("oversized-img"));

  shop_->set_lifecycle(nullptr);
}

}  // namespace
}  // namespace vmp::core
