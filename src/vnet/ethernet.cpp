#include "vnet/ethernet.h"

#include <cstdio>

#include "util/strings.h"

namespace vmp::vnet {

using util::Error;
using util::ErrorCode;
using util::Result;

MacAddress MacAddress::from_index(std::uint32_t index) {
  return MacAddress({0x02, 0x56, 0x4d,
                     static_cast<std::uint8_t>(index >> 16),
                     static_cast<std::uint8_t>(index >> 8),
                     static_cast<std::uint8_t>(index)});
}

Result<MacAddress> MacAddress::parse(const std::string& text) {
  const auto parts = util::split(text, ':');
  if (parts.size() != 6) {
    return Result<MacAddress>(
        Error(ErrorCode::kParseError, "bad MAC address: " + text));
  }
  std::array<std::uint8_t, 6> octets{};
  for (std::size_t i = 0; i < 6; ++i) {
    if (parts[i].size() != 2) {
      return Result<MacAddress>(
          Error(ErrorCode::kParseError, "bad MAC octet in: " + text));
    }
    char* end = nullptr;
    const long v = std::strtol(parts[i].c_str(), &end, 16);
    if (end != parts[i].c_str() + 2 || v < 0 || v > 255) {
      return Result<MacAddress>(
          Error(ErrorCode::kParseError, "bad MAC octet in: " + text));
    }
    octets[i] = static_cast<std::uint8_t>(v);
  }
  return MacAddress(octets);
}

MacAddress MacAddress::broadcast() {
  return MacAddress({0xff, 0xff, 0xff, 0xff, 0xff, 0xff});
}

bool MacAddress::is_broadcast() const {
  return *this == broadcast();
}

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0],
                octets_[1], octets_[2], octets_[3], octets_[4], octets_[5]);
  return buf;
}

}  // namespace vmp::vnet
