#include "util/retry.h"

#include <algorithm>
#include <sstream>

#include "util/strings.h"

namespace vmp::util {

double RetryPolicy::backoff(int retry_index) const {
  double delay = initial_backoff_s;
  for (int i = 0; i < retry_index; ++i) {
    delay *= backoff_multiplier;
    if (delay >= max_backoff_s) break;
  }
  return std::min(delay, max_backoff_s);
}

std::string RetryPolicy::to_string() const {
  std::ostringstream out;
  out << "attempts=" << max_attempts << " backoff=" << format_double(initial_backoff_s)
      << "s*" << format_double(backoff_multiplier) << "<="
      << format_double(max_backoff_s) << "s timeout="
      << format_double(request_timeout_s) << "s";
  return out.str();
}

bool RetryState::allow_retry() {
  ++failures_;
  if (failures_ >= policy_.max_attempts) return false;
  const double delay = policy_.backoff(retries_);
  if (policy_.request_timeout_s > 0.0 &&
      elapsed_ + delay > policy_.request_timeout_s) {
    timed_out_ = true;
    return false;
  }
  elapsed_ += delay;
  ++retries_;
  return true;
}

}  // namespace vmp::util
