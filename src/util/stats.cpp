#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace vmp::util {

void Summary::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  sum_sq_ += x * x;
}

double Summary::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double Summary::variance() const {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1.0);
  return var > 0.0 ? var : 0.0;  // guard tiny negative from rounding
}

double Summary::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  if (p <= 0.0) return samples.front();
  if (p >= 100.0) return samples.back();
  const double rank = p / 100.0 * static_cast<double>(samples.size());
  std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx == 0) idx = 1;
  if (idx > samples.size()) idx = samples.size();
  return samples[idx - 1];
}

Histogram::Histogram(double lo, double hi, double width) : lo_(lo), width_(width) {
  if (width <= 0.0 || hi <= lo) {
    throw std::invalid_argument("Histogram: bad bin specification");
  }
  const double span = (hi - lo) / width;
  const auto bins = static_cast<std::size_t>(std::llround(span));
  if (bins == 0 || std::abs(span - static_cast<double>(bins)) > 1e-9) {
    throw std::invalid_argument("Histogram: range not a multiple of width");
  }
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  double offset = (x - lo_) / width_;
  long bin = static_cast<long>(std::floor(offset));
  if (bin < 0) bin = 0;
  if (bin >= static_cast<long>(counts_.size())) {
    bin = static_cast<long>(counts_.size()) - 1;
  }
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::normalized(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

std::string Histogram::to_table(const std::string& label) const {
  std::ostringstream out;
  out << "# " << label << "\n";
  out << "# bin_center count normalized_frequency\n";
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out << bin_center(i) << " " << counts_[i] << " " << normalized(i) << "\n";
  }
  return out.str();
}

void FaultReport::record(const std::string& point) {
  ++counts_[point];
  ++total_;
}

std::uint64_t FaultReport::count(const std::string& point) const {
  auto it = counts_.find(point);
  return it == counts_.end() ? 0 : it->second;
}

std::string FaultReport::to_string() const {
  if (total_ == 0) return "no injections";
  std::ostringstream out;
  for (const auto& [point, count] : counts_) {
    out << point << "=" << count << " ";
  }
  out << "(total " << total_ << ")";
  return out.str();
}

}  // namespace vmp::util
