// Unit tests for the classad value model, expression evaluator, parser, and
// matchmaker.
#include <gtest/gtest.h>

#include "classad/classad.h"
#include "classad/matchmaker.h"
#include "xml/xml.h"

namespace vmp::classad {
namespace {

Value eval(const std::string& expr_text, const ClassAd* self = nullptr,
           const ClassAd* other = nullptr) {
  auto expr = parse_expression(expr_text);
  EXPECT_TRUE(expr.ok()) << expr_text << ": "
                         << (expr.ok() ? "" : expr.error().to_string());
  EvalContext ctx;
  ctx.self = self;
  ctx.other = other;
  return expr.value()->evaluate(ctx);
}

// -- Values ---------------------------------------------------------------------

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::undefined().is_undefined());
  EXPECT_TRUE(Value::error().is_error());
  EXPECT_EQ(Value::integer(3).as_integer(), 3);
  EXPECT_DOUBLE_EQ(Value::real(2.5).as_real(), 2.5);
  EXPECT_EQ(Value::string("x").as_string(), "x");
  EXPECT_TRUE(Value::boolean(true).as_boolean());
  EXPECT_TRUE(Value::integer(1).is_number());
  EXPECT_TRUE(Value::real(1).is_number());
  EXPECT_FALSE(Value::string("1").is_number());
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::undefined().to_string(), "UNDEFINED");
  EXPECT_EQ(Value::error().to_string(), "ERROR");
  EXPECT_EQ(Value::boolean(true).to_string(), "TRUE");
  EXPECT_EQ(Value::integer(-4).to_string(), "-4");
  EXPECT_EQ(Value::real(4.0).to_string(), "4.0");
  EXPECT_EQ(Value::string("a\"b").to_string(), "\"a\\\"b\"");
}

// -- Arithmetic -------------------------------------------------------------------

TEST(ExprTest, IntegerArithmetic) {
  EXPECT_EQ(eval("1 + 2 * 3").as_integer(), 7);
  EXPECT_EQ(eval("(1 + 2) * 3").as_integer(), 9);
  EXPECT_EQ(eval("7 / 2").as_integer(), 3);
  EXPECT_EQ(eval("7 % 3").as_integer(), 1);
  EXPECT_EQ(eval("-4 + 1").as_integer(), -3);
}

TEST(ExprTest, MixedArithmeticPromotesToReal) {
  const Value v = eval("1 + 2.5");
  EXPECT_EQ(v.type(), ValueType::kReal);
  EXPECT_DOUBLE_EQ(v.as_real(), 3.5);
}

TEST(ExprTest, DivisionByZeroIsError) {
  EXPECT_TRUE(eval("1 / 0").is_error());
  EXPECT_TRUE(eval("1 % 0").is_error());
  EXPECT_TRUE(eval("1.0 / 0.0").is_error());
}

TEST(ExprTest, StringConcatViaPlus) {
  EXPECT_EQ(eval("\"a\" + \"b\"").as_string(), "ab");
}

TEST(ExprTest, ArithmeticOnStringsIsError) {
  EXPECT_TRUE(eval("\"a\" * 2").is_error());
}

// -- Comparisons -------------------------------------------------------------------

TEST(ExprTest, NumericComparisons) {
  EXPECT_TRUE(eval("3 < 4").as_boolean());
  EXPECT_TRUE(eval("4 <= 4").as_boolean());
  EXPECT_FALSE(eval("4 > 4").as_boolean());
  EXPECT_TRUE(eval("3 == 3.0").as_boolean());
  EXPECT_TRUE(eval("3 != 4").as_boolean());
}

TEST(ExprTest, StringComparisonIsCaseInsensitive) {
  EXPECT_TRUE(eval("\"Linux\" == \"linux\"").as_boolean());
  EXPECT_TRUE(eval("\"abc\" < \"abd\"").as_boolean());
}

TEST(ExprTest, MixedTypeEqualityIsFalseOrderingIsError) {
  EXPECT_FALSE(eval("\"a\" == 1").as_boolean());
  EXPECT_TRUE(eval("\"a\" != 1").as_boolean());
  EXPECT_TRUE(eval("\"a\" < 1").is_error());
}

// -- Three-valued logic ---------------------------------------------------------

TEST(ExprTest, UndefinedPropagatesThroughArithmetic) {
  EXPECT_TRUE(eval("missing + 1").is_undefined());
  EXPECT_TRUE(eval("missing < 4").is_undefined());
}

TEST(ExprTest, FalseDominatesUndefinedInAnd) {
  EXPECT_FALSE(eval("FALSE && missing").as_boolean());
  EXPECT_FALSE(eval("missing && FALSE").as_boolean());
  EXPECT_TRUE(eval("TRUE && missing").is_undefined());
}

TEST(ExprTest, TrueDominatesUndefinedInOr) {
  EXPECT_TRUE(eval("TRUE || missing").as_boolean());
  EXPECT_TRUE(eval("missing || TRUE").as_boolean());
  EXPECT_TRUE(eval("FALSE || missing").is_undefined());
}

TEST(ExprTest, ErrorDominatesEverything) {
  EXPECT_TRUE(eval("ERROR && FALSE").is_error());
  EXPECT_TRUE(eval("ERROR || TRUE").is_error());
  EXPECT_TRUE(eval("ERROR + 1").is_error());
}

TEST(ExprTest, NotOperator) {
  EXPECT_FALSE(eval("!TRUE").as_boolean());
  EXPECT_TRUE(eval("!FALSE").as_boolean());
  EXPECT_TRUE(eval("!missing").is_undefined());
  EXPECT_TRUE(eval("!\"str\"").is_error());
}

TEST(ExprTest, NumbersAreTruthyInLogic) {
  EXPECT_TRUE(eval("1 && TRUE").as_boolean());
  EXPECT_FALSE(eval("0 || FALSE").as_boolean());
}

// -- Functions ---------------------------------------------------------------------

TEST(ExprTest, IsUndefinedIsError) {
  EXPECT_TRUE(eval("isUndefined(missing)").as_boolean());
  EXPECT_FALSE(eval("isUndefined(1)").as_boolean());
  EXPECT_TRUE(eval("isError(1/0)").as_boolean());
}

TEST(ExprTest, Conversions) {
  EXPECT_EQ(eval("int(4.9)").as_integer(), 4);
  EXPECT_EQ(eval("int(\"42\")").as_integer(), 42);
  EXPECT_DOUBLE_EQ(eval("real(3)").as_real(), 3.0);
  EXPECT_TRUE(eval("int(\"abc\")").is_error());
}

TEST(ExprTest, FloorCeilingMinMax) {
  EXPECT_EQ(eval("floor(2.7)").as_integer(), 2);
  EXPECT_EQ(eval("ceiling(2.1)").as_integer(), 3);
  EXPECT_EQ(eval("min(3, 5)").as_integer(), 3);
  EXPECT_EQ(eval("max(3, 5)").as_integer(), 5);
  EXPECT_DOUBLE_EQ(eval("min(3.0, 5)").as_real(), 3.0);
}

TEST(ExprTest, Strcat) {
  EXPECT_EQ(eval("strcat(\"vm-\", 42)").as_string(), "vm-42");
}

TEST(ExprTest, StringListMember) {
  EXPECT_TRUE(eval("stringListMember(\"b\", \"a, b, c\")").as_boolean());
  EXPECT_FALSE(eval("stringListMember(\"z\", \"a, b, c\")").as_boolean());
}

TEST(ExprTest, UnknownFunctionIsError) {
  EXPECT_TRUE(eval("frobnicate(1)").is_error());
}

// -- Attribute references ------------------------------------------------------------

TEST(ClassAdTest, SetAndEvaluate) {
  ClassAd ad;
  ad.set_integer("Memory", 64);
  ad.set_string("OS", "linux");
  EXPECT_EQ(ad.evaluate("Memory").as_integer(), 64);
  EXPECT_EQ(ad.evaluate("os").as_string(), "linux");  // case-insensitive
  EXPECT_TRUE(ad.evaluate("absent").is_undefined());
}

TEST(ClassAdTest, ExpressionAttributesEvaluateLazily) {
  ClassAd ad;
  ad.set_integer("base", 10);
  ASSERT_TRUE(ad.set_expression("derived", "base * 2 + 1").ok());
  EXPECT_EQ(ad.evaluate("derived").as_integer(), 21);
  ad.set_integer("base", 20);
  EXPECT_EQ(ad.evaluate("derived").as_integer(), 41);
}

TEST(ClassAdTest, SelfReferenceCycleIsError) {
  ClassAd ad;
  ASSERT_TRUE(ad.set_expression("x", "x + 1").ok());
  EXPECT_TRUE(ad.evaluate("x").is_error());
}

TEST(ClassAdTest, MutualCycleIsError) {
  ClassAd ad;
  ASSERT_TRUE(ad.set_expression("a", "b").ok());
  ASSERT_TRUE(ad.set_expression("b", "a").ok());
  EXPECT_TRUE(ad.evaluate("a").is_error());
}

TEST(ClassAdTest, OtherScopeResolvesAgainstCandidate) {
  ClassAd request;
  ASSERT_TRUE(request.set_expression("Requirements",
                                     "other.Memory >= 64").ok());
  ClassAd machine;
  machine.set_integer("Memory", 128);
  EXPECT_TRUE(request.evaluate("Requirements", &machine).as_boolean());
  machine.set_integer("Memory", 32);
  EXPECT_FALSE(request.evaluate("Requirements", &machine).as_boolean());
}

TEST(ClassAdTest, UnscopedNameFallsThroughToOther) {
  ClassAd request;
  ASSERT_TRUE(request.set_expression("Requirements", "Memory >= 64").ok());
  ClassAd machine;
  machine.set_integer("Memory", 128);
  EXPECT_TRUE(request.evaluate("Requirements", &machine).as_boolean());
}

TEST(ClassAdTest, EraseAndNames) {
  ClassAd ad;
  ad.set_integer("a", 1);
  ad.set_integer("b", 2);
  EXPECT_TRUE(ad.erase("a"));
  EXPECT_FALSE(ad.erase("a"));
  ASSERT_EQ(ad.names().size(), 1u);
  EXPECT_EQ(ad.names()[0], "b");
}

TEST(ClassAdTest, TypedAccessors) {
  ClassAd ad;
  ad.set_integer("i", 5);
  ad.set_real("r", 2.5);
  ad.set_string("s", "x");
  ad.set_boolean("b", true);
  EXPECT_EQ(ad.get_integer("i").value(), 5);
  EXPECT_DOUBLE_EQ(ad.get_number("r").value(), 2.5);
  EXPECT_DOUBLE_EQ(ad.get_number("i").value(), 5.0);
  EXPECT_EQ(ad.get_string("s").value(), "x");
  EXPECT_TRUE(ad.get_boolean("b").value());
  EXPECT_FALSE(ad.get_integer("s").has_value());
  EXPECT_FALSE(ad.get_string("missing").has_value());
}

TEST(ClassAdTest, CopyIsDeep) {
  ClassAd a;
  a.set_integer("x", 1);
  ClassAd b = a;
  b.set_integer("x", 2);
  EXPECT_EQ(a.evaluate("x").as_integer(), 1);
  EXPECT_EQ(b.evaluate("x").as_integer(), 2);
}

// -- Parsing ads ----------------------------------------------------------------------

TEST(ClassAdParseTest, BracketedAd) {
  auto ad = parse_classad("[ Memory = 64; OS = \"linux\"; Ready = TRUE ]");
  ASSERT_TRUE(ad.ok()) << ad.error().to_string();
  EXPECT_EQ(ad.value().evaluate("Memory").as_integer(), 64);
  EXPECT_EQ(ad.value().evaluate("OS").as_string(), "linux");
  EXPECT_TRUE(ad.value().evaluate("Ready").as_boolean());
}

TEST(ClassAdParseTest, BareAttributeList) {
  auto ad = parse_classad("a = 1\nb = a + 1");
  ASSERT_TRUE(ad.ok());
  EXPECT_EQ(ad.value().evaluate("b").as_integer(), 2);
}

TEST(ClassAdParseTest, CommentsAllowed) {
  auto ad = parse_classad("# header\na = 1 # trailing\n");
  ASSERT_TRUE(ad.ok());
  EXPECT_EQ(ad.value().evaluate("a").as_integer(), 1);
}

TEST(ClassAdParseTest, Malformed) {
  EXPECT_FALSE(parse_classad("[ a = ]").ok());
  EXPECT_FALSE(parse_classad("[ a 1 ]").ok());
  EXPECT_FALSE(parse_classad("[ a = 1").ok());
  EXPECT_FALSE(parse_expression("1 +").ok());
  EXPECT_FALSE(parse_expression("(1").ok());
  EXPECT_FALSE(parse_expression("\"unterminated").ok());
  EXPECT_FALSE(parse_expression("a b").ok());
}

TEST(ClassAdParseTest, RoundTripThroughToString) {
  auto ad = parse_classad(
      "[ Requirements = other.Memory >= 64 && OS == \"linux\"; Rank = "
      "other.Memory ]");
  ASSERT_TRUE(ad.ok());
  auto again = parse_classad(ad.value().to_string());
  ASSERT_TRUE(again.ok()) << again.error().to_string();
  EXPECT_TRUE(ad.value() == again.value());
}

// -- XML round trip -----------------------------------------------------------------

TEST(ClassAdXmlTest, RoundTrip) {
  ClassAd ad;
  ad.set_string("VMID", "vm-0001");
  ad.set_integer("MemoryBytes", 64 << 20);
  ASSERT_TRUE(ad.set_expression("Requirements", "other.Memory >= 64").ok());

  xml::Element parent("response");
  ad.to_xml(&parent);
  auto parsed = ClassAd::from_xml(parent);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_TRUE(ad == parsed.value());
}

TEST(ClassAdXmlTest, MissingClassAdElementFails) {
  xml::Element parent("response");
  EXPECT_FALSE(ClassAd::from_xml(parent).ok());
}

// -- Matchmaking ----------------------------------------------------------------------

ClassAd machine_ad(int memory, const std::string& os) {
  ClassAd ad;
  ad.set_integer("Memory", memory);
  ad.set_string("OS", os);
  return ad;
}

TEST(MatchmakerTest, SymmetricMatchBothSidesHold) {
  ClassAd request;
  ASSERT_TRUE(
      request.set_expression("Requirements",
                             "other.Memory >= 64 && other.OS == \"linux\"")
          .ok());
  request.set_string("Customer", "invigo");

  ClassAd machine = machine_ad(128, "linux");
  ASSERT_TRUE(machine
                  .set_expression("Requirements",
                                  "other.Customer == \"invigo\"")
                  .ok());
  EXPECT_TRUE(symmetric_match(request, machine));

  ClassAd stranger;
  ASSERT_TRUE(stranger.set_expression("Requirements",
                                      "other.Memory >= 64").ok());
  stranger.set_string("Customer", "other-org");
  EXPECT_FALSE(symmetric_match(stranger, machine));
}

TEST(MatchmakerTest, MissingRequirementsDefaultsTrue) {
  ClassAd request;
  ClassAd machine = machine_ad(64, "linux");
  EXPECT_TRUE(symmetric_match(request, machine));
}

TEST(MatchmakerTest, UndefinedRequirementsDoNotMatch) {
  ClassAd request;
  ASSERT_TRUE(request.set_expression("Requirements", "other.Missing > 3").ok());
  EXPECT_FALSE(symmetric_match(request, machine_ad(64, "linux")));
}

TEST(MatchmakerTest, RankOrdersCandidates) {
  ClassAd request;
  ASSERT_TRUE(request.set_expression("Requirements", "other.Memory >= 32").ok());
  ASSERT_TRUE(request.set_expression("Rank", "other.Memory").ok());

  std::vector<ClassAd> machines{machine_ad(64, "linux"),
                                machine_ad(256, "linux"),
                                machine_ad(16, "linux")};
  auto matches = match_all(request, machines);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].index, 1u);  // 256 first
  EXPECT_EQ(matches[1].index, 0u);

  auto best = match_best(request, machines);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->index, 1u);
}

TEST(MatchmakerTest, NoCandidates) {
  ClassAd request;
  EXPECT_FALSE(match_best(request, {}).has_value());
}

}  // namespace
}  // namespace vmp::classad
