// Time-series ring buffers and SLO error-budget tracking.
//
// Grid-scale resource selection (cf. the CMS testbed's aggregated site
// health) wants rates over recent windows, not lifetime totals.  A
// TimeSeriesRing buckets values by a caller-supplied clock (sim- or
// wall-seconds) into a fixed-capacity ring, so "events in the last N
// seconds" needs no external storage and old buckets overwrite themselves.
//
// SloTracker implements the standard multi-window error-budget burn test on
// two rings (good/bad event counts): burn rate = (bad fraction) / (error
// budget), alerting only when BOTH the short and the long window burn — the
// short window makes recovery fast, the long window filters blips.  The
// resulting health score in [0, 1] is what the shop's bid selection
// consumes (core::FleetAggregator, DESIGN.md §9).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace vmp::obs {

/// Fixed-capacity ring of time buckets.  Not thread-safe; owners (the
/// fleet aggregator, tests) serialize access.
class TimeSeriesRing {
 public:
  /// `buckets` slots of `bucket_width_s` seconds each; the ring covers the
  /// trailing buckets*width seconds of history.
  TimeSeriesRing(std::size_t buckets, double bucket_width_s);

  /// Fold `value` into the bucket containing time `t` (seconds on the
  /// owner's clock).  Writing into a bucket older than the ring's span
  /// relative to the newest write is a no-op.
  void add(double t, double value);

  /// Sum of values in buckets overlapping (t_now - window_s, t_now].
  double sum_over(double t_now, double window_s) const;
  /// Number of add() calls landing in that window.
  std::uint64_t samples_over(double t_now, double window_s) const;
  /// sum_over / window_s.
  double rate_per_s(double t_now, double window_s) const;

  std::size_t capacity() const { return buckets_.size(); }
  double bucket_width_s() const { return width_; }
  /// Seconds of history the ring can hold.
  double span_s() const { return width_ * static_cast<double>(capacity()); }

 private:
  struct Bucket {
    std::int64_t epoch = -1;  // floor(t / width); -1 = never written
    double sum = 0.0;
    std::uint64_t samples = 0;
  };
  std::int64_t epoch_of(double t) const;

  std::vector<Bucket> buckets_;
  double width_;
  std::int64_t newest_epoch_ = -1;
};

/// Service-level objective: a latency target on one quantile plus an
/// error budget burned by failed requests.
struct SloPolicy {
  /// Which quantile of the SLI timer is compared to the objective.
  double target_quantile = 0.99;
  /// Latency objective for that quantile, seconds.  <= 0 disables the
  /// latency term.
  double latency_objective_s = 0.0;
  /// Quantile/objective ratio at which the latency term reaches zero
  /// health (linear in between).
  double latency_degraded_factor = 4.0;
  /// Allowed failing fraction of requests (the error budget).
  double error_budget = 0.01;
  /// Burn windows, seconds on the aggregator's clock.
  double short_window_s = 60.0;
  double long_window_s = 300.0;
  /// Burn rate at which the budget term reaches zero health (a burn of 1.0
  /// exactly spends the budget; SRE practice pages at ~14x).
  double fast_burn = 14.0;
};

/// Per-plant error-budget state: two event rings (good/bad) plus the
/// policy's health arithmetic.  Deterministic: same observations at the
/// same clock readings yield the same scores.
class SloTracker {
 public:
  explicit SloTracker(SloPolicy policy, std::size_t ring_buckets = 128,
                      double bucket_width_s = 1.0);

  /// Record one sweep's worth of new events at time `now`.
  void observe(double now, std::uint64_t good_delta, std::uint64_t bad_delta);

  /// (bad fraction over window) / error budget; 0 when the window is empty.
  double burn_rate(double now, double window_s) const;
  double short_burn(double now) const;
  double long_burn(double now) const;

  /// Health in [0, 1]: the product of the budget term (min of the two
  /// window burns, linear from 1.0 at burn<=1 down to 0 at fast_burn) and
  /// the latency term (linear from 1.0 at quantile<=objective down to 0 at
  /// objective*latency_degraded_factor).
  double health(double now, std::optional<double> sli_quantile_s) const;

  const SloPolicy& policy() const { return policy_; }

 private:
  SloPolicy policy_;
  TimeSeriesRing good_;
  TimeSeriesRing bad_;
};

}  // namespace vmp::obs
