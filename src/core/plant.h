// The VMPlant daemon.
//
// Paper, Figure 2: a plant combines the Production Process Planner, the
// Production Line, the VM Information System (+ monitor), and access to the
// VM Warehouse.  Deployed one per physical resource, it answers four
// services — Create, Collect, Query, Estimate — used by VMShop (paper,
// Figure 1: plants "are not directly accessible by clients").
//
// The plant owns the host's finite resources: a VM-count capacity, the host
// memory that resumed clones occupy, and the small pool of host-only
// networks rationed per client domain (vnet::NetworkAllocator).
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>

#include "classad/classad.h"
#include "core/cost.h"
#include "core/info_system.h"
#include "core/ppp.h"
#include "core/production_line.h"
#include "core/request.h"
#include "net/bus.h"
#include "net/registry.h"
#include "obs/metrics.h"
#include "util/error.h"
#include "util/ids.h"
#include "util/retry.h"
#include "util/thread_pool.h"
#include "vnet/allocator.h"

namespace vmp::core {

struct PlantConfig {
  std::string name = "plant0";
  std::string backend = "vmware-gsx";     // production line type
  std::uint64_t host_memory_bytes = 1536ull << 20;  // paper: 1.5 GB nodes
  std::size_t max_vms = 32;               // paper §3.4 example
  std::size_t host_only_networks = 4;     // paper §3.4 example
  std::string clone_base_dir;             // store-relative; default <name>/clones
  std::string cost_model = "network-compute";
  /// Plant-local retry for the clone+resume phase, applied only to
  /// transient failures (unavailable / timeout / internal).  Disabled by
  /// default (one attempt): the shop's next-best-bid failover is the
  /// primary recovery path, and double-retrying underneath it would
  /// inflate creation latency.
  util::RetryPolicy clone_retry = util::RetryPolicy{.max_attempts = 1};
  /// Publish obs:// classads (metrics snapshot, per-VM traces) into this
  /// plant's information system so a fleet aggregator can pull them over
  /// the bus (vmplant.query of "obs://metrics").  Off by default.
  bool obs_export = false;
  /// Worker threads for create_async() (0 = auto: hardware concurrency,
  /// at least 2 so the pipeline is exercised even on one-core hosts).
  std::size_t worker_threads = 0;
  /// Re-serialize creations through one plant-wide lock (the pre-§10
  /// behavior: one production order at a time per host).  Kept as the
  /// benchmark baseline and as an escape hatch.
  bool serialize_creates = false;
};

/// Snapshot of plant state captured before a creation (consumed by the
/// cluster timing model and exported in the response classad).
struct PlantSnapshot {
  std::size_t active_vms = 0;
  std::uint64_t resident_memory_bytes = 0;
};

class VmPlant {
 public:
  /// The plant builds its own hypervisor of the configured backend over
  /// `store` and reads golden machines from `warehouse`.
  VmPlant(PlantConfig config, storage::ArtifactStore* store,
          warehouse::Warehouse* warehouse);
  ~VmPlant();

  const std::string& name() const { return config_.name; }
  const PlantConfig& config() const { return config_; }

  // -- Direct (in-process) service interface --------------------------------
  /// Estimate the cost of serving `request` (the bid).
  util::Result<double> estimate(const CreateRequest& request) const;

  /// Create a VM; returns its classad.  Independent creations overlap:
  /// the plant only serializes instance-table bookkeeping, not the
  /// clone -> resume -> configure pipeline (DESIGN.md §10).
  util::Result<classad::ClassAd> create(const CreateRequest& request);

  /// Create on the plant's worker pool; the caller's trace context is
  /// propagated to the worker so spans keep their parent.  After the
  /// plant starts shutting down the future holds ThreadPool::Stopped.
  std::future<util::Result<classad::ClassAd>> create_async(
      const CreateRequest& request);

  /// Query an active VM's classad (refreshed by the monitor first).
  util::Result<classad::ClassAd> query(const std::string& vm_id) const;

  /// Collect (destroy) an active VM.
  util::Status collect(const std::string& vm_id);

  // -- Speculative pre-creation (paper §6 future work) -----------------------
  /// Clone and resume `count` instances of a golden image ahead of demand.
  /// A later create() whose PPP plan selects this golden image adopts a
  /// parked instance instead of cloning — the expensive phase has already
  /// happened off the critical path.
  util::Status pre_create(const std::string& golden_id, std::size_t count);

  /// Parked instances for a golden image ("" = all).
  std::size_t speculative_pool_size(const std::string& golden_id = "") const;

  /// Destroy all parked instances (frees their memory and clone dirs).
  void discard_speculative();

  // -- Migration (paper §6 future work) --------------------------------------
  /// Everything a target plant needs to adopt a live VM.
  struct MigrationBundle {
    std::string source_vm_id;
    std::string source_dir;  // suspended clone directory (store-relative)
    storage::MachineSpec spec;
    hv::GuestState guest;
    std::string domain;
    /// Golden base the clone's disk symlinks point at ("" when unleased);
    /// the target plant re-takes the lease on import.
    std::string golden_id;
  };

  /// Suspend a running VM and export its state for migration.  The VM
  /// stays registered (suspended) at this plant until collect() removes it
  /// after the target has imported — or resume_after_failed_migration()
  /// brings it back.
  util::Result<MigrationBundle> migrate_out(const std::string& vm_id);

  /// Adopt a suspended VM exported by another plant: copy its state into
  /// this plant's clone area, resume it, and return its new classad (with
  /// a fresh VMID assigned by this plant).
  util::Result<classad::ClassAd> migrate_in(const MigrationBundle& bundle);

  /// Undo migrate_out when the target failed: resume the VM in place.
  util::Status resume_after_failed_migration(const std::string& vm_id);

  // -- Introspection ---------------------------------------------------------
  std::size_t active_vms() const;
  std::uint64_t resident_memory_bytes() const;
  /// Creations admitted but not yet finished (capacity slots held).
  std::size_t inflight_creates() const;
  /// Clone+resume attempts retried locally under config().clone_retry.
  std::uint64_t clone_retries() const {
    return clone_retries_.load(std::memory_order_relaxed);
  }
  vnet::NetworkAllocator& allocator() { return allocator_; }
  hv::Hypervisor& hypervisor() { return *hypervisor_; }
  VmInformationSystem& info_system() { return info_; }
  VmMonitor& monitor() { return *monitor_; }

  // -- Bus integration --------------------------------------------------------
  /// Register this plant's endpoint and publish it in the registry.
  /// Service names on the wire: vmplant.estimate / estimate_batch / create
  /// / query / collect.
  util::Status attach_to_bus(net::MessageBus* bus,
                             net::ServiceRegistry* registry);
  void detach_from_bus();
  const std::string& bus_address() const { return config_.name; }

 private:
  net::Message handle_message(const net::Message& request_msg);
  util::Result<classad::ClassAd> create_impl(const CreateRequest& request);
  PlantSnapshot snapshot() const;
  PlantLoad load_for(const CreateRequest& request) const;

  PlantConfig config_;
  storage::ArtifactStore* store_;
  warehouse::Warehouse* warehouse_;
  std::unique_ptr<hv::Hypervisor> hypervisor_;
  ProductionProcessPlanner ppp_;
  std::unique_ptr<ProductionLine> production_;
  VmInformationSystem info_;
  std::unique_ptr<VmMonitor> monitor_;
  vnet::NetworkAllocator allocator_;
  std::unique_ptr<CostModel> cost_model_;
  util::IdGenerator vm_ids_;
  /// Plant-name-scoped SLI metrics ("<name>.create.seconds" etc.).  The
  /// process-wide registry is shared by every in-process plant, so the
  /// fleet aggregator needs per-plant names to attribute latency and
  /// failures to the right plant (DESIGN.md §9).  The per-stage timers
  /// expose where a concurrent pipeline spends its time (clone I/O vs
  /// configuration) rather than only the end-to-end latency.
  obs::Timer* sli_create_seconds_;
  obs::Timer* sli_clone_seconds_;
  obs::Timer* sli_configure_seconds_;
  obs::Counter* sli_create_ok_;
  obs::Counter* sli_create_fail_;
  /// Guards ONLY the plant's own bookkeeping: vm_domains_, speculative_,
  /// and the in-flight admission count.  The hypervisor, warehouse, info
  /// system, and network allocator each lock internally, so the expensive
  /// clone/configure pipeline runs with no plant-wide lock held.  Lock
  /// order when nesting is needed: state_mutex_ before the hypervisor's
  /// internal mutex (never the reverse).
  mutable std::mutex state_mutex_;
  /// Taken for the whole creation when config_.serialize_creates is set.
  std::mutex serialize_mutex_;
  std::size_t inflight_creates_ = 0;  // guarded by state_mutex_
  net::MessageBus* bus_ = nullptr;
  net::ServiceRegistry* registry_ = nullptr;
  /// vm_id -> domain, for releasing the network on collect.
  std::map<std::string, std::string> vm_domains_;
  /// golden_id -> parked pre-created instances (speculative pool).
  std::map<std::string, std::vector<std::string>> speculative_;
  std::atomic<std::uint64_t> clone_retries_{0};
  /// Declared last: destroyed first, so in-flight create_async tasks
  /// finish (and stop touching the members above) before they go away.
  std::unique_ptr<util::ThreadPool> workers_;
};

}  // namespace vmp::core
