// VNET bridge and client-domain proxy.
//
// Paper, Section 3.3: "A VNET server runs on each VMPlant, and on a host
// (called the Proxy) in client domain. ... VNET provides a TCP/SSL bridge
// that operates at the Ethernet layer, and bridges the remote VM to the
// client's network."  With the gateway deployment, the tunnel between the
// plant-side VNET server and the client proxy passes through SSH tunnels on
// a gateway host.
//
// The simulation models this as two bridge endpoints connected by a Tunnel:
// frames leaving the host-only switch via the uplink port are carried to
// the proxy, which injects them into the client's home network (another
// switch), and vice versa.  Tunnels count frames and can be torn down,
// which lets tests verify both connectivity and the isolation that
// motivated host-only placement.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/error.h"
#include "vnet/switch.h"

namespace vmp::vnet {

/// One side of an established VNET tunnel.
class TunnelEndpoint {
 public:
  virtual ~TunnelEndpoint() = default;
  /// Frame arriving from the far side of the tunnel.
  virtual void receive_from_tunnel(const EthernetFrame& frame) = 0;
};

/// Bidirectional frame carrier between two endpoints, with per-direction
/// frame accounting and a connected/torn-down state.  Hops (gateway, SSH
/// tunnel) are recorded for introspection; they do not alter forwarding.
class Tunnel {
 public:
  Tunnel(std::string name, std::vector<std::string> hops);

  void bind(TunnelEndpoint* plant_side, TunnelEndpoint* proxy_side);

  /// Send toward the proxy (client domain).
  util::Status send_to_proxy(const EthernetFrame& frame);
  /// Send toward the plant (host-only network).
  util::Status send_to_plant(const EthernetFrame& frame);

  void tear_down();
  bool connected() const { return connected_; }

  const std::string& name() const { return name_; }
  const std::vector<std::string>& hops() const { return hops_; }
  std::uint64_t frames_to_proxy() const { return frames_to_proxy_; }
  std::uint64_t frames_to_plant() const { return frames_to_plant_; }

 private:
  std::string name_;
  std::vector<std::string> hops_;
  TunnelEndpoint* plant_side_ = nullptr;
  TunnelEndpoint* proxy_side_ = nullptr;
  bool connected_ = false;
  std::uint64_t frames_to_proxy_ = 0;
  std::uint64_t frames_to_plant_ = 0;
};

/// Plant-side VNET server: attaches to the host-only switch as its uplink
/// port and relays frames into the tunnel.
class VnetServer final : public TunnelEndpoint {
 public:
  VnetServer(std::string name, HostOnlySwitch* host_only);
  ~VnetServer() override;

  util::Status connect(Tunnel* tunnel);
  void disconnect();

  void receive_from_tunnel(const EthernetFrame& frame) override;

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  HostOnlySwitch* host_only_;
  std::uint32_t uplink_port_ = 0;
  Tunnel* tunnel_ = nullptr;
};

/// Client-side proxy: attaches to the client's home network switch and
/// relays frames into the tunnel.
class VnetProxy final : public TunnelEndpoint {
 public:
  VnetProxy(std::string name, HostOnlySwitch* home_network);
  ~VnetProxy() override;

  util::Status connect(Tunnel* tunnel);
  void disconnect();

  void receive_from_tunnel(const EthernetFrame& frame) override;

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  HostOnlySwitch* home_network_;
  std::uint32_t port_ = 0;
  Tunnel* tunnel_ = nullptr;
};

}  // namespace vmp::vnet
