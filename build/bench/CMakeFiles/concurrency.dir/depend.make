# Empty dependencies file for concurrency.
# This may be replaced when dependencies are built.
