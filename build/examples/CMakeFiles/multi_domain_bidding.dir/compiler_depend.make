# Empty compiler generated dependencies file for multi_domain_bidding.
# This may be replaced when dependencies are built.
