// Whole-simulation binary snapshot: save/restore the durable middleware
// state in one versioned frame (DESIGN.md §15).
//
// A snapshot captures what a restarted VMShop would otherwise have to
// reconstruct the slow way — warehouse index (rescan: one descriptor.xml
// parse per image), lifecycle ledger (warm_start: re-measure footprints,
// replay the journal for usage history), and the information system's
// classads — as one binary blob framed by net/codec.h (FrameTag::kSnapshot).
// Restore is pure in-memory: no disk walks, no XML, and MORE state than
// warm_start() can recover (exact hit counts, use order, the GDSF aging
// clock), so a restored instance ranks and evicts identically to the live
// one it was captured from.
//
// Payload layout: a sequence of length-prefixed sections, each
//
//   varint section-id, varint byte-length, <section payload>
//
// Decoders skip sections with unknown ids (forward compatibility: a newer
// encoder's extra sections do not break an older reader), and every section
// is independently decodable from its borrowed sub-view.
//
// What a snapshot does NOT carry: running VM instances (the paper keeps
// those per-plant precisely so the shop can restore without them, §3.1),
// in-flight publish reservations (capture refuses until they drain), and
// the artefact trees themselves — the caller vouches the store holds the
// trees the captured index refers to, exactly like Warehouse::restore_index.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "classad/classad.h"
#include "core/info_system.h"
#include "lifecycle/lifecycle.h"
#include "util/error.h"
#include "warehouse/warehouse.h"

namespace vmp::core {

/// Decoded snapshot contents — the pure data form, independent of any live
/// subsystem.  encode_snapshot/decode_snapshot convert between this and the
/// framed bytes; capture_snapshot/restore_snapshot bridge to live objects.
/// Keeping the pure form public is what makes deterministic golden fixtures
/// (tests/fixtures/wire/) and the Python inspector possible.
struct SnapshotData {
  /// Store-relative warehouse root the images were indexed under.
  std::string warehouse_base_dir;
  /// Full golden-image index (descriptor contents, id order).
  std::vector<warehouse::GoldenImage> images;
  /// Lifecycle quota/usage ledger; meaningful only when has_ledger.
  lifecycle::LedgerSnapshot ledger;
  bool has_ledger = false;
  /// Information-system classads, (vm_id, ad) in id order.
  std::vector<std::pair<std::string, classad::ClassAd>> ads;
  bool has_ads = false;
  /// Free-form caller metadata (simulation clock, config echo, ...).
  std::map<std::string, std::string> meta;
};

/// Encode to one sealed kSnapshot frame (pure; no live objects touched).
std::string encode_snapshot(const SnapshotData& data);
/// Decode a sealed kSnapshot frame (pure).  Unknown sections are skipped.
util::Result<SnapshotData> decode_snapshot(std::string_view frame);

/// The live subsystems a snapshot reads from / writes into.  `warehouse`
/// is required; null members are simply not captured / not restored.
struct SnapshotParticipants {
  warehouse::Warehouse* warehouse = nullptr;
  lifecycle::LifecycleManager* lifecycle = nullptr;
  VmInformationSystem* info = nullptr;
};

/// Capture live state into SnapshotData.  Fails (kFailedPrecondition,
/// propagated from ledger_snapshot) while publishes are in flight.
util::Result<SnapshotData> capture_snapshot(
    const SnapshotParticipants& participants,
    std::map<std::string, std::string> meta = {});

/// Reinstate a decoded snapshot into live subsystems, in dependency order
/// (warehouse index first, then the ledger over it, then the classads).
/// Sections the snapshot lacks — or participants the caller left null —
/// are skipped.  Refuses (kInvalidArgument) when the snapshot's warehouse
/// root differs from the target warehouse's.
util::Status restore_snapshot(const SnapshotData& data,
                              const SnapshotParticipants& participants);

/// capture + encode in one step.
util::Result<std::string> save_snapshot(
    const SnapshotParticipants& participants,
    std::map<std::string, std::string> meta = {});
/// decode + restore in one step.
util::Status load_snapshot(std::string_view frame,
                           const SnapshotParticipants& participants);

}  // namespace vmp::core
