#include "dag/matching.h"

#include <algorithm>
#include <map>
#include <set>

namespace vmp::dag {

using util::Error;
using util::ErrorCode;
using util::Result;

Result<MatchEvaluation> evaluate_match(
    const ConfigDag& request,
    const std::vector<std::string>& performed_signatures) {
  auto index_result = request.signature_index();
  if (!index_result.ok()) return index_result.propagate<MatchEvaluation>();
  const std::map<std::string, std::string>& sig_to_node = index_result.value();

  MatchEvaluation eval;

  // -- Subset Test ----------------------------------------------------------
  // Every performed signature must name a node of the request DAG, and no
  // signature may repeat (an image cannot have performed the same action
  // twice for a DAG in which it appears once).
  std::vector<std::string> performed_nodes;  // request node ids, history order
  std::set<std::string> performed_set;
  eval.subset_ok = true;
  for (const std::string& sig : performed_signatures) {
    auto it = sig_to_node.find(sig);
    if (it == sig_to_node.end()) {
      eval.subset_ok = false;
      eval.failure_reason =
          "subset test failed: image performed unrequested action '" + sig + "'";
      break;
    }
    if (!performed_set.insert(it->second).second) {
      eval.subset_ok = false;
      eval.failure_reason =
          "subset test failed: image performed action '" + sig + "' twice";
      break;
    }
    performed_nodes.push_back(it->second);
  }
  if (!eval.subset_ok) return eval;

  // -- Prefix Test ----------------------------------------------------------
  // The performed set must be downward-closed: all ancestors of a performed
  // node are performed.
  eval.prefix_ok = true;
  for (const std::string& node : performed_nodes) {
    for (const std::string& ancestor : request.ancestors(node)) {
      if (!performed_set.count(ancestor)) {
        eval.prefix_ok = false;
        eval.failure_reason = "prefix test failed: image performed '" + node +
                              "' without its predecessor '" + ancestor + "'";
        break;
      }
    }
    if (!eval.prefix_ok) break;
  }
  if (!eval.prefix_ok) return eval;

  // -- Partial Order Test ---------------------------------------------------
  // History order must refine the DAG partial order: no performed pair may
  // appear in the history in the opposite order of a DAG requirement.
  std::map<std::string, std::size_t> history_position;
  for (std::size_t i = 0; i < performed_nodes.size(); ++i) {
    history_position[performed_nodes[i]] = i;
  }
  eval.partial_order_ok = true;
  for (const std::string& node : performed_nodes) {
    for (const std::string& ancestor : request.ancestors(node)) {
      // ancestor is performed (prefix test passed).
      if (history_position.at(ancestor) > history_position.at(node)) {
        eval.partial_order_ok = false;
        eval.failure_reason = "partial order test failed: image performed '" +
                              node + "' before its predecessor '" + ancestor +
                              "'";
        break;
      }
    }
    if (!eval.partial_order_ok) break;
  }
  if (!eval.partial_order_ok) return eval;

  // -- Plan the remaining suffix ---------------------------------------------
  eval.satisfied_nodes = performed_nodes;
  auto topo = request.topological_sort();
  if (!topo.ok()) return topo.propagate<MatchEvaluation>();
  for (const std::string& id : topo.value()) {
    if (!performed_set.count(id)) eval.remaining_plan.push_back(id);
  }
  return eval;
}

Result<std::vector<RankedMatch>> rank_matches(
    const ConfigDag& request,
    const std::vector<std::vector<std::string>>& image_histories) {
  std::vector<RankedMatch> ranked;
  for (std::size_t i = 0; i < image_histories.size(); ++i) {
    auto eval = evaluate_match(request, image_histories[i]);
    if (!eval.ok()) return eval.propagate<std::vector<RankedMatch>>();
    if (!eval.value().matches()) continue;
    ranked.push_back(RankedMatch{
        i, eval.value().satisfied_nodes.size(),
        eval.value().remaining_plan.size()});
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const RankedMatch& a, const RankedMatch& b) {
                     return a.satisfied_count > b.satisfied_count;
                   });
  return ranked;
}

}  // namespace vmp::dag
