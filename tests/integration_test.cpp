// Full-stack integration tests: client -> shop -> bidding -> plant -> PPP ->
// production line -> hypervisor -> storage, plus virtual networking and
// concurrent clients on real threads.
#include <gtest/gtest.h>

#include <filesystem>
#include <future>

#include "cluster/deployment.h"
#include "core/plant.h"
#include "core/shop.h"
#include "util/thread_pool.h"
#include "vnet/vnet_bridge.h"
#include "workload/dag_library.h"
#include "workload/request_gen.h"

namespace vmp {
namespace {

constexpr std::uint64_t kMb = 1ull << 20;

TEST(IntegrationTest, InVigoWorkspaceEndToEnd) {
  cluster::DeploymentConfig config;
  config.plant_count = 2;
  cluster::SimulatedDeployment deployment(config);
  ASSERT_TRUE(workload::publish_paper_goldens(&deployment.warehouse()).ok());

  // The Figure 3 flow: a user asks the In-VIGO portal for a workspace.
  core::CreateRequest request = workload::workspace_request(64, 0, "ufl.edu");
  auto ad = deployment.shop().create(request);
  ASSERT_TRUE(ad.ok()) << ad.error().to_string();

  // Paper-visible classad contents: VMID + access information.
  const std::string vm_id = ad.value().get_string(core::attrs::kVmId).value();
  EXPECT_FALSE(vm_id.empty());
  EXPECT_EQ(ad.value().get_string(core::attrs::kIp).value(), "10.64.0.2");
  EXPECT_EQ(ad.value().get_string(core::attrs::kOs).value(),
            "linux-mandrake-8.1");
  EXPECT_EQ(ad.value().get_integer(core::attrs::kActionsSatisfied).value(), 3);

  // The VM is queryable and destroyable through the shop.
  EXPECT_TRUE(deployment.shop().query(vm_id).ok());
  EXPECT_TRUE(deployment.shop().destroy(vm_id).ok());
  EXPECT_FALSE(deployment.shop().query(vm_id).ok());
}

TEST(IntegrationTest, CloneConfigurationIsolatedFromGolden) {
  cluster::DeploymentConfig config;
  config.plant_count = 1;
  cluster::SimulatedDeployment deployment(config);
  ASSERT_TRUE(workload::publish_paper_goldens(&deployment.warehouse()).ok());

  auto a = deployment.shop().create(workload::workspace_request(32, 0, "d"));
  auto b = deployment.shop().create(workload::workspace_request(32, 1, "d"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  // Two clones of the same golden hold independent guest state.
  const auto* vm_a = deployment.plant(0).hypervisor().find(
      a.value().get_string(core::attrs::kVmId).value());
  const auto* vm_b = deployment.plant(0).hypervisor().find(
      b.value().get_string(core::attrs::kVmId).value());
  ASSERT_NE(vm_a, nullptr);
  ASSERT_NE(vm_b, nullptr);
  EXPECT_TRUE(vm_a->guest.users.count("user0"));
  EXPECT_FALSE(vm_a->guest.users.count("user1"));
  EXPECT_TRUE(vm_b->guest.users.count("user1"));
  EXPECT_NE(vm_a->guest.ip, vm_b->guest.ip);

  // The golden image's guest state is untouched.
  auto golden = deployment.warehouse().lookup("golden-32mb");
  ASSERT_TRUE(golden.ok());
  EXPECT_TRUE(golden.value().guest.users.empty());
}

TEST(IntegrationTest, WarehousePublishFromConfiguredVm) {
  // The paper's "VM installers publish customized images" flow: create a
  // VM, customize it beyond the golden state, suspend, publish, and then
  // instantiate the published image for another request.
  cluster::DeploymentConfig config;
  config.plant_count = 1;
  cluster::SimulatedDeployment deployment(config);
  ASSERT_TRUE(workload::publish_paper_goldens(&deployment.warehouse()).ok());

  core::CreateRequest request = workload::workspace_request(64, 0, "d");
  dag::Action extra("X", "install-package");
  extra.set_param("package", "matlab-6.5");
  ASSERT_TRUE(request.config.add_action(extra).ok());
  ASSERT_TRUE(request.config.add_edge("I", "X").ok());

  auto ad = deployment.plant(0).create(request);
  ASSERT_TRUE(ad.ok()) << ad.error().to_string();
  const std::string vm_id = ad.value().get_string(core::attrs::kVmId).value();

  // Suspend and publish the configured machine as a new golden.
  auto& hypervisor = deployment.plant(0).hypervisor();
  ASSERT_TRUE(hypervisor.suspend_vm(vm_id).ok());
  const hv::VmInstance* vm = hypervisor.find(vm_id);
  std::vector<std::string> performed;
  const auto topo_order = request.config.topological_sort().value();
  for (const std::string& id : topo_order) {
    performed.push_back(request.config.action(id)->signature());
  }
  auto published = deployment.warehouse().publish_new(
      "golden-matlab", "vmware-gsx", vm->spec, vm->guest, performed);
  ASSERT_TRUE(published.ok()) << published.error().to_string();

  // A new request wanting exactly this environment is satisfied fully from
  // cache: zero remaining configuration actions.
  core::ProductionProcessPlanner ppp(&deployment.warehouse());
  auto plan = ppp.plan(request);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().golden.id, "golden-matlab");
  EXPECT_TRUE(plan.value().remaining_plan.empty());
}

TEST(IntegrationTest, VnetBridgesCreatedVmToClientDomain) {
  // Create a VM, then wire its host-only network to a client home network
  // through VNET server/proxy and verify layer-2 reachability.
  cluster::DeploymentConfig config;
  config.plant_count = 1;
  cluster::SimulatedDeployment deployment(config);
  ASSERT_TRUE(workload::publish_paper_goldens(&deployment.warehouse()).ok());

  auto ad = deployment.shop().create(workload::workspace_request(32, 0, "ufl.edu"));
  ASSERT_TRUE(ad.ok());
  const std::string network =
      ad.value().get_string(core::attrs::kNetwork).value();
  const std::string vm_mac_text =
      ad.value().get_string(core::attrs::kMac).value();
  auto vm_mac = vnet::MacAddress::parse(vm_mac_text);
  ASSERT_TRUE(vm_mac.ok()) << vm_mac_text;

  auto sw = deployment.plant(0).allocator().switch_for(network);
  ASSERT_TRUE(sw.ok());

  // Attach the VM's NIC (the guest's MAC) to its host-only network.
  std::vector<vnet::EthernetFrame> vm_rx;
  const auto vm_port = sw.value()->attach(
      [&](const vnet::EthernetFrame& f) { vm_rx.push_back(f); });

  // Client side: home LAN + proxy; plant side: VNET server; one tunnel.
  vnet::HostOnlySwitch home("ufl-lan");
  std::vector<vnet::EthernetFrame> client_rx;
  const vnet::MacAddress client_mac = vnet::MacAddress::from_index(999);
  const auto client_port = home.attach(
      [&](const vnet::EthernetFrame& f) { client_rx.push_back(f); });

  vnet::VnetServer server("vnet-plant0", sw.value());
  vnet::VnetProxy proxy("proxy-ufl", &home);
  vnet::Tunnel tunnel("t", {"gateway", "ssh:4096"});
  ASSERT_TRUE(server.connect(&tunnel).ok());
  ASSERT_TRUE(proxy.connect(&tunnel).ok());
  tunnel.bind(&server, &proxy);

  // VM -> client.
  vnet::EthernetFrame out;
  out.src = vm_mac.value();
  out.dst = client_mac;
  out.payload = "vnc-handshake";
  ASSERT_TRUE(sw.value()->inject(vm_port, out).ok());
  ASSERT_EQ(client_rx.size(), 1u);
  EXPECT_EQ(client_rx[0].payload, "vnc-handshake");

  // Client -> VM (MACs learned from the first exchange).
  vnet::EthernetFrame back;
  back.src = client_mac;
  back.dst = vm_mac.value();
  back.payload = "vnc-reply";
  ASSERT_TRUE(home.inject(client_port, back).ok());
  ASSERT_EQ(vm_rx.size(), 1u);
  EXPECT_EQ(vm_rx[0].payload, "vnc-reply");
}

TEST(IntegrationTest, ConcurrentClientsOnRealThreads) {
  // Thread-safety of shop/plant/warehouse/allocator under concurrent
  // clients (the real-backend path, not the DES).
  cluster::DeploymentConfig config;
  config.plant_count = 4;
  config.max_vms_per_plant = 32;
  cluster::SimulatedDeployment deployment(config);
  ASSERT_TRUE(workload::publish_paper_goldens(&deployment.warehouse()).ok());

  util::ThreadPool pool(8);
  std::vector<std::future<bool>> results;
  for (int i = 0; i < 32; ++i) {
    results.push_back(pool.submit([&deployment, i] {
      auto ad = deployment.shop().create(
          workload::workspace_request(32, i, "domain" + std::to_string(i % 4)));
      if (!ad.ok()) return false;
      const auto vm_id = ad.value().get_string(core::attrs::kVmId);
      return vm_id.has_value() &&
             deployment.shop().query(*vm_id).ok();
    }));
  }
  int successes = 0;
  for (auto& f : results) successes += f.get();
  EXPECT_EQ(successes, 32);

  std::size_t total_vms = 0;
  for (std::size_t i = 0; i < deployment.plant_count(); ++i) {
    total_vms += deployment.plant(i).active_vms();
  }
  EXPECT_EQ(total_vms, 32u);
}

TEST(IntegrationTest, ShopSurvivesPlantCrash) {
  // A plant dies mid-deployment; queries for its VMs fail but the shop
  // keeps serving creations on surviving plants.
  std::filesystem::path root =
      std::filesystem::temp_directory_path() /
      ("vmp-integration-crash-" + std::to_string(::getpid()));
  std::filesystem::remove_all(root);
  {
    storage::ArtifactStore store(root);
    warehouse::Warehouse warehouse(&store, "warehouse");
    ASSERT_TRUE(workload::publish_paper_goldens(&warehouse).ok());
    net::MessageBus bus;
    net::ServiceRegistry registry;

    core::PlantConfig pc0;
    pc0.name = "plant0";
    core::VmPlant plant0(pc0, &store, &warehouse);
    ASSERT_TRUE(plant0.attach_to_bus(&bus, &registry).ok());
    core::PlantConfig pc1;
    pc1.name = "plant1";
    core::VmPlant plant1(pc1, &store, &warehouse);
    ASSERT_TRUE(plant1.attach_to_bus(&bus, &registry).ok());

    core::VmShop shop(core::ShopConfig{}, &bus, &registry);
    ASSERT_TRUE(shop.attach_to_bus().ok());

    auto first = shop.create(workload::workspace_request(32, 0, "d"));
    ASSERT_TRUE(first.ok());

    // Crash plant0 (down + withdrawn, like a host failure).
    bus.set_down("plant0", true);
    registry.withdraw("plant0");

    auto second = shop.create(workload::workspace_request(32, 1, "d2"));
    ASSERT_TRUE(second.ok()) << second.error().to_string();
    EXPECT_EQ(second.value().get_string(core::attrs::kPlant).value(),
              "plant1");
  }
  std::filesystem::remove_all(root);
}

TEST(IntegrationTest, GoldenSizesProduceDistinctCloneCosts) {
  cluster::DeploymentConfig config;
  config.plant_count = 2;
  cluster::SimulatedDeployment deployment(config);
  ASSERT_TRUE(workload::publish_paper_goldens(&deployment.warehouse()).ok());

  auto s32 = deployment.run_request(workload::workspace_request(32, 0, "d"));
  auto s256 = deployment.run_request(workload::workspace_request(256, 1, "d"));
  ASSERT_TRUE(s32.ok());
  ASSERT_TRUE(s256.ok());
  // The memory-state copy dominates: 256 MB clones are several times
  // slower than 32 MB ones (paper Figures 4/5).
  EXPECT_GT(s256.value().timing.clone_sec,
            2.5 * s32.value().timing.clone_sec);
  EXPECT_EQ(s32.value().memory_bytes, 32 * kMb);
  EXPECT_EQ(s256.value().memory_bytes, 256 * kMb);
}

}  // namespace
}  // namespace vmp
