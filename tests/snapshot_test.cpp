// Whole-simulation snapshot/restore (core/snapshot.h): a populated
// warehouse + lifecycle ledger + information system saved to one binary
// frame and reinstated into fresh subsystems must equal the live state —
// including what warm_start() alone cannot recover (hit counts, use order,
// the GDSF aging clock) — plus the committed snapshot fixture, the
// deployment-level helpers over a binary bus, and the snapshot decoder's
// robustness sweep.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>

#include "cluster/deployment.h"
#include "core/snapshot.h"
#include "net/codec.h"
#include "wire_fixtures.h"
#include "workload/request_gen.h"

namespace vmp {
namespace {

namespace fs = std::filesystem;

warehouse::GoldenImage small_image(const std::string& id) {
  warehouse::GoldenImage image;
  image.id = id;
  image.backend = "vmware-gsx";
  image.spec.os = "linux";
  image.spec.memory_bytes = 1ull << 20;
  image.spec.suspended = true;
  image.spec.disk = {"disk0", 4ull << 20, 2, storage::DiskMode::kNonPersistent};
  image.guest.os = "linux";
  image.performed = {"installos:linux", "sig:" + id};
  return image;
}

void expect_stats_eq(const std::vector<lifecycle::ImageStats>& a,
                     const std::vector<lifecycle::ImageStats>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].physical_bytes, b[i].physical_bytes) << a[i].id;
    EXPECT_EQ(a[i].files, b[i].files) << a[i].id;
    EXPECT_EQ(a[i].hits, b[i].hits) << a[i].id;
    EXPECT_EQ(a[i].last_use_tick, b[i].last_use_tick) << a[i].id;
    EXPECT_EQ(a[i].leases, b[i].leases) << a[i].id;
    EXPECT_EQ(a[i].rebuild_cost_s, b[i].rebuild_cost_s) << a[i].id;
    EXPECT_EQ(a[i].pinned, b[i].pinned) << a[i].id;
    EXPECT_EQ(a[i].zombie, b[i].zombie) << a[i].id;
  }
}

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sandbox_ = fs::temp_directory_path() /
               ("vmp-snapshot-test-" + std::to_string(::getpid()));
    fs::remove_all(sandbox_);
    fs::create_directories(sandbox_);
  }
  void TearDown() override { fs::remove_all(sandbox_); }

  fs::path sandbox_;
};

TEST_F(SnapshotTest, RoundTripEqualsLiveStateAndBeatsWarmStart) {
  storage::ArtifactStore store(sandbox_);
  warehouse::Warehouse wh(&store, "warehouse");
  lifecycle::LifecycleManager::Config cfg;
  cfg.policy = "gdsf";
  auto mgr = lifecycle::LifecycleManager::create(&wh, cfg);
  ASSERT_TRUE(mgr.ok());
  lifecycle::LifecycleManager& live = *mgr.value();

  // Populate: three images, distinct usage histories.
  for (const char* id : {"img-a", "img-b", "img-c"}) {
    ASSERT_TRUE(live.publish(small_image(id)).ok()) << id;
  }
  ASSERT_TRUE(live.acquire("img-a").ok());
  live.release("img-a");
  ASSERT_TRUE(live.acquire("img-a").ok());
  live.release("img-a");
  ASSERT_TRUE(live.acquire("img-b").ok());  // lease held across the snapshot
  ASSERT_TRUE(live.pin("img-c", true).ok());
  // One eviction advances the GDSF aging clock past zero.
  ASSERT_TRUE(live.evict("img-a").ok());
  ASSERT_GT(live.policy_clock(), 0.0);
  ASSERT_EQ(wh.size(), 2u);

  core::VmInformationSystem info;
  info.store("vm-0001", testing::wire_fixture_classad());
  classad::ClassAd second;
  second.set_string("Name", "vm-0002");
  info.store("vm-0002", second);

  core::SnapshotParticipants source{&wh, &live, &info};
  auto frame = core::save_snapshot(source, {{"experiment", "round-trip"}});
  ASSERT_TRUE(frame.ok()) << frame.error().to_string();

  // Restore into FRESH subsystems over the same store.
  warehouse::Warehouse wh2(&store, "warehouse");
  auto mgr2 = lifecycle::LifecycleManager::create(&wh2, cfg);
  ASSERT_TRUE(mgr2.ok());
  core::VmInformationSystem info2;
  core::SnapshotParticipants target{&wh2, mgr2.value().get(), &info2};
  ASSERT_TRUE(core::load_snapshot(frame.value(), target).ok());

  // Index equality, by rendered descriptor (covers every field).
  const auto live_images = wh.list();
  const auto restored_images = wh2.list();
  ASSERT_EQ(live_images.size(), restored_images.size());
  for (std::size_t i = 0; i < live_images.size(); ++i) {
    EXPECT_EQ(warehouse::render_descriptor(live_images[i]),
              warehouse::render_descriptor(restored_images[i]));
  }

  // Ledger equality: footprints, hits, use order, leases, pin flags.
  expect_stats_eq(live.stats(), mgr2.value()->stats());
  EXPECT_EQ(live.used_bytes(), mgr2.value()->used_bytes());
  EXPECT_EQ(live.zombie_count(), mgr2.value()->zombie_count());
  // The GDSF aging clock survives exactly.
  EXPECT_EQ(live.policy_clock(), mgr2.value()->policy_clock());

  // Information-system classads survive.
  EXPECT_EQ(info2.size(), 2u);
  ASSERT_TRUE(info2.query("vm-0002").ok());
  EXPECT_EQ(info2.query("vm-0002").value().get_string("Name"),
            info.query("vm-0002").value().get_string("Name"));

  // warm_start() truth: the index and footprints agree with a disk rescan...
  warehouse::Warehouse wh3(&store, "warehouse");
  auto mgr3 = lifecycle::LifecycleManager::create(&wh3, cfg);
  ASSERT_TRUE(mgr3.ok());
  ASSERT_TRUE(mgr3.value()->warm_start().ok());
  EXPECT_EQ(wh3.size(), wh2.size());
  EXPECT_EQ(mgr3.value()->used_bytes(), mgr2.value()->used_bytes());
  // ...but the snapshot keeps usage history a journal-less warm start
  // cannot: img-b's hit survives restore, warm_start sees it cold.
  auto hits_of = [](const std::vector<lifecycle::ImageStats>& stats,
                    const std::string& id) -> std::uint64_t {
    for (const auto& s : stats) {
      if (s.id == id) return s.hits;
    }
    return ~0ull;
  };
  EXPECT_EQ(hits_of(mgr2.value()->stats(), "img-b"), 1u);
  EXPECT_EQ(hits_of(mgr3.value()->stats(), "img-b"), 0u);
}

TEST_F(SnapshotTest, RestoreRefusesPolicyMismatch) {
  storage::ArtifactStore store(sandbox_);
  warehouse::Warehouse wh(&store, "warehouse");
  lifecycle::LifecycleManager::Config gdsf;
  gdsf.policy = "gdsf";
  auto mgr = lifecycle::LifecycleManager::create(&wh, gdsf);
  ASSERT_TRUE(mgr.ok());
  ASSERT_TRUE(mgr.value()->publish(small_image("img-a")).ok());
  auto frame = core::save_snapshot({&wh, mgr.value().get(), nullptr});
  ASSERT_TRUE(frame.ok());

  lifecycle::LifecycleManager::Config lru;
  lru.policy = "lru";
  auto lru_mgr = lifecycle::LifecycleManager::create(&wh, lru);
  ASSERT_TRUE(lru_mgr.ok());
  auto restored =
      core::load_snapshot(frame.value(), {&wh, lru_mgr.value().get(), nullptr});
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.error().code(), util::ErrorCode::kInvalidArgument);
}

TEST_F(SnapshotTest, RestoreRefusesWarehouseRootMismatch) {
  storage::ArtifactStore store(sandbox_);
  warehouse::Warehouse wh(&store, "warehouse");
  auto frame = core::save_snapshot({&wh, nullptr, nullptr});
  ASSERT_TRUE(frame.ok());
  warehouse::Warehouse other(&store, "otherhouse");
  auto restored = core::load_snapshot(frame.value(), {&other, nullptr, nullptr});
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.error().code(), util::ErrorCode::kInvalidArgument);
}

TEST(SnapshotCodecTest, PureEncodeDecodeRoundTrip) {
  const core::SnapshotData original = testing::wire_fixture_snapshot();
  auto decoded = core::decode_snapshot(core::encode_snapshot(original));
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  const core::SnapshotData& got = decoded.value();
  EXPECT_EQ(got.warehouse_base_dir, original.warehouse_base_dir);
  ASSERT_EQ(got.images.size(), original.images.size());
  EXPECT_EQ(warehouse::render_descriptor(got.images[0]),
            warehouse::render_descriptor(original.images[0]));
  ASSERT_TRUE(got.has_ledger);
  EXPECT_EQ(got.ledger.policy, original.ledger.policy);
  EXPECT_EQ(got.ledger.policy_clock, original.ledger.policy_clock);
  EXPECT_EQ(got.ledger.used_bytes, original.ledger.used_bytes);
  EXPECT_EQ(got.ledger.tick, original.ledger.tick);
  ASSERT_EQ(got.ledger.entries.size(), original.ledger.entries.size());
  EXPECT_EQ(got.ledger.entries[0].hits, original.ledger.entries[0].hits);
  EXPECT_EQ(got.ledger.entries[0].rebuild_cost_s,
            original.ledger.entries[0].rebuild_cost_s);
  ASSERT_TRUE(got.has_ads);
  ASSERT_EQ(got.ads.size(), 1u);
  EXPECT_EQ(got.ads[0].first, "vm-0001");
  EXPECT_EQ(got.meta, original.meta);
}

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(VMP_WIRE_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(SnapshotCodecTest, DecodesCommittedFixtureByteForByte) {
  const std::string frame = read_fixture("v1-snapshot.bin");
  ASSERT_FALSE(frame.empty());
  auto decoded = core::decode_snapshot(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(decoded.value().warehouse_base_dir, "warehouse");
  EXPECT_EQ(decoded.value().meta.at("fixture"), "wire-v1");
  // The current encoder must still produce the committed v1 bytes; see
  // codec_test's wire-compat contract note.
  EXPECT_EQ(frame, core::encode_snapshot(testing::wire_fixture_snapshot()));
}

TEST(SnapshotCodecTest, RobustnessSweepFailsCleanly) {
  const std::string frame =
      core::encode_snapshot(testing::wire_fixture_snapshot());
  for (std::size_t len = 0; len < frame.size(); ++len) {
    EXPECT_FALSE(core::decode_snapshot(frame.substr(0, len)).ok())
        << "snapshot truncated to " << len << " bytes was accepted";
  }
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = frame;
      flipped[byte] ^= static_cast<char>(1 << bit);
      EXPECT_FALSE(core::decode_snapshot(flipped).ok())
          << "snapshot with bit " << bit << " of byte " << byte
          << " flipped was accepted";
    }
  }
}

TEST(DeploymentSnapshotTest, BinaryBusDeploymentSavesAndRestores) {
  cluster::DeploymentConfig dc;
  dc.plant_count = 1;
  dc.wire_format = net::WireFormat::kBinary;
  cluster::SimulatedDeployment site(dc);
  ASSERT_EQ(site.bus().wire_format(), net::WireFormat::kBinary);
  ASSERT_TRUE(workload::publish_paper_goldens(&site.warehouse(), {32}).ok());

  // One creation through the REAL stack (shop -> bid -> plant -> PPP ->
  // production line) with every hop on the binary wire.
  const auto samples = site.run_sequence(
      workload::workspace_requests(32, 1, "codec.test"), true);
  ASSERT_EQ(samples.size(), 1u);
  ASSERT_EQ(site.creations(), 1u);

  auto frame = site.save_snapshot();
  ASSERT_TRUE(frame.ok()) << frame.error().to_string();

  // Lose the index entry (detach keeps the artefact tree on disk, like a
  // restarted shop would find it) and reinstate it from the snapshot.
  const std::string golden_id = site.warehouse().list()[0].id;
  ASSERT_TRUE(site.warehouse().detach(golden_id).ok());
  ASSERT_FALSE(site.warehouse().contains(golden_id));
  ASSERT_TRUE(site.load_snapshot(frame.value()).ok());
  ASSERT_TRUE(site.warehouse().contains(golden_id));
  EXPECT_EQ(site.creations(), 1u);

  // The restored index serves creations again, still over the binary bus.
  const auto more = site.run_sequence(
      workload::workspace_requests(32, 1, "codec.test2"), true);
  EXPECT_EQ(more.size(), 1u);
}

}  // namespace
}  // namespace vmp
