#include "obs/slo.h"

#include <algorithm>
#include <cmath>

namespace vmp::obs {

TimeSeriesRing::TimeSeriesRing(std::size_t buckets, double bucket_width_s)
    : buckets_(std::max<std::size_t>(1, buckets)),
      width_(bucket_width_s > 0.0 ? bucket_width_s : 1.0) {}

std::int64_t TimeSeriesRing::epoch_of(double t) const {
  return static_cast<std::int64_t>(std::floor(t / width_));
}

void TimeSeriesRing::add(double t, double value) {
  const std::int64_t epoch = epoch_of(t);
  if (newest_epoch_ >= 0 &&
      epoch <= newest_epoch_ - static_cast<std::int64_t>(capacity())) {
    return;  // older than anything the ring still holds
  }
  Bucket& b = buckets_[static_cast<std::size_t>(
      ((epoch % static_cast<std::int64_t>(capacity())) +
       static_cast<std::int64_t>(capacity())) %
      static_cast<std::int64_t>(capacity()))];
  if (b.epoch != epoch) {
    b.epoch = epoch;
    b.sum = 0.0;
    b.samples = 0;
  }
  b.sum += value;
  ++b.samples;
  newest_epoch_ = std::max(newest_epoch_, epoch);
}

double TimeSeriesRing::sum_over(double t_now, double window_s) const {
  const std::int64_t e_now = epoch_of(t_now);
  const std::int64_t e_min = epoch_of(t_now - window_s) + 1;
  double sum = 0.0;
  for (const Bucket& b : buckets_) {
    if (b.epoch >= e_min && b.epoch <= e_now) sum += b.sum;
  }
  return sum;
}

std::uint64_t TimeSeriesRing::samples_over(double t_now,
                                           double window_s) const {
  const std::int64_t e_now = epoch_of(t_now);
  const std::int64_t e_min = epoch_of(t_now - window_s) + 1;
  std::uint64_t samples = 0;
  for (const Bucket& b : buckets_) {
    if (b.epoch >= e_min && b.epoch <= e_now) samples += b.samples;
  }
  return samples;
}

double TimeSeriesRing::rate_per_s(double t_now, double window_s) const {
  if (window_s <= 0.0) return 0.0;
  return sum_over(t_now, window_s) / window_s;
}

SloTracker::SloTracker(SloPolicy policy, std::size_t ring_buckets,
                       double bucket_width_s)
    : policy_(policy),
      good_(ring_buckets, bucket_width_s),
      bad_(ring_buckets, bucket_width_s) {}

void SloTracker::observe(double now, std::uint64_t good_delta,
                         std::uint64_t bad_delta) {
  if (good_delta > 0) good_.add(now, static_cast<double>(good_delta));
  if (bad_delta > 0) bad_.add(now, static_cast<double>(bad_delta));
}

double SloTracker::burn_rate(double now, double window_s) const {
  const double good = good_.sum_over(now, window_s);
  const double bad = bad_.sum_over(now, window_s);
  const double total = good + bad;
  if (total <= 0.0 || policy_.error_budget <= 0.0) return 0.0;
  return (bad / total) / policy_.error_budget;
}

double SloTracker::short_burn(double now) const {
  return burn_rate(now, policy_.short_window_s);
}

double SloTracker::long_burn(double now) const {
  return burn_rate(now, policy_.long_window_s);
}

double SloTracker::health(double now,
                          std::optional<double> sli_quantile_s) const {
  double h = 1.0;
  // Budget term: both windows must burn (multi-window AND), so a stale
  // long-window incident cannot depress health forever once the short
  // window is clean, and a single blip in the short window is filtered by
  // the long one.
  const double burn = std::min(short_burn(now), long_burn(now));
  if (burn > 1.0 && policy_.fast_burn > 1.0) {
    h *= std::clamp(1.0 - (burn - 1.0) / (policy_.fast_burn - 1.0), 0.0, 1.0);
  }
  // Latency term: the SLI quantile against the objective.
  if (sli_quantile_s.has_value() && policy_.latency_objective_s > 0.0 &&
      *sli_quantile_s > policy_.latency_objective_s &&
      policy_.latency_degraded_factor > 1.0) {
    const double overshoot = *sli_quantile_s / policy_.latency_objective_s;
    h *= std::clamp(
        1.0 - (overshoot - 1.0) / (policy_.latency_degraded_factor - 1.0),
        0.0, 1.0);
  }
  return h;
}

}  // namespace vmp::obs
