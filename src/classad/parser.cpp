// Recursive-descent parser for classad expressions and ads.
#include <cctype>
#include <memory>

#include "classad/classad.h"
#include "util/strings.h"

namespace vmp::classad {

using util::Error;
using util::ErrorCode;
using util::Result;

namespace {

struct Token {
  enum class Kind {
    kEnd, kInteger, kReal, kString, kIdentifier,
    kLParen, kRParen, kLBracket, kRBracket,
    kComma, kSemicolon, kAssign, kDot,
    kOr, kAnd, kNot,
    kEq, kNe, kLt, kLe, kGt, kGe,
    kPlus, kMinus, kStar, kSlash, kPercent,
  };
  Kind kind = Kind::kEnd;
  std::string text;
  std::int64_t int_value = 0;
  double real_value = 0.0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Result<Token> next() {
    skip_ws();
    Token t;
    if (pos_ >= input_.size()) return t;

    const char c = input_[pos_];
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && pos_ + 1 < input_.size() &&
         std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])))) {
      return lex_number();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return lex_identifier();
    }
    if (c == '"') return lex_string();

    ++pos_;
    switch (c) {
      case '(': t.kind = Token::Kind::kLParen; return t;
      case ')': t.kind = Token::Kind::kRParen; return t;
      case '[': t.kind = Token::Kind::kLBracket; return t;
      case ']': t.kind = Token::Kind::kRBracket; return t;
      case ',': t.kind = Token::Kind::kComma; return t;
      case ';': t.kind = Token::Kind::kSemicolon; return t;
      case '.': t.kind = Token::Kind::kDot; return t;
      case '+': t.kind = Token::Kind::kPlus; return t;
      case '-': t.kind = Token::Kind::kMinus; return t;
      case '*': t.kind = Token::Kind::kStar; return t;
      case '/': t.kind = Token::Kind::kSlash; return t;
      case '%': t.kind = Token::Kind::kPercent; return t;
      case '|':
        if (take('|')) { t.kind = Token::Kind::kOr; return t; }
        return err("expected '||'");
      case '&':
        if (take('&')) { t.kind = Token::Kind::kAnd; return t; }
        return err("expected '&&'");
      case '!':
        t.kind = take('=') ? Token::Kind::kNe : Token::Kind::kNot;
        return t;
      case '=':
        if (take('=')) { t.kind = Token::Kind::kEq; return t; }
        t.kind = Token::Kind::kAssign;
        return t;
      case '<':
        t.kind = take('=') ? Token::Kind::kLe : Token::Kind::kLt;
        return t;
      case '>':
        t.kind = take('=') ? Token::Kind::kGe : Token::Kind::kGt;
        return t;
      default:
        return err(std::string("unexpected character '") + c + "'");
    }
  }

  std::size_t pos() const { return pos_; }

 private:
  Result<Token> err(const std::string& message) const {
    return Result<Token>(Error(
        ErrorCode::kParseError,
        "classad: " + message + " at offset " + std::to_string(pos_)));
  }

  bool take(char expected) {
    if (pos_ < input_.size() && input_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < input_.size()) {
      const char c = input_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {  // comment to end of line
        while (pos_ < input_.size() && input_[pos_] != '\n') ++pos_;
      } else {
        return;
      }
    }
  }

  Result<Token> lex_number() {
    const std::size_t start = pos_;
    bool is_real = false;
    while (pos_ < input_.size()) {
      const char c = input_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' && !is_real) {
        is_real = true;
        ++pos_;
      } else if ((c == 'e' || c == 'E') && pos_ > start) {
        is_real = true;
        ++pos_;
        if (pos_ < input_.size() && (input_[pos_] == '+' || input_[pos_] == '-')) {
          ++pos_;
        }
      } else {
        break;
      }
    }
    const std::string text(input_.substr(start, pos_ - start));
    Token t;
    if (is_real) {
      t.kind = Token::Kind::kReal;
      if (!util::parse_double(text, &t.real_value)) return err("bad real literal");
    } else {
      t.kind = Token::Kind::kInteger;
      long long v;
      if (!util::parse_int64(text, &v)) return err("bad integer literal");
      t.int_value = v;
    }
    return t;
  }

  Result<Token> lex_identifier() {
    const std::size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '_')) {
      ++pos_;
    }
    Token t;
    t.kind = Token::Kind::kIdentifier;
    t.text = std::string(input_.substr(start, pos_ - start));
    return t;
  }

  Result<Token> lex_string() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < input_.size()) {
      const char c = input_[pos_++];
      if (c == '"') {
        Token t;
        t.kind = Token::Kind::kString;
        t.text = std::move(out);
        return t;
      }
      if (c == '\\' && pos_ < input_.size()) {
        const char esc = input_[pos_++];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case '\\': out += '\\'; break;
          case '"': out += '"'; break;
          default: out += esc;
        }
      } else {
        out += c;
      }
    }
    return err("unterminated string literal");
  }

  std::string_view input_;
  std::size_t pos_ = 0;
};

// Error-propagation helpers for the recursive-descent parser; they keep the
// advance-and-check noise out of every production.
#define VMP_EXPR_ADVANCE()                          \
  do {                                              \
    auto adv = advance();                           \
    if (!adv.ok()) return adv.propagate<ExprPtr>(); \
  } while (false)
#define VMP_EXPR_ADVANCE_AD()                       \
  do {                                              \
    auto adv = advance();                           \
    if (!adv.ok()) return adv.propagate<ClassAd>(); \
  } while (false)

class ExprParser {
 public:
  explicit ExprParser(std::string_view input) : lexer_(input) {}

  Result<ExprPtr> parse_full_expression() {
    VMP_EXPR_ADVANCE();
    auto e = parse_or();
    if (!e.ok()) return e;
    if (current_.kind != Token::Kind::kEnd) {
      return fail("trailing tokens after expression");
    }
    return e;
  }

  Result<ClassAd> parse_ad() {
    VMP_EXPR_ADVANCE_AD();
    ClassAd ad;
    const bool bracketed = current_.kind == Token::Kind::kLBracket;
    if (bracketed) {
      auto adv = advance();
      if (!adv.ok()) return adv.propagate<ClassAd>();
    }
    while (true) {
      if (bracketed && current_.kind == Token::Kind::kRBracket) {
        auto adv = advance();
        if (!adv.ok()) return adv.propagate<ClassAd>();
        break;
      }
      if (current_.kind == Token::Kind::kEnd) {
        if (bracketed) {
          return Result<ClassAd>(Error(ErrorCode::kParseError,
                                       "classad: missing closing ']'"));
        }
        break;
      }
      if (current_.kind != Token::Kind::kIdentifier) {
        return Result<ClassAd>(Error(ErrorCode::kParseError,
                                     "classad: expected attribute name"));
      }
      const std::string name = current_.text;
      auto adv = advance();
      if (!adv.ok()) return adv.propagate<ClassAd>();
      if (current_.kind != Token::Kind::kAssign) {
        return Result<ClassAd>(Error(ErrorCode::kParseError,
                                     "classad: expected '=' after " + name));
      }
      adv = advance();
      if (!adv.ok()) return adv.propagate<ClassAd>();
      auto expr = parse_or();
      if (!expr.ok()) return expr.propagate<ClassAd>();
      ad.set(name, std::move(expr).value());
      // Optional separator.
      if (current_.kind == Token::Kind::kSemicolon) {
        adv = advance();
        if (!adv.ok()) return adv.propagate<ClassAd>();
      }
    }
    if (current_.kind != Token::Kind::kEnd) {
      return Result<ClassAd>(
          Error(ErrorCode::kParseError, "classad: trailing tokens after ad"));
    }
    return ad;
  }

 private:
  Result<ExprPtr> fail(const std::string& message) const {
    return Result<ExprPtr>(Error(ErrorCode::kParseError, "classad: " + message));
  }

  util::Status advance() {
    auto t = lexer_.next();
    if (!t.ok()) return t.error();
    current_ = std::move(t).value();
    return util::Status();
  }

  bool accept(Token::Kind kind) {
    return current_.kind == kind;
  }

  Result<ExprPtr> parse_or() {
    auto lhs = parse_and();
    if (!lhs.ok()) return lhs;
    while (accept(Token::Kind::kOr)) {
      VMP_EXPR_ADVANCE();
      auto rhs = parse_and();
      if (!rhs.ok()) return rhs;
      lhs = Result<ExprPtr>(std::make_unique<BinaryExpr>(
          BinaryOp::kOr, std::move(lhs).value(), std::move(rhs).value()));
    }
    return lhs;
  }

  Result<ExprPtr> parse_and() {
    auto lhs = parse_comparison();
    if (!lhs.ok()) return lhs;
    while (accept(Token::Kind::kAnd)) {
      VMP_EXPR_ADVANCE();
      auto rhs = parse_comparison();
      if (!rhs.ok()) return rhs;
      lhs = Result<ExprPtr>(std::make_unique<BinaryExpr>(
          BinaryOp::kAnd, std::move(lhs).value(), std::move(rhs).value()));
    }
    return lhs;
  }

  Result<ExprPtr> parse_comparison() {
    auto lhs = parse_additive();
    if (!lhs.ok()) return lhs;
    while (true) {
      BinaryOp op;
      if (accept(Token::Kind::kEq)) op = BinaryOp::kEq;
      else if (accept(Token::Kind::kNe)) op = BinaryOp::kNe;
      else if (accept(Token::Kind::kLt)) op = BinaryOp::kLt;
      else if (accept(Token::Kind::kLe)) op = BinaryOp::kLe;
      else if (accept(Token::Kind::kGt)) op = BinaryOp::kGt;
      else if (accept(Token::Kind::kGe)) op = BinaryOp::kGe;
      else return lhs;
      VMP_EXPR_ADVANCE();
      auto rhs = parse_additive();
      if (!rhs.ok()) return rhs;
      lhs = Result<ExprPtr>(std::make_unique<BinaryExpr>(
          op, std::move(lhs).value(), std::move(rhs).value()));
    }
  }

  Result<ExprPtr> parse_additive() {
    auto lhs = parse_multiplicative();
    if (!lhs.ok()) return lhs;
    while (true) {
      BinaryOp op;
      if (accept(Token::Kind::kPlus)) op = BinaryOp::kAdd;
      else if (accept(Token::Kind::kMinus)) op = BinaryOp::kSub;
      else return lhs;
      VMP_EXPR_ADVANCE();
      auto rhs = parse_multiplicative();
      if (!rhs.ok()) return rhs;
      lhs = Result<ExprPtr>(std::make_unique<BinaryExpr>(
          op, std::move(lhs).value(), std::move(rhs).value()));
    }
  }

  Result<ExprPtr> parse_multiplicative() {
    auto lhs = parse_unary();
    if (!lhs.ok()) return lhs;
    while (true) {
      BinaryOp op;
      if (accept(Token::Kind::kStar)) op = BinaryOp::kMul;
      else if (accept(Token::Kind::kSlash)) op = BinaryOp::kDiv;
      else if (accept(Token::Kind::kPercent)) op = BinaryOp::kMod;
      else return lhs;
      VMP_EXPR_ADVANCE();
      auto rhs = parse_unary();
      if (!rhs.ok()) return rhs;
      lhs = Result<ExprPtr>(std::make_unique<BinaryExpr>(
          op, std::move(lhs).value(), std::move(rhs).value()));
    }
  }

  Result<ExprPtr> parse_unary() {
    if (accept(Token::Kind::kNot)) {
      VMP_EXPR_ADVANCE();
      auto operand = parse_unary();
      if (!operand.ok()) return operand;
      return Result<ExprPtr>(std::make_unique<UnaryExpr>(
          UnaryOp::kNot, std::move(operand).value()));
    }
    if (accept(Token::Kind::kMinus)) {
      VMP_EXPR_ADVANCE();
      auto operand = parse_unary();
      if (!operand.ok()) return operand;
      return Result<ExprPtr>(std::make_unique<UnaryExpr>(
          UnaryOp::kNegate, std::move(operand).value()));
    }
    return parse_primary();
  }

  Result<ExprPtr> parse_primary() {
    switch (current_.kind) {
      case Token::Kind::kInteger: {
        auto e = std::make_unique<LiteralExpr>(Value::integer(current_.int_value));
        VMP_EXPR_ADVANCE();
        return Result<ExprPtr>(std::move(e));
      }
      case Token::Kind::kReal: {
        auto e = std::make_unique<LiteralExpr>(Value::real(current_.real_value));
        VMP_EXPR_ADVANCE();
        return Result<ExprPtr>(std::move(e));
      }
      case Token::Kind::kString: {
        auto e = std::make_unique<LiteralExpr>(Value::string(current_.text));
        VMP_EXPR_ADVANCE();
        return Result<ExprPtr>(std::move(e));
      }
      case Token::Kind::kLParen: {
        VMP_EXPR_ADVANCE();
        auto inner = parse_or();
        if (!inner.ok()) return inner;
        if (!accept(Token::Kind::kRParen)) return fail("expected ')'");
        VMP_EXPR_ADVANCE();
        return inner;
      }
      case Token::Kind::kIdentifier:
        return parse_identifier();
      default:
        return fail("unexpected token in expression");
    }
  }

  Result<ExprPtr> parse_identifier() {
    const std::string name = current_.text;
    VMP_EXPR_ADVANCE();

    // Keyword literals.
    if (util::iequals(name, "true")) {
      return Result<ExprPtr>(std::make_unique<LiteralExpr>(Value::boolean(true)));
    }
    if (util::iequals(name, "false")) {
      return Result<ExprPtr>(std::make_unique<LiteralExpr>(Value::boolean(false)));
    }
    if (util::iequals(name, "undefined")) {
      return Result<ExprPtr>(std::make_unique<LiteralExpr>(Value::undefined()));
    }
    if (util::iequals(name, "error")) {
      return Result<ExprPtr>(std::make_unique<LiteralExpr>(Value::error()));
    }

    // Scoped references: self.attr / other.attr.
    if ((util::iequals(name, "self") || util::iequals(name, "other")) &&
        accept(Token::Kind::kDot)) {
      VMP_EXPR_ADVANCE();
      if (current_.kind != Token::Kind::kIdentifier) {
        return fail("expected attribute after '" + name + ".'");
      }
      const std::string attr = current_.text;
      VMP_EXPR_ADVANCE();
      const auto scope = util::iequals(name, "self")
                             ? AttrRefExpr::Scope::kSelf
                             : AttrRefExpr::Scope::kOther;
      return Result<ExprPtr>(std::make_unique<AttrRefExpr>(scope, attr));
    }

    // Function call.
    if (accept(Token::Kind::kLParen)) {
      VMP_EXPR_ADVANCE();
      std::vector<ExprPtr> args;
      if (!accept(Token::Kind::kRParen)) {
        while (true) {
          auto arg = parse_or();
          if (!arg.ok()) return arg;
          args.push_back(std::move(arg).value());
          if (accept(Token::Kind::kComma)) {
            VMP_EXPR_ADVANCE();
            continue;
          }
          break;
        }
        if (!accept(Token::Kind::kRParen)) {
          return fail("expected ')' after function arguments");
        }
      }
      VMP_EXPR_ADVANCE();
      return Result<ExprPtr>(
          std::make_unique<FunctionExpr>(name, std::move(args)));
    }

    return Result<ExprPtr>(
        std::make_unique<AttrRefExpr>(AttrRefExpr::Scope::kDefault, name));
  }

#undef VMP_EXPR_ADVANCE
#undef VMP_EXPR_ADVANCE_AD

  Lexer lexer_;
  Token current_;
};

}  // namespace

Result<ExprPtr> parse_expression(const std::string& text) {
  return ExprParser(text).parse_full_expression();
}

Result<ClassAd> parse_classad(const std::string& text) {
  return ExprParser(text).parse_ad();
}

}  // namespace vmp::classad
