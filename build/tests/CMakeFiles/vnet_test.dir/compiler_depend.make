# Empty compiler generated dependencies file for vnet_test.
# This may be replaced when dependencies are built.
