// Discrete-event simulation of CONCURRENT VM creations.
//
// The paper's measurements are sequential, and §4.3 closes by noting that
// "latency-hiding optimizations such as speculative pre-creation of VMs can
// be conceived, but have not yet been investigated."  This module
// investigates exactly that: it models the shared NFS uplink as a
// processor-sharing pipe and per-plant resume serialization, and lets
// benches sweep client concurrency to show where the warehouse link
// saturates — the ablation behind bench/concurrency.
//
// Unlike SimulatedDeployment (real middleware + post-hoc attribution), this
// is a pure capacity model: requests are described by their byte/link/action
// counts, which callers typically extract from real CreationSamples.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/timing_model.h"
#include "sim/engine.h"
#include "sim/resources.h"
#include "util/random.h"

namespace vmp::cluster {

struct ConcurrentRequest {
  std::uint64_t memory_bytes = 0;
  std::uint64_t bytes_to_copy = 0;   // memory checkpoint + small artefacts
  std::uint64_t links = 0;
  std::size_t guest_actions = 0;
  std::size_t isos = 0;
  bool uml_boot = false;
};

struct ConcurrentSample {
  std::size_t index = 0;
  std::size_t plant = 0;
  double start_sec = 0.0;
  double clone_done_sec = 0.0;
  double finish_sec = 0.0;

  double clone_latency() const { return clone_done_sec - start_sec; }
  double total_latency() const { return finish_sec - start_sec; }
};

struct ConcurrentResult {
  std::vector<ConcurrentSample> samples;
  double makespan_sec = 0.0;
  double nfs_bytes_moved = 0.0;
};

class ConcurrentCreationSim {
 public:
  ConcurrentCreationSim(std::size_t plant_count, TimingConfig timing,
                        std::uint64_t seed);

  /// Run all requests with at most `max_in_flight` concurrently active
  /// creations (client-side window); plants are chosen least-loaded-first.
  ConcurrentResult run(const std::vector<ConcurrentRequest>& requests,
                       std::size_t max_in_flight);

 private:
  struct PlantState {
    std::uint64_t resident_bytes = 0;
    std::uint64_t active_vms = 0;
  };

  std::size_t pick_plant() const;

  std::size_t plant_count_;
  TimingConfig timing_;
  std::uint64_t seed_;
  std::vector<PlantState> plants_;
};

}  // namespace vmp::cluster
