// Concurrency tests for the §10 create pipeline: client storms through the
// shop, admission control, warehouse publish-during-match, and the thread
// pool's shutdown semantics.  These run under the TSan CI job
// (`ctest -L concurrency`), so every scenario here is also a data-race
// probe over the plant/warehouse/shop locking architecture.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <future>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/admission.h"
#include "core/plant.h"
#include "core/shop.h"
#include "util/thread_pool.h"
#include "workload/request_gen.h"

namespace vmp::core {
namespace {

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("vmp-conc-test-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
    store_ = std::make_unique<storage::ArtifactStore>(root_);
    warehouse_ =
        std::make_unique<warehouse::Warehouse>(store_.get(), "warehouse");
    ASSERT_TRUE(workload::publish_paper_goldens(warehouse_.get(), {32}).ok());
  }
  void TearDown() override {
    shop_.reset();
    plants_.clear();
    warehouse_.reset();
    store_.reset();
    std::filesystem::remove_all(root_);
  }

  /// Build `count` plants plus a shop over them.
  void build_fleet(std::size_t count, ShopConfig shop_config = {}) {
    for (std::size_t i = 0; i < count; ++i) {
      PlantConfig config;
      config.name = "plant" + std::to_string(i);
      plants_.push_back(
          std::make_unique<VmPlant>(config, store_.get(), warehouse_.get()));
      ASSERT_TRUE(plants_.back()->attach_to_bus(&bus_, &registry_).ok());
    }
    shop_ = std::make_unique<VmShop>(shop_config, &bus_, &registry_);
    ASSERT_TRUE(shop_->attach_to_bus().ok());
  }

  std::filesystem::path root_;
  std::unique_ptr<storage::ArtifactStore> store_;
  std::unique_ptr<warehouse::Warehouse> warehouse_;
  net::MessageBus bus_;
  net::ServiceRegistry registry_;
  std::vector<std::unique_ptr<VmPlant>> plants_;
  std::unique_ptr<VmShop> shop_;
};

// N client threads storm the shop; every creation must succeed, no VM id
// may be lost or duplicated, and the fleet's instance tables must agree
// with the shop's routing count.
TEST_F(ConcurrencyTest, CreateStormLosesNothing) {
  build_fleet(2);
  constexpr std::size_t kClients = 8;
  constexpr std::size_t kPerClient = 3;

  std::mutex ids_mutex;
  std::vector<std::string> ids;
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t k = 0; k < kPerClient; ++k) {
        const std::size_t index = c * kPerClient + k;
        auto ad = shop_->create(
            workload::workspace_request(32, index, "storm.grid"));
        if (!ad.ok()) {
          failures.fetch_add(1);
          continue;
        }
        const auto vm_id = ad.value().get_string(attrs::kVmId);
        ASSERT_TRUE(vm_id.has_value());
        std::lock_guard<std::mutex> lock(ids_mutex);
        ids.push_back(*vm_id);
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(ids.size(), kClients * kPerClient);
  EXPECT_EQ(std::set<std::string>(ids.begin(), ids.end()).size(), ids.size())
      << "duplicate VM ids handed out";
  std::size_t fleet_active = 0;
  for (const auto& plant : plants_) fleet_active += plant->active_vms();
  EXPECT_EQ(fleet_active, ids.size());
  EXPECT_EQ(shop_->creations(), ids.size());

  // Every VM is individually reachable and collectable.
  for (const std::string& id : ids) EXPECT_TRUE(shop_->destroy(id).ok());
  for (const auto& plant : plants_) {
    EXPECT_EQ(plant->active_vms(), 0u);
    EXPECT_EQ(plant->inflight_creates(), 0u);
  }
}

// The admission controller's bounded queue: occupants hold slots, waiters
// queue up to the limit, and the caller past both bounds is rejected
// immediately with kResourceExhausted — then everything drains.
TEST(AdmissionControllerTest, RejectsBeyondQueueAndDrains) {
  AdmissionController admission(AdmissionConfig{2, 1});

  auto first = admission.admit();
  auto second = admission.admit();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(admission.inflight(), 2u);

  // One waiter fits in the queue...
  std::promise<void> queued_up;
  std::thread waiter([&] {
    std::thread signal([&] {
      while (admission.queued() == 0) std::this_thread::yield();
      queued_up.set_value();
    });
    auto slot = admission.admit();  // blocks until a slot frees
    EXPECT_TRUE(slot.ok());
    signal.join();
  });
  queued_up.get_future().wait();

  // ...and the next caller is over both bounds: rejected, not blocked.
  auto rejected = admission.admit();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code(), util::ErrorCode::kResourceExhausted);
  EXPECT_EQ(admission.rejected(), 1u);

  // Freeing a slot lets the queued waiter through; its slot is returned
  // when the waiter thread finishes.
  { auto release = std::move(first); }
  waiter.join();
  EXPECT_EQ(admission.inflight(), 1u);  // only `second` remains
  { auto release = std::move(second); }
  EXPECT_EQ(admission.inflight(), 0u);
  EXPECT_EQ(admission.queued(), 0u);
}

// Shop-level admission: with one create slot and a deep queue, a storm is
// fully serialized but nothing is rejected or lost.
TEST_F(ConcurrencyTest, ShopAdmissionQueuesWithoutRejection) {
  ShopConfig config;
  config.max_inflight_creates = 1;
  config.admission_queue_limit = 16;
  build_fleet(1, config);

  constexpr std::size_t kClients = 6;
  std::atomic<std::size_t> ok{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto ad = shop_->create(workload::workspace_request(32, c, "adm.grid"));
      if (ad.ok()) ok.fetch_add(1);
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(ok.load(), kClients);
  EXPECT_EQ(shop_->admission().rejected(), 0u);
  EXPECT_EQ(shop_->admission().inflight(), 0u);
  EXPECT_EQ(shop_->admission().queued(), 0u);
  EXPECT_EQ(plants_[0]->active_vms(), kClients);
}

// Publishing new golden images while readers match and list: readers must
// never observe a half-published image (the placeholder claim), and the
// index must end complete.
TEST_F(ConcurrencyTest, WarehousePublishDuringMatchStaysConsistent) {
  constexpr std::size_t kPublishes = 8;
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> bad_reads{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const auto scan = warehouse_->match_candidates(
            "vmware-gsx", [](const warehouse::GoldenImage&) { return true; },
            ~0ull);
        for (const auto& candidate : scan.candidates) {
          if (candidate.id.empty()) bad_reads.fetch_add(1);
        }
        for (const auto& image : warehouse_->list()) {
          if (image.id.empty()) bad_reads.fetch_add(1);
        }
      }
    });
  }

  std::thread publisher([&] {
    for (std::size_t i = 0; i < kPublishes; ++i) {
      storage::MachineSpec spec;
      spec.os = "linux-mandrake-8.1";
      spec.memory_bytes = 32ull << 20;
      spec.suspended = true;
      spec.disk.name = "disk0";
      spec.disk.capacity_bytes = 2ull << 30;
      spec.disk.span_count = 4;
      spec.disk.mode = storage::DiskMode::kNonPersistent;
      auto published = warehouse_->publish_new(
          "golden-extra-" + std::to_string(i), "vmware-gsx", spec,
          hv::GuestState{}, {});
      EXPECT_TRUE(published.ok());
    }
    stop.store(true, std::memory_order_release);
  });

  publisher.join();
  for (auto& t : readers) t.join();

  EXPECT_EQ(bad_reads.load(), 0u) << "reader saw a half-published image";
  EXPECT_EQ(warehouse_->size(), 1 + kPublishes);  // paper golden + extras
  for (std::size_t i = 0; i < kPublishes; ++i) {
    EXPECT_TRUE(warehouse_->contains("golden-extra-" + std::to_string(i)));
  }
}

// submit() after shutdown has begun must not throw: the task is never run
// and its future carries ThreadPool::Stopped instead.
TEST(ThreadPoolTest, SubmitAfterShutdownReturnsFailedFuture) {
  auto pool = std::make_unique<util::ThreadPool>(1);
  util::ThreadPool* raw = pool.get();  // prober must not race the unique_ptr
  std::promise<void> release;
  auto blocked = pool->submit([&] { release.get_future().wait(); });

  // Once the destructor flips stopped(), submit from another thread and
  // only then unblock the worker (which gates destructor completion, so
  // the pool object is alive for the whole submit call).
  std::thread prober([&] {
    while (!raw->stopped()) std::this_thread::yield();
    auto late = raw->submit([] { return 42; });
    EXPECT_THROW(late.get(), util::ThreadPool::Stopped);
    release.set_value();
  });
  pool.reset();
  prober.join();
  blocked.get();
}

// wait_idle racing a storm of submits: it must neither hang nor miss the
// tasks it covers, and every submitted task eventually runs.
TEST(ThreadPoolTest, WaitIdleConcurrentWithSubmit) {
  util::ThreadPool pool(4);
  constexpr int kProducers = 4;
  constexpr int kTasksEach = 50;
  std::atomic<int> executed{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kTasksEach; ++i) {
        (void)pool.submit([&] { executed.fetch_add(1); });
        if (i % 16 == 0) pool.wait_idle();
      }
    });
  }
  std::thread idler([&] {
    for (int i = 0; i < 20; ++i) pool.wait_idle();
  });
  for (auto& t : producers) t.join();
  idler.join();
  pool.wait_idle();
  EXPECT_EQ(executed.load(), kProducers * kTasksEach);
  EXPECT_EQ(pool.pending(), 0u);
}

// Sequential creations with a fixed tie-break seed land on the same plants
// in the same order across two identically-built fleets — the concurrency
// machinery must not perturb the single-threaded deterministic path.
TEST(DeterminismTest, SequentialCreationDeterministicUnderFixedSeed) {
  const auto run_sequence = [](const std::filesystem::path& root) {
    std::filesystem::remove_all(root);
    std::vector<std::string> assignment;
    {
      storage::ArtifactStore store(root);
      warehouse::Warehouse wh(&store, "warehouse");
      EXPECT_TRUE(workload::publish_paper_goldens(&wh, {32}).ok());
      net::MessageBus bus;
      net::ServiceRegistry registry;
      std::vector<std::unique_ptr<VmPlant>> plants;
      for (std::size_t i = 0; i < 3; ++i) {
        PlantConfig config;
        config.name = "plant" + std::to_string(i);
        plants.push_back(std::make_unique<VmPlant>(config, &store, &wh));
        EXPECT_TRUE(plants.back()->attach_to_bus(&bus, &registry).ok());
      }
      ShopConfig shop_config;
      shop_config.tie_break_seed = 7;
      VmShop shop(shop_config, &bus, &registry);
      EXPECT_TRUE(shop.attach_to_bus().ok());

      for (std::size_t i = 0; i < 6; ++i) {
        auto ad = shop.create(workload::workspace_request(
            32, i, "det.grid" + std::to_string(i % 3)));
        EXPECT_TRUE(ad.ok());
        if (ad.ok()) {
          assignment.push_back(ad.value().get_string(attrs::kPlant).value());
        }
      }
    }
    std::filesystem::remove_all(root);
    return assignment;
  };

  const auto base = std::filesystem::temp_directory_path() /
                    ("vmp-conc-det-" + std::to_string(::getpid()));
  const auto first = run_sequence(base.string() + "-a");
  const auto second = run_sequence(base.string() + "-b");
  ASSERT_EQ(first.size(), 6u);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace vmp::core
