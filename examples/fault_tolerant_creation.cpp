// Fault-tolerant creation: inject a storage failure into the middle of a
// clone and watch the VMShop recover by failing over to the next-best bid.
//
// Demonstrates the fault subsystem end to end:
//   FaultPlan::parse  -> a one-shot store.write fault scoped to clone dirs
//   ScopedFaultPlan   -> arms the process-wide registry for this scenario
//   VmShop::create    -> the winning plant's clone aborts cleanly, the shop
//                        marks it failed and retries the runner-up
//   FaultRegistry     -> confirms exactly which injection fired, and where
//
// Build & run:  ./build/examples/fault_tolerant_creation
#include <cstdio>
#include <filesystem>
#include <memory>
#include <vector>

#include "core/plant.h"
#include "core/shop.h"
#include "fault/fault.h"
#include "net/bus.h"
#include "net/registry.h"
#include "storage/artifact_store.h"
#include "warehouse/warehouse.h"
#include "workload/request_gen.h"

int main() {
  using namespace vmp;

  const auto sandbox =
      std::filesystem::temp_directory_path() / "vmplants-fault-example";
  std::filesystem::remove_all(sandbox);
  storage::ArtifactStore store(sandbox);
  warehouse::Warehouse wh(&store, "warehouse");
  if (!workload::publish_paper_goldens(&wh).ok()) {
    std::fprintf(stderr, "golden publish failed\n");
    return 1;
  }

  // Two plants so the shop has a failover target.
  net::MessageBus bus;
  net::ServiceRegistry registry;
  std::vector<std::unique_ptr<core::VmPlant>> plants;
  for (int i = 0; i < 2; ++i) {
    core::PlantConfig pc;
    pc.name = "plant" + std::to_string(i);
    plants.push_back(std::make_unique<core::VmPlant>(pc, &store, &wh));
    (void)plants.back()->attach_to_bus(&bus, &registry);
  }
  core::VmShop shop(core::ShopConfig{}, &bus, &registry);
  (void)shop.attach_to_bus();

  // The fault plan: the next write under any clone directory fails once
  // with UNAVAILABLE — i.e. the winning plant's clone dies mid-copy.
  auto plan = fault::FaultPlan::parse("store.write:target=/clones/,times=1",
                                      /*seed=*/2026);
  if (!plan.ok()) {
    std::fprintf(stderr, "bad plan: %s\n", plan.error().to_string().c_str());
    return 1;
  }
  std::printf("armed fault plan: %s\n",
              plan.value().to_spec_string().c_str());
  fault::ScopedFaultPlan scoped(plan.value());

  auto ad = shop.create(workload::workspace_request(32, 0, "example.org"));
  if (!ad.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 ad.error().to_string().c_str());
    return 1;
  }

  const fault::FaultRegistry& reg = fault::FaultRegistry::instance();
  std::printf("creation survived the fault.\n");
  std::printf("  served by       : %s\n",
              ad.value().get_string(core::attrs::kPlant).value().c_str());
  std::printf("  injections fired: %s\n", reg.report().to_string().c_str());
  for (const std::string& entry : reg.sequence()) {
    std::printf("  fired at        : %s\n", entry.c_str());
  }
  std::printf("  shop failovers  : %llu, transport retries: %llu\n",
              static_cast<unsigned long long>(shop.failovers()),
              static_cast<unsigned long long>(shop.retries()));

  std::filesystem::remove_all(sandbox);
  return 0;
}
