#include "warehouse/warehouse.h"

#include "obs/metrics.h"
#include "xml/xml.h"

namespace vmp::warehouse {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

namespace {

struct WarehouseMetrics {
  obs::Counter* lookup_hits;
  obs::Counter* lookup_misses;
  obs::Counter* publishes;
  obs::Gauge* images;

  static WarehouseMetrics& get() {
    static WarehouseMetrics m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::instance();
      return WarehouseMetrics{r.counter("warehouse.lookup_hit.count"),
                              r.counter("warehouse.lookup_miss.count"),
                              r.counter("warehouse.publish.count"),
                              r.gauge("warehouse.images.gauge")};
    }();
    return m;
  }
};

/// FNV-1a 64-bit: tiny, deterministic across runs (the digests never leave
/// the process, so stability across versions does not matter).
std::uint64_t hash_signature(const std::string& signature) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : signature) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::uint64_t action_mask(const std::vector<std::string>& signatures) {
  std::uint64_t mask = 0;
  for (const std::string& sig : signatures) {
    const std::uint64_t h = hash_signature(sig);
    mask |= 1ull << (h & 63);
    mask |= 1ull << ((h >> 21) & 63);
    mask |= 1ull << ((h >> 42) & 63);
  }
  return mask;
}

std::uint64_t action_fingerprint(const std::vector<std::string>& signatures) {
  // Wrapping sum (not XOR): duplicate signatures must not cancel out, since
  // the fingerprint identifies a multiset.
  std::uint64_t fp = 0;
  for (const std::string& sig : signatures) fp += hash_signature(sig);
  return fp;
}

std::string render_descriptor(const GoldenImage& image) {
  xml::Element root("golden");
  root.set_attr("id", image.id);
  root.set_attr("backend", image.backend);

  xml::Element& machine = root.add_child("machine");
  machine.set_attr("os", image.spec.os);
  machine.set_attr("memory-bytes", std::to_string(image.spec.memory_bytes));
  machine.set_attr("suspended", image.spec.suspended ? "true" : "false");
  xml::Element& disk = machine.add_child("disk");
  disk.set_attr("name", image.spec.disk.name);
  disk.set_attr("capacity-bytes",
                std::to_string(image.spec.disk.capacity_bytes));
  disk.set_attr("span-count", std::to_string(image.spec.disk.span_count));
  disk.set_attr("mode", storage::disk_mode_name(image.spec.disk.mode));

  xml::Element& performed = root.add_child("performed");
  for (const std::string& sig : image.performed) {
    performed.add_child("action-sig").set_text(sig);
  }
  return root.to_string();
}

Result<GoldenImage> parse_descriptor(const std::string& xml_text) {
  auto doc = xml::parse(xml_text);
  if (!doc.ok()) return doc.propagate<GoldenImage>();
  const xml::Element& root = *doc.value();
  if (root.name() != "golden") {
    return Result<GoldenImage>(
        Error(ErrorCode::kParseError, "descriptor: expected <golden> root"));
  }
  GoldenImage image;
  image.id = root.attr("id");
  image.backend = root.attr("backend");
  if (image.id.empty()) {
    return Result<GoldenImage>(
        Error(ErrorCode::kParseError, "descriptor: missing id"));
  }

  const xml::Element* machine = root.child("machine");
  if (machine == nullptr) {
    return Result<GoldenImage>(
        Error(ErrorCode::kParseError, "descriptor: missing <machine>"));
  }
  image.spec.os = machine->attr("os");
  image.spec.memory_bytes =
      static_cast<std::uint64_t>(machine->attr_int("memory-bytes", 0));
  image.spec.suspended = machine->attr("suspended") == "true";
  const xml::Element* disk = machine->child("disk");
  if (disk == nullptr) {
    return Result<GoldenImage>(
        Error(ErrorCode::kParseError, "descriptor: missing <disk>"));
  }
  image.spec.disk.name = disk->attr("name");
  image.spec.disk.capacity_bytes =
      static_cast<std::uint64_t>(disk->attr_int("capacity-bytes", 0));
  image.spec.disk.span_count =
      static_cast<std::uint32_t>(disk->attr_int("span-count", 1));
  auto mode = storage::parse_disk_mode(disk->attr("mode"));
  if (!mode.ok()) return mode.propagate<GoldenImage>();
  image.spec.disk.mode = mode.value();

  if (const xml::Element* performed = root.child("performed")) {
    for (const xml::Element* sig : performed->children_named("action-sig")) {
      image.performed.push_back(sig->text());
    }
  }
  VMP_RETURN_IF_ERROR_AS(image.spec.validate(), GoldenImage);
  return image;
}

Warehouse::Warehouse(storage::ArtifactStore* store, std::string base_dir)
    : store_(store), base_dir_(std::move(base_dir)) {
  (void)store_->make_dir(base_dir_);
}

std::string Warehouse::dir_for(const std::string& id) const {
  return base_dir_ + "/" + id;
}

Warehouse::IndexedImage Warehouse::index_image(GoldenImage image) {
  IndexedImage indexed;
  indexed.mask = action_mask(image.performed);
  indexed.fingerprint = action_fingerprint(image.performed);
  indexed.image = std::move(image);
  return indexed;
}

Status Warehouse::publish(const GoldenImage& image) {
  VMP_RETURN_IF_ERROR(image.spec.validate());
  if (image.id.empty()) {
    return Status(ErrorCode::kInvalidArgument, "image id must not be empty");
  }

  GoldenImage stored = image;
  stored.layout.dir = dir_for(image.id);

  // Claim the id first (exclusive lock is held only for the map insert), so
  // the artefact materialization below runs against a directory no other
  // publisher can touch — and so concurrent match scans never block on
  // publish I/O.  The placeholder has an empty layout dir; readers treat
  // the id as taken but the image is not yet servable via match/lookup
  // (publish has always been non-atomic from the caller's view: it either
  // completes or removes its partial tree).
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    if (!images_.emplace(stored.id, IndexedImage{}).second) {
      return Status(ErrorCode::kAlreadyExists,
                    "golden image exists: " + image.id);
    }
  }

  // The warehouse must never keep a half-written image directory: any
  // failure after the directory exists removes the partial tree (and the
  // claimed id) before the error propagates, so a later rescan() sees
  // complete images only.
  auto abort_publish = [&](const Error& error) {
    (void)store_->remove_tree(stored.layout.dir);
    std::unique_lock<std::shared_mutex> lock(mutex_);
    images_.erase(stored.id);
    return Status(error);
  };

  auto materialized = storage::materialize_image(store_, stored.layout, stored.spec);
  if (!materialized.ok()) return abort_publish(materialized.error());

  auto guest_write = store_->write_file(stored.layout.dir + "/guest.state",
                                        hv::render_guest_state(stored.guest));
  if (!guest_write.ok()) return abort_publish(guest_write.error());

  auto desc_write = store_->write_file(stored.layout.dir + "/descriptor.xml",
                                       render_descriptor(stored));
  if (!desc_write.ok()) return abort_publish(desc_write.error());

  std::unique_lock<std::shared_mutex> lock(mutex_);
  const std::string id = stored.id;
  images_[id] = index_image(std::move(stored));
  WarehouseMetrics::get().publishes->add();
  WarehouseMetrics::get().images->set(static_cast<std::int64_t>(images_.size()));
  return Status();
}

Result<GoldenImage> Warehouse::publish_new(
    const std::string& id, const std::string& backend,
    const storage::MachineSpec& spec, const hv::GuestState& guest,
    const std::vector<std::string>& performed) {
  GoldenImage image;
  image.id = id;
  image.backend = backend;
  image.spec = spec;
  image.guest = guest;
  image.performed = performed;
  VMP_RETURN_IF_ERROR_AS(publish(image), GoldenImage);
  return lookup(id);
}

Result<GoldenImage> Warehouse::lookup(const std::string& id) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = images_.find(id);
  // A claimed-but-still-materializing publish (empty placeholder) is not
  // servable yet; it reads as a miss, same as before the claim.
  if (it == images_.end() || it->second.image.id.empty()) {
    WarehouseMetrics::get().lookup_misses->add();
    return Result<GoldenImage>(
        Error(ErrorCode::kNotFound, "no golden image: " + id));
  }
  WarehouseMetrics::get().lookup_hits->add();
  return it->second.image;
}

bool Warehouse::contains(const std::string& id) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = images_.find(id);
  return it != images_.end() && !it->second.image.id.empty();
}

bool Warehouse::claimed(const std::string& id) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return images_.count(id) != 0;
}

Status Warehouse::remove(const std::string& id) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = images_.find(id);
  if (it == images_.end() || it->second.image.id.empty()) {
    return Status(ErrorCode::kNotFound, "no golden image: " + id);
  }
  auto removed = store_->remove_tree(it->second.image.layout.dir);
  if (!removed.ok()) return removed.error();
  images_.erase(it);
  WarehouseMetrics::get().images->set(static_cast<std::int64_t>(images_.size()));
  return Status();
}

Result<GoldenImage> Warehouse::detach(const std::string& id) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = images_.find(id);
  if (it == images_.end() || it->second.image.id.empty()) {
    return Result<GoldenImage>(
        Error(ErrorCode::kNotFound, "no golden image: " + id));
  }
  GoldenImage detached = std::move(it->second.image);
  images_.erase(it);
  WarehouseMetrics::get().images->set(static_cast<std::int64_t>(images_.size()));
  return detached;
}

Status Warehouse::attach(GoldenImage image) {
  if (image.id.empty()) {
    return Status(ErrorCode::kInvalidArgument, "image id must not be empty");
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  const std::string id = image.id;
  auto [it, inserted] = images_.emplace(id, IndexedImage{});
  if (!inserted) {
    return Status(ErrorCode::kAlreadyExists, "golden image exists: " + id);
  }
  it->second = index_image(std::move(image));
  WarehouseMetrics::get().images->set(
      static_cast<std::int64_t>(images_.size()));
  return Status();
}

std::vector<GoldenImage> Warehouse::list() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<GoldenImage> out;
  out.reserve(images_.size());
  for (const auto& [id, indexed] : images_) {
    if (!indexed.image.id.empty()) out.push_back(indexed.image);
  }
  return out;
}

std::vector<GoldenImage> Warehouse::list_backend(
    const std::string& backend) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<GoldenImage> out;
  for (const auto& [id, indexed] : images_) {
    if (indexed.image.backend == backend) out.push_back(indexed.image);
  }
  return out;
}

CandidateSet Warehouse::match_candidates(
    const std::string& backend,
    const std::function<bool(const GoldenImage&)>& hardware_ok,
    std::uint64_t request_mask) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  CandidateSet out;
  for (const auto& [id, indexed] : images_) {
    if (indexed.image.backend != backend) continue;
    if (!hardware_ok(indexed.image)) continue;
    ++out.hardware_candidates;
    if ((indexed.mask & ~request_mask) != 0) {
      // Some performed signature is provably not a request node: the
      // Subset test cannot pass, skip the DAG evaluation entirely.
      ++out.mask_rejected;
      continue;
    }
    out.candidates.push_back(CandidateView{indexed.image.id,
                                           indexed.image.performed,
                                           indexed.fingerprint});
  }
  return out;
}

Status Warehouse::rescan() {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto entries = store_->list_dir(base_dir_);
  if (!entries.ok()) return entries.error();

  std::map<std::string, IndexedImage> rebuilt;
  for (const std::string& entry : entries.value()) {
    const std::string descriptor_path = base_dir_ + "/" + entry + "/descriptor.xml";
    if (!store_->exists(descriptor_path)) continue;  // not an image dir
    auto text = store_->read_file(descriptor_path);
    if (!text.ok()) return text.error();
    auto image = parse_descriptor(text.value());
    if (!image.ok()) {
      return Status(image.error().code(),
                    "rescan " + descriptor_path + ": " + image.error().message());
    }
    GoldenImage loaded = std::move(image).value();
    loaded.layout.dir = base_dir_ + "/" + entry;
    auto guest_text = store_->read_file(loaded.layout.dir + "/guest.state");
    if (guest_text.ok()) {
      auto guest = hv::parse_guest_state(guest_text.value());
      if (!guest.ok()) return guest.error();
      loaded.guest = std::move(guest).value();
    }
    const std::string loaded_id = loaded.id;
    rebuilt.emplace(loaded_id, index_image(std::move(loaded)));
  }
  images_ = std::move(rebuilt);
  return Status();
}

Status Warehouse::restore_index(std::vector<GoldenImage> images) {
  std::map<std::string, IndexedImage> rebuilt;
  for (GoldenImage& image : images) {
    if (image.id.empty()) {
      return Status(ErrorCode::kInvalidArgument,
                    "restore_index: image with empty id");
    }
    if (image.layout.dir.empty()) image.layout.dir = dir_for(image.id);
    const std::string id = image.id;
    if (!rebuilt.emplace(id, index_image(std::move(image))).second) {
      return Status(ErrorCode::kInvalidArgument,
                    "restore_index: duplicate image id '" + id + "'");
    }
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  images_ = std::move(rebuilt);
  WarehouseMetrics::get().images->set(static_cast<std::int64_t>(images_.size()));
  return Status();
}

std::size_t Warehouse::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return images_.size();
}

}  // namespace vmp::warehouse
