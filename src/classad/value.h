// Classad value model.
//
// The paper returns VM descriptions to clients as classads — (attribute,
// value) pairs per Condor's matchmaking framework [Raman/Livny/Solomon,
// HPDC'98].  Values are dynamically typed: undefined, error, boolean,
// integer, real, and string.  UNDEFINED and ERROR propagate through
// expressions with Condor's three-valued-logic rules, which matters for
// matchmaking (a Requirements expression referencing a missing attribute
// evaluates to UNDEFINED, not false-with-a-crash).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace vmp::classad {

enum class ValueType { kUndefined, kError, kBoolean, kInteger, kReal, kString };

class Value {
 public:
  Value() : data_(Undefined{}) {}

  static Value undefined() { return Value(); }
  static Value error() {
    Value v;
    v.data_ = ErrorTag{};
    return v;
  }
  static Value boolean(bool b) {
    Value v;
    v.data_ = b;
    return v;
  }
  static Value integer(std::int64_t i) {
    Value v;
    v.data_ = i;
    return v;
  }
  static Value real(double d) {
    Value v;
    v.data_ = d;
    return v;
  }
  static Value string(std::string s) {
    Value v;
    v.data_ = std::move(s);
    return v;
  }

  ValueType type() const;
  bool is_undefined() const { return type() == ValueType::kUndefined; }
  bool is_error() const { return type() == ValueType::kError; }
  bool is_number() const {
    return type() == ValueType::kInteger || type() == ValueType::kReal;
  }

  /// Accessors; call only when type() matches.
  bool as_boolean() const { return std::get<bool>(data_); }
  std::int64_t as_integer() const { return std::get<std::int64_t>(data_); }
  double as_real() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }

  /// Numeric value as double (integer promoted); only for is_number().
  double as_number() const;

  /// Render in classad literal syntax: TRUE, 42, 4.5, "text", UNDEFINED.
  std::string to_string() const;

  /// Strict equality used by tests (type and payload both equal).
  friend bool operator==(const Value& a, const Value& b);

 private:
  struct Undefined {
    bool operator==(const Undefined&) const { return true; }
  };
  struct ErrorTag {
    bool operator==(const ErrorTag&) const { return true; }
  };
  std::variant<Undefined, ErrorTag, bool, std::int64_t, double, std::string>
      data_;
};

}  // namespace vmp::classad
