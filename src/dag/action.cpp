#include "dag/action.h"

namespace vmp::dag {

using util::Error;
using util::ErrorCode;
using util::Result;

const char* action_scope_name(ActionScope scope) noexcept {
  switch (scope) {
    case ActionScope::kGuest: return "guest";
    case ActionScope::kHost: return "host";
  }
  return "guest";
}

Result<ActionScope> parse_action_scope(const std::string& name) {
  if (name == "guest") return ActionScope::kGuest;
  if (name == "host") return ActionScope::kHost;
  return Result<ActionScope>(
      Error(ErrorCode::kParseError, "unknown action scope: " + name));
}

const char* error_policy_name(ErrorPolicy policy) noexcept {
  switch (policy) {
    case ErrorPolicy::kAbort: return "abort";
    case ErrorPolicy::kRetry: return "retry";
    case ErrorPolicy::kContinue: return "continue";
  }
  return "abort";
}

Result<ErrorPolicy> parse_error_policy(const std::string& name) {
  if (name == "abort") return ErrorPolicy::kAbort;
  if (name == "retry") return ErrorPolicy::kRetry;
  if (name == "continue") return ErrorPolicy::kContinue;
  return Result<ErrorPolicy>(
      Error(ErrorCode::kParseError, "unknown error policy: " + name));
}

const std::string& Action::param(const std::string& key) const {
  static const std::string kEmpty;
  auto it = params_.find(key);
  return it == params_.end() ? kEmpty : it->second;
}

std::string Action::signature() const {
  std::string sig = operation_;
  sig += '{';
  bool first = true;
  for (const auto& [key, value] : params_) {
    if (!first) sig += ',';
    first = false;
    sig += key;
    sig += '=';
    sig += value;
  }
  sig += '}';
  return sig;
}

}  // namespace vmp::dag
