file(REMOVE_RECURSE
  "CMakeFiles/speculative.dir/speculative.cpp.o"
  "CMakeFiles/speculative.dir/speculative.cpp.o.d"
  "speculative"
  "speculative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speculative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
