// Warehouse lifecycle manager: quota accounting, lease-protected eviction,
// crash-recoverable index.
//
// The paper's VM Warehouse (§3.2, §4.1) is an append-only cache of golden
// machines on an NFS store.  This subsystem gives it a lifecycle:
//
//   * Quota accounting — every published image's symlink-aware physical
//     footprint is charged against a store-level disk budget; publish
//     admission evicts-to-fit or rejects with kResourceExhausted (the
//     VMShop surfaces that as backpressure to installers).
//   * Clone leases — a linked clone's non-persistent disks are symlinks
//     into the golden tree (paper footnote 2's sharing optimisation), so
//     the hypervisor leases the base for the clone's lifetime via
//     hv::GoldenLeaseHook.  Eviction can NEVER delete a leased base.
//   * Zombie entries — evicting a leased image detaches it from the
//     warehouse index (invisible to the PPP; no new clones) and deletes
//     ONLY its descriptor.xml; the artefacts stay on disk until the last
//     lease releases, then the tree is reaped.  Deleting the descriptor at
//     evict time is what keeps warm_start() exact: a rescan is descriptor-
//     driven, so a zombie can never resurrect into the index.
//   * Crash recovery — warm_start() rebuilds index + quota ledger from the
//     descriptors on disk alone; reap_orphans() sweeps descriptor-less
//     directories (interrupted publishes, zombies orphaned by a crash).
//
// State machine per image (DESIGN.md §11):
//
//     published --evict(unleased)--------------------> reaped
//         |                                              ^
//         +--acquire/release (leases)--+                 |
//         |                            |                 |
//         +--evict(leased)--> zombie --+--last release---+
//
// Lock ordering: LifecycleManager::mutex_ -> Warehouse::mutex_ (the
// warehouse never calls back into the lifecycle manager).  The hypervisor
// invokes acquire/release OUTSIDE its own instance lock.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "hypervisor/hypervisor.h"
#include "lifecycle/policy.h"
#include "obs/journal.h"
#include "util/error.h"
#include "warehouse/warehouse.h"

namespace vmp::lifecycle {

/// What reap_orphans() swept.
struct ReapReport {
  std::size_t directories = 0;
  std::uint64_t bytes_freed = 0;
};

/// Full in-memory ledger state, as captured by ledger_snapshot() and
/// reinstated by restore_ledger() — the lifecycle section of a binary
/// simulation snapshot (core/snapshot.h, DESIGN.md §15).  Unlike
/// warm_start(), which re-measures footprints from disk and forgets usage
/// history unless a journal replay supplies it, a snapshot carries the
/// EXACT ledger: hits, use order, zombie/pin flags, and the policy's aging
/// clock, so a restored GDSF ranks identically to the live instance.
struct LedgerSnapshot {
  struct Entry {
    std::string id;
    std::string dir;  // store-relative image directory
    std::uint64_t physical_bytes = 0;
    std::uint64_t files = 0;
    std::uint64_t hits = 0;
    std::uint64_t last_use_tick = 0;
    std::uint32_t leases = 0;
    double rebuild_cost_s = 0.0;
    bool pinned = false;
    bool zombie = false;
  };
  std::vector<Entry> entries;  // id order
  std::uint64_t used_bytes = 0;
  std::uint64_t tick = 0;
  std::string policy;        // policy name at capture ("gdsf", "lru")
  double policy_clock = 0.0;  // aging clock at capture (0 for LRU)
};

class LifecycleManager : public hv::GoldenLeaseHook {
 public:
  struct Config {
    /// Store-level budget for the warehouse tree, bytes.  0 = unlimited
    /// (accounting still runs; nothing is ever auto-evicted).
    std::uint64_t disk_budget_bytes = 0;
    /// "gdsf" (default) or "lru".
    std::string policy = "gdsf";
    RebuildCostModel cost_model;
    /// Event journal every lifecycle transition is appended to.  nullptr
    /// (default) uses the process-wide obs::Journal::instance().  Open a
    /// durable sink on the journal (obs::Journal::open_durable) BEFORE
    /// warm_start() to make transitions crash-durable and let warm_start
    /// fold the replayed history back in.
    obs::Journal* journal = nullptr;
  };

  /// Fails (kInvalidArgument) on an unknown policy name.
  static util::Result<std::unique_ptr<LifecycleManager>> create(
      warehouse::Warehouse* warehouse, Config config);

  // -- Publish admission -----------------------------------------------------
  /// Admit-and-publish: evicts unleased images (policy order) until the
  /// image's estimated footprint fits the budget, then publishes through
  /// the warehouse and charges the MEASURED footprint to the ledger.
  /// Admission (budget check + estimate reservation) runs under the
  /// manager lock; the size-proportional warehouse materialization does
  /// NOT, so concurrent publishes and the acquire/release hot path never
  /// wait on publish I/O.
  /// Returns kResourceExhausted when eviction cannot make room (the image
  /// alone exceeds the budget, or everything else is pinned/leased),
  /// kFailedPrecondition when the id belongs to a zombie still awaiting
  /// its last lease release, and kAlreadyExists when the id is live in
  /// the ledger or another publish of it is in flight.
  util::Status publish(const warehouse::GoldenImage& image);

  // -- Leases (hv::GoldenLeaseHook) ------------------------------------------
  /// Lease a golden base for a clone.  Unknown-but-indexed images (published
  /// directly through the warehouse, e.g. pre-seeded fixtures) are adopted
  /// into the ledger on first lease.  Fails on zombies and unknown ids.
  util::Status acquire(const std::string& golden_id) override;
  /// Release one lease; reaps the tree if this was a zombie's last lease.
  void release(const std::string& golden_id) noexcept override;

  // -- Eviction --------------------------------------------------------------
  /// Evict one image by id.  Unleased: tree deleted, bytes reclaimed.
  /// Leased: detached from the index, descriptor deleted, kept as a zombie.
  /// Fails on pinned images, zombies, and unknown ids.
  util::Status evict(const std::string& id);
  /// Evict unleased, unpinned images in policy order until at least
  /// `bytes_needed` have been reclaimed.  Returns bytes actually freed
  /// (may be less — callers decide whether that is fatal).
  std::uint64_t evict_to_fit(std::uint64_t bytes_needed);
  /// Pin / unpin: a pinned image is never chosen by evict_to_fit and
  /// explicit evict() refuses it.  Adopts warehouse-published images.
  util::Status pin(const std::string& id, bool pinned);

  // -- Crash recovery --------------------------------------------------------
  /// Rebuild warehouse index AND quota ledger from on-disk descriptors
  /// (drops all in-memory state first — call at startup, before serving).
  /// Footprints are re-measured from disk; when the journal has a replayed
  /// history (a durable sink was opened over existing segments), per-image
  /// hit counts, use order, and the policy's aging clock are restored from
  /// it, so GDSF resumes hot instead of cold.  Without one, usage history
  /// starts empty as before.
  util::Status warm_start();
  /// Delete every directory under the warehouse root that has no
  /// descriptor.xml and is neither a live zombie nor a claimed id
  /// (a mid-publish placeholder).  Idempotent.
  util::Result<ReapReport> reap_orphans();

  // -- Snapshot/restore ------------------------------------------------------
  /// Capture the exact in-memory ledger (see LedgerSnapshot).  Refuses
  /// (kFailedPrecondition) while publishes are in flight — a reservation is
  /// transient state a snapshot must not freeze.
  util::Result<LedgerSnapshot> ledger_snapshot() const;
  /// Replace the in-memory ledger with a captured snapshot (the warehouse
  /// index must have been restored first — core/snapshot.h orders this).
  /// Requires the snapshot's policy name to match this manager's policy
  /// (kInvalidArgument otherwise) and no in-flight publishes
  /// (kFailedPrecondition).  Journals one kWarmStart, like warm_start().
  util::Status restore_ledger(const LedgerSnapshot& snapshot);

  // -- Introspection ---------------------------------------------------------
  /// Ledger snapshot, id order (zombies included, flagged).
  std::vector<ImageStats> stats() const;
  std::uint64_t used_bytes() const;
  std::uint64_t budget_bytes() const { return config_.disk_budget_bytes; }
  std::size_t zombie_count() const;
  /// Estimated bytes held by in-flight publish admissions.  Every publish —
  /// admitted, rejected, or failed mid-materialization — must return this
  /// to zero once it completes; the schedule explorer checks exactly that
  /// at terminal states (reservation leaks were a PR 5 review finding).
  std::uint64_t reserved_bytes() const;
  /// Ids admitted and still materializing (drains with reserved_bytes()).
  std::size_t inflight_publishes() const;
  /// Quota headroom: budget - used - reserved, bytes (may go negative when
  /// measured footprints overshoot their admission estimates).  0 when the
  /// budget is unlimited — there is no quota to have headroom against.
  /// Also exported as the lifecycle.headroom_bytes.gauge metric and rolled
  /// up per-fleet by core::FleetAggregator.
  std::int64_t headroom_bytes() const;
  const char* policy_name() const noexcept { return policy_->name(); }
  /// The eviction policy's aging clock (0 for policies without one).  A
  /// journal-replayed warm start restores this; tests and the churn bench
  /// compare it against the uninterrupted run.
  double policy_clock() const;
  warehouse::Warehouse* warehouse() { return warehouse_; }

  /// Admission estimate for a spec (memory checkpoint + disk capacity +
  /// metadata slack) — what publish() uses before the tree exists.
  static std::uint64_t estimate_publish_bytes(const storage::MachineSpec& spec);

 private:
  LifecycleManager(warehouse::Warehouse* warehouse, Config config,
                   std::unique_ptr<EvictionPolicy> policy);

  struct Entry {
    std::string dir;  // store-relative image directory
    std::uint64_t physical_bytes = 0;
    std::uint64_t files = 0;
    std::uint64_t hits = 0;
    std::uint64_t last_use_tick = 0;
    std::uint32_t leases = 0;
    double rebuild_cost_s = 0.0;
    bool pinned = false;
    bool zombie = false;
  };

  ImageStats stats_for(const std::string& id, const Entry& entry) const;
  /// Measure + insert a ledger entry for an image already in the warehouse
  /// index (adoption and post-publish charging share this).  `event`
  /// journals the charge (kAdopt or kPublishCommit); nullopt skips the
  /// append — warm_start() journals a single kWarmStart instead of N
  /// adoptions, so a replayed history never double-counts a restart.
  util::Status adopt_locked(const std::string& id,
                            std::optional<obs::JournalEvent> event);
  /// budget - used - reserved (0 when unlimited); callers hold mutex_.
  std::int64_t headroom_locked() const;
  /// Refresh used_bytes + headroom gauges after any ledger/reservation move.
  void update_byte_gauges_locked();
  /// Full eviction of one UNLEASED entry: delete tree, credit the ledger.
  util::Status evict_unleased_locked(const std::string& id, Entry* entry);
  std::uint64_t evict_to_fit_locked(std::uint64_t bytes_needed);
  std::size_t zombie_count_locked() const;

  Config config_;
  warehouse::Warehouse* warehouse_;
  storage::ArtifactStore* store_;
  std::unique_ptr<EvictionPolicy> policy_;
  obs::Journal* journal_;  // never null (Config resolved at construction)

  /// Guards entries_, used_bytes_, reserved_bytes_, publishing_, tick_ and
  /// the policy (rank/on_evict are called under it).  Taken BEFORE any
  /// warehouse lock (see file header).  NEVER held across warehouse
  /// materialization I/O: publish() reserves the estimate, drops the lock
  /// for warehouse::publish, then re-acquires to settle the ledger.
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  /// Ids with a publish in flight (admitted, materializing unlocked).
  std::set<std::string> publishing_;
  std::uint64_t used_bytes_ = 0;
  /// Estimated bytes of in-flight publishes, counted by admission so
  /// concurrent publishes cannot collectively overshoot the budget.
  std::uint64_t reserved_bytes_ = 0;
  std::uint64_t tick_ = 0;
};

}  // namespace vmp::lifecycle
