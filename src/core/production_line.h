// The VM Production Line: clones a golden machine and drives the remaining
// configuration actions to completion.
//
// Paper, Section 3.2: "Once a golden machine has been found, the PPP
// requests the VM Production Line to clone the machine, and then parses the
// DAG to perform a series of configuration actions on the new machine. ...
// It uses the Production Line to execute these scripts inside the guest
// machine."  Guest-scope actions are compiled into guest scripts, written
// to virtual CD-ROM ISOs, and executed by the in-VM daemon; host-scope
// actions run on the plant itself.
//
// Error handling per action node (see dag/action.h):
//   1. The action runs; with ErrorPolicy::kRetry it is re-attempted up to
//      max_retries extra times.
//   2. If it still fails and a custom error sub-graph is attached, the
//      sub-graph executes (its nodes use abort semantics); on sub-graph
//      success the action is attempted once more.
//   3. A persistent failure then follows the node's policy: kContinue
//      records the failure in the classad and proceeds; anything else
//      aborts production (the plant destroys the partial clone).
//
// Supported guest operations (compiled to guest-agent commands):
//   install-os{distro}            install-package{package}
//   remove-package{package}       require-package{package}
//   create-user{name[,home]}      delete-user{name}
//   configure-network{ip[,mac]}   set-hostname{name}
//   mount{source,mountpoint}      unmount{mountpoint}
//   start-service{service}        stop-service{service}
//   write-file{path,content}      emit{key,value}
//   setup-ssh-key{user}           setup-gsi-cert{user,subject}
//   inject-fail{[message]}        inject-flaky{token,count}
//   run-script                    (uses the action's script verbatim)
// Host operations:
//   host-attach-nic               (binds the VM port to the plant's
//                                  host-only network for the domain)
//   host-set-attr{key,value}      (adds an attribute to the classad)
//   host-connect-iso{content}     (attaches an extra data CD-ROM)
#pragma once

#include <cstdint>
#include <string>

#include "classad/classad.h"
#include "core/ppp.h"
#include "core/request.h"
#include "hypervisor/hypervisor.h"
#include "util/error.h"

namespace vmp::core {

struct ProductionResult {
  std::string vm_id;
  classad::ClassAd ad;
  std::size_t guest_actions_executed = 0;
  std::size_t host_actions_executed = 0;
  std::size_t isos_connected = 0;
  std::size_t failures_continued = 0;
  storage::CloneReport clone_report;
};

/// Compile a guest-scope action into a guest-agent script.
util::Result<std::string> compile_guest_script(const dag::Action& action);

class ProductionLine {
 public:
  /// `clone_base_dir` is the store-relative directory clones live under.
  ProductionLine(hv::Hypervisor* hypervisor, std::string clone_base_dir)
      : hypervisor_(hypervisor),
        clone_base_dir_(std::move(clone_base_dir)) {}

  /// Execute a production plan end to end: clone, start, configure.
  /// `network_name` is the host-only network the plant allocated for the
  /// request's domain ("" when the plant runs without virtual networking).
  /// On error the partially-built VM has already been destroyed.
  util::Result<ProductionResult> produce(const ProductionPlan& plan,
                                         const CreateRequest& request,
                                         const std::string& vm_id,
                                         const std::string& network_name);

  /// Phase 1 alone: clone a golden image and instantiate it, with NO
  /// configuration.  Used for speculative pre-creation (paper §6 future
  /// work): the expensive clone+resume happens ahead of demand, and
  /// configure() finishes the job when a matching request arrives.
  /// On error the partial clone has been destroyed.
  util::Result<storage::CloneReport> clone_and_start(
      const warehouse::GoldenImage& golden, const std::string& vm_id);

  /// Phase 2 alone: run the plan's remaining actions on an already-running
  /// instance (created by clone_and_start).  On error the VM has been
  /// destroyed.
  util::Result<ProductionResult> configure(const ProductionPlan& plan,
                                           const CreateRequest& request,
                                           const std::string& vm_id,
                                           const std::string& network_name);

  /// Destroy a VM produced earlier (the "collect" operation).
  util::Status collect(const std::string& vm_id);

  hv::Hypervisor* hypervisor() { return hypervisor_; }

 private:
  /// Run one action with full error-policy semantics; merges outputs into
  /// `result`.  Returns an error only when production must abort.
  util::Status run_action(const dag::ConfigDag& config,
                          const std::string& action_id,
                          const std::string& vm_id,
                          const std::string& network_name,
                          ProductionResult* result);

  /// One attempt of a guest/host action; no retries or policies.
  util::Status attempt_action(const dag::Action& action,
                              const std::string& vm_id,
                              const std::string& network_name,
                              ProductionResult* result);

  hv::Hypervisor* hypervisor_;
  std::string clone_base_dir_;
};

}  // namespace vmp::core
