// Canonical objects behind the committed wire fixtures (fixtures/wire/).
//
// tests/wire_fixture_gen.cpp encodes these into v<N>-*.bin golden frames;
// tests/codec_test.cpp decodes the committed frames and asserts equality
// against the same objects, and additionally asserts that the CURRENT
// encoder still produces the current version's fixtures byte-for-byte.
// Changing any encoding therefore turns the wire-compat CI job red until
// the codec version is bumped and the fixtures are deliberately
// regenerated — persisted frames can never be silently orphaned.
//
// Everything here must be deterministic: no clocks, no ambient trace
// capture (Message::assemble, not Message::request), no filesystem
// measurements (the snapshot fixture is synthetic SnapshotData, never a
// capture of a live store, because st_blocks-derived footprints vary by
// filesystem).
#pragma once

#include <string>

#include "classad/classad.h"
#include "core/snapshot.h"
#include "lifecycle/lifecycle.h"
#include "net/message.h"
#include "warehouse/warehouse.h"

namespace vmp::testing {

inline warehouse::GoldenImage wire_fixture_descriptor() {
  warehouse::GoldenImage image;
  image.id = "golden-64mb";
  image.backend = "vmware-gsx";
  image.layout.dir = "warehouse/golden-64mb";
  image.spec.os = "linux";
  image.spec.memory_bytes = 64ull << 20;
  image.spec.suspended = true;
  image.spec.disk = {"disk0", 2048ull << 20, 16,
                     storage::DiskMode::kNonPersistent};
  image.guest.os = "linux";
  image.guest.hostname = "workspace-00";
  image.guest.ip = "10.0.0.42";
  image.guest.mac = "02:00:0a:00:00:2a";
  image.guest.packages = {"condor", "globus-gsi", "openssh", "perl"};
  image.guest.users = {{"griduser", "/home/griduser"},
                       {"vmplant", "/home/vmplant"}};
  image.guest.mounts = {{"/mnt/nfs", "nfs-server:/export"}};
  image.guest.running_services = {"condor_startd", "sshd"};
  image.guest.files = {{"/etc/grid/vmplant.conf", "plant=plant0\nshop=shop0"},
                       {"/etc/hosts", "10.0.0.1 nfs-server"}};
  image.performed = {"installos:linux", "install:condor", "adduser:griduser",
                     "ifconfig:10.0.0.42"};
  return image;
}

inline net::Message wire_fixture_message() {
  net::Message m =
      net::Message::assemble(net::MessageKind::kRequest, "vmplant.create",
                             "shop0", "plant3", "req-0042");
  obs::TraceContext trace;
  trace.trace_id = "trace-fixture";
  trace.span_id = 7;
  m.set_trace(std::move(trace));
  auto& req = m.body().add_child("create");
  req.set_attr("memory_mb", "64");
  req.set_attr("os", "linux");
  auto& reqs = req.add_child("requirements");
  reqs.set_text("other.Memory >= 64 && other.OS == \"linux\"");
  return m;
}

inline classad::ClassAd wire_fixture_classad() {
  classad::ClassAd ad;
  ad.set_string("Name", "plant3");
  ad.set_integer("Memory", 512);
  ad.set_integer("ActiveVMs", 3);
  (void)ad.set_expression("Requirements", "other.Memory >= 64");
  (void)ad.set_expression("Rank", "other.Memory");
  return ad;
}

inline core::SnapshotData wire_fixture_snapshot() {
  core::SnapshotData data;
  data.warehouse_base_dir = "warehouse";
  data.images.push_back(wire_fixture_descriptor());
  data.has_ledger = true;
  data.ledger.policy = "gdsf";
  data.ledger.policy_clock = 2.5;
  data.ledger.used_bytes = 9ull << 20;
  data.ledger.tick = 12;
  {
    lifecycle::LedgerSnapshot::Entry e;
    e.id = "golden-64mb";
    e.dir = "warehouse/golden-64mb";
    e.physical_bytes = 9ull << 20;
    e.files = 21;
    e.hits = 5;
    e.last_use_tick = 12;
    e.leases = 1;
    e.rebuild_cost_s = 42.25;
    data.ledger.entries.push_back(e);
  }
  data.has_ads = true;
  data.ads.emplace_back("vm-0001", wire_fixture_classad());
  data.meta = {{"fixture", "wire-v1"}, {"site", "acis.ufl.edu"}};
  return data;
}

}  // namespace vmp::testing
