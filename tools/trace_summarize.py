#!/usr/bin/env python3
"""Summarize a VMPlants trace JSONL file into a per-phase latency table.

The tracer (src/obs/trace.h) drains finished spans as one JSON object per
line via Tracer::write_jsonl.  This tool rolls them up by span name — the
per-phase breakdown of VM creation in the spirit of the paper's Figure 6
(time spent in cloning vs configuration vs the rest of the sequence).

Usage:
    python3 tools/trace_summarize.py trace.jsonl [--by-trace] [--critical-path]

With --by-trace, also prints one row per trace (total duration, span
count, errors, retries).  With --critical-path, walks each trace from its
root down the longest child at every level and prints that chain with
per-span self time — the spans to optimize first if the end-to-end
latency should come down.
"""

import argparse
import json
import sys
from collections import defaultdict


def load_spans(path):
    spans = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                spans.append(json.loads(line))
            except json.JSONDecodeError as err:
                print(f"{path}:{lineno}: skipping bad line: {err}",
                      file=sys.stderr)
    return spans


def phase_table(spans):
    rows = defaultdict(lambda: {"count": 0, "total": 0.0,
                                "min": float("inf"), "max": 0.0,
                                "errors": 0})
    for span in spans:
        name = span.get("name", "?")
        duration = duration_of(span)
        row = rows[name]
        row["count"] += 1
        row["total"] += duration
        row["min"] = min(row["min"], duration)
        row["max"] = max(row["max"], duration)
        status = span.get("status", "ok")
        if status not in ("ok", "retry"):
            row["errors"] += 1
    return rows


def print_phase_table(rows):
    header = (f"{'phase':<24} {'count':>6} {'mean ms':>10} {'min ms':>10} "
              f"{'max ms':>10} {'total ms':>10} {'errors':>7}")
    print(header)
    print("-" * len(header))
    for name in sorted(rows, key=lambda n: rows[n]["total"], reverse=True):
        row = rows[name]
        mean = row["total"] / row["count"] if row["count"] else 0.0
        print(f"{name:<24} {row['count']:>6} {mean * 1e3:>10.3f} "
              f"{row['min'] * 1e3:>10.3f} {row['max'] * 1e3:>10.3f} "
              f"{row['total'] * 1e3:>10.3f} {row['errors']:>7}")


def print_trace_table(spans):
    traces = defaultdict(list)
    for span in spans:
        traces[span.get("trace", "?")].append(span)
    header = (f"{'trace':<14} {'root':<16} {'vm':<18} {'spans':>6} "
              f"{'duration ms':>12} {'errors':>7} {'retries':>8}")
    print(header)
    print("-" * len(header))
    for trace_id, members in traces.items():
        roots = [s for s in members if not s.get("parent", 0)]
        root = roots[0] if roots else None
        duration = duration_of(root) if root else 0.0
        vm_ids = [s["vm"] for s in members if s.get("vm")]
        errors = sum(1 for s in members
                     if s.get("status", "ok") not in ("ok", "retry"))
        retries = sum(1 for s in members if s.get("status") == "retry")
        print(f"{trace_id:<14} {(root or {}).get('name', '?'):<16} "
              f"{(vm_ids[-1] if vm_ids else '-'):<18} {len(members):>6} "
              f"{duration * 1e3:>12.3f} {errors:>7} {retries:>8}")


def duration_of(span):
    """Attributed duration, clamped at zero.

    Degrades instead of throwing on damaged dumps: a span missing its end
    timestamp (crashed mid-span, truncated file) attributes zero duration,
    and a clock skew that puts end before start clamps to zero — matching
    obs::attributed_duration in src/obs/critical_path.cpp.
    """
    start = float(span.get("start", 0.0))
    end = span.get("end")
    if end is None:
        return 0.0
    return max(0.0, float(end) - start)


def critical_path(spans):
    """The chain root -> longest child -> ... for one trace's spans.

    Returns a list of (span, self_time) where self_time is the span's
    duration minus the sum of its direct children's durations (time spent
    in the span's own code rather than anything it delegated to), clamped
    at zero — children re-parented across a bus hop can overlap a sibling
    and push the naive subtraction negative.

    A span whose parent never finished (orphan: open span, crash, or a
    truncated dump) is re-parented to the virtual root so partial traces
    still attribute instead of vanishing — the same semantics as
    obs::critical_path in src/obs/critical_path.cpp.
    """
    ids = {s.get("span") for s in spans if s.get("span") is not None}
    children = defaultdict(list)
    for span in spans:
        parent = span.get("parent", 0)
        if parent != 0 and parent not in ids:
            parent = 0
        children[parent].append(span)
    roots = children.get(0, [])
    if not roots:
        return []
    path = []
    node = max(roots, key=duration_of)
    while node is not None:
        kids = children.get(node.get("span", -1), [])
        self_time = max(
            0.0, duration_of(node) - sum(duration_of(k) for k in kids))
        path.append((node, self_time))
        node = max(kids, key=duration_of) if kids else None
    return path


def print_critical_paths(spans):
    traces = defaultdict(list)
    for span in spans:
        traces[span.get("trace", "?")].append(span)
    for trace_id, members in traces.items():
        path = critical_path(members)
        if not path:
            continue
        total = duration_of(path[0][0])
        print(f"trace {trace_id} critical path "
              f"({total * 1e3:.3f} ms end-to-end):")
        header = (f"  {'span':<28} {'component':<16} {'dur ms':>10} "
                  f"{'self ms':>10} {'% total':>8}")
        print(header)
        print("  " + "-" * (len(header) - 2))
        for depth, (span, self_time) in enumerate(path):
            name = " " * depth + span.get("name", "?")
            share = duration_of(span) / total * 100.0 if total else 0.0
            print(f"  {name:<28} {span.get('component', '?'):<16} "
                  f"{duration_of(span) * 1e3:>10.3f} "
                  f"{self_time * 1e3:>10.3f} {share:>7.1f}%")
        print()


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("jsonl", help="trace file written by Tracer::write_jsonl")
    parser.add_argument("--by-trace", action="store_true",
                        help="also print one row per trace")
    parser.add_argument("--critical-path", action="store_true",
                        help="print each trace's longest root-to-leaf chain "
                             "with per-span self time")
    args = parser.parse_args()

    spans = load_spans(args.jsonl)
    if not spans:
        print("no spans found", file=sys.stderr)
        return 1
    print(f"{len(spans)} spans\n")
    print_phase_table(phase_table(spans))
    if args.by_trace:
        print()
        print_trace_table(spans)
    if args.critical_path:
        print()
        print_critical_paths(spans)
    return 0


if __name__ == "__main__":
    sys.exit(main())
