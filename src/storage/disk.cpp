#include "storage/disk.h"

#include <cstdio>

namespace vmp::storage {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

const char* disk_mode_name(DiskMode mode) noexcept {
  switch (mode) {
    case DiskMode::kPersistent: return "persistent";
    case DiskMode::kNonPersistent: return "non-persistent";
  }
  return "non-persistent";
}

Result<DiskMode> parse_disk_mode(const std::string& name) {
  if (name == "persistent") return DiskMode::kPersistent;
  if (name == "non-persistent") return DiskMode::kNonPersistent;
  return Result<DiskMode>(
      Error(ErrorCode::kParseError, "unknown disk mode: " + name));
}

std::vector<std::string> DiskSpec::span_file_names() const {
  std::vector<std::string> out;
  out.reserve(span_count);
  for (std::uint32_t i = 0; i < span_count; ++i) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "-s%03u.vmdk", i + 1);
    out.push_back(name + buf);
  }
  return out;
}

std::uint64_t DiskSpec::span_size(std::uint32_t index) const {
  if (span_count == 0 || index >= span_count) return 0;
  const std::uint64_t base = capacity_bytes / span_count;
  if (index == span_count - 1) {
    return capacity_bytes - base * (span_count - 1);
  }
  return base;
}

Status DiskSpec::validate() const {
  if (name.empty()) {
    return Status(ErrorCode::kInvalidArgument, "disk name must not be empty");
  }
  if (capacity_bytes == 0) {
    return Status(ErrorCode::kInvalidArgument, "disk capacity must be > 0");
  }
  if (span_count == 0) {
    return Status(ErrorCode::kInvalidArgument, "disk span count must be > 0");
  }
  if (capacity_bytes < span_count) {
    return Status(ErrorCode::kInvalidArgument,
                  "disk capacity smaller than span count");
  }
  return Status();
}

}  // namespace vmp::storage
