// §6 extension: speculative pre-creation of VM clones.
//
// Paper (§4.3/§6): "latency-hiding optimizations such as speculative
// pre-creation of VMs can be conceived, but have not yet been
// investigated."  Here the plant pre-creates clones of the popular golden
// machines ahead of demand; creation requests that match an already-resumed
// parked clone skip the clone+resume phase and pay only configuration —
// turning the paper's memory-size-dependent creation latency into a nearly
// flat, few-second path.
#include <cstdio>

#include "cluster/deployment.h"
#include "common.h"

namespace {

vmp::util::Summary run_series(bool speculative, std::uint32_t memory_mb,
                              std::size_t requests) {
  using namespace vmp;
  cluster::DeploymentConfig config;
  config.plant_count = 8;
  config.seed = 777 ^ memory_mb ^ (speculative ? 1 : 0);
  cluster::SimulatedDeployment site(config);
  if (!workload::publish_paper_goldens(&site.warehouse()).ok()) return {};

  if (speculative) {
    // Each plant parks enough clones ahead of demand to absorb the burst.
    const std::size_t per_plant =
        (requests + site.plant_count() - 1) / site.plant_count();
    for (std::size_t p = 0; p < site.plant_count(); ++p) {
      (void)site.plant(p).pre_create(
          "golden-" + std::to_string(memory_mb) + "mb", per_plant);
    }
  }

  util::Summary latency;
  for (const auto& sample : site.run_sequence(
           workload::workspace_requests(memory_mb, requests, "ufl.edu"))) {
    latency.add(sample.timing.total_sec);
  }
  return latency;
}

}  // namespace

int main() {
  using namespace vmp;
  bench::print_header(
      "§6 extension — speculative pre-creation of VM clones",
      "future work in the paper: quantify the creation-latency win of "
      "pre-created clones");

  std::printf("%-8s %18s %18s %10s\n", "memory", "on-demand_mean_s",
              "speculative_mean_s", "speedup");

  double worst_speedup = 1e9;
  for (const std::uint32_t memory_mb : {32u, 64u, 256u}) {
    const util::Summary cold = run_series(false, memory_mb, 24);
    const util::Summary warm = run_series(true, memory_mb, 24);
    const double speedup = cold.mean() / warm.mean();
    worst_speedup = std::min(worst_speedup, speedup);
    std::printf("%-8u %18.1f %18.1f %9.1fx\n", memory_mb, cold.mean(),
                warm.mean(), speedup);
  }
  std::printf("\n");

  char measured[96];
  std::snprintf(measured, sizeof measured, ">= %.1fx at every memory size",
                worst_speedup);
  bench::print_summary_row("speculative.creation_speedup",
                           "conceived but not investigated in the paper",
                           measured);
  bench::print_summary_row(
      "speculative.flattening",
      "creation latency loses its memory-size dependence",
      "speculative means nearly equal across 32/64/256 MB");
  return 0;
}
