// Discrete-event simulation engine.
//
// The paper's evaluation (Figures 4-6) measures latency distributions on an
// 8-node cluster whose shape is produced by contention: concurrent clones
// share NFS bandwidth, disks serialize, and host memory pressure slows
// resume.  This engine provides the substrate those models run on: a
// virtual clock, an ordered event queue with stable tie-breaking, and
// cancellable events.
//
// Single-threaded by design — determinism is a core requirement (DESIGN.md
// §5) — with callback-chaining rather than coroutines so the control flow
// stays debuggable in stack traces.
//
// Schedule exploration (DESIGN.md §12): the tie-break between events that
// are co-enabled at the same timestamp is a pluggable seam.  With no
// SchedulePolicy installed the engine fires equal-time events in scheduling
// order, exactly as it always has, and pays nothing for the seam.  With a
// policy installed, every equal-time group becomes a decision point: the
// policy picks which event fires next and the engine records the decision,
// which is what the src/explore state-space explorer enumerates and replays.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace vmp::sim {

/// Simulated time, in seconds since simulation start.
using SimTime = double;

/// Handle for cancelling a scheduled event.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event has neither fired nor been cancelled.
  bool pending() const { return state_ && !*state_; }

  /// Cancel; returns true if the event had been pending.
  bool cancel() {
    if (!pending()) return false;
    *state_ = true;
    return true;
  }

 private:
  friend class Engine;
  explicit EventHandle(std::shared_ptr<bool> state)
      : state_(std::move(state)) {}
  std::shared_ptr<bool> state_;  // true = cancelled-or-fired
};

/// Tie-break policy for events co-enabled at the same timestamp.  pick()
/// sees every non-cancelled event whose time equals the earliest pending
/// time, in scheduling (seq) order, and returns the index of the one to
/// fire.  An out-of-range index falls back to 0 (the stable FIFO choice).
class SchedulePolicy {
 public:
  /// One co-enabled event: its stable sequence number and the optional tag
  /// it was scheduled with (explorers use tags for independence pruning).
  struct Choice {
    std::uint64_t seq = 0;
    std::string tag;
  };

  virtual ~SchedulePolicy() = default;
  virtual std::size_t pick(SimTime when,
                           const std::vector<Choice>& ready) = 0;
};

/// One recorded tie-break: which events were co-enabled, which fired.
/// Recorded only while a SchedulePolicy is installed.
struct TieDecision {
  SimTime when = 0.0;
  std::vector<std::uint64_t> ready;  // co-enabled seqs, ascending
  std::uint64_t chosen = 0;          // seq that fired
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` to run at now()+delay.  delay < 0 is clamped to 0.
  /// Events at equal times fire in scheduling order (stable).  The optional
  /// tag names the logical actor for schedule exploration; it is ignored on
  /// the default path.
  EventHandle schedule(SimTime delay, std::function<void()> fn,
                       std::string tag = {});

  /// Schedule at an absolute time (>= now()).
  EventHandle schedule_at(SimTime when, std::function<void()> fn,
                          std::string tag = {});

  /// Run until the queue drains.  Returns the number of events fired.
  std::size_t run();

  /// Run until the queue drains or the clock would pass `deadline`.
  /// Events at exactly `deadline` do fire.
  std::size_t run_until(SimTime deadline);

  /// Fire at most one event; returns false if the queue is empty.
  bool step();

  std::size_t pending_events() const { return queue_.size(); }

  /// Install (or, with nullptr, remove) the tie-break policy.  Non-owning;
  /// the policy must outlive its installation.  The default (no policy)
  /// preserves the stable scheduling-order tie-break byte for byte.
  void set_scheduler(SchedulePolicy* policy) { scheduler_ = policy; }
  SchedulePolicy* scheduler() const { return scheduler_; }

  /// Tie-breaks recorded while a policy was installed, oldest first.
  const std::vector<TieDecision>& decision_log() const {
    return decision_log_;
  }
  void clear_decision_log() { decision_log_.clear(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
    std::string tag;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Move the earliest event out of the heap (std::pop_heap, so the
  /// Event — std::function captures included — is moved, never copied).
  Event pop_earliest();
  void push_event(Event event);
  void fire(Event event);

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  /// Min-heap on (when, seq) maintained with std::push_heap/std::pop_heap;
  /// an explicit vector (rather than std::priority_queue) so dispatch can
  /// move events out instead of copying them from a const top().
  std::vector<Event> queue_;
  SchedulePolicy* scheduler_ = nullptr;
  std::vector<TieDecision> decision_log_;
};

}  // namespace vmp::sim
