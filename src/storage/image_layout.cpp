#include "storage/image_layout.h"

#include "util/strings.h"

namespace vmp::storage {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

Status MachineSpec::validate() const {
  if (os.empty()) {
    return Status(ErrorCode::kInvalidArgument, "machine os must not be empty");
  }
  if (memory_bytes == 0) {
    return Status(ErrorCode::kInvalidArgument, "machine memory must be > 0");
  }
  return disk.validate();
}

std::vector<std::string> ImageLayout::span_paths(const DiskSpec& disk) const {
  std::vector<std::string> out;
  for (const std::string& file : disk.span_file_names()) {
    out.push_back(dir + "/" + file);
  }
  return out;
}

Result<IoAccounting> materialize_image(ArtifactStore* store,
                                       const ImageLayout& layout,
                                       const MachineSpec& spec) {
  VMP_RETURN_IF_ERROR_AS(spec.validate(), IoAccounting);
  IoAccounting total;

  auto cfg = store->write_file(layout.config_path(), render_machine_config(spec));
  if (!cfg.ok()) return cfg;
  total += cfg.value();

  if (spec.suspended) {
    auto mem = store->create_sparse_file(layout.memory_path(), spec.memory_bytes);
    if (!mem.ok()) return mem;
    total += mem.value();
  }

  const auto spans = layout.span_paths(spec.disk);
  for (std::uint32_t i = 0; i < spans.size(); ++i) {
    auto span = store->create_sparse_file(spans[i], spec.disk.span_size(i));
    if (!span.ok()) return span;
    total += span.value();
  }

  auto redo = store->write_file(layout.base_redo_path(spec.disk), "");
  if (!redo.ok()) return redo;
  total += redo.value();

  return total;
}

std::string render_machine_config(const MachineSpec& spec) {
  std::string out;
  out += "os = " + spec.os + "\n";
  out += "memory_bytes = " + std::to_string(spec.memory_bytes) + "\n";
  out += "suspended = " + std::string(spec.suspended ? "true" : "false") + "\n";
  out += "disk.name = " + spec.disk.name + "\n";
  out += "disk.capacity_bytes = " + std::to_string(spec.disk.capacity_bytes) + "\n";
  out += "disk.span_count = " + std::to_string(spec.disk.span_count) + "\n";
  out += "disk.mode = " + std::string(disk_mode_name(spec.disk.mode)) + "\n";
  return out;
}

Result<MachineSpec> parse_machine_config(const std::string& text) {
  MachineSpec spec;
  spec.suspended = false;
  for (const std::string& raw_line : util::split(text, '\n')) {
    const std::string_view line = util::trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Result<MachineSpec>(
          Error(ErrorCode::kParseError,
                "machine config: missing '=' in line: " + std::string(line)));
    }
    const std::string key(util::trim(line.substr(0, eq)));
    const std::string value(util::trim(line.substr(eq + 1)));
    long long n = 0;
    if (key == "os") {
      spec.os = value;
    } else if (key == "memory_bytes" && util::parse_int64(value, &n)) {
      spec.memory_bytes = static_cast<std::uint64_t>(n);
    } else if (key == "suspended") {
      spec.suspended = value == "true";
    } else if (key == "disk.name") {
      spec.disk.name = value;
    } else if (key == "disk.capacity_bytes" && util::parse_int64(value, &n)) {
      spec.disk.capacity_bytes = static_cast<std::uint64_t>(n);
    } else if (key == "disk.span_count" && util::parse_int64(value, &n)) {
      spec.disk.span_count = static_cast<std::uint32_t>(n);
    } else if (key == "disk.mode") {
      auto mode = parse_disk_mode(value);
      if (!mode.ok()) return mode.propagate<MachineSpec>();
      spec.disk.mode = mode.value();
    } else {
      return Result<MachineSpec>(
          Error(ErrorCode::kParseError, "machine config: bad line: " + std::string(line)));
    }
  }
  VMP_RETURN_IF_ERROR_AS(spec.validate(), MachineSpec);
  return spec;
}

}  // namespace vmp::storage
